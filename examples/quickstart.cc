/**
 * @file
 * Quickstart: run one 4-context SMT workload under the Table-1 machine and
 * print IPC plus the per-structure AVF profile.
 */

#include <cstdio>

#include "sim/experiment.hh"

int
main()
{
    using namespace smtavf;

    const auto &mix = findMix("4ctx-mix-A");
    SimResult r = runMix(mix, FetchPolicyKind::Icount, 50000);

    std::printf("mix %s under %s: IPC %.3f over %llu cycles\n",
                r.mixName.c_str(), r.policyName.c_str(), r.ipc,
                static_cast<unsigned long long>(r.cycles));
    std::fputs(r.avf.str().c_str(), stdout);
    return 0;
}
