/**
 * @file
 * Example: cross-validate the AVF model's dead-code classification with a
 * statistical fault-injection campaign (architectural taint propagation
 * over the recorded commit trace).
 *
 * Usage: injection_validation [mix-name] [trials]
 */

#include <cstdio>
#include <cstdlib>

#include "avf/injection.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace smtavf;

    const char *mix_name = argc > 1 ? argv[1] : "4ctx-mix-A";
    std::uint64_t trials =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5000;

    const auto &mix = findMix(mix_name);
    auto cfg = table1Config(mix.contexts);
    cfg.recordCommitTrace = true;
    auto r = runMix(cfg, mix, 0);

    InjectionCampaign campaign(*r.commitTrace);
    auto res = campaign.run(trials, cfg.seed);

    std::printf("fault-injection validation on %s "
                "(%zu committed instructions, %llu trials)\n\n",
                mix.name.c_str(), r.commitTrace->size(),
                static_cast<unsigned long long>(res.trials));
    std::printf("  FDD dead fraction (AVF model) : %6.2f%%\n",
                100 * r.stats.get("deadCode.fraction"));
    std::printf("  injection masked              : %6.2f%%\n",
                100 * res.maskedRate());
    std::printf("  injection corrupted           : %6.2f%%\n",
                100 * res.corruptionRate());
    std::printf("  transitive-deadness gap       : %6.2f%%\n",
                100 * (res.maskedRate() -
                       r.stats.get("deadCode.fraction")));
    std::puts("\nmasked >= FDD-dead by construction: every first-level\n"
              "dead value masks, and whole dead chains mask on top.");
    return 0;
}
