/**
 * @file
 * Example: survey every Table-2 workload mix under the baseline ICOUNT
 * policy — throughput, cache behaviour and the AVF of the two hotspot
 * structures the paper tells architects to protect first (IQ, RegFile).
 */

#include <cstdio>

#include "base/table.hh"
#include "sim/experiment.hh"

int
main()
{
    using namespace smtavf;

    std::puts("Table-2 workload survey under ICOUNT");
    TextTable t({"mix", "IPC", "DL1 miss", "L2 miss", "bpred miss",
                 "IQ AVF", "Reg AVF", "dead%"});
    for (const auto &mix : allMixes()) {
        if (mix.name.rfind("fig3", 0) == 0)
            continue;
        auto r = runMix(mix, FetchPolicyKind::Icount);
        t.addRow({mix.name, TextTable::num(r.ipc, 2),
                  TextTable::pct(r.stats.get("dl1.missRate"), 1),
                  TextTable::pct(r.stats.get("l2.missRate"), 1),
                  TextTable::pct(r.stats.get("branch.mispredictRate"), 1),
                  TextTable::pct(r.avf.avf(HwStruct::IQ), 1),
                  TextTable::pct(r.avf.avf(HwStruct::RegFile), 1),
                  TextTable::pct(r.stats.get("deadCode.fraction"), 1)});
    }
    std::fputs(t.str().c_str(), stdout);
    return 0;
}
