/**
 * @file
 * Example: break the SMT vulnerability down by thread and contrast it
 * with each thread running alone on the same machine (the paper's
 * Figure 3 methodology).
 *
 * Usage: per_thread_avf [mix-name] [instruction-budget]
 */

#include <cstdio>
#include <cstdlib>

#include "base/table.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace smtavf;

    const char *mix_name = argc > 1 ? argv[1] : "fig3-mix";
    std::uint64_t budget = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                    : 0;

    const auto &mix = findMix(mix_name);
    auto cfg = table1Config(mix.contexts);
    auto smt = runMix(cfg, mix, budget);

    std::printf("per-thread AVF on %s (SMT IPC %.2f)\n\n",
                mix.name.c_str(), smt.ipc);
    TextTable t({"thread", "IPC(SMT)", "IPC(alone)", "IQ SMT", "IQ alone",
                 "ROB SMT", "ROB alone"});
    for (ThreadId tid = 0; tid < mix.contexts; ++tid) {
        auto st = runSingleThreadBaseline(cfg, mix, tid,
                                          smt.threads[tid].committed);
        t.addRow({mix.benchmarks[tid],
                  TextTable::num(smt.threads[tid].ipc, 2),
                  TextTable::num(st.ipc, 2),
                  TextTable::pct(smt.avf.threadAvf(HwStruct::IQ, tid), 1),
                  TextTable::pct(st.avf.avf(HwStruct::IQ), 1),
                  TextTable::pct(smt.avf.threadAvf(HwStruct::ROB, tid), 1),
                  TextTable::pct(st.avf.avf(HwStruct::ROB), 1)});
    }
    std::fputs(t.str().c_str(), stdout);

    std::puts("\nfull structure report (SMT run):");
    std::fputs(smt.avf.str().c_str(), stdout);
    return 0;
}
