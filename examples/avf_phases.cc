/**
 * @file
 * Example: vulnerability phase behaviour — sample the IQ and register-file
 * AVF in fixed windows over a run and print the series plus each
 * structure's phase variability (companion-work of the reproduced paper:
 * Fu et al., MASCOTS 2006).
 *
 * Usage: avf_phases [mix-name] [window-cycles]
 */

#include <cstdio>
#include <cstdlib>

#include "base/table.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace smtavf;

    const char *mix_name = argc > 1 ? argv[1] : "4ctx-mix-A";
    Cycle window = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5000;

    const auto &mix = findMix(mix_name);
    auto cfg = table1Config(mix.contexts);
    cfg.avfSampleCycles = window;
    auto r = runMix(cfg, mix, 0);

    std::printf("AVF phases of %s (window %llu cycles, %zu windows)\n\n",
                mix.name.c_str(), static_cast<unsigned long long>(window),
                r.timeline->windows());

    TextTable t({"window", "IQ", "Reg", "ROB", "DL1_tag"});
    for (std::size_t w = 0; w < r.timeline->windows(); ++w) {
        t.addRow({std::to_string(w),
                  TextTable::pct(r.timeline->windowAvf(HwStruct::IQ, w), 1),
                  TextTable::pct(
                      r.timeline->windowAvf(HwStruct::RegFile, w), 1),
                  TextTable::pct(r.timeline->windowAvf(HwStruct::ROB, w),
                                 1),
                  TextTable::pct(
                      r.timeline->windowAvf(HwStruct::Dl1Tag, w), 1)});
    }
    std::fputs(t.str().c_str(), stdout);

    std::puts("\nphase variability (stddev/mean of window AVF):");
    for (auto s : {HwStruct::IQ, HwStruct::RegFile, HwStruct::ROB,
                   HwStruct::Dl1Tag})
        std::printf("  %-8s %.3f\n", hwStructName(s),
                    r.timeline->variability(s));
    return 0;
}
