/**
 * @file
 * Example: compare the reliability and performance of all six fetch
 * policies on one workload mix.
 *
 * Usage: fetch_policy_study [mix-name] [instruction-budget]
 *   e.g.  fetch_policy_study 4ctx-mem-A 200000
 */

#include <cstdio>
#include <cstdlib>

#include "base/table.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace smtavf;

    const char *mix_name = argc > 1 ? argv[1] : "4ctx-mem-A";
    std::uint64_t budget = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                    : 0;

    const auto &mix = findMix(mix_name);
    std::printf("fetch-policy study on %s (%u contexts)\n\n",
                mix.name.c_str(), mix.contexts);

    TextTable t({"policy", "IPC", "IQ AVF", "ROB AVF", "DL1_tag AVF",
                 "IQ IPC/AVF", "flushes+squashes"});
    for (auto kind : {FetchPolicyKind::Icount, FetchPolicyKind::Flush,
                      FetchPolicyKind::Stall, FetchPolicyKind::Dg,
                      FetchPolicyKind::Pdg, FetchPolicyKind::DWarn}) {
        auto r = runMix(mix, kind, budget);
        t.addRow({fetchPolicyName(kind), TextTable::num(r.ipc, 2),
                  TextTable::pct(r.avf.avf(HwStruct::IQ), 1),
                  TextTable::pct(r.avf.avf(HwStruct::ROB), 1),
                  TextTable::pct(r.avf.avf(HwStruct::Dl1Tag), 1),
                  TextTable::num(r.mitf(HwStruct::IQ), 1),
                  TextTable::num(r.stats.get("squashed"), 0)});
    }
    std::fputs(t.str().c_str(), stdout);
    return 0;
}
