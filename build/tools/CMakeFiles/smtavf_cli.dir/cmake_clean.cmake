file(REMOVE_RECURSE
  "CMakeFiles/smtavf_cli.dir/smtavf_cli.cc.o"
  "CMakeFiles/smtavf_cli.dir/smtavf_cli.cc.o.d"
  "smtavf_cli"
  "smtavf_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtavf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
