# Empty dependencies file for smtavf_cli.
# This may be replaced when dependencies are built.
