file(REMOVE_RECURSE
  "../bench/bench_fig7_policy_efficiency"
  "../bench/bench_fig7_policy_efficiency.pdb"
  "CMakeFiles/bench_fig7_policy_efficiency.dir/bench_fig7_policy_efficiency.cc.o"
  "CMakeFiles/bench_fig7_policy_efficiency.dir/bench_fig7_policy_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_policy_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
