file(REMOVE_RECURSE
  "../bench/bench_ext_optimizations"
  "../bench/bench_ext_optimizations.pdb"
  "CMakeFiles/bench_ext_optimizations.dir/bench_ext_optimizations.cc.o"
  "CMakeFiles/bench_ext_optimizations.dir/bench_ext_optimizations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
