# Empty dependencies file for bench_ext_optimizations.
# This may be replaced when dependencies are built.
