file(REMOVE_RECURSE
  "../bench/bench_fig3_smt_vs_st"
  "../bench/bench_fig3_smt_vs_st.pdb"
  "CMakeFiles/bench_fig3_smt_vs_st.dir/bench_fig3_smt_vs_st.cc.o"
  "CMakeFiles/bench_fig3_smt_vs_st.dir/bench_fig3_smt_vs_st.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_smt_vs_st.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
