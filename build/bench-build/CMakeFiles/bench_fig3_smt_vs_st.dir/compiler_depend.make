# Empty compiler generated dependencies file for bench_fig3_smt_vs_st.
# This may be replaced when dependencies are built.
