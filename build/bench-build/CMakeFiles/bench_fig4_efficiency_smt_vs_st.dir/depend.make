# Empty dependencies file for bench_fig4_efficiency_smt_vs_st.
# This may be replaced when dependencies are built.
