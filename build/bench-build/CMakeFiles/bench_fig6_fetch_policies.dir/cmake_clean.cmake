file(REMOVE_RECURSE
  "../bench/bench_fig6_fetch_policies"
  "../bench/bench_fig6_fetch_policies.pdb"
  "CMakeFiles/bench_fig6_fetch_policies.dir/bench_fig6_fetch_policies.cc.o"
  "CMakeFiles/bench_fig6_fetch_policies.dir/bench_fig6_fetch_policies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fetch_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
