# Empty dependencies file for bench_fig6_fetch_policies.
# This may be replaced when dependencies are built.
