file(REMOVE_RECURSE
  "../bench/bench_validation_injection"
  "../bench/bench_validation_injection.pdb"
  "CMakeFiles/bench_validation_injection.dir/bench_validation_injection.cc.o"
  "CMakeFiles/bench_validation_injection.dir/bench_validation_injection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
