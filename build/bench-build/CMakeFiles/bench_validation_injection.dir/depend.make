# Empty dependencies file for bench_validation_injection.
# This may be replaced when dependencies are built.
