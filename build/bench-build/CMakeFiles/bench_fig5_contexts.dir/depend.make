# Empty dependencies file for bench_fig5_contexts.
# This may be replaced when dependencies are built.
