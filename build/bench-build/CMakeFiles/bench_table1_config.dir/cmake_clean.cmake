file(REMOVE_RECURSE
  "../bench/bench_table1_config"
  "../bench/bench_table1_config.pdb"
  "CMakeFiles/bench_table1_config.dir/bench_table1_config.cc.o"
  "CMakeFiles/bench_table1_config.dir/bench_table1_config.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
