file(REMOVE_RECURSE
  "../bench/bench_fig1_avf_profile"
  "../bench/bench_fig1_avf_profile.pdb"
  "CMakeFiles/bench_fig1_avf_profile.dir/bench_fig1_avf_profile.cc.o"
  "CMakeFiles/bench_fig1_avf_profile.dir/bench_fig1_avf_profile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_avf_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
