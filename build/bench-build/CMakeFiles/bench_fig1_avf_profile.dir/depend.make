# Empty dependencies file for bench_fig1_avf_profile.
# This may be replaced when dependencies are built.
