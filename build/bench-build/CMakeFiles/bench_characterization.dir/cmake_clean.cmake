file(REMOVE_RECURSE
  "../bench/bench_characterization"
  "../bench/bench_characterization.pdb"
  "CMakeFiles/bench_characterization.dir/bench_characterization.cc.o"
  "CMakeFiles/bench_characterization.dir/bench_characterization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
