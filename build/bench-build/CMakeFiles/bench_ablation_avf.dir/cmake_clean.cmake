file(REMOVE_RECURSE
  "../bench/bench_ablation_avf"
  "../bench/bench_ablation_avf.pdb"
  "CMakeFiles/bench_ablation_avf.dir/bench_ablation_avf.cc.o"
  "CMakeFiles/bench_ablation_avf.dir/bench_ablation_avf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
