# Empty dependencies file for bench_ablation_avf.
# This may be replaced when dependencies are built.
