
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_branch.cc" "tests/CMakeFiles/smtavf_tests.dir/test_branch.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_branch.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/smtavf_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_config_sweep.cc" "tests/CMakeFiles/smtavf_tests.dir/test_config_sweep.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_config_sweep.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/smtavf_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_core_structs.cc" "tests/CMakeFiles/smtavf_tests.dir/test_core_structs.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_core_structs.cc.o.d"
  "/root/repo/tests/test_core_whitebox.cc" "tests/CMakeFiles/smtavf_tests.dir/test_core_whitebox.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_core_whitebox.cc.o.d"
  "/root/repo/tests/test_dead_code.cc" "tests/CMakeFiles/smtavf_tests.dir/test_dead_code.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_dead_code.cc.o.d"
  "/root/repo/tests/test_directed.cc" "tests/CMakeFiles/smtavf_tests.dir/test_directed.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_directed.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/smtavf_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/smtavf_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_final_edges.cc" "tests/CMakeFiles/smtavf_tests.dir/test_final_edges.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_final_edges.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/smtavf_tests.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_generator.cc" "tests/CMakeFiles/smtavf_tests.dir/test_generator.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_generator.cc.o.d"
  "/root/repo/tests/test_hierarchy.cc" "tests/CMakeFiles/smtavf_tests.dir/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_hierarchy.cc.o.d"
  "/root/repo/tests/test_injection.cc" "tests/CMakeFiles/smtavf_tests.dir/test_injection.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_injection.cc.o.d"
  "/root/repo/tests/test_instr.cc" "tests/CMakeFiles/smtavf_tests.dir/test_instr.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_instr.cc.o.d"
  "/root/repo/tests/test_ledger.cc" "tests/CMakeFiles/smtavf_tests.dir/test_ledger.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_ledger.cc.o.d"
  "/root/repo/tests/test_logging.cc" "tests/CMakeFiles/smtavf_tests.dir/test_logging.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_logging.cc.o.d"
  "/root/repo/tests/test_mem_trackers.cc" "tests/CMakeFiles/smtavf_tests.dir/test_mem_trackers.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_mem_trackers.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/smtavf_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_mix_sweep.cc" "tests/CMakeFiles/smtavf_tests.dir/test_mix_sweep.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_mix_sweep.cc.o.d"
  "/root/repo/tests/test_paper_properties.cc" "tests/CMakeFiles/smtavf_tests.dir/test_paper_properties.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_paper_properties.cc.o.d"
  "/root/repo/tests/test_policy.cc" "tests/CMakeFiles/smtavf_tests.dir/test_policy.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_policy.cc.o.d"
  "/root/repo/tests/test_profile.cc" "tests/CMakeFiles/smtavf_tests.dir/test_profile.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_profile.cc.o.d"
  "/root/repo/tests/test_regfile.cc" "tests/CMakeFiles/smtavf_tests.dir/test_regfile.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_regfile.cc.o.d"
  "/root/repo/tests/test_replication.cc" "tests/CMakeFiles/smtavf_tests.dir/test_replication.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_replication.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/smtavf_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/smtavf_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_squash_interplay.cc" "tests/CMakeFiles/smtavf_tests.dir/test_squash_interplay.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_squash_interplay.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/smtavf_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/smtavf_tests.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_table.cc.o.d"
  "/root/repo/tests/test_tlb.cc" "tests/CMakeFiles/smtavf_tests.dir/test_tlb.cc.o" "gcc" "tests/CMakeFiles/smtavf_tests.dir/test_tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smtavf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
