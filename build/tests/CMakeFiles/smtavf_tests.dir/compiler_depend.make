# Empty compiler generated dependencies file for smtavf_tests.
# This may be replaced when dependencies are built.
