file(REMOVE_RECURSE
  "CMakeFiles/injection_validation.dir/injection_validation.cc.o"
  "CMakeFiles/injection_validation.dir/injection_validation.cc.o.d"
  "injection_validation"
  "injection_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/injection_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
