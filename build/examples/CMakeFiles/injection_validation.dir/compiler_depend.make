# Empty compiler generated dependencies file for injection_validation.
# This may be replaced when dependencies are built.
