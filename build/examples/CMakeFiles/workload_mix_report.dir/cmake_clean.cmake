file(REMOVE_RECURSE
  "CMakeFiles/workload_mix_report.dir/workload_mix_report.cc.o"
  "CMakeFiles/workload_mix_report.dir/workload_mix_report.cc.o.d"
  "workload_mix_report"
  "workload_mix_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_mix_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
