# Empty dependencies file for workload_mix_report.
# This may be replaced when dependencies are built.
