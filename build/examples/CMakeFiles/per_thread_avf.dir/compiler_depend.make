# Empty compiler generated dependencies file for per_thread_avf.
# This may be replaced when dependencies are built.
