file(REMOVE_RECURSE
  "CMakeFiles/per_thread_avf.dir/per_thread_avf.cc.o"
  "CMakeFiles/per_thread_avf.dir/per_thread_avf.cc.o.d"
  "per_thread_avf"
  "per_thread_avf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/per_thread_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
