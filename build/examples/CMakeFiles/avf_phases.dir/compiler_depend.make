# Empty compiler generated dependencies file for avf_phases.
# This may be replaced when dependencies are built.
