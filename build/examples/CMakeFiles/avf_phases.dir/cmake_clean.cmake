file(REMOVE_RECURSE
  "CMakeFiles/avf_phases.dir/avf_phases.cc.o"
  "CMakeFiles/avf_phases.dir/avf_phases.cc.o.d"
  "avf_phases"
  "avf_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avf_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
