# Empty compiler generated dependencies file for smtavf.
# This may be replaced when dependencies are built.
