file(REMOVE_RECURSE
  "libsmtavf.a"
)
