
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/avf/dead_code.cc" "src/CMakeFiles/smtavf.dir/avf/dead_code.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/avf/dead_code.cc.o.d"
  "/root/repo/src/avf/injection.cc" "src/CMakeFiles/smtavf.dir/avf/injection.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/avf/injection.cc.o.d"
  "/root/repo/src/avf/ledger.cc" "src/CMakeFiles/smtavf.dir/avf/ledger.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/avf/ledger.cc.o.d"
  "/root/repo/src/avf/mem_trackers.cc" "src/CMakeFiles/smtavf.dir/avf/mem_trackers.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/avf/mem_trackers.cc.o.d"
  "/root/repo/src/avf/report.cc" "src/CMakeFiles/smtavf.dir/avf/report.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/avf/report.cc.o.d"
  "/root/repo/src/avf/timeline.cc" "src/CMakeFiles/smtavf.dir/avf/timeline.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/avf/timeline.cc.o.d"
  "/root/repo/src/base/env.cc" "src/CMakeFiles/smtavf.dir/base/env.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/base/env.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/smtavf.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/base/logging.cc.o.d"
  "/root/repo/src/base/rng.cc" "src/CMakeFiles/smtavf.dir/base/rng.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/base/rng.cc.o.d"
  "/root/repo/src/base/stats.cc" "src/CMakeFiles/smtavf.dir/base/stats.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/base/stats.cc.o.d"
  "/root/repo/src/base/table.cc" "src/CMakeFiles/smtavf.dir/base/table.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/base/table.cc.o.d"
  "/root/repo/src/branch/btb.cc" "src/CMakeFiles/smtavf.dir/branch/btb.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/branch/btb.cc.o.d"
  "/root/repo/src/branch/gshare.cc" "src/CMakeFiles/smtavf.dir/branch/gshare.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/branch/gshare.cc.o.d"
  "/root/repo/src/branch/predictor.cc" "src/CMakeFiles/smtavf.dir/branch/predictor.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/branch/predictor.cc.o.d"
  "/root/repo/src/branch/ras.cc" "src/CMakeFiles/smtavf.dir/branch/ras.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/branch/ras.cc.o.d"
  "/root/repo/src/core/fu_pool.cc" "src/CMakeFiles/smtavf.dir/core/fu_pool.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/core/fu_pool.cc.o.d"
  "/root/repo/src/core/iq.cc" "src/CMakeFiles/smtavf.dir/core/iq.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/core/iq.cc.o.d"
  "/root/repo/src/core/lsq.cc" "src/CMakeFiles/smtavf.dir/core/lsq.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/core/lsq.cc.o.d"
  "/root/repo/src/core/regfile.cc" "src/CMakeFiles/smtavf.dir/core/regfile.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/core/regfile.cc.o.d"
  "/root/repo/src/core/rename.cc" "src/CMakeFiles/smtavf.dir/core/rename.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/core/rename.cc.o.d"
  "/root/repo/src/core/rob.cc" "src/CMakeFiles/smtavf.dir/core/rob.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/core/rob.cc.o.d"
  "/root/repo/src/core/smt_core.cc" "src/CMakeFiles/smtavf.dir/core/smt_core.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/core/smt_core.cc.o.d"
  "/root/repo/src/isa/instr.cc" "src/CMakeFiles/smtavf.dir/isa/instr.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/isa/instr.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/smtavf.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/smtavf.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/CMakeFiles/smtavf.dir/mem/tlb.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/mem/tlb.cc.o.d"
  "/root/repo/src/metrics/metrics.cc" "src/CMakeFiles/smtavf.dir/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/metrics/metrics.cc.o.d"
  "/root/repo/src/policy/dg.cc" "src/CMakeFiles/smtavf.dir/policy/dg.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/policy/dg.cc.o.d"
  "/root/repo/src/policy/dwarn.cc" "src/CMakeFiles/smtavf.dir/policy/dwarn.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/policy/dwarn.cc.o.d"
  "/root/repo/src/policy/fetch_policy.cc" "src/CMakeFiles/smtavf.dir/policy/fetch_policy.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/policy/fetch_policy.cc.o.d"
  "/root/repo/src/policy/flush.cc" "src/CMakeFiles/smtavf.dir/policy/flush.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/policy/flush.cc.o.d"
  "/root/repo/src/policy/icount.cc" "src/CMakeFiles/smtavf.dir/policy/icount.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/policy/icount.cc.o.d"
  "/root/repo/src/policy/pdg.cc" "src/CMakeFiles/smtavf.dir/policy/pdg.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/policy/pdg.cc.o.d"
  "/root/repo/src/policy/pstall.cc" "src/CMakeFiles/smtavf.dir/policy/pstall.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/policy/pstall.cc.o.d"
  "/root/repo/src/policy/rat.cc" "src/CMakeFiles/smtavf.dir/policy/rat.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/policy/rat.cc.o.d"
  "/root/repo/src/policy/round_robin.cc" "src/CMakeFiles/smtavf.dir/policy/round_robin.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/policy/round_robin.cc.o.d"
  "/root/repo/src/policy/stall.cc" "src/CMakeFiles/smtavf.dir/policy/stall.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/policy/stall.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/smtavf.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/smtavf.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/smtavf.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/sim/simulator.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/smtavf.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/mixes.cc" "src/CMakeFiles/smtavf.dir/workload/mixes.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/workload/mixes.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/CMakeFiles/smtavf.dir/workload/profile.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/workload/profile.cc.o.d"
  "/root/repo/src/workload/spec2000.cc" "src/CMakeFiles/smtavf.dir/workload/spec2000.cc.o" "gcc" "src/CMakeFiles/smtavf.dir/workload/spec2000.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
