#include "mem/hierarchy.hh"

#include <algorithm>

#include "base/logging.hh"

namespace smtavf
{

MemHierarchy::MemHierarchy(const MemConfig &cfg)
    : cfg_(cfg), il1_(cfg.il1), dl1_(cfg.dl1), l2_(cfg.l2),
      itlb_(cfg.itlb), dtlb_(cfg.dtlb),
      mshrPool_(std::make_shared<SlabPool>()),
      il1Mshrs_(PoolAlloc<std::pair<const Addr, Mshr>>(mshrPool_)),
      dl1Mshrs_(PoolAlloc<std::pair<const Addr, Mshr>>(mshrPool_)),
      l2Mshrs_(PoolAlloc<std::pair<const Addr, Mshr>>(mshrPool_))
{
    // NOTE: do not reserve() these maps. drainMshrs replays fills in map
    // iteration order, which depends on the bucket count — changing it
    // reorders same-cycle ledger writes and perturbs the floating-point
    // AVF sums. Outstanding misses stay far below the default bucket
    // count anyway, so the maps never rehash in steady state.
}

void
MemHierarchy::reset()
{
    il1_.reset();
    dl1_.reset();
    l2_.reset();
    itlb_.reset();
    dtlb_.reset();
    PoolAlloc<std::pair<const Addr, Mshr>> alloc(mshrPool_);
    il1Mshrs_ = MshrMap(alloc);
    dl1Mshrs_ = MshrMap(alloc);
    l2Mshrs_ = MshrMap(alloc);
}

Cycle
MemHierarchy::accessL2(ThreadId tid, Addr addr, Cycle now, bool &l2_miss)
{
    if (l2_.access(addr, 1, false, tid, now)) {
        l2_miss = false;
        return now + cfg_.l2.latency;
    }

    l2_miss = true;
    Addr l2_line = l2_.lineAddr(addr);
    auto it = l2Mshrs_.find(l2_line);
    if (it != l2Mshrs_.end())
        return it->second.ready;

    Cycle ready = now + cfg_.memLatency;
    l2Mshrs_.emplace(l2_line, Mshr{ready, true, tid, {}});
    return ready;
}

MemOutcome
MemHierarchy::accessL1(Cache &l1, MshrMap &mshrs, ThreadId tid, Addr addr,
                       std::uint32_t size, bool is_write, Cycle now)
{
    MemOutcome out;
    if (l1.access(addr, size, is_write, tid, now)) {
        out.ready = now + l1.config().latency;
        return out;
    }

    out.l1Miss = true;
    Addr line = l1.lineAddr(addr);
    auto it = mshrs.find(line);
    if (it != mshrs.end()) {
        // Merge into the outstanding miss.
        out.ready = it->second.ready;
        out.l2Miss = it->second.l2Miss;
        it->second.ops.push_back({is_write, addr, size, tid});
        return out;
    }

    bool l2_miss = false;
    Cycle ready = accessL2(tid, addr, now, l2_miss);
    out.ready = ready;
    out.l2Miss = l2_miss;
    Mshr mshr;
    mshr.ready = ready;
    mshr.l2Miss = l2_miss;
    mshr.tid = tid;
    mshr.ops.push_back({is_write, addr, size, tid});
    mshrs.emplace(line, std::move(mshr));
    return out;
}

MemOutcome
MemHierarchy::load(ThreadId tid, Addr addr, std::uint32_t size, Cycle now)
{
    std::uint32_t tlb_penalty = dtlb_.access(addr, tid, now);
    MemOutcome out = accessL1(dl1_, dl1Mshrs_, tid, addr, size, false, now);
    if (tlb_penalty) {
        out.tlbMiss = true;
        out.ready += tlb_penalty;
    }
    return out;
}

std::uint32_t
MemHierarchy::translateData(ThreadId tid, Addr addr, Cycle now)
{
    return dtlb_.access(addr, tid, now);
}

MemOutcome
MemHierarchy::storeCommit(ThreadId tid, Addr addr, std::uint32_t size,
                          Cycle now)
{
    return accessL1(dl1_, dl1Mshrs_, tid, addr, size, true, now);
}

MemOutcome
MemHierarchy::fetch(ThreadId tid, Addr pc, Cycle now)
{
    std::uint32_t tlb_penalty = itlb_.access(pc, tid, now);
    MemOutcome out = accessL1(il1_, il1Mshrs_, tid, pc, 4, false, now);
    if (tlb_penalty) {
        out.tlbMiss = true;
        out.ready += tlb_penalty;
    }
    return out;
}

void
MemHierarchy::drainMshrs(Cache &l1, MshrMap &mshrs, Cycle now, bool force)
{
    for (auto it = mshrs.begin(); it != mshrs.end();) {
        if (force || it->second.ready <= now) {
            Cycle land = std::min(it->second.ready, now);
            l1.fill(it->first, it->second.tid, land);
            for (const auto &op : it->second.ops) {
                bool hit [[maybe_unused]] =
                    l1.access(op.addr, op.size, op.isWrite, op.tid, land);
            }
            it = mshrs.erase(it);
        } else {
            ++it;
        }
    }
}

void
MemHierarchy::tick(Cycle now)
{
    // L2 fills must land before L1 fills that depend on them; both maps are
    // drained by ready time, and L1 ready times are never earlier than the
    // corresponding L2 fill, so draining L2 first suffices.
    for (auto it = l2Mshrs_.begin(); it != l2Mshrs_.end();) {
        if (it->second.ready <= now) {
            l2_.fill(it->first, it->second.tid, it->second.ready);
            it = l2Mshrs_.erase(it);
        } else {
            ++it;
        }
    }
    drainMshrs(il1_, il1Mshrs_, now, false);
    drainMshrs(dl1_, dl1Mshrs_, now, false);
}

void
MemHierarchy::finalize(Cycle now)
{
    for (auto &kv : l2Mshrs_)
        l2_.fill(kv.first, kv.second.tid, now);
    l2Mshrs_.clear();
    drainMshrs(il1_, il1Mshrs_, now, true);
    drainMshrs(dl1_, dl1Mshrs_, now, true);
    dl1_.flushAll(now);
    il1_.flushAll(now);
    itlb_.flushAll(now);
    dtlb_.flushAll(now);
}

} // namespace smtavf
