/**
 * @file
 * The memory hierarchy of Table 1: IL1 (32KB/2-way/32B), DL1
 * (64KB/4-way/64B), unified L2 (2MB/4-way/128B, 12-cycle), 200-cycle
 * memory, plus ITLB/DTLB. Misses allocate MSHRs and fill after the full
 * latency; accesses to in-flight lines merge into the existing MSHR, and
 * their cache-content effects (byte reads/writes seen by the AVF observer)
 * apply when the fill lands.
 */

#ifndef SMTAVF_MEM_HIERARCHY_HH
#define SMTAVF_MEM_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "base/pool_alloc.hh"
#include "base/small_vec.hh"
#include "base/types.hh"
#include "ckpt/serializer.hh"
#include "mem/cache.hh"
#include "mem/tlb.hh"

namespace smtavf
{

/** Full hierarchy configuration (Table 1 defaults). */
struct MemConfig
{
    CacheConfig il1{"il1", 32 * 1024, 2, 32, 1, 2};
    CacheConfig dl1{"dl1", 64 * 1024, 4, 64, 1, 2};
    CacheConfig l2{"l2", 2 * 1024 * 1024, 4, 128, 12, 1};
    TlbConfig itlb{"itlb", 128, 4, 8192, 200};
    TlbConfig dtlb{"dtlb", 256, 4, 8192, 200};
    std::uint32_t memLatency = 200;
};

/** Timing and classification of one memory access. */
struct MemOutcome
{
    Cycle ready = 0;      ///< cycle the data is available
    bool l1Miss = false;  ///< missed the first-level cache involved
    bool l2Miss = false;  ///< went all the way to memory
    bool tlbMiss = false; ///< paid a TLB fill on the way
};

/** IL1 + DL1 + L2 + DRAM with MSHRs and delayed fills. */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const MemConfig &cfg);

    /** Data load: DTLB + DL1 (+L2/DRAM). Fires AVF observer events. */
    MemOutcome load(ThreadId tid, Addr addr, std::uint32_t size, Cycle now);

    /** Store address translation at execute: returns the DTLB penalty. */
    std::uint32_t translateData(ThreadId tid, Addr addr, Cycle now);

    /**
     * Store data write at commit (write-allocate, write-back). Never
     * blocks commit; on a miss the write applies when the fill lands.
     */
    MemOutcome storeCommit(ThreadId tid, Addr addr, std::uint32_t size,
                           Cycle now);

    /** Instruction fetch of the line containing @p pc: ITLB + IL1. */
    MemOutcome fetch(ThreadId tid, Addr pc, Cycle now);

    /** Land any fills whose latency has elapsed. Call once per cycle. */
    void tick(Cycle now);

    /**
     * Drain all outstanding fills and flush caches/TLBs so the AVF
     * observers can close every open interval. Call once at end of run.
     */
    void finalize(Cycle now);

    /**
     * Worker-reuse hook: restore the exact post-construction state.
     * Caches/TLBs reset in place; the MSHR maps are replaced by fresh
     * default-constructed maps over the same node pool, because a
     * cleared map keeps its grown bucket array while a fresh one starts
     * from the implementation's default — and bucket count feeds the
     * iteration order fills replay in (see the constructor note).
     * Allocation-free: the moved-from temporaries start on libstdc++'s
     * static single-bucket placeholder.
     */
    void reset();

    Cache &il1() { return il1_; }
    Cache &dl1() { return dl1_; }
    Cache &l2() { return l2_; }
    Tlb &itlb() { return itlb_; }
    Tlb &dtlb() { return dtlb_; }
    const MemConfig &config() const { return cfg_; }

    /** Outstanding DL1 miss count (used by fetch policies). */
    std::size_t outstandingDl1Misses() const { return dl1Mshrs_.size(); }

    /** All outstanding misses, every level (checkpoint drain detection). */
    std::size_t
    outstandingMisses() const
    {
        return il1Mshrs_.size() + dl1Mshrs_.size() + l2Mshrs_.size();
    }

    /**
     * Checkpoint hook: caches and TLBs only. The simulator checkpoints
     * exclusively at drained boundaries — outstandingMisses() == 0, the
     * drain-then-checkpoint policy of docs/CHECKPOINT.md — so the MSHR
     * maps are empty by construction and never travel. The Serializer
     * instantiation asserts that; restore starts with fresh empty maps.
     */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        if constexpr (!Ar::loading) {
            if (outstandingMisses() != 0)
                throw CheckpointError(
                    "checkpoint capture with outstanding MSHRs "
                    "(drain-then-checkpoint violated)");
        }
        ar(il1_);
        ar(dl1_);
        ar(l2_);
        ar(itlb_);
        ar(dtlb_);
    }

  private:
    struct PendingOp
    {
        bool isWrite;
        Addr addr;
        std::uint32_t size;
        ThreadId tid;
    };

    struct Mshr
    {
        Cycle ready = 0;
        bool l2Miss = false;
        ThreadId tid = invalidThread;
        /** Merged accesses to the in-flight line; inline for short bursts. */
        SmallVec<PendingOp, 8> ops;
    };

    /**
     * MSHR table with pooled hash nodes: every miss used to allocate (and
     * every fill free) one map node on the global heap; the SlabPool
     * recycles them instead. In libstdc++ the iteration order of an
     * unordered_map depends only on hashes and insertion sequence — never
     * on the allocator — so drain order, and with it every cache-fill
     * timestamp the AVF observers see, is unchanged.
     */
    using MshrMap =
        std::unordered_map<Addr, Mshr, std::hash<Addr>, std::equal_to<Addr>,
                           PoolAlloc<std::pair<const Addr, Mshr>>>;

    /**
     * Common L1 access path: try @p l1; on miss, merge into or allocate an
     * MSHR whose fill time comes from the L2/DRAM path.
     */
    MemOutcome accessL1(Cache &l1, MshrMap &mshrs, ThreadId tid, Addr addr,
                        std::uint32_t size, bool is_write, Cycle now);

    /** L2 lookup/allocation for an L1 miss; returns data-ready cycle. */
    Cycle accessL2(ThreadId tid, Addr addr, Cycle now, bool &l2_miss);

    void drainMshrs(Cache &l1, MshrMap &mshrs, Cycle now, bool force);

    MemConfig cfg_;
    Cache il1_;
    Cache dl1_;
    Cache l2_;
    Tlb itlb_;
    Tlb dtlb_;

    /** Backing storage for the three MSHR maps' nodes (declared first). */
    std::shared_ptr<SlabPool> mshrPool_;

    MshrMap il1Mshrs_;
    MshrMap dl1Mshrs_;
    MshrMap l2Mshrs_;
};

} // namespace smtavf

#endif // SMTAVF_MEM_HIERARCHY_HH
