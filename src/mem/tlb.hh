/**
 * @file
 * Set-associative TLB model (Table 1: 128-entry 4-way ITLB, 256-entry
 * 4-way DTLB, 200-cycle miss penalty). Like Cache, it exposes an observer
 * interface so the AVF framework can track entry residency.
 */

#ifndef SMTAVF_MEM_TLB_HH
#define SMTAVF_MEM_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/arena.hh"
#include "base/types.hh"

namespace smtavf
{

/** TLB geometry and miss penalty. */
struct TlbConfig
{
    std::string name = "tlb";
    std::uint32_t entries = 256;
    std::uint32_t ways = 4;
    std::uint32_t pageBytes = 8192;
    std::uint32_t missPenalty = 200;
};

/** Observer of TLB entry lifecycle (slot ids are stable). */
class TlbObserver
{
  public:
    virtual ~TlbObserver() = default;
    virtual void onFill(std::uint32_t slot, ThreadId tid, Cycle now) = 0;
    virtual void onHit(std::uint32_t slot, ThreadId tid, Cycle now) = 0;
    virtual void onEvict(std::uint32_t slot, Cycle now) = 0;
};

/** One TLB. Misses fill immediately; the penalty is returned as latency. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &cfg);

    void setObserver(TlbObserver *obs) { observer_ = obs; }

    /**
     * Translate the page of @p addr for @p tid. Returns the extra latency
     * this access pays: 0 on a hit, missPenalty on a miss (the entry is
     * filled, evicting LRU if needed).
     */
    std::uint32_t access(Addr addr, ThreadId tid, Cycle now);

    /**
     * Install the translation of @p addr without touching hit/miss stats
     * (cache pre-warming before cycle 0).
     */
    void prefill(Addr addr, ThreadId tid);

    /** Evict all entries (finalizes AVF intervals at end of run). */
    void flushAll(Cycle now);

    /** Worker-reuse hook: exact post-construction state, allocation-free. */
    void
    reset()
    {
        entries_.assign(entries_.size(), Entry{});
        useClock_ = 0;
        hits_ = 0;
        misses_ = 0;
    }

    const TlbConfig &config() const { return cfg_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    double
    missRate() const
    {
        auto total = hits_ + misses_;
        return total ? static_cast<double>(misses_) / total : 0.0;
    }

    /** Checkpoint hook: entries, LRU clock and hit/miss counters. */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        ar(entries_);
        ar(useClock_);
        ar(hits_);
        ar(misses_);
    }

  private:
    struct Entry
    {
        bool valid = false;
        Addr vpn = 0;
        ThreadId tid = invalidThread; ///< address spaces are per-thread
        std::uint64_t lastUse = 0;

        template <class Ar>
        void
        serialize(Ar &ar)
        {
            ar(valid);
            ar(vpn);
            ar(tid);
            ar(lastUse);
        }
    };

    TlbConfig cfg_;
    std::uint32_t sets_;
    AVec<Entry> entries_;
    TlbObserver *observer_ = nullptr;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace smtavf

#endif // SMTAVF_MEM_TLB_HH
