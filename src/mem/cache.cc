#include "mem/cache.hh"

#include "base/logging.hh"

namespace smtavf
{

namespace
{

bool
powerOfTwo(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.sizeBytes == 0 || cfg_.ways == 0 || cfg_.lineBytes == 0)
        SMTAVF_FATAL(cfg_.name, ": zero geometry parameter");
    if (!powerOfTwo(cfg_.lineBytes))
        SMTAVF_FATAL(cfg_.name, ": line size must be a power of two");
    std::uint64_t lines = cfg_.sizeBytes / cfg_.lineBytes;
    if (lines % cfg_.ways != 0)
        SMTAVF_FATAL(cfg_.name, ": lines not divisible by ways");
    sets_ = static_cast<std::uint32_t>(lines / cfg_.ways);
    if (!powerOfTwo(sets_))
        SMTAVF_FATAL(cfg_.name, ": set count must be a power of two");
    lines_.resize(lines);
}

std::uint32_t
Cache::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>(addr / cfg_.lineBytes) & (sets_ - 1);
}

Cache::Line *
Cache::findLine(Addr addr)
{
    Addr line_addr = lineAddr(addr);
    auto set = setIndex(addr);
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        auto &line = lines_[set * cfg_.ways + w];
        if (line.valid && line.tag == line_addr)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

bool
Cache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

bool
Cache::access(Addr addr, std::uint32_t size, bool is_write, ThreadId tid,
              Cycle now)
{
    Line *line = findLine(addr);
    if (!line) {
        ++misses_;
        return false;
    }
    ++hits_;
    line->lastUse = ++useClock_;
    if (is_write)
        line->dirty = true;
    if (observer_) {
        auto slot = static_cast<std::uint32_t>(line - lines_.data());
        observer_->onAccess(slot, addr, size, is_write, tid, now);
    }
    return true;
}

void
Cache::fill(Addr addr, ThreadId tid, Cycle now)
{
    if (findLine(addr))
        return;

    Addr line_addr = lineAddr(addr);
    auto set = setIndex(addr);
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        auto &line = lines_[set * cfg_.ways + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }

    auto slot = static_cast<std::uint32_t>(victim - lines_.data());
    if (victim->valid && observer_)
        observer_->onEvict(slot, victim->dirty, now);

    victim->valid = true;
    victim->dirty = false;
    victim->tag = line_addr;
    victim->lastUse = ++useClock_;
    if (observer_)
        observer_->onFill(slot, line_addr, tid, now);
}

void
Cache::flushAll(Cycle now)
{
    for (std::uint32_t slot = 0; slot < lines_.size(); ++slot) {
        auto &line = lines_[slot];
        if (!line.valid)
            continue;
        if (observer_)
            observer_->onEvict(slot, line.dirty, now);
        line.valid = false;
        line.dirty = false;
    }
}

} // namespace smtavf
