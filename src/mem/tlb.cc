#include "mem/tlb.hh"

#include "base/logging.hh"

namespace smtavf
{

Tlb::Tlb(const TlbConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.entries == 0 || cfg_.ways == 0 ||
        cfg_.entries % cfg_.ways != 0)
        SMTAVF_FATAL(cfg_.name, ": bad geometry");
    sets_ = cfg_.entries / cfg_.ways;
    if ((sets_ & (sets_ - 1)) != 0)
        SMTAVF_FATAL(cfg_.name, ": set count must be a power of two");
    if ((cfg_.pageBytes & (cfg_.pageBytes - 1)) != 0)
        SMTAVF_FATAL(cfg_.name, ": page size must be a power of two");
    entries_.resize(cfg_.entries);
}

std::uint32_t
Tlb::access(Addr addr, ThreadId tid, Cycle now)
{
    Addr vpn = addr / cfg_.pageBytes;
    auto set = static_cast<std::uint32_t>(vpn) & (sets_ - 1);

    Entry *victim = nullptr;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        auto &e = entries_[set * cfg_.ways + w];
        if (e.valid && e.vpn == vpn && e.tid == tid) {
            e.lastUse = ++useClock_;
            ++hits_;
            if (observer_) {
                auto slot = static_cast<std::uint32_t>(&e - entries_.data());
                observer_->onHit(slot, tid, now);
            }
            return 0;
        }
        if (!victim || !e.valid ||
            (victim->valid && e.lastUse < victim->lastUse))
            victim = &e;
    }

    ++misses_;
    auto slot = static_cast<std::uint32_t>(victim - entries_.data());
    if (victim->valid && observer_)
        observer_->onEvict(slot, now);
    victim->valid = true;
    victim->vpn = vpn;
    victim->tid = tid;
    victim->lastUse = ++useClock_;
    if (observer_)
        observer_->onFill(slot, tid, now);
    return cfg_.missPenalty;
}

void
Tlb::prefill(Addr addr, ThreadId tid)
{
    Addr vpn = addr / cfg_.pageBytes;
    auto set = static_cast<std::uint32_t>(vpn) & (sets_ - 1);

    Entry *victim = nullptr;
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        auto &e = entries_[set * cfg_.ways + w];
        if (e.valid && e.vpn == vpn && e.tid == tid)
            return;
        if (!victim || !e.valid ||
            (victim->valid && e.lastUse < victim->lastUse))
            victim = &e;
    }
    auto slot = static_cast<std::uint32_t>(victim - entries_.data());
    if (victim->valid && observer_)
        observer_->onEvict(slot, 0);
    victim->valid = true;
    victim->vpn = vpn;
    victim->tid = tid;
    victim->lastUse = ++useClock_;
    if (observer_)
        observer_->onFill(slot, tid, 0);
}

void
Tlb::flushAll(Cycle now)
{
    for (std::uint32_t slot = 0; slot < entries_.size(); ++slot) {
        auto &e = entries_[slot];
        if (!e.valid)
            continue;
        if (observer_)
            observer_->onEvict(slot, now);
        e.valid = false;
    }
}

} // namespace smtavf
