/**
 * @file
 * Set-associative, write-back, write-allocate cache model with LRU
 * replacement and an observer interface through which the AVF framework
 * tracks per-byte liveness and tag residency without the memory model
 * depending on the AVF code.
 *
 * The cache is a content/placement model only; timing (latencies, MSHRs,
 * delayed fills) lives in MemHierarchy.
 */

#ifndef SMTAVF_MEM_CACHE_HH
#define SMTAVF_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/arena.hh"
#include "base/types.hh"

namespace smtavf
{

/** Geometry of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint32_t sizeBytes = 64 * 1024;
    std::uint32_t ways = 4;
    std::uint32_t lineBytes = 64;
    std::uint32_t latency = 1; ///< access latency in cycles
    std::uint32_t ports = 2;   ///< accesses per cycle (enforced by the core)
};

/**
 * Callbacks fired as lines move through the cache. Slot ids are stable
 * (set * ways + way), so an observer can keep per-slot state.
 */
class CacheObserver
{
  public:
    virtual ~CacheObserver() = default;

    /** A line was installed into @p slot. */
    virtual void onFill(std::uint32_t slot, Addr line_addr, ThreadId tid,
                        Cycle now) = 0;

    /** Bytes [addr, addr+size) of the line in @p slot were read/written. */
    virtual void onAccess(std::uint32_t slot, Addr addr, std::uint32_t size,
                          bool is_write, ThreadId tid, Cycle now) = 0;

    /** The line in @p slot was evicted (dirty => writeback). */
    virtual void onEvict(std::uint32_t slot, bool dirty, Cycle now) = 0;
};

/** One cache level. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /** Attach at most one observer (may be null to detach). */
    void setObserver(CacheObserver *obs) { observer_ = obs; }

    /** Hit test without any state change. */
    bool probe(Addr addr) const;

    /**
     * Reference bytes [addr, addr+size). On a hit: updates LRU, sets dirty
     * on writes, notifies the observer, returns true. On a miss returns
     * false without filling (the hierarchy decides when the fill lands).
     */
    bool access(Addr addr, std::uint32_t size, bool is_write, ThreadId tid,
                Cycle now);

    /**
     * Install the line containing @p addr, evicting the LRU victim (with
     * observer notification) if the set is full. No-op if already present.
     */
    void fill(Addr addr, ThreadId tid, Cycle now);

    /** Evict every resident line (used to finalize AVF at end of run). */
    void flushAll(Cycle now);

    /**
     * Worker-reuse hook: restore the exact post-construction state
     * (cold lines, zeroed LRU clock and counters) without touching the
     * observer wiring or the line array's capacity. Allocation-free.
     */
    void
    reset()
    {
        lines_.assign(lines_.size(), Line{});
        useClock_ = 0;
        hits_ = 0;
        misses_ = 0;
    }

    const CacheConfig &config() const { return cfg_; }
    std::uint32_t numSets() const { return sets_; }
    std::uint32_t numLines() const { return sets_ * cfg_.ways; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    double
    missRate() const
    {
        auto total = hits_ + misses_;
        return total ? static_cast<double>(misses_) / total : 0.0;
    }

    /** Line-aligned address for @p addr. */
    Addr lineAddr(Addr addr) const { return addr & ~Addr{cfg_.lineBytes - 1}; }

    /**
     * Checkpoint hook: contents, LRU clock and hit/miss counters. The
     * observer is wiring, not state — the restoring simulator re-attaches
     * its own tracker, whose per-slot state is serialized separately.
     */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        ar(lines_);
        ar(useClock_);
        ar(hits_);
        ar(misses_);
    }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0; ///< full line address (simplifies debugging)
        std::uint64_t lastUse = 0;

        template <class Ar>
        void
        serialize(Ar &ar)
        {
            ar(valid);
            ar(dirty);
            ar(tag);
            ar(lastUse);
        }
    };

    std::uint32_t setIndex(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    CacheConfig cfg_;
    std::uint32_t sets_;
    AVec<Line> lines_;
    CacheObserver *observer_ = nullptr;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace smtavf

#endif // SMTAVF_MEM_CACHE_HH
