#include "core/rob.hh"

#include "base/logging.hh"

namespace smtavf
{

Rob::Rob(std::uint32_t capacity)
    : capacity_(capacity), entries_(capacity)
{
    if (capacity == 0)
        SMTAVF_FATAL("ROB capacity must be positive");
}

void
Rob::push(const InstPtr &in)
{
    if (full())
        SMTAVF_PANIC("push into a full ROB");
    if (!entries_.empty() && entries_.back()->seq >= in->seq)
        SMTAVF_PANIC("ROB push out of program order");
    entries_.push_back(in);
}

const InstPtr &
Rob::front() const
{
    static const InstPtr null_inst;
    return entries_.empty() ? null_inst : entries_.front();
}

void
Rob::popFront()
{
    if (entries_.empty())
        SMTAVF_PANIC("pop from an empty ROB");
    entries_.pop_front();
}

} // namespace smtavf
