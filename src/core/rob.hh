/**
 * @file
 * Per-thread reorder buffer (Table 1: 96 entries per thread). Holds
 * in-flight instructions in program order; the head commits in order, the
 * tail is walked backwards on a squash.
 */

#ifndef SMTAVF_CORE_ROB_HH
#define SMTAVF_CORE_ROB_HH

#include "base/ring_buffer.hh"
#include "base/types.hh"
#include "isa/instr.hh"

namespace smtavf
{

/** One thread's reorder buffer. */
class Rob
{
  public:
    explicit Rob(std::uint32_t capacity);

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    std::uint32_t capacity() const { return capacity_; }

    /** Append at the tail (program order). */
    void push(const InstPtr &in);

    /** Oldest entry, or nullptr when empty. */
    const InstPtr &front() const;

    /** Retire the oldest entry. */
    void popFront();

    /**
     * Remove every instruction with seq > @p seq, youngest first, invoking
     * @p undo on each (rename-map walk-back, resource release, AVF
     * classification happen in the callback).
     */
    template <typename Undo>
    void
    squashAfter(SeqNum seq, Undo &&undo)
    {
        while (!entries_.empty() && entries_.back()->seq > seq) {
            undo(entries_.back());
            entries_.pop_back();
        }
    }

    /** Iterate oldest to youngest. */
    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

    /** Worker-reuse hook: empty the ring, capacity retained. */
    void reset() { entries_.reset(); }

  private:
    std::uint32_t capacity_;
    /** Ring sized to capacity up front: no allocation after construction. */
    RingBuffer<InstPtr> entries_;
};

} // namespace smtavf

#endif // SMTAVF_CORE_ROB_HH
