/**
 * @file
 * The SMT processor core: a cycle-level, execution-driven model of the
 * paper's Table-1 machine. Shared resources (issue queue, physical
 * register pool, function units, caches) are contended by up to eight
 * hardware contexts with private ROBs, LSQs, rename maps and branch
 * predictors — the structural sharing whose reliability consequences the
 * paper characterizes.
 *
 * Pipeline (7 stages): fetch -> decode -> rename -> dispatch -> issue ->
 * execute -> writeback, with in-order per-thread commit behind it. The
 * stages are evaluated back-to-front each cycle so same-cycle structural
 * hazards resolve naturally.
 *
 * AVF accounting: every stage closes bit-residency intervals on the
 * instructions flowing through it (DynInstr::pending); classification is
 * deferred to the DeadCodeAnalyzer, while the cache/TLB observers write to
 * the ledger directly.
 */

#ifndef SMTAVF_CORE_SMT_CORE_HH
#define SMTAVF_CORE_SMT_CORE_HH

#include <map>
#include <memory>
#include <vector>

#include "avf/dead_code.hh"
#include "avf/injection.hh"
#include "avf/ledger.hh"
#include "branch/predictor.hh"
#include "core/fu_pool.hh"
#include "core/iq.hh"
#include "core/lsq.hh"
#include "core/machine_config.hh"
#include "core/regfile.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "base/ring_buffer.hh"
#include "isa/instr_pool.hh"
#include "mem/hierarchy.hh"
#include "policy/fetch_policy.hh"
#include "workload/generator.hh"

namespace smtavf
{

/** The SMT pipeline. */
class SmtCore : public PolicyContext
{
  public:
    /**
     * @param cfg      machine parameters (validated)
     * @param streams  one instruction stream per context (size must equal
     *                 cfg.contexts); not owned
     * @param hier     memory hierarchy (shared with the AVF trackers)
     * @param ledger   AVF interval destination
     */
    SmtCore(const MachineConfig &cfg,
            std::vector<StreamGenerator *> streams, MemHierarchy &hier,
            AvfLedger &ledger);

    ~SmtCore() override;

    SmtCore(const SmtCore &) = delete;
    SmtCore &operator=(const SmtCore &) = delete;

    /** Advance one cycle. */
    void tick();

    /**
     * Worker-reuse hook: restore the exact post-construction state under a
     * (timing-shape-compatible) new configuration — clock at zero, every
     * queue empty, predictors untrained, register pool full, fetch
     * enabled. The stream generators are NOT reset here (the owning
     * Simulator re-seeds them); @p cfg replaces cfg_ wholesale so the new
     * run's seed/protection knobs take effect. Allocation-free.
     */
    void reset(const MachineConfig &cfg);

    /** Close residual AVF intervals (registers, pending deadness). */
    void finalizeAvf();

    /**
     * Gate the fetch stage (drain-then-checkpoint). With fetch disabled
     * the pipeline empties monotonically: in-flight instructions complete
     * or squash, outstanding misses return, and no new work enters.
     */
    void setFetchEnabled(bool enabled) { fetchEnabled_ = enabled; }

    bool fetchEnabled() const { return fetchEnabled_; }

    /**
     * Resolve every deferred dead-code classification at a drained
     * boundary, the same conservatively-live rule the end of a run
     * applies. Afterwards the analyzer holds no instruction references,
     * which is what lets a checkpoint travel without serializing
     * instruction objects. A checkpoint is therefore a (deterministic)
     * semantically visible event: the contract is restore-then-run ==
     * the-run-that-checkpointed-and-continued, not == a run that never
     * checkpointed (docs/CHECKPOINT.md).
     */
    void boundaryResolveDeadness() { analyzer_.finish(); }

    /**
     * True when no instruction is in flight anywhere: front-end queues,
     * ROBs and the shared IQ empty (per-thread LSQ emptiness follows from
     * ROB emptiness), no completion event scheduled, no policy notice
     * undelivered. The drained-boundary predicate of checkpoint capture.
     */
    bool
    pipelineEmpty() const
    {
        if (iq_.size() != 0 || !overflow_.empty() ||
            !pendingNotices_.empty())
            return false;
        for (const auto &thp : threads_)
            if (!thp->frontQueue.empty() || thp->rob.size() != 0)
                return false;
        for (const auto &b : wheel_)
            if (b.head)
                return false;
        return true;
    }

    /**
     * Checkpoint hook. Only callable at a drained boundary (pipelineEmpty
     * and DeadCodeAnalyzer::finish already run) — capture on a live
     * pipeline throws CheckpointError. What travels is exactly the state
     * that outlives a drain: the clock, sequence counters, cumulative
     * stats, learned predictor state, the register file with its free
     * lists (pop order is architecturally visible), FU busy horizon, the
     * dead-code tallies, rename maps and the per-thread stream
     * generators. Per-instruction state (queues, gates, outstanding-miss
     * counts, wrong-path mode) is zero at the boundary by construction on
     * both sides, so it never travels.
     */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        if constexpr (!Ar::loading) {
            if (!pipelineEmpty())
                throw CheckpointError(
                    "checkpoint capture with instructions in flight "
                    "(drain-then-checkpoint violated)");
        }
        ar(now_);
        ar(globalDispatchSeq_);
        ar(commitRR_);
        ar(dispatchRR_);
        ar(wrongPathFetched_);
        ar(squashedInstrs_);
        ar(fetchedInstrs_);
        ar(regfile_);
        ar(fuPool_);
        ar(analyzer_);
        for (auto &thp : threads_) {
            auto &th = *thp;
            ar(th.fetchStreamIdx);
            ar(th.wrongPathPc);
            ar(th.seqCounter);
            ar(th.icacheStallUntil);
            ar(th.fetchedCount);
            ar(th.issuedCount);
            ar(th.committedCount);
            ar(th.nextCommitStreamIdx);
            ar(th.rename);
            ar(th.predictor);
            ar(*th.gen);
        }
        if constexpr (Ar::loading) {
            policy_->loadState(ar);
            // Boundary invariants (already true on a fresh core; restated
            // so a restore into a reused core cannot smuggle stale state).
            for (auto &thp : threads_) {
                thp->wrongPathMode = false;
                thp->iqCount = 0;
                thp->wrongPathFrontIq = 0;
                thp->outL1D = 0;
                thp->outL2D = 0;
            }
        } else if constexpr (std::is_same_v<Ar, ByteCounter>) {
            // saveState is a virtual taking Serializer& (it cannot be a
            // template); measure its few bytes with a scratch buffer.
            Serializer scratch;
            policy_->saveState(scratch);
            ar.add(scratch.buffer().size());
        } else {
            policy_->saveState(ar);
        }
    }

    Cycle now() const { return now_; }
    std::uint64_t committed(ThreadId tid) const;
    std::uint64_t totalCommitted() const;

    /** Per-thread branch predictor (stats access). */
    const ThreadPredictor &predictor(ThreadId tid) const;

    /** The active fetch policy. */
    FetchPolicy &policy() { return *policy_; }

    /** The dead-code analyzer (stats access). */
    const DeadCodeAnalyzer &deadCode() const { return analyzer_; }

    std::uint64_t wrongPathFetched() const { return wrongPathFetched_; }
    std::uint64_t squashedInstrs() const { return squashedInstrs_; }
    std::uint64_t fetchedInstrs() const { return fetchedInstrs_; }

    /** One-line-per-thread pipeline snapshot for stall diagnostics. */
    std::string stateDump() const;

    /** Current issue-queue occupancy of one thread (tests, diagnostics). */
    unsigned iqOccupancy(ThreadId tid) const;

    // ---- state exposure for the invariant checker (sim/invariants.hh) --

    /** The validated machine configuration this core was built with. */
    const MachineConfig &config() const { return cfg_; }

    /** The shared physical register pool. */
    PhysRegFile &regfileRef() { return regfile_; }
    const PhysRegFile &regfileRef() const { return regfile_; }

    /** The shared issue queue. */
    const IssueQueue &issueQueue() const { return iq_; }

    /** One thread's reorder buffer. */
    const Rob &rob(ThreadId tid) const { return threads_.at(tid)->rob; }

    /** One thread's load/store queue. */
    const Lsq &lsq(ThreadId tid) const { return threads_.at(tid)->lsq; }

    /** One thread's rename table. */
    const RenameMap &
    renameMap(ThreadId tid) const
    {
        return threads_.at(tid)->rename;
    }

    /** Instructions fetched on behalf of one thread (wrong path included). */
    std::uint64_t fetched(ThreadId tid) const;

    /** Instructions issued on behalf of one thread. */
    std::uint64_t issued(ThreadId tid) const;

    /** Append committing instructions to @p trace (nullptr disables). */
    void recordCommits(CommitTrace *trace) { commitTrace_ = trace; }

    /** The DynInstr recycling pool (allocation-accounting tests). */
    const InstrPool &instrPool() const { return instrPool_; }

    // ---- PolicyContext -------------------------------------------------
    unsigned numThreads() const override;
    unsigned inFlightCount(ThreadId tid) const override;
    unsigned inFlightCorrectPath(ThreadId tid) const override;
    unsigned outstandingL1D(ThreadId tid) const override;
    unsigned outstandingL2D(ThreadId tid) const override;
    void flushAfter(ThreadId tid, SeqNum seq) override;
    unsigned structOccupancy(HwStruct s, ThreadId tid) const override;
    const ProtectionConfig *
    protectionConfig() const override
    {
        return &cfg_.protection;
    }
    const AvfLedger *avfLedger() const override { return &ledger_; }

  private:
    /** Fetched-but-not-dispatched instruction. */
    struct FrontEntry
    {
        InstPtr in;
        Cycle readyAt; ///< earliest dispatch cycle (front-end latency)
    };

    /** Per-context pipeline state. */
    struct ThreadContext
    {
        ThreadContext(const MachineConfig &cfg, StreamGenerator *g);

        StreamGenerator *gen;
        RingBuffer<FrontEntry> frontQueue;
        std::uint64_t fetchStreamIdx = 0;
        bool wrongPathMode = false;
        Addr wrongPathPc = 0;
        SeqNum seqCounter = 0;
        Cycle icacheStallUntil = 0;
        unsigned iqCount = 0;
        /** Wrong-path instructions currently in frontQueue or IQ. */
        unsigned wrongPathFrontIq = 0;
        unsigned outL1D = 0;
        unsigned outL2D = 0;
        std::uint64_t fetchedCount = 0;
        std::uint64_t issuedCount = 0;
        std::uint64_t committedCount = 0;
        std::uint64_t nextCommitStreamIdx = 0;
        RenameMap rename;
        Rob rob;
        Lsq lsq;
        ThreadPredictor predictor;
    };

    void processCompletions();
    void commitStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();
    unsigned fetchThread(ThreadId tid, unsigned budget);

    /** Try to issue one IQ entry; true on success. */
    bool tryIssue(const InstPtr &in, unsigned &mem_ports_used);

    /** Complete one instruction at the current cycle. */
    void complete(const InstPtr &in);

    /**
     * Squash all instructions of @p tid with seq > @p seq: ROB walk-back
     * rename recovery, resource release, un-ACE classification, front-end
     * reset.
     */
    void squashAfter(ThreadId tid, SeqNum seq);

    /** Recompute wrong-path mode and the fetch cursor after a squash. */
    void recomputeFetchState(ThreadContext &th);

    void scheduleCompletion(const InstPtr &in, Cycle when);

    MachineConfig cfg_;
    MemHierarchy &hier_;
    AvfLedger &ledger_;
    DeadCodeAnalyzer analyzer_;

    /** Recycles DynInstr storage across fetches (see isa/instr_pool.hh). */
    InstrPool instrPool_;

    PhysRegFile regfile_;
    IssueQueue iq_;
    FuPool fuPool_;
    AVec<ArenaPtr<ThreadContext>> threads_;
    ArenaPtr<FetchPolicy> policy_;

    Cycle now_ = 0;
    SeqNum globalDispatchSeq_ = 0;
    unsigned commitRR_ = 0;
    unsigned dispatchRR_ = 0;

    /**
     * One completion cycle's events, FIFO-chained intrusively through
     * DynInstr::completionNext: append is O(1) via the tail pointer and
     * the chain borrows the instructions' own storage, so scheduling
     * allocates nothing no matter how many events pile onto one cycle.
     * The chain's shared_ptr links keep every scheduled instruction
     * alive until its bucket drains, exactly as the former per-bucket
     * vector did.
     */
    struct CompletionList
    {
        InstPtr head;             ///< oldest-scheduled event
        DynInstr *tail = nullptr; ///< append point; null iff head empty

        void
        append(const InstPtr &in)
        {
            if (tail)
                tail->completionNext = in;
            else
                head = in;
            tail = in.get();
        }
    };

    /** Complete (in schedule order) and unchain every event of @p list. */
    void drainCompletions(CompletionList &list);

    /**
     * Completion calendar wheel: bucket `c & wheelMask_` holds the
     * instructions finishing at cycle c. Sized past the worst-case
     * FU + TLB + cache + memory latency, so in practice every event lands
     * in a bucket; anything scheduled further out than the wheel horizon
     * parks in `overflow_` and is drained (first, preserving schedule
     * order) when its cycle arrives. Together with the intrusive
     * CompletionList this makes steady-state wakeup scheduling
     * allocation-free — unlike the std::map<Cycle, vector> it replaces,
     * which paid a node allocation per distinct completion cycle.
     */
    AVec<CompletionList> wheel_;
    Cycle wheelMask_ = 0;
    std::map<Cycle, CompletionList> overflow_;

    /** Deferred policy notifications (no IQ mutation mid-issue-scan). */
    struct LoadNotice
    {
        InstPtr load;
        bool l1Miss;
        bool l2Miss;
    };
    std::vector<LoadNotice> pendingNotices_;
    /** Double buffer for pendingNotices_ delivery (reused every tick). */
    std::vector<LoadNotice> noticesScratch_;
    /** Issued-this-cycle scratch for issueStage (reused every tick). */
    std::vector<InstPtr> issueScratch_;

    std::uint64_t wrongPathFetched_ = 0;
    std::uint64_t squashedInstrs_ = 0;
    std::uint64_t fetchedInstrs_ = 0;

    /** Fetch gate for drain-then-checkpoint (setFetchEnabled). */
    bool fetchEnabled_ = true;

    CommitTrace *commitTrace_ = nullptr;
};

} // namespace smtavf

#endif // SMTAVF_CORE_SMT_CORE_HH
