#include "core/rename.hh"

#include "base/logging.hh"

namespace smtavf
{

RenameMap::RenameMap()
{
    map_.fill(invalidReg);
}

RegIndex
RenameMap::lookup(RegIndex arch_reg) const
{
    if (arch_reg == invalidReg || isZeroReg(arch_reg))
        return invalidReg;
    if (arch_reg < 0 || arch_reg >= numArchRegs)
        SMTAVF_PANIC("rename lookup of bad register ", arch_reg);
    return map_[arch_reg];
}

RegIndex
RenameMap::set(RegIndex arch_reg, RegIndex phys)
{
    if (arch_reg < 0 || arch_reg >= numArchRegs)
        SMTAVF_PANIC("rename set of bad register ", arch_reg);
    RegIndex old = map_[arch_reg];
    map_[arch_reg] = phys;
    return old;
}

} // namespace smtavf
