#include "core/fu_pool.hh"

#include "base/logging.hh"

namespace smtavf
{

FuType
fuTypeFor(OpClass op)
{
    switch (op) {
      case OpClass::Nop:
        return FuType::None;
      case OpClass::IntAlu:
      case OpClass::BranchCond:
      case OpClass::BranchUncond:
      case OpClass::Call:
      case OpClass::Return:
        return FuType::IntAlu;
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return FuType::IntMulDiv;
      case OpClass::FpAlu:
        return FuType::FpAlu;
      case OpClass::FpMult:
      case OpClass::FpDiv:
        return FuType::FpMulDiv;
      case OpClass::Load:
      case OpClass::Store:
        return FuType::MemPort;
      default:
        SMTAVF_PANIC("no FU class for op");
    }
}

std::uint32_t
execLatency(OpClass op)
{
    switch (op) {
      case OpClass::Nop:
      case OpClass::IntAlu:
      case OpClass::BranchCond:
      case OpClass::BranchUncond:
      case OpClass::Call:
      case OpClass::Return:
      case OpClass::Load:  // address generation; memory time is added
      case OpClass::Store: // address generation
        return 1;
      case OpClass::IntMult:
        return 3;
      case OpClass::IntDiv:
        return 20;
      case OpClass::FpAlu:
        return 2;
      case OpClass::FpMult:
        return 4;
      case OpClass::FpDiv:
        return 12;
      default:
        SMTAVF_PANIC("no latency for op");
    }
}

std::uint32_t
fuOccupancy(OpClass op)
{
    switch (op) {
      case OpClass::IntDiv:
      case OpClass::FpDiv:
        return execLatency(op); // dividers are not pipelined
      default:
        return 1;
    }
}

FuPool::FuPool(const FuConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.total() == 0)
        SMTAVF_FATAL("empty function-unit pool");
    busyUntil_[static_cast<std::size_t>(FuType::IntAlu)]
        .assign(cfg_.intAlu, 0);
    busyUntil_[static_cast<std::size_t>(FuType::IntMulDiv)]
        .assign(cfg_.intMulDiv, 0);
    busyUntil_[static_cast<std::size_t>(FuType::MemPort)]
        .assign(cfg_.memPorts, 0);
    busyUntil_[static_cast<std::size_t>(FuType::FpAlu)]
        .assign(cfg_.fpAlu, 0);
    busyUntil_[static_cast<std::size_t>(FuType::FpMulDiv)]
        .assign(cfg_.fpMulDiv, 0);
}

bool
FuPool::acquire(FuType type, Cycle now, std::uint32_t occupancy)
{
    if (type == FuType::None)
        return true;
    auto &units = busyUntil_[static_cast<std::size_t>(type)];
    for (auto &busy : units) {
        if (busy <= now) {
            busy = now + occupancy;
            return true;
        }
    }
    return false;
}

std::uint32_t
FuPool::freeUnits(FuType type, Cycle now) const
{
    if (type == FuType::None)
        return 1;
    std::uint32_t free = 0;
    for (auto busy : busyUntil_[static_cast<std::size_t>(type)])
        if (busy <= now)
            ++free;
    return free;
}

} // namespace smtavf
