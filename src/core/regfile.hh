/**
 * @file
 * Shared physical register file pool (integer + floating point).
 *
 * The pool is the contended resource that produces the paper's Section 4.2
 * observations: with more contexts, fewer registers are available per
 * thread for renaming (limiting ROB utilization), and a register's
 * residency splits into
 *
 *   [allocate, writeback)  un-ACE: no valid data yet; a strike is
 *                          overwritten at writeback
 *   [writeback, last read] ACE: the value will be consumed
 *   (last read, release]   un-ACE: dead tail
 *
 * with the whole value interval un-ACE when the producing instruction is
 * dynamically dead. Release happens when the next writer of the same
 * architectural register commits, which is exactly when deadness resolves.
 */

#ifndef SMTAVF_CORE_REGFILE_HH
#define SMTAVF_CORE_REGFILE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "avf/ledger.hh"
#include "base/arena.hh"
#include "base/types.hh"

namespace smtavf
{

/** The shared physical register pool. */
class PhysRegFile
{
  public:
    /**
     * @param num_int         integer physical registers
     * @param num_fp          floating-point physical registers
     * @param ledger          AVF interval destination
     * @param alloc_unace     model the allocate-to-writeback window as
     *                        un-ACE (true; setting false is the DESIGN.md
     *                        "register allocation window" ablation, which
     *                        counts allocated-but-unwritten bits ACE)
     * @param dead_aware      end a value's ACE window at its last
     *                        committed read (knowing the tail is dead
     *                        requires the deferred dead-code analysis);
     *                        false = conservative: committed values are
     *                        ACE until overwritten (the "no dead-code
     *                        analysis" ablation)
     */
    PhysRegFile(std::uint32_t num_int, std::uint32_t num_fp,
                AvfLedger &ledger, bool alloc_unace = true,
                bool dead_aware = true);

    /** Allocate a register; invalidReg when the pool is exhausted. */
    RegIndex alloc(bool fp, ThreadId tid, Cycle now);

    /** Value written at writeback: becomes ready for consumers. */
    void markWritten(RegIndex phys, Cycle now);

    /**
     * True once the value has been written (wakeup test). Inline: the
     * issue stage probes every IQ entry's sources every cycle, making
     * this the single hottest call in the simulator.
     */
    bool
    isReady(RegIndex phys) const
    {
        return phys == invalidReg || regs_[phys].written;
    }

    /** A committed consumer read the value (read time = its issue). */
    void noteRead(RegIndex phys, Cycle read_cycle);

    /**
     * Release at the next writer's commit; emits the classified residency
     * intervals. @p producer_dead marks the whole value window un-ACE.
     */
    void release(RegIndex phys, Cycle now, bool producer_dead);

    /** Release on squash: the whole residency is un-ACE. */
    void releaseSquashed(RegIndex phys, Cycle now);

    /** Close intervals of still-allocated registers at end of run. */
    void finalizeAll(Cycle now);

    std::uint32_t freeInt() const { return freeInt_; }
    std::uint32_t freeFp() const { return freeFp_; }
    std::uint32_t numInt() const { return numInt_; }
    std::uint32_t numFp() const { return numFp_; }
    std::uint64_t totalBits() const;

    // ---- state exposure for the invariant checker ----------------------

    /** True while @p phys is out of the free pool. */
    bool isAllocated(RegIndex phys) const
    {
        return regs_.at(phys).allocated;
    }

    /**
     * Registers currently allocated by @p tid (PRAT's occupancy probe,
     * policy/prat.hh). O(1): a counter maintained at alloc/release, not a
     * scan — fetchOrder asks once per thread per cycle.
     */
    std::uint32_t
    allocatedBy(ThreadId tid) const
    {
        return allocatedBy_[tid];
    }

    /** The free list of one bank (int or fp), in pop order. */
    const AVec<RegIndex> &
    freeList(bool fp) const
    {
        return fp ? freeFpList_ : freeIntList_;
    }

    /**
     * Worker-reuse hook: exact post-construction state — all registers
     * free, both free lists re-seeded in constructor pop order (low
     * indices pop first). Allocation-free (capacity is retained).
     */
    void reset();

    /**
     * Fault injection for the invariant-checker tests ONLY: overwrite one
     * free-list slot with an arbitrary register index, modelling the kind
     * of bookkeeping corruption (double-free / leaked register) the
     * conservation invariant exists to catch. Never call outside tests.
     */
    void
    debugCorruptFreeList(bool fp, std::size_t slot, RegIndex value)
    {
        (fp ? freeFpList_ : freeIntList_).at(slot) = value;
    }

    /**
     * Checkpoint hook: every register's residency state plus both free
     * lists in pop order (allocation order is architecturally visible
     * through which physical indices later instructions receive).
     */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        ar(regs_);
        ar(freeIntList_);
        ar(freeFpList_);
        ar(freeInt_);
        ar(freeFp_);
        if constexpr (Ar::loading) {
            // Derived, not wire state: each Reg carries tid + allocated,
            // so the per-thread tallies recompute exactly.
            allocatedBy_.fill(0);
            for (const auto &r : regs_)
                if (r.allocated)
                    ++allocatedBy_[r.tid];
        }
    }

  private:
    struct Reg
    {
        bool allocated = false;
        bool written = false;
        ThreadId tid = 0;
        Cycle allocCycle = 0;
        Cycle wbCycle = 0;
        Cycle lastRead = 0;

        template <class Ar>
        void
        serialize(Ar &ar)
        {
            ar(allocated);
            ar(written);
            ar(tid);
            ar(allocCycle);
            ar(wbCycle);
            ar(lastRead);
        }
    };

    void emitIntervals(Reg &r, Cycle now, bool producer_dead, bool squashed);

    std::uint32_t numInt_;
    std::uint32_t numFp_;
    std::uint32_t freeInt_;
    std::uint32_t freeFp_;
    AVec<Reg> regs_;
    AVec<RegIndex> freeIntList_;
    AVec<RegIndex> freeFpList_;
    std::array<std::uint32_t, maxContexts> allocatedBy_{};
    AvfLedger &ledger_;
    bool allocUnace_;
    bool deadAware_;
};

} // namespace smtavf

#endif // SMTAVF_CORE_REGFILE_HH
