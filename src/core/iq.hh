/**
 * @file
 * The shared issue/instruction queue (Table 1: 96 entries shared by all
 * contexts). Instructions wait here from dispatch until their operands are
 * ready and a function unit is available; oldest-first (global dispatch
 * order) selection.
 *
 * Its AVF is the paper's headline hotspot: multithreading keeps the queue
 * full of ACE bits waiting on operands, and memory-bound threads stretch
 * that residency across L2-miss latencies.
 */

#ifndef SMTAVF_CORE_IQ_HH
#define SMTAVF_CORE_IQ_HH

#include <vector>

#include "base/arena.hh"
#include "base/types.hh"
#include "isa/instr.hh"

namespace smtavf
{

/** Shared issue queue ordered by global dispatch age. */
class IssueQueue
{
  public:
    explicit IssueQueue(std::uint32_t capacity);

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t size() const { return entries_.size(); }
    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t freeSlots() const
    {
        return capacity_ - static_cast<std::uint32_t>(entries_.size());
    }

    /** Insert at the tail (callers dispatch in global age order). */
    void insert(const InstPtr &in);

    /** Remove an issued instruction. */
    void remove(const InstPtr &in);

    /**
     * Remove every entry whose issued flag is set, in one stable
     * compaction pass. Entries leave the queue the cycle they issue, so
     * the flagged entries are exactly the ones the select stage just
     * picked — this replaces K O(n) shifting erases with one O(n) sweep
     * on the hottest per-cycle path.
     */
    void removeIssued();

    /** Remove every entry of @p tid with seq > @p seq (squash). */
    void removeSquashed(ThreadId tid, SeqNum seq);

    /** Worker-reuse hook: empty the queue, capacity retained. */
    void reset() { entries_.clear(); }

    /** Oldest-first iteration for the select stage. */
    auto begin() { return entries_.begin(); }
    auto end() { return entries_.end(); }
    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

  private:
    std::uint32_t capacity_;
    /**
     * Flat age-ordered storage (oldest at index 0). Entries are inserted
     * at the tail in global dispatch order and removed by a shifting
     * erase, which keeps iteration identical to the former
     * std::list-based queue while staying in one contiguous, reserved
     * allocation for the life of the core.
     */
    AVec<InstPtr> entries_;
};

} // namespace smtavf

#endif // SMTAVF_CORE_IQ_HH
