#include "core/iq.hh"

#include "base/logging.hh"

namespace smtavf
{

IssueQueue::IssueQueue(std::uint32_t capacity)
    : capacity_(capacity)
{
    if (capacity == 0)
        SMTAVF_FATAL("IQ capacity must be positive");
    entries_.reserve(capacity);
}

void
IssueQueue::insert(const InstPtr &in)
{
    if (full())
        SMTAVF_PANIC("insert into a full IQ");
    if (!entries_.empty() && entries_.back()->globalSeq >= in->globalSeq)
        SMTAVF_PANIC("IQ insert out of global dispatch order");
    entries_.push_back(in);
    in->inIq = true;
}

void
IssueQueue::remove(const InstPtr &in)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (*it == in) {
            (*it)->inIq = false;
            entries_.erase(it);
            return;
        }
    }
    SMTAVF_PANIC("removing an instruction not in the IQ");
}

void
IssueQueue::removeIssued()
{
    auto out = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if ((*it)->issued) {
            (*it)->inIq = false;
        } else {
            if (out != it)
                *out = std::move(*it);
            ++out;
        }
    }
    entries_.erase(out, entries_.end());
}

void
IssueQueue::removeSquashed(ThreadId tid, SeqNum seq)
{
    for (auto it = entries_.begin(); it != entries_.end();) {
        if ((*it)->tid == tid && (*it)->seq > seq) {
            (*it)->inIq = false;
            it = entries_.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace smtavf
