#include "core/regfile.hh"

#include "base/logging.hh"

namespace smtavf
{

PhysRegFile::PhysRegFile(std::uint32_t num_int, std::uint32_t num_fp,
                         AvfLedger &ledger, bool alloc_unace,
                         bool dead_aware)
    : numInt_(num_int), numFp_(num_fp), freeInt_(num_int), freeFp_(num_fp),
      regs_(num_int + num_fp), ledger_(ledger), allocUnace_(alloc_unace),
      deadAware_(dead_aware)
{
    if (num_int == 0 || num_fp == 0)
        SMTAVF_FATAL("register pool needs both int and fp registers");
    freeIntList_.reserve(num_int);
    freeFpList_.reserve(num_fp);
    // Pop from the back; seed so low indices come out first.
    for (std::uint32_t i = 0; i < num_int; ++i)
        freeIntList_.push_back(static_cast<RegIndex>(num_int - 1 - i));
    for (std::uint32_t i = 0; i < num_fp; ++i)
        freeFpList_.push_back(
            static_cast<RegIndex>(num_int + num_fp - 1 - i));
    ledger_.setStructureBits(HwStruct::RegFile, totalBits());
}

void
PhysRegFile::reset()
{
    freeInt_ = numInt_;
    freeFp_ = numFp_;
    allocatedBy_.fill(0);
    regs_.assign(regs_.size(), Reg{});
    freeIntList_.clear();
    freeFpList_.clear();
    // Same seeding as the constructor: pop from the back, low indices first.
    for (std::uint32_t i = 0; i < numInt_; ++i)
        freeIntList_.push_back(static_cast<RegIndex>(numInt_ - 1 - i));
    for (std::uint32_t i = 0; i < numFp_; ++i)
        freeFpList_.push_back(
            static_cast<RegIndex>(numInt_ + numFp_ - 1 - i));
    ledger_.setStructureBits(HwStruct::RegFile, totalBits());
}

std::uint64_t
PhysRegFile::totalBits() const
{
    return static_cast<std::uint64_t>(numInt_ + numFp_) * bits::physReg;
}

RegIndex
PhysRegFile::alloc(bool fp, ThreadId tid, Cycle now)
{
    auto &free_list = fp ? freeFpList_ : freeIntList_;
    auto &free_count = fp ? freeFp_ : freeInt_;
    if (free_list.empty())
        return invalidReg;
    RegIndex phys = free_list.back();
    free_list.pop_back();
    --free_count;

    auto &r = regs_.at(phys);
    if (r.allocated)
        SMTAVF_PANIC("allocating an already-allocated register ", phys);
    r = {true, false, tid, now, now, now};
    ++allocatedBy_[tid];
    return phys;
}

void
PhysRegFile::markWritten(RegIndex phys, Cycle now)
{
    auto &r = regs_.at(phys);
    if (!r.allocated)
        SMTAVF_PANIC("writeback to unallocated register ", phys);
    r.written = true;
    r.wbCycle = now;
    r.lastRead = now;
}

void
PhysRegFile::noteRead(RegIndex phys, Cycle read_cycle)
{
    if (phys == invalidReg)
        return;
    auto &r = regs_.at(phys);
    if (!r.allocated)
        return; // reads of long-released committed state: nothing to track
    if (read_cycle > r.lastRead)
        r.lastRead = read_cycle;
}

void
PhysRegFile::emitIntervals(Reg &r, Cycle now, bool producer_dead,
                           bool squashed)
{
    if (squashed || !r.written) {
        // Never carried committed data: the whole residency is un-ACE.
        ledger_.addInterval(HwStruct::RegFile, r.tid, bits::physReg,
                            r.allocCycle, now, false);
        return;
    }

    // Allocation-to-writeback window: un-ACE (a strike is overwritten),
    // unless the ablation disables the refinement.
    ledger_.addInterval(HwStruct::RegFile, r.tid, bits::physReg,
                        r.allocCycle, r.wbCycle, !allocUnace_);

    if (!deadAware_) {
        // Conservative: the committed value is architected state until
        // overwritten; without dead-code analysis the dead tail is
        // unknowable, so the whole window counts ACE.
        ledger_.addInterval(HwStruct::RegFile, r.tid, bits::physReg,
                            r.wbCycle, now, true);
        return;
    }

    Cycle value_end = r.lastRead > now ? now : r.lastRead;
    if (producer_dead) {
        ledger_.addInterval(HwStruct::RegFile, r.tid, bits::physReg,
                            r.wbCycle, now, false);
    } else {
        ledger_.addInterval(HwStruct::RegFile, r.tid, bits::physReg,
                            r.wbCycle, value_end, true);
        ledger_.addInterval(HwStruct::RegFile, r.tid, bits::physReg,
                            value_end, now, false);
    }
}

void
PhysRegFile::release(RegIndex phys, Cycle now, bool producer_dead)
{
    auto &r = regs_.at(phys);
    if (!r.allocated)
        SMTAVF_PANIC("releasing unallocated register ", phys);
    emitIntervals(r, now, producer_dead, false);
    --allocatedBy_[r.tid];
    r.allocated = false;
    r.written = false;
    bool fp = static_cast<std::uint32_t>(phys) >= numInt_;
    if (fp) {
        freeFpList_.push_back(phys);
        ++freeFp_;
    } else {
        freeIntList_.push_back(phys);
        ++freeInt_;
    }
}

void
PhysRegFile::releaseSquashed(RegIndex phys, Cycle now)
{
    auto &r = regs_.at(phys);
    if (!r.allocated)
        SMTAVF_PANIC("squash-releasing unallocated register ", phys);
    emitIntervals(r, now, false, true);
    --allocatedBy_[r.tid];
    r.allocated = false;
    r.written = false;
    bool fp = static_cast<std::uint32_t>(phys) >= numInt_;
    if (fp) {
        freeFpList_.push_back(phys);
        ++freeFp_;
    } else {
        freeIntList_.push_back(phys);
        ++freeInt_;
    }
}

void
PhysRegFile::finalizeAll(Cycle now)
{
    for (auto &r : regs_) {
        if (!r.allocated)
            continue;
        if (r.written) {
            if (allocUnace_)
                ledger_.addInterval(HwStruct::RegFile, r.tid, bits::physReg,
                                    r.allocCycle, r.wbCycle, false);
            else
                ledger_.addInterval(HwStruct::RegFile, r.tid, bits::physReg,
                                    r.allocCycle, r.wbCycle, true);
            // Committed/live values at end of run: conservatively ACE.
            ledger_.addInterval(HwStruct::RegFile, r.tid, bits::physReg,
                                r.wbCycle, now, true);
        } else {
            ledger_.addInterval(HwStruct::RegFile, r.tid, bits::physReg,
                                r.allocCycle, now, false);
        }
        r.allocated = false;
    }
    allocatedBy_.fill(0);
}

} // namespace smtavf
