#include "core/smt_core.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"

namespace smtavf
{

SmtCore::ThreadContext::ThreadContext(const MachineConfig &cfg,
                                      StreamGenerator *g)
    : gen(g), rob(cfg.robSize), lsq(cfg.lsqSize), predictor(cfg.branch)
{
}

SmtCore::SmtCore(const MachineConfig &cfg,
                 std::vector<StreamGenerator *> streams, MemHierarchy &hier,
                 AvfLedger &ledger)
    : cfg_(cfg), hier_(hier), ledger_(ledger),
      analyzer_(cfg.contexts, ledger, cfg.avf.deadCodeAnalysis),
      regfile_(cfg.intPhysRegs, cfg.fpPhysRegs, ledger,
               cfg.avf.regAllocWindowUnace, cfg.avf.deadCodeAnalysis),
      iq_(cfg.iqSize), fuPool_(cfg.fu)
{
    cfg_.validate();
    if (streams.size() != cfg_.contexts)
        SMTAVF_FATAL("need ", cfg_.contexts, " streams, got ",
                     streams.size());

    threads_.reserve(cfg_.contexts);
    for (unsigned t = 0; t < cfg_.contexts; ++t) {
        if (!streams[t])
            SMTAVF_FATAL("null stream for context ", t);
        threads_.push_back(makeArena<ThreadContext>(cfg_, streams[t]));
    }

    policy_ = makeFetchPolicy(cfg_.fetchPolicy, *this,
                              {cfg_.pratEpoch, cfg_.pratCap});

    // Size the completion wheel past the worst-case completion delta:
    // DTLB walk + DL1 + L2 + DRAM for loads, plus FU latency headroom.
    // Anything beyond the horizon still works via the overflow map.
    Cycle span = cfg_.mem.dtlb.missPenalty + cfg_.mem.dl1.latency +
                 cfg_.mem.l2.latency + cfg_.mem.memLatency + 64;
    Cycle size = 64;
    while (size < span && size < 4096)
        size *= 2;
    wheel_.resize(size);
    wheelMask_ = size - 1;

    ledger_.setStructureBits(HwStruct::IQ,
                             std::uint64_t{cfg_.iqSize} * bits::iqEntry);
    ledger_.setStructureBits(
        HwStruct::ROB,
        std::uint64_t{cfg_.contexts} * cfg_.robSize * bits::robEntry,
        std::uint64_t{cfg_.robSize} * bits::robEntry);
    ledger_.setStructureBits(
        HwStruct::LsqData,
        std::uint64_t{cfg_.contexts} * cfg_.lsqSize * bits::lsqData,
        std::uint64_t{cfg_.lsqSize} * bits::lsqData);
    ledger_.setStructureBits(
        HwStruct::LsqTag,
        std::uint64_t{cfg_.contexts} * cfg_.lsqSize * bits::lsqTag,
        std::uint64_t{cfg_.lsqSize} * bits::lsqTag);
    ledger_.setStructureBits(HwStruct::FU, fuPool_.totalBits());
}

SmtCore::~SmtCore() = default;

void
SmtCore::reset(const MachineConfig &cfg)
{
    cfg_ = cfg;
    cfg_.validate();

    analyzer_.reset();
    regfile_.reset();
    iq_.reset();
    fuPool_.reset();

    for (auto &thp : threads_) {
        auto &th = *thp;
        th.frontQueue.reset();
        th.fetchStreamIdx = 0;
        th.wrongPathMode = false;
        th.wrongPathPc = 0;
        th.seqCounter = 0;
        th.icacheStallUntil = 0;
        th.iqCount = 0;
        th.wrongPathFrontIq = 0;
        th.outL1D = 0;
        th.outL2D = 0;
        th.fetchedCount = 0;
        th.issuedCount = 0;
        th.committedCount = 0;
        th.nextCommitStreamIdx = 0;
        th.rename.reset();
        th.rob.reset();
        th.lsq.reset();
        th.predictor.reset();
    }

    policy_->reset();

    now_ = 0;
    globalDispatchSeq_ = 0;
    commitRR_ = 0;
    dispatchRR_ = 0;

    // A reusing reset only runs at a drained boundary, so the wheel and
    // overflow map are empty already; the assign/clear are belt-and-braces
    // (same-size assign and an empty-map clear allocate nothing).
    wheel_.assign(wheel_.size(), CompletionList{});
    overflow_.clear();
    pendingNotices_.clear();
    noticesScratch_.clear();
    issueScratch_.clear();

    wrongPathFetched_ = 0;
    squashedInstrs_ = 0;
    fetchedInstrs_ = 0;
    fetchEnabled_ = true;
    commitTrace_ = nullptr;

    // Re-declare the structure geometry, as the constructor does (the
    // owning Simulator has just reset the ledger).
    ledger_.setStructureBits(HwStruct::IQ,
                             std::uint64_t{cfg_.iqSize} * bits::iqEntry);
    ledger_.setStructureBits(
        HwStruct::ROB,
        std::uint64_t{cfg_.contexts} * cfg_.robSize * bits::robEntry,
        std::uint64_t{cfg_.robSize} * bits::robEntry);
    ledger_.setStructureBits(
        HwStruct::LsqData,
        std::uint64_t{cfg_.contexts} * cfg_.lsqSize * bits::lsqData,
        std::uint64_t{cfg_.lsqSize} * bits::lsqData);
    ledger_.setStructureBits(
        HwStruct::LsqTag,
        std::uint64_t{cfg_.contexts} * cfg_.lsqSize * bits::lsqTag,
        std::uint64_t{cfg_.lsqSize} * bits::lsqTag);
    ledger_.setStructureBits(HwStruct::FU, fuPool_.totalBits());
}

unsigned
SmtCore::numThreads() const
{
    return cfg_.contexts;
}

unsigned
SmtCore::inFlightCount(ThreadId tid) const
{
    const auto &th = *threads_.at(tid);
    return static_cast<unsigned>(th.frontQueue.size()) + th.iqCount;
}

unsigned
SmtCore::iqOccupancy(ThreadId tid) const
{
    return threads_.at(tid)->iqCount;
}

unsigned
SmtCore::inFlightCorrectPath(ThreadId tid) const
{
    const auto &th = *threads_.at(tid);
    unsigned total = static_cast<unsigned>(th.frontQueue.size()) +
                     th.iqCount;
    return total > th.wrongPathFrontIq ? total - th.wrongPathFrontIq : 0;
}

unsigned
SmtCore::structOccupancy(HwStruct s, ThreadId tid) const
{
    // PRAT's occupancy probe (policy/prat.hh): how many entries the
    // thread holds in each structure its in-flight instructions expose.
    // All O(1) reads of bookkeeping the pipeline maintains anyway.
    const auto &th = *threads_.at(tid);
    switch (s) {
      case HwStruct::IQ:
        return th.iqCount;
      case HwStruct::ROB:
        return static_cast<unsigned>(th.rob.size());
      case HwStruct::LsqData:
      case HwStruct::LsqTag:
        return static_cast<unsigned>(th.lsq.size());
      case HwStruct::RegFile:
        return regfile_.allocatedBy(tid);
      default:
        return 0;
    }
}

unsigned
SmtCore::outstandingL1D(ThreadId tid) const
{
    return threads_.at(tid)->outL1D;
}

unsigned
SmtCore::outstandingL2D(ThreadId tid) const
{
    return threads_.at(tid)->outL2D;
}

void
SmtCore::flushAfter(ThreadId tid, SeqNum seq)
{
    squashAfter(tid, seq);
}

std::uint64_t
SmtCore::committed(ThreadId tid) const
{
    return threads_.at(tid)->committedCount;
}

std::uint64_t
SmtCore::fetched(ThreadId tid) const
{
    return threads_.at(tid)->fetchedCount;
}

std::uint64_t
SmtCore::issued(ThreadId tid) const
{
    return threads_.at(tid)->issuedCount;
}

std::uint64_t
SmtCore::totalCommitted() const
{
    std::uint64_t sum = 0;
    for (const auto &th : threads_)
        sum += th->committedCount;
    return sum;
}

const ThreadPredictor &
SmtCore::predictor(ThreadId tid) const
{
    return threads_.at(tid)->predictor;
}

void
SmtCore::tick()
{
    ++now_;
    hier_.tick(now_);
    processCompletions();
    commitStage();
    issueStage();
    dispatchStage();
    fetchStage();
}

void
SmtCore::scheduleCompletion(const InstPtr &in, Cycle when)
{
    if (when <= now_)
        SMTAVF_PANIC("completion scheduled in the past");
    // A delta of exactly the wheel size is safe: that bucket was drained
    // and cleared earlier this cycle (processCompletions runs before any
    // scheduling stage) and will next be visited exactly at `when`.
    if (when - now_ <= wheel_.size())
        wheel_[when & wheelMask_].append(in);
    else
        overflow_[when].append(in);
}

void
SmtCore::drainCompletions(CompletionList &list)
{
    InstPtr cur = std::move(list.head);
    list.tail = nullptr;
    while (cur) {
        // Unchain before completing: the link must not outlive the
        // bucket, and a branch completion may squash chained successors
        // (they stay chained; the squashed check below skips them).
        InstPtr next = std::move(cur->completionNext);
        if (!cur->squashed)
            complete(cur);
        cur = std::move(next);
    }
}

void
SmtCore::processCompletions()
{
    // Overflow events for this cycle were scheduled strictly earlier than
    // any wheel event for the same cycle (their delta exceeded the wheel
    // horizon), so draining them first reproduces the exact batch order of
    // the former std::map-based schedule.
    while (!overflow_.empty() && overflow_.begin()->first <= now_) {
        CompletionList batch = std::move(overflow_.begin()->second);
        overflow_.erase(overflow_.begin());
        drainCompletions(batch);
    }

    // complete() never schedules for the current cycle, so the chain
    // cannot grow mid-drain.
    drainCompletions(wheel_[now_ & wheelMask_]);
}

void
SmtCore::complete(const InstPtr &in)
{
    in->completed = true;
    in->completeCycle = now_;
    auto &th = *threads_.at(in->tid);

    if (in->destPhys != invalidReg)
        regfile_.markWritten(in->destPhys, now_);

    if (in->op == OpClass::Load) {
        if (in->dl1Miss) {
            --th.outL1D;
            if (in->l2Miss)
                --th.outL2D;
        }
        policy_->onLoadDone(in, in->dl1Miss, in->l2Miss);
    }

    if (in->isBranch()) {
        th.predictor.train(*in);
        if (in->mispredicted && !in->wrongPath)
            squashAfter(in->tid, in->seq);
    }
}

void
SmtCore::commitStage()
{
    unsigned count = 0;
    unsigned n = cfg_.contexts;
    for (unsigned i = 0; i < n && count < cfg_.commitWidth; ++i) {
        ThreadId tid = static_cast<ThreadId>((commitRR_ + i) % n);
        auto &th = *threads_[tid];
        while (count < cfg_.commitWidth) {
            const InstPtr head = th.rob.front();
            if (!head || !head->completed || head->completeCycle >= now_)
                break;

            th.rob.popFront();

            head->pending.push_back({HwStruct::ROB, bits::robEntry,
                                     head->dispatchCycle, now_});
            if (head->isMem()) {
                th.lsq.popCommitted(head);
                head->pending.push_back({HwStruct::LsqTag, bits::lsqTag,
                                         head->dispatchCycle, now_});
                Cycle data_start = head->op == OpClass::Load
                                       ? head->completeCycle
                                       : head->issueCycle;
                head->pending.push_back({HwStruct::LsqData, bits::lsqData,
                                         data_start, now_});
            }
            if (head->op == OpClass::Store)
                hier_.storeCommit(tid, head->memAddr, head->memSize, now_);

            regfile_.noteRead(head->srcPhys1, head->issueCycle);
            regfile_.noteRead(head->srcPhys2, head->issueCycle);

            bool exposed_dead = analyzer_.onCommit(head);
            if (head->oldDestPhys != invalidReg)
                regfile_.release(head->oldDestPhys, now_, exposed_dead);
            if (commitTrace_)
                commitTrace_->append(head);

            th.gen->retireBelow(head->streamIdx + 1);
            th.nextCommitStreamIdx = head->streamIdx + 1;
            ++th.committedCount;
            ++count;
        }
    }
    commitRR_ = (commitRR_ + 1) % n;
}

bool
SmtCore::tryIssue(const InstPtr &in, unsigned &mem_ports_used)
{
    // Stores issue (generate their address) once the address operand is
    // ready; the data operand only has to arrive by commit, which in-order
    // commit of the older producer guarantees.
    if (!regfile_.isReady(in->srcPhys1))
        return false;
    if (in->op != OpClass::Store && !regfile_.isReady(in->srcPhys2))
        return false;

    auto &th = *threads_[in->tid];
    bool forwarded = false;
    if (in->op == OpClass::Load) {
        if (mem_ports_used >= cfg_.mem.dl1.ports)
            return false;
        if (!th.lsq.loadMayIssue(in))
            return false;
        forwarded = th.lsq.canForward(in);
    }

    FuType type = fuTypeFor(in->op);
    if (!fuPool_.acquire(type, now_, fuOccupancy(in->op)))
        return false;

    in->issued = true;
    in->issueCycle = now_;
    ++th.issuedCount;
    in->pending.push_back({HwStruct::IQ, bits::iqEntry, in->dispatchCycle,
                           now_});

    std::uint32_t lat = execLatency(in->op);
    Cycle done;
    if (in->op == OpClass::Load) {
        ++mem_ports_used;
        if (forwarded) {
            done = now_ + 1;
            pendingNotices_.push_back({in, false, false});
        } else {
            MemOutcome out = hier_.load(in->tid, in->memAddr, in->memSize,
                                        now_);
            in->dl1Miss = out.l1Miss;
            in->l2Miss = out.l2Miss;
            done = out.ready;
            if (out.l1Miss) {
                ++th.outL1D;
                if (out.l2Miss)
                    ++th.outL2D;
            }
            pendingNotices_.push_back({in, out.l1Miss, out.l2Miss});
        }
    } else if (in->op == OpClass::Store) {
        std::uint32_t penalty = hier_.translateData(in->tid, in->memAddr,
                                                    now_);
        done = now_ + lat + penalty;
    } else {
        done = now_ + lat;
    }

    if (type != FuType::None) {
        Cycle fu_end = in->isMem() ? now_ + 1 : now_ + lat;
        in->pending.push_back({HwStruct::FU, bits::fuLatch, now_, fu_end});
    }

    scheduleCompletion(in, done);
    return true;
}

void
SmtCore::issueStage()
{
    unsigned issued = 0;
    unsigned mem_ports_used = 0;
    issueScratch_.clear();
    for (const auto &in : iq_) {
        if (issued >= cfg_.issueWidth)
            break;
        if (in->dispatchCycle >= now_)
            continue; // dispatched this very cycle
        // Wakeup prefilter, duplicating tryIssue's first tests: most
        // entries wait on operands most cycles, and skipping them here
        // keeps the common case free of the full issue-test call.
        if (!regfile_.isReady(in->srcPhys1))
            continue;
        if (in->op != OpClass::Store && !regfile_.isReady(in->srcPhys2))
            continue;
        if (tryIssue(in, mem_ports_used)) {
            issueScratch_.push_back(in);
            ++issued;
        }
    }
    for (const auto &in : issueScratch_) {
        auto &th = *threads_[in->tid];
        --th.iqCount;
        if (in->wrongPath)
            --th.wrongPathFrontIq;
    }
    if (!issueScratch_.empty())
        iq_.removeIssued();
    issueScratch_.clear();

    // Deliver policy notifications now that the IQ scan is over (FLUSH may
    // squash, which mutates the IQ). Swapped into the scratch buffer so
    // both vectors keep their capacity across ticks.
    std::swap(pendingNotices_, noticesScratch_);
    for (const auto &n : noticesScratch_) {
        if (!n.load->squashed)
            policy_->onLoadIssued(n.load, n.l1Miss, n.l2Miss);
    }
    noticesScratch_.clear();
}

void
SmtCore::dispatchStage()
{
    unsigned dispatched = 0;
    unsigned n = cfg_.contexts;
    for (unsigned i = 0; i < n && dispatched < cfg_.decodeWidth; ++i) {
        ThreadId tid = static_cast<ThreadId>((dispatchRR_ + i) % n);
        auto &th = *threads_[tid];
        while (dispatched < cfg_.decodeWidth && !th.frontQueue.empty()) {
            auto &fe = th.frontQueue.front();
            if (fe.readyAt > now_)
                break;
            const InstPtr in = fe.in;
            if (th.rob.full() || iq_.full())
                break;
            if (in->isMem() && th.lsq.full())
                break;
            if (cfg_.iqPartitioned &&
                th.iqCount >= cfg_.iqSize / cfg_.contexts)
                break; // static per-thread IQ partition (Section 5)

            RegIndex dest = invalidReg;
            if (in->writesReg()) {
                dest = regfile_.alloc(isFpReg(in->destReg), tid, now_);
                if (dest == invalidReg)
                    break; // register-pool pressure stalls the thread
            }

            in->srcPhys1 = th.rename.lookup(in->srcReg1);
            in->srcPhys2 = th.rename.lookup(in->srcReg2);
            if (dest != invalidReg) {
                in->destPhys = dest;
                in->oldDestPhys = th.rename.set(in->destReg, dest);
            }

            in->globalSeq = ++globalDispatchSeq_;
            in->dispatchCycle = now_;
            th.rob.push(in);
            iq_.insert(in);
            ++th.iqCount;
            if (in->isMem())
                th.lsq.push(in);
            th.frontQueue.pop_front();
            ++dispatched;
        }
    }
    dispatchRR_ = (dispatchRR_ + 1) % n;
}

void
SmtCore::fetchStage()
{
    if (!fetchEnabled_)
        return;
    const auto &order = policy_->fetchOrder(now_);
    unsigned threads_fetched = 0;
    unsigned remaining = cfg_.fetchWidth;
    for (ThreadId tid : order) {
        if (threads_fetched >= cfg_.fetchThreadsPerCycle || remaining == 0)
            break;
        unsigned got = fetchThread(tid, remaining);
        if (got > 0) {
            ++threads_fetched;
            remaining -= got;
        }
    }
}

unsigned
SmtCore::fetchThread(ThreadId tid, unsigned budget)
{
    auto &th = *threads_[tid];
    if (th.icacheStallUntil > now_)
        return 0;

    unsigned fetched = 0;
    while (fetched < budget && th.frontQueue.size() < cfg_.fetchQueueSize) {
        InstPtr in;
        if (th.wrongPathMode) {
            if (!cfg_.avf.wrongPathModel)
                break; // ablation: front end idles out mispredictions
            in = instrPool_.create(th.gen->makeWrongPath(th.wrongPathPc));
            th.wrongPathPc = th.gen->clampToCode(th.wrongPathPc + 4);
        } else {
            in = instrPool_.create(th.gen->at(th.fetchStreamIdx));
        }

        if (fetched == 0) {
            MemOutcome out = hier_.fetch(tid, in->pc, now_);
            if (out.l1Miss || out.tlbMiss) {
                th.icacheStallUntil = out.ready;
                break;
            }
        }

        in->seq = ++th.seqCounter;
        in->fetchCycle = now_;
        if (th.wrongPathMode) {
            ++wrongPathFetched_;
            ++th.wrongPathFrontIq;
        } else {
            ++th.fetchStreamIdx;
        }

        th.predictor.predict(*in);
        th.frontQueue.push_back({in, now_ + cfg_.frontLatency});
        policy_->onFetch(in);
        ++fetched;
        ++fetchedInstrs_;
        ++th.fetchedCount;

        if (in->isBranch()) {
            if (in->mispredicted) {
                th.wrongPathMode = true;
                th.wrongPathPc = th.gen->clampToCode(in->pc + 4);
                break;
            }
            if (in->predTaken)
                break; // redirect ends the fetch group
        }
    }
    return fetched;
}

void
SmtCore::squashAfter(ThreadId tid, SeqNum seq)
{
    auto &th = *threads_.at(tid);

    while (!th.frontQueue.empty() && th.frontQueue.back().in->seq > seq) {
        const InstPtr in = th.frontQueue.back().in;
        in->squashed = true;
        if (in->wrongPath)
            --th.wrongPathFrontIq;
        th.predictor.squashRecover(*in);
        if (in->op == OpClass::Load)
            policy_->onLoadDone(in, false, false);
        th.frontQueue.pop_back();
        ++squashedInstrs_;
    }

    th.rob.squashAfter(seq, [&](const InstPtr &in) {
        in->squashed = true;
        ++squashedInstrs_;
        th.predictor.squashRecover(*in);

        if (in->destPhys != invalidReg) {
            th.rename.set(in->destReg, in->oldDestPhys);
            regfile_.releaseSquashed(in->destPhys, now_);
        }
        if (in->inIq) {
            in->pending.push_back({HwStruct::IQ, bits::iqEntry,
                                   in->dispatchCycle, now_});
            iq_.remove(in);
            --th.iqCount;
            if (in->wrongPath)
                --th.wrongPathFrontIq;
        }
        in->pending.push_back({HwStruct::ROB, bits::robEntry,
                               in->dispatchCycle, now_});
        if (in->isMem()) {
            in->pending.push_back({HwStruct::LsqTag, bits::lsqTag,
                                   in->dispatchCycle, now_});
            in->pending.push_back({HwStruct::LsqData, bits::lsqData,
                                   in->dispatchCycle, now_});
        }
        if (in->op == OpClass::Load) {
            if (in->issued && !in->completed && in->dl1Miss) {
                --th.outL1D;
                if (in->l2Miss)
                    --th.outL2D;
            }
            policy_->onLoadDone(in, in->dl1Miss, in->l2Miss);
        }
        analyzer_.onSquash(in);
    });
    th.lsq.squashAfter(seq);

    recomputeFetchState(th);
}

void
SmtCore::recomputeFetchState(ThreadContext &th)
{
    bool wrong = false;
    std::uint64_t next_idx = th.nextCommitStreamIdx;
    auto scan = [&](const InstPtr &in) {
        if (in->isBranch() && in->mispredicted && !in->completed)
            wrong = true;
        if (!in->wrongPath && in->streamIdx + 1 > next_idx)
            next_idx = in->streamIdx + 1;
    };
    for (const auto &in : th.rob)
        scan(in);
    for (const auto &fe : th.frontQueue)
        scan(fe.in);

    th.wrongPathMode = wrong;
    if (!wrong)
        th.fetchStreamIdx = next_idx;
}

std::string
SmtCore::stateDump() const
{
    std::ostringstream os;
    os << "cycle " << now_ << " freeInt " << regfile_.freeInt()
       << " freeFp " << regfile_.freeFp() << " iq " << iq_.size() << "/"
       << iq_.capacity() << "\n";
    for (unsigned t = 0; t < cfg_.contexts; ++t) {
        const auto &th = *threads_[t];
        os << "  T" << t << " rob " << th.rob.size() << " front "
           << th.frontQueue.size() << " iq " << th.iqCount << " outL1 "
           << th.outL1D << " outL2 " << th.outL2D << " wrongPath "
           << th.wrongPathMode;
        if (const auto &head = th.rob.front()) {
            os << " | head seq " << head->seq << " op "
               << opClassName(head->op) << " inIq " << head->inIq
               << " issued " << head->issued << " completed "
               << head->completed << " src1 " << head->srcPhys1 << "("
               << regfile_.isReady(head->srcPhys1) << ") src2 "
               << head->srcPhys2 << "(" << regfile_.isReady(head->srcPhys2)
               << ")";
        }
        os << "\n";
    }
    return os.str();
}

void
SmtCore::finalizeAvf()
{
    // Close the residency of still-in-flight instructions, then resolve
    // every deferred classification conservatively live.
    for (auto &thp : threads_) {
        auto &th = *thp;
        for (const auto &in : th.rob) {
            if (in->inIq)
                in->pending.push_back({HwStruct::IQ, bits::iqEntry,
                                       in->dispatchCycle, now_});
            in->pending.push_back({HwStruct::ROB, bits::robEntry,
                                   in->dispatchCycle, now_});
            if (in->isMem()) {
                in->pending.push_back({HwStruct::LsqTag, bits::lsqTag,
                                       in->dispatchCycle, now_});
                in->pending.push_back({HwStruct::LsqData, bits::lsqData,
                                       in->dispatchCycle, now_});
            }
            analyzer_.resolveLive(in);
        }
    }
    analyzer_.finish();
    regfile_.finalizeAll(now_);
}

} // namespace smtavf
