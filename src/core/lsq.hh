/**
 * @file
 * Per-thread load/store queue (Table 1: 48 entries per thread). Provides
 * conservative memory disambiguation (a load may issue only once every
 * older store of its thread has executed its address/data) and
 * store-to-load forwarding.
 */

#ifndef SMTAVF_CORE_LSQ_HH
#define SMTAVF_CORE_LSQ_HH

#include "base/ring_buffer.hh"
#include "base/types.hh"
#include "isa/instr.hh"

namespace smtavf
{

/** One thread's combined load/store queue. */
class Lsq
{
  public:
    explicit Lsq(std::uint32_t capacity);

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t size() const { return entries_.size(); }
    std::uint32_t capacity() const { return capacity_; }

    /** Append at dispatch (program order). */
    void push(const InstPtr &in);

    /** Remove the committing instruction (must be the oldest). */
    void popCommitted(const InstPtr &in);

    /** Remove squashed entries with seq > @p seq. */
    void squashAfter(SeqNum seq);

    /**
     * Disambiguation test: true when every store older than @p load has
     * issued (addresses and data known). Inline: probed once per pending
     * load per cycle by the issue stage.
     */
    bool
    loadMayIssue(const InstPtr &load) const
    {
        for (const auto &e : entries_) {
            if (e->seq >= load->seq)
                break;
            if (e->op == OpClass::Store && !e->issued)
                return false;
        }
        return true;
    }

    /**
     * Forwarding test: true when the youngest older store overlapping the
     * load's bytes can supply the data directly (no cache access needed).
     */
    bool
    canForward(const InstPtr &load) const
    {
        bool forward = false;
        for (const auto &e : entries_) {
            if (e->seq >= load->seq)
                break;
            if (e->op == OpClass::Store && e->issued && overlaps(*e, *load))
                forward = true; // youngest older overlapping store wins
        }
        return forward;
    }

    /** Iterate oldest to youngest (invariant checker, diagnostics). */
    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

    /** Worker-reuse hook: empty the ring, capacity retained. */
    void reset() { entries_.reset(); }

  private:
    static bool
    overlaps(const DynInstr &a, const DynInstr &b)
    {
        Addr a_end = a.memAddr + a.memSize;
        Addr b_end = b.memAddr + b.memSize;
        return a.memAddr < b_end && b.memAddr < a_end;
    }

    std::uint32_t capacity_;
    /** Ring sized to capacity up front: no allocation after construction. */
    RingBuffer<InstPtr> entries_;
};

} // namespace smtavf

#endif // SMTAVF_CORE_LSQ_HH
