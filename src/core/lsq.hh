/**
 * @file
 * Per-thread load/store queue (Table 1: 48 entries per thread). Provides
 * conservative memory disambiguation (a load may issue only once every
 * older store of its thread has executed its address/data) and
 * store-to-load forwarding.
 */

#ifndef SMTAVF_CORE_LSQ_HH
#define SMTAVF_CORE_LSQ_HH

#include <deque>

#include "base/types.hh"
#include "isa/instr.hh"

namespace smtavf
{

/** One thread's combined load/store queue. */
class Lsq
{
  public:
    explicit Lsq(std::uint32_t capacity);

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t size() const { return entries_.size(); }
    std::uint32_t capacity() const { return capacity_; }

    /** Append at dispatch (program order). */
    void push(const InstPtr &in);

    /** Remove the committing instruction (must be the oldest). */
    void popCommitted(const InstPtr &in);

    /** Remove squashed entries with seq > @p seq. */
    void squashAfter(SeqNum seq);

    /**
     * Disambiguation test: true when every store older than @p load has
     * issued (addresses and data known).
     */
    bool loadMayIssue(const InstPtr &load) const;

    /**
     * Forwarding test: true when the youngest older store overlapping the
     * load's bytes can supply the data directly (no cache access needed).
     */
    bool canForward(const InstPtr &load) const;

    /** Iterate oldest to youngest (invariant checker, diagnostics). */
    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

  private:
    static bool overlaps(const DynInstr &a, const DynInstr &b);

    std::uint32_t capacity_;
    std::deque<InstPtr> entries_;
};

} // namespace smtavf

#endif // SMTAVF_CORE_LSQ_HH
