/**
 * @file
 * Full machine configuration. Defaults reproduce the paper's Table 1:
 * 8-wide fetch/issue/commit, 7-stage pipeline, 96-entry shared IQ,
 * 96-entry per-thread ROB, 48-entry per-thread LSQ, the Table-1 cache/TLB
 * hierarchy, per-thread gshare/BTB/RAS, and the ICOUNT baseline fetch
 * policy. The physical register pool (not listed in Table 1) is sized at
 * 448+448 so that a lone thread renames freely while 4-8 contexts contend
 * for it — the contention the paper's Section 4.1/4.2 analyses.
 */

#ifndef SMTAVF_CORE_MACHINE_CONFIG_HH
#define SMTAVF_CORE_MACHINE_CONFIG_HH

#include <cstdint>

#include "base/logging.hh"
#include "base/types.hh"
#include "branch/predictor.hh"
#include "core/fu_pool.hh"
#include "mem/hierarchy.hh"
#include "policy/fetch_policy.hh"

namespace smtavf
{

/** AVF-model switches (the DESIGN.md ablations). */
struct AvfOptions
{
    /** Classify first-level dynamically dead results un-ACE. */
    bool deadCodeAnalysis = true;
    /** Fetch and execute wrong-path instructions past mispredicts. */
    bool wrongPathModel = true;
    /** Track DL1 data liveness per byte (false: per line). */
    bool perByteCacheAvf = true;
    /** Registers are un-ACE from allocation to writeback. */
    bool regAllocWindowUnace = true;
    /**
     * Also track the unified L2's AVF (extension; the paper stops at the
     * DL1). Tracked at line granularity — per-byte state for a 2MB cache
     * costs ~32MB per simulator and adds little: L2 "reads" are whole-line
     * refills anyway.
     */
    bool trackL2Avf = false;
};

/** Everything needed to build a Simulator. */
struct MachineConfig
{
    unsigned contexts = 4;

    // widths (Table 1: 8-wide fetch/issue/commit)
    std::uint32_t fetchWidth = 8;
    std::uint32_t decodeWidth = 8;
    std::uint32_t issueWidth = 8;
    std::uint32_t commitWidth = 8;
    std::uint32_t fetchThreadsPerCycle = 2; ///< ICOUNT.2.8-style front end

    /** Fetch-to-dispatch stages (7-stage pipe: F D R DI IS EX WB). */
    std::uint32_t frontLatency = 3;
    std::uint32_t fetchQueueSize = 16; ///< per-thread fetch/decode buffer

    std::uint32_t iqSize = 96;   ///< shared
    std::uint32_t robSize = 96;  ///< per thread
    std::uint32_t lsqSize = 48;  ///< per thread

    /**
     * Reliability-aware static IQ partitioning (the paper's Section-5
     * proposal): when true, no thread may occupy more than
     * iqSize / contexts issue-queue entries, preventing one clogged
     * dependence chain from filling the shared queue with ACE bits.
     */
    bool iqPartitioned = false;

    std::uint32_t intPhysRegs = 448; ///< shared pool
    std::uint32_t fpPhysRegs = 448;  ///< shared pool

    FuConfig fu{};
    BranchConfig branch{};
    MemConfig mem{};

    FetchPolicyKind fetchPolicy = FetchPolicyKind::Icount;

    /**
     * Pre-install each thread's code/hot/warm footprints into IL1/DL1/L2
     * and the TLBs before cycle 0. The paper's SimPoint regions are
     * effectively warmed by 100M+ instructions; short simulations need
     * this to avoid a compulsory-miss regime the paper never measured.
     */
    bool prewarmCaches = true;

    AvfOptions avf{};

    /**
     * Sample the per-structure AVF every this many cycles into a timeline
     * (vulnerability phase behaviour). 0 disables sampling.
     */
    Cycle avfSampleCycles = 0;

    /**
     * Record the architectural commit trace so fault-injection campaigns
     * (avf/injection.hh) can cross-validate the ACE classification.
     */
    bool recordCommitTrace = false;

    std::uint64_t seed = 1;

    /** Fatal on inconsistent parameters. */
    void
    validate() const
    {
        if (contexts == 0 || contexts > maxContexts)
            SMTAVF_FATAL("contexts out of range: ", contexts);
        if (fetchWidth == 0 || issueWidth == 0 || commitWidth == 0)
            SMTAVF_FATAL("pipeline widths must be positive");
        if (fetchThreadsPerCycle == 0)
            SMTAVF_FATAL("fetchThreadsPerCycle must be positive");
        if (iqSize == 0 || robSize == 0 || lsqSize == 0)
            SMTAVF_FATAL("queue sizes must be positive");
        if (intPhysRegs < contexts * 32u || fpPhysRegs < contexts * 32u)
            SMTAVF_FATAL("register pool too small to hold committed state: ",
                         intPhysRegs, "/", fpPhysRegs, " for ", contexts,
                         " contexts");
    }
};

} // namespace smtavf

#endif // SMTAVF_CORE_MACHINE_CONFIG_HH
