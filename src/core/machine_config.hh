/**
 * @file
 * Full machine configuration. Defaults reproduce the paper's Table 1:
 * 8-wide fetch/issue/commit, 7-stage pipeline, 96-entry shared IQ,
 * 96-entry per-thread ROB, 48-entry per-thread LSQ, the Table-1 cache/TLB
 * hierarchy, per-thread gshare/BTB/RAS, and the ICOUNT baseline fetch
 * policy. The physical register pool (not listed in Table 1) is sized at
 * 448+448 so that a lone thread renames freely while 4-8 contexts contend
 * for it — the contention the paper's Section 4.1/4.2 analyses.
 */

#ifndef SMTAVF_CORE_MACHINE_CONFIG_HH
#define SMTAVF_CORE_MACHINE_CONFIG_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "base/env.hh"
#include "base/logging.hh"
#include "base/types.hh"
#include "branch/predictor.hh"
#include "core/fu_pool.hh"
#include "mem/hierarchy.hh"
#include "policy/fetch_policy.hh"
#include "protect/scheme.hh"

namespace smtavf
{

/** AVF-model switches (the DESIGN.md ablations). */
struct AvfOptions
{
    /** Classify first-level dynamically dead results un-ACE. */
    bool deadCodeAnalysis = true;
    /** Fetch and execute wrong-path instructions past mispredicts. */
    bool wrongPathModel = true;
    /** Track DL1 data liveness per byte (false: per line). */
    bool perByteCacheAvf = true;
    /** Registers are un-ACE from allocation to writeback. */
    bool regAllocWindowUnace = true;
    /**
     * Also track the unified L2's AVF (extension; the paper stops at the
     * DL1). Tracked at line granularity — per-byte state for a 2MB cache
     * costs ~32MB per simulator and adds little: L2 "reads" are whole-line
     * refills anyway.
     */
    bool trackL2Avf = false;
};

/** Everything needed to build a Simulator. */
struct MachineConfig
{
    unsigned contexts = 4;

    // widths (Table 1: 8-wide fetch/issue/commit)
    std::uint32_t fetchWidth = 8;
    std::uint32_t decodeWidth = 8;
    std::uint32_t issueWidth = 8;
    std::uint32_t commitWidth = 8;
    std::uint32_t fetchThreadsPerCycle = 2; ///< ICOUNT.2.8-style front end

    /** Fetch-to-dispatch stages (7-stage pipe: F D R DI IS EX WB). */
    std::uint32_t frontLatency = 3;
    std::uint32_t fetchQueueSize = 16; ///< per-thread fetch/decode buffer

    std::uint32_t iqSize = 96;   ///< shared
    std::uint32_t robSize = 96;  ///< per thread
    std::uint32_t lsqSize = 48;  ///< per thread

    /**
     * Reliability-aware static IQ partitioning (the paper's Section-5
     * proposal): when true, no thread may occupy more than
     * iqSize / contexts issue-queue entries, preventing one clogged
     * dependence chain from filling the shared queue with ACE bits.
     */
    bool iqPartitioned = false;

    std::uint32_t intPhysRegs = 448; ///< shared pool
    std::uint32_t fpPhysRegs = 448;  ///< shared pool

    FuConfig fu{};
    BranchConfig branch{};
    MemConfig mem{};

    FetchPolicyKind fetchPolicy = FetchPolicyKind::Icount;

    /**
     * PRAT tuning (policy/prat.hh): cycles between ledger-measured
     * residual refreshes, and the throttle cap in correct-path
     * instructions (0 = derive the RAT default, 2x a fair IQ share).
     * Read only when fetchPolicy == PRat; ignored — and excluded from
     * validation and the experiment fingerprint — otherwise, so retuning
     * an unused knob never invalidates or re-runs other policies.
     */
    Cycle pratEpoch = 4096;
    std::uint32_t pratCap = 0;

    /**
     * Pre-install each thread's code/hot/warm footprints into IL1/DL1/L2
     * and the TLBs before cycle 0. The paper's SimPoint regions are
     * effectively warmed by 100M+ instructions; short simulations need
     * this to avoid a compulsory-miss regime the paper never measured.
     */
    bool prewarmCaches = true;

    AvfOptions avf{};

    /**
     * Per-structure protection assignment (protect/scheme.hh). An
     * analytical overlay: it splits each ACE bit-cycle into covered vs.
     * residual without perturbing timing, so raw AVF and IPC are
     * bit-identical to the unprotected run. Default: nothing protected.
     */
    ProtectionConfig protection{};

    /**
     * Sample the per-structure AVF every this many cycles into a timeline
     * (vulnerability phase behaviour). 0 disables sampling.
     */
    Cycle avfSampleCycles = 0;

    /**
     * Record the architectural commit trace so fault-injection campaigns
     * (avf/injection.hh) can cross-validate the ACE classification.
     */
    bool recordCommitTrace = false;

    std::uint64_t seed = 1;

    /**
     * Livelock watchdog: if no context commits an instruction for this
     * many consecutive cycles, Simulator::run() raises LivelockError
     * (sim/errors.hh) instead of spinning forever. A correct model always
     * commits within a few memory round trips, so the default is far above
     * any legitimate stall. 0 disables the watchdog.
     */
    Cycle livelockCycles = 100000;

    /**
     * Run the end-of-cycle invariant checker (sim/invariants.hh) every
     * this many cycles; a violation raises InvariantError so corrupted
     * runs fail fast instead of skewing AVF numbers. 0 (the production
     * default) disables checking. The default is taken from the
     * SMTAVF_INVARIANTS environment variable, which the test suite sets so
     * every simulation in it is checked (tests/CMakeLists.txt).
     */
    Cycle invariantCheckCycles = envInvariantCycles();

    /**
     * Cooperative cancellation: when @ref cancel is non-null and
     * cancelCheckCycles > 0, Simulator::run() polls the flag every
     * cancelCheckCycles cycles and raises CancelledError (sim/errors.hh)
     * the moment it is set — so a soft-timed-out or Ctrl-C'd campaign
     * interrupts runaway in-flight runs instead of waiting for them to
     * finish their whole budget. 0 (the default) disables the poll; like
     * the watchdog knobs, neither field affects what a run computes, so
     * both are excluded from the experiment fingerprint. The pointed-to
     * flag must outlive the run (the campaign layer wires its own).
     */
    const std::atomic<bool> *cancel = nullptr;
    Cycle cancelCheckCycles = 0;

    /**
     * First inconsistent parameter as a message, or "" when the
     * configuration is valid. Shared by validate() and the CLI's
     * exit-code-2 path.
     */
    std::string
    validateMsg() const
    {
        using detail::concat;
        if (contexts == 0 || contexts > maxContexts)
            return concat("contexts out of range: ", contexts,
                          " (must be 1..", maxContexts, ")");
        if (fetchWidth == 0 || issueWidth == 0 || commitWidth == 0 ||
            decodeWidth == 0)
            return "pipeline widths must be positive";
        if (fetchWidth > 1024 || issueWidth > 1024 || commitWidth > 1024 ||
            decodeWidth > 1024)
            return concat("absurd pipeline width: fetch ", fetchWidth,
                          " decode ", decodeWidth, " issue ", issueWidth,
                          " commit ", commitWidth, " (limit 1024)");
        if (fetchThreadsPerCycle == 0)
            return "fetchThreadsPerCycle must be positive";
        if (fetchThreadsPerCycle > maxContexts)
            return concat("fetchThreadsPerCycle ", fetchThreadsPerCycle,
                          " exceeds the ", maxContexts, "-context maximum");
        if (frontLatency > 100)
            return concat("absurd front-end latency: ", frontLatency,
                          " stages (limit 100)");
        if (fetchQueueSize == 0)
            return "fetchQueueSize must be positive";
        if (fetchQueueSize > (1u << 16))
            return concat("absurd fetchQueueSize: ", fetchQueueSize);
        if (iqSize == 0 || robSize == 0 || lsqSize == 0)
            return "queue sizes must be positive";
        if (iqSize > (1u << 20) || robSize > (1u << 20) ||
            lsqSize > (1u << 20))
            return concat("absurd queue size: iq ", iqSize, " rob ",
                          robSize, " lsq ", lsqSize, " (limit ", 1u << 20,
                          ")");
        if (intPhysRegs < contexts * 32u || fpPhysRegs < contexts * 32u)
            return concat(
                "register pool too small to hold committed state: ",
                intPhysRegs, "/", fpPhysRegs, " for ", contexts,
                " contexts");
        if (intPhysRegs > (1u << 20) || fpPhysRegs > (1u << 20))
            return concat("absurd register pool: ", intPhysRegs, "/",
                          fpPhysRegs);
        if (mem.memLatency == 0)
            return "memory latency must be positive";
        if (mem.memLatency > (1u << 20))
            return concat("absurd memory latency: ", mem.memLatency);
        if (livelockCycles != 0 && livelockCycles < 16)
            return concat("livelock window too small to clear the ",
                          "pipeline: ", livelockCycles, " (minimum 16)");
        if (fetchPolicy == FetchPolicyKind::PRat) {
            if (pratEpoch == 0)
                return "pratEpoch must be positive (PRAT needs a refresh "
                       "period)";
            if (pratEpoch > (Cycle(1) << 30))
                return concat("absurd pratEpoch: ", pratEpoch, " (limit ",
                              Cycle(1) << 30, ")");
            if (pratCap > (1u << 20))
                return concat("absurd pratCap: ", pratCap, " (limit ",
                              1u << 20, ")");
        }
        if (auto msg = protection.validateMsg(); !msg.empty())
            return msg;
        return "";
    }

    /** Fatal on inconsistent parameters. */
    void
    validate() const
    {
        if (auto msg = validateMsg(); !msg.empty())
            SMTAVF_FATAL(msg);
    }
};

} // namespace smtavf

#endif // SMTAVF_CORE_MACHINE_CONFIG_HH
