#include "core/lsq.hh"

#include "base/logging.hh"

namespace smtavf
{

Lsq::Lsq(std::uint32_t capacity)
    : capacity_(capacity)
{
    if (capacity == 0)
        SMTAVF_FATAL("LSQ capacity must be positive");
}

void
Lsq::push(const InstPtr &in)
{
    if (full())
        SMTAVF_PANIC("push into a full LSQ");
    if (!in->isMem())
        SMTAVF_PANIC("non-memory instruction pushed into the LSQ");
    entries_.push_back(in);
}

void
Lsq::popCommitted(const InstPtr &in)
{
    if (entries_.empty() || entries_.front() != in)
        SMTAVF_PANIC("LSQ commit out of order");
    entries_.pop_front();
}

void
Lsq::squashAfter(SeqNum seq)
{
    while (!entries_.empty() && entries_.back()->seq > seq)
        entries_.pop_back();
}

bool
Lsq::overlaps(const DynInstr &a, const DynInstr &b)
{
    Addr a_end = a.memAddr + a.memSize;
    Addr b_end = b.memAddr + b.memSize;
    return a.memAddr < b_end && b.memAddr < a_end;
}

bool
Lsq::loadMayIssue(const InstPtr &load) const
{
    for (const auto &e : entries_) {
        if (e->seq >= load->seq)
            break;
        if (e->op == OpClass::Store && !e->issued)
            return false;
    }
    return true;
}

bool
Lsq::canForward(const InstPtr &load) const
{
    bool forward = false;
    for (const auto &e : entries_) {
        if (e->seq >= load->seq)
            break;
        if (e->op == OpClass::Store && e->issued && overlaps(*e, *load))
            forward = true; // youngest older overlapping store wins
    }
    return forward;
}

} // namespace smtavf
