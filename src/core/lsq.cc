#include "core/lsq.hh"

#include "base/logging.hh"

namespace smtavf
{

Lsq::Lsq(std::uint32_t capacity)
    : capacity_(capacity), entries_(capacity)
{
    if (capacity == 0)
        SMTAVF_FATAL("LSQ capacity must be positive");
}

void
Lsq::push(const InstPtr &in)
{
    if (full())
        SMTAVF_PANIC("push into a full LSQ");
    if (!in->isMem())
        SMTAVF_PANIC("non-memory instruction pushed into the LSQ");
    entries_.push_back(in);
}

void
Lsq::popCommitted(const InstPtr &in)
{
    if (entries_.empty() || entries_.front() != in)
        SMTAVF_PANIC("LSQ commit out of order");
    entries_.pop_front();
}

void
Lsq::squashAfter(SeqNum seq)
{
    while (!entries_.empty() && entries_.back()->seq > seq)
        entries_.pop_back();
}

} // namespace smtavf
