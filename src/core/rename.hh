/**
 * @file
 * Per-thread register rename map (architectural -> physical), recovered on
 * squash by walking the ROB backwards and re-installing each squashed
 * instruction's previous mapping.
 */

#ifndef SMTAVF_CORE_RENAME_HH
#define SMTAVF_CORE_RENAME_HH

#include <array>

#include "base/types.hh"
#include "isa/instr.hh"

namespace smtavf
{

/** One thread's rename table. */
class RenameMap
{
  public:
    RenameMap();

    /** Current physical mapping of @p arch_reg (invalidReg if unmapped). */
    RegIndex lookup(RegIndex arch_reg) const;

    /** Install a new mapping; returns the displaced physical register. */
    RegIndex set(RegIndex arch_reg, RegIndex phys);

    /** Worker-reuse hook: back to the all-unmapped constructed state. */
    void reset() { map_.fill(invalidReg); }

    /** Checkpoint hook. */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        ar(map_);
    }

  private:
    std::array<RegIndex, numArchRegs> map_;
};

} // namespace smtavf

#endif // SMTAVF_CORE_RENAME_HH
