/**
 * @file
 * Function-unit pool (Table 1: 8 integer ALUs, 4 integer MUL/DIV, 4
 * load/store units, 8 FP ALUs, 4 FP MUL/DIV/SQRT). Units are pipelined
 * (occupancy 1) except dividers, which stay busy for the full latency.
 */

#ifndef SMTAVF_CORE_FU_POOL_HH
#define SMTAVF_CORE_FU_POOL_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "base/arena.hh"
#include "base/types.hh"
#include "isa/instr.hh"

namespace smtavf
{

/** Function-unit classes. */
enum class FuType : std::uint8_t
{
    IntAlu,
    IntMulDiv,
    MemPort,
    FpAlu,
    FpMulDiv,
    None, ///< NOPs execute nowhere
    NumFuTypes = None
};

/** Per-class unit counts (Table 1 defaults). */
struct FuConfig
{
    std::uint32_t intAlu = 8;
    std::uint32_t intMulDiv = 4;
    std::uint32_t memPorts = 4;
    std::uint32_t fpAlu = 8;
    std::uint32_t fpMulDiv = 4;

    std::uint32_t total() const
    {
        return intAlu + intMulDiv + memPorts + fpAlu + fpMulDiv;
    }
};

/** FU class an operation executes on. */
FuType fuTypeFor(OpClass op);

/** Execution latency of an operation (loads add memory time on top). */
std::uint32_t execLatency(OpClass op);

/** Cycles the unit stays unavailable (latency for dividers, else 1). */
std::uint32_t fuOccupancy(OpClass op);

/** The pool of execution resources. */
class FuPool
{
  public:
    explicit FuPool(const FuConfig &cfg);

    /**
     * Claim a unit of @p type for @p occupancy cycles starting at @p now.
     * @return true on success; false when every unit is busy.
     */
    bool acquire(FuType type, Cycle now, std::uint32_t occupancy);

    /** Units of @p type free at @p now. */
    std::uint32_t freeUnits(FuType type, Cycle now) const;

    const FuConfig &config() const { return cfg_; }

    /** Total FU latch bits for AVF accounting. */
    std::uint64_t totalBits() const
    {
        return static_cast<std::uint64_t>(cfg_.total()) * bits::fuLatch;
    }

    /** Worker-reuse hook: every unit idle, as freshly constructed. */
    void
    reset()
    {
        for (auto &bank : busyUntil_)
            std::fill(bank.begin(), bank.end(), Cycle{0});
    }

    /**
     * Checkpoint hook. Busy horizons are absolute cycles and the clock
     * continues from the restored value, so they serialize as-is (all
     * in the past anyway once the pipeline is drained).
     */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        ar(busyUntil_);
    }

  private:
    FuConfig cfg_;
    std::array<AVec<Cycle>, static_cast<std::size_t>(
                                FuType::NumFuTypes)> busyUntil_;
};

} // namespace smtavf

#endif // SMTAVF_CORE_FU_POOL_HH
