/**
 * @file
 * Serializer/Deserializer: the visitor pair behind simulator checkpoints.
 *
 * Every stateful structure implements one symmetric hook,
 *
 *     template <class Ar> void serialize(Ar &ar) { ar(a_); ar(b_); ... }
 *
 * instantiated once with Serializer (write) and once with Deserializer
 * (read). Because the same statement sequence drives both directions, a
 * field can never be written without being read back in the same order —
 * the classic cereal/boost::serialization discipline, reduced to the
 * handful of scalar shapes the simulator actually contains.
 *
 * Wire format: little-endian fixed-width integers; bool as one byte
 * (0/1); double as the bit pattern of its IEEE-754 representation (so
 * restore is bit-exact, never a parse); string and vector as a u64
 * element count followed by the elements. There is no type tagging —
 * integrity is the checkpoint envelope's job (CRC-32C + config
 * fingerprint, ckpt/checkpoint.hh), and the format version bumps when
 * any hook changes shape.
 *
 * Deserializer bounds-checks every read and throws CheckpointError on
 * underrun or an implausible element count, so a truncated or corrupted
 * payload surfaces as a clean rejection instead of UB.
 */

#ifndef SMTAVF_CKPT_SERIALIZER_HH
#define SMTAVF_CKPT_SERIALIZER_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace smtavf
{

/**
 * Raised for any malformed checkpoint: bad magic, unsupported version,
 * CRC mismatch, wrong config fingerprint, or a truncated payload. The
 * CLI maps it to its own exit code (4) so scripts can tell "checkpoint
 * rejected" from both simulation failures (1) and usage errors (2).
 */
class CheckpointError : public std::runtime_error
{
  public:
    explicit CheckpointError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Serialization direction: writes fields into a growing byte buffer. */
class Serializer
{
  public:
    static constexpr bool loading = false;

    void operator()(bool v) { putByte(v ? 1 : 0); }
    void operator()(std::uint8_t v) { putByte(v); }
    void operator()(std::uint16_t v) { putLe(v); }
    void operator()(std::uint32_t v) { putLe(v); }
    void operator()(std::uint64_t v) { putLe(v); }

    void
    operator()(std::int32_t v)
    {
        std::uint32_t u = 0;
        std::memcpy(&u, &v, sizeof(u));
        putLe(u);
    }

    void
    operator()(std::int64_t v)
    {
        std::uint64_t u = 0;
        std::memcpy(&u, &v, sizeof(u));
        putLe(u);
    }

    void
    operator()(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        putLe(bits);
    }

    void
    operator()(const std::string &s)
    {
        (*this)(static_cast<std::uint64_t>(s.size()));
        buf_.append(s);
    }

    // Allocator-generic: arena-backed AVec (base/arena.hh) serializes
    // byte-identically to a plain std::vector of the same elements.
    template <typename T, typename A>
    void
    operator()(const std::vector<T, A> &v)
    {
        (*this)(static_cast<std::uint64_t>(v.size()));
        for (const auto &e : v)
            visit(e);
    }

    template <typename T, std::size_t N>
    void
    operator()(const std::array<T, N> &a)
    {
        for (const auto &e : a)
            visit(e);
    }

    /** Nested object: anything with its own serialize() hook. */
    template <typename T,
              typename = std::enable_if_t<std::is_class_v<T> &&
                                          !std::is_same_v<T, std::string>>>
    void
    operator()(const T &obj)
    {
        // serialize() hooks are non-const by convention (the Deserializer
        // instantiation mutates); writing never actually modifies.
        const_cast<T &>(obj).serialize(*this);
    }

    /** Enums travel as their underlying integer type. */
    template <typename E, typename = std::enable_if_t<std::is_enum_v<E>>,
              typename = void>
    void
    operator()(E v)
    {
        (*this)(static_cast<std::underlying_type_t<E>>(v));
    }

    const std::string &buffer() const { return buf_; }
    std::string take() { return std::move(buf_); }

    /**
     * Pre-size the buffer. A megabyte-scale payload written through
     * push_back/append costs ~20 geometric reallocations; a ByteCounter
     * pass over the same hooks yields the exact size to reserve, making
     * serialization a single allocation (measured in the campaign
     * heap profile, docs/PERFORMANCE.md).
     */
    void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  private:
    // Containers hold either scalars (dispatched by value) or nested
    // objects (dispatched by reference); this picks the right overload.
    template <typename T>
    void
    visit(const T &e)
    {
        if constexpr (std::is_class_v<T> && !std::is_same_v<T, std::string>)
            (*this)(e);
        else
            (*this)(T(e));
    }

    void putByte(std::uint8_t b) { buf_.push_back(static_cast<char>(b)); }

    template <typename U>
    void
    putLe(U v)
    {
        for (std::size_t i = 0; i < sizeof(U); ++i)
            putByte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    std::string buf_;
};

/**
 * Counting direction: visits the same hooks as Serializer but only sums
 * wire bytes, so a capture can reserve the exact payload size up front.
 * Allocation-free and write-free — one pass costs a read of every field
 * and nothing else.
 */
class ByteCounter
{
  public:
    static constexpr bool loading = false;

    void operator()(bool) { n_ += 1; }
    void operator()(std::uint8_t) { n_ += 1; }
    void operator()(std::uint16_t) { n_ += 2; }
    void operator()(std::uint32_t) { n_ += 4; }
    void operator()(std::uint64_t) { n_ += 8; }
    void operator()(std::int32_t) { n_ += 4; }
    void operator()(std::int64_t) { n_ += 8; }
    void operator()(double) { n_ += 8; }
    void operator()(const std::string &s) { n_ += 8 + s.size(); }

    template <typename T, typename A>
    void
    operator()(const std::vector<T, A> &v)
    {
        n_ += 8;
        if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>) {
            // Fixed-width scalars: no need to walk a million elements.
            ByteCounter one;
            if (!v.empty())
                one.visit(v.front());
            n_ += one.total() * v.size();
        } else {
            for (const auto &e : v)
                visit(e);
        }
    }

    template <typename T, std::size_t N>
    void
    operator()(const std::array<T, N> &a)
    {
        for (const auto &e : a)
            visit(e);
    }

    template <typename T,
              typename = std::enable_if_t<std::is_class_v<T> &&
                                          !std::is_same_v<T, std::string>>>
    void
    operator()(const T &obj)
    {
        const_cast<T &>(obj).serialize(*this);
    }

    template <typename E, typename = std::enable_if_t<std::is_enum_v<E>>,
              typename = void>
    void
    operator()(E)
    {
        n_ += sizeof(std::underlying_type_t<E>);
    }

    /**
     * Raw byte credit, for state that only exists behind a non-template
     * interface (e.g. FetchPolicy::saveState writes into a Serializer&;
     * the counting pass measures it with a scratch Serializer and
     * credits the size here).
     */
    void add(std::size_t bytes) { n_ += bytes; }

    std::size_t total() const { return n_; }

  private:
    template <typename T>
    void
    visit(const T &e)
    {
        if constexpr (std::is_class_v<T> && !std::is_same_v<T, std::string>)
            (*this)(e);
        else
            (*this)(T(e));
    }

    std::size_t n_ = 0;
};

/** Deserialization direction: reads fields back in hook order. */
class Deserializer
{
  public:
    static constexpr bool loading = true;

    Deserializer(const char *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit Deserializer(const std::string &bytes)
        : Deserializer(bytes.data(), bytes.size())
    {
    }

    void operator()(bool &v) { v = getByte() != 0; }
    void operator()(std::uint8_t &v) { v = getByte(); }
    void operator()(std::uint16_t &v) { getLe(v); }
    void operator()(std::uint32_t &v) { getLe(v); }
    void operator()(std::uint64_t &v) { getLe(v); }

    void
    operator()(std::int32_t &v)
    {
        std::uint32_t u = 0;
        getLe(u);
        std::memcpy(&v, &u, sizeof(v));
    }

    void
    operator()(std::int64_t &v)
    {
        std::uint64_t u = 0;
        getLe(u);
        std::memcpy(&v, &u, sizeof(v));
    }

    void
    operator()(double &v)
    {
        std::uint64_t bits = 0;
        getLe(bits);
        std::memcpy(&v, &bits, sizeof(v));
    }

    void
    operator()(std::string &s)
    {
        std::uint64_t n = 0;
        (*this)(n);
        need(n);
        s.assign(data_ + pos_, static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
    }

    template <typename T, typename A>
    void
    operator()(std::vector<T, A> &v)
    {
        std::uint64_t n = 0;
        (*this)(n);
        // Every element costs at least one byte on the wire, so a count
        // beyond the remaining payload is corruption, not a big vector —
        // reject before the resize can throw bad_alloc on garbage.
        if (n > size_ - pos_)
            throw CheckpointError("checkpoint payload truncated "
                                  "(implausible element count)");
        v.clear();
        v.resize(static_cast<std::size_t>(n));
        for (auto &e : v)
            (*this)(e);
    }

    template <typename T, std::size_t N>
    void
    operator()(std::array<T, N> &a)
    {
        for (auto &e : a)
            (*this)(e);
    }

    template <typename T,
              typename = std::enable_if_t<std::is_class_v<T> &&
                                          !std::is_same_v<T, std::string>>>
    void
    operator()(T &obj)
    {
        obj.serialize(*this);
    }

    template <typename E, typename = std::enable_if_t<std::is_enum_v<E>>,
              typename = void>
    void
    operator()(E &v)
    {
        std::underlying_type_t<E> u{};
        (*this)(u);
        v = static_cast<E>(u);
    }

    std::size_t remaining() const { return size_ - pos_; }

    /** All bytes consumed? (Checked by the checkpoint loader.) */
    bool exhausted() const { return pos_ == size_; }

  private:
    void
    need(std::uint64_t n)
    {
        if (n > size_ - pos_)
            throw CheckpointError("checkpoint payload truncated");
    }

    std::uint8_t
    getByte()
    {
        need(1);
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    template <typename U>
    void
    getLe(U &v)
    {
        need(sizeof(U));
        v = 0;
        for (std::size_t i = 0; i < sizeof(U); ++i)
            v |= static_cast<U>(static_cast<std::uint8_t>(data_[pos_ + i]))
                 << (8 * i);
        pos_ += sizeof(U);
    }

    const char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace smtavf

#endif // SMTAVF_CKPT_SERIALIZER_HH
