#include "ckpt/checkpoint.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/journal.hh" // crc32c — the journal's Castagnoli CRC

namespace smtavf
{

namespace
{

constexpr char kMagic[8] = {'S', 'M', 'T', 'A', 'V', 'F', 'C', 'K'};

} // namespace

std::string
encodeCheckpoint(const Checkpoint &ck)
{
    Serializer ser;
    std::string out;
    // magic + version + fingerprint + boundary flag + at + CRC + size.
    out.reserve(sizeof(kMagic) + 4 + 8 + 1 + 8 + 4 + 8 + ck.payload.size());
    out.append(kMagic, sizeof(kMagic));
    ser(kCheckpointVersion);
    ser(ck.configFingerprint);
    ser(ck.warmupBoundary);
    ser(ck.at);
    ser(crc32c(ck.payload));
    ser(static_cast<std::uint64_t>(ck.payload.size()));
    out += ser.buffer();
    out += ck.payload;
    return out;
}

Checkpoint
decodeCheckpoint(const std::string &bytes)
{
    if (bytes.size() < sizeof(kMagic) ||
        bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0)
        throw CheckpointError("not a checkpoint (bad magic)");

    Deserializer des(bytes.data() + sizeof(kMagic),
                     bytes.size() - sizeof(kMagic));
    std::uint32_t version = 0;
    des(version);
    if (version != kCheckpointVersion) {
        char msg[96];
        std::snprintf(msg, sizeof(msg),
                      "unsupported checkpoint version %u (this build "
                      "reads %u)",
                      version, kCheckpointVersion);
        throw CheckpointError(msg);
    }

    Checkpoint ck;
    std::uint32_t crc = 0;
    std::uint64_t payload_size = 0;
    des(ck.configFingerprint);
    des(ck.warmupBoundary);
    des(ck.at);
    des(crc);
    des(payload_size);
    if (payload_size != des.remaining())
        throw CheckpointError("checkpoint truncated or padded "
                              "(payload size mismatch)");
    ck.payload.assign(bytes.data() + (bytes.size() - payload_size),
                      static_cast<std::size_t>(payload_size));
    if (crc32c(ck.payload) != crc)
        throw CheckpointError("checkpoint payload CRC mismatch "
                              "(bit flip or torn write)");
    return ck;
}

void
saveCheckpointFile(const Checkpoint &ck, const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw CheckpointError("cannot write checkpoint " + path);
    const std::string bytes = encodeCheckpoint(ck);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out)
        throw CheckpointError("failed writing checkpoint " + path);
}

Checkpoint
loadCheckpointFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CheckpointError("cannot read checkpoint " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return decodeCheckpoint(ss.str());
}

} // namespace smtavf
