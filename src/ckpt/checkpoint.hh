/**
 * @file
 * Checkpoint envelope: the versioned container around a serialized
 * simulator state (docs/CHECKPOINT.md).
 *
 * Layout (all little-endian, via ckpt/serializer.hh):
 *
 *     bytes 0..7   magic "SMTAVFCK"
 *     u32          format version (kCheckpointVersion)
 *     u64          semantic config fingerprint (what run this state is
 *                  a prefix of — checkpointFingerprint(), sim/journal.hh)
 *     u8           warmup-boundary flag (1: ledger tallies were reset at
 *                  capture, protection excluded from the fingerprint so
 *                  one warmup serves every candidate scheme)
 *     u64          capture point (the requested trigger instruction count;
 *                  lets the consumer recompute the fingerprint from its
 *                  own config and compare)
 *     u32          CRC-32C over the payload bytes
 *     u64          payload byte count
 *     payload      the machine state (Simulator::serialize order)
 *
 * decode/load reject — by throwing CheckpointError — on bad magic, an
 * unsupported version, a CRC mismatch, or trailing garbage, so a
 * truncated file, a bit flip, or a checkpoint from an incompatibly
 * newer build all surface as the same clean failure mode. Fingerprint
 * checking is the *consumer's* job (Simulator::restore compares against
 * its own config), because only the consumer knows whether protection
 * participates.
 */

#ifndef SMTAVF_CKPT_CHECKPOINT_HH
#define SMTAVF_CKPT_CHECKPOINT_HH

#include <cstdint>
#include <string>

#include "ckpt/serializer.hh"

namespace smtavf
{

/** Bump when any serialize() hook changes shape. */
constexpr std::uint32_t kCheckpointVersion = 1;

/** A decoded (or to-be-encoded) snapshot. */
struct Checkpoint
{
    std::uint64_t configFingerprint = 0;
    bool warmupBoundary = false;
    /** Requested trigger (committed instructions) the capture ran to. */
    std::uint64_t at = 0;
    std::string payload; ///< Simulator state, Serializer wire format

    bool empty() const { return payload.empty(); }
};

/** Envelope + payload as one byte string (deterministic). */
std::string encodeCheckpoint(const Checkpoint &ck);

/** Parse and verify an envelope. Throws CheckpointError on damage. */
Checkpoint decodeCheckpoint(const std::string &bytes);

/** Write encodeCheckpoint() to a file. Throws CheckpointError on IO. */
void saveCheckpointFile(const Checkpoint &ck, const std::string &path);

/** Read + decodeCheckpoint() a file. Throws CheckpointError. */
Checkpoint loadCheckpointFile(const std::string &path);

} // namespace smtavf

#endif // SMTAVF_CKPT_CHECKPOINT_HH
