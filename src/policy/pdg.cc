#include "policy/pdg.hh"

#include "base/logging.hh"

namespace smtavf
{

PdgPolicy::PdgPolicy(PolicyContext &ctx, unsigned threshold,
                     std::uint32_t table_entries)
    : FetchPolicy(ctx), threshold_(threshold),
      table_(table_entries, 1) // weakly no-miss
{
    if (table_entries == 0 || (table_entries & (table_entries - 1)) != 0)
        SMTAVF_FATAL("PDG table size must be a power of two");
}

std::uint32_t
PdgPolicy::tableIndex(Addr pc) const
{
    return static_cast<std::uint32_t>(pc >> 2) &
           (static_cast<std::uint32_t>(table_.size()) - 1);
}

const std::vector<ThreadId> &
PdgPolicy::fetchOrder(Cycle now)
{
    (void)now;
    const auto &order = icountOrder();
    order_.clear();
    for (ThreadId tid : order) {
        unsigned pressure = predicted_[tid] + ctx_.outstandingL1D(tid);
        if (pressure < threshold_)
            order_.push_back(tid);
    }
    if (order_.empty())
        return order;
    return order_;
}

void
PdgPolicy::onFetch(const InstPtr &in)
{
    if (in->op != OpClass::Load)
        return;
    bool predicted_miss = table_[tableIndex(in->pc)] >= 2;
    inFlight_[in->tid][in->seq] = predicted_miss;
    if (predicted_miss)
        ++predicted_[in->tid];
}

void
PdgPolicy::onLoadIssued(const InstPtr &load, bool l1_miss, bool l2_miss)
{
    (void)l2_miss;
    // Train the miss predictor with the actual outcome.
    auto &ctr = table_[tableIndex(load->pc)];
    if (l1_miss) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }

    // A predicted-miss load that actually hit stops counting right away;
    // predicted-miss loads that really missed keep counting via
    // outstandingL1D, so drop the prediction either way.
    auto &in_flight = inFlight_[load->tid];
    auto it = in_flight.find(load->seq);
    if (it != in_flight.end() && it->second) {
        --predicted_[load->tid];
        it->second = false;
    }
}

void
PdgPolicy::onLoadDone(const InstPtr &load, bool l1_miss, bool l2_miss)
{
    (void)l1_miss;
    (void)l2_miss;
    auto &in_flight = inFlight_[load->tid];
    auto it = in_flight.find(load->seq);
    if (it == in_flight.end())
        return;
    if (it->second)
        --predicted_[load->tid]; // squashed before issue
    in_flight.erase(it);
}

} // namespace smtavf
