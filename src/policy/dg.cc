#include "policy/dg.hh"

namespace smtavf
{

DgPolicy::DgPolicy(PolicyContext &ctx, unsigned threshold)
    : FetchPolicy(ctx), threshold_(threshold)
{
}

const std::vector<ThreadId> &
DgPolicy::fetchOrder(Cycle now)
{
    (void)now;
    const auto &order = icountOrder();
    order_.clear();
    for (ThreadId tid : order)
        if (ctx_.outstandingL1D(tid) < threshold_)
            order_.push_back(tid);
    if (order_.empty())
        return order; // keep the pipeline fed
    return order_;
}

} // namespace smtavf
