#include "policy/dg.hh"

namespace smtavf
{

DgPolicy::DgPolicy(PolicyContext &ctx, unsigned threshold)
    : FetchPolicy(ctx), threshold_(threshold)
{
}

std::vector<ThreadId>
DgPolicy::fetchOrder(Cycle now)
{
    (void)now;
    auto order = icountOrder();
    std::vector<ThreadId> allowed;
    for (ThreadId tid : order)
        if (ctx_.outstandingL1D(tid) < threshold_)
            allowed.push_back(tid);
    if (allowed.empty())
        return order; // keep the pipeline fed
    return allowed;
}

} // namespace smtavf
