#include "policy/rat.hh"

#include <algorithm>

namespace smtavf
{

RatPolicy::RatPolicy(PolicyContext &ctx, unsigned ace_cap)
    : FetchPolicy(ctx), aceCap_(ace_cap)
{
    if (aceCap_ == 0) {
        // 2x a fair share of the Table-1 96-entry IQ.
        unsigned n = ctx.numThreads();
        aceCap_ = n ? std::max(2 * 96 / n, 8u) : 48;
    }
}

const std::vector<ThreadId> &
RatPolicy::fetchOrder(Cycle now)
{
    (void)now;
    unsigned n = ctx_.numThreads();
    rank_.resize(n);
    keys_.resize(n);
    for (unsigned i = 0; i < n; ++i) {
        rank_[i] = static_cast<ThreadId>(i);
        keys_[i] = ctx_.inFlightCorrectPath(static_cast<ThreadId>(i));
    }
    stableSortByKey(rank_, keys_);

    order_.clear();
    for (ThreadId tid : rank_)
        if (keys_[tid] < aceCap_)
            order_.push_back(tid);
    if (order_.empty())
        return rank_; // never silence the whole front end
    return order_;
}

} // namespace smtavf
