#include "policy/rat.hh"

#include <algorithm>

namespace smtavf
{

RatPolicy::RatPolicy(PolicyContext &ctx, unsigned ace_cap)
    : FetchPolicy(ctx), aceCap_(ace_cap)
{
    if (aceCap_ == 0) {
        // 2x a fair share of the Table-1 96-entry IQ.
        unsigned n = ctx.numThreads();
        aceCap_ = n ? std::max(2 * 96 / n, 8u) : 48;
    }
}

std::vector<ThreadId>
RatPolicy::fetchOrder(Cycle now)
{
    (void)now;
    unsigned n = ctx_.numThreads();
    std::vector<ThreadId> order(n);
    for (unsigned i = 0; i < n; ++i)
        order[i] = static_cast<ThreadId>(i);
    std::stable_sort(order.begin(), order.end(),
                     [this](ThreadId a, ThreadId b) {
                         return ctx_.inFlightCorrectPath(a) <
                                ctx_.inFlightCorrectPath(b);
                     });

    std::vector<ThreadId> allowed;
    for (ThreadId tid : order)
        if (ctx_.inFlightCorrectPath(tid) < aceCap_)
            allowed.push_back(tid);
    if (allowed.empty())
        return order; // never silence the whole front end
    return allowed;
}

} // namespace smtavf
