/**
 * @file
 * Round-robin fetch policy: rotate priority each cycle. Not in the paper's
 * studied set; kept as the simplest reference point and for tests.
 */

#ifndef SMTAVF_POLICY_ROUND_ROBIN_HH
#define SMTAVF_POLICY_ROUND_ROBIN_HH

#include "policy/fetch_policy.hh"

namespace smtavf
{

/** Rotate thread priority every cycle. */
class RoundRobinPolicy : public FetchPolicy
{
  public:
    using FetchPolicy::FetchPolicy;
    const char *name() const override { return "RR"; }
    const std::vector<ThreadId> &fetchOrder(Cycle now) override;
};

} // namespace smtavf

#endif // SMTAVF_POLICY_ROUND_ROBIN_HH
