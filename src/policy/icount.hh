/**
 * @file
 * ICOUNT fetch policy: prioritize the thread with the fewest in-flight
 * instructions (Tullsen et al., ISCA'96). The paper's baseline.
 */

#ifndef SMTAVF_POLICY_ICOUNT_HH
#define SMTAVF_POLICY_ICOUNT_HH

#include "policy/fetch_policy.hh"

namespace smtavf
{

/** The ICOUNT baseline. */
class IcountPolicy : public FetchPolicy
{
  public:
    using FetchPolicy::FetchPolicy;
    const char *name() const override { return "ICOUNT"; }
    const std::vector<ThreadId> &fetchOrder(Cycle now) override;
};

} // namespace smtavf

#endif // SMTAVF_POLICY_ICOUNT_HH
