/**
 * @file
 * DG (data gating) fetch policy (El-Moursy & Albonesi, HPCA'03): stop
 * fetching for a thread once it accumulates a threshold of outstanding L1
 * data misses. Responds only to L1 misses — which is why the paper finds
 * it (and PDG) weaker than FLUSH at containing L2-miss-driven AVF.
 */

#ifndef SMTAVF_POLICY_DG_HH
#define SMTAVF_POLICY_DG_HH

#include "policy/fetch_policy.hh"

namespace smtavf
{

/** Gate on outstanding L1 data misses. */
class DgPolicy : public FetchPolicy
{
  public:
    /** @param threshold outstanding L1 D-misses that gate a thread. */
    DgPolicy(PolicyContext &ctx, unsigned threshold = 2);

    const char *name() const override { return "DG"; }
    const std::vector<ThreadId> &fetchOrder(Cycle now) override;

    unsigned threshold() const { return threshold_; }

  private:
    unsigned threshold_;
};

} // namespace smtavf

#endif // SMTAVF_POLICY_DG_HH
