/**
 * @file
 * SMT instruction-fetch policies (the paper's Section 4.3).
 *
 * A fetch policy decides, each cycle, which threads may fetch and in what
 * priority order. The six studied policies:
 *
 *  - ICOUNT (Tullsen et al., ISCA'96): priority to the thread with the
 *    fewest in-flight front-end + IQ instructions. The baseline.
 *  - FLUSH (Tullsen & Brown, MICRO'01): on an L2 data miss, squash the
 *    offending thread's instructions younger than the missing load and
 *    gate its fetch until the miss returns.
 *  - STALL (Tullsen & Brown, MICRO'01): gate threads with an outstanding
 *    L2 data miss, but always leave at least one thread fetching.
 *  - DG (El-Moursy & Albonesi, HPCA'03): gate a thread once it has
 *    several outstanding L1 data misses.
 *  - PDG (El-Moursy & Albonesi, HPCA'03): like DG but counts *predicted*
 *    L1 misses at fetch so gating starts before the misses resolve.
 *  - DWarn (Cazorla et al., IPDPS'04): never gates; threads with
 *    outstanding data-cache misses simply get the lowest fetch priority.
 *
 * The policy sees the core through the PolicyContext interface (no
 * circular dependency) and receives load-execution callbacks to maintain
 * its own state.
 */

#ifndef SMTAVF_POLICY_FETCH_POLICY_HH
#define SMTAVF_POLICY_FETCH_POLICY_HH

#include <memory>
#include <string>
#include <vector>

#include "avf/structures.hh"
#include "base/arena.hh"
#include "base/types.hh"
#include "ckpt/serializer.hh"
#include "isa/instr.hh"

namespace smtavf
{

struct ProtectionConfig;
class AvfLedger;

/**
 * Selector for building a policy by name/config. Beyond the paper's six
 * studied policies, two extensions implement its Section-5 proposals:
 *
 *  - PStall: STALL enhanced with an L2-miss predictor so fetch is gated
 *    the moment a predicted-missing load *enters* the pipeline, before
 *    any of its ACE bits accumulate ("If the L2 cache misses can be
 *    predicted when the offending instruction enters the pipeline, fetch
 *    can be stalled immediately").
 *  - Rat: reliability-aware throttling — prioritize by (and cap) each
 *    thread's in-flight *correct-path* (ACE-candidate) population rather
 *    than its raw instruction count.
 *  - PRat: protection-aware RAT — weight each in-flight correct-path
 *    instruction by the residual (uncovered) fraction of the structures
 *    the thread occupies, so throughput is never spent shading bits that
 *    SECDED already covers (policy/prat.hh, docs/PROTECTION.md).
 */
enum class FetchPolicyKind
{
    RoundRobin,
    Icount,
    Flush,
    Stall,
    Dg,
    Pdg,
    DWarn,
    PStall,
    Rat,
    PRat
};

const char *fetchPolicyName(FetchPolicyKind kind);

/**
 * Parse a policy name (case-insensitive, e.g. "flush", "ICOUNT").
 * @retval true and sets @p out on success.
 */
bool parseFetchPolicy(const std::string &name, FetchPolicyKind &out);

/** All selectable policy kinds, in display order. */
const std::vector<FetchPolicyKind> &allFetchPolicies();

/**
 * Policy tuning knobs carried by MachineConfig (mirrored there as flat
 * fields so validation and the experiment fingerprint price them
 * individually). Only PRat reads them today.
 */
struct FetchPolicyTuning
{
    /** PRat: cycles between ledger-measured residual refreshes. */
    Cycle pratEpoch = 4096;
    /** PRat: throttle cap (0 = derive the RAT default, 2x fair share). */
    unsigned pratCap = 0;
};

/** The slice of core state fetch policies may observe and act on. */
class PolicyContext
{
  public:
    virtual ~PolicyContext() = default;

    virtual unsigned numThreads() const = 0;

    /** ICOUNT metric: front-end + issue-queue occupancy of a thread. */
    virtual unsigned inFlightCount(ThreadId tid) const = 0;

    /**
     * Like inFlightCount but excluding known wrong-path instructions —
     * an estimate of the thread's in-flight ACE population (used by the
     * reliability-aware throttling extension).
     */
    virtual unsigned inFlightCorrectPath(ThreadId tid) const = 0;

    /** Outstanding L1 data misses issued by a thread. */
    virtual unsigned outstandingL1D(ThreadId tid) const = 0;

    /** Outstanding L2 data misses issued by a thread. */
    virtual unsigned outstandingL2D(ThreadId tid) const = 0;

    /**
     * FLUSH's action: squash thread @p tid's instructions with
     * seq > @p seq and rewind fetch.
     */
    virtual void flushAfter(ThreadId tid, SeqNum seq) = 0;

    // The protection-aware slice, consulted by PRat only. Defaulted (not
    // pure) so scripted test contexts and cores without an AVF overlay
    // keep compiling; the defaults make PRat degrade to exact RAT
    // behaviour (no occupancy -> conservative full-residual weight, no
    // ledger -> the measured correction never engages).

    /** Entries thread @p tid holds in structure @p s right now. */
    virtual unsigned
    structOccupancy(HwStruct s, ThreadId tid) const
    {
        (void)s;
        (void)tid;
        return 0;
    }

    /** The run's protection assignment; nullptr = nothing protected. */
    virtual const ProtectionConfig *protectionConfig() const
    {
        return nullptr;
    }

    /** The live AVF ledger; nullptr = no measured-residual correction. */
    virtual const AvfLedger *avfLedger() const { return nullptr; }
};

/** Base class of all fetch policies. */
class FetchPolicy
{
  public:
    explicit FetchPolicy(PolicyContext &ctx) : ctx_(ctx) {}
    virtual ~FetchPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Threads allowed to fetch this cycle, highest priority first.
     * Gated threads are omitted. The returned reference points into
     * policy-owned scratch storage and is valid until the next
     * fetchOrder call — callers must not hold it across cycles. (The
     * by-reference contract keeps the once-per-cycle call allocation-free.)
     */
    virtual const std::vector<ThreadId> &fetchOrder(Cycle now) = 0;

    /** A load executed; @p l1_miss / @p l2_miss classify its outcome. */
    virtual void
    onLoadIssued(const InstPtr &load, bool l1_miss, bool l2_miss)
    {
        (void)load; (void)l1_miss; (void)l2_miss;
    }

    /** A previously missing load finished (data returned) or squashed. */
    virtual void
    onLoadDone(const InstPtr &load, bool l1_miss, bool l2_miss)
    {
        (void)load; (void)l1_miss; (void)l2_miss;
    }

    /** An instruction was fetched (PDG predicts load misses here). */
    virtual void onFetch(const InstPtr &in) { (void)in; }

    /**
     * Checkpoint hooks. Checkpoints are captured at a *drained* boundary
     * (no instruction in flight, no outstanding miss), so the only policy
     * state that travels is what outlives the pipeline: learned predictor
     * tables and cumulative counters. Per-instruction bookkeeping (gates,
     * in-flight maps) is empty/inactive at the boundary by construction
     * and is reset on load instead of serialized. Stateless policies keep
     * the no-op defaults.
     */
    virtual void saveState(Serializer &ar) { (void)ar; }
    virtual void loadState(Deserializer &ar) { (void)ar; }

    /**
     * Worker-reuse hook: back to the exact freshly constructed state —
     * untrained predictor tables, no gates, zeroed counters. The scratch
     * vectors (rank_/order_/keys_) are pure per-call outputs and need no
     * touch. Stateless policies keep this no-op default. Allocation-free.
     */
    virtual void reset() {}

  protected:
    /**
     * Threads sorted by ascending in-flight count (ICOUNT order). Fills
     * and returns rank_; like fetchOrder, valid until the next call.
     */
    const std::vector<ThreadId> &icountOrder();

    /**
     * Stable ascending sort of @p ids by keys[id] — insertion sort, which
     * is both the fastest choice for the <= 8 threads a core runs and
     * allocation-free (std::stable_sort grabs a temporary buffer from the
     * heap on every call, which the steady-state tick loop must not do).
     * Equal keys keep their relative order, matching std::stable_sort
     * exactly.
     */
    static void
    stableSortByKey(std::vector<ThreadId> &ids,
                    const std::vector<unsigned> &keys)
    {
        for (std::size_t i = 1; i < ids.size(); ++i) {
            ThreadId t = ids[i];
            unsigned k = keys[t];
            std::size_t j = i;
            for (; j > 0 && keys[ids[j - 1]] > k; --j)
                ids[j] = ids[j - 1];
            ids[j] = t;
        }
    }

    PolicyContext &ctx_;
    /** Scratch for the full priority ranking (reused every cycle). */
    std::vector<ThreadId> rank_;
    /** Scratch for the filtered (gate-applied) order (reused every cycle). */
    std::vector<ThreadId> order_;
    /**
     * Scratch for per-thread sort keys: sampling the occupancy metric once
     * per thread keeps the (virtual) PolicyContext probes out of the sort
     * comparator. The metric cannot change mid-sort, so the ordering is
     * identical to querying inside the comparator.
     */
    std::vector<unsigned> keys_;
};

/**
 * Factory covering every FetchPolicyKind. The policy object is placed in
 * the calling thread's construction arena when one is installed
 * (base/arena.hh), on the heap otherwise — either way the ArenaPtr
 * destroys it correctly. @p tuning carries the PRat knobs; other kinds
 * ignore it.
 */
ArenaPtr<FetchPolicy> makeFetchPolicy(FetchPolicyKind kind,
                                      PolicyContext &ctx,
                                      const FetchPolicyTuning &tuning = {});

} // namespace smtavf

#endif // SMTAVF_POLICY_FETCH_POLICY_HH
