#include "policy/prat.hh"

#include <algorithm>

#include "avf/ledger.hh"
#include "protect/scheme.hh"

namespace smtavf
{

namespace
{

/**
 * Static residual fraction of a scheme, /256: the complement of the
 * coverage numerators in protect/scheme.hh. SecdedScrub floors at the
 * SECDED residual — the scrub sweep only helps, and the measured
 * correction picks up whatever tail the static floor misses.
 */
unsigned
schemeResidual256(ProtScheme s)
{
    switch (s) {
      case ProtScheme::Parity:
        return 256 - static_cast<unsigned>(parityCoverage256);
      case ProtScheme::Secded:
      case ProtScheme::SecdedScrub:
        return 256 - static_cast<unsigned>(secdedCoverage256);
      default:
        return 256;
    }
}

} // namespace

PRatPolicy::PRatPolicy(PolicyContext &ctx, unsigned ace_cap, Cycle epoch)
    : FetchPolicy(ctx), aceCap_(ace_cap), epoch_(epoch), nextRefresh_(epoch)
{
    if (aceCap_ == 0) {
        // Same derivation as RatPolicy: 2x a fair share of the Table-1
        // 96-entry IQ — identical caps are what make the all-none
        // differential against RAT exact.
        unsigned n = ctx.numThreads();
        aceCap_ = n ? std::max(2 * 96 / n, 8u) : 48;
    }
    corr256_.fill(1);
    deriveStaticWeights();
}

void
PRatPolicy::deriveStaticWeights()
{
    const ProtectionConfig *prot = ctx_.protectionConfig();
    for (std::size_t s = 0; s < numHwStructs; ++s)
        resid256_[s] =
            prot ? schemeResidual256(prot->schemeFor(static_cast<HwStruct>(s)))
                 : 256;
}

void
PRatPolicy::refreshCorrections()
{
    const AvfLedger *ledger = ctx_.avfLedger();
    if (!ledger)
        return;
    unsigned n = ctx_.numThreads();
    for (unsigned i = 0; i < n; ++i) {
        ThreadId tid = static_cast<ThreadId>(i);
        std::uint64_t resid = 0;
        std::uint64_t ace = 0;
        for (HwStruct s : kStructs) {
            resid += ledger->residualAceBitCycles(s, tid);
            ace += ledger->aceBitCycles(s, tid);
        }
        // Cumulative tallies (not deltas): early in the run they react
        // fast, later they converge to the run's true residual ratio —
        // exactly the stability the throttle wants. No ACE exposure yet
        // leaves the previous correction standing.
        if (ace > 0)
            corr256_[tid] = std::max<std::uint64_t>(1, 256 * resid / ace);
    }
}

unsigned
PRatPolicy::weight256(ThreadId tid) const
{
    std::uint64_t weighted = 0;
    std::uint64_t occ = 0;
    for (HwStruct s : kStructs) {
        std::uint64_t o = ctx_.structOccupancy(s, tid);
        occ += o;
        weighted += o * resid256_[static_cast<std::size_t>(s)];
    }
    // Nothing in flight: be conservative (full residual) — the thread is
    // about to allocate into structures we have not priced yet. This also
    // keeps the scripted test contexts (occupancy 0) on exact RAT keys.
    unsigned w_occ =
        occ ? std::max<std::uint64_t>(1, weighted / occ) : 256;
    return std::max(w_occ, corr256_[tid]);
}

const std::vector<ThreadId> &
PRatPolicy::fetchOrder(Cycle now)
{
    while (epoch_ && now >= nextRefresh_) {
        refreshCorrections();
        nextRefresh_ += epoch_;
    }

    unsigned n = ctx_.numThreads();
    rank_.resize(n);
    keys_.resize(n);
    for (unsigned i = 0; i < n; ++i) {
        ThreadId tid = static_cast<ThreadId>(i);
        rank_[i] = tid;
        keys_[i] = ctx_.inFlightCorrectPath(tid);
    }
    stableSortByKey(rank_, keys_);

    // Priority is RAT's exactly — fewest correct-path instructions first.
    // Protection awareness lives only in the gate below: the throttle key
    // weights each in-flight instruction by the thread's residual exposure
    // (/256), so a thread whose occupancy sits in SECDED-covered
    // structures gates at up to 256x RAT's cap while an unprotected
    // thread gates exactly where RAT would. cp <= IQ capacity (~112) and
    // w256 <= 256, so cp*w256 stays far below the unsigned key range.
    order_.clear();
    for (ThreadId tid : rank_) {
        if (keys_[tid] * weight256(tid) < aceCap_ * 256u)
            order_.push_back(tid);
        else
            ++throttledThreadCycles_;
    }
    if (order_.empty())
        return rank_; // never silence the whole front end
    return order_;
}

} // namespace smtavf
