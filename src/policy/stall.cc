#include "policy/stall.hh"

namespace smtavf
{

std::vector<ThreadId>
StallPolicy::fetchOrder(Cycle now)
{
    (void)now;
    auto order = icountOrder();
    std::vector<ThreadId> allowed;
    for (ThreadId tid : order)
        if (ctx_.outstandingL2D(tid) == 0)
            allowed.push_back(tid);
    if (allowed.empty())
        return order; // keep at least one thread fetching
    return allowed;
}

} // namespace smtavf
