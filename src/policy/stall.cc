#include "policy/stall.hh"

namespace smtavf
{

const std::vector<ThreadId> &
StallPolicy::fetchOrder(Cycle now)
{
    (void)now;
    const auto &order = icountOrder();
    order_.clear();
    for (ThreadId tid : order)
        if (ctx_.outstandingL2D(tid) == 0)
            order_.push_back(tid);
    if (order_.empty())
        return order; // keep at least one thread fetching
    return order_;
}

} // namespace smtavf
