/**
 * @file
 * RAT: reliability-aware fetch throttling, the paper's second Section-5
 * proposal ("reliability-aware fetch throttling, which is built on top of
 * existing fetch schemes and extended with reliability awareness of
 * individual threads, can be used to maintain a low AVF while achieving a
 * high throughput").
 *
 * Threads are prioritized by — and capped at — their in-flight
 * *correct-path* instruction population, the machine's live estimate of
 * the ACE bits each thread currently exposes to strikes. A thread above
 * the cap stops fetching until its exposed population drains; wrong-path
 * junk (un-ACE by construction) does not count against it.
 */

#ifndef SMTAVF_POLICY_RAT_HH
#define SMTAVF_POLICY_RAT_HH

#include "policy/fetch_policy.hh"

namespace smtavf
{

/** Reliability-aware throttling. */
class RatPolicy : public FetchPolicy
{
  public:
    /**
     * @param ace_cap in-flight correct-path instructions per thread above
     *        which fetch is gated (0 = derive as 2 x a fair IQ share,
     *        i.e. 48 for the Table-1 machine at 4 contexts)
     */
    explicit RatPolicy(PolicyContext &ctx, unsigned ace_cap = 0);

    const char *name() const override { return "RAT"; }
    const std::vector<ThreadId> &fetchOrder(Cycle now) override;

    unsigned aceCap() const { return aceCap_; }

  private:
    unsigned aceCap_;
};

} // namespace smtavf

#endif // SMTAVF_POLICY_RAT_HH
