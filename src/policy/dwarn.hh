/**
 * @file
 * DWarn fetch policy (Cazorla et al., IPDPS'04): never gate; instead,
 * threads with outstanding data-cache misses are demoted to the lowest
 * fetch-priority group. The paper finds DWarn the best fairness-preserving
 * policy for FU/DL1/register-file reliability efficiency.
 */

#ifndef SMTAVF_POLICY_DWARN_HH
#define SMTAVF_POLICY_DWARN_HH

#include "policy/fetch_policy.hh"

namespace smtavf
{

/** Deprioritize (never gate) missing threads. */
class DWarnPolicy : public FetchPolicy
{
  public:
    using FetchPolicy::FetchPolicy;
    const char *name() const override { return "DWarn"; }
    const std::vector<ThreadId> &fetchOrder(Cycle now) override;

  private:
    /** Scratch for the deprioritized (missing) group (reused per cycle). */
    std::vector<ThreadId> warned_;
};

} // namespace smtavf

#endif // SMTAVF_POLICY_DWARN_HH
