/**
 * @file
 * PDG (predictive data gating, El-Moursy & Albonesi, HPCA'03): like DG,
 * but a PC-indexed 2-bit miss predictor classifies loads at fetch, so a
 * thread is gated by its *predicted* in-flight L1 misses and gating kicks
 * in before the misses are even issued.
 */

#ifndef SMTAVF_POLICY_PDG_HH
#define SMTAVF_POLICY_PDG_HH

#include <array>
#include <unordered_map>
#include <vector>

#include "policy/fetch_policy.hh"

namespace smtavf
{

/** Predictive data gating. */
class PdgPolicy : public FetchPolicy
{
  public:
    /**
     * @param threshold predicted+actual outstanding L1 D-misses that gate
     * @param table_entries miss-predictor size (power of two)
     */
    PdgPolicy(PolicyContext &ctx, unsigned threshold = 2,
              std::uint32_t table_entries = 1024);

    const char *name() const override { return "PDG"; }
    const std::vector<ThreadId> &fetchOrder(Cycle now) override;
    void onFetch(const InstPtr &in) override;
    void onLoadIssued(const InstPtr &load, bool l1_miss,
                      bool l2_miss) override;
    void onLoadDone(const InstPtr &load, bool l1_miss,
                    bool l2_miss) override;

    /** Predicted-miss loads currently in flight for a thread. */
    unsigned predictedInFlight(ThreadId tid) const
    {
        return predicted_[tid];
    }

    /** Checkpoint: the learned miss-predictor table persists. */
    void saveState(Serializer &ar) override { ar(table_); }

    void
    loadState(Deserializer &ar) override
    {
        ar(table_);
        // In-flight prediction state is empty at a drained boundary.
        predicted_.fill(0);
        for (auto &m : inFlight_)
            m.clear();
    }

    /** Worker-reuse hook: untrained weakly-not-miss table, nothing in flight. */
    void
    reset() override
    {
        table_.assign(table_.size(), 1);
        predicted_.fill(0);
        // clear() keeps the grown bucket arrays; these maps are only ever
        // probed by key (never iterated), so bucket count is unobservable.
        for (auto &m : inFlight_)
            m.clear();
    }

  private:
    std::uint32_t tableIndex(Addr pc) const;

    unsigned threshold_;
    AVec<std::uint8_t> table_; ///< 2-bit miss counters
    std::array<unsigned, maxContexts> predicted_{};
    /** seq -> predicted-miss flag, to undo the count exactly once. */
    std::array<std::unordered_map<SeqNum, bool>, maxContexts> inFlight_;
};

} // namespace smtavf

#endif // SMTAVF_POLICY_PDG_HH
