#include "policy/round_robin.hh"

namespace smtavf
{

std::vector<ThreadId>
RoundRobinPolicy::fetchOrder(Cycle now)
{
    unsigned n = ctx_.numThreads();
    std::vector<ThreadId> order(n);
    for (unsigned i = 0; i < n; ++i)
        order[i] = static_cast<ThreadId>((now + i) % n);
    return order;
}

} // namespace smtavf
