#include "policy/round_robin.hh"

namespace smtavf
{

const std::vector<ThreadId> &
RoundRobinPolicy::fetchOrder(Cycle now)
{
    unsigned n = ctx_.numThreads();
    order_.resize(n);
    for (unsigned i = 0; i < n; ++i)
        order_[i] = static_cast<ThreadId>((now + i) % n);
    return order_;
}

} // namespace smtavf
