/**
 * @file
 * STALL fetch policy (Tullsen & Brown, MICRO'01): gate fetch for threads
 * with an outstanding L2 data miss; if that would silence everyone, fall
 * back to ICOUNT order over all threads ("always allows at least one
 * thread to continue fetching").
 */

#ifndef SMTAVF_POLICY_STALL_HH
#define SMTAVF_POLICY_STALL_HH

#include "policy/fetch_policy.hh"

namespace smtavf
{

/** Gate L2-missing threads. */
class StallPolicy : public FetchPolicy
{
  public:
    using FetchPolicy::FetchPolicy;
    const char *name() const override { return "STALL"; }
    const std::vector<ThreadId> &fetchOrder(Cycle now) override;
};

} // namespace smtavf

#endif // SMTAVF_POLICY_STALL_HH
