#include "policy/icount.hh"

namespace smtavf
{

const std::vector<ThreadId> &
IcountPolicy::fetchOrder(Cycle now)
{
    (void)now;
    return icountOrder();
}

} // namespace smtavf
