#include "policy/flush.hh"

namespace smtavf
{

FlushPolicy::FlushPolicy(PolicyContext &ctx)
    : FetchPolicy(ctx)
{
}

const std::vector<ThreadId> &
FlushPolicy::fetchOrder(Cycle now)
{
    (void)now;
    order_.clear();
    for (ThreadId tid : icountOrder())
        if (!gates_[tid].active)
            order_.push_back(tid);
    return order_;
}

void
FlushPolicy::onLoadIssued(const InstPtr &load, bool l1_miss, bool l2_miss)
{
    (void)l1_miss;
    if (!l2_miss)
        return;
    auto &gate = gates_[load->tid];
    if (gate.active)
        return; // already flushed for an older miss
    gate.active = true;
    gate.loadSeq = load->seq;
    ++flushes_;
    // Squash everything after the offending load and rewind fetch.
    ctx_.flushAfter(load->tid, load->seq);
}

void
FlushPolicy::onLoadDone(const InstPtr &load, bool l1_miss, bool l2_miss)
{
    (void)l1_miss;
    (void)l2_miss;
    auto &gate = gates_[load->tid];
    if (gate.active && gate.loadSeq == load->seq)
        gate.active = false;
}

} // namespace smtavf
