#include "policy/fetch_policy.hh"

#include <algorithm>
#include <cctype>

#include "base/logging.hh"
#include "policy/dg.hh"
#include "policy/dwarn.hh"
#include "policy/flush.hh"
#include "policy/icount.hh"
#include "policy/pdg.hh"
#include "policy/prat.hh"
#include "policy/pstall.hh"
#include "policy/rat.hh"
#include "policy/round_robin.hh"
#include "policy/stall.hh"

namespace smtavf
{

const char *
fetchPolicyName(FetchPolicyKind kind)
{
    switch (kind) {
      case FetchPolicyKind::RoundRobin: return "RR";
      case FetchPolicyKind::Icount: return "ICOUNT";
      case FetchPolicyKind::Flush: return "FLUSH";
      case FetchPolicyKind::Stall: return "STALL";
      case FetchPolicyKind::Dg: return "DG";
      case FetchPolicyKind::Pdg: return "PDG";
      case FetchPolicyKind::DWarn: return "DWarn";
      case FetchPolicyKind::PStall: return "PSTALL";
      case FetchPolicyKind::Rat: return "RAT";
      case FetchPolicyKind::PRat: return "PRAT";
      default: return "?";
    }
}

const std::vector<FetchPolicyKind> &
allFetchPolicies()
{
    static const std::vector<FetchPolicyKind> kinds = {
        FetchPolicyKind::RoundRobin, FetchPolicyKind::Icount,
        FetchPolicyKind::Flush,      FetchPolicyKind::Stall,
        FetchPolicyKind::Dg,         FetchPolicyKind::Pdg,
        FetchPolicyKind::DWarn,      FetchPolicyKind::PStall,
        FetchPolicyKind::Rat,        FetchPolicyKind::PRat,
    };
    return kinds;
}

bool
parseFetchPolicy(const std::string &name, FetchPolicyKind &out)
{
    auto lower = [](std::string s) {
        std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
            return static_cast<char>(std::tolower(c));
        });
        return s;
    };
    std::string want = lower(name);
    for (auto kind : allFetchPolicies()) {
        if (lower(fetchPolicyName(kind)) == want) {
            out = kind;
            return true;
        }
    }
    return false;
}

const std::vector<ThreadId> &
FetchPolicy::icountOrder()
{
    unsigned n = ctx_.numThreads();
    rank_.resize(n);
    keys_.resize(n);
    for (unsigned i = 0; i < n; ++i) {
        rank_[i] = static_cast<ThreadId>(i);
        keys_[i] = ctx_.inFlightCount(static_cast<ThreadId>(i));
    }
    stableSortByKey(rank_, keys_);
    return rank_;
}

ArenaPtr<FetchPolicy>
makeFetchPolicy(FetchPolicyKind kind, PolicyContext &ctx,
                const FetchPolicyTuning &tuning)
{
    switch (kind) {
      case FetchPolicyKind::RoundRobin:
        return makeArena<RoundRobinPolicy>(ctx);
      case FetchPolicyKind::Icount:
        return makeArena<IcountPolicy>(ctx);
      case FetchPolicyKind::Flush:
        return makeArena<FlushPolicy>(ctx);
      case FetchPolicyKind::Stall:
        return makeArena<StallPolicy>(ctx);
      case FetchPolicyKind::Dg:
        return makeArena<DgPolicy>(ctx);
      case FetchPolicyKind::Pdg:
        return makeArena<PdgPolicy>(ctx);
      case FetchPolicyKind::DWarn:
        return makeArena<DWarnPolicy>(ctx);
      case FetchPolicyKind::PStall:
        return makeArena<PStallPolicy>(ctx);
      case FetchPolicyKind::Rat:
        return makeArena<RatPolicy>(ctx);
      case FetchPolicyKind::PRat:
        return makeArena<PRatPolicy>(ctx, tuning.pratCap, tuning.pratEpoch);
      default:
        SMTAVF_FATAL("unknown fetch policy kind");
    }
}

} // namespace smtavf
