/**
 * @file
 * PSTALL: the paper's Section-5 enhancement of STALL. A PC-indexed 2-bit
 * L2-miss predictor classifies loads at fetch; a thread is gated the
 * moment a predicted-L2-missing load enters the pipeline — before the
 * miss even issues — so the flood of dependent ACE bits that plain STALL
 * admits during its detection window never enters. Actual outstanding L2
 * misses gate too (STALL behaviour), and, like STALL, at least one thread
 * always keeps fetching.
 */

#ifndef SMTAVF_POLICY_PSTALL_HH
#define SMTAVF_POLICY_PSTALL_HH

#include <array>
#include <unordered_map>
#include <vector>

#include "policy/fetch_policy.hh"

namespace smtavf
{

/** Predictive stall (paper Section 5 future-work proposal). */
class PStallPolicy : public FetchPolicy
{
  public:
    /** @param table_entries L2-miss predictor size (power of two). */
    explicit PStallPolicy(PolicyContext &ctx,
                          std::uint32_t table_entries = 1024);

    const char *name() const override { return "PSTALL"; }
    const std::vector<ThreadId> &fetchOrder(Cycle now) override;
    void onFetch(const InstPtr &in) override;
    void onLoadIssued(const InstPtr &load, bool l1_miss,
                      bool l2_miss) override;
    void onLoadDone(const InstPtr &load, bool l1_miss,
                    bool l2_miss) override;

    /** Loads currently gating their thread on a fetch-time prediction. */
    bool predictGateActive(ThreadId tid) const
    {
        return gates_[tid].active;
    }

    /** Checkpoint: the learned L2-miss predictor table persists. */
    void saveState(Serializer &ar) override { ar(table_); }

    void
    loadState(Deserializer &ar) override
    {
        ar(table_);
        // No load is in flight at a drained boundary, so no gate is held.
        gates_ = {};
    }

    /** Worker-reuse hook: untrained weakly-not-miss table, no gates. */
    void
    reset() override
    {
        table_.assign(table_.size(), 1);
        gates_ = {};
    }

  private:
    struct Gate
    {
        bool active = false;
        SeqNum loadSeq = 0;
    };

    std::uint32_t tableIndex(Addr pc) const;

    AVec<std::uint8_t> table_; ///< 2-bit L2-miss counters
    std::array<Gate, maxContexts> gates_{};
};

} // namespace smtavf

#endif // SMTAVF_POLICY_PSTALL_HH
