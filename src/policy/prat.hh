/**
 * @file
 * PRAT: protection-aware reliability throttling. RAT (policy/rat.hh)
 * gates a thread on its raw in-flight correct-path population — the
 * machine's live estimate of the ACE bits it exposes. Once heterogeneous
 * protection (protect/scheme.hh) is deployed that estimate overcounts:
 * an instruction sitting in a SECDED-covered ROB exposes ~1/256 of the
 * bits an unprotected ROB would, so throttling for it spends throughput
 * shading bits that ECC already covers.
 *
 * PRAT keeps RAT's fetch *priority* untouched (fewest correct-path
 * instructions first, same stable sort) and re-prices only the throttle
 * *gate*: each thread's correct-path population is weighted by its
 * *residual* exposure, in /256 fixed point so every decision is
 * integer-exact and deterministic:
 *
 *   order:   sort by cp(t) ascending (exactly RAT)
 *   gate:    throttle t when cp(t) * w256(t) >= cap * 256
 *   w256(t) = max(wOcc256(t), corr256(t))  in [1, 256]
 *
 * with two estimators, combined conservatively (never claim less
 * exposure than either one measured):
 *
 *  - wOcc256: the instantaneous occupancy-weighted mean of the static
 *    per-structure residual fractions (none 256/256, parity 32/256,
 *    SECDED and scrubbed SECDED 1/256) over the structures the thread
 *    occupies right now (IQ, ROB, LSQ data+tag, register file).
 *  - corr256: an epoch-refreshed measurement — every pratEpoch cycles
 *    the thread's cumulative residual / raw ACE bit-cycle ratio is read
 *    from the AVF ledger over the same structures, catching exposure the
 *    static floors miss (e.g. scrub intervals too long for the actual
 *    residency lengths).
 *
 * With nothing protected both estimators are exactly 256/256 (the ledger
 * conserves covered + residual == ACE), so the gate reduces to
 * cp >= cap and PRAT is bit-identical to RAT — the differential property
 * tests/test_policy_properties.cc pins. With everything SECDED the
 * weight floors at 1/256 and the gate threshold (cap * 256 correct-path
 * instructions) exceeds any reachable population: PRAT provably never
 * throttles and degenerates to RAT's base sort order.
 *
 * Because the weight reads the protection assignment, PRAT makes
 * protection *timing-affecting* — the one policy that breaks the
 * "protection is an accounting overlay" invariant. The checkpoint
 * fingerprint, the campaign shared-warmup grouping and the explorer's
 * pruning bound all special-case it (sim/journal.cc,
 * protect/explorer.cc).
 */

#ifndef SMTAVF_POLICY_PRAT_HH
#define SMTAVF_POLICY_PRAT_HH

#include <array>

#include "policy/fetch_policy.hh"

namespace smtavf
{

/** Protection-aware reliability throttling (RAT on residual exposure). */
class PRatPolicy : public FetchPolicy
{
  public:
    /**
     * @param ace_cap  correct-path instructions per thread above which an
     *        unprotected thread is gated (0 = the RAT default, 2 x a fair
     *        IQ share); protected threads gate at cap * 256 / w256
     * @param epoch    cycles between ledger-measured residual refreshes
     *        (must be positive; MachineConfig::validateMsg enforces it)
     */
    explicit PRatPolicy(PolicyContext &ctx, unsigned ace_cap = 0,
                        Cycle epoch = 4096);

    const char *name() const override { return "PRAT"; }
    const std::vector<ThreadId> &fetchOrder(Cycle now) override;

    unsigned aceCap() const { return aceCap_; }
    Cycle epoch() const { return epoch_; }

    /** Current residual-exposure weight of @p tid, in /256 fixed point. */
    unsigned weight256(ThreadId tid) const;

    /** Measured (epoch-refreshed) component of the weight, /256. */
    unsigned corr256(ThreadId tid) const { return corr256_[tid]; }

    /** Cumulative count of (thread, cycle) gate decisions — the throttle
     *  duty-cycle numerator the monotonicity property is stated over. */
    std::uint64_t throttledThreadCycles() const
    {
        return throttledThreadCycles_;
    }

    /**
     * Checkpoint hooks: the measured corrections and the absolute next
     * refresh cycle travel (the duty-cycle tally too, so diagnostics
     * survive a restore); the static weights are re-derived from the
     * restoring core's protection assignment, which the checkpoint
     * fingerprint guarantees identical (PRAT checkpoints — warmup
     * boundaries included — fold the assignment in).
     */
    void
    saveState(Serializer &ar) override
    {
        ar(corr256_);
        ar(nextRefresh_);
        ar(throttledThreadCycles_);
    }

    void
    loadState(Deserializer &ar) override
    {
        ar(corr256_);
        ar(nextRefresh_);
        ar(throttledThreadCycles_);
        deriveStaticWeights();
    }

    /** Worker-reuse hook: re-derive the static weights from the (new)
     *  protection assignment, forget every measured correction. */
    void
    reset() override
    {
        deriveStaticWeights();
        corr256_.fill(1);
        nextRefresh_ = epoch_;
        throttledThreadCycles_ = 0;
    }

  private:
    /** Structures whose occupancy prices a thread's in-flight exposure. */
    static constexpr std::array<HwStruct, 5> kStructs = {
        HwStruct::IQ, HwStruct::ROB, HwStruct::LsqData, HwStruct::LsqTag,
        HwStruct::RegFile};

    void deriveStaticWeights();
    void refreshCorrections();

    unsigned aceCap_;
    Cycle epoch_;
    Cycle nextRefresh_;
    /** Static residual fraction of each structure, /256 (in [1, 256]). */
    std::array<unsigned, numHwStructs> resid256_{};
    /** Measured cumulative residual/ACE ratio per thread, /256. Starts
     *  at 1 (the floor) so the static estimator governs until the first
     *  epoch lands; max() with wOcc can then only raise the weight. */
    std::array<unsigned, maxContexts> corr256_{};
    std::uint64_t throttledThreadCycles_ = 0;
};

} // namespace smtavf

#endif // SMTAVF_POLICY_PRAT_HH
