#include "policy/pstall.hh"

#include "base/logging.hh"

namespace smtavf
{

PStallPolicy::PStallPolicy(PolicyContext &ctx, std::uint32_t table_entries)
    : FetchPolicy(ctx), table_(table_entries, 1) // weakly no-miss
{
    if (table_entries == 0 || (table_entries & (table_entries - 1)) != 0)
        SMTAVF_FATAL("PSTALL table size must be a power of two");
}

std::uint32_t
PStallPolicy::tableIndex(Addr pc) const
{
    return static_cast<std::uint32_t>(pc >> 2) &
           (static_cast<std::uint32_t>(table_.size()) - 1);
}

const std::vector<ThreadId> &
PStallPolicy::fetchOrder(Cycle now)
{
    (void)now;
    const auto &order = icountOrder();
    order_.clear();
    for (ThreadId tid : order) {
        if (gates_[tid].active)
            continue; // predicted miss in flight
        if (ctx_.outstandingL2D(tid) > 0)
            continue; // actual miss outstanding (STALL behaviour)
        order_.push_back(tid);
    }
    if (order_.empty())
        return order; // keep at least one thread fetching
    return order_;
}

void
PStallPolicy::onFetch(const InstPtr &in)
{
    if (in->op != OpClass::Load)
        return;
    auto &gate = gates_[in->tid];
    if (gate.active)
        return; // already gated by an older predicted miss
    if (table_[tableIndex(in->pc)] >= 2) {
        gate.active = true;
        gate.loadSeq = in->seq;
    }
}

void
PStallPolicy::onLoadIssued(const InstPtr &load, bool l1_miss, bool l2_miss)
{
    (void)l1_miss;
    auto &ctr = table_[tableIndex(load->pc)];
    if (l2_miss) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
        // A predicted-miss load that actually hit releases its gate early.
        auto &gate = gates_[load->tid];
        if (gate.active && gate.loadSeq == load->seq)
            gate.active = false;
    }
}

void
PStallPolicy::onLoadDone(const InstPtr &load, bool l1_miss, bool l2_miss)
{
    (void)l1_miss;
    (void)l2_miss;
    auto &gate = gates_[load->tid];
    if (gate.active && gate.loadSeq == load->seq)
        gate.active = false;
}

} // namespace smtavf
