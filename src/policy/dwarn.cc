#include "policy/dwarn.hh"

namespace smtavf
{

std::vector<ThreadId>
DWarnPolicy::fetchOrder(Cycle now)
{
    (void)now;
    auto order = icountOrder();
    std::vector<ThreadId> clean;
    std::vector<ThreadId> warned;
    for (ThreadId tid : order) {
        if (ctx_.outstandingL1D(tid) == 0 && ctx_.outstandingL2D(tid) == 0)
            clean.push_back(tid);
        else
            warned.push_back(tid);
    }
    clean.insert(clean.end(), warned.begin(), warned.end());
    return clean;
}

} // namespace smtavf
