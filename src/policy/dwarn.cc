#include "policy/dwarn.hh"

namespace smtavf
{

const std::vector<ThreadId> &
DWarnPolicy::fetchOrder(Cycle now)
{
    (void)now;
    const auto &order = icountOrder();
    order_.clear();
    warned_.clear();
    for (ThreadId tid : order) {
        if (ctx_.outstandingL1D(tid) == 0 && ctx_.outstandingL2D(tid) == 0)
            order_.push_back(tid);
        else
            warned_.push_back(tid);
    }
    order_.insert(order_.end(), warned_.begin(), warned_.end());
    return order_;
}

} // namespace smtavf
