/**
 * @file
 * FLUSH fetch policy (Tullsen & Brown, MICRO'01): when a thread's load
 * misses in the L2, squash that thread's pipeline from the first
 * instruction after the load and gate its fetch until the data returns.
 * This is the policy the paper finds most effective at draining ACE bits
 * out of the IQ/ROB/LSQ during long-latency misses.
 */

#ifndef SMTAVF_POLICY_FLUSH_HH
#define SMTAVF_POLICY_FLUSH_HH

#include <array>

#include "policy/fetch_policy.hh"

namespace smtavf
{

/** Squash-and-gate on L2 data misses. */
class FlushPolicy : public FetchPolicy
{
  public:
    explicit FlushPolicy(PolicyContext &ctx);

    const char *name() const override { return "FLUSH"; }
    const std::vector<ThreadId> &fetchOrder(Cycle now) override;
    void onLoadIssued(const InstPtr &load, bool l1_miss,
                      bool l2_miss) override;
    void onLoadDone(const InstPtr &load, bool l1_miss,
                    bool l2_miss) override;

    std::uint64_t flushes() const { return flushes_; }

    /** Checkpoint: cumulative flush count only (gates drain with loads). */
    void saveState(Serializer &ar) override { ar(flushes_); }

    void
    loadState(Deserializer &ar) override
    {
        ar(flushes_);
        gates_ = {};
    }

    /** Worker-reuse hook: no gates held, flush count zeroed. */
    void
    reset() override
    {
        gates_ = {};
        flushes_ = 0;
    }

  private:
    struct Gate
    {
        bool active = false;
        SeqNum loadSeq = 0; ///< the load whose return lifts the gate
    };

    std::array<Gate, maxContexts> gates_{};
    std::uint64_t flushes_ = 0;
};

} // namespace smtavf

#endif // SMTAVF_POLICY_FLUSH_HH
