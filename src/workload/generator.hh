/**
 * @file
 * StreamGenerator: expands a BenchmarkProfile into a deterministic dynamic
 * instruction stream with real register dataflow, memory addresses and
 * branch outcomes.
 *
 * The generator keeps a buffer of generated-but-uncommitted instructions so
 * the core can *rewind* fetch (branch-mispredict recovery and the FLUSH
 * fetch policy both squash and later refetch the same instructions). It
 * also synthesizes wrong-path filler instructions that the core fetches
 * past mispredicted branches; those are un-ACE by construction and their
 * loads still pollute the caches, as on a real machine.
 */

#ifndef SMTAVF_WORKLOAD_GENERATOR_HH
#define SMTAVF_WORKLOAD_GENERATOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "base/arena.hh"
#include "base/ring_buffer.hh"
#include "base/rng.hh"
#include "base/types.hh"
#include "isa/instr.hh"
#include "workload/profile.hh"

namespace smtavf
{

/** Deterministic per-thread instruction stream. */
class StreamGenerator
{
  public:
    /**
     * @param profile   behavioural envelope to synthesize
     * @param seed      RNG seed; same (profile, seed, stream_id) =>
     *                  identical stream
     * @param tid       hardware context the stream will run on
     * @param stream_id seeding identity; defaults to @p tid. Passing the
     *                  original SMT context id lets a 1-context baseline
     *                  replay exactly the stream that context executed
     *                  (the paper's Figure 3/4 methodology).
     */
    StreamGenerator(const BenchmarkProfile &profile, std::uint64_t seed,
                    ThreadId tid, std::uint32_t stream_id = 0xffffffff);

    /**
     * Worker-reuse hook: re-seed and re-run the constructor's derivation
     * in place — same draw order, so reset(s) is stream-identical to a
     * fresh StreamGenerator(profile, s, tid, stream_id). Allocation-free
     * (every container keeps its capacity).
     */
    void reset(std::uint64_t seed);

    /**
     * Correct-path instruction at stream index @p idx (0-based program
     * order). Generates on demand; the record is a template whose pipeline
     * fields the core initializes on fetch.
     */
    const DynInstr &at(std::uint64_t idx);

    /** Drop buffered instructions below @p idx (they committed). */
    void retireBelow(std::uint64_t idx);

    /** Synthesize one wrong-path instruction at @p pc. */
    DynInstr makeWrongPath(Addr pc);

    /** Wrap @p pc into this thread's code footprint (wrong-path fetch). */
    Addr clampToCode(Addr pc) const;

    /** A contiguous address range of this thread. */
    struct MemRange
    {
        Addr base;
        std::uint64_t size;
    };

    /** Ranges a simulator should pre-warm (code, hot set, warm set). */
    struct PrewarmHints
    {
        MemRange code;
        MemRange hot;
        MemRange warm;
    };

    /**
     * This thread's pre-warm ranges. Short simulations would otherwise pay
     * compulsory misses on footprints the paper's 100M-instruction
     * SimPoint regions have long since warmed.
     */
    PrewarmHints prewarmHints() const;

    /** Number of correct-path instructions generated so far. */
    std::uint64_t generatedCount() const { return base_ + buffer_.size(); }

    /** Number still buffered (uncommitted window size). */
    std::size_t bufferedCount() const { return buffer_.size(); }

    const BenchmarkProfile &profile() const { return profile_; }
    ThreadId tid() const { return tid_; }

    /**
     * Checkpoint hook: only the mutable stream state travels. Everything
     * the constructor derives deterministically from (profile, seed,
     * stream_id) — the op-class CDF, branch/jump site geometry, region
     * bases — is rebuilt by constructing the generator the normal way and
     * then overwriting this state on top. The buffered uncommitted window
     * CAN be non-empty at a drained boundary (instructions fetched,
     * squashed and not yet refetched stay buffered — the RNG has already
     * advanced past them, so they are not regenerable) and travels as the
     * template fields generateOne()/makeWrongPath() fill in.
     */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        ar(rng_);
        ar(wrongRng_);
        ar(base_);
        std::uint64_t n = buffer_.size();
        ar(n);
        if constexpr (Ar::loading) {
            buffer_.clear();
            for (std::uint64_t i = 0; i < n; ++i) {
                DynInstr in;
                serializeTemplate(ar, in);
                buffer_.push_back(in);
            }
        } else {
            for (std::uint64_t i = 0; i < n; ++i)
                serializeTemplate(ar, buffer_[i]);
        }
        ar(sites_);
        ar(curSite_);
        ar(pc_);
        ar(callStack_);
        ar(intChains_);
        ar(fpChains_);
        ar(curChain_);
        ar(hotStreams_);
        ar(warmStreams_);
        ar(coldStreams_);
        ar(nextStream_);
    }

  private:
    /** Per-static-branch behavioural state. */
    struct BranchSite
    {
        Addr pc = 0;
        Addr target = 0;
        bool random = false;    ///< entropy site: coin flips
        double takenProb = 0.5; ///< for random sites
        std::uint32_t period = 8; ///< for loop sites: taken period-1 of period
        std::uint32_t counter = 0;

        template <class Ar>
        void
        serialize(Ar &ar)
        {
            ar(pc);
            ar(target);
            ar(random);
            ar(takenProb);
            ar(period);
            ar(counter);
        }
    };

    /** One sequential access stream within a memory region. */
    struct AccessStream
    {
        Addr cursor = 0;

        template <class Ar>
        void
        serialize(Ar &ar)
        {
            ar(cursor);
        }
    };

    /**
     * The subset of DynInstr that generateOne()/makeWrongPath() fill in —
     * a buffered entry is a pristine template (the core copies it into the
     * instruction pool at fetch), so the pipeline/rename fields are all
     * still defaults and never travel.
     */
    template <class Ar>
    static void
    serializeTemplate(Ar &ar, DynInstr &in)
    {
        ar(in.tid);
        ar(in.streamIdx);
        ar(in.pc);
        ar(in.op);
        ar(in.destReg);
        ar(in.srcReg1);
        ar(in.srcReg2);
        ar(in.memAddr);
        ar(in.memSize);
        ar(in.branchTaken);
        ar(in.branchTarget);
    }

    /** Constructor body: everything derived from (profile, seed, sid). */
    void init();

    DynInstr generateOne();
    OpClass pickOpClass();
    RegIndex pickSrc(bool fp);
    RegIndex pickDest(bool fp);
    void noteDef(RegIndex reg);
    Addr genDataAddress(std::uint8_t size);
    Addr codeAddr(std::uint64_t raw) const;

    BenchmarkProfile profile_;
    ThreadId tid_;
    std::uint32_t streamId_; ///< raw ctor argument (0xffffffff = tid)
    Rng rng_;
    Rng wrongRng_;

    /** Uncommitted window; ring reuse keeps generation allocation-free. */
    RingBuffer<DynInstr> buffer_;
    std::uint64_t base_ = 0; ///< stream index of buffer_.front()

    // cumulative op-class distribution, aligned with opOrder_
    std::array<double, numOpClasses> opCdf_{};
    std::array<OpClass, numOpClasses> opOrder_{};
    std::size_t opCount_ = 0;

    // Dataflow state: a ring of recent definitions per register class per
    // independent chain (parallel loop iterations in flight).
    static constexpr std::size_t defWindow = 8;
    struct DefRing
    {
        std::array<RegIndex, defWindow> regs{};
        std::size_t count = 0;

        template <class Ar>
        void
        serialize(Ar &ar)
        {
            ar(regs);
            ar(count);
        }
    };
    AVec<DefRing> intChains_;
    AVec<DefRing> fpChains_;
    std::size_t curChain_ = 0;

    /** A static unconditional jump/call site with a stable target. */
    struct JumpSite
    {
        Addr pc = 0;
        Addr target = 0;
        bool isCall = false;
    };

    // control state
    AVec<BranchSite> sites_;
    AVec<JumpSite> jumpSites_;
    std::size_t curSite_ = 0; ///< sticky branch site (loop behaviour)
    Addr pc_ = 0;
    AVec<Addr> callStack_;

    // Data regions: bases far apart so they never alias, plus a per-thread
    // offset so the multiprogrammed contexts have disjoint address spaces
    // (as the paper's SPEC mixes do).
    Addr threadOffset_ = 0;
    static constexpr Addr hotBase = 0x1000'0000;
    static constexpr Addr warmBase = 0x4000'0000;
    static constexpr Addr coldBase = 0x8000'0000;
    static constexpr std::size_t streamsPerRegion = 4;
    std::array<AccessStream, streamsPerRegion> hotStreams_;
    std::array<AccessStream, streamsPerRegion> warmStreams_;
    std::array<AccessStream, streamsPerRegion> coldStreams_;
    std::size_t nextStream_ = 0;

    static constexpr Addr codeBase = 0x0040'0000;
    static constexpr std::uint64_t codeFootprint = 6 * 1024;
    /** Page-granular skew of random data accesses (TLB locality). */
    static constexpr double pageZipfS = 0.9;
    static constexpr std::uint64_t pageBytes = 8192;
};

} // namespace smtavf

#endif // SMTAVF_WORKLOAD_GENERATOR_HH
