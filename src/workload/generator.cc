#include "workload/generator.hh"

#include "base/logging.hh"

namespace smtavf
{

StreamGenerator::StreamGenerator(const BenchmarkProfile &profile,
                                 std::uint64_t seed, ThreadId tid,
                                 std::uint32_t stream_id)
    : profile_(profile), tid_(tid), streamId_(stream_id),
      rng_(seed ^ (0x51ed2700ull +
                   (stream_id == 0xffffffff ? tid : stream_id))),
      wrongRng_((seed * 0x9e3779b97f4a7c15ull) ^
                (0xbadcull + (stream_id == 0xffffffff ? tid : stream_id)))
{
    profile_.validate();
    init();
}

void
StreamGenerator::reset(std::uint64_t seed)
{
    // Same seeding expressions as the constructor's member initializers.
    std::uint64_t sid = streamId_ == 0xffffffff ? tid_ : streamId_;
    rng_ = Rng(seed ^ (0x51ed2700ull + sid));
    wrongRng_ = Rng((seed * 0x9e3779b97f4a7c15ull) ^ (0xbadcull + sid));
    buffer_.reset();
    base_ = 0;
    curSite_ = 0;
    curChain_ = 0;
    nextStream_ = 0;
    callStack_.clear();
    init();
}

void
StreamGenerator::init()
{
    // High bits separate the address spaces; the low page-aligned jitter
    // spreads different threads' footprints across cache sets, as distinct
    // physical page mappings would on a real machine.
    threadOffset_ = (static_cast<Addr>(tid_) << 40) +
                    static_cast<Addr>(tid_) * 0x25000;

    // Build the cumulative op-class distribution once.
    struct MixEntry { OpClass op; double frac; };
    const MixEntry mix[] = {
        {OpClass::Load, profile_.loadFrac},
        {OpClass::Store, profile_.storeFrac},
        {OpClass::BranchCond, profile_.branchFrac},
        {OpClass::BranchUncond, profile_.jumpFrac},
        {OpClass::FpAlu, profile_.fpAluFrac},
        {OpClass::FpMult, profile_.fpMulFrac},
        {OpClass::FpDiv, profile_.fpDivFrac},
        {OpClass::IntMult, profile_.intMulFrac},
        {OpClass::IntDiv, profile_.intDivFrac},
        {OpClass::Nop, profile_.nopFrac},
    };
    double cum = 0.0;
    opCount_ = 0;
    for (const auto &e : mix) {
        if (e.frac <= 0.0)
            continue;
        cum += e.frac;
        opOrder_[opCount_] = e.op;
        opCdf_[opCount_] = cum;
        ++opCount_;
    }
    // Remainder is integer ALU work.
    opOrder_[opCount_] = OpClass::IntAlu;
    opCdf_[opCount_] = 1.0;
    ++opCount_;

    // Initialize branch sites with stable PCs inside the code footprint.
    sites_.resize(profile_.staticBranches);
    for (std::uint32_t i = 0; i < profile_.staticBranches; ++i) {
        auto &s = sites_[i];
        s.pc = codeAddr(static_cast<std::uint64_t>(i) * 68 + 16);
        s.target = codeAddr(rng_.uniform(codeFootprint));
        s.random = rng_.bernoulli(profile_.branchEntropy);
        // Even data-dependent branches are usually biased; only a minority
        // are coin flips near the profile's global taken rate.
        if (rng_.bernoulli(0.7))
            s.takenProb = rng_.bernoulli(profile_.takenRate) ? 0.9 : 0.1;
        else
            s.takenProb = profile_.takenRate;
        s.period = static_cast<std::uint32_t>(rng_.uniformRange(4, 16));
        s.counter = 0;
    }

    // Unconditional jump/call sites with stable targets (BTB-learnable).
    jumpSites_.resize(profile_.staticBranches / 2 + 1);
    for (std::size_t i = 0; i < jumpSites_.size(); ++i) {
        auto &j = jumpSites_[i];
        j.pc = codeAddr(static_cast<std::uint64_t>(i) * 92 + 36);
        j.target = codeAddr(rng_.uniform(codeFootprint));
        j.isCall = rng_.bernoulli(0.5);
    }

    pc_ = threadOffset_ + codeBase;

    // The call stack is capped at 24 entries (see the Call emission in
    // generateOne); reserving the cap keeps its rare late growth out of
    // the steady-state tick loop's allocation-free window.
    callStack_.reserve(24);

    std::uint32_t chains = profile_.parallelChains;
    // assign, not resize: on a reset() re-run the vectors already have
    // this size and resize would leave stale definition rings behind.
    intChains_.assign(chains, DefRing{});
    fpChains_.assign(chains, DefRing{});

    auto init_streams = [this](std::array<AccessStream, streamsPerRegion> &ss,
                               Addr base, std::uint64_t size) {
        for (auto &s : ss)
            s.cursor = base + rng_.uniform(size);
    };
    init_streams(hotStreams_, threadOffset_ + hotBase, profile_.hotSetBytes);
    init_streams(warmStreams_, threadOffset_ + warmBase, profile_.warmSetBytes);
    init_streams(coldStreams_, threadOffset_ + coldBase, profile_.coldSetBytes);
}

Addr
StreamGenerator::codeAddr(std::uint64_t raw) const
{
    return threadOffset_ + codeBase + (raw % codeFootprint & ~Addr{3});
}

Addr
StreamGenerator::clampToCode(Addr pc) const
{
    Addr base = threadOffset_ + codeBase;
    return base + ((pc - base) % codeFootprint & ~Addr{3});
}

StreamGenerator::PrewarmHints
StreamGenerator::prewarmHints() const
{
    PrewarmHints h;
    h.code = {threadOffset_ + codeBase, codeFootprint};
    h.hot = {threadOffset_ + hotBase, profile_.hotSetBytes};
    h.warm = {threadOffset_ + warmBase, profile_.warmSetBytes};
    return h;
}

const DynInstr &
StreamGenerator::at(std::uint64_t idx)
{
    if (idx < base_)
        SMTAVF_PANIC("stream index ", idx, " already retired (base ", base_,
                     ")");
    while (base_ + buffer_.size() <= idx)
        buffer_.push_back(generateOne());
    return buffer_[idx - base_];
}

void
StreamGenerator::retireBelow(std::uint64_t idx)
{
    while (base_ < idx && !buffer_.empty()) {
        buffer_.pop_front();
        ++base_;
    }
}

OpClass
StreamGenerator::pickOpClass()
{
    double u = rng_.uniformReal();
    for (std::size_t i = 0; i < opCount_; ++i)
        if (u < opCdf_[i])
            return opOrder_[i];
    return OpClass::IntAlu;
}

void
StreamGenerator::noteDef(RegIndex reg)
{
    if (isZeroReg(reg))
        return;
    auto &chains = isFpReg(reg) ? fpChains_ : intChains_;
    auto &ring = chains[curChain_];
    ring.regs[ring.count % defWindow] = reg;
    ++ring.count;
}

RegIndex
StreamGenerator::pickSrc(bool fp)
{
    auto &chains = fp ? fpChains_ : intChains_;

    // Mostly read within the current chain; occasionally a loop-carried
    // value from another iteration.
    std::size_t chain = curChain_;
    if (chains.size() > 1 && rng_.bernoulli(profile_.crossChainFrac))
        chain = (curChain_ + 1 + rng_.uniform(chains.size() - 1)) %
                chains.size();

    const auto &ring = chains[chain];
    if (ring.count == 0)
        return pickDest(fp); // cold start: any register of the chain

    std::size_t window = ring.count < defWindow ? ring.count : defWindow;
    std::size_t back;
    if (rng_.bernoulli(profile_.shortDepFrac)) {
        // Tight chain: one of the two most recent definitions.
        back = rng_.uniform(window < 2 ? window : 2);
    } else {
        back = rng_.uniform(window);
    }
    return ring.regs[(ring.count - 1 - back) % defWindow];
}

RegIndex
StreamGenerator::pickDest(bool fp)
{
    // Chains own disjoint register-name partitions, so one chain's writes
    // never rename over another chain's live values.
    RegIndex base = fp ? numArchIntRegs : 0;
    std::uint32_t chains = static_cast<std::uint32_t>(intChains_.size());
    std::uint32_t span = 31 / chains;
    RegIndex lo = 1 + static_cast<RegIndex>(curChain_ * span);
    return base + lo + static_cast<RegIndex>(rng_.uniform(span));
}

Addr
StreamGenerator::genDataAddress(std::uint8_t size)
{
    double u = rng_.uniformReal();
    Addr base;
    std::uint64_t region_size;
    std::array<AccessStream, streamsPerRegion> *streams;
    if (u < profile_.hotAccessFrac) {
        base = threadOffset_ + hotBase;
        region_size = profile_.hotSetBytes;
        streams = &hotStreams_;
    } else if (u < profile_.hotAccessFrac + profile_.warmAccessFrac) {
        base = threadOffset_ + warmBase;
        region_size = profile_.warmSetBytes;
        streams = &warmStreams_;
    } else {
        base = threadOffset_ + coldBase;
        region_size = profile_.coldSetBytes;
        streams = &coldStreams_;
    }

    Addr addr;
    if (rng_.bernoulli(profile_.stridedFrac)) {
        auto &s = (*streams)[nextStream_ % streamsPerRegion];
        ++nextStream_;
        s.cursor += profile_.strideBytes;
        if (s.cursor >= base + region_size)
            s.cursor = base;
        addr = s.cursor;
    } else {
        // Random accesses are page-zipf skewed: many distinct lines (cache
        // pressure) but a hot page set the TLB can hold, as in real
        // pointer-chasing codes.
        std::uint64_t pages = region_size / pageBytes;
        if (pages < 2) {
            addr = base + rng_.uniform(region_size);
        } else {
            std::uint64_t page = rng_.zipf(pages, pageZipfS);
            addr = base + page * pageBytes + rng_.uniform(pageBytes);
        }
    }
    return addr & ~static_cast<Addr>(size - 1);
}

DynInstr
StreamGenerator::generateOne()
{
    DynInstr in;
    in.tid = tid_;
    in.streamIdx = base_ + buffer_.size();
    in.op = pickOpClass();
    in.pc = pc_;

    // Interleave the independent chains round-robin, like the unrolled
    // iterations of a software-pipelined loop.
    curChain_ = (curChain_ + 1) % intChains_.size();

    Addr next_pc = pc_ + 4;

    switch (in.op) {
      case OpClass::Nop:
        break;

      case OpClass::IntAlu:
      case OpClass::IntMult:
      case OpClass::IntDiv:
        in.srcReg1 = pickSrc(false);
        in.srcReg2 = pickSrc(false);
        in.destReg = pickDest(false);
        noteDef(in.destReg);
        break;

      case OpClass::FpAlu:
      case OpClass::FpMult:
      case OpClass::FpDiv:
        in.srcReg1 = pickSrc(true);
        in.srcReg2 = pickSrc(true);
        in.destReg = pickDest(true);
        noteDef(in.destReg);
        break;

      case OpClass::Load: {
        bool fp_dest = profile_.suite == BenchSuite::Fp &&
                       rng_.bernoulli(0.5);
        in.srcReg1 = pickSrc(false); // address base
        in.destReg = pickDest(fp_dest);
        in.memSize = fp_dest ? 8 : 4;
        in.memAddr = genDataAddress(in.memSize);
        noteDef(in.destReg);
        break;
      }

      case OpClass::Store: {
        bool fp_data = profile_.suite == BenchSuite::Fp &&
                       rng_.bernoulli(0.5);
        in.srcReg1 = pickSrc(false);   // address base
        in.srcReg2 = pickSrc(fp_data); // data
        in.memSize = fp_data ? 8 : 4;
        in.memAddr = genDataAddress(in.memSize);
        break;
      }

      case OpClass::BranchCond: {
        // Loop-nest model: the current site repeats until its loop exits
        // (the not-taken outcome), then control moves to the next site in
        // a mostly fixed cycle — so the global history carries a learnable
        // pattern, as in real loop nests. Entropy sites flip data-driven
        // coins and provide the irreducible mispredictions.
        auto &site = sites_[curSite_];
        in.pc = site.pc;
        in.srcReg1 = pickSrc(false);
        in.srcReg2 = pickSrc(false);
        if (site.random) {
            in.branchTaken = rng_.bernoulli(site.takenProb);
        } else {
            // Loop-style branch: taken period-1 times out of period.
            ++site.counter;
            if (site.counter >= site.period) {
                site.counter = 0;
                in.branchTaken = false;
            } else {
                in.branchTaken = true;
            }
        }
        if (!in.branchTaken) {
            // Loop exit: move on, occasionally jumping to hot code.
            if (rng_.bernoulli(0.85))
                curSite_ = (curSite_ + 1) % sites_.size();
            else
                curSite_ = rng_.zipf(sites_.size(), 0.6);
        }
        in.branchTarget = site.target;
        next_pc = in.branchTaken ? site.target : site.pc + 4;
        break;
      }

      case OpClass::BranchUncond:
      case OpClass::Call:
      case OpClass::Return: {
        // The mix only emits BranchUncond; refine it into jump/call/return
        // here, keeping call depth balanced so the RAS sees matched pairs.
        // Jump/call sites have stable PCs and targets so the BTB learns
        // them; returns target the matching call's fall-through.
        double kind = rng_.uniformReal();
        if (kind < 0.40 && !callStack_.empty()) {
            in.op = OpClass::Return;
            in.pc = codeAddr(rng_.uniform(codeFootprint));
            in.branchTarget = callStack_.back();
            callStack_.pop_back();
        } else {
            auto &site = jumpSites_[rng_.zipf(jumpSites_.size(), 0.6)];
            in.pc = site.pc;
            in.branchTarget = site.target;
            if (site.isCall && callStack_.size() < 24) {
                in.op = OpClass::Call;
                callStack_.push_back(in.pc + 4);
            } else {
                in.op = OpClass::BranchUncond;
            }
        }
        in.branchTaken = true;
        next_pc = in.branchTarget;
        break;
      }

      default:
        SMTAVF_PANIC("unhandled op class in generator");
    }

    // Sequential fall-through must stay inside the code footprint, or
    // low-branch streams would walk off into unmapped (IL1-hostile)
    // territory between redirects.
    pc_ = clampToCode(next_pc);
    return in;
}

DynInstr
StreamGenerator::makeWrongPath(Addr pc)
{
    DynInstr in;
    in.tid = tid_;
    in.wrongPath = true;
    in.pc = pc;

    // Wrong-path work is plain compute plus the occasional load whose cache
    // pollution is real even though its result is un-ACE.
    // Note: only wrongRng_ may be drawn here; touching rng_ would make the
    // correct-path stream depend on how much wrong-path work was fetched.
    double u = wrongRng_.uniformReal();
    if (u < profile_.loadFrac) {
        in.op = OpClass::Load;
        in.srcReg1 = 1;
        in.destReg = static_cast<RegIndex>(wrongRng_.uniformRange(1, 31));
        in.memSize = 4;
        // Wrong-path loads chase stale pointers into the same regions the
        // program uses (mostly the hot set), not arbitrary cold memory.
        double r = wrongRng_.uniformReal();
        Addr base;
        std::uint64_t size;
        if (r < profile_.hotAccessFrac) {
            base = threadOffset_ + hotBase;
            size = profile_.hotSetBytes;
        } else if (r < profile_.hotAccessFrac + profile_.warmAccessFrac) {
            base = threadOffset_ + warmBase;
            size = profile_.warmSetBytes;
        } else {
            base = threadOffset_ + coldBase;
            size = profile_.coldSetBytes;
        }
        in.memAddr = (base + wrongRng_.uniform(size)) & ~Addr{3};
    } else if (u < profile_.loadFrac + profile_.fpAluFrac) {
        in.op = OpClass::FpAlu;
        in.srcReg1 = numArchIntRegs + 1;
        in.srcReg2 = numArchIntRegs + 2;
        in.destReg = numArchIntRegs +
                     static_cast<RegIndex>(wrongRng_.uniformRange(1, 31));
    } else {
        in.op = OpClass::IntAlu;
        in.srcReg1 = 1;
        in.srcReg2 = 2;
        in.destReg = static_cast<RegIndex>(wrongRng_.uniformRange(1, 31));
    }
    return in;
}

} // namespace smtavf
