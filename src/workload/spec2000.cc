/**
 * @file
 * The SPEC CPU 2000 profile database.
 *
 * Each profile is calibrated to published characterizations of the
 * benchmark (instruction mix, L1/L2 miss behaviour, branch predictability,
 * working-set size). The numbers are behavioural targets, not claims of
 * exact fidelity: what matters for the reproduction is that the CPU-class
 * programs run at high IPC out of the caches while the MEM-class programs
 * are dominated by DL1/L2 misses, with the per-program ordering (e.g. mcf
 * and swim worst, eon and mesa best) preserved.
 */

#include "workload/profile.hh"

#include "base/logging.hh"

namespace smtavf
{

namespace
{

constexpr std::uint64_t kB = 1024;
constexpr std::uint64_t mB = 1024 * 1024;

std::vector<BenchmarkProfile>
buildDatabase()
{
    std::vector<BenchmarkProfile> db;

    auto add = [&db](BenchmarkProfile p) {
        p.validate();
        db.push_back(std::move(p));
    };

    // ---- SPEC INT, CPU-intensive ----------------------------------------
    {
        BenchmarkProfile p;
        p.name = "bzip2";
        p.suite = BenchSuite::Int;
        p.category = BenchClass::Cpu;
        p.loadFrac = 0.26; p.storeFrac = 0.09;
        p.branchFrac = 0.11; p.jumpFrac = 0.01;
        p.shortDepFrac = 0.50;
        p.parallelChains = 3;
        p.hotAccessFrac = 0.93; p.warmAccessFrac = 0.065;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 512 * kB;
        p.coldSetBytes = 32 * mB;
        p.stridedFrac = 0.6; p.strideBytes = 4;
        p.takenRate = 0.62; p.branchEntropy = 0.22;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "crafty";
        p.suite = BenchSuite::Int;
        p.category = BenchClass::Cpu;
        p.loadFrac = 0.29; p.storeFrac = 0.07;
        p.branchFrac = 0.12; p.jumpFrac = 0.02;
        p.intMulFrac = 0.005;
        p.shortDepFrac = 0.30;
        p.parallelChains = 4;
        p.hotAccessFrac = 0.95; p.warmAccessFrac = 0.048;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 512 * kB;
        p.coldSetBytes = 16 * mB;
        p.stridedFrac = 0.35; p.strideBytes = 8;
        p.takenRate = 0.55; p.branchEntropy = 0.30;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "eon";
        p.suite = BenchSuite::Int;
        p.category = BenchClass::Cpu;
        p.loadFrac = 0.28; p.storeFrac = 0.14;
        p.branchFrac = 0.08; p.jumpFrac = 0.03;
        p.fpAluFrac = 0.08; p.fpMulFrac = 0.04; // eon does real fp work
        p.shortDepFrac = 0.28;
        p.parallelChains = 4;
        p.hotAccessFrac = 0.97; p.warmAccessFrac = 0.028;
        p.hotSetBytes = 8 * kB; p.warmSetBytes = 512 * kB;
        p.coldSetBytes = 8 * mB;
        p.stridedFrac = 0.5; p.strideBytes = 8;
        p.takenRate = 0.58; p.branchEntropy = 0.12;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "gap";
        p.suite = BenchSuite::Int;
        p.category = BenchClass::Cpu;
        p.loadFrac = 0.24; p.storeFrac = 0.08;
        p.branchFrac = 0.10; p.jumpFrac = 0.02;
        p.intMulFrac = 0.02;
        p.shortDepFrac = 0.32;
        p.parallelChains = 4;
        p.hotAccessFrac = 0.92; p.warmAccessFrac = 0.075;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 512 * kB;
        p.coldSetBytes = 64 * mB;
        p.stridedFrac = 0.45; p.strideBytes = 8;
        p.takenRate = 0.60; p.branchEntropy = 0.18;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "gcc";
        p.suite = BenchSuite::Int;
        p.category = BenchClass::Cpu; // paper places gcc in CPU mixes
        p.loadFrac = 0.26; p.storeFrac = 0.12;
        p.branchFrac = 0.13; p.jumpFrac = 0.03;
        p.shortDepFrac = 0.38;
        p.parallelChains = 3;
        p.hotAccessFrac = 0.88; p.warmAccessFrac = 0.11;
        p.hotSetBytes = 24 * kB; p.warmSetBytes = 768 * kB;
        p.coldSetBytes = 64 * mB;
        p.stridedFrac = 0.3; p.strideBytes = 4;
        p.takenRate = 0.57; p.branchEntropy = 0.28;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "parser";
        p.suite = BenchSuite::Int;
        p.category = BenchClass::Cpu;
        p.loadFrac = 0.25; p.storeFrac = 0.09;
        p.branchFrac = 0.12; p.jumpFrac = 0.02;
        p.shortDepFrac = 0.40;
        p.parallelChains = 3;
        p.hotAccessFrac = 0.90; p.warmAccessFrac = 0.095;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 512 * kB;
        p.coldSetBytes = 32 * mB;
        p.stridedFrac = 0.25; p.strideBytes = 8;
        p.takenRate = 0.55; p.branchEntropy = 0.30;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "perlbmk";
        p.suite = BenchSuite::Int;
        p.category = BenchClass::Cpu;
        p.loadFrac = 0.27; p.storeFrac = 0.12;
        p.branchFrac = 0.12; p.jumpFrac = 0.04;
        p.shortDepFrac = 0.33;
        p.parallelChains = 4;
        p.hotAccessFrac = 0.95; p.warmAccessFrac = 0.048;
        p.hotSetBytes = 12 * kB; p.warmSetBytes = 512 * kB;
        p.coldSetBytes = 16 * mB;
        p.stridedFrac = 0.35; p.strideBytes = 8;
        p.takenRate = 0.60; p.branchEntropy = 0.15;
        add(p);
    }

    // ---- SPEC INT, memory-intensive ----------------------------------------
    {
        BenchmarkProfile p;
        p.name = "mcf";
        p.suite = BenchSuite::Int;
        p.category = BenchClass::Mem;
        p.loadFrac = 0.35; p.storeFrac = 0.09;
        p.branchFrac = 0.12; p.jumpFrac = 0.01;
        p.shortDepFrac = 0.40;
        p.parallelChains = 3; // pointer chasing: loads feed loads
        p.hotAccessFrac = 0.40; p.warmAccessFrac = 0.25;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 2 * mB;
        p.coldSetBytes = 160 * mB;
        p.stridedFrac = 0.05; p.strideBytes = 8; // random walk
        p.takenRate = 0.55; p.branchEntropy = 0.35;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "twolf";
        p.suite = BenchSuite::Int;
        p.category = BenchClass::Mem;
        p.loadFrac = 0.28; p.storeFrac = 0.08;
        p.branchFrac = 0.13; p.jumpFrac = 0.01;
        p.shortDepFrac = 0.35;
        p.parallelChains = 3;
        p.hotAccessFrac = 0.62; p.warmAccessFrac = 0.35;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 1 * mB;
        p.coldSetBytes = 16 * mB;
        p.stridedFrac = 0.1; p.strideBytes = 8;
        p.takenRate = 0.56; p.branchEntropy = 0.32;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "vpr";
        p.suite = BenchSuite::Int;
        p.category = BenchClass::Mem;
        p.loadFrac = 0.30; p.storeFrac = 0.10;
        p.branchFrac = 0.11; p.jumpFrac = 0.01;
        p.fpAluFrac = 0.05;
        p.shortDepFrac = 0.35;
        p.parallelChains = 3;
        p.hotAccessFrac = 0.62; p.warmAccessFrac = 0.35;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 1 * mB;
        p.coldSetBytes = 24 * mB;
        p.stridedFrac = 0.12; p.strideBytes = 8;
        p.takenRate = 0.58; p.branchEntropy = 0.30;
        add(p);
    }

    // ---- SPEC FP, CPU-intensive ----------------------------------------
    {
        BenchmarkProfile p;
        p.name = "facerec";
        p.suite = BenchSuite::Fp;
        p.category = BenchClass::Cpu;
        p.loadFrac = 0.26; p.storeFrac = 0.08;
        p.branchFrac = 0.05; p.jumpFrac = 0.01;
        p.fpAluFrac = 0.22; p.fpMulFrac = 0.12; p.fpDivFrac = 0.003;
        p.shortDepFrac = 0.22;
        p.parallelChains = 5;
        p.hotAccessFrac = 0.93; p.warmAccessFrac = 0.068;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 512 * kB;
        p.coldSetBytes = 16 * mB;
        p.stridedFrac = 0.85; p.strideBytes = 8;
        p.takenRate = 0.80; p.branchEntropy = 0.05;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "fma3d";
        p.suite = BenchSuite::Fp;
        p.category = BenchClass::Cpu;
        p.loadFrac = 0.28; p.storeFrac = 0.11;
        p.branchFrac = 0.06; p.jumpFrac = 0.02;
        p.fpAluFrac = 0.20; p.fpMulFrac = 0.10; p.fpDivFrac = 0.004;
        p.shortDepFrac = 0.25;
        p.parallelChains = 5;
        p.hotAccessFrac = 0.90; p.warmAccessFrac = 0.097;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 512 * kB;
        p.coldSetBytes = 32 * mB;
        p.stridedFrac = 0.7; p.strideBytes = 8;
        p.takenRate = 0.75; p.branchEntropy = 0.10;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "galgel";
        p.suite = BenchSuite::Fp;
        p.category = BenchClass::Mem; // appears in the paper's 4-ctx MEM mix
        p.loadFrac = 0.30; p.storeFrac = 0.07;
        p.branchFrac = 0.04; p.jumpFrac = 0.01;
        p.fpAluFrac = 0.25; p.fpMulFrac = 0.15;
        p.shortDepFrac = 0.30;
        p.parallelChains = 6;
        p.hotAccessFrac = 0.65; p.warmAccessFrac = 0.27;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 1 * mB;
        p.coldSetBytes = 32 * mB;
        p.stridedFrac = 0.8; p.strideBytes = 8;
        p.takenRate = 0.85; p.branchEntropy = 0.08;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "mesa";
        p.suite = BenchSuite::Fp;
        p.category = BenchClass::Cpu;
        p.loadFrac = 0.24; p.storeFrac = 0.10;
        p.branchFrac = 0.08; p.jumpFrac = 0.02;
        p.fpAluFrac = 0.14; p.fpMulFrac = 0.08; p.fpDivFrac = 0.002;
        p.shortDepFrac = 0.26;
        p.parallelChains = 4;
        p.hotAccessFrac = 0.96; p.warmAccessFrac = 0.038;
        p.hotSetBytes = 12 * kB; p.warmSetBytes = 512 * kB;
        p.coldSetBytes = 8 * mB;
        p.stridedFrac = 0.7; p.strideBytes = 4;
        p.takenRate = 0.70; p.branchEntropy = 0.08;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "wupwise";
        p.suite = BenchSuite::Fp;
        p.category = BenchClass::Cpu;
        p.loadFrac = 0.23; p.storeFrac = 0.09;
        p.branchFrac = 0.04; p.jumpFrac = 0.01;
        p.fpAluFrac = 0.22; p.fpMulFrac = 0.14; p.fpDivFrac = 0.001;
        p.shortDepFrac = 0.20;
        p.parallelChains = 6;
        p.hotAccessFrac = 0.94; p.warmAccessFrac = 0.058;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 512 * kB;
        p.coldSetBytes = 64 * mB;
        p.stridedFrac = 0.9; p.strideBytes = 8;
        p.takenRate = 0.88; p.branchEntropy = 0.03;
        add(p);
    }

    // ---- SPEC FP, memory-intensive ----------------------------------------
    {
        BenchmarkProfile p;
        p.name = "applu";
        p.suite = BenchSuite::Fp;
        p.category = BenchClass::Mem;
        p.loadFrac = 0.30; p.storeFrac = 0.10;
        p.branchFrac = 0.03; p.jumpFrac = 0.005;
        p.fpAluFrac = 0.24; p.fpMulFrac = 0.14; p.fpDivFrac = 0.005;
        p.shortDepFrac = 0.30;
        p.parallelChains = 6;
        p.hotAccessFrac = 0.45; p.warmAccessFrac = 0.35;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 1 * mB;
        p.coldSetBytes = 128 * mB;
        p.stridedFrac = 0.9; p.strideBytes = 64; // line-per-access streaming
        p.takenRate = 0.92; p.branchEntropy = 0.03;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "equake";
        p.suite = BenchSuite::Fp;
        p.category = BenchClass::Mem;
        p.loadFrac = 0.36; p.storeFrac = 0.08;
        p.branchFrac = 0.06; p.jumpFrac = 0.01;
        p.fpAluFrac = 0.18; p.fpMulFrac = 0.12; p.fpDivFrac = 0.002;
        p.shortDepFrac = 0.32;
        p.parallelChains = 4;
        p.hotAccessFrac = 0.55; p.warmAccessFrac = 0.30;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 1 * mB;
        p.coldSetBytes = 64 * mB;
        p.stridedFrac = 0.35; p.strideBytes = 8; // sparse matrix indirection
        p.takenRate = 0.80; p.branchEntropy = 0.10;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "lucas";
        p.suite = BenchSuite::Fp;
        p.category = BenchClass::Mem;
        p.loadFrac = 0.28; p.storeFrac = 0.12;
        p.branchFrac = 0.02; p.jumpFrac = 0.005;
        p.fpAluFrac = 0.26; p.fpMulFrac = 0.16;
        p.shortDepFrac = 0.25;
        p.parallelChains = 6;
        p.hotAccessFrac = 0.40; p.warmAccessFrac = 0.33;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 1 * mB;
        p.coldSetBytes = 128 * mB;
        p.stridedFrac = 0.95; p.strideBytes = 64;
        p.takenRate = 0.95; p.branchEntropy = 0.02;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "mgrid";
        p.suite = BenchSuite::Fp;
        p.category = BenchClass::Mem;
        p.loadFrac = 0.33; p.storeFrac = 0.06;
        p.branchFrac = 0.02; p.jumpFrac = 0.003;
        p.fpAluFrac = 0.28; p.fpMulFrac = 0.16;
        p.shortDepFrac = 0.25;
        p.parallelChains = 6;
        p.hotAccessFrac = 0.50; p.warmAccessFrac = 0.37;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 1 * mB;
        p.coldSetBytes = 64 * mB;
        p.stridedFrac = 0.92; p.strideBytes = 32;
        p.takenRate = 0.94; p.branchEntropy = 0.02;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "swim";
        p.suite = BenchSuite::Fp;
        p.category = BenchClass::Mem;
        p.loadFrac = 0.30; p.storeFrac = 0.09;
        p.branchFrac = 0.015; p.jumpFrac = 0.003;
        p.fpAluFrac = 0.27; p.fpMulFrac = 0.17;
        p.shortDepFrac = 0.22;
        p.parallelChains = 6;
        p.hotAccessFrac = 0.35; p.warmAccessFrac = 0.33;
        p.hotSetBytes = 16 * kB; p.warmSetBytes = 1 * mB;
        p.coldSetBytes = 192 * mB;
        p.stridedFrac = 0.96; p.strideBytes = 64;
        p.takenRate = 0.97; p.branchEntropy = 0.01;
        add(p);
    }

    return db;
}

} // namespace

const std::vector<BenchmarkProfile> &
allProfiles()
{
    static const std::vector<BenchmarkProfile> db = buildDatabase();
    return db;
}

const BenchmarkProfile &
findProfile(const std::string &name)
{
    for (const auto &p : allProfiles())
        if (p.name == name)
            return p;
    SMTAVF_FATAL("unknown benchmark profile: ", name);
}

} // namespace smtavf
