#include "workload/mixes.hh"

#include "base/logging.hh"

namespace smtavf
{

const char *
mixTypeName(MixType t)
{
    switch (t) {
      case MixType::Cpu: return "CPU";
      case MixType::Mix: return "MIX";
      case MixType::Mem: return "MEM";
      default: return "?";
    }
}

namespace
{

std::vector<WorkloadMix>
buildMixes()
{
    // Reconstructed from the paper's Table 2. The scan of the 4-context MIX
    // row is partially garbled; groups below keep its stated construction
    // rule (half the programs CPU-intensive, half memory-intensive).
    std::vector<WorkloadMix> mixes = {
        // ---- 2 contexts ---------------------------------------------------
        {"2ctx-cpu-A", 2, MixType::Cpu, 'A', {"bzip2", "eon"}},
        {"2ctx-cpu-B", 2, MixType::Cpu, 'B', {"facerec", "wupwise"}},
        {"2ctx-mix-A", 2, MixType::Mix, 'A', {"eon", "twolf"}},
        {"2ctx-mix-B", 2, MixType::Mix, 'B', {"wupwise", "equake"}},
        {"2ctx-mem-A", 2, MixType::Mem, 'A', {"mcf", "twolf"}},
        {"2ctx-mem-B", 2, MixType::Mem, 'B', {"equake", "vpr"}},

        // ---- 4 contexts ---------------------------------------------------
        {"4ctx-cpu-A", 4, MixType::Cpu, 'A',
         {"bzip2", "eon", "perlbmk", "mesa"}},
        {"4ctx-cpu-B", 4, MixType::Cpu, 'B',
         {"gcc", "perlbmk", "facerec", "wupwise"}},
        {"4ctx-mix-A", 4, MixType::Mix, 'A',
         {"gcc", "mcf", "perlbmk", "twolf"}},
        {"4ctx-mix-B", 4, MixType::Mix, 'B',
         {"mesa", "vpr", "perlbmk", "applu"}},
        {"4ctx-mem-A", 4, MixType::Mem, 'A',
         {"mcf", "equake", "twolf", "vpr"}},
        {"4ctx-mem-B", 4, MixType::Mem, 'B',
         {"galgel", "swim", "applu", "lucas"}},

        // ---- 8 contexts ---------------------------------------------------
        {"8ctx-cpu-A", 8, MixType::Cpu, 'A',
         {"gap", "bzip2", "facerec", "eon",
          "mesa", "perlbmk", "parser", "wupwise"}},
        {"8ctx-cpu-B", 8, MixType::Cpu, 'B',
         {"gap", "crafty", "gcc", "eon",
          "mesa", "perlbmk", "fma3d", "wupwise"}},
        {"8ctx-mix-A", 8, MixType::Mix, 'A',
         {"perlbmk", "mcf", "bzip2", "vpr",
          "mesa", "swim", "eon", "lucas"}},
        {"8ctx-mix-B", 8, MixType::Mix, 'B',
         {"crafty", "fma3d", "applu", "twolf",
          "equake", "mgrid", "wupwise", "perlbmk"}},
        // The paper forms only one 8-context MEM group.
        {"8ctx-mem-A", 8, MixType::Mem, 'A',
         {"mcf", "twolf", "swim", "lucas",
          "equake", "applu", "vpr", "mgrid"}},

        // ---- Figures 3-4 dedicated 4-context mixes -------------------------
        {"fig3-cpu", 4, MixType::Cpu, 'A',
         {"bzip2", "eon", "gcc", "perlbmk"}},
        {"fig3-mix", 4, MixType::Mix, 'A',
         {"gcc", "mcf", "vpr", "perlbmk"}},
        {"fig3-mem", 4, MixType::Mem, 'A',
         {"mcf", "equake", "vpr", "swim"}},
    };

    for (const auto &m : mixes) {
        if (m.benchmarks.size() != m.contexts)
            SMTAVF_FATAL("mix ", m.name, ": ", m.benchmarks.size(),
                         " benchmarks for ", m.contexts, " contexts");
        for (const auto &b : m.benchmarks)
            findProfile(b); // fatal if unknown
    }
    return mixes;
}

} // namespace

const std::vector<WorkloadMix> &
allMixes()
{
    static const std::vector<WorkloadMix> mixes = buildMixes();
    return mixes;
}

std::vector<WorkloadMix>
mixesWithContexts(unsigned contexts)
{
    std::vector<WorkloadMix> out;
    for (const auto &m : allMixes())
        if (m.contexts == contexts && m.name.rfind("fig3", 0) != 0)
            out.push_back(m);
    return out;
}

std::vector<WorkloadMix>
mixesOf(unsigned contexts, MixType type)
{
    std::vector<WorkloadMix> out;
    for (const auto &m : mixesWithContexts(contexts))
        if (m.type == type)
            out.push_back(m);
    return out;
}

const WorkloadMix &
findMix(const std::string &name)
{
    for (const auto &m : allMixes())
        if (m.name == name)
            return m;
    SMTAVF_FATAL("unknown workload mix: ", name);
}

const WorkloadMix &
fig3Mix(MixType type)
{
    switch (type) {
      case MixType::Cpu: return findMix("fig3-cpu");
      case MixType::Mix: return findMix("fig3-mix");
      case MixType::Mem: return findMix("fig3-mem");
      default: SMTAVF_PANIC("bad mix type");
    }
}

} // namespace smtavf
