/**
 * @file
 * Statistical program model substituting for SPEC CPU 2000 binaries.
 *
 * The paper runs SimPoint regions of SPEC CPU 2000; those binaries and
 * inputs are proprietary. What the paper's analysis actually depends on is
 * each thread's *behavioural envelope*: instruction mix, dependency
 * tightness (ILP), memory footprint and locality (cache-miss rates), and
 * branch predictability. A BenchmarkProfile captures exactly that envelope;
 * the StreamGenerator expands it into a reproducible dynamic instruction
 * stream with real register dataflow, addresses and branch outcomes, and
 * the *simulated caches and predictors* then produce miss and
 * misprediction behaviour organically.
 */

#ifndef SMTAVF_WORKLOAD_PROFILE_HH
#define SMTAVF_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace smtavf
{

/** The paper's CPU-intensive vs memory-intensive benchmark taxonomy. */
enum class BenchClass : std::uint8_t
{
    Cpu, ///< high ILP, caches contain the working set
    Mem  ///< dominated by DL1/L2 misses
};

/** SPEC suite of origin (affects the int/fp instruction mix). */
enum class BenchSuite : std::uint8_t { Int, Fp };

/**
 * Behavioural envelope of one benchmark. All *Frac fields are fractions of
 * the dynamic instruction stream; whatever probability mass the explicit
 * classes do not claim goes to plain integer ALU operations.
 */
struct BenchmarkProfile
{
    std::string name;
    BenchSuite suite = BenchSuite::Int;
    BenchClass category = BenchClass::Cpu;

    // ---- dynamic instruction mix ----------------------------------------
    double loadFrac = 0.25;
    double storeFrac = 0.10;
    double branchFrac = 0.12;   ///< conditional branches
    double jumpFrac = 0.02;     ///< unconditional jumps/calls/returns
    double fpAluFrac = 0.0;
    double fpMulFrac = 0.0;
    double fpDivFrac = 0.0;
    double intMulFrac = 0.01;
    double intDivFrac = 0.002;
    double nopFrac = 0.02;

    // ---- dataflow shape ---------------------------------------------------
    /**
     * Probability that a source register names one of the two most recent
     * definitions (tight dependency chain); the remainder draws uniformly
     * from a recent-definition window. Higher values mean longer chains and
     * lower exploitable ILP.
     */
    double shortDepFrac = 0.35;

    /**
     * Independent dependence chains interleaved in the stream (parallel
     * loop iterations in flight). A miss stalls only its own chain;
     * higher values mean more ILP/MLP behind long-latency misses.
     */
    std::uint32_t parallelChains = 4;

    /** Probability a source crosses into another chain (loop-carried). */
    double crossChainFrac = 0.08;

    // ---- memory locality ---------------------------------------------------
    /** P(access falls in the DL1-resident hot set). */
    double hotAccessFrac = 0.90;
    /** P(access falls in the L2-resident warm set). */
    double warmAccessFrac = 0.08;
    /** Remainder of accesses go to the DRAM-sized cold region. */

    std::uint64_t hotSetBytes = 32 * 1024;
    std::uint64_t warmSetBytes = 1 * 1024 * 1024;
    std::uint64_t coldSetBytes = 64ull * 1024 * 1024;

    /** P(access continues a sequential stream) vs random within region. */
    double stridedFrac = 0.5;
    /** Stream advance in bytes. */
    std::uint32_t strideBytes = 8;

    // ---- control behaviour ---------------------------------------------------
    /** Long-run taken rate of conditional branches. */
    double takenRate = 0.6;
    /**
     * 0 = all branches follow short deterministic patterns (gshare learns
     * them); 1 = outcomes are independent coin flips at takenRate.
     */
    double branchEntropy = 0.2;
    /** Number of distinct static conditional-branch sites. */
    std::uint32_t staticBranches = 64;

    /** Validate invariants; fatal on a malformed profile. */
    void validate() const;

    /** Total probability of explicit non-IntAlu classes. */
    double explicitMixSum() const;
};

/** Look up a benchmark profile by SPEC name ("mcf", "bzip2", ...). */
const BenchmarkProfile &findProfile(const std::string &name);

/** All registered profiles in registration order. */
const std::vector<BenchmarkProfile> &allProfiles();

} // namespace smtavf

#endif // SMTAVF_WORKLOAD_PROFILE_HH
