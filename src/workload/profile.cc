#include "workload/profile.hh"

#include "base/logging.hh"

namespace smtavf
{

double
BenchmarkProfile::explicitMixSum() const
{
    return loadFrac + storeFrac + branchFrac + jumpFrac + fpAluFrac +
           fpMulFrac + fpDivFrac + intMulFrac + intDivFrac + nopFrac;
}

void
BenchmarkProfile::validate() const
{
    if (name.empty())
        SMTAVF_FATAL("profile without a name");
    double sum = explicitMixSum();
    if (sum > 1.0 + 1e-9)
        SMTAVF_FATAL("profile ", name, ": instruction mix sums to ", sum,
                     " > 1");
    auto frac_ok = [](double f) { return f >= 0.0 && f <= 1.0; };
    if (!frac_ok(loadFrac) || !frac_ok(storeFrac) || !frac_ok(branchFrac) ||
        !frac_ok(shortDepFrac) || !frac_ok(hotAccessFrac) ||
        !frac_ok(warmAccessFrac) || !frac_ok(stridedFrac) ||
        !frac_ok(takenRate) || !frac_ok(branchEntropy))
        SMTAVF_FATAL("profile ", name, ": fraction out of [0,1]");
    if (hotAccessFrac + warmAccessFrac > 1.0 + 1e-9)
        SMTAVF_FATAL("profile ", name, ": hot+warm access fractions > 1");
    if (hotSetBytes == 0 || warmSetBytes == 0 || coldSetBytes == 0)
        SMTAVF_FATAL("profile ", name, ": zero-sized region");
    if (staticBranches == 0)
        SMTAVF_FATAL("profile ", name, ": needs at least 1 static branch");
    if (parallelChains == 0 || parallelChains > 8)
        SMTAVF_FATAL("profile ", name, ": parallelChains out of [1,8]");
    if (crossChainFrac < 0.0 || crossChainFrac > 1.0)
        SMTAVF_FATAL("profile ", name, ": crossChainFrac out of [0,1]");
}

} // namespace smtavf
