/**
 * @file
 * The studied SMT workloads (the paper's Table 2): 2/4/8-context mixes of
 * CPU-intensive, memory-intensive and mixed behaviour, two groups (A, B)
 * per type except the 8-context MEM workload, which the paper builds as a
 * single group for lack of enough diverse memory-bound programs.
 */

#ifndef SMTAVF_WORKLOAD_MIXES_HH
#define SMTAVF_WORKLOAD_MIXES_HH

#include <string>
#include <vector>

#include "workload/profile.hh"

namespace smtavf
{

/** Workload behaviour type per the paper's taxonomy. */
enum class MixType { Cpu, Mix, Mem };

/** Display name for a mix type ("CPU", "MIX", "MEM"). */
const char *mixTypeName(MixType t);

/** One SMT workload: a named list of per-thread benchmarks. */
struct WorkloadMix
{
    std::string name;     ///< e.g. "4ctx-mem-A"
    unsigned contexts;    ///< number of hardware threads
    MixType type;
    char group;           ///< 'A' or 'B'
    std::vector<std::string> benchmarks; ///< one profile name per thread
};

/** All Table-2 mixes. */
const std::vector<WorkloadMix> &allMixes();

/** Mixes filtered by context count (2, 4 or 8). */
std::vector<WorkloadMix> mixesWithContexts(unsigned contexts);

/** Mixes filtered by context count and type. */
std::vector<WorkloadMix> mixesOf(unsigned contexts, MixType type);

/** Look up a mix by name; fatal if absent. */
const WorkloadMix &findMix(const std::string &name);

/**
 * The three 4-context mixes of the paper's Figures 3-4 (SMT vs
 * single-thread study): CPU = {bzip2, eon, gcc, perlbmk},
 * MIX = {gcc, mcf, vpr, perlbmk}, MEM = {mcf, equake, vpr, swim}.
 */
const WorkloadMix &fig3Mix(MixType type);

} // namespace smtavf

#endif // SMTAVF_WORKLOAD_MIXES_HH
