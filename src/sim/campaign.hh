/**
 * @file
 * Parallel experiment campaigns with deterministic replay.
 *
 * Every figure harness and sweep runs mutually independent simulations —
 * one (config, mix, policy, budget, seed) tuple per run — so a campaign
 * can fan them out over a fixed worker pool for a pure wall-clock win.
 * Determinism is preserved by construction: each run owns an isolated,
 * seed-derived RNG stream (the Simulator already seeds its generators
 * from MachineConfig::seed, and splitSeed() derives per-run seeds from a
 * campaign master), results land in submission order, and no simulation
 * shares mutable state with another. A campaign therefore produces
 * bit-identical SimResults whether it runs on 1 worker, N workers, or as
 * a plain serial runMix() loop — the property tests/test_campaign.cc
 * proves differentially.
 */

#ifndef SMTAVF_SIM_CAMPAIGN_HH
#define SMTAVF_SIM_CAMPAIGN_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "avf/injection.hh"
#include "ckpt/checkpoint.hh"
#include "core/machine_config.hh"
#include "metrics/metrics.hh"
#include "sim/experiment.hh"
#include "sim/isolate.hh"
#include "workload/mixes.hh"

namespace smtavf
{

/** One unit of a campaign: everything runMix() needs, plus a label. */
struct Experiment
{
    std::string label;        ///< free-form; shown in progress lines
    MachineConfig cfg;        ///< carries the policy and the seed
    WorkloadMix mix;
    std::uint64_t budget = 0; ///< 0 = defaultBudget(mix.contexts)
    /**
     * Warm-up instructions simulated (and drained) before measurement
     * begins; stats and AVF ledger tallies cover only the post-warmup
     * window, and @ref budget counts post-warmup instructions. Folded
     * into the experiment fingerprint (together with the warmup
     * checkpoint's fingerprint) so journal resume invalidates when the
     * warmup changes. 0 = no warmup (the historical behaviour).
     */
    std::uint64_t warmup = 0;
};

/** Table-1 descriptor for (mix, policy), labelled "mix/policy". */
Experiment makeExperiment(const WorkloadMix &mix, FetchPolicyKind policy,
                          std::uint64_t budget = 0);

/** Execute one descriptor (exactly what a serial loop would run). */
SimResult runExperiment(const Experiment &e);

/**
 * Give experiment i the seed splitSeed(master, i). Runs become
 * independent draws from decorrelated streams while the whole campaign
 * stays replayable from the single master seed.
 */
void deriveSeeds(std::vector<Experiment> &exps, std::uint64_t master);

/**
 * Deterministic shard partition: keep every experiment whose index in
 * @p exps satisfies i % nshards == shard (round-robin striping, so each
 * shard gets a balanced slice of any systematic mix/policy ordering).
 * Apply AFTER deriveSeeds: seeds derive from the position in the full
 * list, so shard runs stay bit-identical to the same runs unsharded —
 * which is what makes shard journals mergeable. Fatal when nshards == 0
 * or shard >= nshards.
 */
std::vector<Experiment> shardExperiments(const std::vector<Experiment> &exps,
                                         unsigned shard, unsigned nshards);

struct RunOutcome;

/** Per-run completion notice delivered to the progress callback. */
struct CampaignProgress
{
    std::size_t index;     ///< submission-order index of the run
    std::size_t total;     ///< campaign size
    std::size_t completed; ///< runs finished so far, this one included
    double seconds;        ///< wall-clock time of this run
    const Experiment *experiment;
    const SimResult *result;   ///< null when the run did not produce one
    /** Full outcome; only set by runTolerant() campaigns. */
    const RunOutcome *outcome = nullptr;
};

/**
 * Fixed-size std::thread worker pool executing experiment campaigns.
 *
 * Workers are spawned once at construction and reused across run() and
 * forEach() calls; the pool size defaults to SMTAVF_JOBS or, when that is
 * unset, hardware_concurrency(). Results are collected in submission
 * order and are bit-identical for every pool size because each run's
 * randomness comes only from its own descriptor.
 */
class CampaignRunner
{
  public:
    using ProgressFn = std::function<void(const CampaignProgress &)>;

    /** @param jobs worker count; 0 = SMTAVF_JOBS or hardware default. */
    explicit CampaignRunner(unsigned jobs = 0);
    ~CampaignRunner();

    CampaignRunner(const CampaignRunner &) = delete;
    CampaignRunner &operator=(const CampaignRunner &) = delete;

    /** Resolve a requested job count against SMTAVF_JOBS / hardware. */
    static unsigned defaultJobs(unsigned requested = 0);

    /** Worker-pool size. */
    unsigned jobs() const { return jobs_; }

    /**
     * Run a campaign; results in submission order, bit-identical to a
     * serial runExperiment() loop over the same descriptors. The
     * optional progress callback fires once per finished run (from
     * worker threads, serialized by the pool).
     */
    std::vector<SimResult> run(const std::vector<Experiment> &exps,
                               ProgressFn progress = nullptr);

    /**
     * Generic deterministic fan-out: invoke fn(0), ..., fn(n-1) across
     * the pool, in any order and concurrently. fn must touch only
     * per-index state. An exception thrown by fn is re-thrown here
     * (first one wins) after the batch drains.
     */
    void forEach(std::size_t n, const std::function<void(std::size_t)> &fn);

  private:
    struct Batch;

    void workerLoop();

    unsigned jobs_;
    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable work_;
    std::condition_variable done_;
    Batch *batch_ = nullptr; ///< guarded by mutex_
    bool stop_ = false;      ///< guarded by mutex_
};

/**
 * Parallel drop-in for runMixReplicated(): replica i simulates with seed
 * cfg.seed + i, exactly as the serial helper, so the returned runs are
 * bit-identical to it.
 */
std::vector<SimResult> runMixReplicated(CampaignRunner &pool,
                                        const MachineConfig &cfg,
                                        const WorkloadMix &mix,
                                        unsigned replicas,
                                        std::uint64_t budget = 0);

/**
 * Parallel drop-in for the Figure 3/4 single-thread baseline loop: one
 * runSingleThreadBaseline() replay per context of a finished SMT run,
 * each replaying exactly the instruction count that context committed.
 * Results are indexed by ThreadId.
 */
std::vector<SimResult> runSingleThreadBaselines(CampaignRunner &pool,
                                                const MachineConfig &smt_cfg,
                                                const WorkloadMix &mix,
                                                const SimResult &smt);

/**
 * Deterministic parallel fault-injection campaign: trial t draws its
 * origin from an Rng seeded with splitSeed(seed, t), so the aggregate
 * verdict counts are identical for every worker count and schedule.
 * (The serial InjectionCampaign::run() draws all origins from one
 * sequential stream and therefore samples a different — equally valid —
 * set of origins.)
 */
InjectionResult runInjection(CampaignRunner &pool,
                             const InjectionCampaign &campaign,
                             std::uint64_t trials, std::uint64_t seed);

/**
 * How one run of a fault-tolerant campaign ended.
 *
 *  - Ok: produced a SimResult (possibly replayed from the journal).
 *  - Failed: threw on every attempt with *different* messages — likely
 *    environmental; the error text of the last attempt is kept.
 *  - TimedOut: livelocked (deterministic — retrying the same seed would
 *    spin through the same window again) or never started because the
 *    campaign was cancelled or past its soft timeout.
 *  - Quarantined: failed twice in a row with the *identical* message —
 *    a deterministic bug for this exact (config, mix, seed); retrying is
 *    futile and the run is set aside for offline replay.
 */
enum class RunStatus { Ok, Failed, TimedOut, Quarantined };

/** Short lower-case name ("ok", "failed", ...). */
const char *runStatusName(RunStatus s);

/** One run's result or post-mortem; always one per submitted experiment. */
struct RunOutcome
{
    RunStatus status = RunStatus::Ok;
    std::string label;      ///< Experiment::label of the run
    std::uint64_t seed = 0; ///< exact seed, for offline replay
    SimResult result;       ///< valid only when status == Ok
    std::string error;      ///< last failure message (empty when Ok)
    unsigned attempts = 0;  ///< simulations actually started (0: skipped)
    bool fromJournal = false; ///< satisfied from the resume journal
    /**
     * Crash taxonomy of the *last* attempt, process-isolation campaigns
     * only (sim/isolate.hh); None for thread-mode runs and for failures
     * that never killed the child.
     */
    CrashKind crash = CrashKind::None;
};

/** Knobs of a fault-tolerant campaign (all defaults = plain campaign). */
struct CampaignOptions
{
    /** Extra attempts after a non-deterministic-looking failure. */
    unsigned retries = 1;
    /** Stop dispatching new runs after this much wall clock (0 = never). */
    double softTimeoutSeconds = 0.0;
    /** Journal completed runs here ("" = no journal). */
    std::string journalPath;
    /** Replay journaled results instead of re-running them. */
    bool resume = false;
    /** Stop dispatching when set (the CLI's SIGINT flag). */
    const std::atomic<bool> *cancel = nullptr;
    /**
     * Where each run executes. Thread (default) runs in-process on the
     * pool; Process forks a sandboxed child per run (sim/isolate.hh) so
     * crashes, runaway allocations and wedged runs are contained and
     * classified instead of taking the campaign down. Healthy results are
     * bit-identical across modes (hexfloat wire format).
     */
    IsolateMode isolate = IsolateMode::Thread;
    /**
     * Reuse worker-local Simulators across runs whose timing shape
     * matches (Simulator::canResetTo): instead of constructing and
     * destroying one Simulator per run, each worker resets one in place
     * — allocation-free — and pays construction once. Applies to
     * warmup-free runs in thread mode and inside batched children
     * (@ref runsPerChild); results are bit-identical either way
     * (reset() ≡ fresh construction, tests/test_campaign.cc proves it
     * differentially). A run that fails discards its worker's instance,
     * so no state crosses from a broken run into a healthy one.
     */
    bool reuseWorkers = true;
    /**
     * Process mode: dispatch this many consecutive runs per forked
     * child over the framed `run v3` pipe protocol, amortizing the
     * fork + construction cost while keeping the sandbox. Each run's
     * result frames out as it completes, so runs finished before a
     * crash survive it; a death is attributed to the in-flight run and
     * only that run plus the unstarted remainder re-dispatch. The
     * hard-timeout and CPU budgets scale with the batch size. 1 (the
     * default) is the historical child-per-run behaviour; values > 1
     * require process isolation.
     */
    unsigned runsPerChild = 1;
    /**
     * Process mode: SIGKILL a child past this wall-clock deadline — a
     * *hard* timeout that needs no cooperation from the run. 0 = none.
     */
    double hardTimeoutSeconds = 0.0;
    /** Process mode: per-child RLIMIT_CPU seconds (0 = inherit). */
    std::uint64_t childCpuSeconds = 0;
    /** Process mode: per-child RLIMIT_AS bytes (0 = inherit). */
    std::uint64_t childMemoryBytes = 0;
    /**
     * Base of the exponential retry backoff: attempt k reruns after
     * retryBackoffSeconds(k-1, run seed, base) — deterministic jitter per
     * run, so replays behave identically. 0 (default) retries at once.
     */
    double backoffSeconds = 0.0;
    /**
     * Thread mode: forward @ref cancel into each run's MachineConfig so
     * Simulator::run() polls it every this many cycles and unwinds with
     * CancelledError mid-run. 0 (default) keeps the poll off; excluded
     * from experiment fingerprints either way.
     */
    Cycle cancelCheckCycles = 0;
    /**
     * Test seam: replaces runExperiment(). Receives the experiment and
     * its submission index; whatever it throws is handled exactly like a
     * real simulation failure. In process mode it executes inside the
     * forked child — which makes it the chaos-injection hook: a runFn
     * that segfaults exercises the real kill/reap/classify path.
     */
    std::function<SimResult(const Experiment &, std::size_t)> runFn;
    /**
     * Shared-warmup checkpointing: when true, experiments with a nonzero
     * warmup are grouped by their warmup-checkpoint fingerprint
     * (checkpointFingerprint(), sim/journal.hh — workload + machine
     * config + seed, protection excluded), the warmup is simulated once
     * per group and captured as a checkpoint, and every run in the group
     * restores from it instead of re-simulating the warmup. Thread mode
     * restores from a shared in-memory buffer; process mode writes each
     * group checkpoint to a file under @ref checkpointDir and the forked
     * child restores from the file. Results are bit-identical to the
     * unshared path by the drain-boundary determinism argument
     * (docs/CHECKPOINT.md); only the simulated-instruction count drops.
     * Ignored when @ref runFn is set (the seam replaces execution).
     */
    bool sharedWarmup = false;
    /**
     * Process mode with sharedWarmup: directory for the per-group
     * checkpoint files ("" = the system temp directory). Files are
     * removed when the campaign completes.
     */
    std::string checkpointDir;
    /**
     * Optional pre-captured warmup checkpoint: any group whose
     * fingerprint matches this checkpoint's adopts it instead of
     * simulating its own warmup. This is how the protection explorer
     * shares one warmup across *every* generation batch of a beam
     * search — runTolerant() alone would capture once per call. The
     * pointee must outlive the campaign. Only consulted when
     * @ref sharedWarmup is set.
     */
    const Checkpoint *warmupCheckpoint = nullptr;
};

/** Everything a fault-tolerant campaign reports back. */
struct CampaignReport
{
    std::vector<RunOutcome> outcomes; ///< submission order, one per run

    /** Runs with the given status. */
    std::size_t count(RunStatus s) const;

    /** True when every run produced a result. */
    bool allOk() const { return count(RunStatus::Ok) == outcomes.size(); }

    /** Collect the Ok results in submission order (partial on failures). */
    std::vector<const SimResult *> results() const;

    /** Human-readable summary of every non-Ok run ("" when allOk()). */
    std::string failureReport() const;
};

/**
 * Machine-readable campaign summary: a CSV with one row per submitted
 * experiment — including failed, timed-out and quarantined runs, so a
 * sweep is auditable end-to-end. Every row has the same arity; the
 * numeric cells of non-Ok runs are empty and the trailing `error` cell
 * carries the first line of the failure message (commas replaced so the
 * CSV stays parseable). Columns:
 *
 *   label,seed,status,attempts,ipc,cycles,instructions,
 *   <one raw-AVF column per AvfReport::figureStructs()>,
 *   <matching residual-AVF columns>,error
 */
std::string campaignCsv(const std::vector<Experiment> &exps,
                        const CampaignReport &report);

/**
 * Run a campaign that survives failing runs. Each run executes behind an
 * exception boundary (fatal/panic are redirected to exceptions for the
 * campaign's duration); a failure is retried, quarantined or timed out
 * per RunStatus, and the campaign always completes with one RunOutcome
 * per experiment. Ok results are bit-identical to a plain run() of the
 * same descriptors — the tolerant machinery never perturbs a healthy
 * simulation — and journal replay preserves that equality exactly
 * (tests/test_robustness.cc proves both differentially).
 */
CampaignReport runTolerant(CampaignRunner &pool,
                           const std::vector<Experiment> &exps,
                           const CampaignOptions &opt = {},
                           CampaignRunner::ProgressFn progress = nullptr);

} // namespace smtavf

#endif // SMTAVF_SIM_CAMPAIGN_HH
