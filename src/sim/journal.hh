/**
 * @file
 * On-disk campaign run journal: append-only persistence of completed
 * SimResults so an interrupted campaign loses nothing it already paid
 * for.
 *
 * Records are keyed by a stable *experiment fingerprint* — an FNV-1a hash
 * of everything that determines a run's result (workload, policy, seed,
 * resolved instruction budget, and every result-affecting MachineConfig
 * field). Two experiments with the same fingerprint are guaranteed the
 * same SimResult by the determinism contract (sim/campaign.hh), so a
 * resumed campaign may substitute the journaled record for a re-run and
 * stay bit-identical to an uninterrupted one — the property
 * tests/test_robustness.cc proves differentially.
 *
 * Format (docs/ROBUSTNESS.md): one text line per record,
 *
 *   run v3 crc=<hex8> fp=<hex16> mix=<name> policy=<name> cycles=<u64>
 *   committed=<u64> ipc=<hexfloat> threads=<bench>,<u64>,<hexfloat>;...
 *   avf=<avf>:<occ>:<residual>:<t0>,<t1>,...;...
 *   stats=<name>=<hexfloat>;...
 *
 * (single line, single spaces). v3 added the CRC32C integrity field: the
 * checksum covers every byte after the "crc=XXXXXXXX " token, so a
 * bit-flipped hexfloat — which would otherwise parse fine and silently
 * corrupt a resumed campaign — is detected and the record rejected.
 * Pre-CRC `run v2` records (no crc token) still load; v1 lines no longer
 * parse, so pre-protection journals simply re-run on resume. Doubles are
 * printed as C hexfloats ("%a"), which round-trip exactly — the journal
 * must not perturb a single bit of a result.
 *
 * Appends are crash-safe: each record is assembled fully and written with
 * a single O_APPEND write(2), so a dying writer (kill -9, OOM) either
 * lands the whole line or none of it; only a torn filesystem (power
 * loss) can leave a partial record, and the CRC catches the remains.
 * Lines that fail to parse or checksum are skipped on load; '#' lines
 * are comments. Only successful runs are journaled: failures re-run on
 * resume. fsckJournal() audits a file offline (the CLI's `journal fsck`)
 * and can truncate a torn/corrupt tail, recovering everything before it.
 */

#ifndef SMTAVF_SIM_JOURNAL_HH
#define SMTAVF_SIM_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/metrics.hh"
#include "sim/campaign.hh"

namespace smtavf
{

/**
 * CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) of @p size raw
 * bytes — the per-record integrity checksum of `run v3` journal lines.
 * crc32c("123456789") == 0xe3069283 (the standard check value).
 */
std::uint32_t crc32c(const char *data, std::size_t size);

/** Convenience overload over a whole string. */
std::uint32_t crc32c(const std::string &text);

/**
 * Stable fingerprint of everything that determines an Experiment's
 * result. Labels are cosmetic and excluded; the unresolved budget (0 =
 * default) is resolved first so a journal survives flag spelling changes.
 * A nonzero warmup folds in both the warmup length and the warmup
 * checkpoint's fingerprint, so journal resume/memoization invalidates
 * whenever the warmup a result was measured behind changes.
 */
std::uint64_t experimentFingerprint(const Experiment &e);

/**
 * Semantic fingerprint of a checkpoint: everything that determines the
 * machine state a (config, mix) run reaches at a given point — the same
 * result-affecting fields as experimentFingerprint minus the budget
 * (a checkpoint is a prefix of *any* budget). @p warmup_instrs is the
 * committed-instruction count of the capture boundary. When
 * @p warmup_boundary is set, the protection assignment is excluded too:
 * protection is an accounting overlay that never perturbs timing, and a
 * warmup checkpoint (captured with ledger tallies reset) is valid for
 * every candidate scheme — which is exactly what lets the explorer share
 * one warmup across its whole search. Exception: under PRAT the throttle
 * reads the assignment (protection becomes timing-affecting), so PRAT
 * warmup checkpoints stay protection-specific. Simulator::restore()
 * verifies this value against its own configuration and rejects
 * mismatches.
 */
std::uint64_t checkpointFingerprint(const MachineConfig &cfg,
                                    const WorkloadMix &mix,
                                    std::uint64_t warmup_instrs,
                                    bool warmup_boundary);

/** Serialize one `run v3` journal record (no trailing newline). */
std::string serializeRun(std::uint64_t fingerprint, const SimResult &r);

/**
 * Serialize one `run v3` record into @p out (cleared first, no trailing
 * newline). This is the allocation-lean form RunJournal::append() uses:
 * the record is built directly in the caller's buffer — the CRC header
 * is written as a fixed-width placeholder and patched in place once the
 * payload is complete — so a journal that appends thousands of records
 * reuses one buffer's capacity instead of assembling each line from
 * temporary strings.
 */
void serializeRunTo(std::string &out, std::uint64_t fingerprint,
                    const SimResult &r);

/**
 * Parse one journal line; returns false (outputs untouched or partially
 * written) on malformed input or a v3 CRC mismatch. Accepts `run v3`
 * (CRC-checked) and legacy `run v2` (no checksum). Comments and blank
 * lines are "malformed" by design — callers skip false lines.
 */
bool parseRun(const std::string &line, std::uint64_t &fingerprint,
              SimResult &r);

/**
 * Append-only, thread-safe journal writer. Every record is flushed with
 * one O_APPEND write(2) — atomic with respect to concurrent writers and
 * to the writer's own death, so a killed campaign never leaves a torn
 * record behind (docs/ROBUSTNESS.md).
 */
class RunJournal
{
  public:
    /** Opens @p path for append; fatal when the file cannot be opened. */
    explicit RunJournal(std::string path);
    ~RunJournal();

    RunJournal(const RunJournal &) = delete;
    RunJournal &operator=(const RunJournal &) = delete;

    /** Persist one completed run; safe from any campaign worker. */
    void append(std::uint64_t fingerprint, const SimResult &r);

    /**
     * Append a '#' comment line (the explorer's search trace rides along
     * this way). Loaders skip comments, so annotations never affect
     * replay; embedded newlines would corrupt the format and are fatal.
     */
    void comment(const std::string &text);

    const std::string &path() const { return path_; }

  private:
    /** Copy @p line + '\n' into scratch_ and write it; caller locks. */
    void writeLine(const std::string &line);
    /** The single O_APPEND write(2), EINTR-restarted to completion. */
    void writeBytes(const char *data, std::size_t size);

    std::string path_;
    std::mutex mutex_;
    /**
     * Reused line-assembly buffer, guarded by mutex_. High-rate
     * campaigns (reused workers, short runs) append often enough that
     * per-record string assembly shows up; serializing into retained
     * capacity makes the steady-state append cost one write(2).
     */
    std::string scratch_;
    int fd_ = -1;
};

/**
 * Load every well-formed record of @p path into a fingerprint-keyed map;
 * returns an empty map when the file does not exist (a fresh campaign).
 * Corrupt records — torn tails, bit flips caught by the v3 CRC, hand
 * edits — are skipped, so a resume recovers everything before (and
 * after) the damage and re-simulates only the lost runs. @p skipped,
 * when non-null, receives the count of such lines.
 */
std::unordered_map<std::uint64_t, SimResult>
loadJournal(const std::string &path, std::size_t *skipped = nullptr);

/** One damaged line found by fsckJournal(). */
struct JournalIssue
{
    std::size_t line = 0;      ///< 1-based line number
    std::uint64_t offset = 0;  ///< byte offset of the line's first byte
    std::string reason;        ///< "bad CRC", "torn record", ...
};

/** Integrity audit of one journal file (the CLI's `journal fsck`). */
struct JournalFsck
{
    std::size_t records = 0;   ///< well-formed run records
    std::size_t comments = 0;  ///< '#' comment / blank lines
    std::vector<JournalIssue> issues; ///< every damaged line, in order

    /**
     * True when every issue sits in a trailing suffix with no valid
     * record after it — the signature of a crash mid-write (or of
     * trailing garbage), repairable by truncating at truncateOffset.
     */
    bool tailOnly = false;
    std::uint64_t truncateOffset = 0; ///< valid when tailOnly

    bool clean() const { return issues.empty(); }
};

/**
 * Audit @p path line by line: verify structure and (for v3 records) the
 * CRC of every non-comment line, reporting each damaged line with its
 * byte offset. Legacy `run v2` records pass without a checksum. Fatal
 * when the file cannot be read.
 */
JournalFsck fsckJournal(const std::string &path);

/**
 * Truncate @p path at @p fsck.truncateOffset, discarding a torn/corrupt
 * tail while keeping every record before it — the `journal fsck
 * --repair` action. Returns false (file untouched) unless the damage is
 * confined to the tail (fsck.tailOnly); mid-file corruption cannot be
 * repaired by truncation and must be handled by re-running the affected
 * experiments (resume skips the bad records anyway).
 */
bool repairJournalTail(const std::string &path, const JournalFsck &fsck);

/**
 * Merge shard journals (see shardExperiments) into one file. Records are
 * deduplicated by fingerprint — the determinism contract guarantees
 * duplicate fingerprints carry identical results, so the first occurrence
 * wins — and written sorted by fingerprint, making the merged file
 * byte-deterministic regardless of shard completion order. Raw record
 * lines are preserved (hexfloats round-trip exactly), so merging v2 and
 * v3 inputs yields a journal whose records keep their original format.
 *
 * Every input line is CRC-verified first: a corrupt or torn record
 * anywhere in any input aborts the merge — nothing is written and each
 * damaged line is reported in @p corruption (when non-null) as
 * "file:line N @ byte B: reason"; with @p corruption null, corruption is
 * fatal. Run `journal fsck --repair` on the damaged input first. Returns
 * the number of unique records written (0 on refusal); fatal when an
 * input does not exist or the output cannot be written.
 */
std::size_t mergeJournals(const std::vector<std::string> &inputs,
                          const std::string &out_path,
                          std::vector<std::string> *corruption = nullptr);

} // namespace smtavf

#endif // SMTAVF_SIM_JOURNAL_HH
