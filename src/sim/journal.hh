/**
 * @file
 * On-disk campaign run journal: append-only persistence of completed
 * SimResults so an interrupted campaign loses nothing it already paid
 * for.
 *
 * Records are keyed by a stable *experiment fingerprint* — an FNV-1a hash
 * of everything that determines a run's result (workload, policy, seed,
 * resolved instruction budget, and every result-affecting MachineConfig
 * field). Two experiments with the same fingerprint are guaranteed the
 * same SimResult by the determinism contract (sim/campaign.hh), so a
 * resumed campaign may substitute the journaled record for a re-run and
 * stay bit-identical to an uninterrupted one — the property
 * tests/test_robustness.cc proves differentially.
 *
 * Format (docs/ROBUSTNESS.md): one text line per record,
 *
 *   run v2 fp=<hex16> mix=<name> policy=<name> cycles=<u64>
 *   committed=<u64> ipc=<hexfloat> threads=<bench>,<u64>,<hexfloat>;...
 *   avf=<avf>:<occ>:<residual>:<t0>,<t1>,...;...
 *   stats=<name>=<hexfloat>;...
 *
 * (single line, single spaces). v2 added the per-structure residual AVF
 * column and folded the protection assignment into the fingerprint; v1
 * lines no longer parse, so pre-protection journals simply re-run on
 * resume. Doubles are printed as C hexfloats
 * ("%a"), which round-trip exactly — the journal must not perturb a
 * single bit of a result. Lines that fail to parse (a crash can leave a
 * torn final line) are skipped on load; '#' lines are comments. Only
 * successful runs are journaled: failures re-run on resume.
 */

#ifndef SMTAVF_SIM_JOURNAL_HH
#define SMTAVF_SIM_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/metrics.hh"
#include "sim/campaign.hh"

namespace smtavf
{

/**
 * Stable fingerprint of everything that determines an Experiment's
 * result. Labels are cosmetic and excluded; the unresolved budget (0 =
 * default) is resolved first so a journal survives flag spelling changes.
 */
std::uint64_t experimentFingerprint(const Experiment &e);

/** Serialize one journal record (no trailing newline). */
std::string serializeRun(std::uint64_t fingerprint, const SimResult &r);

/**
 * Parse one journal line; returns false (outputs untouched or partially
 * written) on malformed input. Comments and blank lines are "malformed"
 * by design — callers skip false lines.
 */
bool parseRun(const std::string &line, std::uint64_t &fingerprint,
              SimResult &r);

/** Append-only, thread-safe journal writer (one flushed line per run). */
class RunJournal
{
  public:
    /** Opens @p path for append; fatal when the file cannot be opened. */
    explicit RunJournal(std::string path);
    ~RunJournal();

    RunJournal(const RunJournal &) = delete;
    RunJournal &operator=(const RunJournal &) = delete;

    /** Persist one completed run; safe from any campaign worker. */
    void append(std::uint64_t fingerprint, const SimResult &r);

    /**
     * Append a '#' comment line (the explorer's search trace rides along
     * this way). Loaders skip comments, so annotations never affect
     * replay; embedded newlines would corrupt the format and are fatal.
     */
    void comment(const std::string &text);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::mutex mutex_;
    std::FILE *file_ = nullptr;
};

/**
 * Load every well-formed record of @p path into a fingerprint-keyed map;
 * returns an empty map when the file does not exist (a fresh campaign).
 * @p skipped, when non-null, receives the count of malformed lines.
 */
std::unordered_map<std::uint64_t, SimResult>
loadJournal(const std::string &path, std::size_t *skipped = nullptr);

/**
 * Merge shard journals (see shardExperiments) into one file. Records are
 * deduplicated by fingerprint — the determinism contract guarantees
 * duplicate fingerprints carry identical results, so the first occurrence
 * wins — and written sorted by fingerprint, making the merged file
 * byte-deterministic regardless of shard completion order. Malformed
 * lines are skipped like loadJournal does. Returns the number of unique
 * records written; fatal when an input does not exist or the output
 * cannot be written.
 */
std::size_t mergeJournals(const std::vector<std::string> &inputs,
                          const std::string &out_path);

} // namespace smtavf

#endif // SMTAVF_SIM_JOURNAL_HH
