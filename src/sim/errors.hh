/**
 * @file
 * Structured, catchable simulation errors — the failure taxonomy of the
 * fault-tolerant campaign layer (docs/ROBUSTNESS.md).
 *
 * SMTAVF_PANIC/SMTAVF_FATAL terminate the process (or throw the opaque
 * SimError under test harnesses); these exceptions instead carry enough
 * machine-readable context for a campaign to classify the failure, decide
 * whether to retry, and render a useful failure report:
 *
 *  - LivelockError: the simulator's commit watchdog tripped — no context
 *    committed anything for MachineConfig::livelockCycles cycles. Carries
 *    the cycle and the per-thread fetch/issue/commit counters so a report
 *    can show *which* thread wedged and at which pipeline stage.
 *  - InvariantError: the end-of-cycle invariant checker (sim/invariants.hh)
 *    found corrupted machine state. Carries the violated invariant's name
 *    and a state dump. A run that trips this must not contribute AVF
 *    numbers; the campaign layer fails it fast and quarantines it when the
 *    corruption reproduces.
 *  - CancelledError: the simulation observed the campaign cancel flag
 *    mid-run (MachineConfig::cancelCheckCycles) and unwound cleanly. The
 *    campaign layer classifies it timed-out without retry — the run was
 *    healthy, the user just asked the campaign to stop.
 *
 * All derive from SimulationError (a std::runtime_error), so a single
 * catch clause gives the generic boundary while specific clauses can
 * classify.
 */

#ifndef SMTAVF_SIM_ERRORS_HH
#define SMTAVF_SIM_ERRORS_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/types.hh"

namespace smtavf
{

/** Base of all structured, recoverable simulation failures. */
class SimulationError : public std::runtime_error
{
  public:
    explicit SimulationError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Per-thread pipeline progress counters at the moment of a livelock. */
struct ThreadProgress
{
    std::uint64_t fetched = 0;
    std::uint64_t issued = 0;
    std::uint64_t committed = 0;
};

/**
 * No context committed an instruction for the configured watchdog window.
 * Raised by Simulator::run() instead of spinning forever; the campaign
 * layer classifies it timed-out (deterministic: retrying the same seed
 * would spin through the same window again).
 */
class LivelockError : public SimulationError
{
  public:
    LivelockError(Cycle cycle, Cycle window, std::string mix_name,
                  std::vector<ThreadProgress> threads,
                  const std::string &state_dump);

    Cycle cycle;          ///< cycle at which the watchdog fired
    Cycle window;         ///< the configured no-commit window
    std::string mixName;  ///< workload that wedged
    std::vector<ThreadProgress> threads; ///< indexed by ThreadId
    std::string stateDump; ///< SmtCore::stateDump() at detection
};

/**
 * The invariant checker found inconsistent machine state (register leak,
 * out-of-order ROB, over-capacity queue, AVF ledger over-accounting, ...).
 */
class InvariantError : public SimulationError
{
  public:
    InvariantError(std::string invariant, Cycle cycle,
                   const std::string &detail, std::string state_dump);

    std::string invariant; ///< short name, e.g. "regfile.conservation"
    Cycle cycle;           ///< cycle the check ran
    std::string stateDump; ///< machine state at detection
};

/**
 * The simulation noticed the campaign's cancel flag mid-run and stopped
 * instead of finishing its budget. Raised by Simulator::run() when
 * MachineConfig::cancel is set and cancelCheckCycles > 0 — the fix for
 * the soft-timeout blind spot where a runaway run in thread mode could
 * only be abandoned at completion (docs/ROBUSTNESS.md).
 */
class CancelledError : public SimulationError
{
  public:
    CancelledError(Cycle cycle, std::string mix_name);

    Cycle cycle;         ///< cycle at which the flag was observed
    std::string mixName; ///< workload that was interrupted
};

} // namespace smtavf

#endif // SMTAVF_SIM_ERRORS_HH
