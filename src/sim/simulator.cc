#include "sim/simulator.hh"

#include "base/logging.hh"
#include "sim/errors.hh"
#include "sim/invariants.hh"

namespace smtavf
{

Simulator::Simulator(const MachineConfig &cfg, const WorkloadMix &mix,
                     std::vector<std::uint32_t> stream_ids)
    : cfg_(cfg), mix_(mix), ledger_(cfg.contexts), hier_(cfg.mem),
      dl1Tracker_(hier_.dl1(), ledger_, HwStruct::Dl1Data, HwStruct::Dl1Tag,
                  cfg.avf.perByteCacheAvf),
      dtlbTracker_(hier_.dtlb(), ledger_, HwStruct::Dtlb),
      itlbTracker_(hier_.itlb(), ledger_, HwStruct::Itlb)
{
    cfg_.validate();
    ledger_.setProtection(cfg_.protection);
    if (cfg_.avf.trackL2Avf)
        l2Tracker_ = std::make_unique<CacheVulnTracker>(
            hier_.l2(), ledger_, HwStruct::L2Data, HwStruct::L2Tag,
            /*per_byte=*/false);
    if (mix_.contexts != cfg_.contexts)
        SMTAVF_FATAL("mix ", mix_.name, " has ", mix_.contexts,
                     " contexts, config has ", cfg_.contexts);
    if (!stream_ids.empty() && stream_ids.size() != cfg_.contexts)
        SMTAVF_FATAL("stream-id override count mismatch");

    std::vector<StreamGenerator *> raw;
    for (unsigned t = 0; t < cfg_.contexts; ++t) {
        const auto &profile = findProfile(mix_.benchmarks[t]);
        std::uint32_t sid =
            stream_ids.empty() ? 0xffffffffu : stream_ids[t];
        gens_.push_back(std::make_unique<StreamGenerator>(
            profile, cfg_.seed, static_cast<ThreadId>(t), sid));
        raw.push_back(gens_.back().get());
    }
    core_ = std::make_unique<SmtCore>(cfg_, std::move(raw), hier_, ledger_);

    if (cfg_.prewarmCaches)
        prewarm();
}

Simulator::Simulator(const MachineConfig &cfg,
                     std::vector<BenchmarkProfile> profiles,
                     const std::string &name)
    : cfg_(cfg), ledger_(cfg.contexts), hier_(cfg.mem),
      dl1Tracker_(hier_.dl1(), ledger_, HwStruct::Dl1Data, HwStruct::Dl1Tag,
                  cfg.avf.perByteCacheAvf),
      dtlbTracker_(hier_.dtlb(), ledger_, HwStruct::Dtlb),
      itlbTracker_(hier_.itlb(), ledger_, HwStruct::Itlb)
{
    cfg_.validate();
    ledger_.setProtection(cfg_.protection);
    if (cfg_.avf.trackL2Avf)
        l2Tracker_ = std::make_unique<CacheVulnTracker>(
            hier_.l2(), ledger_, HwStruct::L2Data, HwStruct::L2Tag,
            /*per_byte=*/false);
    if (profiles.size() != cfg_.contexts)
        SMTAVF_FATAL("custom workload '", name, "' has ", profiles.size(),
                     " profiles for ", cfg_.contexts, " contexts");

    mix_.name = name;
    mix_.contexts = cfg_.contexts;
    mix_.type = MixType::Mix;
    mix_.group = 'A';

    std::vector<StreamGenerator *> raw;
    for (unsigned t = 0; t < cfg_.contexts; ++t) {
        profiles[t].validate();
        mix_.benchmarks.push_back(profiles[t].name);
        gens_.push_back(std::make_unique<StreamGenerator>(
            profiles[t], cfg_.seed, static_cast<ThreadId>(t)));
        raw.push_back(gens_.back().get());
    }
    core_ = std::make_unique<SmtCore>(cfg_, std::move(raw), hier_, ledger_);

    if (cfg_.prewarmCaches)
        prewarm();
}

void
Simulator::prewarm()
{
    auto fill_lines = [](Cache &c, ThreadId tid, Addr base,
                         std::uint64_t size) {
        for (Addr a = base; a < base + size; a += c.config().lineBytes)
            c.fill(a, tid, 0);
    };
    auto fill_pages = [](Tlb &t, ThreadId tid, Addr base, std::uint64_t size,
                         std::uint64_t max_pages) {
        std::uint64_t pages = size / t.config().pageBytes + 1;
        if (pages > max_pages)
            pages = max_pages;
        for (std::uint64_t p = 0; p < pages; ++p)
            t.prefill(base + p * t.config().pageBytes, tid);
    };

    // Fair static shares; LRU sorts out the real steady state quickly.
    std::uint64_t l2_share = cfg_.mem.l2.sizeBytes / cfg_.contexts;
    std::uint64_t dtlb_share = cfg_.mem.dtlb.entries / cfg_.contexts;
    std::uint64_t itlb_share = cfg_.mem.itlb.entries / cfg_.contexts;

    for (unsigned t = 0; t < cfg_.contexts; ++t) {
        auto tid = static_cast<ThreadId>(t);
        auto h = gens_[t]->prewarmHints();

        fill_lines(hier_.il1(), tid, h.code.base, h.code.size);
        fill_lines(hier_.l2(), tid, h.code.base, h.code.size);
        fill_lines(hier_.dl1(), tid, h.hot.base, h.hot.size);
        fill_lines(hier_.l2(), tid, h.hot.base,
                   std::min(h.hot.size, l2_share));
        fill_lines(hier_.l2(), tid, h.warm.base,
                   std::min(h.warm.size, l2_share));

        fill_pages(hier_.itlb(), tid, h.code.base, h.code.size, itlb_share);
        fill_pages(hier_.dtlb(), tid, h.hot.base, h.hot.size,
                   dtlb_share / 2 + 1);
        fill_pages(hier_.dtlb(), tid, h.warm.base, h.warm.size,
                   dtlb_share / 2 + 1);
    }
}

SimResult
Simulator::run(std::uint64_t instr_budget)
{
    if (ran_)
        SMTAVF_FATAL("Simulator instances are single use");
    ran_ = true;
    if (instr_budget == 0)
        SMTAVF_FATAL("zero instruction budget");

    // Livelock watchdog: a correct model always commits something within
    // the longest dependence stall (a few memory round trips). Raising a
    // structured, catchable error instead of spinning forever (or
    // aborting the process) lets a campaign classify the run and move on.
    const Cycle watchdog_window = cfg_.livelockCycles;
    std::uint64_t last_committed = 0;
    Cycle last_progress = 0;

    std::shared_ptr<AvfTimeline> timeline;
    if (cfg_.avfSampleCycles > 0)
        timeline =
            std::make_shared<AvfTimeline>(ledger_, cfg_.avfSampleCycles);

    std::shared_ptr<CommitTrace> trace;
    if (cfg_.recordCommitTrace) {
        trace = std::make_shared<CommitTrace>();
        core_->recordCommits(trace.get());
    }

    // Cycle of the most recent invariant sweep; 0 = never checked (there
    // is nothing in flight at cycle 0, so it needs no sweep).
    Cycle last_checked = 0;

    while (core_->totalCommitted() < instr_budget) {
        core_->tick();
        if (timeline)
            timeline->tick(core_->now());
        // Cancel poll: bounded-interval check of the campaign's cancel
        // flag so even a run that livelocks below the watchdog horizon
        // (or simply has a huge budget) is interrupted promptly. A
        // relaxed load is enough — the flag only ever flips one way and
        // a poll-interval delay is inherent anyway.
        if (cfg_.cancelCheckCycles > 0 && cfg_.cancel &&
            core_->now() % cfg_.cancelCheckCycles == 0 &&
            cfg_.cancel->load(std::memory_order_relaxed))
            throw CancelledError(core_->now(), mix_.name);
        if (cfg_.invariantCheckCycles > 0 &&
            core_->now() % cfg_.invariantCheckCycles == 0) {
            checkInvariants(*core_, ledger_, core_->now());
            last_checked = core_->now();
        }
        if (core_->totalCommitted() != last_committed) {
            last_committed = core_->totalCommitted();
            last_progress = core_->now();
        } else if (watchdog_window > 0 &&
                   core_->now() - last_progress > watchdog_window) {
            std::vector<ThreadProgress> progress;
            for (unsigned t = 0; t < cfg_.contexts; ++t) {
                auto tid = static_cast<ThreadId>(t);
                progress.push_back({core_->fetched(tid), core_->issued(tid),
                                    core_->committed(tid)});
            }
            throw LivelockError(core_->now(), watchdog_window, mix_.name,
                                std::move(progress), core_->stateDump());
        }
    }

    // Final consistency gate before any AVF number leaves this run —
    // skipped when the last loop iteration already swept this very cycle.
    if (cfg_.invariantCheckCycles > 0 && core_->now() != last_checked)
        checkInvariants(*core_, ledger_, core_->now());

    Cycle end = core_->now();
    core_->finalizeAvf();
    hier_.finalize(end);
    if (timeline)
        timeline->finish(end);
    if (trace)
        trace->finalize(); // deadness verdicts are all resolved now
    ledger_.finalize(end);

    SimResult r;
    r.mixName = mix_.name;
    r.policyName = fetchPolicyName(cfg_.fetchPolicy);
    r.cycles = end;
    r.totalCommitted = core_->totalCommitted();
    r.ipc = static_cast<double>(r.totalCommitted) / end;
    for (unsigned t = 0; t < cfg_.contexts; ++t) {
        ThreadPerf tp;
        tp.benchmark = mix_.benchmarks[t];
        tp.committed = core_->committed(static_cast<ThreadId>(t));
        tp.ipc = static_cast<double>(tp.committed) / end;
        r.threads.push_back(std::move(tp));
    }
    r.avf = AvfReport::fromLedger(ledger_);
    r.timeline = timeline;
    r.commitTrace = trace;

    r.stats.set("dl1.missRate", hier_.dl1().missRate());
    r.stats.set("l2.missRate", hier_.l2().missRate());
    r.stats.set("il1.missRate", hier_.il1().missRate());
    r.stats.set("dtlb.missRate", hier_.dtlb().missRate());
    r.stats.set("deadCode.fraction", core_->deadCode().deadFraction());
    r.stats.set("fetch.wrongPath",
                static_cast<double>(core_->wrongPathFetched()));
    r.stats.set("squashed", static_cast<double>(core_->squashedInstrs()));
    double mispredict = 0.0;
    for (unsigned t = 0; t < cfg_.contexts; ++t)
        mispredict += core_->predictor(static_cast<ThreadId>(t))
                          .mispredictRate();
    r.stats.set("branch.mispredictRate", mispredict / cfg_.contexts);
    return r;
}

} // namespace smtavf
