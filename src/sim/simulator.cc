#include "sim/simulator.hh"

#include "base/logging.hh"
#include "sim/errors.hh"
#include "sim/invariants.hh"
#include "sim/journal.hh"

namespace smtavf
{

std::atomic<std::uint64_t> &
simulatedInstructionCounter()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter;
}

Simulator::Simulator(const MachineConfig &cfg, const WorkloadMix &mix,
                     std::vector<std::uint32_t> stream_ids)
    : ctorScope_(arena_), cfg_(cfg), mix_(mix),
      streamIds_(std::move(stream_ids)), ledger_(cfg.contexts),
      hier_(cfg.mem),
      dl1Tracker_(hier_.dl1(), ledger_, HwStruct::Dl1Data, HwStruct::Dl1Tag,
                  cfg.avf.perByteCacheAvf),
      dtlbTracker_(hier_.dtlb(), ledger_, HwStruct::Dtlb),
      itlbTracker_(hier_.itlb(), ledger_, HwStruct::Itlb)
{
    cfg_.validate();
    ledger_.setProtection(cfg_.protection);
    if (cfg_.avf.trackL2Avf)
        l2Tracker_ = makeArena<CacheVulnTracker>(
            hier_.l2(), ledger_, HwStruct::L2Data, HwStruct::L2Tag,
            /*per_byte=*/false);
    if (mix_.contexts != cfg_.contexts)
        SMTAVF_FATAL("mix ", mix_.name, " has ", mix_.contexts,
                     " contexts, config has ", cfg_.contexts);
    if (!streamIds_.empty() && streamIds_.size() != cfg_.contexts)
        SMTAVF_FATAL("stream-id override count mismatch");

    std::vector<StreamGenerator *> raw;
    raw.reserve(cfg_.contexts);
    gens_.reserve(cfg_.contexts);
    for (unsigned t = 0; t < cfg_.contexts; ++t) {
        const auto &profile = findProfile(mix_.benchmarks[t]);
        std::uint32_t sid =
            streamIds_.empty() ? 0xffffffffu : streamIds_[t];
        gens_.push_back(makeArena<StreamGenerator>(
            profile, cfg_.seed, static_cast<ThreadId>(t), sid));
        raw.push_back(gens_.back().get());
    }
    core_ = makeArena<SmtCore>(cfg_, std::move(raw), hier_, ledger_);

    if (cfg_.prewarmCaches)
        prewarm();

    // Construction is over: run-time growth (lazy scratch, checkpoint
    // payloads) belongs on the heap, not in the monotonic arena.
    ctorScope_.release();
}

Simulator::Simulator(const MachineConfig &cfg,
                     std::vector<BenchmarkProfile> profiles,
                     const std::string &name)
    : ctorScope_(arena_), cfg_(cfg), ledger_(cfg.contexts), hier_(cfg.mem),
      dl1Tracker_(hier_.dl1(), ledger_, HwStruct::Dl1Data, HwStruct::Dl1Tag,
                  cfg.avf.perByteCacheAvf),
      dtlbTracker_(hier_.dtlb(), ledger_, HwStruct::Dtlb),
      itlbTracker_(hier_.itlb(), ledger_, HwStruct::Itlb)
{
    cfg_.validate();
    ledger_.setProtection(cfg_.protection);
    if (cfg_.avf.trackL2Avf)
        l2Tracker_ = makeArena<CacheVulnTracker>(
            hier_.l2(), ledger_, HwStruct::L2Data, HwStruct::L2Tag,
            /*per_byte=*/false);
    if (profiles.size() != cfg_.contexts)
        SMTAVF_FATAL("custom workload '", name, "' has ", profiles.size(),
                     " profiles for ", cfg_.contexts, " contexts");

    mix_.name = name;
    mix_.contexts = cfg_.contexts;
    mix_.type = MixType::Mix;
    mix_.group = 'A';

    std::vector<StreamGenerator *> raw;
    raw.reserve(cfg_.contexts);
    gens_.reserve(cfg_.contexts);
    for (unsigned t = 0; t < cfg_.contexts; ++t) {
        profiles[t].validate();
        mix_.benchmarks.push_back(profiles[t].name);
        gens_.push_back(makeArena<StreamGenerator>(
            profiles[t], cfg_.seed, static_cast<ThreadId>(t)));
        raw.push_back(gens_.back().get());
    }
    core_ = makeArena<SmtCore>(cfg_, std::move(raw), hier_, ledger_);

    if (cfg_.prewarmCaches)
        prewarm();

    ctorScope_.release();
}

namespace
{

/**
 * True when two configurations build byte-identical machine structures
 * and drive them through the same timing — the reuse precondition of
 * Simulator::reset(). The field list mirrors fpMachine/fpWorkload in
 * sim/journal.cc exactly (a direct comparison instead of a fingerprint
 * so the reset path stays allocation-free); seed and protection may
 * differ (a re-seed and a ledger overlay swap are part of reset()), and
 * the robustness knobs (livelock/invariant/cancel) never affect what a
 * run computes.
 */
bool
sameTimingShape(const MachineConfig &a, const MachineConfig &b)
{
    auto cache_eq = [](const CacheConfig &x, const CacheConfig &y) {
        return x.sizeBytes == y.sizeBytes && x.ways == y.ways &&
               x.lineBytes == y.lineBytes && x.latency == y.latency &&
               x.ports == y.ports;
    };
    auto tlb_eq = [](const TlbConfig &x, const TlbConfig &y) {
        return x.entries == y.entries && x.ways == y.ways &&
               x.pageBytes == y.pageBytes && x.missPenalty == y.missPenalty;
    };
    return a.contexts == b.contexts && a.fetchWidth == b.fetchWidth &&
           a.decodeWidth == b.decodeWidth && a.issueWidth == b.issueWidth &&
           a.commitWidth == b.commitWidth &&
           a.fetchThreadsPerCycle == b.fetchThreadsPerCycle &&
           a.frontLatency == b.frontLatency &&
           a.fetchQueueSize == b.fetchQueueSize && a.iqSize == b.iqSize &&
           a.robSize == b.robSize && a.lsqSize == b.lsqSize &&
           a.iqPartitioned == b.iqPartitioned &&
           a.intPhysRegs == b.intPhysRegs && a.fpPhysRegs == b.fpPhysRegs &&
           a.fu.intAlu == b.fu.intAlu && a.fu.intMulDiv == b.fu.intMulDiv &&
           a.fu.memPorts == b.fu.memPorts && a.fu.fpAlu == b.fu.fpAlu &&
           a.fu.fpMulDiv == b.fu.fpMulDiv &&
           a.branch.gshareEntries == b.branch.gshareEntries &&
           a.branch.historyBits == b.branch.historyBits &&
           a.branch.btbEntries == b.branch.btbEntries &&
           a.branch.btbWays == b.branch.btbWays &&
           a.branch.rasEntries == b.branch.rasEntries &&
           cache_eq(a.mem.il1, b.mem.il1) && cache_eq(a.mem.dl1, b.mem.dl1) &&
           cache_eq(a.mem.l2, b.mem.l2) && tlb_eq(a.mem.itlb, b.mem.itlb) &&
           tlb_eq(a.mem.dtlb, b.mem.dtlb) &&
           a.mem.memLatency == b.mem.memLatency &&
           a.fetchPolicy == b.fetchPolicy &&
           a.prewarmCaches == b.prewarmCaches &&
           a.avf.deadCodeAnalysis == b.avf.deadCodeAnalysis &&
           a.avf.wrongPathModel == b.avf.wrongPathModel &&
           a.avf.perByteCacheAvf == b.avf.perByteCacheAvf &&
           a.avf.regAllocWindowUnace == b.avf.regAllocWindowUnace &&
           a.avf.trackL2Avf == b.avf.trackL2Avf &&
           a.avfSampleCycles == b.avfSampleCycles &&
           a.recordCommitTrace == b.recordCommitTrace &&
           // PRAT's throttle knobs steer timing; protection may still
           // differ — SmtCore::reset() installs the new config before
           // resetting the policy, so PRAT re-derives its weights from
           // the new assignment.
           (a.fetchPolicy != FetchPolicyKind::PRat ||
            (a.pratEpoch == b.pratEpoch && a.pratCap == b.pratCap));
}

} // namespace

bool
Simulator::canResetTo(const MachineConfig &cfg, const WorkloadMix &mix) const
{
    if (!streamIds_.empty())
        return false; // stream-id replay runs stay single-use
    if (mix.name != mix_.name || mix.contexts != mix_.contexts ||
        mix.benchmarks != mix_.benchmarks)
        return false;
    return sameTimingShape(cfg, cfg_);
}

void
Simulator::reset(const MachineConfig &cfg, const WorkloadMix &mix)
{
    if (!canResetTo(cfg, mix))
        SMTAVF_FATAL("Simulator::reset with an incompatible timing shape "
                     "(mix ", mix.name, " vs ", mix_.name,
                     "); construct a fresh instance instead");

    // Mirror the constructor's order exactly: ledger (protection overlay
    // re-armed after its reset), hierarchy, trackers, generators
    // (re-seeded from the new config), core, prewarm. mix_ is untouched —
    // canResetTo proved it identical, and reassigning it would copy
    // strings (this whole path is gated at zero heap allocations by
    // tests/test_alloc_steady.cc).
    cfg_ = cfg;
    ledger_.reset();
    ledger_.setProtection(cfg_.protection);
    hier_.reset();
    dl1Tracker_.reset();
    dtlbTracker_.reset();
    itlbTracker_.reset();
    if (l2Tracker_)
        l2Tracker_->reset();
    for (unsigned t = 0; t < cfg_.contexts; ++t)
        gens_[t]->reset(cfg_.seed);
    core_->reset(cfg_);
    if (cfg_.prewarmCaches)
        prewarm();

    baseline_ = RunBaseline{};
    restoredCommitted_ = 0;
    restored_ = false;
    ran_ = false;
}

void
Simulator::prewarm()
{
    auto fill_lines = [](Cache &c, ThreadId tid, Addr base,
                         std::uint64_t size) {
        for (Addr a = base; a < base + size; a += c.config().lineBytes)
            c.fill(a, tid, 0);
    };
    auto fill_pages = [](Tlb &t, ThreadId tid, Addr base, std::uint64_t size,
                         std::uint64_t max_pages) {
        std::uint64_t pages = size / t.config().pageBytes + 1;
        if (pages > max_pages)
            pages = max_pages;
        for (std::uint64_t p = 0; p < pages; ++p)
            t.prefill(base + p * t.config().pageBytes, tid);
    };

    // Fair static shares; LRU sorts out the real steady state quickly.
    std::uint64_t l2_share = cfg_.mem.l2.sizeBytes / cfg_.contexts;
    std::uint64_t dtlb_share = cfg_.mem.dtlb.entries / cfg_.contexts;
    std::uint64_t itlb_share = cfg_.mem.itlb.entries / cfg_.contexts;

    for (unsigned t = 0; t < cfg_.contexts; ++t) {
        auto tid = static_cast<ThreadId>(t);
        auto h = gens_[t]->prewarmHints();

        fill_lines(hier_.il1(), tid, h.code.base, h.code.size);
        fill_lines(hier_.l2(), tid, h.code.base, h.code.size);
        fill_lines(hier_.dl1(), tid, h.hot.base, h.hot.size);
        fill_lines(hier_.l2(), tid, h.hot.base,
                   std::min(h.hot.size, l2_share));
        fill_lines(hier_.l2(), tid, h.warm.base,
                   std::min(h.warm.size, l2_share));

        fill_pages(hier_.itlb(), tid, h.code.base, h.code.size, itlb_share);
        fill_pages(hier_.dtlb(), tid, h.hot.base, h.hot.size,
                   dtlb_share / 2 + 1);
        fill_pages(hier_.dtlb(), tid, h.warm.base, h.warm.size,
                   dtlb_share / 2 + 1);
    }
}

void
Simulator::advanceUntil(std::uint64_t target, LoopState &ls,
                        AvfTimeline *timeline, AvfIntervalSeries *series)
{
    // Livelock watchdog: a correct model always commits something within
    // the longest dependence stall (a few memory round trips). Raising a
    // structured, catchable error instead of spinning forever (or
    // aborting the process) lets a campaign classify the run and move on.
    const Cycle watchdog_window = cfg_.livelockCycles;

    while (core_->totalCommitted() < target) {
        core_->tick();
        if (timeline)
            timeline->tick(core_->now());
        if (series)
            series->tick(core_->totalCommitted(), core_->now());
        // Cancel poll: bounded-interval check of the campaign's cancel
        // flag so even a run that livelocks below the watchdog horizon
        // (or simply has a huge budget) is interrupted promptly. A
        // relaxed load is enough — the flag only ever flips one way and
        // a poll-interval delay is inherent anyway.
        if (cfg_.cancelCheckCycles > 0 && cfg_.cancel &&
            core_->now() % cfg_.cancelCheckCycles == 0 &&
            cfg_.cancel->load(std::memory_order_relaxed))
            throw CancelledError(core_->now(), mix_.name);
        if (cfg_.invariantCheckCycles > 0 &&
            core_->now() % cfg_.invariantCheckCycles == 0) {
            checkInvariants(*core_, ledger_, core_->now());
            ls.lastChecked = core_->now();
        }
        if (core_->totalCommitted() != ls.lastCommitted) {
            ls.lastCommitted = core_->totalCommitted();
            ls.lastProgress = core_->now();
        } else if (watchdog_window > 0 &&
                   core_->now() - ls.lastProgress > watchdog_window) {
            std::vector<ThreadProgress> progress;
            for (unsigned t = 0; t < cfg_.contexts; ++t) {
                auto tid = static_cast<ThreadId>(t);
                progress.push_back({core_->fetched(tid), core_->issued(tid),
                                    core_->committed(tid)});
            }
            throw LivelockError(core_->now(), watchdog_window, mix_.name,
                                std::move(progress), core_->stateDump());
        }
    }
}

void
Simulator::drainPipeline(LoopState &ls, AvfTimeline *timeline,
                         AvfIntervalSeries *series)
{
    core_->setFetchEnabled(false);
    const Cycle start = core_->now();
    // With fetch gated the pipeline empties monotonically, bounded by the
    // same horizon as the livelock watchdog (a handful of memory round
    // trips); exceeding it means a stuck instruction, i.e. a model bug.
    const Cycle bound =
        cfg_.livelockCycles > 0 ? cfg_.livelockCycles : Cycle{2'000'000};
    while (!(core_->pipelineEmpty() && hier_.outstandingMisses() == 0)) {
        core_->tick();
        if (timeline)
            timeline->tick(core_->now());
        if (series)
            series->tick(core_->totalCommitted(), core_->now());
        if (core_->now() - start > bound)
            SMTAVF_FATAL("pipeline failed to drain within ", bound,
                         " cycles (mix ", mix_.name, ")");
    }
    core_->setFetchEnabled(true);
    // Instructions committed during the drain: refresh the watchdog so it
    // times the post-boundary window, not the boundary itself.
    ls.lastCommitted = core_->totalCommitted();
    ls.lastProgress = core_->now();
}

void
Simulator::captureBaseline()
{
    RunBaseline b;
    b.cycle = core_->now();
    for (unsigned t = 0; t < cfg_.contexts; ++t) {
        auto tid = static_cast<ThreadId>(t);
        b.committed[t] = core_->committed(tid);
        b.branches[t] = core_->predictor(tid).branches();
        b.mispredicts[t] = core_->predictor(tid).mispredicts();
    }
    b.wrongPathFetched = core_->wrongPathFetched();
    b.squashed = core_->squashedInstrs();
    b.dl1Hits = hier_.dl1().hits();
    b.dl1Misses = hier_.dl1().misses();
    b.l2Hits = hier_.l2().hits();
    b.l2Misses = hier_.l2().misses();
    b.il1Hits = hier_.il1().hits();
    b.il1Misses = hier_.il1().misses();
    b.dtlbHits = hier_.dtlb().hits();
    b.dtlbMisses = hier_.dtlb().misses();
    b.dead = core_->deadCode().deadInstructions();
    b.resolved = core_->deadCode().resolvedInstructions();
    baseline_ = b;
}

template <class Ar>
void
Simulator::visitState(Ar &ar)
{
    ar(baseline_);
    ar(*core_);
    ar(hier_);
    ar(dl1Tracker_);
    ar(dtlbTracker_);
    ar(itlbTracker_);
    if (l2Tracker_)
        ar(*l2Tracker_);
    ar(ledger_);
}

Checkpoint
Simulator::makeCheckpoint(std::uint64_t at, bool warmup_boundary)
{
    // Counting pass first: payloads run to megabytes, and reserving the
    // exact size turns ~20 geometric reallocations into one allocation.
    ByteCounter size;
    visitState(size);
    Serializer ser;
    ser.reserve(size.total());
    visitState(ser);

    Checkpoint ck;
    ck.configFingerprint =
        checkpointFingerprint(cfg_, mix_, at, warmup_boundary);
    ck.warmupBoundary = warmup_boundary;
    ck.at = at;
    ck.payload = ser.take();
    return ck;
}

void
Simulator::restore(const Checkpoint &ck)
{
    if (ran_)
        SMTAVF_FATAL("restore() after run()");
    if (restored_)
        SMTAVF_FATAL("restore() twice");
    if (!streamIds_.empty())
        SMTAVF_FATAL("checkpoints do not support stream-id overrides");
    if (ck.empty())
        throw CheckpointError("refusing to restore an empty checkpoint");

    std::uint64_t expect =
        checkpointFingerprint(cfg_, mix_, ck.at, ck.warmupBoundary);
    if (expect != ck.configFingerprint)
        throw CheckpointError(
            "checkpoint fingerprint mismatch: captured under a different "
            "workload/machine configuration than this run's");

    Deserializer des(ck.payload);
    visitState(des);
    if (!des.exhausted())
        throw CheckpointError("checkpoint payload has trailing bytes");

    restoredCommitted_ = core_->totalCommitted();
    restored_ = true;
}

Checkpoint
Simulator::captureWarmupCheckpoint(std::uint64_t warmup_instrs)
{
    if (ran_ || restored_)
        SMTAVF_FATAL("captureWarmupCheckpoint on a used simulator");
    ran_ = true;
    if (warmup_instrs == 0)
        SMTAVF_FATAL("zero warmup budget");
    if (!streamIds_.empty())
        SMTAVF_FATAL("checkpoints do not support stream-id overrides");

    LoopState ls;
    advanceUntil(warmup_instrs, ls, nullptr, nullptr);
    drainPipeline(ls, nullptr, nullptr);
    core_->boundaryResolveDeadness();
    ledger_.resetTallies(core_->now());
    captureBaseline();

    simulatedInstructionCounter().fetch_add(core_->totalCommitted(),
                                            std::memory_order_relaxed);
    return makeCheckpoint(warmup_instrs, /*warmup_boundary=*/true);
}

SimResult
Simulator::run(std::uint64_t instr_budget, const RunControls &rc)
{
    if (ran_)
        SMTAVF_FATAL("run() twice without an intervening reset()");
    ran_ = true;
    if (instr_budget == 0)
        SMTAVF_FATAL("zero instruction budget");
    if ((rc.warmup || rc.checkpointAt) && !streamIds_.empty())
        SMTAVF_FATAL("checkpoints do not support stream-id overrides");
    if (restored_ && rc.warmup)
        SMTAVF_FATAL("warmup after restore (the checkpoint already fixed "
                     "the measured window)");
    if ((!rc.checkpointOut.empty() || rc.checkpointCapture) &&
        rc.checkpointAt == 0)
        SMTAVF_FATAL("checkpoint destination without --checkpoint-at");

    const std::uint64_t start_committed = core_->totalCommitted();

    std::shared_ptr<AvfTimeline> timeline;
    if (cfg_.avfSampleCycles > 0)
        timeline =
            std::make_shared<AvfTimeline>(ledger_, cfg_.avfSampleCycles);

    std::shared_ptr<AvfIntervalSeries> series;
    if (rc.avfInterval > 0)
        series = std::make_shared<AvfIntervalSeries>(ledger_,
                                                     rc.avfInterval);

    std::shared_ptr<CommitTrace> trace;
    if (cfg_.recordCommitTrace) {
        trace = std::make_shared<CommitTrace>();
        core_->recordCommits(trace.get());
    }

    LoopState ls;
    ls.lastCommitted = core_->totalCommitted();
    ls.lastProgress = core_->now();

    // The budget counts instructions of the *measured window*: committed
    // after the warmup boundary (or the restore point), or all of them
    // for a plain run.
    std::uint64_t rel_base = restoredCommitted_;

    if (rc.warmup > 0) {
        advanceUntil(rc.warmup, ls, timeline.get(), nullptr);
        drainPipeline(ls, timeline.get(), nullptr);
        core_->boundaryResolveDeadness();
        ledger_.resetTallies(core_->now());
        captureBaseline();
        rel_base = core_->totalCommitted();
    }

    if (series)
        series->arm(core_->totalCommitted(), core_->now());

    const std::uint64_t target = rel_base + instr_budget;

    if (rc.checkpointAt > 0) {
        if (rc.checkpointAt <= core_->totalCommitted())
            SMTAVF_FATAL("checkpoint trigger ", rc.checkpointAt,
                         " already passed (", core_->totalCommitted(),
                         " committed)");
        if (rc.checkpointAt >= target)
            SMTAVF_FATAL("checkpoint trigger ", rc.checkpointAt,
                         " at or beyond the run's commit target ", target);
        advanceUntil(rc.checkpointAt, ls, timeline.get(), series.get());
        drainPipeline(ls, timeline.get(), series.get());
        core_->boundaryResolveDeadness();
        Checkpoint ck =
            makeCheckpoint(rc.checkpointAt, /*warmup_boundary=*/false);
        if (!rc.checkpointOut.empty())
            saveCheckpointFile(ck, rc.checkpointOut);
        if (rc.checkpointCapture)
            *rc.checkpointCapture = std::move(ck);
    }

    advanceUntil(target, ls, timeline.get(), series.get());

    // Final consistency gate before any AVF number leaves this run —
    // skipped when the last loop iteration already swept this very cycle.
    if (cfg_.invariantCheckCycles > 0 && core_->now() != ls.lastChecked)
        checkInvariants(*core_, ledger_, core_->now());

    Cycle end = core_->now();
    core_->finalizeAvf();
    hier_.finalize(end);
    if (timeline)
        timeline->finish(end);
    if (series)
        series->finish(core_->totalCommitted(), end);
    if (trace)
        trace->finalize(); // deadness verdicts are all resolved now
    ledger_.finalize(end);

    simulatedInstructionCounter().fetch_add(
        core_->totalCommitted() - start_committed,
        std::memory_order_relaxed);

    // Every reported figure subtracts the baseline, which is all-zero for
    // a plain run — reproducing the historical whole-run numbers exactly
    // — and the boundary snapshot for a warmup run (or a run restored
    // from one), making each figure a measured-window statistic.
    const RunBaseline &b = baseline_;
    const Cycle win = end - b.cycle;

    SimResult r;
    r.mixName = mix_.name;
    r.policyName = fetchPolicyName(cfg_.fetchPolicy);
    r.cycles = win;
    std::uint64_t committed_delta = 0;
    for (unsigned t = 0; t < cfg_.contexts; ++t)
        committed_delta +=
            core_->committed(static_cast<ThreadId>(t)) - b.committed[t];
    r.totalCommitted = committed_delta;
    r.ipc = static_cast<double>(r.totalCommitted) / win;
    for (unsigned t = 0; t < cfg_.contexts; ++t) {
        ThreadPerf tp;
        tp.benchmark = mix_.benchmarks[t];
        tp.committed =
            core_->committed(static_cast<ThreadId>(t)) - b.committed[t];
        tp.ipc = static_cast<double>(tp.committed) / win;
        r.threads.push_back(std::move(tp));
    }
    r.avf = AvfReport::fromLedger(ledger_);
    r.timeline = timeline;
    r.avfIntervals = series;
    r.commitTrace = trace;

    auto rate = [](std::uint64_t part, std::uint64_t total) {
        return total ? static_cast<double>(part) / total : 0.0;
    };
    r.stats.set("dl1.missRate",
                rate(hier_.dl1().misses() - b.dl1Misses,
                     (hier_.dl1().hits() - b.dl1Hits) +
                         (hier_.dl1().misses() - b.dl1Misses)));
    r.stats.set("l2.missRate",
                rate(hier_.l2().misses() - b.l2Misses,
                     (hier_.l2().hits() - b.l2Hits) +
                         (hier_.l2().misses() - b.l2Misses)));
    r.stats.set("il1.missRate",
                rate(hier_.il1().misses() - b.il1Misses,
                     (hier_.il1().hits() - b.il1Hits) +
                         (hier_.il1().misses() - b.il1Misses)));
    r.stats.set("dtlb.missRate",
                rate(hier_.dtlb().misses() - b.dtlbMisses,
                     (hier_.dtlb().hits() - b.dtlbHits) +
                         (hier_.dtlb().misses() - b.dtlbMisses)));
    r.stats.set("deadCode.fraction",
                rate(core_->deadCode().deadInstructions() - b.dead,
                     core_->deadCode().resolvedInstructions() - b.resolved));
    r.stats.set("fetch.wrongPath",
                static_cast<double>(core_->wrongPathFetched() -
                                    b.wrongPathFetched));
    r.stats.set("squashed",
                static_cast<double>(core_->squashedInstrs() - b.squashed));
    double mispredict = 0.0;
    for (unsigned t = 0; t < cfg_.contexts; ++t) {
        auto tid = static_cast<ThreadId>(t);
        mispredict += rate(core_->predictor(tid).mispredicts() -
                               b.mispredicts[t],
                           core_->predictor(tid).branches() - b.branches[t]);
    }
    r.stats.set("branch.mispredictRate", mispredict / cfg_.contexts);
    return r;
}

} // namespace smtavf
