#include "sim/config.hh"

#include <sstream>

#include "base/table.hh"
#include "workload/mixes.hh"

namespace smtavf
{

std::string
table1String(const MachineConfig &cfg)
{
    auto kb = [](std::uint32_t bytes) {
        return std::to_string(bytes / 1024) + "K";
    };

    TextTable t({"Parameter", "Configuration"});
    t.addRow({"Processor Width",
              std::to_string(cfg.fetchWidth) + "-wide fetch/issue/commit"});
    t.addRow({"Baseline Fetch Policy", fetchPolicyName(cfg.fetchPolicy)});
    t.addRow({"Pipeline Depth", "7"});
    t.addRow({"Issue Queue", std::to_string(cfg.iqSize)});
    t.addRow({"ITLB", std::to_string(cfg.mem.itlb.entries) + " entries, " +
                          std::to_string(cfg.mem.itlb.ways) + "-way, " +
                          std::to_string(cfg.mem.itlb.missPenalty) +
                          " cycle miss"});
    t.addRow({"Branch Prediction",
              std::to_string(cfg.branch.gshareEntries / 1024) +
                  "K entries Gshare, " +
                  std::to_string(cfg.branch.historyBits) +
                  "-bit global history per thread"});
    t.addRow({"BTB", std::to_string(cfg.branch.btbEntries / 1024) +
                         "K entries, " +
                         std::to_string(cfg.branch.btbWays) +
                         "-way per thread"});
    t.addRow({"Return Address Stack",
              std::to_string(cfg.branch.rasEntries) + " entries"});
    t.addRow({"L1 Instruction Cache",
              kb(cfg.mem.il1.sizeBytes) + ", " +
                  std::to_string(cfg.mem.il1.ways) + "-way, " +
                  std::to_string(cfg.mem.il1.lineBytes) + " Byte/line, " +
                  std::to_string(cfg.mem.il1.ports) + " ports, " +
                  std::to_string(cfg.mem.il1.latency) + " cycle access"});
    t.addRow({"ROB Size", std::to_string(cfg.robSize) +
                              " entries per thread"});
    t.addRow({"Load/Store Queue", std::to_string(cfg.lsqSize) +
                                      " entries per thread"});
    t.addRow({"Integer ALU", std::to_string(cfg.fu.intAlu) + " I-ALU, " +
                                 std::to_string(cfg.fu.intMulDiv) +
                                 " I-MUL/DIV, " +
                                 std::to_string(cfg.fu.memPorts) +
                                 " Load/Store"});
    t.addRow({"FP ALU", std::to_string(cfg.fu.fpAlu) + " FP-ALU, " +
                            std::to_string(cfg.fu.fpMulDiv) +
                            " FP-MUL/DIV/SQRT"});
    t.addRow({"DTLB", std::to_string(cfg.mem.dtlb.entries) + " entries, " +
                          std::to_string(cfg.mem.dtlb.ways) + "-way, " +
                          std::to_string(cfg.mem.dtlb.missPenalty) +
                          " cycle miss latency"});
    t.addRow({"L1 Data Cache",
              kb(cfg.mem.dl1.sizeBytes) + ", " +
                  std::to_string(cfg.mem.dl1.ways) + "-way, " +
                  std::to_string(cfg.mem.dl1.lineBytes) + " Byte/line, " +
                  std::to_string(cfg.mem.dl1.ports) + " ports, " +
                  std::to_string(cfg.mem.dl1.latency) + " cycle access"});
    t.addRow({"L2 Cache",
              "unified " + std::to_string(cfg.mem.l2.sizeBytes /
                                          (1024 * 1024)) +
                  "MB, " + std::to_string(cfg.mem.l2.ways) + "-way, " +
                  std::to_string(cfg.mem.l2.lineBytes) + " Byte/line, " +
                  std::to_string(cfg.mem.l2.latency) + " cycle access"});
    t.addRow({"Memory Access", "64 bit wide, " +
                                   std::to_string(cfg.mem.memLatency) +
                                   " cycles access latency"});
    t.addRow({"Physical Registers",
              std::to_string(cfg.intPhysRegs) + " INT + " +
                  std::to_string(cfg.fpPhysRegs) + " FP (shared pool)"});
    return t.str();
}

std::string
table2String()
{
    TextTable t({"Contexts", "Type", "Group", "Workload"});
    for (const auto &m : allMixes()) {
        if (m.name.rfind("fig3", 0) == 0)
            continue;
        std::ostringstream bl;
        for (std::size_t i = 0; i < m.benchmarks.size(); ++i) {
            if (i)
                bl << ", ";
            bl << m.benchmarks[i];
        }
        t.addRow({std::to_string(m.contexts) + "-Thread",
                  mixTypeName(m.type), std::string(1, m.group), bl.str()});
    }
    return t.str();
}

} // namespace smtavf
