#include "sim/errors.hh"

#include <sstream>

namespace smtavf
{

namespace
{

std::string
livelockMessage(Cycle cycle, Cycle window, const std::string &mix_name,
                const std::vector<ThreadProgress> &threads,
                const std::string &state_dump)
{
    std::ostringstream os;
    os << "livelock: no commit on any context for " << window
       << " cycles at cycle " << cycle << " (" << mix_name << ")";
    for (std::size_t t = 0; t < threads.size(); ++t)
        os << "\n  T" << t << " fetched " << threads[t].fetched
           << " issued " << threads[t].issued << " committed "
           << threads[t].committed;
    if (!state_dump.empty())
        os << "\n" << state_dump;
    return os.str();
}

std::string
invariantMessage(const std::string &invariant, Cycle cycle,
                 const std::string &detail, const std::string &state_dump)
{
    std::ostringstream os;
    os << "invariant violated: " << invariant << " at cycle " << cycle
       << ": " << detail;
    if (!state_dump.empty())
        os << "\n" << state_dump;
    return os.str();
}

} // namespace

LivelockError::LivelockError(Cycle cycle, Cycle window, std::string mix_name,
                             std::vector<ThreadProgress> threads,
                             const std::string &state_dump)
    : SimulationError(
          livelockMessage(cycle, window, mix_name, threads, state_dump)),
      cycle(cycle), window(window), mixName(std::move(mix_name)),
      threads(std::move(threads)), stateDump(state_dump)
{
}

InvariantError::InvariantError(std::string invariant, Cycle cycle,
                               const std::string &detail,
                               std::string state_dump)
    : SimulationError(invariantMessage(invariant, cycle, detail, state_dump)),
      invariant(std::move(invariant)), cycle(cycle),
      stateDump(std::move(state_dump))
{
}

namespace
{

std::string
cancelledMessage(Cycle cycle, const std::string &mix_name)
{
    std::ostringstream os;
    os << "cancelled mid-run at cycle " << cycle << " (" << mix_name
       << "): campaign cancel flag observed";
    return os.str();
}

} // namespace

CancelledError::CancelledError(Cycle cycle, std::string mix_name)
    : SimulationError(cancelledMessage(cycle, mix_name)), cycle(cycle),
      mixName(std::move(mix_name))
{
}

} // namespace smtavf
