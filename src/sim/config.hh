/**
 * @file
 * Human-readable dumps of the simulated machine configuration (Table 1)
 * and the studied workloads (Table 2).
 */

#ifndef SMTAVF_SIM_CONFIG_HH
#define SMTAVF_SIM_CONFIG_HH

#include <string>

#include "core/machine_config.hh"

namespace smtavf
{

/** Render the paper's Table 1 for @p cfg. */
std::string table1String(const MachineConfig &cfg);

/** Render the paper's Table 2 (the workload-mix registry). */
std::string table2String();

} // namespace smtavf

#endif // SMTAVF_SIM_CONFIG_HH
