/**
 * @file
 * Experiment helpers shared by the bench harnesses and examples: run a
 * Table-2 mix under a policy, run single-thread baselines that replay an
 * SMT context's stream (the Figure 3/4 methodology), and the default
 * instruction budgets (the paper simulates 50/100/200M instructions for
 * 2/4/8 contexts; we scale that down by a constant factor, adjustable via
 * SMTAVF_SCALE).
 */

#ifndef SMTAVF_SIM_EXPERIMENT_HH
#define SMTAVF_SIM_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "metrics/metrics.hh"
#include "workload/mixes.hh"

namespace smtavf
{

/** Default instruction budget for a mix: 25k per context x SMTAVF_SCALE. */
std::uint64_t defaultBudget(unsigned contexts);

/** Table-1 configuration with @p contexts hardware threads. */
MachineConfig table1Config(unsigned contexts);

/** Run one mix to its default budget. */
SimResult runMix(const WorkloadMix &mix,
                 FetchPolicyKind policy = FetchPolicyKind::Icount,
                 std::uint64_t budget = 0);

/** Run one mix under an explicit configuration. */
SimResult runMix(const MachineConfig &cfg, const WorkloadMix &mix,
                 std::uint64_t budget = 0);

/**
 * Single-thread (superscalar) baseline for context @p tid of @p mix: a
 * 1-context machine replaying that context's exact stream for
 * @p instr_budget instructions (normally the count the context committed
 * in the SMT run, so the work matches).
 */
SimResult runSingleThreadBaseline(const MachineConfig &smt_cfg,
                                  const WorkloadMix &mix, ThreadId tid,
                                  std::uint64_t instr_budget);

/** Average AVF of a structure over several runs. */
double meanAvf(const std::vector<SimResult> &runs, HwStruct s);

/** Average IPC over several runs. */
double meanIpc(const std::vector<SimResult> &runs);

/** Mean and standard deviation of a sampled statistic. */
struct MeanStd
{
    double mean = 0.0;
    double std = 0.0;
};

/**
 * Run @p mix under @p replicas different seeds (cfg.seed, cfg.seed+1, ...)
 * for seed-robust statistics — the synthetic-workload analogue of the
 * paper's two workload groups per type.
 */
std::vector<SimResult> runMixReplicated(const MachineConfig &cfg,
                                        const WorkloadMix &mix,
                                        unsigned replicas,
                                        std::uint64_t budget = 0);

/** Mean/std of a structure's AVF over runs. */
MeanStd avfStats(const std::vector<SimResult> &runs, HwStruct s);

/** Mean/std of IPC over runs. */
MeanStd ipcStats(const std::vector<SimResult> &runs);

} // namespace smtavf

#endif // SMTAVF_SIM_EXPERIMENT_HH
