#include "sim/isolate.hh"

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <sstream>
#include <utility>

#include "base/rng.hh"
#include "sim/errors.hh"
#include "sim/journal.hh"

namespace smtavf
{

namespace
{

/**
 * Registry of children currently under supervision, so a hard-exit signal
 * handler can SIGKILL them all without taking any lock. Slots hold 0 when
 * free; registration is best-effort (an overflowing slot table only costs
 * kill coverage, never correctness).
 */
constexpr std::size_t kMaxLiveChildren = 256;
std::atomic<long> g_liveChildren[kMaxLiveChildren];

void
registerChild(pid_t pid)
{
    for (auto &slot : g_liveChildren) {
        long expected = 0;
        if (slot.compare_exchange_strong(expected, static_cast<long>(pid)))
            return;
    }
}

void
unregisterChild(pid_t pid)
{
    for (auto &slot : g_liveChildren) {
        long expected = static_cast<long>(pid);
        if (slot.compare_exchange_strong(expected, 0))
            return;
    }
}

/** Abbreviated name for the signals the taxonomy cares about. */
const char *
signalName(int sig)
{
    switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGXCPU: return "SIGXCPU";
    case SIGKILL: return "SIGKILL";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    default: return nullptr;
    }
}

/** write(2) the whole buffer, retrying on EINTR; best-effort. */
void
writeAll(int fd, const std::string &buf)
{
    std::size_t off = 0;
    while (off < buf.size()) {
        ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

/** Child-side sandbox: core dumps off, rlimits, die-with-supervisor. */
void
sandboxChild(const ChildLimits &limits)
{
#ifdef __linux__
    // Die with the supervisor: no orphaned simulations if the parent is
    // SIGKILLed (the chaos leg in tools/check.sh does exactly that).
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
    struct rlimit core_off = {0, 0};
    ::setrlimit(RLIMIT_CORE, &core_off);
    if (limits.cpuSeconds > 0) {
        // Hard limit one second above soft: SIGXCPU (classifiable) fires
        // first, SIGKILL only if the child somehow ignores it.
        struct rlimit r;
        r.rlim_cur = static_cast<rlim_t>(limits.cpuSeconds);
        r.rlim_max = static_cast<rlim_t>(limits.cpuSeconds + 1);
        ::setrlimit(RLIMIT_CPU, &r);
    }
    if (limits.memoryBytes > 0) {
        struct rlimit r;
        r.rlim_cur = static_cast<rlim_t>(limits.memoryBytes);
        r.rlim_max = static_cast<rlim_t>(limits.memoryBytes);
        ::setrlimit(RLIMIT_AS, &r);
    }
}

/**
 * Execute one run behind the child's exception boundary and encode the
 * result as a (tag, payload) pair — the unit both wire formats ship.
 * Tag "ok" carries a `run v3` journal record (hexfloat-exact + CRC);
 * every other tag carries the failure message.
 */
std::pair<std::string, std::string>
runOneTagged(const std::function<SimResult()> &fn)
{
    try {
        return {"ok", serializeRun(0, fn())};
    } catch (const CancelledError &e) {
        return {"cancelled", e.what()};
    } catch (const LivelockError &e) {
        return {"livelock", e.what()};
    } catch (const std::bad_alloc &) {
        return {"oom", "allocation failed under the child memory cap "
                       "(std::bad_alloc)"};
    } catch (const std::exception &e) {
        return {"error", e.what()};
    } catch (...) {
        return {"error", "unknown exception in isolated child"};
    }
}

/** Decode one (tag, payload) report back into a ChildOutcome. */
ChildOutcome
decodeTagged(const std::string &tag, std::string &&payload)
{
    ChildOutcome out;
    if (tag == "ok") {
        std::uint64_t fp = 0;
        if (parseRun(payload, fp, out.result)) {
            out.kind = ChildOutcome::Kind::Result;
            return out;
        }
        // Corrupted wire record (torn pipe write, bit flip): treat as
        // a crash so the retry machinery gets a second attempt.
        out.kind = ChildOutcome::Kind::Crash;
        out.crash = CrashKind::ExitCode;
        out.message = "child result failed the wire-format CRC check";
        return out;
    }
    out.message = std::move(payload);
    if (tag == "livelock") {
        out.kind = ChildOutcome::Kind::Livelock;
        return out;
    }
    if (tag == "cancelled") {
        out.kind = ChildOutcome::Kind::Cancelled;
        return out;
    }
    if (tag == "oom") {
        out.kind = ChildOutcome::Kind::Crash;
        out.crash = CrashKind::Oom;
        return out;
    }
    out.kind = ChildOutcome::Kind::Error;
    if (tag != "error")
        out.message = "unrecognized child protocol tag '" + tag + "'";
    return out;
}

/**
 * Child-side main: sandbox, run, report, _exit. Never returns and never
 * lets an exception escape — a throw out of here would unwind into the
 * forked copy of the parent's stack. The report travels as
 * `<tag>\n<payload>`.
 */
[[noreturn]] void
childMain(const std::function<SimResult()> &fn, const ChildLimits &limits,
          int fd)
{
    sandboxChild(limits);
    auto [tag, payload] = runOneTagged(fn);
    writeAll(fd, tag + "\n" + payload);
    ::close(fd);
    // _exit, not exit: the child must not run the parent's atexit
    // handlers or flush duplicated stdio buffers.
    ::_exit(0);
}

/**
 * Batched child main: the framed `run v3`-over-pipe protocol. Before
 * each run the child announces `start <k>\n` — the breadcrumb the
 * supervisor uses to attribute a death — and after it writes a
 * self-delimiting `<tag> <k> <len>\n<payload>` frame. Frames land on
 * the pipe as runs complete, so everything finished before a crash is
 * already with the supervisor.
 */
[[noreturn]] void
childBatchMain(std::size_t n, const std::function<SimResult(std::size_t)> &fn,
               const ChildLimits &limits, int fd)
{
    sandboxChild(limits);
    for (std::size_t k = 0; k < n; ++k) {
        char marker[32];
        std::snprintf(marker, sizeof(marker), "start %zu\n", k);
        writeAll(fd, marker);

        auto [tag, payload] = runOneTagged([&] { return fn(k); });
        char head[64];
        std::snprintf(head, sizeof(head), "%s %zu %zu\n", tag.c_str(), k,
                      payload.size());
        writeAll(fd, head + payload);
    }
    ::close(fd);
    ::_exit(0);
}

/** What the supervision loop hands back for classification. */
struct Supervised
{
    std::string buf;         ///< everything the child wrote before EOF
    int status = 0;          ///< waitpid status
    bool supervisorKilled = false;
    bool cancelKilled = false;
};

/**
 * Drain the child's pipe until EOF, enforcing the wall-clock deadline
 * and the cancel flag with SIGKILL, then reap. Shared by the single-run
 * and batched supervisors.
 */
Supervised
superviseChild(pid_t pid, int rfd, const ChildLimits &limits,
               double deadline_seconds)
{
    Supervised sup;
    using clock = std::chrono::steady_clock;
    const bool have_deadline = deadline_seconds > 0.0;
    const auto deadline =
        clock::now() + std::chrono::duration_cast<clock::duration>(
                           std::chrono::duration<double>(
                               have_deadline ? deadline_seconds : 0.0));

    for (bool eof = false; !eof;) {
        struct pollfd pfd;
        pfd.fd = rfd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        // Finite poll granularity only when there is something to watch
        // besides the pipe; otherwise block until the child speaks/dies.
        int timeout_ms = (have_deadline || limits.cancel) &&
                                 !sup.supervisorKilled
                             ? 50
                             : -1;
        int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break; // poll failure: fall through to reap + classify
        }
        if (rc > 0) {
            char tmp[4096];
            ssize_t n = ::read(rfd, tmp, sizeof tmp);
            if (n > 0)
                sup.buf.append(tmp, static_cast<std::size_t>(n));
            else if (n == 0)
                eof = true;
            else if (errno != EINTR)
                break;
        }
        if (!sup.supervisorKilled) {
            if (limits.cancel &&
                limits.cancel->load(std::memory_order_relaxed)) {
                ::kill(pid, SIGKILL);
                sup.supervisorKilled = sup.cancelKilled = true;
            } else if (have_deadline && clock::now() >= deadline) {
                ::kill(pid, SIGKILL);
                sup.supervisorKilled = true;
            }
        }
    }
    ::close(rfd);

    while (::waitpid(pid, &sup.status, 0) < 0 && errno == EINTR) {
    }
    unregisterChild(pid);
    return sup;
}

} // namespace

const char *
isolateModeName(IsolateMode m)
{
    return m == IsolateMode::Process ? "process" : "thread";
}

bool
parseIsolateMode(const std::string &name, IsolateMode &out)
{
    std::string low;
    for (char c : name)
        low.push_back(static_cast<char>(
            c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
    if (low == "thread") {
        out = IsolateMode::Thread;
        return true;
    }
    if (low == "process") {
        out = IsolateMode::Process;
        return true;
    }
    return false;
}

const char *
crashKindName(CrashKind k)
{
    switch (k) {
    case CrashKind::None: return "none";
    case CrashKind::ExitCode: return "exit-code";
    case CrashKind::Segv: return "segv";
    case CrashKind::Abort: return "abort";
    case CrashKind::Bus: return "bus";
    case CrashKind::CpuLimit: return "cpu-limit";
    case CrashKind::Oom: return "oom";
    case CrashKind::HardTimeout: return "hard-timeout";
    case CrashKind::Signal: return "signal";
    }
    return "none";
}

CrashKind
classifyWaitStatus(int wait_status, bool supervisor_killed)
{
    if (WIFEXITED(wait_status))
        return CrashKind::ExitCode;
    if (WIFSIGNALED(wait_status)) {
        switch (WTERMSIG(wait_status)) {
        case SIGSEGV: return CrashKind::Segv;
        case SIGABRT: return CrashKind::Abort;
        case SIGBUS: return CrashKind::Bus;
        case SIGXCPU: return CrashKind::CpuLimit;
        // A SIGKILL the supervisor did not send is, in practice, the
        // kernel OOM killer (or RLIMIT_CPU's hard stop — same remedy).
        case SIGKILL:
            return supervisor_killed ? CrashKind::HardTimeout
                                     : CrashKind::Oom;
        default: return CrashKind::Signal;
        }
    }
    return CrashKind::Signal;
}

std::string
describeChildDeath(int wait_status, bool supervisor_killed)
{
    std::ostringstream os;
    if (WIFEXITED(wait_status)) {
        os << "child exited with code " << WEXITSTATUS(wait_status);
        if (WEXITSTATUS(wait_status) == 0)
            os << " without a result";
        return os.str();
    }
    int sig = WIFSIGNALED(wait_status) ? WTERMSIG(wait_status) : 0;
    os << "child killed by signal " << sig;
    if (const char *name = signalName(sig))
        os << " (" << name << ")";
    switch (classifyWaitStatus(wait_status, supervisor_killed)) {
    case CrashKind::CpuLimit:
        os << ": CPU rlimit exceeded";
        break;
    case CrashKind::HardTimeout:
        os << ": hard timeout, killed by supervisor";
        break;
    case CrashKind::Oom:
        if (sig == SIGKILL)
            os << ": unsolicited SIGKILL (likely the kernel OOM killer)";
        break;
    default:
        break;
    }
    return os.str();
}

ChildOutcome
runInChild(const std::function<SimResult()> &fn, const ChildLimits &limits)
{
    ChildOutcome out;

    int fds[2];
    if (::pipe(fds) != 0) {
        out.kind = ChildOutcome::Kind::Error;
        out.message = "pipe() failed for isolated child";
        return out;
    }

    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        out.kind = ChildOutcome::Kind::Error;
        out.message = "fork() failed for isolated child";
        return out;
    }
    if (pid == 0) {
        ::close(fds[0]);
        childMain(fn, limits, fds[1]); // never returns
    }
    ::close(fds[1]);
    registerChild(pid);

    Supervised sup =
        superviseChild(pid, fds[0], limits, limits.hardTimeoutSeconds);

    if (WIFEXITED(sup.status) && WEXITSTATUS(sup.status) == 0 &&
        !sup.buf.empty()) {
        auto nl = sup.buf.find('\n');
        std::string tag = sup.buf.substr(0, nl);
        std::string payload = nl == std::string::npos
                                  ? std::string()
                                  : sup.buf.substr(nl + 1);
        return decodeTagged(tag, std::move(payload));
    }

    if (sup.cancelKilled) {
        out.kind = ChildOutcome::Kind::Cancelled;
        out.message = "child killed by supervisor: campaign cancelled";
        return out;
    }
    out.kind = ChildOutcome::Kind::Crash;
    out.crash = classifyWaitStatus(sup.status, sup.supervisorKilled);
    out.message = describeChildDeath(sup.status, sup.supervisorKilled);
    return out;
}

ChildBatchOutcome
runBatchInChild(std::size_t n, const std::function<SimResult(std::size_t)> &fn,
                const ChildLimits &limits)
{
    ChildBatchOutcome out;
    out.runs.resize(n);
    out.reported.assign(n, 0);
    if (n == 0)
        return out;

    int fds[2];
    if (::pipe(fds) != 0) {
        out.childDied = true;
        out.crash = CrashKind::ExitCode;
        out.crashMessage = "pipe() failed for isolated child";
        return out;
    }
    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        out.childDied = true;
        out.crash = CrashKind::ExitCode;
        out.crashMessage = "fork() failed for isolated child";
        return out;
    }
    if (pid == 0) {
        ::close(fds[0]);
        childBatchMain(n, fn, limits, fds[1]); // never returns
    }
    ::close(fds[1]);
    registerChild(pid);

    // The supervisor cannot observe per-run boundaries reliably enough
    // to re-arm a per-run deadline (frames can sit in the pipe buffer),
    // so the hard wall-clock budget scales with the batch size.
    Supervised sup = superviseChild(
        pid, fds[0], limits,
        limits.hardTimeoutSeconds * static_cast<double>(n));

    // Parse whatever frames made it out. Runs execute in order, so the
    // last `start` without a completed frame is the in-flight run; a
    // torn trailing frame counts as in-flight too (its payload cannot
    // be trusted without the full CRC-covered record).
    std::size_t pos = 0;
    std::size_t started = ChildBatchOutcome::npos;
    while (pos < sup.buf.size()) {
        std::size_t nl = sup.buf.find('\n', pos);
        if (nl == std::string::npos)
            break; // torn marker/header line
        std::string line = sup.buf.substr(pos, nl - pos);
        if (line.compare(0, 6, "start ") == 0) {
            char *end = nullptr;
            unsigned long long k = std::strtoull(line.c_str() + 6, &end, 10);
            if (!end || *end != '\0' || k >= n)
                break; // corrupted marker: stop trusting the stream
            started = static_cast<std::size_t>(k);
            pos = nl + 1;
            continue;
        }
        // "<tag> <k> <len>" header.
        std::istringstream hdr(line);
        std::string tag;
        std::size_t k = 0, len = 0;
        if (!(hdr >> tag >> k >> len) || k >= n)
            break;
        if (nl + 1 + len > sup.buf.size())
            break; // torn payload
        out.runs[k] = decodeTagged(tag, sup.buf.substr(nl + 1, len));
        out.reported[k] = 1;
        if (k == started)
            started = ChildBatchOutcome::npos;
        pos = nl + 1 + len;
    }
    out.inFlight = started;

    if (out.allReported())
        return out; // clean batch; the child's exit status is moot

    out.childDied = true;
    if (sup.cancelKilled) {
        out.cancelled = true;
        out.crashMessage = "child killed by supervisor: campaign cancelled";
        return out;
    }
    out.crash = classifyWaitStatus(sup.status, sup.supervisorKilled);
    out.crashMessage = describeChildDeath(sup.status, sup.supervisorKilled);
    return out;
}

void
killLiveChildren()
{
    for (auto &slot : g_liveChildren) {
        long pid = slot.load(std::memory_order_relaxed);
        if (pid > 0)
            ::kill(static_cast<pid_t>(pid), SIGKILL);
    }
}

double
retryBackoffSeconds(unsigned attempt, std::uint64_t seed, double base)
{
    if (attempt == 0 || base <= 0.0)
        return 0.0;
    unsigned exp = attempt - 1 < 16 ? attempt - 1 : 16;
    // 53 high bits of the split seed -> uniform jitter in [0, 1).
    double jitter =
        static_cast<double>(splitSeed(seed, attempt) >> 11) * 0x1.0p-53;
    return base * static_cast<double>(1u << exp) * (1.0 + jitter);
}

} // namespace smtavf
