#include "sim/journal.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "base/logging.hh"

namespace smtavf
{

namespace
{

std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/** Append the exact (bit-preserving) textual form of a double. */
void
appendHexDouble(std::string &out, double v)
{
    char buf[64];
    out.append(buf, static_cast<std::size_t>(
                        std::snprintf(buf, sizeof(buf), "%a", v)));
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[24];
    out.append(buf, static_cast<std::size_t>(
                        std::snprintf(buf, sizeof(buf), "%" PRIu64, v)));
}

/** Parse a hexfloat (or any strtod-acceptable) token completely. */
bool
parseDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end && *end == '\0';
}

bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return end && *end == '\0';
}

bool
parseHex64(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 16);
    return end && *end == '\0';
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

void
fpField(std::ostringstream &os, const char *key, std::uint64_t value)
{
    os << key << '=' << value << '|';
}

void
fpField(std::ostringstream &os, const char *key, const std::string &value)
{
    os << key << '=' << value << '|';
}

void
fpCache(std::ostringstream &os, const CacheConfig &c)
{
    fpField(os, "size", c.sizeBytes);
    fpField(os, "ways", c.ways);
    fpField(os, "line", c.lineBytes);
    fpField(os, "lat", c.latency);
    fpField(os, "ports", c.ports);
}

void
fpTlb(std::ostringstream &os, const TlbConfig &t)
{
    fpField(os, "entries", t.entries);
    fpField(os, "ways", t.ways);
    fpField(os, "page", t.pageBytes);
    fpField(os, "penalty", t.missPenalty);
}

/** "key=value" accessor over one space-separated token. */
bool
tokenValue(const std::string &tok, const char *key, std::string &out)
{
    std::size_t klen = std::strlen(key);
    if (tok.size() < klen + 1 || tok.compare(0, klen, key) != 0 ||
        tok[klen] != '=')
        return false;
    out = tok.substr(klen + 1);
    return true;
}

/** Workload identity: mix, policy, seed (label is presentation only). */
void
fpWorkload(std::ostringstream &os, const MachineConfig &c,
           const WorkloadMix &mix)
{
    fpField(os, "mix", mix.name);
    for (const auto &b : mix.benchmarks)
        fpField(os, "bench", b);
    fpField(os, "policy", fetchPolicyName(c.fetchPolicy));
    // The PRAT knobs steer its throttle decisions (result-affecting), but
    // only when PRAT is the active policy — gated so retuning them never
    // orphans journals of other policies, and so every pre-PRAT journal
    // fingerprints byte-identically.
    if (c.fetchPolicy == FetchPolicyKind::PRat) {
        fpField(os, "pratEpoch", c.pratEpoch);
        fpField(os, "pratCap", c.pratCap);
    }
    fpField(os, "seed", c.seed);
}

/**
 * Every MachineConfig field that can change a SimResult, minus the
 * protection assignment (streamed separately — warmup checkpoints are
 * protection-agnostic). The robustness knobs (livelockCycles,
 * invariantCheckCycles, the cancel poll) only decide whether a run
 * *finishes*, never what it computes, and are excluded so a journal
 * written with checking on replays with checking off.
 */
void
fpMachine(std::ostringstream &os, const MachineConfig &c)
{
    fpField(os, "contexts", c.contexts);
    fpField(os, "fetchW", c.fetchWidth);
    fpField(os, "decodeW", c.decodeWidth);
    fpField(os, "issueW", c.issueWidth);
    fpField(os, "commitW", c.commitWidth);
    fpField(os, "fetchThreads", c.fetchThreadsPerCycle);
    fpField(os, "frontLat", c.frontLatency);
    fpField(os, "fetchQ", c.fetchQueueSize);
    fpField(os, "iq", c.iqSize);
    fpField(os, "rob", c.robSize);
    fpField(os, "lsq", c.lsqSize);
    fpField(os, "iqPart", c.iqPartitioned ? 1 : 0);
    fpField(os, "intRegs", c.intPhysRegs);
    fpField(os, "fpRegs", c.fpPhysRegs);

    fpField(os, "fu.intAlu", c.fu.intAlu);
    fpField(os, "fu.intMulDiv", c.fu.intMulDiv);
    fpField(os, "fu.memPorts", c.fu.memPorts);
    fpField(os, "fu.fpAlu", c.fu.fpAlu);
    fpField(os, "fu.fpMulDiv", c.fu.fpMulDiv);

    fpField(os, "br.gshare", c.branch.gshareEntries);
    fpField(os, "br.hist", c.branch.historyBits);
    fpField(os, "br.btb", c.branch.btbEntries);
    fpField(os, "br.btbWays", c.branch.btbWays);
    fpField(os, "br.ras", c.branch.rasEntries);

    fpCache(os, c.mem.il1);
    fpCache(os, c.mem.dl1);
    fpCache(os, c.mem.l2);
    fpTlb(os, c.mem.itlb);
    fpTlb(os, c.mem.dtlb);
    fpField(os, "memLat", c.mem.memLatency);

    fpField(os, "prewarm", c.prewarmCaches ? 1 : 0);
    fpField(os, "avf.dead", c.avf.deadCodeAnalysis ? 1 : 0);
    fpField(os, "avf.wrongPath", c.avf.wrongPathModel ? 1 : 0);
    fpField(os, "avf.perByte", c.avf.perByteCacheAvf ? 1 : 0);
    fpField(os, "avf.allocWin", c.avf.regAllocWindowUnace ? 1 : 0);
    fpField(os, "avf.l2", c.avf.trackL2Avf ? 1 : 0);
    fpField(os, "avfSample", c.avfSampleCycles);
    fpField(os, "trace", c.recordCommitTrace ? 1 : 0);
}

/**
 * Protection changes residual AVF (part of the SimResult), so it is
 * result-affecting. A scrub interval only matters for a structure that
 * actually scrubs, and is excluded otherwise so that retuning an
 * unused knob does not orphan a journal. The *effective* per-structure
 * interval is fingerprinted, so moving a structure between the global
 * period and an equal override changes nothing, while any change that
 * alters its coverage forces a re-run.
 */
void
fpProtection(std::ostringstream &os, const MachineConfig &c)
{
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        fpField(os, hwStructKey(s),
                protSchemeName(c.protection.schemeFor(s)));
        if (c.protection.schemeFor(s) == ProtScheme::SecdedScrub)
            fpField(os, "scrub", c.protection.scrubIntervalFor(s));
    }
}

} // namespace

std::uint32_t
crc32c(const char *data, std::size_t size)
{
    // Reflected CRC-32C table, built once (Castagnoli polynomial
    // 0x1EDC6F41, reflected 0x82F63B78 — the iSCSI/SSE4.2 CRC).
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i) {
        auto byte = static_cast<unsigned char>(data[i]);
        crc = table[(crc ^ byte) & 0xffu] ^ (crc >> 8);
    }
    return crc ^ 0xffffffffu;
}

std::uint32_t
crc32c(const std::string &text)
{
    return crc32c(text.data(), text.size());
}

std::uint64_t
experimentFingerprint(const Experiment &e)
{
    std::ostringstream os;

    // Workload identity first (the label is presentation only and
    // excluded), then the resolved budget — so "default" and an explicit
    // equal budget fingerprint identically — then every result-affecting
    // machine field. The field order matches the pre-warmup format
    // exactly for warmup == 0 experiments, so existing journals replay.
    fpWorkload(os, e.cfg, e.mix);
    fpField(os, "budget",
            e.budget ? e.budget : defaultBudget(e.mix.contexts));
    fpMachine(os, e.cfg);
    fpProtection(os, e.cfg);

    // A warmed-up run measures a different window, and the window is
    // exactly characterized by the warmup checkpoint it (conceptually)
    // forks from — fold that checkpoint's fingerprint in so resume
    // invalidates whenever the warmup changes.
    if (e.warmup) {
        fpField(os, "warmup", e.warmup);
        fpField(os, "warmupCk",
                checkpointFingerprint(e.cfg, e.mix, e.warmup, true));
    }

    return fnv1a(os.str());
}

std::uint64_t
checkpointFingerprint(const MachineConfig &cfg, const WorkloadMix &mix,
                      std::uint64_t warmup_instrs, bool warmup_boundary)
{
    std::ostringstream os;
    // No budget field: the state at instruction N is a prefix of a run
    // of any budget. The leading kind tag keeps the string disjoint
    // from every experimentFingerprint() input.
    fpField(os, "kind", warmup_boundary ? "warmup-ckpt" : "ckpt");
    fpWorkload(os, cfg, mix);
    fpField(os, "at", warmup_instrs);
    fpMachine(os, cfg);
    // Protection never perturbs timing (an accounting overlay), and a
    // warmup-boundary capture resets the ledger tallies it would have
    // split — so a warmup checkpoint is byte-reusable across candidate
    // schemes and its fingerprint must not depend on them. A mid-run
    // checkpoint carries accumulated split tallies and is not. PRAT is
    // the one exception on both counts: its throttle reads the
    // assignment, making protection timing-affecting, so even a
    // warmup-boundary capture is protection-specific under PRAT.
    if (!warmup_boundary || cfg.fetchPolicy == FetchPolicyKind::PRat)
        fpProtection(os, cfg);
    return fnv1a(os.str());
}

void
serializeRunTo(std::string &out, std::uint64_t fingerprint,
               const SimResult &r)
{
    // Fixed-width CRC header placeholder, patched in place once the
    // payload is complete — the record is built directly in the caller's
    // buffer, so repeated serialization reuses its capacity.
    out.clear();
    out += "run v3 crc=00000000 ";
    const std::size_t payload_at = out.size();

    char fp[32];
    out.append(fp, static_cast<std::size_t>(std::snprintf(
                       fp, sizeof(fp), "fp=%016" PRIx64, fingerprint)));
    out += " mix=";
    out += r.mixName;
    out += " policy=";
    out += r.policyName;
    out += " cycles=";
    appendU64(out, r.cycles);
    out += " committed=";
    appendU64(out, r.totalCommitted);
    out += " ipc=";
    appendHexDouble(out, r.ipc);

    out += " threads=";
    for (std::size_t t = 0; t < r.threads.size(); ++t) {
        if (t)
            out += ';';
        out += r.threads[t].benchmark;
        out += ',';
        appendU64(out, r.threads[t].committed);
        out += ',';
        appendHexDouble(out, r.threads[t].ipc);
    }

    // All numHwStructs rows, zero or not, so the parser never guesses.
    out += " avf=";
    const unsigned nt = r.avf.numThreads();
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        if (i)
            out += ';';
        appendHexDouble(out, r.avf.avf(s));
        out += ':';
        appendHexDouble(out, r.avf.occupancy(s));
        out += ':';
        appendHexDouble(out, r.avf.residualAvf(s));
        out += ':';
        for (unsigned t = 0; t < nt; ++t) {
            if (t)
                out += ',';
            appendHexDouble(out, r.avf.threadAvf(s, static_cast<ThreadId>(t)));
        }
    }

    out += " stats=";
    bool first = true;
    for (const auto &[name, value] : r.stats.all()) {
        if (!first)
            out += ';';
        out += name;
        out += '=';
        appendHexDouble(out, value);
        first = false;
    }

    // The checksum covers the payload exactly as written after the
    // "crc=XXXXXXXX " token, so any flipped byte breaks verification.
    char crc_text[16];
    std::snprintf(crc_text, sizeof(crc_text), "%08x",
                  crc32c(out.data() + payload_at, out.size() - payload_at));
    out.replace(payload_at - 9, 8, crc_text, 8);
}

std::string
serializeRun(std::uint64_t fingerprint, const SimResult &r)
{
    std::string out;
    serializeRunTo(out, fingerprint, r);
    return out;
}

bool
parseRun(const std::string &line, std::uint64_t &fingerprint, SimResult &r)
{
    auto tokens = split(line, ' ');
    if (tokens.size() < 2 || tokens[0] != "run")
        return false;

    // v3 carries a CRC32C over everything after its token; v2 (pre-CRC)
    // is still accepted so old journals keep replaying.
    std::size_t base = 0;
    if (tokens[1] == "v2" && tokens.size() == 11) {
        base = 2;
    } else if (tokens[1] == "v3" && tokens.size() == 12) {
        std::string crc_text;
        if (!tokenValue(tokens[2], "crc", crc_text) || crc_text.size() != 8)
            return false;
        std::uint64_t want = 0;
        if (!parseHex64(crc_text, want))
            return false;
        std::size_t payload_at =
            tokens[0].size() + tokens[1].size() + tokens[2].size() + 3;
        if (crc32c(line.data() + payload_at, line.size() - payload_at) !=
            want)
            return false;
        base = 3;
    } else {
        return false;
    }

    auto value_of = [&](std::size_t i, const char *key,
                        std::string &out) -> bool {
        return tokenValue(tokens[base + i], key, out);
    };

    std::string fp, mix, policy, cycles, committed, ipc, threads, avf, stats;
    if (!value_of(0, "fp", fp) || !value_of(1, "mix", mix) ||
        !value_of(2, "policy", policy) || !value_of(3, "cycles", cycles) ||
        !value_of(4, "committed", committed) || !value_of(5, "ipc", ipc) ||
        !value_of(6, "threads", threads) || !value_of(7, "avf", avf) ||
        !value_of(8, "stats", stats)) // "stats=" alone is valid (empty map)
        return false;

    SimResult out;
    out.mixName = mix;
    out.policyName = policy;
    std::uint64_t u = 0;
    if (!parseHex64(fp, fingerprint))
        return false;
    if (!parseU64(cycles, u))
        return false;
    out.cycles = u;
    if (!parseU64(committed, out.totalCommitted))
        return false;
    if (!parseDouble(ipc, out.ipc))
        return false;

    for (const auto &entry : split(threads, ';')) {
        auto fields = split(entry, ',');
        if (fields.size() != 3)
            return false;
        ThreadPerf tp;
        tp.benchmark = fields[0];
        if (!parseU64(fields[1], tp.committed))
            return false;
        if (!parseDouble(fields[2], tp.ipc))
            return false;
        out.threads.push_back(std::move(tp));
    }
    if (out.threads.empty() || out.threads.size() > maxContexts)
        return false;

    auto rows = split(avf, ';');
    if (rows.size() != numHwStructs)
        return false;
    std::array<double, numHwStructs> avf_arr{};
    std::array<double, numHwStructs> occ_arr{};
    std::array<double, numHwStructs> residual_arr{};
    std::array<std::array<double, maxContexts>, numHwStructs> thread_arr{};
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto cols = split(rows[i], ':');
        if (cols.size() != 4)
            return false;
        if (!parseDouble(cols[0], avf_arr[i]))
            return false;
        if (!parseDouble(cols[1], occ_arr[i]))
            return false;
        if (!parseDouble(cols[2], residual_arr[i]))
            return false;
        auto per_thread = split(cols[3], ',');
        if (per_thread.size() != out.threads.size())
            return false;
        for (std::size_t t = 0; t < per_thread.size(); ++t)
            if (!parseDouble(per_thread[t], thread_arr[i][t]))
                return false;
    }
    out.avf = AvfReport::restore(
        static_cast<unsigned>(out.threads.size()), out.cycles, avf_arr,
        occ_arr, residual_arr, thread_arr);

    if (!stats.empty()) {
        for (const auto &entry : split(stats, ';')) {
            auto eq = entry.find('=');
            if (eq == std::string::npos || eq == 0)
                return false;
            double value = 0.0;
            if (!parseDouble(entry.substr(eq + 1), value))
                return false;
            out.stats.set(entry.substr(0, eq), value);
        }
    }

    r = std::move(out);
    return true;
}

RunJournal::RunJournal(std::string path) : path_(std::move(path))
{
    // O_APPEND makes each write(2) land atomically at the current end of
    // file, even with several supervisors appending to one journal; a
    // record is assembled fully before the single write, so a dying
    // process can never leave half a line.
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0)
        SMTAVF_FATAL("cannot open journal ", path_, ": ",
                     std::strerror(errno));
    // A header comment per session makes interrupted-and-resumed files
    // self-describing without affecting the loader.
    struct stat st{};
    if (::fstat(fd_, &st) == 0 && st.st_size == 0)
        writeLine("# smtavf campaign journal v3");
}

RunJournal::~RunJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
RunJournal::writeBytes(const char *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        ssize_t n = ::write(fd_, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            SMTAVF_FATAL("journal write to ", path_, " failed: ",
                         std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
}

void
RunJournal::writeLine(const std::string &line)
{
    scratch_.assign(line);
    scratch_ += '\n';
    writeBytes(scratch_.data(), scratch_.size());
}

void
RunJournal::append(std::uint64_t fingerprint, const SimResult &r)
{
    // Serialize straight into the retained scratch buffer and land the
    // whole record with one O_APPEND write(2): after the first few
    // appends have grown the buffer, the steady-state cost per record is
    // zero allocations plus the syscall.
    std::lock_guard<std::mutex> lock(mutex_);
    serializeRunTo(scratch_, fingerprint, r);
    scratch_ += '\n';
    writeBytes(scratch_.data(), scratch_.size());
}

void
RunJournal::comment(const std::string &text)
{
    if (text.find('\n') != std::string::npos)
        SMTAVF_FATAL("journal comment with embedded newline: ", text);
    std::lock_guard<std::mutex> lock(mutex_);
    writeLine("# " + text);
}

std::unordered_map<std::uint64_t, SimResult>
loadJournal(const std::string &path, std::size_t *skipped)
{
    std::unordered_map<std::uint64_t, SimResult> out;
    std::size_t bad = 0;
    std::ifstream in(path);
    if (in) {
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            std::uint64_t fp = 0;
            SimResult r;
            if (parseRun(line, fp, r))
                out[fp] = std::move(r);
            else
                ++bad; // torn tail from a crash, bit flips, hand edits
        }
    }
    if (skipped)
        *skipped = bad;
    return out;
}

JournalFsck
fsckJournal(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        SMTAVF_FATAL("cannot read journal ", path);

    JournalFsck fsck;
    std::size_t line_no = 0;
    std::uint64_t offset = 0;
    // Line index of the last *valid* record/comment — used to decide
    // whether the damage is confined to a truncatable tail.
    std::size_t last_issue_after_valid = 0;

    // Streamed line by line: journals grow a record per completed run
    // and merge-scale files reach many MB, so the audit holds one line,
    // never the file. getline() strips the '\n'; reaching EOF while the
    // line still extracted bytes is the no-trailing-newline (torn tail)
    // signature.
    std::string line;
    std::uint64_t next_offset = 0;
    while (std::getline(in, line)) {
        const bool torn_eof = in.eof();
        ++line_no;
        offset = next_offset;
        next_offset += line.size() + (torn_eof ? 0 : 1);

        if (line.empty() || line[0] == '#') {
            ++fsck.comments;
            if (!fsck.issues.empty())
                last_issue_after_valid = fsck.issues.size();
        } else {
            std::uint64_t fp = 0;
            SimResult r;
            if (parseRun(line, fp, r)) {
                ++fsck.records;
                if (!fsck.issues.empty())
                    last_issue_after_valid = fsck.issues.size();
            } else {
                JournalIssue issue;
                issue.line = line_no;
                issue.offset = offset;
                if (torn_eof) {
                    issue.reason = "torn record (no trailing newline)";
                } else {
                    // Distinguish a checksum failure (structure intact,
                    // bytes flipped) from structural damage.
                    auto tokens = split(line, ' ');
                    bool v3_shape = tokens.size() == 12 &&
                                    tokens[0] == "run" && tokens[1] == "v3";
                    std::string crc_text;
                    if (v3_shape &&
                        tokenValue(tokens[2], "crc", crc_text) &&
                        crc_text.size() == 8) {
                        std::size_t payload_at = tokens[0].size() +
                                                 tokens[1].size() +
                                                 tokens[2].size() + 3;
                        std::uint64_t want = 0;
                        if (parseHex64(crc_text, want) &&
                            crc32c(line.data() + payload_at,
                                   line.size() - payload_at) != want) {
                            issue.reason = "bad CRC (bit flip or torn "
                                           "write)";
                        }
                    }
                    if (issue.reason.empty())
                        issue.reason = "malformed record";
                }
                fsck.issues.push_back(std::move(issue));
            }
        }
    }

    // The damage is a pure tail when nothing valid follows the first bad
    // line: truncating there recovers every record before it.
    if (!fsck.issues.empty() && last_issue_after_valid == 0) {
        fsck.tailOnly = true;
        fsck.truncateOffset = fsck.issues.front().offset;
    }
    return fsck;
}

bool
repairJournalTail(const std::string &path, const JournalFsck &fsck)
{
    if (fsck.clean() || !fsck.tailOnly)
        return false;
    if (::truncate(path.c_str(), static_cast<off_t>(fsck.truncateOffset)) !=
        0)
        SMTAVF_FATAL("cannot truncate journal ", path, ": ",
                     std::strerror(errno));
    return true;
}

std::size_t
mergeJournals(const std::vector<std::string> &inputs,
              const std::string &out_path,
              std::vector<std::string> *corruption)
{
    /** Where a fingerprint's winning record lives in its source file. */
    struct Loc
    {
        std::size_t file;     ///< index into inputs
        std::uint64_t offset; ///< first byte of the record line
        std::size_t size;     ///< line length, '\n' excluded
    };

    // Pass 1 — index. Full integrity audit first: merging is the one
    // place where a silently-dropped record poisons downstream analysis
    // (the merged journal claims to be the whole campaign), so unlike
    // resume — which re-simulates whatever a torn tail lost — merge
    // refuses. Then record only (file, offset, length) per fingerprint:
    // merging many-MB shard journals holds an index, never their
    // contents. The ordered map gives byte-deterministic output
    // independent of shard completion order; first occurrence wins (the
    // determinism contract guarantees duplicates carry equal bytes).
    std::map<std::uint64_t, Loc> records;
    std::vector<std::string> damaged;
    for (std::size_t f = 0; f < inputs.size(); ++f) {
        const auto &path = inputs[f];
        auto fsck = fsckJournal(path); // fatal when unreadable
        for (const auto &issue : fsck.issues) {
            std::ostringstream os;
            os << path << ":line " << issue.line << " @ byte "
               << issue.offset << ": " << issue.reason;
            damaged.push_back(os.str());
        }
        if (!fsck.clean())
            continue;

        std::ifstream in(path, std::ios::binary);
        std::string line;
        std::uint64_t offset = 0;
        while (std::getline(in, line)) {
            const std::uint64_t at = offset;
            offset += line.size() + (in.eof() ? 0 : 1);
            if (line.empty() || line[0] == '#')
                continue;
            std::uint64_t fp = 0;
            SimResult r;
            if (!parseRun(line, fp, r))
                continue; // unreachable: fsck was clean
            records.emplace(fp, Loc{f, at, line.size()});
        }
    }

    if (!damaged.empty()) {
        if (!corruption)
            SMTAVF_FATAL("refusing to merge corrupt journal: ", damaged[0],
                         damaged.size() > 1 ? " (and more)" : "");
        *corruption = std::move(damaged);
        return 0;
    }

    // Pass 2 — copy. Stream each winning record's raw bytes from its
    // source into the output, fingerprint-sorted: raw lines round-trip
    // exactly (hexfloat doubles), so re-serializing would be pointless
    // risk, and v2 records keep their original format.
    std::ofstream out(out_path, std::ios::trunc | std::ios::binary);
    if (!out)
        SMTAVF_FATAL("cannot write journal ", out_path);
    std::vector<std::ifstream> sources;
    sources.reserve(inputs.size());
    for (const auto &path : inputs)
        sources.emplace_back(path, std::ios::binary);
    std::string buf;
    for (const auto &[fp, loc] : records) {
        std::ifstream &src = sources[loc.file];
        buf.resize(loc.size);
        src.clear();
        src.seekg(static_cast<std::streamoff>(loc.offset));
        if (!src.read(buf.data(), static_cast<std::streamsize>(loc.size)))
            SMTAVF_FATAL("journal ", inputs[loc.file],
                         " changed while being merged");
        out << buf << '\n';
    }
    out.flush();
    if (!out)
        SMTAVF_FATAL("failed writing journal ", out_path);
    return records.size();
}

} // namespace smtavf
