#include "sim/journal.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "base/logging.hh"

namespace smtavf
{

namespace
{

std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/** Exact (bit-preserving) textual form of a double. */
std::string
hexDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/** Parse a hexfloat (or any strtod-acceptable) token completely. */
bool
parseDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end && *end == '\0';
}

bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return end && *end == '\0';
}

bool
parseHex64(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 16);
    return end && *end == '\0';
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

void
fpField(std::ostringstream &os, const char *key, std::uint64_t value)
{
    os << key << '=' << value << '|';
}

void
fpField(std::ostringstream &os, const char *key, const std::string &value)
{
    os << key << '=' << value << '|';
}

void
fpCache(std::ostringstream &os, const CacheConfig &c)
{
    fpField(os, "size", c.sizeBytes);
    fpField(os, "ways", c.ways);
    fpField(os, "line", c.lineBytes);
    fpField(os, "lat", c.latency);
    fpField(os, "ports", c.ports);
}

void
fpTlb(std::ostringstream &os, const TlbConfig &t)
{
    fpField(os, "entries", t.entries);
    fpField(os, "ways", t.ways);
    fpField(os, "page", t.pageBytes);
    fpField(os, "penalty", t.missPenalty);
}

} // namespace

std::uint64_t
experimentFingerprint(const Experiment &e)
{
    const MachineConfig &c = e.cfg;
    std::ostringstream os;

    // Workload identity. The label is presentation only and excluded;
    // the budget is resolved so "default" and an explicit equal budget
    // fingerprint identically.
    fpField(os, "mix", e.mix.name);
    for (const auto &b : e.mix.benchmarks)
        fpField(os, "bench", b);
    fpField(os, "policy", fetchPolicyName(c.fetchPolicy));
    fpField(os, "seed", c.seed);
    fpField(os, "budget",
            e.budget ? e.budget : defaultBudget(e.mix.contexts));

    // Every MachineConfig field that can change a SimResult. The
    // robustness knobs (livelockCycles, invariantCheckCycles) only decide
    // whether a run *finishes*, never what it computes, and are excluded
    // so a journal written with checking on replays with checking off.
    fpField(os, "contexts", c.contexts);
    fpField(os, "fetchW", c.fetchWidth);
    fpField(os, "decodeW", c.decodeWidth);
    fpField(os, "issueW", c.issueWidth);
    fpField(os, "commitW", c.commitWidth);
    fpField(os, "fetchThreads", c.fetchThreadsPerCycle);
    fpField(os, "frontLat", c.frontLatency);
    fpField(os, "fetchQ", c.fetchQueueSize);
    fpField(os, "iq", c.iqSize);
    fpField(os, "rob", c.robSize);
    fpField(os, "lsq", c.lsqSize);
    fpField(os, "iqPart", c.iqPartitioned ? 1 : 0);
    fpField(os, "intRegs", c.intPhysRegs);
    fpField(os, "fpRegs", c.fpPhysRegs);

    fpField(os, "fu.intAlu", c.fu.intAlu);
    fpField(os, "fu.intMulDiv", c.fu.intMulDiv);
    fpField(os, "fu.memPorts", c.fu.memPorts);
    fpField(os, "fu.fpAlu", c.fu.fpAlu);
    fpField(os, "fu.fpMulDiv", c.fu.fpMulDiv);

    fpField(os, "br.gshare", c.branch.gshareEntries);
    fpField(os, "br.hist", c.branch.historyBits);
    fpField(os, "br.btb", c.branch.btbEntries);
    fpField(os, "br.btbWays", c.branch.btbWays);
    fpField(os, "br.ras", c.branch.rasEntries);

    fpCache(os, c.mem.il1);
    fpCache(os, c.mem.dl1);
    fpCache(os, c.mem.l2);
    fpTlb(os, c.mem.itlb);
    fpTlb(os, c.mem.dtlb);
    fpField(os, "memLat", c.mem.memLatency);

    fpField(os, "prewarm", c.prewarmCaches ? 1 : 0);
    fpField(os, "avf.dead", c.avf.deadCodeAnalysis ? 1 : 0);
    fpField(os, "avf.wrongPath", c.avf.wrongPathModel ? 1 : 0);
    fpField(os, "avf.perByte", c.avf.perByteCacheAvf ? 1 : 0);
    fpField(os, "avf.allocWin", c.avf.regAllocWindowUnace ? 1 : 0);
    fpField(os, "avf.l2", c.avf.trackL2Avf ? 1 : 0);
    fpField(os, "avfSample", c.avfSampleCycles);
    fpField(os, "trace", c.recordCommitTrace ? 1 : 0);

    // Protection changes residual AVF (part of the SimResult), so it is
    // result-affecting. A scrub interval only matters for a structure that
    // actually scrubs, and is excluded otherwise so that retuning an
    // unused knob does not orphan a journal. The *effective* per-structure
    // interval is fingerprinted, so moving a structure between the global
    // period and an equal override changes nothing, while any change that
    // alters its coverage forces a re-run.
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        fpField(os, hwStructKey(s),
                protSchemeName(c.protection.schemeFor(s)));
        if (c.protection.schemeFor(s) == ProtScheme::SecdedScrub)
            fpField(os, "scrub", c.protection.scrubIntervalFor(s));
    }

    return fnv1a(os.str());
}

std::string
serializeRun(std::uint64_t fingerprint, const SimResult &r)
{
    std::ostringstream os;
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016" PRIx64, fingerprint);
    os << "run v2 fp=" << fp << " mix=" << r.mixName
       << " policy=" << r.policyName << " cycles=" << r.cycles
       << " committed=" << r.totalCommitted << " ipc=" << hexDouble(r.ipc);

    os << " threads=";
    for (std::size_t t = 0; t < r.threads.size(); ++t) {
        if (t)
            os << ';';
        os << r.threads[t].benchmark << ',' << r.threads[t].committed << ','
           << hexDouble(r.threads[t].ipc);
    }

    // All numHwStructs rows, zero or not, so the parser never guesses.
    os << " avf=";
    const unsigned nt = r.avf.numThreads();
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        if (i)
            os << ';';
        os << hexDouble(r.avf.avf(s)) << ':' << hexDouble(r.avf.occupancy(s))
           << ':' << hexDouble(r.avf.residualAvf(s)) << ':';
        for (unsigned t = 0; t < nt; ++t) {
            if (t)
                os << ',';
            os << hexDouble(r.avf.threadAvf(s, static_cast<ThreadId>(t)));
        }
    }

    os << " stats=";
    bool first = true;
    for (const auto &[name, value] : r.stats.all()) {
        if (!first)
            os << ';';
        os << name << '=' << hexDouble(value);
        first = false;
    }
    return os.str();
}

bool
parseRun(const std::string &line, std::uint64_t &fingerprint, SimResult &r)
{
    auto tokens = split(line, ' ');
    if (tokens.size() != 11 || tokens[0] != "run" || tokens[1] != "v2")
        return false;

    auto value_of = [&](std::size_t i, const char *key,
                        std::string &out) -> bool {
        const std::string &tok = tokens[i];
        std::size_t klen = std::strlen(key);
        if (tok.size() < klen + 1 || tok.compare(0, klen, key) != 0 ||
            tok[klen] != '=')
            return false;
        out = tok.substr(klen + 1);
        return true;
    };

    std::string fp, mix, policy, cycles, committed, ipc, threads, avf, stats;
    if (!value_of(2, "fp", fp) || !value_of(3, "mix", mix) ||
        !value_of(4, "policy", policy) || !value_of(5, "cycles", cycles) ||
        !value_of(6, "committed", committed) || !value_of(7, "ipc", ipc) ||
        !value_of(8, "threads", threads) || !value_of(9, "avf", avf) ||
        !value_of(10, "stats", stats)) // "stats=" alone is valid (empty map)
        return false;

    SimResult out;
    out.mixName = mix;
    out.policyName = policy;
    std::uint64_t u = 0;
    if (!parseHex64(fp, fingerprint))
        return false;
    if (!parseU64(cycles, u))
        return false;
    out.cycles = u;
    if (!parseU64(committed, out.totalCommitted))
        return false;
    if (!parseDouble(ipc, out.ipc))
        return false;

    for (const auto &entry : split(threads, ';')) {
        auto fields = split(entry, ',');
        if (fields.size() != 3)
            return false;
        ThreadPerf tp;
        tp.benchmark = fields[0];
        if (!parseU64(fields[1], tp.committed))
            return false;
        if (!parseDouble(fields[2], tp.ipc))
            return false;
        out.threads.push_back(std::move(tp));
    }
    if (out.threads.empty() || out.threads.size() > maxContexts)
        return false;

    auto rows = split(avf, ';');
    if (rows.size() != numHwStructs)
        return false;
    std::array<double, numHwStructs> avf_arr{};
    std::array<double, numHwStructs> occ_arr{};
    std::array<double, numHwStructs> residual_arr{};
    std::array<std::array<double, maxContexts>, numHwStructs> thread_arr{};
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto cols = split(rows[i], ':');
        if (cols.size() != 4)
            return false;
        if (!parseDouble(cols[0], avf_arr[i]))
            return false;
        if (!parseDouble(cols[1], occ_arr[i]))
            return false;
        if (!parseDouble(cols[2], residual_arr[i]))
            return false;
        auto per_thread = split(cols[3], ',');
        if (per_thread.size() != out.threads.size())
            return false;
        for (std::size_t t = 0; t < per_thread.size(); ++t)
            if (!parseDouble(per_thread[t], thread_arr[i][t]))
                return false;
    }
    out.avf = AvfReport::restore(
        static_cast<unsigned>(out.threads.size()), out.cycles, avf_arr,
        occ_arr, residual_arr, thread_arr);

    if (!stats.empty()) {
        for (const auto &entry : split(stats, ';')) {
            auto eq = entry.find('=');
            if (eq == std::string::npos || eq == 0)
                return false;
            double value = 0.0;
            if (!parseDouble(entry.substr(eq + 1), value))
                return false;
            out.stats.set(entry.substr(0, eq), value);
        }
    }

    r = std::move(out);
    return true;
}

RunJournal::RunJournal(std::string path) : path_(std::move(path))
{
    file_ = std::fopen(path_.c_str(), "a");
    if (!file_)
        SMTAVF_FATAL("cannot open journal ", path_, ": ",
                     std::strerror(errno));
    // A header comment per session makes interrupted-and-resumed files
    // self-describing without affecting the loader.
    long pos = std::ftell(file_);
    if (pos == 0)
        std::fputs("# smtavf campaign journal v2\n", file_);
}

RunJournal::~RunJournal()
{
    if (file_)
        std::fclose(file_);
}

void
RunJournal::append(std::uint64_t fingerprint, const SimResult &r)
{
    std::string line = serializeRun(fingerprint, r);
    std::lock_guard<std::mutex> lock(mutex_);
    std::fputs(line.c_str(), file_);
    std::fputc('\n', file_);
    // Flush per record: the journal exists precisely for the case where
    // the process dies before exit, so buffered records are worthless.
    std::fflush(file_);
}

void
RunJournal::comment(const std::string &text)
{
    if (text.find('\n') != std::string::npos)
        SMTAVF_FATAL("journal comment with embedded newline: ", text);
    std::lock_guard<std::mutex> lock(mutex_);
    std::fputs("# ", file_);
    std::fputs(text.c_str(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
}

std::unordered_map<std::uint64_t, SimResult>
loadJournal(const std::string &path, std::size_t *skipped)
{
    std::unordered_map<std::uint64_t, SimResult> out;
    std::size_t bad = 0;
    std::ifstream in(path);
    if (in) {
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            std::uint64_t fp = 0;
            SimResult r;
            if (parseRun(line, fp, r))
                out[fp] = std::move(r);
            else
                ++bad; // torn final line from a crash, or hand edits
        }
    }
    if (skipped)
        *skipped = bad;
    return out;
}

std::size_t
mergeJournals(const std::vector<std::string> &inputs,
              const std::string &out_path)
{
    // Keep the raw line per fingerprint: records round-trip exactly
    // (hexfloat doubles), so re-serializing would be pointless risk. The
    // ordered map gives byte-deterministic output independent of shard
    // completion order.
    std::map<std::uint64_t, std::string> records;
    for (const auto &path : inputs) {
        std::ifstream in(path);
        if (!in)
            SMTAVF_FATAL("cannot read journal ", path);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            std::uint64_t fp = 0;
            SimResult r;
            if (!parseRun(line, fp, r))
                continue; // torn final line from a crash, or hand edits
            records.emplace(fp, line); // first occurrence wins
        }
    }

    std::ofstream out(out_path, std::ios::trunc);
    if (!out)
        SMTAVF_FATAL("cannot write journal ", out_path);
    for (const auto &[fp, line] : records)
        out << line << '\n';
    out.flush();
    if (!out)
        SMTAVF_FATAL("failed writing journal ", out_path);
    return records.size();
}

} // namespace smtavf
