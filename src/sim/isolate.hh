/**
 * @file
 * Process-level run isolation for fault-tolerant campaigns.
 *
 * runTolerant()'s thread mode contains failures that surface as C++
 * exceptions, but a SIGSEGV, a runaway allocation the OOM killer
 * resolves, or a run that never polls the cancel flag still takes the
 * whole campaign down with it. Process mode closes that gap: each run
 * executes in a forked child with its own rlimits (CPU seconds, address
 * space, core dumps off) and a supervisor-enforced *hard* timeout —
 * SIGKILL works on a child that never checks anything. The supervisor
 * reaps every child and classifies its death into a small crash taxonomy
 * (CrashKind) that feeds the existing RunOutcome retry/quarantine
 * machinery (docs/ROBUSTNESS.md).
 *
 * Determinism: a healthy child computes exactly what the same run would
 * compute in-process (same code, same seed-derived RNG streams, no shared
 * mutable state) and ships its SimResult back over a pipe in the journal
 * wire format — hexfloat doubles, CRC-checked — so process-mode campaigns
 * are bit-identical to thread-mode ones. tests/test_isolate.cc proves it
 * differentially for 1- and 4-worker pools.
 */

#ifndef SMTAVF_SIM_ISOLATE_HH
#define SMTAVF_SIM_ISOLATE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "metrics/metrics.hh"

namespace smtavf
{

/** Where a fault-tolerant campaign executes its runs. */
enum class IsolateMode
{
    Thread, ///< in-process worker threads (exceptions contained, crashes not)
    Process ///< forked child per run: rlimits, hard kill timeout, taxonomy
};

/** Canonical lower-case name ("thread", "process"). */
const char *isolateModeName(IsolateMode m);

/** Parse an isolation mode name (case-insensitive). */
bool parseIsolateMode(const std::string &name, IsolateMode &out);

/**
 * How an isolated child died, when it did not deliver a clean protocol
 * result. The supervisor derives this from the wait status plus its own
 * knowledge of whether *it* sent the SIGKILL.
 */
enum class CrashKind
{
    None,        ///< no crash: the child delivered a protocol payload
    ExitCode,    ///< child exited with a nonzero code (or 0 and no payload)
    Segv,        ///< SIGSEGV
    Abort,       ///< SIGABRT (assert, abort(), unhandled exception path)
    Bus,         ///< SIGBUS
    CpuLimit,    ///< SIGXCPU: burned past RLIMIT_CPU
    Oom,         ///< allocation failure under the memory cap, or an
                 ///< unsolicited SIGKILL (the kernel OOM killer's weapon)
    HardTimeout, ///< supervisor SIGKILL at the hard wall-clock deadline
    Signal       ///< any other fatal signal
};

/** Short lower-case name ("segv", "cpu-limit", "hard-timeout", ...). */
const char *crashKindName(CrashKind k);

/**
 * Classify a waitpid() status. @p supervisor_killed must be true iff the
 * supervisor itself SIGKILLed the child (hard timeout or cancellation) —
 * it is what distinguishes a deliberate kill from the OOM killer's.
 * A normally-exited status (code 0) classifies as ExitCode here; callers
 * only ask after deciding the payload was not a clean result.
 */
CrashKind classifyWaitStatus(int wait_status, bool supervisor_killed);

/** Human-readable one-liner for a classified child death. */
std::string describeChildDeath(int wait_status, bool supervisor_killed);

/** Sandbox knobs applied to each forked child. */
struct ChildLimits
{
    /**
     * Supervisor-enforced wall-clock deadline per child; past it the
     * child is SIGKILLed and the run classified HardTimeout. Unlike the
     * campaign soft timeout this needs no cooperation from the child.
     * 0 = no hard timeout.
     */
    double hardTimeoutSeconds = 0.0;
    /** RLIMIT_CPU in seconds (SIGXCPU past it); 0 = inherit. */
    std::uint64_t cpuSeconds = 0;
    /** RLIMIT_AS in bytes (allocations fail past it); 0 = inherit. */
    std::uint64_t memoryBytes = 0;
    /**
     * When set, the supervisor polls this flag while waiting and
     * SIGKILLs the child the moment it flips — so Ctrl-C interrupts even
     * a wedged child immediately. The death is reported as Cancelled,
     * not HardTimeout.
     */
    const std::atomic<bool> *cancel = nullptr;
};

/** Everything one isolated child execution can come back as. */
struct ChildOutcome
{
    enum class Kind
    {
        Result,    ///< clean SimResult, bit-exact via the wire format
        Livelock,  ///< child reported LivelockError (deterministic)
        Cancelled, ///< child unwound on the cancel flag, or the
                   ///< supervisor killed it on cancellation
        Error,     ///< child caught a structured failure and reported it
        Crash      ///< child died; see crash for the taxonomy
    };

    Kind kind = Kind::Crash;
    SimResult result;             ///< valid when kind == Result
    std::string message;          ///< failure text (empty for Result)
    CrashKind crash = CrashKind::None; ///< valid when kind == Crash
};

/**
 * Run @p fn in a forked, sandboxed child and collect the outcome.
 *
 * The child disables core dumps, applies the rlimits, arranges to die
 * with its supervisor (PR_SET_PDEATHSIG), executes fn(), and writes a
 * tagged payload to a pipe: a successful SimResult travels as a
 * `run v3` journal record (hexfloat-exact + CRC), failures as their
 * message. The supervisor enforces the hard timeout with SIGKILL, reaps
 * the child, and classifies any non-protocol death via
 * classifyWaitStatus(). Exceptions never cross the process boundary —
 * every path returns a ChildOutcome.
 *
 * fn runs in the child process: state it mutates is invisible to the
 * parent, and anything it does fatally wrong (segfault, leak past the
 * cap, infinite loop) is contained. This is also the chaos-injection
 * seam: a test runFn that raises SIGSEGV on a designated index exercises
 * the real kill/reap/classify path (tests/test_isolate.cc).
 */
ChildOutcome runInChild(const std::function<SimResult()> &fn,
                        const ChildLimits &limits);

/**
 * Outcome of one batched child execution (runBatchInChild). A batch
 * amortizes the fork/construction cost of process isolation over
 * several runs: the child executes fn(0..n-1) sequentially — reusing
 * one worker-local Simulator across shape-compatible runs — and frames
 * each run's result on the pipe as it completes, so every run finished
 * *before* a crash survives the crash.
 */
struct ChildBatchOutcome
{
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** Per-run outcomes; consult reported[k] before runs[k]. */
    std::vector<ChildOutcome> runs;
    /** reported[k]: run k's frame arrived complete (CRC-checkable). */
    std::vector<char> reported;

    /**
     * The run the child had started but never framed when it died —
     * the one its death is attributed to. npos when the child died
     * between runs (or never started one): the death then belongs to
     * the batch infrastructure, not a particular run.
     */
    std::size_t inFlight = npos;

    /** True when some run never reported (crash, kill, torn pipe). */
    bool childDied = false;
    /** The supervisor killed the child because the cancel flag flipped. */
    bool cancelled = false;
    /** How the child died (valid when childDied && !cancelled). */
    CrashKind crash = CrashKind::None;
    std::string crashMessage;

    bool
    allReported() const
    {
        for (char r : reported)
            if (!r)
                return false;
        return true;
    }
};

/**
 * Run fn(0), ..., fn(n-1) sequentially in ONE forked, sandboxed child.
 *
 * Same sandbox as runInChild (core dumps off, rlimits, PR_SET_PDEATHSIG),
 * with the wall-clock and CPU budgets scaled by n — the supervisor
 * cannot see per-run boundaries precisely enough to re-arm a per-run
 * deadline, so the deadline is per batch. The wire protocol is framed:
 * the child writes `start <k>\n` before each run and
 * `<tag> <k> <len>\n<payload>` after it (tags as in runInChild; an "ok"
 * payload is the CRC'd `run v3` record, so results stay bit-exact). The
 * supervisor parses whatever frames arrived before EOF, attributes a
 * death to the started-but-unframed run, and leaves later runs
 * unreported so the caller can re-dispatch just the remainder.
 */
ChildBatchOutcome runBatchInChild(std::size_t n,
                                  const std::function<SimResult(std::size_t)>
                                      &fn,
                                  const ChildLimits &limits);

/**
 * SIGKILL every child currently being supervised by runInChild() in this
 * process. Async-signal-safe; the CLI's hard-exit SIGINT handler calls
 * it so a second Ctrl-C never leaves orphaned simulation children
 * burning CPU.
 */
void killLiveChildren();

/**
 * Deterministic exponential retry backoff: 0 for the first attempt or a
 * zero base, else base * 2^(attempt-1) * (1 + jitter) seconds, where
 * jitter in [0, 1) derives from splitSeed(@p seed, @p attempt) — the
 * same run backs off identically on every replay of the campaign, while
 * different runs decorrelate instead of thundering back together.
 * The exponent saturates at 2^16 so absurd attempt counts stay finite.
 */
double retryBackoffSeconds(unsigned attempt, std::uint64_t seed,
                           double base);

} // namespace smtavf

#endif // SMTAVF_SIM_ISOLATE_HH
