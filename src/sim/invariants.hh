/**
 * @file
 * End-of-cycle machine-state invariant checker.
 *
 * A soft-error *study* lives and dies by the integrity of its simulator's
 * bookkeeping: a leaked physical register or an over-counted AVF interval
 * does not crash anything — it silently skews every AVF number downstream.
 * This pass validates the cross-structure consistency properties the
 * pipeline maintains by construction and raises a structured
 * InvariantError (sim/errors.hh) the cycle they first fail, so a
 * corrupted run lands in the campaign's retry/quarantine path instead of
 * contributing poisoned results.
 *
 * Checked invariants (names appear in InvariantError::invariant):
 *
 *  - regfile.freelist      free-list sizes match the free counters; every
 *                          free entry is in its bank's index range, not
 *                          marked allocated, and listed exactly once
 *  - regfile.conservation  every allocated physical register is reachable
 *                          as exactly one rename-map entry or exactly one
 *                          in-flight instruction's displaced old mapping,
 *                          and nothing else is allocated
 *  - rename.mapping        every rename-map entry points at an allocated
 *                          register of the correct bank
 *  - rob.order             per-thread program order (strictly increasing
 *                          seq) and occupancy <= capacity
 *  - iq.occupancy          shared-queue occupancy <= capacity, entries in
 *                          global dispatch order, per-thread occupancy
 *                          counters consistent, partition bound respected
 *                          when MachineConfig::iqPartitioned
 *  - lsq.order             per-thread LSQ holds only memory instructions,
 *                          in program order, occupancy <= capacity
 *  - ledger.accounting     per structure, accumulated ACE + un-ACE
 *                          bit-cycles never exceed capacity x elapsed
 *                          cycles (bit conservation)
 *
 * Enabled via MachineConfig::invariantCheckCycles (the check period); the
 * test suite turns it on for every simulation through the
 * SMTAVF_INVARIANTS environment variable.
 */

#ifndef SMTAVF_SIM_INVARIANTS_HH
#define SMTAVF_SIM_INVARIANTS_HH

#include "base/types.hh"

namespace smtavf
{

class SmtCore;
class AvfLedger;

/**
 * Validate the machine state at the end of cycle @p now; throws
 * InvariantError on the first violation found.
 */
void checkInvariants(const SmtCore &core, const AvfLedger &ledger,
                     Cycle now);

} // namespace smtavf

#endif // SMTAVF_SIM_INVARIANTS_HH
