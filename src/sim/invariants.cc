#include "sim/invariants.hh"

#include <cstdint>
#include <sstream>
#include <vector>

#include "avf/ledger.hh"
#include "core/smt_core.hh"
#include "sim/errors.hh"

namespace smtavf
{

namespace
{

[[noreturn]] void
violated(const SmtCore &core, Cycle now, const char *invariant,
         const std::string &detail)
{
    throw InvariantError(invariant, now, detail, core.stateDump());
}

/**
 * Ownership tags for every physical register, used to prove the exact
 * partition  allocated = free + mapped + displaced  with no overlaps.
 */
enum class RegOwner : std::uint8_t { None, Free, Mapped, Displaced };

const char *
ownerName(RegOwner o)
{
    switch (o) {
      case RegOwner::None:
        return "unowned";
      case RegOwner::Free:
        return "free";
      case RegOwner::Mapped:
        return "rename-mapped";
      case RegOwner::Displaced:
        return "displaced-by-in-flight";
    }
    return "?";
}

void
checkRegfile(const SmtCore &core, Cycle now)
{
    const PhysRegFile &rf = core.regfileRef();
    const MachineConfig &cfg = core.config();
    const std::uint32_t total = rf.numInt() + rf.numFp();
    std::vector<RegOwner> owner(total, RegOwner::None);

    // --- regfile.freelist -----------------------------------------------
    for (bool fp : {false, true}) {
        const auto &list = rf.freeList(fp);
        const std::uint32_t count = fp ? rf.freeFp() : rf.freeInt();
        const char *bank = fp ? "fp" : "int";
        if (list.size() != count)
            violated(core, now, "regfile.freelist",
                     detail::concat(bank, " free list holds ", list.size(),
                                    " entries but the free counter says ",
                                    count));
        const RegIndex lo = fp ? static_cast<RegIndex>(rf.numInt()) : 0;
        const RegIndex hi = fp ? static_cast<RegIndex>(total)
                               : static_cast<RegIndex>(rf.numInt());
        for (RegIndex phys : list) {
            if (phys < lo || phys >= hi)
                violated(core, now, "regfile.freelist",
                         detail::concat(bank, " free list entry ", phys,
                                        " outside bank range [", lo, ", ",
                                        hi, ")"));
            if (owner[phys] != RegOwner::None)
                violated(core, now, "regfile.freelist",
                         detail::concat("register ", phys,
                                        " listed free twice"));
            if (rf.isAllocated(phys))
                violated(core, now, "regfile.freelist",
                         detail::concat("register ", phys,
                                        " is on the ", bank,
                                        " free list but marked allocated"));
            owner[phys] = RegOwner::Free;
        }
    }

    // --- rename.mapping + claim of mapped registers ----------------------
    for (unsigned t = 0; t < cfg.contexts; ++t) {
        auto tid = static_cast<ThreadId>(t);
        const RenameMap &map = core.renameMap(tid);
        for (RegIndex arch = 0; arch < numArchRegs; ++arch) {
            RegIndex phys = map.lookup(arch);
            if (phys == invalidReg)
                continue;
            if (phys < 0 || static_cast<std::uint32_t>(phys) >= total)
                violated(core, now, "rename.mapping",
                         detail::concat("T", t, " arch ", arch,
                                        " maps to out-of-range physical ",
                                        phys));
            bool arch_fp = isFpReg(arch);
            bool phys_fp = static_cast<std::uint32_t>(phys) >= rf.numInt();
            if (arch_fp != phys_fp)
                violated(core, now, "rename.mapping",
                         detail::concat("T", t, " arch ", arch,
                                        " maps across banks to physical ",
                                        phys));
            if (!rf.isAllocated(phys))
                violated(core, now, "rename.mapping",
                         detail::concat("T", t, " arch ", arch,
                                        " maps to unallocated physical ",
                                        phys));
            if (owner[phys] != RegOwner::None)
                violated(core, now, "regfile.conservation",
                         detail::concat("physical ", phys, " is ",
                                        ownerName(owner[phys]),
                                        " and also mapped by T", t,
                                        " arch ", arch));
            owner[phys] = RegOwner::Mapped;
        }
    }

    // --- claim of displaced old mappings held by in-flight instructions --
    for (unsigned t = 0; t < cfg.contexts; ++t) {
        auto tid = static_cast<ThreadId>(t);
        for (const auto &in : core.rob(tid)) {
            RegIndex old = in->oldDestPhys;
            if (old == invalidReg)
                continue;
            if (old < 0 || static_cast<std::uint32_t>(old) >= total)
                violated(core, now, "regfile.conservation",
                         detail::concat("T", t, " seq ", in->seq,
                                        " holds out-of-range displaced ",
                                        "register ", old));
            if (!rf.isAllocated(old))
                violated(core, now, "regfile.conservation",
                         detail::concat("T", t, " seq ", in->seq,
                                        " holds unallocated displaced ",
                                        "register ", old));
            if (owner[old] != RegOwner::None)
                violated(core, now, "regfile.conservation",
                         detail::concat("physical ", old, " is ",
                                        ownerName(owner[old]),
                                        " and also displaced by T", t,
                                        " seq ", in->seq));
            owner[old] = RegOwner::Displaced;
        }
    }

    // --- regfile.conservation: nothing is left unaccounted ---------------
    for (std::uint32_t p = 0; p < total; ++p) {
        if (owner[p] == RegOwner::None && !rf.isAllocated(p))
            violated(core, now, "regfile.conservation",
                     detail::concat("physical ", p,
                                    " is neither free, mapped, displaced, ",
                                    "nor marked allocated"));
        if (owner[p] == RegOwner::None && rf.isAllocated(p))
            violated(core, now, "regfile.conservation",
                     detail::concat("physical ", p, " is allocated but ",
                                    "unreachable from any rename map or ",
                                    "in-flight instruction (leak)"));
    }
}

void
checkRob(const SmtCore &core, Cycle now)
{
    const MachineConfig &cfg = core.config();
    for (unsigned t = 0; t < cfg.contexts; ++t) {
        auto tid = static_cast<ThreadId>(t);
        const Rob &rob = core.rob(tid);
        if (rob.size() > rob.capacity())
            violated(core, now, "rob.order",
                     detail::concat("T", t, " ROB holds ", rob.size(),
                                    " entries, capacity ", rob.capacity()));
        SeqNum prev = 0;
        bool first = true;
        for (const auto &in : rob) {
            if (in->tid != tid)
                violated(core, now, "rob.order",
                         detail::concat("T", t, " ROB holds seq ", in->seq,
                                        " of thread ", in->tid));
            if (!first && in->seq <= prev)
                violated(core, now, "rob.order",
                         detail::concat("T", t, " ROB out of program ",
                                        "order: seq ", in->seq, " after ",
                                        prev));
            prev = in->seq;
            first = false;
        }
    }
}

void
checkIq(const SmtCore &core, Cycle now)
{
    const MachineConfig &cfg = core.config();
    const IssueQueue &iq = core.issueQueue();
    if (iq.size() > iq.capacity())
        violated(core, now, "iq.occupancy",
                 detail::concat("issue queue holds ", iq.size(),
                                " entries, capacity ", iq.capacity()));

    std::vector<unsigned> per_thread(cfg.contexts, 0);
    SeqNum prev = 0;
    bool first = true;
    for (const auto &in : iq) {
        if (in->tid >= cfg.contexts)
            violated(core, now, "iq.occupancy",
                     detail::concat("issue-queue entry from unknown ",
                                    "thread ", in->tid));
        if (!in->inIq || in->squashed)
            violated(core, now, "iq.occupancy",
                     detail::concat("T", in->tid, " seq ", in->seq,
                                    " resident with inIq=", in->inIq,
                                    " squashed=", in->squashed));
        if (!first && in->globalSeq <= prev)
            violated(core, now, "iq.occupancy",
                     detail::concat("issue queue out of dispatch order: ",
                                    "globalSeq ", in->globalSeq, " after ",
                                    prev));
        prev = in->globalSeq;
        first = false;
        ++per_thread[in->tid];
    }

    unsigned sum = 0;
    for (unsigned t = 0; t < cfg.contexts; ++t) {
        auto tid = static_cast<ThreadId>(t);
        if (per_thread[t] != core.iqOccupancy(tid))
            violated(core, now, "iq.occupancy",
                     detail::concat("T", t, " occupancy counter says ",
                                    core.iqOccupancy(tid), " but ",
                                    per_thread[t], " entries are queued"));
        if (cfg.iqPartitioned &&
            per_thread[t] > cfg.iqSize / cfg.contexts)
            violated(core, now, "iq.occupancy",
                     detail::concat("T", t, " holds ", per_thread[t],
                                    " entries over its static partition ",
                                    "of ", cfg.iqSize / cfg.contexts));
        sum += per_thread[t];
    }
    if (sum != iq.size())
        violated(core, now, "iq.occupancy",
                 detail::concat("per-thread occupancies sum to ", sum,
                                " but the queue holds ", iq.size()));
}

void
checkLsq(const SmtCore &core, Cycle now)
{
    const MachineConfig &cfg = core.config();
    for (unsigned t = 0; t < cfg.contexts; ++t) {
        auto tid = static_cast<ThreadId>(t);
        const Lsq &lsq = core.lsq(tid);
        if (lsq.size() > lsq.capacity())
            violated(core, now, "lsq.order",
                     detail::concat("T", t, " LSQ holds ", lsq.size(),
                                    " entries, capacity ", lsq.capacity()));
        SeqNum prev = 0;
        bool first = true;
        for (const auto &in : lsq) {
            if (!in->isMem())
                violated(core, now, "lsq.order",
                         detail::concat("T", t, " LSQ holds non-memory ",
                                        opClassName(in->op), " seq ",
                                        in->seq));
            if (!first && in->seq <= prev)
                violated(core, now, "lsq.order",
                         detail::concat("T", t, " LSQ out of program ",
                                        "order: seq ", in->seq, " after ",
                                        prev));
            prev = in->seq;
            first = false;
        }
    }
}

void
checkLedger(const SmtCore &core, const AvfLedger &ledger, Cycle now)
{
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        std::uint64_t bits = ledger.structureBits(s);
        if (bits == 0)
            continue;
        std::uint64_t occupied =
            ledger.aceBitCycles(s) + ledger.unAceBitCycles(s);
        std::uint64_t capacity = bits * now;
        if (occupied > capacity)
            violated(core, now, "ledger.accounting",
                     detail::concat(hwStructName(s), " accounts ",
                                    occupied, " occupied bit-cycles but ",
                                    "only ", capacity,
                                    " existed (bits ", bits, " x ", now,
                                    " cycles)"));

        // Protection partition: the covered and residual tallies are
        // accumulated independently of the ACE total, so their sum
        // conserving against it (per thread, hence in aggregate) is a
        // real cross-check of the coverage math, not a tautology. An
        // unprotected structure must show zero covered bit-cycles.
        for (unsigned t = 0; t < ledger.numThreads(); ++t) {
            auto tid = static_cast<ThreadId>(t);
            std::uint64_t ace = ledger.aceBitCycles(s, tid);
            std::uint64_t covered = ledger.coveredAceBitCycles(s, tid);
            std::uint64_t residual = ledger.residualAceBitCycles(s, tid);
            if (covered + residual != ace)
                violated(core, now, "ledger.protection",
                         detail::concat(hwStructName(s), " T", t,
                                        ": covered ", covered,
                                        " + residual ", residual,
                                        " != ACE total ", ace));
            if (ledger.protection().schemeFor(s) == ProtScheme::None &&
                covered != 0)
                violated(core, now, "ledger.protection",
                         detail::concat(hwStructName(s), " T", t,
                                        " is unprotected but shows ",
                                        covered, " covered bit-cycles"));
        }
    }
}

} // namespace

void
checkInvariants(const SmtCore &core, const AvfLedger &ledger, Cycle now)
{
    checkRegfile(core, now);
    checkRob(core, now);
    checkIq(core, now);
    checkLsq(core, now);
    checkLedger(core, ledger, now);
}

} // namespace smtavf
