/**
 * @file
 * Top-level simulation driver: builds the ledger, memory hierarchy, AVF
 * trackers, workload streams and the SMT core for one (config, mix) pair,
 * runs to an instruction budget, and returns a SimResult.
 *
 * Checkpoint/restore (docs/CHECKPOINT.md): a Simulator can capture its
 * whole state at a *drained boundary* (pipeline empty, MSHRs empty,
 * deferred deadness resolved) into a Checkpoint, and a freshly
 * constructed Simulator with a compatible config can restore it and
 * continue bit-identically to the run that captured it. Warmup
 * (`--warmup N`) uses the same boundary: statistics and AVF tallies reset
 * there, so the SimResult covers only the measured window.
 */

#ifndef SMTAVF_SIM_SIMULATOR_HH
#define SMTAVF_SIM_SIMULATOR_HH

#include <atomic>
#include <memory>
#include <vector>

#include "avf/interval_series.hh"
#include "base/arena.hh"
#include "avf/ledger.hh"
#include "avf/mem_trackers.hh"
#include "ckpt/checkpoint.hh"
#include "core/machine_config.hh"
#include "core/smt_core.hh"
#include "mem/hierarchy.hh"
#include "metrics/metrics.hh"
#include "workload/generator.hh"
#include "workload/mixes.hh"

namespace smtavf
{

/**
 * Process-wide count of instructions actually simulated (committed),
 * summed over every Simulator in this process. Shared-warmup benchmarks
 * read and reset it to prove how much simulation a reused checkpoint
 * saved; it feeds no simulation semantics.
 */
std::atomic<std::uint64_t> &simulatedInstructionCounter();

/** Optional per-run controls of Simulator::run (all off by default). */
struct RunControls
{
    /**
     * Commit this many instructions, then drain, reset all statistics and
     * AVF tallies, and run the measured budget on top. 0 = no warmup.
     */
    std::uint64_t warmup = 0;

    /**
     * Capture a checkpoint once this many instructions committed in
     * total (must lie inside the run). 0 = never.
     */
    std::uint64_t checkpointAt = 0;

    /** File to write the checkpointAt capture to ("" = don't write). */
    std::string checkpointOut;

    /** In-memory destination of the checkpointAt capture (optional). */
    Checkpoint *checkpointCapture = nullptr;

    /**
     * Close an AVF sample row every N committed instructions
     * (SimResult::avfIntervals). 0 = off.
     */
    std::uint64_t avfInterval = 0;
};

/**
 * One simulation instance. A Simulator is single-use per *run* —
 * construct (or reset()), run once, read the result — but the instance
 * itself is reusable: reset() returns it to exact post-construction
 * state, allocation-free, whenever the next run's timing shape matches
 * (timingShapeFingerprint in sim/journal.hh). Campaign workers exploit
 * this to pay construction once per worker instead of once per run.
 *
 * All setup-time containers are carved from a private monotonic Arena
 * (base/arena.hh): member order puts the arena and an ArenaCtorScope
 * ahead of every sub-structure, so their constructors see the arena as
 * the thread's current one and bump-allocate instead of hitting the
 * global heap. The scope is released at the end of the constructor
 * body; run-time growth (lazy scratch vectors) uses the heap as before.
 */
class Simulator
{
  public:
    /**
     * @param cfg machine parameters; cfg.contexts must match the mix
     * @param mix the workload (one benchmark per context)
     * @param stream_ids per-thread stream seeding identities (empty: each
     *        thread seeds by its own context id). Used by single-thread
     *        baseline runs to replay an SMT context's exact stream.
     */
    Simulator(const MachineConfig &cfg, const WorkloadMix &mix,
              std::vector<std::uint32_t> stream_ids = {});

    /**
     * Build from explicit profiles instead of registry names — the entry
     * point for custom workloads (one profile per context).
     */
    Simulator(const MachineConfig &cfg,
              std::vector<BenchmarkProfile> profiles,
              const std::string &name = "custom");

    /**
     * Run until @p instr_budget instructions commit in total (all
     * threads) and return the result. Single use. With warmup or after
     * restore(), the budget counts instructions committed *after* the
     * boundary/restore point.
     */
    SimResult run(std::uint64_t instr_budget,
                  const RunControls &rc = RunControls{});

    /**
     * Adopt a checkpoint's state (before run()). Recomputes the
     * checkpoint fingerprint from this simulator's own config/mix and
     * throws CheckpointError when it disagrees with the stored one —
     * restoring under a different seed, machine geometry, workload, or
     * (for non-warmup checkpoints) protection scheme is rejected rather
     * than silently diverging.
     */
    void restore(const Checkpoint &ck);

    /**
     * Run @p warmup_instrs instructions, drain, reset tallies, and
     * return the warmup-boundary checkpoint. Single use (the instance is
     * consumed). Equivalent state to run()'s own `--warmup` boundary, so
     * a run restored from this checkpoint is bit-identical to a
     * `--warmup N` run of the same experiment — that equivalence is what
     * lets campaigns share one warmup across candidates.
     */
    Checkpoint captureWarmupCheckpoint(std::uint64_t warmup_instrs);

    /**
     * True when this instance can be reset() for a run of
     * (@p cfg, @p mix): every timing-shape field must match the
     * construction-time one (same geometry, policy, workload, AVF model
     * options — see timingShapeFingerprint), because reset() reuses the
     * existing structures in place. Seed and protection may differ
     * freely, and per-thread stream ids must not have been overridden at
     * construction (the campaign path never does).
     */
    bool canResetTo(const MachineConfig &cfg, const WorkloadMix &mix) const;

    /**
     * Return to exact post-construction state for a run of
     * (@p cfg, @p mix) — bit-identical to destroying this instance and
     * constructing Simulator(cfg, mix), and allocation-free
     * (tests/test_alloc_steady.cc gates it at zero heap allocations).
     * Fatal when !canResetTo(cfg, mix). Mirrors the constructor's order:
     * ledger, hierarchy, trackers, stream generators (re-seeded from
     * cfg.seed), core, prewarm.
     */
    void reset(const MachineConfig &cfg, const WorkloadMix &mix);

    /** Committed-instruction count adopted from restore() (else 0). */
    std::uint64_t restoredCommitted() const { return restoredCommitted_; }

    /** Direct access for white-box tests. */
    SmtCore &core() { return *core_; }
    MemHierarchy &hierarchy() { return hier_; }
    AvfLedger &ledger() { return ledger_; }

  private:
    /**
     * Counter snapshot at the measured-window start. All-zero for plain
     * runs, so subtracting it reproduces whole-run statistics exactly; a
     * warmup boundary fills it, making every SimResult figure a
     * measured-window delta. Travels inside checkpoints so a restored
     * run subtracts the same baseline as the run that captured it.
     */
    struct RunBaseline
    {
        Cycle cycle = 0;
        std::array<std::uint64_t, maxContexts> committed{};
        std::uint64_t wrongPathFetched = 0;
        std::uint64_t squashed = 0;
        std::uint64_t dl1Hits = 0, dl1Misses = 0;
        std::uint64_t l2Hits = 0, l2Misses = 0;
        std::uint64_t il1Hits = 0, il1Misses = 0;
        std::uint64_t dtlbHits = 0, dtlbMisses = 0;
        std::array<std::uint64_t, maxContexts> branches{};
        std::array<std::uint64_t, maxContexts> mispredicts{};
        std::uint64_t dead = 0, resolved = 0;

        template <class Ar>
        void
        serialize(Ar &ar)
        {
            ar(cycle);
            ar(committed);
            ar(wrongPathFetched);
            ar(squashed);
            ar(dl1Hits);
            ar(dl1Misses);
            ar(l2Hits);
            ar(l2Misses);
            ar(il1Hits);
            ar(il1Misses);
            ar(dtlbHits);
            ar(dtlbMisses);
            ar(branches);
            ar(mispredicts);
            ar(dead);
            ar(resolved);
        }
    };

    /** Watchdog/invariant bookkeeping shared by the tick loops. */
    struct LoopState
    {
        std::uint64_t lastCommitted = 0;
        Cycle lastProgress = 0;
        Cycle lastChecked = 0;
    };

    void prewarm();

    /** Tick until @p target instructions committed in total. */
    void advanceUntil(std::uint64_t target, LoopState &ls,
                      AvfTimeline *timeline, AvfIntervalSeries *series);

    /**
     * Disable fetch and tick until the pipeline and MSHRs are empty
     * (bounded; SMTAVF_FATAL if quiescence is never reached), then
     * re-enable fetch.
     */
    void drainPipeline(LoopState &ls, AvfTimeline *timeline,
                       AvfIntervalSeries *series);

    /** Snapshot all cumulative counters into baseline_. */
    void captureBaseline();

    /** Serialize the full machine state into a Checkpoint. */
    Checkpoint makeCheckpoint(std::uint64_t at, bool warmup_boundary);

    /**
     * The one list of checkpointed state, shared by the ByteCounter
     * sizing pass, the Serializer write and the Deserializer read so
     * the three can never disagree on field order.
     */
    template <class Ar> void visitState(Ar &ar);

    /**
     * Declared first so every member below is constructed (and carves
     * its setup-time containers) under ctorScope_ — C++ guarantees
     * member construction in declaration order. The scope is released
     * at the end of each constructor body.
     */
    Arena arena_;
    ArenaCtorScope ctorScope_;

    MachineConfig cfg_;
    WorkloadMix mix_;
    std::vector<std::uint32_t> streamIds_;
    AvfLedger ledger_;
    MemHierarchy hier_;
    CacheVulnTracker dl1Tracker_;
    TlbVulnTracker dtlbTracker_;
    TlbVulnTracker itlbTracker_;
    /** Present when MachineConfig::avf.trackL2Avf (per-line granularity). */
    ArenaPtr<CacheVulnTracker> l2Tracker_;
    AVec<ArenaPtr<StreamGenerator>> gens_;
    ArenaPtr<SmtCore> core_;
    RunBaseline baseline_;
    std::uint64_t restoredCommitted_ = 0;
    bool restored_ = false;
    bool ran_ = false;
};

} // namespace smtavf

#endif // SMTAVF_SIM_SIMULATOR_HH
