/**
 * @file
 * Top-level simulation driver: builds the ledger, memory hierarchy, AVF
 * trackers, workload streams and the SMT core for one (config, mix) pair,
 * runs to an instruction budget, and returns a SimResult.
 */

#ifndef SMTAVF_SIM_SIMULATOR_HH
#define SMTAVF_SIM_SIMULATOR_HH

#include <memory>
#include <vector>

#include "avf/ledger.hh"
#include "avf/mem_trackers.hh"
#include "core/machine_config.hh"
#include "core/smt_core.hh"
#include "mem/hierarchy.hh"
#include "metrics/metrics.hh"
#include "workload/generator.hh"
#include "workload/mixes.hh"

namespace smtavf
{

/** One simulation instance (single use: construct, run, discard). */
class Simulator
{
  public:
    /**
     * @param cfg machine parameters; cfg.contexts must match the mix
     * @param mix the workload (one benchmark per context)
     * @param stream_ids per-thread stream seeding identities (empty: each
     *        thread seeds by its own context id). Used by single-thread
     *        baseline runs to replay an SMT context's exact stream.
     */
    Simulator(const MachineConfig &cfg, const WorkloadMix &mix,
              std::vector<std::uint32_t> stream_ids = {});

    /**
     * Build from explicit profiles instead of registry names — the entry
     * point for custom workloads (one profile per context).
     */
    Simulator(const MachineConfig &cfg,
              std::vector<BenchmarkProfile> profiles,
              const std::string &name = "custom");

    /**
     * Run until @p instr_budget instructions commit in total (all threads)
     * and return the result. Single use.
     */
    SimResult run(std::uint64_t instr_budget);

    /** Direct access for white-box tests. */
    SmtCore &core() { return *core_; }
    MemHierarchy &hierarchy() { return hier_; }
    AvfLedger &ledger() { return ledger_; }

  private:
    void prewarm();

    MachineConfig cfg_;
    WorkloadMix mix_;
    AvfLedger ledger_;
    MemHierarchy hier_;
    CacheVulnTracker dl1Tracker_;
    TlbVulnTracker dtlbTracker_;
    TlbVulnTracker itlbTracker_;
    /** Present when MachineConfig::avf.trackL2Avf (per-line granularity). */
    std::unique_ptr<CacheVulnTracker> l2Tracker_;
    std::vector<std::unique_ptr<StreamGenerator>> gens_;
    std::unique_ptr<SmtCore> core_;
    bool ran_ = false;
};

} // namespace smtavf

#endif // SMTAVF_SIM_SIMULATOR_HH
