#include "sim/campaign.hh"

#include <chrono>

#include "base/env.hh"
#include "base/logging.hh"
#include "base/rng.hh"

namespace smtavf
{

Experiment
makeExperiment(const WorkloadMix &mix, FetchPolicyKind policy,
               std::uint64_t budget)
{
    Experiment e;
    e.label = mix.name + "/" + fetchPolicyName(policy);
    e.cfg = table1Config(mix.contexts);
    e.cfg.fetchPolicy = policy;
    e.mix = mix;
    e.budget = budget;
    return e;
}

SimResult
runExperiment(const Experiment &e)
{
    return runMix(e.cfg, e.mix, e.budget);
}

void
deriveSeeds(std::vector<Experiment> &exps, std::uint64_t master)
{
    for (std::size_t i = 0; i < exps.size(); ++i)
        exps[i].cfg.seed = splitSeed(master, i);
}

/**
 * One in-flight forEach() call. All fields are guarded by the pool
 * mutex; fn runs unlocked. The batch lives on the submitting thread's
 * stack: the last worker to finish an index is the last to touch it
 * (every claimed index contributes exactly one `done` increment, and
 * workers that claim nothing never keep a pointer to it).
 */
struct CampaignRunner::Batch
{
    const std::function<void(std::size_t)> *fn = nullptr;
    std::size_t n = 0;
    std::size_t next = 0;
    std::size_t done = 0;
    std::exception_ptr error;
};

unsigned
CampaignRunner::defaultJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (unsigned env = envJobs(); env > 0)
        return env;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

CampaignRunner::CampaignRunner(unsigned jobs) : jobs_(defaultJobs(jobs))
{
    workers_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

CampaignRunner::~CampaignRunner()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
CampaignRunner::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_.wait(lock, [this] {
            return stop_ || (batch_ && batch_->next < batch_->n);
        });
        if (stop_)
            return;
        Batch *b = batch_;
        std::size_t index = b->next++;

        lock.unlock();
        std::exception_ptr err;
        try {
            (*b->fn)(index);
        } catch (...) {
            err = std::current_exception();
        }
        lock.lock();

        if (err && !b->error)
            b->error = err;
        if (++b->done == b->n) {
            batch_ = nullptr;
            done_.notify_all();
        }
    }
}

void
CampaignRunner::forEach(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    Batch batch;
    batch.fn = &fn;
    batch.n = n;
    std::unique_lock<std::mutex> lock(mutex_);
    if (batch_)
        SMTAVF_FATAL("CampaignRunner::forEach is not re-entrant");
    batch_ = &batch;
    work_.notify_all();
    done_.wait(lock, [&] { return batch.done == batch.n; });
    lock.unlock();
    if (batch.error)
        std::rethrow_exception(batch.error);
}

std::vector<SimResult>
CampaignRunner::run(const std::vector<Experiment> &exps, ProgressFn progress)
{
    std::vector<SimResult> results(exps.size());
    std::mutex progress_mutex;
    std::size_t completed = 0;

    forEach(exps.size(), [&](std::size_t i) {
        auto t0 = std::chrono::steady_clock::now();
        results[i] = runExperiment(exps[i]);
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        if (progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            CampaignProgress p{i,        exps.size(), ++completed,
                               dt.count(), &exps[i],  &results[i]};
            progress(p);
        }
    });
    return results;
}

std::vector<SimResult>
runMixReplicated(CampaignRunner &pool, const MachineConfig &cfg,
                 const WorkloadMix &mix, unsigned replicas,
                 std::uint64_t budget)
{
    if (replicas == 0)
        SMTAVF_FATAL("need at least one replica");
    std::vector<Experiment> exps;
    exps.reserve(replicas);
    for (unsigned i = 0; i < replicas; ++i) {
        Experiment e;
        e.label = mix.name + "/seed" + std::to_string(cfg.seed + i);
        e.cfg = cfg;
        e.cfg.seed = cfg.seed + i; // match the serial helper exactly
        e.mix = mix;
        e.budget = budget;
        exps.push_back(std::move(e));
    }
    return pool.run(exps);
}

std::vector<SimResult>
runSingleThreadBaselines(CampaignRunner &pool, const MachineConfig &smt_cfg,
                         const WorkloadMix &mix, const SimResult &smt)
{
    if (smt.threads.size() != mix.contexts)
        SMTAVF_FATAL("SMT result has ", smt.threads.size(),
                     " threads for mix ", mix.name);
    std::vector<SimResult> baselines(mix.contexts);
    pool.forEach(mix.contexts, [&](std::size_t tid) {
        baselines[tid] = runSingleThreadBaseline(
            smt_cfg, mix, static_cast<ThreadId>(tid),
            smt.threads[tid].committed);
    });
    return baselines;
}

InjectionResult
runInjection(CampaignRunner &pool, const InjectionCampaign &campaign,
             std::uint64_t trials, std::uint64_t seed)
{
    InjectionResult total;
    if (campaign.traceSize() == 0 || trials == 0)
        return total;

    // Chunk trials so each pool task amortizes its scheduling cost;
    // verdict counts are sums, so any chunking/scheduling yields the
    // same totals as long as trial t always uses splitSeed(seed, t).
    constexpr std::uint64_t chunk = 256;
    const std::size_t chunks =
        static_cast<std::size_t>((trials + chunk - 1) / chunk);
    std::vector<InjectionResult> partial(chunks);

    pool.forEach(chunks, [&](std::size_t c) {
        std::uint64_t begin = static_cast<std::uint64_t>(c) * chunk;
        std::uint64_t end = std::min(trials, begin + chunk);
        InjectionResult &res = partial[c];
        for (std::uint64_t t = begin; t < end; ++t) {
            Rng rng(splitSeed(seed, t));
            auto origin = static_cast<std::size_t>(
                rng.uniform(campaign.traceSize()));
            ++res.trials;
            switch (campaign.injectAt(origin)) {
              case InjectionOutcome::Masked:
                ++res.masked;
                break;
              case InjectionOutcome::Corrupted:
                ++res.corrupted;
                break;
              case InjectionOutcome::Skipped:
                ++res.skipped;
                break;
            }
        }
    });

    for (const auto &p : partial) {
        total.trials += p.trials;
        total.corrupted += p.corrupted;
        total.masked += p.masked;
        total.skipped += p.skipped;
    }
    return total;
}

} // namespace smtavf
