#include "sim/campaign.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <unordered_map>

#include <unistd.h>

#include "base/env.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "ckpt/checkpoint.hh"
#include "sim/errors.hh"
#include "sim/journal.hh"
#include "sim/simulator.hh"

namespace smtavf
{

Experiment
makeExperiment(const WorkloadMix &mix, FetchPolicyKind policy,
               std::uint64_t budget)
{
    Experiment e;
    e.label = mix.name + "/" + fetchPolicyName(policy);
    e.cfg = table1Config(mix.contexts);
    e.cfg.fetchPolicy = policy;
    e.mix = mix;
    e.budget = budget;
    return e;
}

SimResult
runExperiment(const Experiment &e)
{
    if (e.warmup == 0)
        return runMix(e.cfg, e.mix, e.budget);
    std::uint64_t budget = e.budget ? e.budget : defaultBudget(e.mix.contexts);
    Simulator sim(e.cfg, e.mix);
    RunControls rc;
    rc.warmup = e.warmup;
    return sim.run(budget, rc);
}

void
deriveSeeds(std::vector<Experiment> &exps, std::uint64_t master)
{
    for (std::size_t i = 0; i < exps.size(); ++i)
        exps[i].cfg.seed = splitSeed(master, i);
}

std::vector<Experiment>
shardExperiments(const std::vector<Experiment> &exps, unsigned shard,
                 unsigned nshards)
{
    if (nshards == 0)
        SMTAVF_FATAL("shard count must be positive");
    if (shard >= nshards)
        SMTAVF_FATAL("shard index ", shard, " out of range for ", nshards,
                     " shards");
    std::vector<Experiment> out;
    for (std::size_t i = shard; i < exps.size(); i += nshards)
        out.push_back(exps[i]);
    return out;
}

/**
 * One in-flight forEach() call. All fields are guarded by the pool
 * mutex; fn runs unlocked. The batch lives on the submitting thread's
 * stack: the last worker to finish an index is the last to touch it
 * (every claimed index contributes exactly one `done` increment, and
 * workers that claim nothing never keep a pointer to it).
 */
struct CampaignRunner::Batch
{
    const std::function<void(std::size_t)> *fn = nullptr;
    std::size_t n = 0;
    std::size_t next = 0;
    std::size_t done = 0;
    std::exception_ptr error;
};

unsigned
CampaignRunner::defaultJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (unsigned env = envJobs(); env > 0)
        return env;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

CampaignRunner::CampaignRunner(unsigned jobs) : jobs_(defaultJobs(jobs))
{
    workers_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

CampaignRunner::~CampaignRunner()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
CampaignRunner::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_.wait(lock, [this] {
            return stop_ || (batch_ && batch_->next < batch_->n);
        });
        if (stop_)
            return;
        Batch *b = batch_;
        std::size_t index = b->next++;

        lock.unlock();
        std::exception_ptr err;
        try {
            (*b->fn)(index);
        } catch (...) {
            err = std::current_exception();
        }
        lock.lock();

        if (err && !b->error)
            b->error = err;
        if (++b->done == b->n) {
            batch_ = nullptr;
            done_.notify_all();
        }
    }
}

void
CampaignRunner::forEach(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    Batch batch;
    batch.fn = &fn;
    batch.n = n;
    std::unique_lock<std::mutex> lock(mutex_);
    if (batch_)
        SMTAVF_FATAL("CampaignRunner::forEach is not re-entrant");
    batch_ = &batch;
    work_.notify_all();
    done_.wait(lock, [&] { return batch.done == batch.n; });
    lock.unlock();
    if (batch.error)
        std::rethrow_exception(batch.error);
}

std::vector<SimResult>
CampaignRunner::run(const std::vector<Experiment> &exps, ProgressFn progress)
{
    std::vector<SimResult> results(exps.size());
    std::mutex progress_mutex;
    std::size_t completed = 0;

    forEach(exps.size(), [&](std::size_t i) {
        auto t0 = std::chrono::steady_clock::now();
        results[i] = runExperiment(exps[i]);
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        if (progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            CampaignProgress p{i,        exps.size(), ++completed,
                               dt.count(), &exps[i],  &results[i]};
            progress(p);
        }
    });
    return results;
}

std::vector<SimResult>
runMixReplicated(CampaignRunner &pool, const MachineConfig &cfg,
                 const WorkloadMix &mix, unsigned replicas,
                 std::uint64_t budget)
{
    if (replicas == 0)
        SMTAVF_FATAL("need at least one replica");
    std::vector<Experiment> exps;
    exps.reserve(replicas);
    for (unsigned i = 0; i < replicas; ++i) {
        Experiment e;
        e.label = mix.name + "/seed" + std::to_string(cfg.seed + i);
        e.cfg = cfg;
        e.cfg.seed = cfg.seed + i; // match the serial helper exactly
        e.mix = mix;
        e.budget = budget;
        exps.push_back(std::move(e));
    }
    return pool.run(exps);
}

std::vector<SimResult>
runSingleThreadBaselines(CampaignRunner &pool, const MachineConfig &smt_cfg,
                         const WorkloadMix &mix, const SimResult &smt)
{
    if (smt.threads.size() != mix.contexts)
        SMTAVF_FATAL("SMT result has ", smt.threads.size(),
                     " threads for mix ", mix.name);
    std::vector<SimResult> baselines(mix.contexts);
    pool.forEach(mix.contexts, [&](std::size_t tid) {
        baselines[tid] = runSingleThreadBaseline(
            smt_cfg, mix, static_cast<ThreadId>(tid),
            smt.threads[tid].committed);
    });
    return baselines;
}

const char *
runStatusName(RunStatus s)
{
    switch (s) {
      case RunStatus::Ok:
        return "ok";
      case RunStatus::Failed:
        return "failed";
      case RunStatus::TimedOut:
        return "timed-out";
      case RunStatus::Quarantined:
        return "quarantined";
    }
    return "?";
}

std::size_t
CampaignReport::count(RunStatus s) const
{
    std::size_t n = 0;
    for (const auto &o : outcomes)
        if (o.status == s)
            ++n;
    return n;
}

std::vector<const SimResult *>
CampaignReport::results() const
{
    std::vector<const SimResult *> out;
    for (const auto &o : outcomes)
        if (o.status == RunStatus::Ok)
            out.push_back(&o.result);
    return out;
}

std::string
CampaignReport::failureReport() const
{
    if (allOk())
        return "";
    std::ostringstream os;
    os << "campaign finished with " << (outcomes.size() - count(RunStatus::Ok))
       << " of " << outcomes.size() << " runs unaccounted for:\n";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const RunOutcome &o = outcomes[i];
        if (o.status == RunStatus::Ok)
            continue;
        os << "  run " << i << " [" << o.label << "] seed " << o.seed << ": "
           << runStatusName(o.status) << " after " << o.attempts
           << (o.attempts == 1 ? " attempt" : " attempts");
        if (o.crash != CrashKind::None)
            os << " [" << crashKindName(o.crash) << "]";
        if (!o.error.empty()) {
            // First line only: livelock/invariant messages carry
            // multi-line state dumps meant for logs, not summaries.
            auto nl = o.error.find('\n');
            os << " -- " << o.error.substr(0, nl);
        }
        os << '\n';
    }
    return os.str();
}

std::string
campaignCsv(const std::vector<Experiment> &exps, const CampaignReport &report)
{
    if (exps.size() != report.outcomes.size())
        SMTAVF_FATAL("campaignCsv: ", exps.size(), " experiments but ",
                     report.outcomes.size(), " outcomes");

    std::ostringstream os;
    os << "label,seed,status,attempts,ipc,cycles,instructions";
    for (auto s : AvfReport::figureStructs())
        os << ',' << hwStructName(s);
    for (auto s : AvfReport::figureStructs())
        os << ",residual_" << hwStructName(s);
    os << ",error\n";

    auto fixed6 = [](double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6f", v);
        return std::string(buf);
    };

    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
        const RunOutcome &o = report.outcomes[i];
        os << exps[i].label << ',' << exps[i].cfg.seed << ','
           << runStatusName(o.status) << ',' << o.attempts;
        const std::size_t figs = AvfReport::figureStructs().size();
        if (o.status == RunStatus::Ok) {
            const SimResult &r = o.result;
            os << ',' << fixed6(r.ipc) << ',' << r.cycles << ','
               << r.totalCommitted;
            for (auto s : AvfReport::figureStructs())
                os << ',' << fixed6(r.avf.avf(s));
            for (auto s : AvfReport::figureStructs())
                os << ',' << fixed6(r.avf.residualAvf(s));
            os << ',';
        } else {
            // Same arity as an Ok row: empty numeric cells, then the
            // first line of the error with commas/newlines sanitized.
            for (std::size_t c = 0; c < 3 + 2 * figs; ++c)
                os << ',';
            std::string err = o.error.substr(0, o.error.find('\n'));
            for (char &c : err)
                if (c == ',')
                    c = ';';
            os << ',' << err;
        }
        os << '\n';
    }
    return os.str();
}

namespace
{

/**
 * Redirect fatal/panic into SimError exceptions for the lifetime of a
 * campaign, restoring the previous mode afterwards. Installed once by the
 * submitting thread (never per worker: workers share the global flag, and
 * per-worker save/restore would race).
 */
class ScopedLoggingThrows
{
  public:
    ScopedLoggingThrows() : prev_(loggingThrows()) { setLoggingThrows(true); }
    ~ScopedLoggingThrows() { setLoggingThrows(prev_); }

  private:
    bool prev_;
};

/**
 * One shared-warmup group: every experiment whose warmup prefix is
 * semantically identical (same workload, machine geometry, seed and
 * warmup length — checkpointFingerprint()) restores from one capture.
 */
struct WarmupGroup
{
    Checkpoint ck;     ///< thread mode: restored from memory
    std::string path;  ///< process mode: the file forked children load
    std::string error; ///< capture failed; members fail with this message
};

/** Per-group checkpoint file path ("" dir = TMPDIR or /tmp). */
std::string
warmupCheckpointPath(const std::string &dir, std::uint64_t key)
{
    std::string base = dir;
    if (base.empty()) {
        const char *t = std::getenv("TMPDIR");
        base = (t && *t) ? t : "/tmp";
    }
    char name[64];
    std::snprintf(name, sizeof(name), "/smtavf-warmup-%016llx-%ld.ckpt",
                  static_cast<unsigned long long>(key),
                  static_cast<long>(::getpid()));
    return base + name;
}

/**
 * Idle worker-local Simulators, shared by the pool's threads
 * (CampaignOptions::reuseWorkers). A worker takes a shape-compatible
 * instance, reset()s it for its run, and returns it on success; a run
 * that throws discards its instance instead, so no state from a broken
 * run can leak into a healthy one. Capacity is capped at the pool size
 * — more idle simulators than workers can never be in use at once.
 */
struct SlotPool
{
    std::mutex m;
    std::vector<std::unique_ptr<Simulator>> idle;
    std::size_t cap = 0;

    std::unique_ptr<Simulator>
    acquire(const MachineConfig &cfg, const WorkloadMix &mix)
    {
        std::lock_guard<std::mutex> lock(m);
        for (auto it = idle.begin(); it != idle.end(); ++it) {
            if ((*it)->canResetTo(cfg, mix)) {
                auto s = std::move(*it);
                idle.erase(it);
                return s;
            }
        }
        return nullptr;
    }

    void
    release(std::unique_ptr<Simulator> s)
    {
        if (!s)
            return;
        std::lock_guard<std::mutex> lock(m);
        if (idle.size() < cap)
            idle.push_back(std::move(s));
    }
};

} // namespace

CampaignReport
runTolerant(CampaignRunner &pool, const std::vector<Experiment> &exps,
            const CampaignOptions &opt, CampaignRunner::ProgressFn progress)
{
    CampaignReport report;
    report.outcomes.resize(exps.size());

    if (opt.runsPerChild == 0)
        SMTAVF_FATAL("CampaignOptions::runsPerChild must be at least 1");
    if (opt.runsPerChild > 1 && opt.isolate != IsolateMode::Process)
        SMTAVF_FATAL("CampaignOptions::runsPerChild > 1 batches runs per "
                     "sandboxed child and so requires process isolation; "
                     "thread mode already reuses workers in-process");

    std::vector<std::uint64_t> fps(exps.size());
    for (std::size_t i = 0; i < exps.size(); ++i) {
        fps[i] = experimentFingerprint(exps[i]);
        report.outcomes[i].label = exps[i].label;
        report.outcomes[i].seed = exps[i].cfg.seed;
    }

    std::unordered_map<std::uint64_t, SimResult> replay;
    if (opt.resume && !opt.journalPath.empty())
        replay = loadJournal(opt.journalPath);

    std::unique_ptr<RunJournal> journal;
    if (!opt.journalPath.empty())
        journal = std::make_unique<RunJournal>(opt.journalPath);

    const auto start = std::chrono::steady_clock::now();
    auto expired = [&] {
        if (opt.cancel && opt.cancel->load(std::memory_order_relaxed))
            return true;
        if (opt.softTimeoutSeconds <= 0.0)
            return false;
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - start;
        return dt.count() > opt.softTimeoutSeconds;
    };

    ScopedLoggingThrows throws_guard;

    // Shared warmup: simulate each distinct warmup prefix once and let
    // every run in the group restore the captured checkpoint instead of
    // re-simulating it. Groups are keyed by the warmup checkpoint
    // fingerprint, so two experiments share a capture exactly when their
    // warmup-relevant state (workload, machine, seed, warmup length —
    // protection excluded, except under PRAT where the throttle makes
    // the assignment timing-affecting and the fingerprint folds it in,
    // splitting the groups) is identical. A group whose members are all
    // satisfied by the resume journal is never captured.
    const bool share = opt.sharedWarmup && !opt.runFn;
    std::unordered_map<std::uint64_t, WarmupGroup> warmups;
    if (share) {
        std::vector<std::uint64_t> order;
        std::unordered_map<std::uint64_t, std::size_t> first;
        for (std::size_t i = 0; i < exps.size(); ++i) {
            const Experiment &e = exps[i];
            if (e.warmup == 0 || replay.count(fps[i]))
                continue;
            std::uint64_t key =
                checkpointFingerprint(e.cfg, e.mix, e.warmup, true);
            if (first.emplace(key, i).second)
                order.push_back(key);
        }
        for (std::uint64_t key : order)
            warmups.emplace(key, WarmupGroup{});
        // Captures run in the parent on the pool (even in process mode:
        // only the measured runs fork). Fatal paths unwind as exceptions
        // under the logging guard and poison just their own group.
        pool.forEach(order.size(), [&](std::size_t gi) {
            const std::uint64_t key = order[gi];
            WarmupGroup &g = warmups.at(key);
            const Experiment &e = exps[first.at(key)];
            try {
                if (opt.warmupCheckpoint &&
                    opt.warmupCheckpoint->configFingerprint == key) {
                    // Caller already simulated this exact warmup.
                    if (opt.isolate == IsolateMode::Process) {
                        g.path = warmupCheckpointPath(opt.checkpointDir, key);
                        saveCheckpointFile(*opt.warmupCheckpoint, g.path);
                    } else {
                        g.ck = *opt.warmupCheckpoint;
                    }
                    return;
                }
                if (expired())
                    throw std::runtime_error(
                        "warmup not captured: campaign cancelled or past "
                        "its soft timeout");
                MachineConfig cfg = e.cfg;
                if (opt.isolate == IsolateMode::Thread && opt.cancel &&
                    opt.cancelCheckCycles > 0) {
                    cfg.cancel = opt.cancel;
                    cfg.cancelCheckCycles = opt.cancelCheckCycles;
                }
                Simulator sim(cfg, e.mix);
                g.ck = sim.captureWarmupCheckpoint(e.warmup);
                if (opt.isolate == IsolateMode::Process) {
                    g.path = warmupCheckpointPath(opt.checkpointDir, key);
                    saveCheckpointFile(g.ck, g.path);
                    g.ck = Checkpoint{}; // children read the file
                }
            } catch (const std::exception &err) {
                g.error = err.what();
            } catch (const SimError &err) {
                g.error = err.message;
            }
        });
    }

    // Core of one run. When @p slot is non-null the worker owns a
    // reusable Simulator slot: a shape-compatible instance is reset() in
    // place instead of reconstructed, which is where the campaign
    // throughput win lives (docs/PERFORMANCE.md). A run that throws
    // discards the slot's instance — a half-run simulator must never
    // carry state into the next run. Shared-warmup restores and runFn
    // seams bypass the slot (they construct per-run state anyway).
    auto run_one = [&](const Experiment &e, std::size_t i,
                       std::unique_ptr<Simulator> *slot) -> SimResult {
        if (opt.runFn)
            return opt.runFn(e, i);
        if (share && e.warmup > 0) {
            auto it = warmups.find(
                checkpointFingerprint(e.cfg, e.mix, e.warmup, true));
            if (it != warmups.end()) {
                const WarmupGroup &g = it->second;
                if (!g.error.empty())
                    throw std::runtime_error("shared warmup capture failed: "
                                             + g.error);
                std::uint64_t budget =
                    e.budget ? e.budget : defaultBudget(e.mix.contexts);
                Simulator sim(e.cfg, e.mix);
                if (!g.path.empty())
                    sim.restore(loadCheckpointFile(g.path));
                else
                    sim.restore(g.ck);
                return sim.run(budget);
            }
        }
        if (slot && opt.reuseWorkers && e.warmup == 0) {
            std::uint64_t budget =
                e.budget ? e.budget : defaultBudget(e.mix.contexts);
            auto &s = *slot;
            if (s && s->canResetTo(e.cfg, e.mix))
                s->reset(e.cfg, e.mix);
            else
                s = std::make_unique<Simulator>(e.cfg, e.mix);
            try {
                return s->run(budget);
            } catch (...) {
                s.reset();
                throw;
            }
        }
        return runExperiment(e);
    };

    std::mutex progress_mutex;
    std::size_t completed = 0;
    auto notify = [&](std::size_t i, double seconds) {
        if (!progress)
            return;
        RunOutcome &out = report.outcomes[i];
        std::lock_guard<std::mutex> lock(progress_mutex);
        CampaignProgress p{i,
                           exps.size(),
                           ++completed,
                           seconds,
                           &exps[i],
                           out.status == RunStatus::Ok ? &out.result
                                                       : nullptr,
                           &out};
        progress(p);
    };

    // Apply one child/thread outcome to run i's record. Returns true when
    // the run is settled; false leaves the retryable failure in @p msg.
    auto applyChild = [&](ChildOutcome &&co, std::size_t i, RunOutcome &out,
                          std::string &msg) -> bool {
        switch (co.kind) {
        case ChildOutcome::Kind::Result:
            out.result = std::move(co.result);
            out.status = RunStatus::Ok;
            out.error.clear();
            if (journal)
                journal->append(fps[i], out.result);
            return true;
        case ChildOutcome::Kind::Livelock:
        case ChildOutcome::Kind::Cancelled:
            // Deterministic (livelock) or deliberate (cancel): never
            // retried, like thread mode.
            out.status = RunStatus::TimedOut;
            out.error = std::move(co.message);
            return true;
        case ChildOutcome::Kind::Crash:
            out.crash = co.crash;
            if (co.crash == CrashKind::CpuLimit ||
                co.crash == CrashKind::HardTimeout) {
                // A run that burned past its CPU/wall budget would burn
                // through it again: timed out, not retried.
                out.status = RunStatus::TimedOut;
                out.error = std::move(co.message);
                return true;
            }
            msg = std::move(co.message);
            return false;
        case ChildOutcome::Kind::Error:
            msg = std::move(co.message);
            return false;
        }
        return false;
    };

    // Shared retry policy: returns true when the run should be attempted
    // again, false once it has been settled as Quarantined or Failed.
    auto retryable = [&](RunOutcome &out, std::string &prev_error,
                         const std::string &msg) -> bool {
        out.error = msg;
        if (!prev_error.empty() && msg == prev_error) {
            // Same seed, same failure, twice: a deterministic bug, not
            // transient flakiness.
            out.status = RunStatus::Quarantined;
            return false;
        }
        prev_error = msg;
        if (out.attempts > opt.retries || expired()) {
            out.status = RunStatus::Failed;
            return false;
        }
        return true;
    };

    SlotPool slots;
    slots.cap = pool.jobs();

    auto run_single = [&](std::size_t i) {
        auto t0 = std::chrono::steady_clock::now();
        RunOutcome &out = report.outcomes[i];

        // Thread-mode cancel poll: wire the campaign's flag into this
        // run's config so Simulator::run() can unwind mid-budget. Both
        // knobs are fingerprint-excluded, so journal keys are unchanged.
        // (Process mode skips this: the child's copy of the flag never
        // flips; the supervisor's SIGKILL handles cancellation there.)
        const Experiment *exp = &exps[i];
        Experiment wired;
        if (opt.isolate == IsolateMode::Thread && opt.cancel &&
            opt.cancelCheckCycles > 0) {
            wired = exps[i];
            wired.cfg.cancel = opt.cancel;
            wired.cfg.cancelCheckCycles = opt.cancelCheckCycles;
            exp = &wired;
        }

        if (auto it = replay.find(fps[i]); it != replay.end()) {
            out.status = RunStatus::Ok;
            out.result = it->second;
            out.fromJournal = true;
        } else if (expired()) {
            out.status = RunStatus::TimedOut;
            out.error = "not started: campaign cancelled or past its "
                        "soft timeout";
        } else {
            std::string prev_error;
            for (;;) {
                ++out.attempts;
                if (out.attempts > 1 && opt.backoffSeconds > 0.0)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(retryBackoffSeconds(
                            out.attempts - 1, out.seed,
                            opt.backoffSeconds)));
                out.crash = CrashKind::None;
                std::string msg;
                bool settled = false;
                if (opt.isolate == IsolateMode::Process) {
                    ChildLimits lim;
                    lim.hardTimeoutSeconds = opt.hardTimeoutSeconds;
                    lim.cpuSeconds = opt.childCpuSeconds;
                    lim.memoryBytes = opt.childMemoryBytes;
                    lim.cancel = opt.cancel;
                    ChildOutcome co = runInChild(
                        [&] { return run_one(*exp, i, nullptr); }, lim);
                    settled = applyChild(std::move(co), i, out, msg);
                } else {
                    // Take a shape-compatible idle simulator if one
                    // exists; return it only when the run succeeds.
                    std::unique_ptr<Simulator> slot;
                    const bool use_slot = opt.reuseWorkers && !opt.runFn &&
                                          exp->warmup == 0;
                    if (use_slot)
                        slot = slots.acquire(exp->cfg, exp->mix);
                    try {
                        out.result =
                            run_one(*exp, i, use_slot ? &slot : nullptr);
                        out.status = RunStatus::Ok;
                        out.error.clear();
                        if (journal)
                            journal->append(fps[i], out.result);
                        settled = true;
                        if (use_slot)
                            slots.release(std::move(slot));
                    } catch (const LivelockError &err) {
                        // Deterministic by construction: the same seed
                        // spins through the same window. Never retried.
                        out.status = RunStatus::TimedOut;
                        out.error = err.what();
                        settled = true;
                    } catch (const CancelledError &err) {
                        // The run was healthy; the campaign was asked to
                        // stop. Timed out, never retried.
                        out.status = RunStatus::TimedOut;
                        out.error = err.what();
                        settled = true;
                    } catch (const std::exception &err) {
                        msg = err.what();
                    } catch (const SimError &err) {
                        msg = err.message;
                    }
                }
                if (settled)
                    break;
                if (!retryable(out, prev_error, msg))
                    break;
            }
        }

        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        notify(i, dt.count());
    };

    // Batched process isolation: consecutive submission-order slices of
    // runsPerChild runs share ONE forked child, which builds a single
    // worker-local Simulator lazily and reuses it across the batch over
    // the framed pipe protocol (runBatchInChild). A crash settles or
    // retries only the run it is attributed to; completed frames survive,
    // and the unstarted remainder is re-dispatched in a fresh child
    // without being charged an attempt.
    auto run_batch = [&](const std::vector<std::size_t> &members) {
        std::vector<std::size_t> pending;
        std::unordered_map<std::size_t, std::string> prev_errors;
        for (std::size_t i : members) {
            RunOutcome &out = report.outcomes[i];
            if (auto it = replay.find(fps[i]); it != replay.end()) {
                out.status = RunStatus::Ok;
                out.result = it->second;
                out.fromJournal = true;
                notify(i, 0.0);
            } else {
                pending.push_back(i);
            }
        }

        while (!pending.empty()) {
            if (expired()) {
                for (std::size_t i : pending) {
                    RunOutcome &out = report.outcomes[i];
                    if (out.attempts == 0) {
                        out.status = RunStatus::TimedOut;
                        out.error = "not started: campaign cancelled or "
                                    "past its soft timeout";
                    } else {
                        out.status = RunStatus::Failed;
                    }
                    notify(i, 0.0);
                }
                break;
            }

            // Back off before a retry child, keyed to the head retried
            // run so replays of the campaign sleep identically.
            {
                const RunOutcome &head = report.outcomes[pending.front()];
                if (head.attempts > 0 && opt.backoffSeconds > 0.0)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(retryBackoffSeconds(
                            head.attempts, head.seed, opt.backoffSeconds)));
            }

            ChildLimits lim;
            // The supervisor scales the wall deadline by the batch size;
            // RLIMIT_CPU has no per-run re-arm, so scale it here.
            lim.hardTimeoutSeconds = opt.hardTimeoutSeconds;
            lim.cpuSeconds = opt.childCpuSeconds
                                 ? opt.childCpuSeconds * pending.size()
                                 : 0;
            lim.memoryBytes = opt.childMemoryBytes;
            lim.cancel = opt.cancel;

            auto t0 = std::chrono::steady_clock::now();
            const std::vector<std::size_t> snapshot = pending;
            // The slot lives in the child after fork(); the parent never
            // constructs the simulator. shared_ptr keeps the lambda
            // copyable for std::function.
            auto child_slot =
                std::make_shared<std::unique_ptr<Simulator>>();
            ChildBatchOutcome bo = runBatchInChild(
                snapshot.size(),
                [&, child_slot](std::size_t k) {
                    return run_one(exps[snapshot[k]], snapshot[k],
                                   child_slot.get());
                },
                lim);
            std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;

            // Attribute a death to the in-flight run; a child that died
            // without a started-but-unframed run (fork failure, death
            // between runs) charges the first unreported run so every
            // dispatch makes progress toward the retry bound.
            std::size_t attributed = ChildBatchOutcome::npos;
            if (bo.childDied && !bo.cancelled) {
                attributed = bo.inFlight;
                if (attributed == ChildBatchOutcome::npos)
                    for (std::size_t k = 0; k < snapshot.size(); ++k)
                        if (!bo.reported[k]) {
                            attributed = k;
                            break;
                        }
            }

            std::size_t processed = 0;
            for (std::size_t k = 0; k < snapshot.size(); ++k)
                if (bo.reported[k] || k == attributed)
                    ++processed;
            const double share =
                dt.count() / static_cast<double>(processed ? processed : 1);

            std::vector<std::size_t> next;
            for (std::size_t k = 0; k < snapshot.size(); ++k) {
                const std::size_t i = snapshot[k];
                RunOutcome &out = report.outcomes[i];
                if (!bo.reported[k] && k != attributed) {
                    // Unstarted (or torn past the crash point): not an
                    // attempt; re-dispatch. A cancelled batch drains on
                    // the next loop's expired() check.
                    next.push_back(i);
                    continue;
                }
                ++out.attempts;
                out.crash = CrashKind::None;
                ChildOutcome co;
                if (bo.reported[k]) {
                    co = std::move(bo.runs[k]);
                } else {
                    co.kind = ChildOutcome::Kind::Crash;
                    co.crash = bo.crash;
                    co.message = bo.crashMessage;
                }
                std::string msg;
                if (applyChild(std::move(co), i, out, msg)) {
                    notify(i, share);
                } else if (!retryable(out, prev_errors[i], msg)) {
                    notify(i, share);
                } else {
                    next.push_back(i);
                }
            }
            pending = std::move(next);
        }
    };

    if (opt.isolate == IsolateMode::Process && opt.runsPerChild > 1) {
        std::vector<std::vector<std::size_t>> batches;
        for (std::size_t i = 0; i < exps.size(); i += opt.runsPerChild) {
            std::vector<std::size_t> b;
            for (std::size_t j = i;
                 j < exps.size() && j < i + opt.runsPerChild; ++j)
                b.push_back(j);
            batches.push_back(std::move(b));
        }
        pool.forEach(batches.size(),
                     [&](std::size_t bi) { run_batch(batches[bi]); });
    } else {
        pool.forEach(exps.size(), [&](std::size_t i) { run_single(i); });
    }

    for (const auto &kv : warmups)
        if (!kv.second.path.empty())
            std::remove(kv.second.path.c_str());
    return report;
}

InjectionResult
runInjection(CampaignRunner &pool, const InjectionCampaign &campaign,
             std::uint64_t trials, std::uint64_t seed)
{
    InjectionResult total;
    if (campaign.traceSize() == 0 || trials == 0)
        return total;

    // Chunk trials so each pool task amortizes its scheduling cost;
    // verdict counts are sums, so any chunking/scheduling yields the
    // same totals as long as trial t always uses splitSeed(seed, t).
    constexpr std::uint64_t chunk = 256;
    const std::size_t chunks =
        static_cast<std::size_t>((trials + chunk - 1) / chunk);
    std::vector<InjectionResult> partial(chunks);

    pool.forEach(chunks, [&](std::size_t c) {
        std::uint64_t begin = static_cast<std::uint64_t>(c) * chunk;
        std::uint64_t end = std::min(trials, begin + chunk);
        InjectionResult &res = partial[c];
        for (std::uint64_t t = begin; t < end; ++t) {
            Rng rng(splitSeed(seed, t));
            auto origin = static_cast<std::size_t>(
                rng.uniform(campaign.traceSize()));
            ++res.trials;
            switch (campaign.injectAt(origin)) {
              case InjectionOutcome::Masked:
                ++res.masked;
                break;
              case InjectionOutcome::Corrupted:
                ++res.corrupted;
                break;
              case InjectionOutcome::Skipped:
                ++res.skipped;
                break;
            }
        }
    });

    for (const auto &p : partial) {
        total.trials += p.trials;
        total.corrupted += p.corrupted;
        total.masked += p.masked;
        total.skipped += p.skipped;
    }
    return total;
}

} // namespace smtavf
