#include "sim/experiment.hh"

#include <cmath>

#include "base/env.hh"
#include "base/logging.hh"
#include "sim/simulator.hh"

namespace smtavf
{

std::uint64_t
defaultBudget(unsigned contexts)
{
    // Paper: 50/100/200M instructions for 2/4/8 contexts, i.e. 25M per
    // context. We default to 25k per context and let SMTAVF_SCALE grow it.
    return 25000ull * contexts * benchScale();
}

MachineConfig
table1Config(unsigned contexts)
{
    MachineConfig cfg;
    cfg.contexts = contexts;
    return cfg; // defaults are Table 1
}

SimResult
runMix(const MachineConfig &cfg, const WorkloadMix &mix,
       std::uint64_t budget)
{
    if (budget == 0)
        budget = defaultBudget(mix.contexts);
    Simulator sim(cfg, mix);
    return sim.run(budget);
}

SimResult
runMix(const WorkloadMix &mix, FetchPolicyKind policy, std::uint64_t budget)
{
    MachineConfig cfg = table1Config(mix.contexts);
    cfg.fetchPolicy = policy;
    return runMix(cfg, mix, budget);
}

SimResult
runSingleThreadBaseline(const MachineConfig &smt_cfg, const WorkloadMix &mix,
                        ThreadId tid, std::uint64_t instr_budget)
{
    if (tid >= mix.contexts)
        SMTAVF_FATAL("baseline thread ", tid, " out of range for ",
                     mix.name);
    MachineConfig cfg = smt_cfg;
    cfg.contexts = 1;

    WorkloadMix st;
    st.name = mix.name + "-st-" + mix.benchmarks[tid];
    st.contexts = 1;
    st.type = mix.type;
    st.group = mix.group;
    st.benchmarks = {mix.benchmarks[tid]};

    // Replay the exact stream context `tid` had inside the SMT run.
    Simulator sim(cfg, st, {tid});
    return sim.run(instr_budget);
}

double
meanAvf(const std::vector<SimResult> &runs, HwStruct s)
{
    if (runs.empty())
        SMTAVF_FATAL("meanAvf over zero runs");
    double sum = 0.0;
    for (const auto &r : runs)
        sum += r.avf.avf(s);
    return sum / static_cast<double>(runs.size());
}

double
meanIpc(const std::vector<SimResult> &runs)
{
    if (runs.empty())
        SMTAVF_FATAL("meanIpc over zero runs");
    double sum = 0.0;
    for (const auto &r : runs)
        sum += r.ipc;
    return sum / static_cast<double>(runs.size());
}

std::vector<SimResult>
runMixReplicated(const MachineConfig &cfg, const WorkloadMix &mix,
                 unsigned replicas, std::uint64_t budget)
{
    if (replicas == 0)
        SMTAVF_FATAL("need at least one replica");
    std::vector<SimResult> runs;
    for (unsigned i = 0; i < replicas; ++i) {
        MachineConfig c = cfg;
        c.seed = cfg.seed + i;
        runs.push_back(runMix(c, mix, budget));
    }
    return runs;
}

namespace
{

MeanStd
meanStdOf(const std::vector<SimResult> &runs,
          double (*extract)(const SimResult &, HwStruct), HwStruct s)
{
    if (runs.empty())
        SMTAVF_FATAL("statistics over zero runs");
    double sum = 0.0, sq = 0.0;
    for (const auto &r : runs) {
        double v = extract(r, s);
        sum += v;
        sq += v * v;
    }
    double n = static_cast<double>(runs.size());
    MeanStd out;
    out.mean = sum / n;
    double var = sq / n - out.mean * out.mean;
    out.std = std::sqrt(var < 0 ? 0 : var);
    return out;
}

} // namespace

MeanStd
avfStats(const std::vector<SimResult> &runs, HwStruct s)
{
    return meanStdOf(
        runs, [](const SimResult &r, HwStruct hs) { return r.avf.avf(hs); },
        s);
}

MeanStd
ipcStats(const std::vector<SimResult> &runs)
{
    return meanStdOf(
        runs, [](const SimResult &r, HwStruct) { return r.ipc; },
        HwStruct::IQ);
}

} // namespace smtavf
