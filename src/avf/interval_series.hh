/**
 * @file
 * Instruction-windowed AVF sampling (`--avf-interval N`): every N committed
 * instructions, close a row recording the per-structure AVF and residual
 * AVF of exactly that window. Complements avf/timeline.hh, which windows by
 * *cycles* — instruction windows line up across configurations doing the
 * same work at different IPC, which is what sampled-AVF methodology wants.
 *
 * Windows are relative to the run's measured start: instruction 0 of the
 * series is the first committed instruction after warmup (or after a
 * restore point, for a restored run — a restored run's series covers only
 * the instructions it simulated itself). Like the timeline, bit-cycles
 * land in the window where their residency interval *closes*, so the
 * per-row conservation identity is over closed intervals: the sum of every
 * row's ACE bit-cycles equals the ledger's total at finish.
 */

#ifndef SMTAVF_AVF_INTERVAL_SERIES_HH
#define SMTAVF_AVF_INTERVAL_SERIES_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "avf/ledger.hh"

namespace smtavf
{

/** Per-N-committed-instructions AVF rows. */
class AvfIntervalSeries
{
  public:
    /** One closed window. */
    struct Row
    {
        std::uint64_t index = 0;      ///< 0-based window number
        std::uint64_t startInstr = 0; ///< committed count at window open
        std::uint64_t endInstr = 0;   ///< committed count at window close
        Cycle startCycle = 0;
        Cycle endCycle = 0;
        std::array<std::uint64_t, numHwStructs> aceDelta{};
        std::array<std::uint64_t, numHwStructs> residualDelta{};
        std::array<double, numHwStructs> avf{};
        std::array<double, numHwStructs> residualAvf{};
    };

    /**
     * @param ledger   sampled ledger (must outlive the series)
     * @param interval window length in committed instructions (> 0)
     */
    AvfIntervalSeries(const AvfLedger &ledger, std::uint64_t interval);

    /**
     * Start sampling: the measured window begins at @p committed /
     * @p now (call after warmup/restore, before the measured run).
     */
    void arm(std::uint64_t committed, Cycle now);

    /** Per-cycle check; closes rows as commit-count boundaries cross. */
    void tick(std::uint64_t committed, Cycle now);

    /** Close the final (possibly partial) row. Call after finalizeAvf. */
    void finish(std::uint64_t committed, Cycle now);

    std::uint64_t interval() const { return interval_; }
    const std::vector<Row> &data() const { return rows_; }

    /** The whole series as CSV (header + one line per row). */
    std::string csv() const;

  private:
    void closeRow(std::uint64_t committed, Cycle now);

    const AvfLedger &ledger_;
    std::uint64_t interval_;
    bool armed_ = false;
    std::uint64_t rowStartInstr_ = 0;
    Cycle rowStartCycle_ = 0;
    std::uint64_t nextBoundary_ = 0;
    std::array<std::uint64_t, numHwStructs> lastAce_{};
    std::array<std::uint64_t, numHwStructs> lastResidual_{};
    std::vector<Row> rows_;
};

} // namespace smtavf

#endif // SMTAVF_AVF_INTERVAL_SERIES_HH
