/**
 * @file
 * The AVF ledger: central accumulator of ACE / un-ACE bit-residency.
 *
 * Following Mukherjee et al. (MICRO-36), a structure's AVF is the average
 * fraction of its bits that hold ACE state:
 *
 *   AVF(s) = sum over intervals of (ACE bits x residency cycles)
 *            -------------------------------------------------------
 *                      bits(s) x total execution cycles
 *
 * Components report *closed* intervals with a final classification; the
 * deferred pieces (dynamic deadness) are resolved by DeadCodeAnalyzer
 * before reaching the ledger. Every interval carries the contributing
 * thread so per-thread AVF (the paper's Figures 3-4) falls out directly.
 */

#ifndef SMTAVF_AVF_LEDGER_HH
#define SMTAVF_AVF_LEDGER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "avf/structures.hh"
#include "base/arena.hh"
#include "base/types.hh"
#include "protect/scheme.hh"

namespace smtavf
{

/** Accumulates classified bit-residency per structure and thread. */
class AvfLedger
{
  public:
    explicit AvfLedger(unsigned num_threads);

    /**
     * Declare the total bit capacity of a structure. For per-thread
     * private structures (ROB, LSQ), @p per_thread_bits is the capacity of
     * one thread's instance — the denominator of that thread's AVF
     * contribution (Figure 3). Zero (default) means the structure is
     * shared and per-thread AVF uses the full capacity.
     */
    void setStructureBits(HwStruct s, std::uint64_t total_bits,
                          std::uint64_t per_thread_bits = 0);

    /**
     * Attach the protection assignment (protect/scheme.hh). Every ACE
     * interval recorded afterwards is split into covered vs. residual
     * bit-cycles per the per-structure scheme; the two tallies are
     * accumulated independently so the conservation identity
     * covered + residual == total ACE is a checkable invariant, not a
     * definition. Must be called before any interval lands (fatal
     * otherwise) — protection is a property of the whole run.
     */
    void setProtection(const ProtectionConfig &protection);

    const ProtectionConfig &protection() const { return protection_; }

    /**
     * Record a closed residency interval [start, end) of @p bits bits
     * belonging to thread @p tid in structure @p s, already classified.
     */
    void addInterval(HwStruct s, ThreadId tid, std::uint32_t bits,
                     Cycle start, Cycle end, bool ace);

    /** Fix the run length; AVFs are undefined before this is called. */
    void finalize(Cycle total_cycles);

    /**
     * Discard everything accumulated so far and start the measured window
     * at @p boundary — the warm-up boundary (Simulator `--warmup`). All
     * four tallies zero; finalize() later divides by end - boundary, so
     * AVFs cover exactly the post-warmup window. Callable any number of
     * times before finalize().
     */
    void resetTallies(Cycle boundary);

    /**
     * Worker-reuse hook: back to the exact post-construction state —
     * tallies zeroed, window base and protection cleared, un-finalized.
     * Structure geometry persists (the reusing core re-declares the same
     * bits). setProtection() becomes legal again. Allocation-free.
     */
    void reset();

    /** Start cycle of the measured window (0 unless resetTallies ran). */
    Cycle baseCycle() const { return baseCycle_; }

    /** Aggregate AVF of a structure over the whole run. */
    double avf(HwStruct s) const;

    /**
     * Residual AVF: the fraction of bits still vulnerable once the
     * structure's protection scheme is accounted for. Equals avf()
     * bit-exactly for unprotected structures.
     */
    double residualAvf(HwStruct s) const;

    /** The AVF contribution of one thread to a structure. */
    double threadAvf(HwStruct s, ThreadId tid) const;

    /** Fraction of bit-cycles occupied at all (ACE + un-ACE). */
    double occupancy(HwStruct s) const;

    /** Fraction of occupied bit-cycles that are ACE. */
    double aceShare(HwStruct s) const;

    std::uint64_t structureBits(HwStruct s) const;
    Cycle totalCycles() const { return totalCycles_; }
    unsigned numThreads() const { return numThreads_; }
    bool finalized() const { return finalized_; }

    /** Raw ACE bit-cycles (for tests and MITF computations). */
    std::uint64_t aceBitCycles(HwStruct s) const;
    std::uint64_t aceBitCycles(HwStruct s, ThreadId tid) const;
    std::uint64_t unAceBitCycles(HwStruct s) const;

    /** ACE bit-cycles covered by the structure's protection scheme. */
    std::uint64_t coveredAceBitCycles(HwStruct s) const;
    std::uint64_t coveredAceBitCycles(HwStruct s, ThreadId tid) const;

    /** ACE bit-cycles left vulnerable after protection. */
    std::uint64_t residualAceBitCycles(HwStruct s) const;
    std::uint64_t residualAceBitCycles(HwStruct s, ThreadId tid) const;

    /**
     * Checkpoint hook: the accumulated tallies and the window base.
     * Geometry (structBits_/perThreadBits_) and the protection split are
     * reconstructed by the restoring Simulator's constructor from its own
     * config — which the checkpoint fingerprint guarantees compatible.
     */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        ar(ace_);
        ar(unAce_);
        ar(aceCovered_);
        ar(aceResidual_);
        ar(baseCycle_);
    }

  private:
    std::size_t idx(HwStruct s) const
    {
        return static_cast<std::size_t>(s);
    }

    unsigned numThreads_;
    std::array<std::uint64_t, numHwStructs> structBits_{};
    std::array<std::uint64_t, numHwStructs> perThreadBits_{};
    // [structure][thread]
    std::array<AVec<std::uint64_t>, numHwStructs> ace_;
    std::array<AVec<std::uint64_t>, numHwStructs> unAce_;
    // ACE split by protection; aceCovered_ + aceResidual_ must equal ace_
    // (sim/invariants.cc proves the conservation every check period).
    std::array<AVec<std::uint64_t>, numHwStructs> aceCovered_;
    std::array<AVec<std::uint64_t>, numHwStructs> aceResidual_;
    ProtectionConfig protection_{};
    Cycle totalCycles_ = 0;
    Cycle baseCycle_ = 0;
    bool finalized_ = false;
};

} // namespace smtavf

#endif // SMTAVF_AVF_LEDGER_HH
