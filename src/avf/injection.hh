/**
 * @file
 * Statistical fault injection — the validation methodology the paper's
 * Sections 2 and 6 contrast with ACE analysis (Czeck & Siewiorek; Wang et
 * al.). A bit flip is injected into the destination value of a random
 * *committed* instruction and propagated through architectural dataflow
 * (registers and memory) over the recorded commit trace:
 *
 *  - an overwrite kills the taint in that location;
 *  - a consumer spreads it to its destination;
 *  - a tainted store taints memory; a load from tainted memory re-taints;
 *  - a tainted conditional branch or a tainted address is an immediate
 *    architectural corruption (control/address divergence);
 *  - if all taint dies out, the fault was masked.
 *
 * This adjudicates *transitive* deadness, which upper-bounds the
 * first-level dead-code analysis the AVF model uses: every FDD-dead
 * instruction is masked here, but chains that only feed dead work are
 * masked too. The gap between the two is exactly the conservatism of
 * first-level-only analysis, which bench_validation_injection quantifies.
 */

#ifndef SMTAVF_AVF_INJECTION_HH
#define SMTAVF_AVF_INJECTION_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "isa/instr.hh"

namespace smtavf
{

/** Architectural facts of one committed instruction. */
struct CommitRecord
{
    ThreadId tid;
    OpClass op;
    RegIndex destReg;
    RegIndex srcReg1;
    RegIndex srcReg2;
    Addr memAddr;
    std::uint8_t memSize;
    bool destDead; ///< the FDD verdict, for cross-checking
};

/**
 * Commit-order trace of a run (recorded when the config asks for it).
 * Instructions are retained as handles until finalize() because the FDD
 * verdict (destDead) only resolves after the next writer commits.
 */
class CommitTrace
{
  public:
    /** Record a committing instruction (verdicts may still be pending). */
    void append(const InstPtr &in) { pending_.push_back(in); }

    /** Materialize records once every deadness verdict is resolved. */
    void finalize();

    /** Finalized records in commit order. */
    const std::vector<CommitRecord> &records() const;

    std::size_t size() const
    {
        return finalized_ ? records_.size() : pending_.size();
    }
    bool empty() const { return size() == 0; }

  private:
    std::vector<InstPtr> pending_;
    std::vector<CommitRecord> records_;
    bool finalized_ = false;
};

/** Outcome of one injection trial. */
enum class InjectionOutcome
{
    Masked,    ///< all taint overwritten before any architectural effect
    Corrupted, ///< reached a branch/store/address or survived to the end
    Skipped    ///< origin had no injectable destination
};

/** Aggregate results of a campaign. */
struct InjectionResult
{
    std::uint64_t trials = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t masked = 0;
    std::uint64_t skipped = 0;

    double
    corruptionRate() const
    {
        auto judged = corrupted + masked;
        return judged ? static_cast<double>(corrupted) / judged : 0.0;
    }

    double
    maskedRate() const
    {
        auto judged = corrupted + masked;
        return judged ? static_cast<double>(masked) / judged : 0.0;
    }
};

/** Runs injection trials over a commit trace. */
class InjectionCampaign
{
  public:
    /**
     * @param trace     commit trace to inject into (not owned)
     * @param max_depth propagation window per trial (records of the same
     *                  thread examined after the origin); taint alive at
     *                  the window's end counts as corruption
     */
    explicit InjectionCampaign(const CommitTrace &trace,
                               std::size_t max_depth = 50000);

    /** Adjudicate a fault in the destination value of record @p origin. */
    InjectionOutcome injectAt(std::size_t origin) const;

    /** Run @p trials with random origins drawn from @p seed. */
    InjectionResult run(std::uint64_t trials, std::uint64_t seed) const;

    /** Records available as injection origins (the trace length). */
    std::size_t traceSize() const { return trace_.size(); }

  private:
    const CommitTrace &trace_;
    std::size_t maxDepth_;
};

} // namespace smtavf

#endif // SMTAVF_AVF_INJECTION_HH
