/**
 * @file
 * First-level dynamic dead-code analysis with deferred classification.
 *
 * An instruction is first-level dynamically dead (FDD) when its destination
 * register is overwritten before any later instruction reads it: a soft
 * error in any of its pipeline residency is architecturally masked, so its
 * bits are un-ACE everywhere (Mukherjee et al.). Deadness is only knowable
 * at the *next writer's* commit, so instructions park their closed
 * residency intervals (DynInstr::pending) here until resolution; the
 * analyzer then classifies them and forwards the bit-cycles to the ledger.
 *
 * Committed readers, not speculative ones, decide liveness: a consumer
 * that was squashed never architecturally read the value.
 */

#ifndef SMTAVF_AVF_DEAD_CODE_HH
#define SMTAVF_AVF_DEAD_CODE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "avf/ledger.hh"
#include "base/arena.hh"
#include "base/types.hh"
#include "isa/instr.hh"

namespace smtavf
{

/** Tracks pending producers per (thread, architectural register). */
class DeadCodeAnalyzer
{
  public:
    /**
     * @param num_threads hardware contexts
     * @param ledger      destination of resolved intervals
     * @param enabled     when false, every committed instruction resolves
     *                    live immediately (the "no dead-code analysis"
     *                    ablation of DESIGN.md)
     */
    DeadCodeAnalyzer(unsigned num_threads, AvfLedger &ledger, bool enabled);

    /**
     * Process one committing instruction: its register reads make pending
     * producers live; its register write (if any) resolves — and reports —
     * the previous unread producer of the same register as dead, then
     * parks this instruction as the new pending producer.
     *
     * @return true if this commit exposed a dead previous producer of the
     *         destination register (callers use this to classify the
     *         freed physical register's value interval).
     */
    bool onCommit(const InstPtr &in);

    /**
     * Resolve and forward the intervals of a squashed or wrong-path
     * instruction (always un-ACE; no deadness involved).
     */
    void onSquash(const InstPtr &in);

    /**
     * Resolve a still-in-flight instruction at end of run (conservatively
     * live; wrong-path instructions stay un-ACE via neverAce()).
     */
    void resolveLive(const InstPtr &in);

    /** End of run: every still-pending producer is conservatively live. */
    void finish();

    std::uint64_t deadInstructions() const { return deadCount_; }
    std::uint64_t resolvedInstructions() const { return resolvedCount_; }

    /** Worker-reuse hook: no pending producers, counters zeroed. */
    void
    reset()
    {
        pending_.assign(pending_.size(), {});
        deadCount_ = 0;
        resolvedCount_ = 0;
    }

    /** Fraction of resolved register-writing instructions found dead. */
    double
    deadFraction() const
    {
        return resolvedCount_
                   ? static_cast<double>(deadCount_) / resolvedCount_
                   : 0.0;
    }

    /**
     * Checkpoint hook: counters only. Checkpoints are captured at a
     * boundary where finish() has just resolved every pending producer
     * (conservatively live — the same rule the end of a run applies), so
     * the pending_ table is empty by construction and no instruction
     * objects ever need to travel.
     */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        ar(deadCount_);
        ar(resolvedCount_);
    }

  private:
    void resolve(const InstPtr &in, bool dead);

    AvfLedger &ledger_;
    bool enabled_;
    // pending unread producer per (thread, architectural register)
    AVec<std::array<InstPtr, numArchRegs>> pending_;
    std::uint64_t deadCount_ = 0;
    std::uint64_t resolvedCount_ = 0;
};

} // namespace smtavf

#endif // SMTAVF_AVF_DEAD_CODE_HH
