#include "avf/report.hh"

#include "base/logging.hh"
#include "base/table.hh"

namespace smtavf
{

AvfReport
AvfReport::fromLedger(const AvfLedger &ledger)
{
    if (!ledger.finalized())
        SMTAVF_PANIC("report from unfinalized ledger");

    AvfReport r;
    r.numThreads_ = ledger.numThreads();
    r.cycles_ = ledger.totalCycles();
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        if (ledger.structureBits(s) == 0)
            continue;
        r.avf_[i] = ledger.avf(s);
        r.occupancy_[i] = ledger.occupancy(s);
        r.residual_[i] = ledger.residualAvf(s);
        for (ThreadId t = 0; t < r.numThreads_; ++t)
            r.threadAvf_[i][t] = ledger.threadAvf(s, t);
    }
    return r;
}

AvfReport
AvfReport::restore(
    unsigned num_threads, Cycle cycles,
    const std::array<double, numHwStructs> &avf,
    const std::array<double, numHwStructs> &occupancy,
    const std::array<double, numHwStructs> &residual,
    const std::array<std::array<double, maxContexts>, numHwStructs>
        &thread_avf)
{
    if (num_threads == 0 || num_threads > maxContexts)
        SMTAVF_FATAL("restoring report with ", num_threads, " threads");
    AvfReport r;
    r.numThreads_ = num_threads;
    r.cycles_ = cycles;
    r.avf_ = avf;
    r.occupancy_ = occupancy;
    r.residual_ = residual;
    r.threadAvf_ = thread_avf;
    return r;
}

double
AvfReport::avf(HwStruct s) const
{
    return avf_[static_cast<std::size_t>(s)];
}

double
AvfReport::residualAvf(HwStruct s) const
{
    return residual_[static_cast<std::size_t>(s)];
}

double
AvfReport::threadAvf(HwStruct s, ThreadId tid) const
{
    if (tid >= numThreads_)
        SMTAVF_PANIC("threadAvf for unknown thread ", tid);
    return threadAvf_[static_cast<std::size_t>(s)][tid];
}

double
AvfReport::occupancy(HwStruct s) const
{
    return occupancy_[static_cast<std::size_t>(s)];
}

const std::vector<HwStruct> &
AvfReport::figureStructs()
{
    static const std::vector<HwStruct> order = {
        HwStruct::IQ, HwStruct::FU, HwStruct::RegFile,
        HwStruct::Dl1Data, HwStruct::Dl1Tag, HwStruct::ROB,
        HwStruct::LsqData, HwStruct::LsqTag,
    };
    return order;
}

std::string
AvfReport::str() const
{
    std::vector<std::string> header = {"structure", "AVF", "residual",
                                       "occupancy"};
    for (ThreadId t = 0; t < numThreads_; ++t)
        header.push_back("T" + std::to_string(t));
    TextTable table(std::move(header));

    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        if (occupancy_[i] == 0.0 && avf_[i] == 0.0)
            continue;
        std::vector<std::string> row = {hwStructName(s),
                                        TextTable::pct(avf_[i], 2),
                                        TextTable::pct(residual_[i], 2),
                                        TextTable::pct(occupancy_[i], 2)};
        for (ThreadId t = 0; t < numThreads_; ++t)
            row.push_back(TextTable::pct(threadAvf_[i][t], 2));
        table.addRow(std::move(row));
    }
    return table.str();
}

} // namespace smtavf
