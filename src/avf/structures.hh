/**
 * @file
 * Identifiers for the microarchitectural storage structures whose AVF the
 * framework tracks, plus their per-entry bit widths. Header-only and
 * dependency-free so low-level modules (isa) can reference it.
 *
 * The tracked set matches the paper's Figures 1-8: shared pipeline
 * structures (IQ, register file, function units), shared memory structures
 * (DL1 data, DL1 tag, DTLB) and per-thread structures (ROB, LSQ data,
 * LSQ tag). The ITLB is tracked as an extension.
 */

#ifndef SMTAVF_AVF_STRUCTURES_HH
#define SMTAVF_AVF_STRUCTURES_HH

#include <array>
#include <cstdint>

namespace smtavf
{

/** Hardware structure whose occupancy the AVF framework accounts. */
enum class HwStruct : std::uint8_t
{
    IQ,       ///< shared issue/instruction queue
    RegFile,  ///< shared physical register file pool (int + fp)
    FU,       ///< function-unit pipeline latches
    ROB,      ///< per-thread reorder buffers (accounted jointly)
    LsqData,  ///< load/store queue data fields
    LsqTag,   ///< load/store queue address CAM
    Dl1Data,  ///< L1 data-cache data array (per-byte liveness)
    Dl1Tag,   ///< L1 data-cache tag array
    Dtlb,     ///< data TLB entries
    Itlb,     ///< instruction TLB entries (extension)
    L2Data,   ///< unified L2 data array (extension, per-line granularity)
    L2Tag,    ///< unified L2 tag array (extension)
    NumStructs
};

/** Number of tracked structures. */
constexpr std::size_t numHwStructs =
    static_cast<std::size_t>(HwStruct::NumStructs);

/** Short display name used in reports (matches the paper's figure labels). */
const char *hwStructName(HwStruct s);

/**
 * Per-entry payload bit widths. These follow M-Sim-style field layouts:
 * an IQ entry carries opcode, three physical tags, an immediate and control
 * state; a ROB entry carries completion/exception state plus mappings; a
 * register is 64 data bits; an FU stage latch is modelled at 128 bits
 * (two 64-bit operands in flight); LSQ entries split into a 64-bit data
 * field and a 44-bit address CAM field; TLB entries hold VPN+PPN+flags.
 */
namespace bits
{
constexpr std::uint32_t iqEntry = 88;
constexpr std::uint32_t robEntry = 76;
constexpr std::uint32_t physReg = 64;
constexpr std::uint32_t fuLatch = 128;
constexpr std::uint32_t lsqData = 64;
constexpr std::uint32_t lsqTag = 44;
constexpr std::uint32_t cacheByte = 8;
constexpr std::uint32_t tlbEntry = 64;
} // namespace bits

} // namespace smtavf

#endif // SMTAVF_AVF_STRUCTURES_HH
