#include "avf/injection.hh"

#include <array>
#include <unordered_set>

#include "base/logging.hh"

namespace smtavf
{

void
CommitTrace::finalize()
{
    if (finalized_)
        return;
    records_.reserve(pending_.size());
    for (const auto &in : pending_)
        records_.push_back({in->tid, in->op, in->destReg, in->srcReg1,
                            in->srcReg2, in->memAddr, in->memSize,
                            in->destDead});
    pending_.clear();
    pending_.shrink_to_fit();
    finalized_ = true;
}

const std::vector<CommitRecord> &
CommitTrace::records() const
{
    if (!finalized_)
        SMTAVF_PANIC("commit trace read before finalize()");
    return records_;
}

InjectionCampaign::InjectionCampaign(const CommitTrace &trace,
                                     std::size_t max_depth)
    : trace_(trace), maxDepth_(max_depth)
{
    if (max_depth == 0)
        SMTAVF_FATAL("injection propagation window must be positive");
}

InjectionOutcome
InjectionCampaign::injectAt(std::size_t origin) const
{
    const auto &recs = trace_.records();
    if (origin >= recs.size())
        SMTAVF_PANIC("injection origin beyond the trace");
    const auto &o = recs[origin];
    if (o.destReg == invalidReg || isZeroReg(o.destReg))
        return InjectionOutcome::Skipped;

    // Taint state. Address spaces are per-thread, so propagation stays
    // inside the origin's thread (cross-thread sharing would need shared
    // memory, which the multiprogrammed mixes do not have).
    std::array<bool, numArchRegs> tainted_reg{};
    tainted_reg[o.destReg] = true;
    unsigned tainted_regs = 1;
    std::unordered_set<Addr> tainted_mem; // word-granular (4 bytes)

    auto mem_words = [](Addr addr, std::uint8_t size,
                        auto &&fn) {
        for (Addr a = addr & ~Addr{3}; a < addr + size; a += 4)
            fn(a);
    };

    std::size_t seen = 0;
    for (std::size_t j = origin + 1;
         j < recs.size() && seen < maxDepth_; ++j) {
        const auto &r = recs[j];
        if (r.tid != o.tid)
            continue;
        ++seen;

        bool src_taint =
            (r.srcReg1 != invalidReg && tainted_reg[r.srcReg1]) ||
            (r.srcReg2 != invalidReg && tainted_reg[r.srcReg2]);

        switch (r.op) {
          case OpClass::Load: {
            // Corrupted address: the access goes somewhere else entirely.
            if (r.srcReg1 != invalidReg && tainted_reg[r.srcReg1])
                return InjectionOutcome::Corrupted;
            bool mem_taint = false;
            mem_words(r.memAddr, r.memSize, [&](Addr a) {
                mem_taint |= tainted_mem.count(a) != 0;
            });
            src_taint = mem_taint;
            break;
          }

          case OpClass::Store: {
            if (r.srcReg1 != invalidReg && tainted_reg[r.srcReg1])
                return InjectionOutcome::Corrupted; // address corruption
            bool data_taint =
                r.srcReg2 != invalidReg && tainted_reg[r.srcReg2];
            mem_words(r.memAddr, r.memSize, [&](Addr a) {
                if (data_taint)
                    tainted_mem.insert(a);
                else
                    tainted_mem.erase(a); // overwrite kills memory taint
            });
            break;
          }

          case OpClass::BranchCond:
            if (src_taint)
                return InjectionOutcome::Corrupted; // control divergence
            break;

          default:
            break;
        }

        // Destination update: propagate or kill.
        if (r.destReg != invalidReg && !isZeroReg(r.destReg)) {
            bool was = tainted_reg[r.destReg];
            bool now = src_taint;
            if (was != now) {
                tainted_reg[r.destReg] = now;
                tainted_regs += now ? 1 : -1;
            }
        }

        if (tainted_regs == 0 && tainted_mem.empty())
            return InjectionOutcome::Masked;
    }

    // Taint alive at the end of the window: visible architectural state
    // differs, so count it as corruption (conservative).
    return InjectionOutcome::Corrupted;
}

InjectionResult
InjectionCampaign::run(std::uint64_t trials, std::uint64_t seed) const
{
    InjectionResult res;
    if (trace_.empty())
        return res;
    Rng rng(seed);
    for (std::uint64_t t = 0; t < trials; ++t) {
        auto origin =
            static_cast<std::size_t>(rng.uniform(trace_.size()));
        ++res.trials;
        switch (injectAt(origin)) {
          case InjectionOutcome::Masked:
            ++res.masked;
            break;
          case InjectionOutcome::Corrupted:
            ++res.corrupted;
            break;
          case InjectionOutcome::Skipped:
            ++res.skipped;
            break;
        }
    }
    return res;
}

} // namespace smtavf
