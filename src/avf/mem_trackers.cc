#include "avf/mem_trackers.hh"

#include <bit>

#include "base/logging.hh"

namespace smtavf
{

CacheVulnTracker::CacheVulnTracker(Cache &cache, AvfLedger &ledger,
                                   HwStruct data_struct, HwStruct tag_struct,
                                   bool per_byte)
    : ledger_(ledger), dataStruct_(data_struct), tagStruct_(tag_struct),
      lineBytes_(cache.config().lineBytes),
      granBytes_(per_byte ? 1 : cache.config().lineBytes),
      unitsPerLine_(lineBytes_ / granBytes_)
{
    auto lines = cache.numLines();
    lines_.resize(lines);
    units_.resize(static_cast<std::size_t>(lines) * unitsPerLine_);

    // 48-bit physical tag minus index/offset bits, plus valid/dirty/LRU.
    std::uint32_t offset_bits = std::countr_zero(lineBytes_);
    std::uint32_t index_bits = std::countr_zero(cache.numSets());
    tagBits_ = 48 - offset_bits - index_bits + 4;

    ledger_.setStructureBits(dataStruct_,
                             static_cast<std::uint64_t>(lines) * lineBytes_ *
                                 bits::cacheByte);
    ledger_.setStructureBits(tagStruct_,
                             static_cast<std::uint64_t>(lines) * tagBits_);
    cache.setObserver(this);
}

void
CacheVulnTracker::onFill(std::uint32_t slot, Addr line_addr, ThreadId tid,
                         Cycle now)
{
    (void)line_addr;
    auto &line = lines_.at(slot);
    if (line.valid)
        SMTAVF_PANIC("fill into a live tracked line (missing eviction)");
    line = {true, tid, now, now, false};
    auto base = static_cast<std::size_t>(slot) * unitsPerLine_;
    for (std::uint32_t b = 0; b < unitsPerLine_; ++b)
        units_[base + b] = {now, false};
}

void
CacheVulnTracker::onAccess(std::uint32_t slot, Addr addr, std::uint32_t size,
                           bool is_write, ThreadId tid, Cycle now)
{
    (void)tid;
    auto &line = lines_.at(slot);
    if (!line.valid)
        SMTAVF_PANIC("access to an invalid tracked line");
    line.lastAccess = now;
    if (is_write)
        line.dirty = true;

    std::uint32_t off = static_cast<std::uint32_t>(addr) &
                        (lineBytes_ - 1);
    std::uint32_t first = off / granBytes_;
    std::uint32_t last = (off + size + granBytes_ - 1) / granBytes_;
    if (last > unitsPerLine_)
        last = unitsPerLine_;

    auto base = static_cast<std::size_t>(slot) * unitsPerLine_;
    for (std::uint32_t b = first; b < last; ++b) {
        auto &unit = units_[base + b];
        // An interval ending in a read carried a consumed value: ACE.
        // One ending in an overwrite was never needed again: un-ACE.
        ledger_.addInterval(dataStruct_, line.tid,
                            granBytes_ * bits::cacheByte, unit.since, now,
                            !is_write);
        unit.since = now;
        if (is_write)
            unit.dirty = true;
    }
}

void
CacheVulnTracker::onEvict(std::uint32_t slot, bool dirty, Cycle now)
{
    auto &line = lines_.at(slot);
    if (!line.valid)
        SMTAVF_PANIC("evicting an invalid tracked line");

    auto base = static_cast<std::size_t>(slot) * unitsPerLine_;
    for (std::uint32_t b = 0; b < unitsPerLine_; ++b) {
        auto &unit = units_[base + b];
        // Dirty bytes must survive to the writeback; clean tails are dead.
        ledger_.addInterval(dataStruct_, line.tid,
                            granBytes_ * bits::cacheByte, unit.since, now,
                            unit.dirty);
    }

    if (dirty || line.dirty) {
        ledger_.addInterval(tagStruct_, line.tid, tagBits_, line.fillCycle,
                            now, true);
    } else {
        ledger_.addInterval(tagStruct_, line.tid, tagBits_, line.fillCycle,
                            line.lastAccess, true);
        ledger_.addInterval(tagStruct_, line.tid, tagBits_, line.lastAccess,
                            now, false);
    }
    line.valid = false;
}

TlbVulnTracker::TlbVulnTracker(Tlb &tlb, AvfLedger &ledger,
                               HwStruct structure)
    : ledger_(ledger), struct_(structure)
{
    entries_.resize(tlb.config().entries);
    ledger_.setStructureBits(structure,
                             static_cast<std::uint64_t>(
                                 tlb.config().entries) * bits::tlbEntry);
    tlb.setObserver(this);
}

void
TlbVulnTracker::onFill(std::uint32_t slot, ThreadId tid, Cycle now)
{
    entries_.at(slot) = {true, tid, now};
}

void
TlbVulnTracker::onHit(std::uint32_t slot, ThreadId tid, Cycle now)
{
    (void)tid;
    auto &e = entries_.at(slot);
    if (!e.valid)
        SMTAVF_PANIC("TLB hit on invalid tracked entry");
    ledger_.addInterval(struct_, e.tid, bits::tlbEntry, e.last, now, true);
    e.last = now;
}

void
TlbVulnTracker::onEvict(std::uint32_t slot, Cycle now)
{
    auto &e = entries_.at(slot);
    if (!e.valid)
        SMTAVF_PANIC("TLB eviction of invalid tracked entry");
    ledger_.addInterval(struct_, e.tid, bits::tlbEntry, e.last, now, false);
    e.valid = false;
}

} // namespace smtavf
