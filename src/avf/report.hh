/**
 * @file
 * End-of-run AVF report: a value object extracted from the ledger that
 * experiments, tests and bench harnesses consume without holding the
 * simulator alive.
 */

#ifndef SMTAVF_AVF_REPORT_HH
#define SMTAVF_AVF_REPORT_HH

#include <array>
#include <string>
#include <vector>

#include "avf/ledger.hh"

namespace smtavf
{

/** Immutable per-run AVF summary. */
class AvfReport
{
  public:
    AvfReport() = default;

    /** Snapshot a finalized ledger. */
    static AvfReport fromLedger(const AvfLedger &ledger);

    /**
     * Rebuild a report from previously extracted values — the
     * deserialization path of the campaign run journal (sim/journal.hh).
     * The arrays are indexed by HwStruct; @p thread_avf by [struct][tid].
     */
    static AvfReport
    restore(unsigned num_threads, Cycle cycles,
            const std::array<double, numHwStructs> &avf,
            const std::array<double, numHwStructs> &occupancy,
            const std::array<double, numHwStructs> &residual,
            const std::array<std::array<double, maxContexts>, numHwStructs>
                &thread_avf);

    /** Aggregate AVF of a structure. */
    double avf(HwStruct s) const;

    /**
     * Residual AVF after the run's protection assignment
     * (protect/scheme.hh). Equals avf() bit-exactly for unprotected
     * structures.
     */
    double residualAvf(HwStruct s) const;

    /** One thread's AVF contribution to a structure. */
    double threadAvf(HwStruct s, ThreadId tid) const;

    /** Occupancy (ACE + un-ACE share of bit-cycles). */
    double occupancy(HwStruct s) const;

    unsigned numThreads() const { return numThreads_; }
    Cycle cycles() const { return cycles_; }

    /** Human-readable dump of all tracked structures. */
    std::string str() const;

    /**
     * The structures the paper's figures plot, in figure order:
     * IQ, FU, Reg, DL1_data, DL1_tag, ROB, LSQ_data, LSQ_tag.
     */
    static const std::vector<HwStruct> &figureStructs();

  private:
    unsigned numThreads_ = 0;
    Cycle cycles_ = 0;
    std::array<double, numHwStructs> avf_{};
    std::array<double, numHwStructs> occupancy_{};
    std::array<double, numHwStructs> residual_{};
    std::array<std::array<double, maxContexts>, numHwStructs> threadAvf_{};
};

} // namespace smtavf

#endif // SMTAVF_AVF_REPORT_HH
