/**
 * @file
 * Windowed AVF tracking: samples the ledger's ACE accumulators at a fixed
 * cycle interval so the per-window AVF of each structure can be plotted
 * over execution — the microarchitecture vulnerability *phase behaviour*
 * the authors study in their companion paper (Fu, Poe, Li & Fortes,
 * MASCOTS 2006; reference [8] of the reproduced paper).
 *
 * Granularity note: the ledger books an interval's bit-cycles when the
 * interval *closes* (commit/squash/evict), so a long-latency residency
 * lands in the window where it resolves. Windows of a few thousand cycles
 * smooth this; per-window values can legitimately exceed 1 right after a
 * long stall drains.
 */

#ifndef SMTAVF_AVF_TIMELINE_HH
#define SMTAVF_AVF_TIMELINE_HH

#include <array>
#include <vector>

#include "avf/ledger.hh"

namespace smtavf
{

/** Periodic AVF samples over a run. */
class AvfTimeline
{
  public:
    /**
     * @param ledger   the ledger to sample (must outlive the timeline)
     * @param interval window length in cycles (> 0)
     */
    AvfTimeline(const AvfLedger &ledger, Cycle interval);

    /**
     * Close the current window if @p now crossed a boundary. Call once
     * per cycle (cheap: one comparison off the boundary).
     */
    void tick(Cycle now);

    /** Close the final (possibly partial) window. */
    void finish(Cycle now);

    Cycle interval() const { return interval_; }
    std::size_t windows() const { return windows_.size(); }

    /** Per-window AVF of @p s (window w covers [w*interval, ...)). */
    double windowAvf(HwStruct s, std::size_t w) const;

    /** Coefficient-of-variation-like spread of a structure's phases. */
    double variability(HwStruct s) const;

  private:
    struct Window
    {
        Cycle length = 0;
        std::array<std::uint64_t, numHwStructs> aceDelta{};
    };

    void closeWindow(Cycle end);

    const AvfLedger &ledger_; ///< only read until finish()
    std::array<std::uint64_t, numHwStructs> bits_{}; ///< snapshot at ctor
    Cycle interval_;
    Cycle windowStart_ = 0;
    Cycle nextBoundary_;
    std::array<std::uint64_t, numHwStructs> lastAce_{};
    std::vector<Window> windows_;
};

} // namespace smtavf

#endif // SMTAVF_AVF_TIMELINE_HH
