#include "avf/interval_series.hh"

#include <iomanip>
#include <sstream>

#include "base/logging.hh"

namespace smtavf
{

AvfIntervalSeries::AvfIntervalSeries(const AvfLedger &ledger,
                                     std::uint64_t interval)
    : ledger_(ledger), interval_(interval)
{
    if (interval == 0)
        SMTAVF_FATAL("zero AVF sampling interval");
}

void
AvfIntervalSeries::arm(std::uint64_t committed, Cycle now)
{
    if (armed_)
        SMTAVF_FATAL("AvfIntervalSeries armed twice");
    armed_ = true;
    rowStartInstr_ = committed;
    rowStartCycle_ = now;
    nextBoundary_ = committed + interval_;
    for (std::size_t s = 0; s < numHwStructs; ++s) {
        auto hs = static_cast<HwStruct>(s);
        lastAce_[s] = ledger_.aceBitCycles(hs);
        lastResidual_[s] = ledger_.residualAceBitCycles(hs);
    }
}

void
AvfIntervalSeries::closeRow(std::uint64_t committed, Cycle now)
{
    Row row;
    row.index = rows_.size();
    row.startInstr = rowStartInstr_;
    row.endInstr = committed;
    row.startCycle = rowStartCycle_;
    row.endCycle = now;
    Cycle span = now > rowStartCycle_ ? now - rowStartCycle_ : 0;
    for (std::size_t s = 0; s < numHwStructs; ++s) {
        auto hs = static_cast<HwStruct>(s);
        std::uint64_t ace = ledger_.aceBitCycles(hs);
        std::uint64_t residual = ledger_.residualAceBitCycles(hs);
        row.aceDelta[s] = ace - lastAce_[s];
        row.residualDelta[s] = residual - lastResidual_[s];
        lastAce_[s] = ace;
        lastResidual_[s] = residual;
        std::uint64_t bits = ledger_.structureBits(hs);
        double denom = static_cast<double>(bits) * static_cast<double>(span);
        row.avf[s] = denom > 0 ? row.aceDelta[s] / denom : 0.0;
        row.residualAvf[s] =
            denom > 0 ? row.residualDelta[s] / denom : 0.0;
    }
    rows_.push_back(row);
    rowStartInstr_ = committed;
    rowStartCycle_ = now;
}

void
AvfIntervalSeries::tick(std::uint64_t committed, Cycle now)
{
    if (!armed_)
        return;
    while (committed >= nextBoundary_) {
        closeRow(nextBoundary_, now);
        nextBoundary_ += interval_;
    }
}

void
AvfIntervalSeries::finish(std::uint64_t committed, Cycle now)
{
    if (!armed_)
        SMTAVF_FATAL("AvfIntervalSeries finish before arm");
    // The final partial window also sweeps up the end-of-run tallies
    // (finalizeAvf closes every open residency into it).
    if (committed > rowStartInstr_ || rows_.empty())
        closeRow(committed, now);
    armed_ = false;
}

std::string
AvfIntervalSeries::csv() const
{
    std::ostringstream os;
    os << "window,start_instr,end_instr,start_cycle,end_cycle";
    for (std::size_t s = 0; s < numHwStructs; ++s) {
        auto hs = static_cast<HwStruct>(s);
        os << ",avf_" << hwStructName(hs) << ",ravf_" << hwStructName(hs);
    }
    os << "\n";
    os << std::setprecision(9);
    for (const auto &row : rows_) {
        os << row.index << ',' << row.startInstr << ',' << row.endInstr
           << ',' << row.startCycle << ',' << row.endCycle;
        for (std::size_t s = 0; s < numHwStructs; ++s)
            os << ',' << row.avf[s] << ',' << row.residualAvf[s];
        os << "\n";
    }
    return os.str();
}

} // namespace smtavf
