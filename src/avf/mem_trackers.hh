/**
 * @file
 * AVF trackers for address-based structures (Biswas et al., ISCA-32):
 * the DL1 data array at per-byte granularity, the DL1 tag array, and the
 * TLBs. They observe the cache/TLB models through the observer interfaces
 * and emit classified residency intervals straight to the ledger.
 *
 * Classification rules:
 *  - data byte: an interval that *ends in a read* is ACE (the value was
 *    consumed); one that ends in an overwrite or clean eviction is un-ACE;
 *    a dirty byte's final interval is ACE through eviction (the value must
 *    survive writeback).
 *  - tag: live tag bits participate in every lookup of the set, so a dirty
 *    line's tag is ACE for its entire residency and a clean line's tag is
 *    ACE up to its last access (the tail until eviction is un-ACE). This
 *    is what makes DL1-tag AVF exceed DL1-data AVF in the paper: only the
 *    referenced bytes of a block are ACE, but all its tag bits are.
 *  - TLB entry: ACE between uses, un-ACE from last use to eviction.
 */

#ifndef SMTAVF_AVF_MEM_TRACKERS_HH
#define SMTAVF_AVF_MEM_TRACKERS_HH

#include <cstdint>
#include <vector>

#include "avf/ledger.hh"
#include "base/arena.hh"
#include "mem/cache.hh"
#include "mem/tlb.hh"

namespace smtavf
{

/** Per-byte data-array plus tag-array AVF tracking for one cache. */
class CacheVulnTracker : public CacheObserver
{
  public:
    /**
     * @param cache       the cache to observe (registers itself)
     * @param ledger      interval destination
     * @param data_struct ledger id for the data array
     * @param tag_struct  ledger id for the tag array
     * @param per_byte    track data liveness per byte (true, the paper's
     *                    model) or per whole line (the DESIGN.md ablation)
     */
    CacheVulnTracker(Cache &cache, AvfLedger &ledger, HwStruct data_struct,
                     HwStruct tag_struct, bool per_byte = true);

    void onFill(std::uint32_t slot, Addr line_addr, ThreadId tid,
                Cycle now) override;
    void onAccess(std::uint32_t slot, Addr addr, std::uint32_t size,
                  bool is_write, ThreadId tid, Cycle now) override;
    void onEvict(std::uint32_t slot, bool dirty, Cycle now) override;

    /** Tag bits modelled per line (address tag + valid/dirty/LRU state). */
    std::uint32_t tagBitsPerLine() const { return tagBits_; }

    /** Worker-reuse hook: exact post-construction state, allocation-free. */
    void
    reset()
    {
        lines_.assign(lines_.size(), LineState{});
        units_.assign(units_.size(), ByteState{});
    }

    /**
     * Checkpoint hook: the open residency intervals (absolute cycles; the
     * restored clock continues from the same value, so they close with
     * identical spans). Geometry is reconstructed from the cache config.
     */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        ar(lines_);
        ar(units_);
    }

  private:
    struct ByteState
    {
        Cycle since = 0;
        bool dirty = false;

        template <class Ar>
        void
        serialize(Ar &ar)
        {
            ar(since);
            ar(dirty);
        }
    };

    struct LineState
    {
        bool valid = false;
        ThreadId tid = 0;
        Cycle fillCycle = 0;
        Cycle lastAccess = 0;
        bool dirty = false;

        template <class Ar>
        void
        serialize(Ar &ar)
        {
            ar(valid);
            ar(tid);
            ar(fillCycle);
            ar(lastAccess);
            ar(dirty);
        }
    };

    AvfLedger &ledger_;
    HwStruct dataStruct_;
    HwStruct tagStruct_;
    std::uint32_t lineBytes_;
    /** Tracking granule: 1 byte (per-byte mode) or the whole line. */
    std::uint32_t granBytes_;
    std::uint32_t unitsPerLine_;
    std::uint32_t tagBits_;
    AVec<LineState> lines_;
    AVec<ByteState> units_; ///< lines x unitsPerLine, flattened
};

/** TLB entry residency AVF tracking. */
class TlbVulnTracker : public TlbObserver
{
  public:
    TlbVulnTracker(Tlb &tlb, AvfLedger &ledger, HwStruct structure);

    void onFill(std::uint32_t slot, ThreadId tid, Cycle now) override;
    void onHit(std::uint32_t slot, ThreadId tid, Cycle now) override;
    void onEvict(std::uint32_t slot, Cycle now) override;

    /** Worker-reuse hook: exact post-construction state, allocation-free. */
    void reset() { entries_.assign(entries_.size(), EntryState{}); }

    /** Checkpoint hook (see CacheVulnTracker::serialize). */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        ar(entries_);
    }

  private:
    struct EntryState
    {
        bool valid = false;
        ThreadId tid = 0;
        Cycle last = 0;

        template <class Ar>
        void
        serialize(Ar &ar)
        {
            ar(valid);
            ar(tid);
            ar(last);
        }
    };

    AvfLedger &ledger_;
    HwStruct struct_;
    AVec<EntryState> entries_;
};

} // namespace smtavf

#endif // SMTAVF_AVF_MEM_TRACKERS_HH
