#include "avf/timeline.hh"

#include <cmath>

#include "base/logging.hh"

namespace smtavf
{

AvfTimeline::AvfTimeline(const AvfLedger &ledger, Cycle interval)
    : ledger_(ledger), interval_(interval), nextBoundary_(interval)
{
    if (interval == 0)
        SMTAVF_FATAL("timeline interval must be positive");
    // Snapshot capacities so window queries survive the ledger.
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        bits_[i] = ledger_.structureBits(s);
    }
}

void
AvfTimeline::closeWindow(Cycle end)
{
    if (end <= windowStart_)
        return;
    Window w;
    w.length = end - windowStart_;
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        std::uint64_t ace = ledger_.aceBitCycles(s);
        w.aceDelta[i] = ace - lastAce_[i];
        lastAce_[i] = ace;
    }
    windows_.push_back(w);
    windowStart_ = end;
}

void
AvfTimeline::tick(Cycle now)
{
    while (now >= nextBoundary_) {
        closeWindow(nextBoundary_);
        nextBoundary_ += interval_;
    }
}

void
AvfTimeline::finish(Cycle now)
{
    closeWindow(now);
}

double
AvfTimeline::windowAvf(HwStruct s, std::size_t w) const
{
    const auto &win = windows_.at(w);
    auto bits = bits_[static_cast<std::size_t>(s)];
    if (bits == 0 || win.length == 0)
        return 0.0;
    return static_cast<double>(
               win.aceDelta[static_cast<std::size_t>(s)]) /
           (static_cast<double>(bits) * static_cast<double>(win.length));
}

double
AvfTimeline::variability(HwStruct s) const
{
    if (windows_.size() < 2)
        return 0.0;
    double sum = 0.0, sq = 0.0;
    for (std::size_t w = 0; w < windows_.size(); ++w) {
        double v = windowAvf(s, w);
        sum += v;
        sq += v * v;
    }
    double n = static_cast<double>(windows_.size());
    double mean = sum / n;
    if (mean <= 0.0)
        return 0.0;
    double var = sq / n - mean * mean;
    return std::sqrt(var < 0 ? 0 : var) / mean;
}

} // namespace smtavf
