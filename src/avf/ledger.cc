#include "avf/ledger.hh"

#include "base/logging.hh"

namespace smtavf
{

AvfLedger::AvfLedger(unsigned num_threads)
    : numThreads_(num_threads)
{
    if (num_threads == 0 || num_threads > maxContexts)
        SMTAVF_FATAL("ledger thread count out of range: ", num_threads);
    for (std::size_t s = 0; s < numHwStructs; ++s) {
        ace_[s].assign(num_threads, 0);
        unAce_[s].assign(num_threads, 0);
        aceCovered_[s].assign(num_threads, 0);
        aceResidual_[s].assign(num_threads, 0);
    }
}

void
AvfLedger::setProtection(const ProtectionConfig &protection)
{
    if (auto msg = protection.validateMsg(); !msg.empty())
        SMTAVF_FATAL("invalid protection config: ", msg);
    for (std::size_t s = 0; s < numHwStructs; ++s)
        for (unsigned t = 0; t < numThreads_; ++t)
            if (ace_[s][t] != 0 || unAce_[s][t] != 0)
                SMTAVF_FATAL("setProtection after intervals were recorded "
                             "in ", hwStructName(static_cast<HwStruct>(s)));
    protection_ = protection;
}

void
AvfLedger::setStructureBits(HwStruct s, std::uint64_t total_bits,
                            std::uint64_t per_thread_bits)
{
    if (total_bits == 0)
        SMTAVF_FATAL("structure ", hwStructName(s), " with zero bits");
    structBits_[idx(s)] = total_bits;
    perThreadBits_[idx(s)] = per_thread_bits ? per_thread_bits : total_bits;
}

void
AvfLedger::addInterval(HwStruct s, ThreadId tid, std::uint32_t bits,
                       Cycle start, Cycle end, bool ace)
{
    if (end < start)
        SMTAVF_PANIC("interval ends before it starts: ", start, " .. ", end,
                     " in ", hwStructName(s));
    if (tid >= numThreads_)
        SMTAVF_PANIC("interval from unknown thread ", tid);
    std::uint64_t bit_cycles = static_cast<std::uint64_t>(bits) *
                               (end - start);
    if (ace) {
        ace_[idx(s)][tid] += bit_cycles;
        std::uint64_t covered = smtavf::coveredAceBitCycles(
            protection_.schemeFor(s), protection_.scrubIntervalFor(s), bits,
            start, end);
        if (covered > bit_cycles)
            SMTAVF_PANIC("protection covers ", covered, " of ", bit_cycles,
                         " bit-cycles in ", hwStructName(s));
        aceCovered_[idx(s)][tid] += covered;
        aceResidual_[idx(s)][tid] += bit_cycles - covered;
    } else {
        unAce_[idx(s)][tid] += bit_cycles;
    }
}

void
AvfLedger::finalize(Cycle total_cycles)
{
    if (total_cycles == 0)
        SMTAVF_FATAL("finalize with zero cycles");
    if (total_cycles <= baseCycle_)
        SMTAVF_FATAL("finalize at cycle ", total_cycles,
                     " inside the warmup window (boundary ", baseCycle_, ")");
    // The AVF denominator is the measured window only: warmup cycles
    // contributed no tallies (resetTallies zeroed them), so they must not
    // dilute the average either.
    totalCycles_ = total_cycles - baseCycle_;
    finalized_ = true;
}

void
AvfLedger::reset()
{
    for (std::size_t s = 0; s < numHwStructs; ++s) {
        ace_[s].assign(numThreads_, 0);
        unAce_[s].assign(numThreads_, 0);
        aceCovered_[s].assign(numThreads_, 0);
        aceResidual_[s].assign(numThreads_, 0);
    }
    protection_ = ProtectionConfig{};
    totalCycles_ = 0;
    baseCycle_ = 0;
    finalized_ = false;
}

void
AvfLedger::resetTallies(Cycle boundary)
{
    if (finalized_)
        SMTAVF_FATAL("resetTallies after finalize");
    for (std::size_t s = 0; s < numHwStructs; ++s) {
        ace_[s].assign(numThreads_, 0);
        unAce_[s].assign(numThreads_, 0);
        aceCovered_[s].assign(numThreads_, 0);
        aceResidual_[s].assign(numThreads_, 0);
    }
    baseCycle_ = boundary;
}

std::uint64_t
AvfLedger::aceBitCycles(HwStruct s) const
{
    std::uint64_t sum = 0;
    for (auto v : ace_[idx(s)])
        sum += v;
    return sum;
}

std::uint64_t
AvfLedger::aceBitCycles(HwStruct s, ThreadId tid) const
{
    return ace_[idx(s)].at(tid);
}

std::uint64_t
AvfLedger::unAceBitCycles(HwStruct s) const
{
    std::uint64_t sum = 0;
    for (auto v : unAce_[idx(s)])
        sum += v;
    return sum;
}

std::uint64_t
AvfLedger::coveredAceBitCycles(HwStruct s) const
{
    std::uint64_t sum = 0;
    for (auto v : aceCovered_[idx(s)])
        sum += v;
    return sum;
}

std::uint64_t
AvfLedger::coveredAceBitCycles(HwStruct s, ThreadId tid) const
{
    return aceCovered_[idx(s)].at(tid);
}

std::uint64_t
AvfLedger::residualAceBitCycles(HwStruct s) const
{
    std::uint64_t sum = 0;
    for (auto v : aceResidual_[idx(s)])
        sum += v;
    return sum;
}

std::uint64_t
AvfLedger::residualAceBitCycles(HwStruct s, ThreadId tid) const
{
    return aceResidual_[idx(s)].at(tid);
}

std::uint64_t
AvfLedger::structureBits(HwStruct s) const
{
    return structBits_[idx(s)];
}

double
AvfLedger::avf(HwStruct s) const
{
    if (!finalized_)
        SMTAVF_PANIC("avf() before finalize()");
    auto bits = structBits_[idx(s)];
    if (bits == 0)
        return 0.0;
    return static_cast<double>(aceBitCycles(s)) /
           (static_cast<double>(bits) * static_cast<double>(totalCycles_));
}

double
AvfLedger::residualAvf(HwStruct s) const
{
    if (!finalized_)
        SMTAVF_PANIC("residualAvf() before finalize()");
    auto bits = structBits_[idx(s)];
    if (bits == 0)
        return 0.0;
    return static_cast<double>(residualAceBitCycles(s)) /
           (static_cast<double>(bits) * static_cast<double>(totalCycles_));
}

double
AvfLedger::threadAvf(HwStruct s, ThreadId tid) const
{
    if (!finalized_)
        SMTAVF_PANIC("threadAvf() before finalize()");
    auto bits = perThreadBits_[idx(s)];
    if (bits == 0)
        return 0.0;
    return static_cast<double>(aceBitCycles(s, tid)) /
           (static_cast<double>(bits) * static_cast<double>(totalCycles_));
}

double
AvfLedger::occupancy(HwStruct s) const
{
    if (!finalized_)
        SMTAVF_PANIC("occupancy() before finalize()");
    auto bits = structBits_[idx(s)];
    if (bits == 0)
        return 0.0;
    return static_cast<double>(aceBitCycles(s) + unAceBitCycles(s)) /
           (static_cast<double>(bits) * static_cast<double>(totalCycles_));
}

double
AvfLedger::aceShare(HwStruct s) const
{
    auto total = aceBitCycles(s) + unAceBitCycles(s);
    return total ? static_cast<double>(aceBitCycles(s)) / total : 0.0;
}

} // namespace smtavf
