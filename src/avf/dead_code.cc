#include "avf/dead_code.hh"

#include "base/logging.hh"

namespace smtavf
{

DeadCodeAnalyzer::DeadCodeAnalyzer(unsigned num_threads, AvfLedger &ledger,
                                   bool enabled)
    : ledger_(ledger), enabled_(enabled), pending_(num_threads)
{
}

void
DeadCodeAnalyzer::resolve(const InstPtr &in, bool dead)
{
    bool ace = !dead && !in->neverAce();
    in->destDead = dead;
    for (const auto &iv : in->pending)
        ledger_.addInterval(iv.structure, in->tid, iv.bitCount, iv.start,
                            iv.end, ace);
    in->pending.clear();
    if (in->writesReg() && !in->neverAce()) {
        ++resolvedCount_;
        if (dead)
            ++deadCount_;
    }
}

bool
DeadCodeAnalyzer::onCommit(const InstPtr &in)
{
    auto &slots = pending_.at(in->tid);

    // Reads first: a committed consumer proves its producer live. An
    // instruction that reads and rewrites the same register (common) must
    // count the read before displacing the producer.
    for (RegIndex src : {in->srcReg1, in->srcReg2}) {
        if (src == invalidReg)
            continue;
        if (auto &producer = slots[src]) {
            resolve(producer, false);
            producer = nullptr;
        }
    }

    if (!in->writesReg()) {
        resolve(in, false);
        return false;
    }

    if (!enabled_) {
        resolve(in, false);
        return false;
    }

    bool exposed_dead = false;
    if (auto &prev = slots[in->destReg]) {
        resolve(prev, true);
        prev = nullptr;
        exposed_dead = true;
    }
    slots[in->destReg] = in;
    return exposed_dead;
}

void
DeadCodeAnalyzer::onSquash(const InstPtr &in)
{
    if (!in->squashed && !in->wrongPath)
        SMTAVF_PANIC("onSquash() for a non-squashed instruction");
    resolve(in, false); // neverAce() forces the intervals un-ACE
}

void
DeadCodeAnalyzer::resolveLive(const InstPtr &in)
{
    resolve(in, false);
}

void
DeadCodeAnalyzer::finish()
{
    for (auto &slots : pending_) {
        for (auto &producer : slots) {
            if (producer) {
                resolve(producer, false);
                producer = nullptr;
            }
        }
    }
}

} // namespace smtavf
