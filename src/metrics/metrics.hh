/**
 * @file
 * The paper's performance/reliability metrics:
 *
 *  - IPC (throughput) per run and per thread;
 *  - MITF, mean instructions to failure, which at fixed frequency and raw
 *    error rate is proportional to IPC/AVF (Weaver et al., ISCA'04) — the
 *    reliability-efficiency metric of Figures 2, 4 and 7;
 *  - weighted speedup (Snavely & Tullsen) and the harmonic mean of
 *    weighted IPC (Luo et al.), the fairness-aware metrics of Figure 8.
 */

#ifndef SMTAVF_METRICS_METRICS_HH
#define SMTAVF_METRICS_METRICS_HH

#include <memory>
#include <string>
#include <vector>

#include "avf/injection.hh"
#include "avf/interval_series.hh"
#include "avf/report.hh"
#include "avf/timeline.hh"
#include "base/stats.hh"
#include "base/types.hh"

namespace smtavf
{

/** One thread's share of a run. */
struct ThreadPerf
{
    std::string benchmark;
    std::uint64_t committed = 0;
    double ipc = 0.0;
};

/** Everything a finished simulation reports. */
struct SimResult
{
    std::string mixName;
    std::string policyName;
    Cycle cycles = 0;
    std::uint64_t totalCommitted = 0;
    double ipc = 0.0;
    std::vector<ThreadPerf> threads;
    AvfReport avf;
    StatGroup stats; ///< miss rates, mispredict rates, dead fraction, ...
    /** Windowed AVF samples (set when MachineConfig::avfSampleCycles). */
    std::shared_ptr<const AvfTimeline> timeline;
    /** Instruction-windowed AVF rows (set by RunControls::avfInterval). */
    std::shared_ptr<const AvfIntervalSeries> avfIntervals;
    /** Commit trace (set when MachineConfig::recordCommitTrace). */
    std::shared_ptr<const CommitTrace> commitTrace;

    /** Reliability efficiency of a structure: IPC / AVF (prop. to MITF). */
    double mitf(HwStruct s) const;

    /** Per-thread reliability efficiency: thread IPC / thread AVF. */
    double threadMitf(HwStruct s, ThreadId tid) const;
};

/**
 * Weighted speedup: sum over threads of IPC_i(SMT) / IPC_i(single-thread).
 * @p st_ipc holds the stand-alone IPC of each thread, same order.
 */
double weightedSpeedup(const SimResult &smt, const std::vector<double> &st_ipc);

/** Harmonic mean of the per-thread weighted IPCs (fairness-sensitive). */
double harmonicWeightedIpc(const SimResult &smt,
                           const std::vector<double> &st_ipc);

/** Harmonic mean of raw per-thread IPCs. */
double harmonicMeanIpc(const SimResult &smt);

} // namespace smtavf

#endif // SMTAVF_METRICS_METRICS_HH
