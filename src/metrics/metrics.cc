#include "metrics/metrics.hh"

#include "base/logging.hh"

namespace smtavf
{

double
SimResult::mitf(HwStruct s) const
{
    double a = avf.avf(s);
    return a > 0.0 ? ipc / a : 0.0;
}

double
SimResult::threadMitf(HwStruct s, ThreadId tid) const
{
    if (tid >= threads.size())
        SMTAVF_FATAL("threadMitf for unknown thread ", tid);
    double a = avf.threadAvf(s, tid);
    return a > 0.0 ? threads[tid].ipc / a : 0.0;
}

double
weightedSpeedup(const SimResult &smt, const std::vector<double> &st_ipc)
{
    if (st_ipc.size() != smt.threads.size())
        SMTAVF_FATAL("weightedSpeedup: ", st_ipc.size(),
                     " baselines for ", smt.threads.size(), " threads");
    double sum = 0.0;
    for (std::size_t i = 0; i < st_ipc.size(); ++i) {
        if (st_ipc[i] <= 0.0)
            SMTAVF_FATAL("weightedSpeedup: non-positive baseline IPC");
        sum += smt.threads[i].ipc / st_ipc[i];
    }
    return sum;
}

double
harmonicWeightedIpc(const SimResult &smt, const std::vector<double> &st_ipc)
{
    if (st_ipc.size() != smt.threads.size())
        SMTAVF_FATAL("harmonicWeightedIpc: baseline count mismatch");
    double denom = 0.0;
    for (std::size_t i = 0; i < st_ipc.size(); ++i) {
        double w = smt.threads[i].ipc / st_ipc[i];
        if (w <= 0.0)
            return 0.0;
        denom += 1.0 / w;
    }
    return static_cast<double>(st_ipc.size()) / denom;
}

double
harmonicMeanIpc(const SimResult &smt)
{
    double denom = 0.0;
    for (const auto &t : smt.threads) {
        if (t.ipc <= 0.0)
            return 0.0;
        denom += 1.0 / t.ipc;
    }
    return static_cast<double>(smt.threads.size()) / denom;
}

} // namespace smtavf
