/**
 * @file
 * Size-classed slab pool and a std::allocator adapter over it.
 *
 * The tick loop creates and destroys one heap object per dynamic
 * instruction (the shared DynInstr control-block node) and one hash node
 * per outstanding cache miss. Both are fixed-size records with enormous
 * churn and a small live population — the textbook free-list case. The
 * SlabPool carves blocks out of multi-block slabs and recycles freed
 * blocks through intrusive LIFO free lists (one per size class), so after
 * a short warm-up the global allocator is never entered again.
 *
 * Lifetime: PoolAlloc holds the pool by shared_ptr and std::allocate_shared
 * stores a copy of the allocator inside every control block it creates, so
 * the slabs outlive every object allocated from them even if the owning
 * component (e.g. the SmtCore) is destroyed first — a recorded commit
 * trace can legitimately keep instructions alive past the core.
 *
 * Not thread-safe by design: each pool belongs to one simulator, and
 * simulators never share mutable state (sim/campaign.hh).
 */

#ifndef SMTAVF_BASE_POOL_ALLOC_HH
#define SMTAVF_BASE_POOL_ALLOC_HH

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace smtavf
{

/** Recycling block allocator with per-size-class free lists. */
class SlabPool
{
  public:
    /** @param blocks_per_slab blocks carved from each slab allocation. */
    explicit SlabPool(std::size_t blocks_per_slab = 256)
        : blocksPerSlab_(blocks_per_slab ? blocks_per_slab : 1)
    {
    }

    SlabPool(const SlabPool &) = delete;
    SlabPool &operator=(const SlabPool &) = delete;

    ~SlabPool()
    {
        for (const Slab &s : slabs_)
            ::operator delete(s.mem, std::align_val_t{s.align});
    }

    /** Allocate one block of @p bytes with @p align. */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        SizeClass &sc = classFor(bytes, align);
        if (!sc.freeHead)
            addSlab(sc);
        void *block = sc.freeHead;
        sc.freeHead = *static_cast<void **>(block);
        ++liveBlocks_;
        return block;
    }

    /** Return a block allocated with the same @p bytes / @p align. */
    void
    deallocate(void *block, std::size_t bytes, std::size_t align)
    {
        SizeClass &sc = classFor(bytes, align);
        *static_cast<void **>(block) = sc.freeHead;
        sc.freeHead = block;
        --liveBlocks_;
    }

    /** Blocks currently handed out (tests: leak detection). */
    std::size_t liveBlocks() const { return liveBlocks_; }

    /** Slabs requested from the global allocator (tests: reuse proof). */
    std::size_t slabCount() const { return slabs_.size(); }

  private:
    struct SizeClass
    {
        std::size_t stride;
        std::size_t align;
        void *freeHead = nullptr;
    };

    struct Slab
    {
        void *mem;
        std::size_t align;
    };

    SizeClass &
    classFor(std::size_t bytes, std::size_t align)
    {
        if (align < alignof(std::max_align_t))
            align = alignof(std::max_align_t);
        if (bytes < sizeof(void *))
            bytes = sizeof(void *);
        std::size_t stride = (bytes + align - 1) / align * align;
        for (SizeClass &sc : classes_)
            if (sc.stride == stride && sc.align == align)
                return sc;
        classes_.push_back({stride, align, nullptr});
        return classes_.back();
    }

    void
    addSlab(SizeClass &sc)
    {
        void *mem = ::operator new(sc.stride * blocksPerSlab_,
                                   std::align_val_t{sc.align});
        slabs_.push_back({mem, sc.align});
        auto *base = static_cast<unsigned char *>(mem);
        // Thread the fresh blocks onto the free list back to front so
        // they are handed out in address order.
        for (std::size_t i = blocksPerSlab_; i > 0; --i) {
            void *block = base + (i - 1) * sc.stride;
            *static_cast<void **>(block) = sc.freeHead;
            sc.freeHead = block;
        }
    }

    std::size_t blocksPerSlab_;
    std::size_t liveBlocks_ = 0;
    std::vector<SizeClass> classes_;
    std::vector<Slab> slabs_;
};

/**
 * std::allocator adapter over a shared SlabPool. Single-element
 * allocations (a container's node type, a shared_ptr control block) come
 * from the pool; array allocations (e.g. a hash table's bucket array)
 * fall through to the global allocator, which only happens on container
 * growth.
 */
template <typename T>
class PoolAlloc
{
  public:
    using value_type = T;

    explicit PoolAlloc(std::shared_ptr<SlabPool> pool)
        : pool_(std::move(pool))
    {
    }

    template <typename U>
    PoolAlloc(const PoolAlloc<U> &other) : pool_(other.pool())
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (n == 1)
            return static_cast<T *>(pool_->allocate(sizeof(T), alignof(T)));
        return static_cast<T *>(
            ::operator new(n * sizeof(T), std::align_val_t{alignof(T)}));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        if (n == 1)
            pool_->deallocate(p, sizeof(T), alignof(T));
        else
            ::operator delete(p, std::align_val_t{alignof(T)});
    }

    const std::shared_ptr<SlabPool> &pool() const { return pool_; }

    template <typename U>
    bool
    operator==(const PoolAlloc<U> &other) const
    {
        return pool_ == other.pool();
    }

    template <typename U>
    bool
    operator!=(const PoolAlloc<U> &other) const
    {
        return !(*this == other);
    }

  private:
    std::shared_ptr<SlabPool> pool_;
};

} // namespace smtavf

#endif // SMTAVF_BASE_POOL_ALLOC_HH
