/**
 * @file
 * SmallVec: a vector with inline storage for its first N elements.
 *
 * The simulator's hot structures attach short, bounded lists to records
 * that are created and recycled millions of times per run (the
 * per-instruction pending-interval list, MSHR merge lists). A
 * std::vector pays one heap allocation per non-empty list; SmallVec keeps
 * the common case entirely inside the owning object and only touches the
 * heap when a list outgrows its inline capacity — which the callers size
 * so that it never happens in steady state.
 *
 * Restricted to trivially copyable element types so growth and copies are
 * memcpy and the inline buffer needs no per-element destruction.
 */

#ifndef SMTAVF_BASE_SMALL_VEC_HH
#define SMTAVF_BASE_SMALL_VEC_HH

#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

namespace smtavf
{

/** Vector with N inline slots; spills to the heap only beyond them. */
template <typename T, std::size_t N>
class SmallVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVec is restricted to trivially copyable types");
    static_assert(N > 0, "inline capacity must be positive");

  public:
    SmallVec() = default;

    SmallVec(const SmallVec &other) { assignFrom(other); }

    SmallVec &
    operator=(const SmallVec &other)
    {
        if (this != &other) {
            size_ = 0;
            assignFrom(other);
        }
        return *this;
    }

    SmallVec(SmallVec &&other) noexcept { stealFrom(other); }

    SmallVec &
    operator=(SmallVec &&other) noexcept
    {
        if (this != &other) {
            releaseHeap();
            stealFrom(other);
        }
        return *this;
    }

    ~SmallVec() { releaseHeap(); }

    void
    push_back(const T &v)
    {
        if (size_ == capacity_)
            grow();
        data()[size_++] = v;
    }

    /** Drop all elements; heap capacity (if any) is retained. */
    void clear() { size_ = 0; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return capacity_; }
    /** True while the elements still live inside the owning object. */
    bool inlined() const { return heap_ == nullptr; }

    T &operator[](std::size_t i) { return data()[i]; }
    const T &operator[](std::size_t i) const { return data()[i]; }
    T &back() { return data()[size_ - 1]; }
    const T &back() const { return data()[size_ - 1]; }

    T *begin() { return data(); }
    T *end() { return data() + size_; }
    const T *begin() const { return data(); }
    const T *end() const { return data() + size_; }

  private:
    T *data() { return heap_ ? heap_ : inlineData(); }
    const T *data() const { return heap_ ? heap_ : inlineData(); }

    T *inlineData() { return reinterpret_cast<T *>(inline_); }
    const T *
    inlineData() const
    {
        return reinterpret_cast<const T *>(inline_);
    }

    void
    grow()
    {
        std::size_t cap = capacity_ * 2;
        T *mem = static_cast<T *>(::operator new(cap * sizeof(T)));
        std::memcpy(static_cast<void *>(mem), data(), size_ * sizeof(T));
        releaseHeap();
        heap_ = mem;
        capacity_ = static_cast<std::uint32_t>(cap);
    }

    void
    assignFrom(const SmallVec &other)
    {
        while (capacity_ < other.size_)
            grow();
        std::memcpy(static_cast<void *>(data()), other.data(),
                    other.size_ * sizeof(T));
        size_ = other.size_;
    }

    /** Take @p other's contents; leaves it empty and inline. */
    void
    stealFrom(SmallVec &other)
    {
        if (other.heap_) {
            heap_ = other.heap_;
            capacity_ = other.capacity_;
            size_ = other.size_;
            other.heap_ = nullptr;
            other.capacity_ = N;
        } else {
            heap_ = nullptr;
            capacity_ = N;
            size_ = other.size_;
            std::memcpy(static_cast<void *>(inlineData()),
                        other.inlineData(), size_ * sizeof(T));
        }
        other.size_ = 0;
    }

    void
    releaseHeap()
    {
        if (heap_) {
            ::operator delete(heap_);
            heap_ = nullptr;
            capacity_ = N;
        }
    }

    alignas(T) unsigned char inline_[N * sizeof(T)];
    T *heap_ = nullptr;
    std::uint32_t size_ = 0;
    std::uint32_t capacity_ = N;
};

} // namespace smtavf

#endif // SMTAVF_BASE_SMALL_VEC_HH
