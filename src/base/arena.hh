/**
 * @file
 * Monotonic construction arena for Simulator setup.
 *
 * Simulator construction used to make ~138 individual allocator round
 * trips (docs/PERFORMANCE.md): cache line arrays, predictor tables,
 * tracker state, register free lists, per-thread queues, generators.
 * None of that memory is ever freed before the Simulator dies, so a
 * bump-pointer arena can carve all of it from a handful of slabs.
 *
 * The design hinges on one property: **the allocator is stateless.**
 * `ArenaAlloc<T>` holds no pointer to an arena — at allocate() time it
 * consults a thread-local "current arena" installed by `ArenaCtorScope`
 * for the duration of Simulator construction, and falls back to the
 * global heap when none is installed. Because every `ArenaAlloc` is
 * default-constructible and always-equal, swapping a container type from
 * `std::vector<T>` to `AVec<T>` requires no constructor or member-init
 * changes anywhere, and structures used standalone (unit tests, tools)
 * keep working unchanged on the heap.
 *
 * Each block is prefixed with a one-word header recording its origin, so
 * deallocate() needs no thread-local: arena blocks are no-ops (the arena
 * frees its slabs wholesale at destruction), heap blocks are returned to
 * `operator delete`. Containers that grow *after* construction (warm-up
 * transients) therefore allocate from the heap and free correctly, and
 * buffers moved between containers stay self-describing.
 *
 * Lifetime rule: the Arena must outlive every container whose memory it
 * backs. `Simulator` declares its arena as the first data member, so it
 * is destroyed last.
 */

#ifndef SMTAVF_BASE_ARENA_HH
#define SMTAVF_BASE_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace smtavf
{

/** Bump-pointer slab arena. Allocation only; frees all slabs at once. */
class Arena
{
  public:
    /** @param first_slab_bytes size of the first slab (doubles after). */
    explicit Arena(std::size_t first_slab_bytes = std::size_t{1} << 20)
        : nextSlabBytes_(first_slab_bytes)
    {
        slabs_.reserve(8);
    }

    ~Arena()
    {
        for (void *s : slabs_)
            ::operator delete(s, std::align_val_t{kSlabAlign});
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Carve @p bytes with @p align from the current slab (or a new one). */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        std::uintptr_t p = reinterpret_cast<std::uintptr_t>(cur_);
        std::uintptr_t aligned = (p + align - 1) & ~(std::uintptr_t{align} - 1);
        if (aligned + bytes > reinterpret_cast<std::uintptr_t>(end_)) {
            grow(bytes + align);
            p = reinterpret_cast<std::uintptr_t>(cur_);
            aligned = (p + align - 1) & ~(std::uintptr_t{align} - 1);
        }
        cur_ = reinterpret_cast<char *>(aligned + bytes);
        used_ += bytes;
        return reinterpret_cast<void *>(aligned);
    }

    /** Slabs allocated so far (the arena's own heap footprint). */
    std::size_t slabCount() const { return slabs_.size(); }

    /** Bytes handed out (excluding alignment padding). */
    std::size_t bytesUsed() const { return used_; }

    /** The thread's current construction arena (null outside a scope). */
    static Arena *current() { return tCurrent_; }

    static void setCurrent(Arena *a) { tCurrent_ = a; }

  private:
    static constexpr std::size_t kSlabAlign = 64;

    void
    grow(std::size_t at_least)
    {
        std::size_t size = nextSlabBytes_;
        if (size < at_least)
            size = at_least;
        nextSlabBytes_ *= 2;
        void *s = ::operator new(size, std::align_val_t{kSlabAlign});
        slabs_.push_back(s);
        cur_ = static_cast<char *>(s);
        end_ = cur_ + size;
    }

    std::vector<void *> slabs_;
    char *cur_ = nullptr;
    char *end_ = nullptr;
    std::size_t nextSlabBytes_;
    std::size_t used_ = 0;

    static inline thread_local Arena *tCurrent_ = nullptr;
};

/**
 * Installs @p a as the thread's current arena for the duration of a
 * constructor. Declared as a data member immediately after the Arena it
 * installs, it covers the whole member-init list; the constructor body
 * calls release() at its end so post-construction growth goes to the
 * heap. Nested scopes restore the previous arena (LIFO).
 */
class ArenaCtorScope
{
  public:
    explicit ArenaCtorScope(Arena &a) : prev_(Arena::current())
    {
        Arena::setCurrent(&a);
    }

    ~ArenaCtorScope() { release(); }

    ArenaCtorScope(const ArenaCtorScope &) = delete;
    ArenaCtorScope &operator=(const ArenaCtorScope &) = delete;

    /** Uninstall (idempotent); construction is over. */
    void
    release()
    {
        if (!released_) {
            Arena::setCurrent(prev_);
            released_ = true;
        }
    }

  private:
    Arena *prev_;
    bool released_ = false;
};

/**
 * Stateless std allocator: arena when a construction scope is installed,
 * global heap otherwise. Every block carries a one-word origin header so
 * deallocate() is correct without any thread-local state.
 */
template <typename T>
class ArenaAlloc
{
  public:
    using value_type = T;
    using is_always_equal = std::true_type;
    using propagate_on_container_move_assignment = std::true_type;
    using propagate_on_container_swap = std::true_type;

    ArenaAlloc() = default;
    template <typename U>
    ArenaAlloc(const ArenaAlloc<U> &)
    {
    }

    T *
    allocate(std::size_t n)
    {
        std::size_t bytes = kHeader + n * sizeof(T);
        void *raw;
        std::uint64_t tag;
        if (Arena *a = Arena::current()) {
            raw = a->allocate(bytes, kAlign);
            tag = 1;
        } else {
            if constexpr (kAlign > alignof(std::max_align_t))
                raw = ::operator new(bytes, std::align_val_t{kAlign});
            else
                raw = ::operator new(bytes);
            tag = 0;
        }
        char *p = static_cast<char *>(raw) + kHeader;
        reinterpret_cast<std::uint64_t *>(p)[-1] = tag;
        return reinterpret_cast<T *>(p);
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        char *c = reinterpret_cast<char *>(p);
        if (reinterpret_cast<std::uint64_t *>(c)[-1] != 0)
            return; // arena-owned: freed wholesale with the arena's slabs
        void *raw = c - kHeader;
        if constexpr (kAlign > alignof(std::max_align_t))
            ::operator delete(raw, std::align_val_t{kAlign});
        else
            ::operator delete(raw);
    }

  private:
    static constexpr std::size_t kAlign =
        alignof(T) > alignof(std::uint64_t) ? alignof(T)
                                            : alignof(std::uint64_t);
    /** Header keeps the payload aligned: one kAlign-sized prefix. */
    static constexpr std::size_t kHeader =
        sizeof(std::uint64_t) > kAlign ? sizeof(std::uint64_t) : kAlign;
};

template <typename A, typename B>
bool
operator==(const ArenaAlloc<A> &, const ArenaAlloc<B> &)
{
    return true;
}

template <typename A, typename B>
bool
operator!=(const ArenaAlloc<A> &, const ArenaAlloc<B> &)
{
    return false;
}

/** The arena-aware vector every setup-time container uses. */
template <typename T>
using AVec = std::vector<T, ArenaAlloc<T>>;

/**
 * Deleter for single objects placed in the arena (or, outside a scope,
 * on the heap): arena objects are destroyed in place, heap objects
 * deleted. Convertible across Derived -> Base so ArenaPtr<Derived>
 * moves into ArenaPtr<Base>.
 */
template <typename T>
struct ArenaDeleter
{
    bool arena = false;

    ArenaDeleter() = default;
    explicit ArenaDeleter(bool a) : arena(a) {}

    template <typename U,
              typename = std::enable_if_t<std::is_convertible_v<U *, T *>>>
    ArenaDeleter(const ArenaDeleter<U> &o) : arena(o.arena)
    {
    }

    void
    operator()(T *p) const
    {
        if (arena)
            p->~T();
        else
            delete p;
    }
};

template <typename T>
using ArenaPtr = std::unique_ptr<T, ArenaDeleter<T>>;

/** make_unique counterpart: arena placement when a scope is installed. */
template <typename T, typename... Args>
ArenaPtr<T>
makeArena(Args &&...args)
{
    if (Arena *a = Arena::current()) {
        void *raw = a->allocate(sizeof(T), alignof(T));
        return ArenaPtr<T>(new (raw) T(std::forward<Args>(args)...),
                           ArenaDeleter<T>(true));
    }
    return ArenaPtr<T>(new T(std::forward<Args>(args)...),
                       ArenaDeleter<T>(false));
}

} // namespace smtavf

#endif // SMTAVF_BASE_ARENA_HH
