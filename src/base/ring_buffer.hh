/**
 * @file
 * RingBuffer: a flat circular deque over contiguous storage.
 *
 * The pipeline's ordered queues (ROB, LSQ, front-end fetch queue, the
 * workload generator's uncommitted window) only ever push at the tail,
 * pop at the head (commit/retire) or pop at the tail (squash walk-back) —
 * deque discipline with no middle insertion. std::deque pays repeated
 * block allocation/deallocation as the live window slides through its
 * node map; this ring keeps one contiguous buffer that, once warm, is
 * never touched by the allocator again. Capacity grows by doubling when
 * exhausted and never shrinks, so steady-state operation is
 * allocation-free.
 *
 * Iteration is index-based, oldest to youngest — the exact order the
 * std::deque-based queues exposed, which issue arbitration and the
 * invariant checker depend on.
 */

#ifndef SMTAVF_BASE_RING_BUFFER_HH
#define SMTAVF_BASE_RING_BUFFER_HH

#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

#include "base/arena.hh"

namespace smtavf
{

/** Contiguous circular deque; grows by doubling, never shrinks. */
template <typename T>
class RingBuffer
{
  public:
    /** @param initial_capacity slots to reserve up front (min 1). */
    explicit RingBuffer(std::size_t initial_capacity = 16)
        : slots_(initial_capacity ? initial_capacity : 1)
    {
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    /** Oldest element. Precondition: !empty(). */
    T &front() { return slots_[head_]; }
    const T &front() const { return slots_[head_]; }

    /** Youngest element. Precondition: !empty(). */
    T &back() { return slots_[wrap(head_ + size_ - 1)]; }
    const T &back() const { return slots_[wrap(head_ + size_ - 1)]; }

    /** i-th oldest element (0 = front). */
    T &operator[](std::size_t i) { return slots_[wrap(head_ + i)]; }
    const T &
    operator[](std::size_t i) const
    {
        return slots_[wrap(head_ + i)];
    }

    void
    push_back(T v)
    {
        if (size_ == slots_.size())
            grow();
        slots_[wrap(head_ + size_)] = std::move(v);
        ++size_;
    }

    /** Remove the oldest element; its slot is reset to T{}. */
    void
    pop_front()
    {
        slots_[head_] = T{};
        head_ = wrap(head_ + 1);
        --size_;
    }

    /** Remove the youngest element; its slot is reset to T{}. */
    void
    pop_back()
    {
        slots_[wrap(head_ + size_ - 1)] = T{};
        --size_;
    }

    /** Remove every element; capacity is retained. */
    void
    clear()
    {
        while (size_ > 0)
            pop_back();
    }

    /**
     * Worker-reuse hook: clear() plus rewind the head to slot 0, so the
     * physical layout matches a freshly constructed ring exactly (the
     * logical contents would match either way; this keeps even the grow()
     * copy pattern identical across reuses).
     */
    void
    reset()
    {
        clear();
        head_ = 0;
    }

    /** Random-access const iterator, oldest to youngest. */
    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = const T *;
        using reference = const T &;

        const_iterator() = default;
        const_iterator(const RingBuffer *rb, std::size_t pos)
            : rb_(rb), pos_(pos)
        {
        }

        reference operator*() const { return (*rb_)[pos_]; }
        pointer operator->() const { return &(*rb_)[pos_]; }

        const_iterator &
        operator++()
        {
            ++pos_;
            return *this;
        }

        const_iterator
        operator++(int)
        {
            const_iterator tmp = *this;
            ++pos_;
            return tmp;
        }

        bool
        operator==(const const_iterator &o) const
        {
            return rb_ == o.rb_ && pos_ == o.pos_;
        }

        bool operator!=(const const_iterator &o) const { return !(*this == o); }

      private:
        const RingBuffer *rb_ = nullptr;
        std::size_t pos_ = 0;
    };

    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size_); }

  private:
    std::size_t
    wrap(std::size_t i) const
    {
        std::size_t cap = slots_.size();
        return i >= cap ? i - cap : i; // head_ + i < 2 * cap always
    }

    void
    grow()
    {
        AVec<T> bigger(slots_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            bigger[i] = std::move(slots_[wrap(head_ + i)]);
        slots_ = std::move(bigger);
        head_ = 0;
    }

    // Arena-backed during Simulator construction, plain heap elsewhere
    // (base/arena.hh): same growth and iteration behaviour either way.
    AVec<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace smtavf

#endif // SMTAVF_BASE_RING_BUFFER_HH
