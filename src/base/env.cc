#include "base/env.hh"

#include <cerrno>
#include <cstdlib>
#include <string>

namespace smtavf
{

std::uint64_t
benchScale()
{
    const char *raw = std::getenv("SMTAVF_SCALE");
    if (!raw)
        return 1;
    try {
        long long v = std::stoll(raw);
        return v < 1 ? 1 : static_cast<std::uint64_t>(v);
    } catch (...) {
        return 1;
    }
}

unsigned
envJobs()
{
    const char *raw = std::getenv("SMTAVF_JOBS");
    if (!raw)
        return 0;
    try {
        long long v = std::stoll(raw);
        return v < 1 ? 0 : static_cast<unsigned>(v);
    } catch (...) {
        return 0;
    }
}

std::uint64_t
envInvariantCycles()
{
    static const std::uint64_t cached = [] {
        const char *raw = std::getenv("SMTAVF_INVARIANTS");
        std::uint64_t v = 0;
        if (raw && !strictParseU64(raw, v))
            v = 0;
        return v;
    }();
    return cached;
}

bool
strictParseU64(const char *text, std::uint64_t &out)
{
    if (!text || *text == '\0')
        return false;
    for (const char *p = text; *p; ++p)
        if (*p < '0' || *p > '9')
            return false; // rejects signs, spaces, trailing garbage
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (errno == ERANGE || !end || *end != '\0')
        return false;
    out = v;
    return true;
}

} // namespace smtavf
