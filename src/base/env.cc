#include "base/env.hh"

#include <cstdlib>
#include <string>

namespace smtavf
{

std::uint64_t
benchScale()
{
    const char *raw = std::getenv("SMTAVF_SCALE");
    if (!raw)
        return 1;
    try {
        long long v = std::stoll(raw);
        return v < 1 ? 1 : static_cast<std::uint64_t>(v);
    } catch (...) {
        return 1;
    }
}

unsigned
envJobs()
{
    const char *raw = std::getenv("SMTAVF_JOBS");
    if (!raw)
        return 0;
    try {
        long long v = std::stoll(raw);
        return v < 1 ? 0 : static_cast<unsigned>(v);
    } catch (...) {
        return 0;
    }
}

} // namespace smtavf
