/**
 * @file
 * Environment knobs shared by the bench harnesses (e.g. SMTAVF_SCALE).
 */

#ifndef SMTAVF_BASE_ENV_HH
#define SMTAVF_BASE_ENV_HH

#include <cstdint>

namespace smtavf
{

/**
 * Read SMTAVF_SCALE from the environment (default 1). Bench harnesses
 * multiply their simulated-instruction budgets by this to trade accuracy
 * for wall-clock time; the paper's scale corresponds to roughly 500.
 */
std::uint64_t benchScale();

/**
 * Read SMTAVF_JOBS from the environment: the campaign worker-pool size
 * override. 0 (unset or unparsable) means "pick a default", which
 * CampaignRunner resolves to hardware_concurrency().
 */
unsigned envJobs();

/**
 * Read SMTAVF_INVARIANTS from the environment: the period in cycles of
 * the end-of-cycle invariant checker (sim/invariants.hh), used as the
 * default of MachineConfig::invariantCheckCycles. 0 (unset, unparsable or
 * "0") disables checking; the test suite sets it so every simulation it
 * runs is checked. The value is read once and cached.
 */
std::uint64_t envInvariantCycles();

/**
 * Strict base-10 parse of a whole C string into @p out. Unlike
 * atoi/strtoull free-running conversion, this rejects empty strings,
 * leading signs (so "-3" cannot wrap to a huge unsigned), trailing
 * garbage ("12x"), and out-of-range values. Returns false (leaving @p out
 * untouched) on any rejection.
 */
bool strictParseU64(const char *text, std::uint64_t &out);

} // namespace smtavf

#endif // SMTAVF_BASE_ENV_HH
