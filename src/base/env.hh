/**
 * @file
 * Environment knobs shared by the bench harnesses (e.g. SMTAVF_SCALE).
 */

#ifndef SMTAVF_BASE_ENV_HH
#define SMTAVF_BASE_ENV_HH

#include <cstdint>

namespace smtavf
{

/**
 * Read SMTAVF_SCALE from the environment (default 1). Bench harnesses
 * multiply their simulated-instruction budgets by this to trade accuracy
 * for wall-clock time; the paper's scale corresponds to roughly 500.
 */
std::uint64_t benchScale();

/**
 * Read SMTAVF_JOBS from the environment: the campaign worker-pool size
 * override. 0 (unset or unparsable) means "pick a default", which
 * CampaignRunner resolves to hardware_concurrency().
 */
unsigned envJobs();

} // namespace smtavf

#endif // SMTAVF_BASE_ENV_HH
