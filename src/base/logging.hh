/**
 * @file
 * Status and error reporting in the gem5 tradition: panic() for internal
 * invariant violations, fatal() for user/configuration errors, warn() and
 * inform() for non-fatal notices.
 */

#ifndef SMTAVF_BASE_LOGGING_HH
#define SMTAVF_BASE_LOGGING_HH

#include <sstream>
#include <string>

namespace smtavf
{

namespace detail
{

/** Terminate with an internal-error message (calls std::abort). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with a user-error message (calls std::exit(1)). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Print an informational message to stdout. */
void informImpl(const std::string &msg);

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** True while unit tests redirect fatal/panic into exceptions. */
void setLoggingThrows(bool throws);

/** Current redirect state (campaign boundaries save and restore it). */
bool loggingThrows();

/** Exception thrown instead of terminating when setLoggingThrows(true). */
struct SimError
{
    std::string message;
};

} // namespace smtavf

/** Internal invariant violated: a bug in the simulator itself. */
#define SMTAVF_PANIC(...) \
    ::smtavf::detail::panicImpl(__FILE__, __LINE__, \
                                ::smtavf::detail::concat(__VA_ARGS__))

/** The simulation cannot continue because of a user/config error. */
#define SMTAVF_FATAL(...) \
    ::smtavf::detail::fatalImpl(__FILE__, __LINE__, \
                                ::smtavf::detail::concat(__VA_ARGS__))

/** Non-fatal suspicious condition. */
#define SMTAVF_WARN(...) \
    ::smtavf::detail::warnImpl(__FILE__, __LINE__, \
                               ::smtavf::detail::concat(__VA_ARGS__))

/** Status message for the user. */
#define SMTAVF_INFORM(...) \
    ::smtavf::detail::informImpl(::smtavf::detail::concat(__VA_ARGS__))

#endif // SMTAVF_BASE_LOGGING_HH
