#include "base/table.hh"

#include <cstdio>
#include <sstream>

#include "base/logging.hh"

namespace smtavf
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        SMTAVF_FATAL("table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        SMTAVF_FATAL("row width ", row.size(), " != header width ",
                     header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
TextTable::str() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            if (row[c].size() > widths[c])
                widths[c] = row[c].size();

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

} // namespace smtavf
