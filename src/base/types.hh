/**
 * @file
 * Fundamental scalar type aliases shared across the smtavf library.
 */

#ifndef SMTAVF_BASE_TYPES_HH
#define SMTAVF_BASE_TYPES_HH

#include <cstdint>

namespace smtavf
{

/** Simulation cycle count. Monotonically increasing, starts at 0. */
using Cycle = std::uint64_t;

/** Dynamic-instruction sequence number, unique per thread per run. */
using SeqNum = std::uint64_t;

/** Byte address in the synthetic virtual address space. */
using Addr = std::uint64_t;

/** Hardware thread-context identifier (0-based). */
using ThreadId = std::uint16_t;

/** Architectural or physical register index. */
using RegIndex = std::int32_t;

/** Sentinel meaning "no register". */
constexpr RegIndex invalidReg = -1;

/** Sentinel meaning "no thread". */
constexpr ThreadId invalidThread = 0xffff;

/** Maximum hardware thread contexts the model supports. */
constexpr unsigned maxContexts = 8;

} // namespace smtavf

#endif // SMTAVF_BASE_TYPES_HH
