#include "base/rng.hh"

#include <cmath>

namespace smtavf
{

namespace
{

std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    return mix64(x);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t value)
{
    for (auto &s : state_)
        s = splitmix64(value);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::uniform(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t x = next();
    std::uint64_t threshold = -bound % bound;
    while (x < threshold)
        x = next();
    return x % bound;
}

std::uint64_t
Rng::uniformRange(std::uint64_t lo, std::uint64_t hi)
{
    return lo + uniform(hi - lo + 1);
}

double
Rng::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformReal() < p;
}

unsigned
Rng::geometric(double p, unsigned cap)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return cap;
    unsigned k = 0;
    while (k < cap && !bernoulli(p))
        ++k;
    return k;
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    if (n <= 1)
        return 0;
    // Inverse-power transform: u^(1/(1-s)) concentrates mass near 0 for
    // s in (0, 1); for s >= 1 fall back to a strongly skewed exponent.
    double exponent = (s < 0.99) ? 1.0 / (1.0 - s) : 8.0;
    double u = uniformReal();
    double v = std::pow(u, exponent);
    auto idx = static_cast<std::uint64_t>(v * static_cast<double>(n));
    return idx >= n ? n - 1 : idx;
}

std::uint64_t
splitSeed(std::uint64_t master, std::uint64_t index)
{
    // Finalize master and index separately before combining so that
    // neighbouring (master, index) pairs land in unrelated streams;
    // a final mix removes any residual xor structure.
    return mix64(mix64(master + 0x9e3779b97f4a7c15ull) ^
                 mix64(index + 0xbf58476d1ce4e5b9ull));
}

} // namespace smtavf
