#include "base/stats.hh"

#include "base/logging.hh"

namespace smtavf
{

Histogram::Histogram(double max_value, unsigned buckets)
    : maxValue_(max_value), counts_(buckets, 0)
{
    if (buckets == 0 || max_value <= 0.0)
        SMTAVF_FATAL("histogram needs buckets > 0 and max > 0");
}

void
Histogram::sample(double v)
{
    double clamped = v < 0.0 ? 0.0 : v;
    auto idx = static_cast<std::size_t>(
        clamped / maxValue_ * static_cast<double>(counts_.size()));
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    ++counts_[idx];
    ++samples_;
    sum_ += v;
}

void
StatGroup::set(const std::string &name, double value)
{
    stats_[name] = value;
}

double
StatGroup::get(const std::string &name) const
{
    auto it = stats_.find(name);
    if (it == stats_.end())
        SMTAVF_FATAL("unknown stat: ", name);
    return it->second;
}

bool
StatGroup::has(const std::string &name) const
{
    return stats_.count(name) != 0;
}

} // namespace smtavf
