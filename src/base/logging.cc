#include "base/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace smtavf
{

namespace
{
// Atomic: campaign worker threads read this while a test harness on the
// main thread may have set it; a plain bool would be a data race.
std::atomic<bool> loggingThrowsFlag{false};
} // namespace

void
setLoggingThrows(bool throws)
{
    loggingThrowsFlag = throws;
}

bool
loggingThrows()
{
    return loggingThrowsFlag;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    if (loggingThrowsFlag)
        throw SimError{msg};
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (loggingThrowsFlag)
        throw SimError{msg};
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace smtavf
