/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * We use xoshiro256** (public domain, Blackman & Vigna): fast, high quality,
 * and trivially seedable so every simulation is bit-reproducible from
 * MachineConfig::seed.
 */

#ifndef SMTAVF_BASE_RNG_HH
#define SMTAVF_BASE_RNG_HH

#include <array>
#include <cstdint>

namespace smtavf
{

/**
 * Seedable xoshiro256** generator with convenience draws used by the
 * synthetic workload generator (uniform, bernoulli, geometric, zipf-like).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t uniform(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** True with probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /**
     * Geometric draw: number of failures before first success with success
     * probability p; returns a value in [0, cap].
     */
    unsigned geometric(double p, unsigned cap);

    /**
     * Zipf-like draw over [0, n): item k has weight 1/(k+1)^s. Used to pick
     * "hot" working-set regions. O(log n) via inverse-CDF on a cached table
     * would be overkill; we use the rejection-free approximation adequate
     * for workload shaping.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

    /** Re-seed the generator. */
    void seed(std::uint64_t value);

    /** Checkpoint hook (ckpt/serializer.hh): the full xoshiro state. */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        ar(state_);
    }

  private:
    std::array<std::uint64_t, 4> state_;
};

/**
 * Derive the @p index -th child seed of a campaign master seed: an O(1)
 * splitmix64-finalizer mix of (master, index). Child streams are
 * decorrelated from each other and from the master stream, so a campaign
 * can hand every run (or every injection trial) its own Rng whose draws
 * do not depend on which worker executes it or in what order — the
 * seed-splitting contract behind schedule-independent parallel campaigns
 * (sim/campaign.hh).
 */
std::uint64_t splitSeed(std::uint64_t master, std::uint64_t index);

} // namespace smtavf

#endif // SMTAVF_BASE_RNG_HH
