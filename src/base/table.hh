/**
 * @file
 * Plain-text table formatting used by the bench harnesses so every figure
 * and table of the paper prints as aligned rows/series.
 */

#ifndef SMTAVF_BASE_TABLE_HH
#define SMTAVF_BASE_TABLE_HH

#include <string>
#include <vector>

namespace smtavf
{

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with fixed precision. */
    static std::string num(double v, int precision = 4);

    /** Convenience: format a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render the whole table. */
    std::string str() const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace smtavf

#endif // SMTAVF_BASE_TABLE_HH
