/**
 * @file
 * Lightweight statistics package: named scalar counters, averages and
 * histograms that components register with a StatGroup and that the
 * simulator dumps at end of run.
 */

#ifndef SMTAVF_BASE_STATS_HH
#define SMTAVF_BASE_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace smtavf
{

/** A named monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean of a sampled quantity. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [0, max) with uniform bucket width. */
class Histogram
{
  public:
    Histogram(double max_value, unsigned buckets);

    /** Record one sample; values >= max land in the last bucket. */
    void sample(double v);

    unsigned buckets() const { return static_cast<unsigned>(counts_.size()); }
    std::uint64_t bucketCount(unsigned i) const { return counts_.at(i); }
    std::uint64_t samples() const { return samples_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }

  private:
    double maxValue_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
};

/**
 * Registry mapping dotted stat names to values; components deposit final
 * values here so reports and tests can read them uniformly.
 */
class StatGroup
{
  public:
    /** Set (or overwrite) a named scalar. */
    void set(const std::string &name, double value);

    /** Read a named scalar; fatal if absent. */
    double get(const std::string &name) const;

    /** True if the name is present. */
    bool has(const std::string &name) const;

    /** All stats in name order. */
    const std::map<std::string, double> &all() const { return stats_; }

  private:
    std::map<std::string, double> stats_;
};

} // namespace smtavf

#endif // SMTAVF_BASE_STATS_HH
