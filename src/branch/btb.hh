/**
 * @file
 * Branch target buffer: 2K entries, 4-way set associative, LRU, private
 * per thread (Table 1).
 */

#ifndef SMTAVF_BRANCH_BTB_HH
#define SMTAVF_BRANCH_BTB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/arena.hh"
#include "base/types.hh"

namespace smtavf
{

/** Set-associative branch target buffer. */
class Btb
{
  public:
    /**
     * @param entries total entries (power of two)
     * @param ways    associativity (divides entries)
     */
    Btb(std::uint32_t entries, std::uint32_t ways);

    /** Predicted target for @p pc, or nullopt on a BTB miss. */
    std::optional<Addr> lookup(Addr pc);

    /** Install/refresh the target of the branch at @p pc. */
    void update(Addr pc, Addr target);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Worker-reuse hook: all entries invalid, clock and counters zero. */
    void
    reset()
    {
        entries_.assign(entries_.size(), Entry{});
        useClock_ = 0;
        hits_ = 0;
        misses_ = 0;
    }

    /** Checkpoint hook: entries, LRU clock and hit/miss counters. */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        ar(entries_);
        ar(useClock_);
        ar(hits_);
        ar(misses_);
    }

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lastUse = 0;

        template <class Ar>
        void
        serialize(Ar &ar)
        {
            ar(valid);
            ar(tag);
            ar(target);
            ar(lastUse);
        }
    };

    std::uint32_t setIndex(Addr pc) const;

    AVec<Entry> entries_;
    std::uint32_t sets_;
    std::uint32_t ways_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace smtavf

#endif // SMTAVF_BRANCH_BTB_HH
