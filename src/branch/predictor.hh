/**
 * @file
 * Per-thread front-end predictor combining gshare, BTB and RAS. Each SMT
 * context owns a private instance (Table 1: per-thread predictors).
 *
 * The stream generator knows each branch's actual outcome, so fetch can
 * determine right away whether a prediction is wrong; the pipeline still
 * pays the full penalty (wrong-path fetch until the branch resolves at
 * execute, then squash + redirect). Global history is repaired with the
 * actual outcome at prediction time, which is exactly the state a real
 * machine reaches after recovery; the predictor tables themselves are
 * trained at resolve time with the history the prediction was made under.
 */

#ifndef SMTAVF_BRANCH_PREDICTOR_HH
#define SMTAVF_BRANCH_PREDICTOR_HH

#include <cstdint>

#include "branch/btb.hh"
#include "branch/gshare.hh"
#include "branch/ras.hh"
#include "isa/instr.hh"

namespace smtavf
{

/** Geometry of the per-thread predictor (Table 1 defaults). */
struct BranchConfig
{
    std::uint32_t gshareEntries = 2048;
    std::uint32_t historyBits = 10;
    std::uint32_t btbEntries = 2048;
    std::uint32_t btbWays = 4;
    std::uint32_t rasEntries = 32;
};

/** One thread's combined direction/target predictor. */
class ThreadPredictor
{
  public:
    explicit ThreadPredictor(const BranchConfig &cfg);

    /**
     * Predict the control instruction @p in (annotates predTaken,
     * predHistory and mispredicted in place). Non-control instructions are
     * ignored.
     */
    void predict(DynInstr &in);

    /** Train gshare/BTB with the resolved branch (call at execute). */
    void train(const DynInstr &in);

    /**
     * Undo the speculative state (global history, RAS) of a squashed
     * control instruction. Call during squash walk-back, youngest first,
     * so the final state is the oldest squashed branch's pre-state.
     */
    void squashRecover(const DynInstr &in);

    std::uint64_t branches() const { return branches_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Misprediction rate over all control instructions seen. */
    double
    mispredictRate() const
    {
        return branches_ ? static_cast<double>(mispredicts_) / branches_
                         : 0.0;
    }

    /** Worker-reuse hook: untrained tables, zeroed counters. */
    void
    reset()
    {
        gshare_.reset();
        btb_.reset();
        ras_.reset();
        branches_ = 0;
        mispredicts_ = 0;
    }

    /** Checkpoint hook: all three structures plus the counters. */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        ar(gshare_);
        ar(btb_);
        ar(ras_);
        ar(branches_);
        ar(mispredicts_);
    }

  private:
    Gshare gshare_;
    Btb btb_;
    Ras ras_;
    std::uint64_t branches_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace smtavf

#endif // SMTAVF_BRANCH_PREDICTOR_HH
