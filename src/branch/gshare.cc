#include "branch/gshare.hh"

#include "base/logging.hh"

namespace smtavf
{

Gshare::Gshare(std::uint32_t table_entries, std::uint32_t history_bits)
    : table_(table_entries, 2), // weakly taken
      mask_(table_entries - 1),
      historyBits_(history_bits),
      historyMask_((1u << history_bits) - 1)
{
    if (table_entries == 0 || (table_entries & mask_) != 0)
        SMTAVF_FATAL("gshare table size must be a power of two");
    if (history_bits == 0 || history_bits > 20)
        SMTAVF_FATAL("gshare history bits out of range");
}

std::uint32_t
Gshare::index(Addr pc, std::uint32_t history) const
{
    return (static_cast<std::uint32_t>(pc >> 2) ^ history) & mask_;
}

bool
Gshare::predict(Addr pc) const
{
    return table_[index(pc, history_)] >= 2;
}

std::uint32_t
Gshare::speculate(bool taken)
{
    std::uint32_t pre = history_;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
    return pre;
}

void
Gshare::restoreHistory(std::uint32_t history)
{
    history_ = history & historyMask_;
}

void
Gshare::correctHistory(std::uint32_t pre_branch_history, bool taken)
{
    history_ = (((pre_branch_history << 1) | (taken ? 1 : 0)) & historyMask_);
}

void
Gshare::update(Addr pc, bool taken, std::uint32_t history)
{
    auto &ctr = table_[index(pc, history)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

} // namespace smtavf
