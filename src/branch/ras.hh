/**
 * @file
 * Return address stack (32 entries per thread, Table 1). Overflow wraps,
 * underflow predicts garbage — both behaviours of real hardware.
 */

#ifndef SMTAVF_BRANCH_RAS_HH
#define SMTAVF_BRANCH_RAS_HH

#include <cstdint>
#include <vector>

#include "base/arena.hh"
#include "base/types.hh"

namespace smtavf
{

/** Circular return-address stack. */
class Ras
{
  public:
    explicit Ras(std::uint32_t entries);

    /** Push a return address (on call fetch). */
    void push(Addr return_addr);

    /** Pop the predicted return address (on return fetch). */
    Addr pop();

    /** Current logical depth (saturates at capacity). */
    std::uint32_t depth() const { return depth_; }

    /** Snapshot for squash recovery. */
    struct State
    {
        std::uint32_t top;
        std::uint32_t depth;
    };

    State save() const { return {top_, depth_}; }
    void restore(State s);

    /** Worker-reuse hook: empty stack, zeroed slots. */
    void
    reset()
    {
        stack_.assign(stack_.size(), 0);
        top_ = 0;
        depth_ = 0;
    }

    /** Checkpoint hook. */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        ar(stack_);
        ar(top_);
        ar(depth_);
    }

  private:
    AVec<Addr> stack_;
    std::uint32_t top_ = 0;
    std::uint32_t depth_ = 0;
};

} // namespace smtavf

#endif // SMTAVF_BRANCH_RAS_HH
