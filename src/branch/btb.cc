#include "branch/btb.hh"

#include "base/logging.hh"

namespace smtavf
{

Btb::Btb(std::uint32_t entries, std::uint32_t ways)
    : entries_(entries), sets_(entries / ways), ways_(ways)
{
    if (entries == 0 || ways == 0 || entries % ways != 0)
        SMTAVF_FATAL("BTB geometry invalid: ", entries, " entries / ", ways,
                     " ways");
    if ((sets_ & (sets_ - 1)) != 0)
        SMTAVF_FATAL("BTB set count must be a power of two");
}

std::uint32_t
Btb::setIndex(Addr pc) const
{
    return static_cast<std::uint32_t>(pc >> 2) & (sets_ - 1);
}

std::optional<Addr>
Btb::lookup(Addr pc)
{
    auto set = setIndex(pc);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        auto &e = entries_[set * ways_ + w];
        if (e.valid && e.tag == pc) {
            e.lastUse = ++useClock_;
            ++hits_;
            return e.target;
        }
    }
    ++misses_;
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    auto set = setIndex(pc);
    Entry *victim = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        auto &e = entries_[set * ways_ + w];
        if (e.valid && e.tag == pc) {
            e.target = target;
            e.lastUse = ++useClock_;
            return;
        }
        if (!victim || !e.valid ||
            (victim->valid && e.lastUse < victim->lastUse))
            victim = &e;
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = target;
    victim->lastUse = ++useClock_;
}

} // namespace smtavf
