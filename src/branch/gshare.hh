/**
 * @file
 * Gshare conditional-branch direction predictor (2K-entry table of 2-bit
 * saturating counters indexed by PC xor 10-bit global history, per the
 * paper's Table 1; each hardware thread owns a private instance).
 */

#ifndef SMTAVF_BRANCH_GSHARE_HH
#define SMTAVF_BRANCH_GSHARE_HH

#include <cstdint>
#include <vector>

#include "base/arena.hh"
#include "base/types.hh"

namespace smtavf
{

/** Gshare direction predictor with speculative history and recovery. */
class Gshare
{
  public:
    /**
     * @param table_entries number of 2-bit counters (power of two)
     * @param history_bits  global-history length
     */
    Gshare(std::uint32_t table_entries, std::uint32_t history_bits);

    /** Predict the direction of the branch at @p pc (no state change). */
    bool predict(Addr pc) const;

    /**
     * Speculatively shift @p taken into the global history (call at fetch
     * with the *predicted* direction). Returns the pre-update history so
     * the caller can restore it on a squash.
     */
    std::uint32_t speculate(bool taken);

    /** Restore the global history saved by speculate(). */
    void restoreHistory(std::uint32_t history);

    /**
     * Train the counters with the resolved outcome. @p history is the
     * history the prediction was made under.
     */
    void update(Addr pc, bool taken, std::uint32_t history);

    /** Current (speculative) global history. */
    std::uint32_t history() const { return history_; }

    /** Fix the history to the resolved outcome after a misprediction. */
    void correctHistory(std::uint32_t pre_branch_history, bool taken);

    /** Worker-reuse hook: weakly-taken counters, empty history. */
    void
    reset()
    {
        table_.assign(table_.size(), 2);
        history_ = 0;
    }

    /** Checkpoint hook: mutable state only (geometry is config-derived). */
    template <class Ar>
    void
    serialize(Ar &ar)
    {
        ar(table_);
        ar(history_);
    }

  private:
    std::uint32_t index(Addr pc, std::uint32_t history) const;

    AVec<std::uint8_t> table_;
    std::uint32_t mask_;
    std::uint32_t historyBits_;
    std::uint32_t historyMask_;
    std::uint32_t history_ = 0;
};

} // namespace smtavf

#endif // SMTAVF_BRANCH_GSHARE_HH
