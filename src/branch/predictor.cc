#include "branch/predictor.hh"

namespace smtavf
{

ThreadPredictor::ThreadPredictor(const BranchConfig &cfg)
    : gshare_(cfg.gshareEntries, cfg.historyBits),
      btb_(cfg.btbEntries, cfg.btbWays),
      ras_(cfg.rasEntries)
{
}

void
ThreadPredictor::predict(DynInstr &in)
{
    if (!in.isBranch())
        return;

    ++branches_;
    in.predHistory = gshare_.history();
    auto ras_state = ras_.save();
    in.rasTop = ras_state.top;
    in.rasDepth = ras_state.depth;

    switch (in.op) {
      case OpClass::BranchCond: {
        in.predTaken = gshare_.predict(in.pc);
        bool dir_wrong = in.predTaken != in.branchTaken;
        bool target_wrong = false;
        if (in.predTaken) {
            auto target = btb_.lookup(in.pc);
            target_wrong = !target || *target != in.branchTarget;
        }
        in.mispredicted = dir_wrong || (in.predTaken && target_wrong);
        // Repair history with the actual outcome: post-recovery state.
        gshare_.speculate(in.branchTaken);
        break;
      }

      case OpClass::BranchUncond: {
        in.predTaken = true;
        auto target = btb_.lookup(in.pc);
        in.mispredicted = !target || *target != in.branchTarget;
        break;
      }

      case OpClass::Call: {
        in.predTaken = true;
        auto target = btb_.lookup(in.pc);
        in.mispredicted = !target || *target != in.branchTarget;
        ras_.push(in.pc + 4);
        break;
      }

      case OpClass::Return: {
        in.predTaken = true;
        Addr predicted = ras_.pop();
        in.mispredicted = predicted != in.branchTarget;
        break;
      }

      default:
        return;
    }

    if (in.mispredicted)
        ++mispredicts_;
}

void
ThreadPredictor::squashRecover(const DynInstr &in)
{
    if (!in.isBranch())
        return;
    if (in.op == OpClass::BranchCond)
        gshare_.restoreHistory(in.predHistory);
    if (in.op == OpClass::Call || in.op == OpClass::Return)
        ras_.restore({in.rasTop, in.rasDepth});
}

void
ThreadPredictor::train(const DynInstr &in)
{
    if (!in.isBranch())
        return;
    if (in.op == OpClass::BranchCond)
        gshare_.update(in.pc, in.branchTaken, in.predHistory);
    if (in.branchTaken && in.op != OpClass::Return)
        btb_.update(in.pc, in.branchTarget);
}

} // namespace smtavf
