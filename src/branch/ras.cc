#include "branch/ras.hh"

#include "base/logging.hh"

namespace smtavf
{

Ras::Ras(std::uint32_t entries)
    : stack_(entries, 0)
{
    if (entries == 0)
        SMTAVF_FATAL("RAS needs at least one entry");
}

void
Ras::push(Addr return_addr)
{
    top_ = (top_ + 1) % stack_.size();
    stack_[top_] = return_addr;
    if (depth_ < stack_.size())
        ++depth_;
}

Addr
Ras::pop()
{
    Addr predicted = stack_[top_];
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    if (depth_ > 0)
        --depth_;
    return predicted;
}

void
Ras::restore(State s)
{
    top_ = s.top % stack_.size();
    depth_ = s.depth;
}

} // namespace smtavf
