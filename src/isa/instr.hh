/**
 * @file
 * The synthetic RISC ISA: operation classes, register-name helpers and the
 * dynamic instruction record (DynInstr) that flows through the pipeline.
 *
 * The workload generator emits DynInstr records with genuine register
 * dataflow, memory addresses and branch outcomes; the core model adds
 * renaming, timing and AVF bookkeeping in place.
 */

#ifndef SMTAVF_ISA_INSTR_HH
#define SMTAVF_ISA_INSTR_HH

#include <cstdint>
#include <memory>

#include "avf/structures.hh"
#include "base/small_vec.hh"
#include "base/types.hh"

namespace smtavf
{

/** Operation classes of the synthetic ISA. */
enum class OpClass : std::uint8_t
{
    Nop,
    IntAlu,
    IntMult,
    IntDiv,
    FpAlu,
    FpMult,
    FpDiv,
    Load,
    Store,
    BranchCond,
    BranchUncond,
    Call,
    Return,
    NumOpClasses
};

/** Number of operation classes. */
constexpr std::size_t numOpClasses =
    static_cast<std::size_t>(OpClass::NumOpClasses);

/** Human-readable mnemonic for an operation class. */
const char *opClassName(OpClass op);

/** True for conditional and unconditional control transfers. */
bool isControl(OpClass op);

/** True for loads and stores. */
bool isMemRef(OpClass op);

/** True for operations executed on floating-point units. */
bool isFloat(OpClass op);

/**
 * Architectural register namespace: indices [0, 32) are the integer file,
 * [32, 64) the floating-point file. Register 0 of each file is a
 * hardwired zero/constant register (writes to it are discarded, making it
 * a natural sink for dead results).
 */
constexpr RegIndex numArchIntRegs = 32;
constexpr RegIndex numArchFpRegs = 32;
constexpr RegIndex numArchRegs = numArchIntRegs + numArchFpRegs;

/** True if the architectural index names a floating-point register. */
inline bool
isFpReg(RegIndex arch_reg)
{
    return arch_reg >= numArchIntRegs;
}

/** True if the architectural index is a hardwired zero register. */
inline bool
isZeroReg(RegIndex arch_reg)
{
    return arch_reg == 0 || arch_reg == numArchIntRegs;
}

/**
 * One closed residency interval of this instruction's bits in a hardware
 * structure, awaiting final ACE/un-ACE classification (deferred until the
 * producing instruction's dynamic deadness is known).
 */
struct PendingInterval
{
    HwStruct structure;
    std::uint32_t bitCount;
    Cycle start;
    Cycle end;
};

/**
 * A dynamic instruction. Plain aggregate by design: it is the working
 * record of the whole pipeline and every stage annotates it in place.
 */
struct DynInstr
{
    // --- identity -------------------------------------------------------
    ThreadId tid = invalidThread;
    /** Per-thread fetch order; monotonic across wrong-path fetches too. */
    SeqNum seq = 0;
    /** Global dispatch order (age for issue selection across threads). */
    SeqNum globalSeq = 0;
    /** Index in the correct-path stream; meaningless when wrongPath. */
    std::uint64_t streamIdx = 0;
    Addr pc = 0;
    OpClass op = OpClass::Nop;

    // --- architectural operands -----------------------------------------
    RegIndex destReg = invalidReg;
    RegIndex srcReg1 = invalidReg;
    RegIndex srcReg2 = invalidReg;

    // --- memory behaviour -------------------------------------------------
    Addr memAddr = 0;
    std::uint8_t memSize = 0;

    // --- control behaviour ------------------------------------------------
    bool branchTaken = false;     ///< actual outcome
    Addr branchTarget = 0;        ///< actual target
    bool predTaken = false;       ///< predictor's direction guess
    bool mispredicted = false;    ///< set at fetch when prediction != actual
    std::uint32_t predHistory = 0; ///< gshare history the guess was made under
    std::uint32_t rasTop = 0;      ///< RAS checkpoint for squash recovery
    std::uint32_t rasDepth = 0;    ///< RAS checkpoint for squash recovery

    // --- classification flags ---------------------------------------------
    bool wrongPath = false;       ///< fetched past a mispredicted branch
    bool squashed = false;        ///< removed before commit
    bool destDead = false;        ///< result overwritten before any read

    // --- rename state -------------------------------------------------------
    RegIndex destPhys = invalidReg;
    RegIndex oldDestPhys = invalidReg;
    RegIndex srcPhys1 = invalidReg;
    RegIndex srcPhys2 = invalidReg;

    // --- pipeline state -----------------------------------------------------
    bool inIq = false;
    bool issued = false;
    bool completed = false;
    Cycle fetchCycle = 0;
    Cycle dispatchCycle = 0;
    Cycle issueCycle = 0;
    Cycle completeCycle = 0;

    /** DL1 outcome of this memory access (set at execute). */
    bool dl1Miss = false;
    /** L2 outcome of this memory access (set at execute). */
    bool l2Miss = false;

    /**
     * Residency intervals awaiting dead-code resolution. An instruction
     * accrues at most five intervals (IQ and FU at issue; ROB, LSQ tag and
     * LSQ data at commit or squash), so the inline capacity of six keeps
     * the list inside the record and off the heap.
     */
    SmallVec<PendingInterval, 6> pending;

    /**
     * Intrusive FIFO link of the core's completion wheel: the next
     * instruction scheduled to finish in the same cycle. Owned by the
     * scheduling core; always null outside a scheduled window (the wheel
     * clears it as it drains).
     */
    std::shared_ptr<DynInstr> completionNext;

    /** True for instructions that write a non-zero architectural register. */
    bool
    writesReg() const
    {
        return destReg != invalidReg && !isZeroReg(destReg);
    }

    /** True if this is a conditional or unconditional control transfer. */
    bool isBranch() const { return isControl(op); }

    /** True if this is a load or store. */
    bool isMem() const { return isMemRef(op); }

    /** True if this instruction never contributes ACE bits. */
    bool
    neverAce() const
    {
        return wrongPath || squashed || op == OpClass::Nop;
    }
};

/** Shared handle to an in-flight dynamic instruction. */
using InstPtr = std::shared_ptr<DynInstr>;

} // namespace smtavf

#endif // SMTAVF_ISA_INSTR_HH
