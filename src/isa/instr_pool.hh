/**
 * @file
 * InstrPool: recycling allocator for in-flight dynamic instructions.
 *
 * Every dynamic instruction used to cost one global-heap round trip
 * (std::make_shared at fetch, free at last release). The pool routes the
 * combined object+control-block node through a per-core SlabPool instead,
 * so a committed or squashed instruction's slot is reused by a later fetch
 * without touching the global allocator.
 *
 * Correctness notes:
 *  - create() copy-constructs the full DynInstr from the generator's
 *    template record, so every field of a recycled slot is overwritten —
 *    no state can leak from the previous occupant.
 *  - std::allocate_shared stores a copy of the PoolAlloc (and with it a
 *    shared_ptr to the SlabPool) in each control block, so instructions
 *    that outlive the core — e.g. those retained by a CommitTrace — keep
 *    the backing slabs alive until the last InstPtr drops.
 */

#ifndef SMTAVF_ISA_INSTR_POOL_HH
#define SMTAVF_ISA_INSTR_POOL_HH

#include <memory>
#include <utility>

#include "base/pool_alloc.hh"
#include "isa/instr.hh"

namespace smtavf
{

/** Per-core factory recycling DynInstr storage through a SlabPool. */
class InstrPool
{
  public:
    InstrPool() : pool_(std::make_shared<SlabPool>()) {}

    /** Materialise a pooled copy of @p proto. */
    InstPtr
    create(const DynInstr &proto)
    {
        return std::allocate_shared<DynInstr>(PoolAlloc<DynInstr>(pool_),
                                              proto);
    }

    /** Backing pool, exposed for allocation-accounting tests. */
    const std::shared_ptr<SlabPool> &slabPool() const { return pool_; }

  private:
    std::shared_ptr<SlabPool> pool_;
};

} // namespace smtavf

#endif // SMTAVF_ISA_INSTR_POOL_HH
