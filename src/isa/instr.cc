#include "isa/instr.hh"

namespace smtavf
{

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::Nop: return "nop";
      case OpClass::IntAlu: return "ialu";
      case OpClass::IntMult: return "imul";
      case OpClass::IntDiv: return "idiv";
      case OpClass::FpAlu: return "falu";
      case OpClass::FpMult: return "fmul";
      case OpClass::FpDiv: return "fdiv";
      case OpClass::Load: return "load";
      case OpClass::Store: return "store";
      case OpClass::BranchCond: return "bcond";
      case OpClass::BranchUncond: return "jump";
      case OpClass::Call: return "call";
      case OpClass::Return: return "ret";
      default: return "?";
    }
}

bool
isControl(OpClass op)
{
    switch (op) {
      case OpClass::BranchCond:
      case OpClass::BranchUncond:
      case OpClass::Call:
      case OpClass::Return:
        return true;
      default:
        return false;
    }
}

bool
isMemRef(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store;
}

bool
isFloat(OpClass op)
{
    switch (op) {
      case OpClass::FpAlu:
      case OpClass::FpMult:
      case OpClass::FpDiv:
        return true;
      default:
        return false;
    }
}

const char *
hwStructName(HwStruct s)
{
    switch (s) {
      case HwStruct::IQ: return "IQ";
      case HwStruct::RegFile: return "Reg";
      case HwStruct::FU: return "FU";
      case HwStruct::ROB: return "ROB";
      case HwStruct::LsqData: return "LSQ_data";
      case HwStruct::LsqTag: return "LSQ_tag";
      case HwStruct::Dl1Data: return "DL1_data";
      case HwStruct::Dl1Tag: return "DL1_tag";
      case HwStruct::Dtlb: return "DTLB";
      case HwStruct::Itlb: return "ITLB";
      case HwStruct::L2Data: return "L2_data";
      case HwStruct::L2Tag: return "L2_tag";
      default: return "?";
    }
}

} // namespace smtavf
