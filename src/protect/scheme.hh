/**
 * @file
 * Protection schemes attachable to every tracked structure, and the
 * per-interval coverage model that splits each ACE bit-cycle into
 * covered-by-protection vs. residually vulnerable.
 *
 * The model is an analytical overlay: it never perturbs pipeline timing,
 * so a protected run's raw AVF and IPC are bit-identical to the
 * unprotected run and only the residual classification changes. Coverage
 * is computed per closed residency interval with pure integer arithmetic,
 * making residual AVF deterministic and exactly conserving:
 *
 *   covered + uncovered == ACE bit-cycles, per structure and thread.
 *
 * Scheme effectiveness (single-bit upsets dominate raw SER):
 *
 *  - Parity: detects all single-bit flips; recovery succeeds where the
 *    state is refetchable (clean cache lines, in-flight speculative
 *    state). Modelled as covering 224/256 (87.5%) of ACE exposure.
 *  - SECDED ECC: corrects all single-bit flips; the residual 1/256
 *    accounts for temporally accumulated double-bit errors.
 *  - SECDED + scrubbing: a periodic sweep (every scrubInterval cycles)
 *    corrects latent flips, so only the last min(length, interval)
 *    cycles of each residency remain exposed at all; that exposed tail
 *    is then covered at the SECDED rate.
 *
 * The constants are simple published-style factors (cf. Slayman, IEEE
 * TDMR'05 on parity/ECC SER mitigation); what the subsystem guarantees
 * is their ordering — residual(SECDED) <= residual(parity) <= raw,
 * bit-exactly, for every structure and workload.
 */

#ifndef SMTAVF_PROTECT_SCHEME_HH
#define SMTAVF_PROTECT_SCHEME_HH

#include <array>
#include <cstdint>
#include <string>

#include "avf/structures.hh"
#include "base/types.hh"

namespace smtavf
{

/** Per-structure protection scheme. */
enum class ProtScheme : std::uint8_t
{
    None,        ///< unprotected: residual == raw
    Parity,      ///< detect-only single-bit parity
    Secded,      ///< single-error-correct double-error-detect ECC
    SecdedScrub, ///< SECDED plus periodic scrubbing sweeps
    NumSchemes
};

/** Number of protection schemes. */
constexpr std::size_t numProtSchemes =
    static_cast<std::size_t>(ProtScheme::NumSchemes);

/** Canonical lower-case name ("none", "parity", "secded", "secded+scrub"). */
const char *protSchemeName(ProtScheme s);

/**
 * Parse a scheme name; accepts the canonical names plus the aliases
 * "ecc" (= secded) and "scrub" (= secded+scrub). Case-insensitive.
 */
bool parseProtScheme(const std::string &name, ProtScheme &out);

/** Coverage numerators (x/256 of exposed ACE bit-cycles covered). */
constexpr std::uint64_t parityCoverage256 = 224;
constexpr std::uint64_t secdedCoverage256 = 255;

/**
 * ACE bit-cycles of the interval [start, end) x @p bits covered by
 * @p scheme. Pure integer arithmetic; always <= bits x (end - start).
 * @p scrub_interval only matters for SecdedScrub (0 = no scrubbing).
 */
std::uint64_t coveredAceBitCycles(ProtScheme scheme, Cycle scrub_interval,
                                  std::uint32_t bits, Cycle start, Cycle end);

/** Short assignment key for --assign ("iq", "regfile", "dl1tag", ...). */
const char *hwStructKey(HwStruct s);

/** Parse an assignment key (case-insensitive). */
bool parseHwStructKey(const std::string &key, HwStruct &out);

/** Heterogeneous per-structure protection assignment. */
struct ProtectionConfig
{
    /** Scheme per tracked structure; default all None. */
    std::array<ProtScheme, numHwStructs> scheme{};

    /** Default scrubbing sweep period in cycles (SecdedScrub only). */
    Cycle scrubInterval = 10000;

    /**
     * Per-structure scrub-interval override; 0 means "use the global
     * scrubInterval". Lets the explorer price sweep energy per structure
     * (long intervals for short-residency structures, short ones for
     * long-lived cache lines) instead of one machine-wide period.
     */
    std::array<Cycle, numHwStructs> scrubOverride{};

    ProtScheme
    schemeFor(HwStruct s) const
    {
        return scheme[static_cast<std::size_t>(s)];
    }

    /** Effective scrub period of @p s (override, else the global). */
    Cycle
    scrubIntervalFor(HwStruct s) const
    {
        Cycle o = scrubOverride[static_cast<std::size_t>(s)];
        return o ? o : scrubInterval;
    }

    void
    assign(HwStruct s, ProtScheme p)
    {
        scheme[static_cast<std::size_t>(s)] = p;
    }

    /** Assign SecdedScrub with an explicit per-structure period. */
    void
    assignScrub(HwStruct s, Cycle interval)
    {
        scheme[static_cast<std::size_t>(s)] = ProtScheme::SecdedScrub;
        scrubOverride[static_cast<std::size_t>(s)] = interval;
    }

    /** True when any structure is protected at all. */
    bool any() const;

    /** True when any structure uses SecdedScrub. */
    bool anyScrubbed() const;

    /**
     * Canonical summary: "none", or comma-joined "key=scheme" pairs for
     * the protected structures in HwStruct order (stable across runs, so
     * it doubles as a label and a fingerprint component).
     */
    std::string str() const;

    /** First inconsistency as a message, "" when valid. */
    std::string validateMsg() const;
};

/** Every tracked structure protected with @p s. */
ProtectionConfig uniformProtection(ProtScheme s, Cycle scrub_interval = 10000);

/**
 * Parse "iq=ecc,regfile=parity,..." into @p out (on top of whatever
 * @p out already assigns). A scrubbed structure may carry an explicit
 * per-structure period: "dl1data=scrub@2000". On failure returns false
 * and leaves a description in @p err.
 */
bool parseAssignment(const std::string &spec, ProtectionConfig &out,
                     std::string &err);

} // namespace smtavf

#endif // SMTAVF_PROTECT_SCHEME_HH
