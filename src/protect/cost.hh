/**
 * @file
 * Cost model for the protection schemes: area and energy overhead per
 * scheme, weighted by each protected structure's bit capacity, plus the
 * soft-error-rate proxy the reliability-cost explorer optimizes.
 *
 * The per-scheme factors are simple published-style constants:
 *
 *   scheme          area      energy   rationale
 *   none            0         0
 *   parity          3.5%      2%       1 check bit per 32-ish-bit word,
 *                                      XOR-tree check on access
 *   secded          12.5%     10%      (72,64) Hamming: 8 bits per 64,
 *                                      encode/decode logic on every access
 *   secded+scrub    13%       10% + s  scrub FSM; s = sweep energy,
 *                                      inversely proportional to the
 *                                      scrub interval
 *
 * Overheads aggregate over the machine as bit-capacity-weighted fractions
 * of total tracked storage, so protecting a 64KB DL1 costs more than
 * protecting a 96-entry IQ — the asymmetry the explorer trades against
 * each structure's AVF contribution.
 */

#ifndef SMTAVF_PROTECT_COST_HH
#define SMTAVF_PROTECT_COST_HH

#include <array>
#include <cstdint>

#include "avf/report.hh"
#include "core/machine_config.hh"
#include "protect/scheme.hh"

namespace smtavf
{

/** Fractional area overhead of protecting one structure with @p s. */
double areaOverheadFactor(ProtScheme s);

/**
 * Fractional energy overhead of @p s; for SecdedScrub the sweep term
 * adds 100/interval (shorter intervals sweep — and burn — more often).
 */
double energyOverheadFactor(ProtScheme s, Cycle scrub_interval);

/**
 * Bit capacity of every tracked structure under @p cfg, mirroring the
 * ledger wiring in SmtCore / the cache and TLB vulnerability trackers
 * (tests/test_protect.cc proves the mirror differentially against a real
 * simulation's ledger).
 */
std::array<std::uint64_t, numHwStructs>
structureBitCapacities(const MachineConfig &cfg);

/** Machine-level protection overhead summary. */
struct ProtectionCost
{
    double areaOverhead = 0.0;   ///< fraction of total tracked bits
    double energyOverhead = 0.0; ///< fraction of total access energy
    std::uint64_t protectedBits = 0;
    std::uint64_t totalBits = 0;
};

/** Aggregate cost of @p cfg.protection over @p cfg's structures. */
ProtectionCost protectionCost(const MachineConfig &cfg);

/**
 * Soft-error-rate proxy: sum over structures of AVF x bit capacity,
 * normalized by total capacity. With a uniform raw per-bit upset rate
 * this is proportional to the machine's FIT rate; @p residual selects
 * residual (post-protection) AVF instead of raw.
 */
double serProxy(const AvfReport &report,
                const std::array<std::uint64_t, numHwStructs> &bits,
                bool residual);

} // namespace smtavf

#endif // SMTAVF_PROTECT_COST_HH
