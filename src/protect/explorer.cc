#include "protect/explorer.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "base/logging.hh"
#include "base/table.hh"

namespace smtavf
{

namespace
{

std::string
fixed6(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

/** Weak Pareto dominance over (SER min, area min, energy min, IPC max). */
bool
dominates(const ProtectionPoint &a, const ProtectionPoint &b)
{
    if (a.residualSer > b.residualSer || a.areaOverhead > b.areaOverhead ||
        a.energyOverhead > b.energyOverhead || a.ipc < b.ipc)
        return false;
    return a.residualSer < b.residualSer || a.areaOverhead < b.areaOverhead ||
           a.energyOverhead < b.energyOverhead || a.ipc > b.ipc;
}

} // namespace

std::string
ExplorationResult::csv() const
{
    std::ostringstream os;
    os << "label,assignment,ipc,raw_ser,residual_ser,area_overhead,"
          "energy_overhead,pareto\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ProtectionPoint &p = points[i];
        bool on = std::find(frontier.begin(), frontier.end(), i) !=
                  frontier.end();
        std::string assignment = p.protection.str();
        for (char &c : assignment)
            if (c == ',')
                c = ';';
        os << p.label << ',' << assignment << ',' << fixed6(p.ipc) << ','
           << fixed6(p.rawSer) << ',' << fixed6(p.residualSer) << ','
           << fixed6(p.areaOverhead) << ',' << fixed6(p.energyOverhead)
           << ',' << (on ? 1 : 0) << '\n';
    }
    return os.str();
}

std::string
ExplorationResult::table() const
{
    TextTable t({"assignment", "IPC", "raw SER", "residual SER", "area",
                 "energy"});
    for (auto i : frontier) {
        const ProtectionPoint &p = points[i];
        t.addRow({p.label, TextTable::num(p.ipc, 3),
                  TextTable::pct(p.rawSer, 2),
                  TextTable::pct(p.residualSer, 2),
                  TextTable::pct(p.areaOverhead, 2),
                  TextTable::pct(p.energyOverhead, 2)});
    }
    return t.str();
}

ProtectionExplorer::ProtectionExplorer(MachineConfig base, WorkloadMix mix,
                                       std::uint64_t budget,
                                       unsigned max_depth)
    : base_(std::move(base)), mix_(std::move(mix)), budget_(budget),
      maxDepth_(max_depth)
{
    if (maxDepth_ == 0)
        SMTAVF_FATAL("explorer needs max_depth >= 1");
    base_.protection = ProtectionConfig{}; // candidates replace it
}

std::vector<ProtectionConfig>
ProtectionExplorer::candidates(const std::vector<HwStruct> &priority,
                               Cycle scrub_interval, unsigned max_depth)
{
    static const ProtScheme schemes[] = {
        ProtScheme::Parity, ProtScheme::Secded, ProtScheme::SecdedScrub};
    std::vector<ProtectionConfig> out;
    unsigned depth = std::min<unsigned>(
        max_depth, static_cast<unsigned>(priority.size()));
    for (auto scheme : schemes) {
        for (unsigned k = 1; k <= depth; ++k) {
            ProtectionConfig p;
            p.scrubInterval = scrub_interval;
            for (unsigned i = 0; i < k; ++i)
                p.assign(priority[i], scheme);
            out.push_back(std::move(p));
        }
    }
    return out;
}

std::vector<std::size_t>
ProtectionExplorer::paretoFrontier(const std::vector<ProtectionPoint> &points)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated; ++j)
            if (j != i && dominates(points[j], points[i]))
                dominated = true;
        if (!dominated)
            frontier.push_back(i);
    }
    return frontier;
}

ExplorationResult
ProtectionExplorer::explore(CampaignRunner &pool) const
{
    const auto bits = structureBitCapacities(base_);

    // Stage 1: unprotected baseline, for the hotspot ranking.
    Experiment baseline;
    baseline.label = mix_.name + "/unprotected";
    baseline.cfg = base_;
    baseline.mix = mix_;
    baseline.budget = budget_;
    SimResult base_run = pool.run({baseline}).front();

    ExplorationResult result;
    for (auto s : AvfReport::figureStructs())
        if (base_run.avf.avf(s) > 0.0)
            result.priority.push_back(s);
    // Descending raw AVF; stable sort keeps the figure order as the
    // deterministic tie-break.
    std::stable_sort(result.priority.begin(), result.priority.end(),
                     [&](HwStruct a, HwStruct b) {
                         return base_run.avf.avf(a) > base_run.avf.avf(b);
                     });

    // Stage 2: every candidate assignment as one campaign.
    auto configs = candidates(result.priority,
                              base_.protection.scrubInterval
                                  ? base_.protection.scrubInterval
                                  : 10000,
                              maxDepth_);
    std::vector<Experiment> exps;
    exps.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        Experiment e = baseline;
        e.cfg.protection = configs[i];
        unsigned depth = 0;
        ProtScheme scheme = ProtScheme::None;
        for (auto s : result.priority)
            if (configs[i].schemeFor(s) != ProtScheme::None) {
                ++depth;
                scheme = configs[i].schemeFor(s);
            }
        e.label = mix_.name + "/" + protSchemeName(scheme) + ":top" +
                  std::to_string(depth);
        exps.push_back(std::move(e));
    }
    auto runs = pool.run(exps);

    auto to_point = [&](const std::string &label, const Experiment &e,
                        const SimResult &r) {
        ProtectionPoint p;
        p.label = label;
        p.protection = e.cfg.protection;
        p.rawSer = serProxy(r.avf, bits, /*residual=*/false);
        p.residualSer = serProxy(r.avf, bits, /*residual=*/true);
        auto cost = protectionCost(e.cfg);
        p.areaOverhead = cost.areaOverhead;
        p.energyOverhead = cost.energyOverhead;
        p.ipc = r.ipc;
        return p;
    };

    result.points.push_back(to_point("none", baseline, base_run));
    for (std::size_t i = 0; i < runs.size(); ++i) {
        // Strip the mix prefix: the point label is the assignment.
        auto slash = exps[i].label.find('/');
        result.points.push_back(to_point(exps[i].label.substr(slash + 1),
                                         exps[i], runs[i]));
    }
    result.frontier = paretoFrontier(result.points);
    return result;
}

} // namespace smtavf
