#include "protect/explorer.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "base/logging.hh"
#include "base/table.hh"
#include "sim/journal.hh"
#include "sim/simulator.hh"

namespace smtavf
{

const char *const l2PricingWarning =
    "L2 AVF is tracked per line only (avf.trackL2Avf) while L2 "
    "protection is priced from the full configured capacity "
    "(mem.l2.sizeBytes); L2 area/energy overheads are unvalidated "
    "upper bounds";

const char *
exploreModeName(ExploreMode m)
{
    switch (m) {
      case ExploreMode::Prefix: return "prefix";
      case ExploreMode::Beam: return "beam";
      default: return "unknown";
    }
}

bool
parseExploreMode(const std::string &name, ExploreMode &out)
{
    if (name == "prefix") {
        out = ExploreMode::Prefix;
        return true;
    }
    if (name == "beam") {
        out = ExploreMode::Beam;
        return true;
    }
    return false;
}

const char *
beamActionName(BeamTraceEvent::Action a)
{
    switch (a) {
      case BeamTraceEvent::Action::Evaluated: return "evaluated";
      case BeamTraceEvent::Action::Pruned: return "pruned";
      case BeamTraceEvent::Action::BudgetSkipped: return "budget";
      default: return "unknown";
    }
}

namespace
{

std::string
fixed6(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

std::string
shortest(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

/** Hotspot ranking: tracked structures by raw AVF, descending. */
std::vector<HwStruct>
rankedHotspots(const MachineConfig &cfg, const AvfReport &avf)
{
    std::vector<HwStruct> out;
    for (auto s : AvfReport::figureStructs())
        if (avf.avf(s) > 0.0)
            out.push_back(s);
    if (cfg.avf.trackL2Avf)
        for (auto s : {HwStruct::L2Data, HwStruct::L2Tag})
            if (avf.avf(s) > 0.0)
                out.push_back(s);
    // Stable sort keeps the figure order as the deterministic tie-break.
    std::stable_sort(out.begin(), out.end(), [&](HwStruct a, HwStruct b) {
        return avf.avf(a) > avf.avf(b);
    });
    return out;
}

/** The L2 pricing caveat, emitted once per exploration. */
void
maybeWarnL2(ExplorationResult &result, const MachineConfig &cfg,
            const ProtectionConfig &p)
{
    if (!cfg.avf.trackL2Avf)
        return;
    if (p.schemeFor(HwStruct::L2Data) == ProtScheme::None &&
        p.schemeFor(HwStruct::L2Tag) == ProtScheme::None)
        return;
    for (const auto &w : result.warnings)
        if (w == l2PricingWarning)
            return;
    result.warnings.push_back(l2PricingWarning);
}

/** One (scheme, scrub rung) the search can assign to a structure. */
struct SchemeVariant
{
    ProtScheme scheme;
    Cycle interval; ///< only meaningful for SecdedScrub
};

std::vector<SchemeVariant>
schemeVariants(const std::vector<Cycle> &ladder)
{
    std::vector<SchemeVariant> v = {{ProtScheme::None, 0},
                                    {ProtScheme::Parity, 0},
                                    {ProtScheme::Secded, 0}};
    for (auto rung : ladder)
        v.push_back({ProtScheme::SecdedScrub, rung});
    return v;
}

void
applyVariant(ProtectionConfig &p, HwStruct s, const SchemeVariant &v)
{
    if (v.scheme == ProtScheme::SecdedScrub) {
        p.assignScrub(s, v.interval);
    } else {
        p.assign(s, v.scheme);
        p.scrubOverride[static_cast<std::size_t>(s)] = 0;
    }
}

bool
hasVariant(const ProtectionConfig &p, HwStruct s, const SchemeVariant &v)
{
    if (p.schemeFor(s) != v.scheme)
        return false;
    return v.scheme != ProtScheme::SecdedScrub ||
           p.scrubIntervalFor(s) == v.interval;
}

} // namespace

std::string
ExplorationResult::csv() const
{
    std::ostringstream os;
    os << "# smtavf exploration\n";
    os << "# mode=" << exploreModeName(mode) << '\n';
    os << "# mix=" << mixName << '\n';
    os << "# policy=" << policyName << '\n';
    os << "# evaluations=" << evaluations << '\n';
    os << "# journal_hits=" << journalHits << '\n';
    os << "# pruned=" << prunedCount << '\n';
    for (const auto &w : warnings)
        os << "# warning: " << w << '\n';
    os << "label,assignment,ipc,raw_ser,residual_ser,area_overhead,"
          "energy_overhead,generation,pareto\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ProtectionPoint &p = points[i];
        bool on = std::find(frontier.begin(), frontier.end(), i) !=
                  frontier.end();
        std::string assignment = p.protection.str();
        for (char &c : assignment)
            if (c == ',')
                c = ';';
        os << p.label << ',' << assignment << ',' << fixed6(p.ipc) << ','
           << fixed6(p.rawSer) << ',' << fixed6(p.residualSer) << ','
           << fixed6(p.areaOverhead) << ',' << fixed6(p.energyOverhead)
           << ',' << p.generation << ',' << (on ? 1 : 0) << '\n';
    }
    return os.str();
}

std::string
ExplorationResult::json() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"mode\": " << jsonStr(exploreModeName(mode)) << ",\n";
    os << "  \"mix\": " << jsonStr(mixName) << ",\n";
    os << "  \"policy\": " << jsonStr(policyName) << ",\n";
    os << "  \"evaluations\": " << evaluations << ",\n";
    os << "  \"journal_hits\": " << journalHits << ",\n";
    os << "  \"pruned\": " << prunedCount << ",\n";
    os << "  \"warnings\": [";
    for (std::size_t i = 0; i < warnings.size(); ++i)
        os << (i ? ", " : "") << jsonStr(warnings[i]);
    os << "],\n";
    os << "  \"priority\": [";
    for (std::size_t i = 0; i < priority.size(); ++i)
        os << (i ? ", " : "") << jsonStr(hwStructName(priority[i]));
    os << "],\n";
    os << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ProtectionPoint &p = points[i];
        bool on = std::find(frontier.begin(), frontier.end(), i) !=
                  frontier.end();
        os << "    {\"label\": " << jsonStr(p.label)
           << ", \"assignment\": " << jsonStr(p.protection.str())
           << ", \"ipc\": " << shortest(p.ipc)
           << ", \"raw_ser\": " << shortest(p.rawSer)
           << ", \"residual_ser\": " << shortest(p.residualSer)
           << ", \"area_overhead\": " << shortest(p.areaOverhead)
           << ", \"energy_overhead\": " << shortest(p.energyOverhead)
           << ", \"generation\": " << p.generation
           << ", \"from_journal\": " << (p.fromJournal ? "true" : "false")
           << ", \"pareto\": " << (on ? "true" : "false") << "}"
           << (i + 1 < points.size() ? "," : "") << '\n';
    }
    os << "  ],\n";
    os << "  \"frontier\": [";
    for (std::size_t i = 0; i < frontier.size(); ++i)
        os << (i ? ", " : "") << frontier[i];
    os << "],\n";
    os << "  \"trace\": [\n";
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const BeamTraceEvent &t = trace[i];
        os << "    {\"generation\": " << t.generation
           << ", \"action\": " << jsonStr(beamActionName(t.action))
           << ", \"assignment\": " << jsonStr(t.assignment) << "}"
           << (i + 1 < trace.size() ? "," : "") << '\n';
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

std::string
ExplorationResult::table() const
{
    TextTable t({"assignment", "IPC", "raw SER", "residual SER", "area",
                 "energy"});
    for (auto i : frontier) {
        const ProtectionPoint &p = points[i];
        t.addRow({p.label, TextTable::num(p.ipc, 3),
                  TextTable::pct(p.rawSer, 2),
                  TextTable::pct(p.residualSer, 2),
                  TextTable::pct(p.areaOverhead, 2),
                  TextTable::pct(p.energyOverhead, 2)});
    }
    return t.str();
}

ProtectionExplorer::ProtectionExplorer(MachineConfig base, WorkloadMix mix,
                                       std::uint64_t budget,
                                       unsigned max_depth)
    : base_(std::move(base)), mix_(std::move(mix)), budget_(budget),
      maxDepth_(max_depth)
{
    if (maxDepth_ == 0)
        SMTAVF_FATAL("explorer needs max_depth >= 1");
    base_.protection = ProtectionConfig{}; // candidates replace it
}

std::vector<ProtectionConfig>
ProtectionExplorer::candidates(const std::vector<HwStruct> &priority,
                               Cycle scrub_interval, unsigned max_depth)
{
    static const ProtScheme schemes[] = {
        ProtScheme::Parity, ProtScheme::Secded, ProtScheme::SecdedScrub};
    std::vector<ProtectionConfig> out;
    unsigned depth = std::min<unsigned>(
        max_depth, static_cast<unsigned>(priority.size()));
    for (auto scheme : schemes) {
        for (unsigned k = 1; k <= depth; ++k) {
            ProtectionConfig p;
            p.scrubInterval = scrub_interval;
            for (unsigned i = 0; i < k; ++i)
                p.assign(priority[i], scheme);
            out.push_back(std::move(p));
        }
    }
    return out;
}

std::vector<Cycle>
ProtectionExplorer::defaultScrubLadder(Cycle interval)
{
    if (interval == 0)
        interval = 10000;
    constexpr Cycle lo = 16;
    constexpr Cycle hi = Cycle{1} << 30;
    auto clamp = [](std::uint64_t v) {
        return static_cast<Cycle>(v < lo ? lo : (v > hi ? hi : v));
    };
    std::vector<Cycle> ladder = {clamp(interval / 10), clamp(interval),
                                 clamp(std::uint64_t{interval} * 10)};
    std::sort(ladder.begin(), ladder.end());
    ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
    return ladder;
}

std::vector<ProtectionConfig>
ProtectionExplorer::allAssignments(const std::vector<HwStruct> &structs,
                                   const std::vector<Cycle> &ladder)
{
    auto variants = schemeVariants(ladder);
    std::uint64_t total = 1;
    for (std::size_t i = 0; i < structs.size(); ++i) {
        total *= variants.size();
        if (total > 1'000'000)
            SMTAVF_FATAL("exhaustive space too large: ", variants.size(),
                         "^", structs.size(), " assignments");
    }
    std::vector<ProtectionConfig> out;
    out.reserve(total);
    std::vector<std::size_t> odo(structs.size(), 0);
    for (std::uint64_t n = 0; n < total; ++n) {
        ProtectionConfig p;
        for (std::size_t i = 0; i < structs.size(); ++i)
            applyVariant(p, structs[i], variants[odo[i]]);
        out.push_back(std::move(p));
        for (std::size_t i = 0; i < odo.size(); ++i) {
            if (++odo[i] < variants.size())
                break;
            odo[i] = 0;
        }
    }
    return out;
}

std::vector<ProtectionConfig>
ProtectionExplorer::neighbors(const ProtectionConfig &base,
                              const std::vector<HwStruct> &structs,
                              const std::vector<Cycle> &ladder)
{
    auto variants = schemeVariants(ladder);
    std::vector<ProtectionConfig> out;
    for (auto s : structs) {
        for (const auto &v : variants) {
            if (hasVariant(base, s, v))
                continue;
            ProtectionConfig p = base;
            applyVariant(p, s, v);
            out.push_back(std::move(p));
        }
    }
    return out;
}

double
ProtectionExplorer::optimisticResidualSer(
    const AvfReport &baseline,
    const std::array<std::uint64_t, numHwStructs> &bits,
    const ProtectionConfig &p)
{
    double weighted = 0.0;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        total += bits[i];
        double frac;
        switch (p.schemeFor(s)) {
          case ProtScheme::Parity:
            frac = static_cast<double>(256 - parityCoverage256) / 256.0;
            break;
          case ProtScheme::Secded:
            frac = static_cast<double>(256 - secdedCoverage256) / 256.0;
            break;
          case ProtScheme::SecdedScrub:
            frac = 0.0; // scrubbing can cover everything
            break;
          default:
            frac = 1.0;
            break;
        }
        weighted += baseline.avf(s) * frac * static_cast<double>(bits[i]);
    }
    return total ? weighted / static_cast<double>(total) : 0.0;
}

bool
ProtectionExplorer::dominates(const ProtectionPoint &a,
                              const ProtectionPoint &b)
{
    if (a.residualSer > b.residualSer || a.areaOverhead > b.areaOverhead ||
        a.energyOverhead > b.energyOverhead || a.ipc < b.ipc)
        return false;
    return a.residualSer < b.residualSer || a.areaOverhead < b.areaOverhead ||
           a.energyOverhead < b.energyOverhead || a.ipc > b.ipc;
}

std::vector<std::size_t>
ProtectionExplorer::paretoFrontier(const std::vector<ProtectionPoint> &points)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated; ++j)
            if (j != i && dominates(points[j], points[i]))
                dominated = true;
        if (!dominated)
            frontier.push_back(i);
    }
    return frontier;
}

ExplorationResult
ProtectionExplorer::explore(CampaignRunner &pool, std::uint64_t warmup) const
{
    const auto bits = structureBitCapacities(base_);

    // Stage 1: unprotected baseline, for the hotspot ranking.
    Experiment baseline;
    baseline.label = mix_.name + "/unprotected";
    baseline.cfg = base_;
    baseline.mix = mix_;
    baseline.budget = budget_;
    baseline.warmup = warmup;
    SimResult base_run = pool.run({baseline}).front();

    ExplorationResult result;
    result.mode = ExploreMode::Prefix;
    result.mixName = base_run.mixName;
    result.policyName = base_run.policyName;
    result.priority = rankedHotspots(base_, base_run.avf);

    // Stage 2: every candidate assignment as one campaign.
    auto configs = candidates(result.priority,
                              base_.protection.scrubInterval
                                  ? base_.protection.scrubInterval
                                  : 10000,
                              maxDepth_);
    std::vector<Experiment> exps;
    exps.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        Experiment e = baseline;
        e.cfg.protection = configs[i];
        unsigned depth = 0;
        ProtScheme scheme = ProtScheme::None;
        for (auto s : result.priority)
            if (configs[i].schemeFor(s) != ProtScheme::None) {
                ++depth;
                scheme = configs[i].schemeFor(s);
            }
        e.label = mix_.name + "/" + protSchemeName(scheme) + ":top" +
                  std::to_string(depth);
        exps.push_back(std::move(e));
    }
    auto runs = pool.run(exps);
    result.evaluations = runs.size();

    auto to_point = [&](const std::string &label, const Experiment &e,
                        const SimResult &r) {
        ProtectionPoint p;
        p.label = label;
        p.protection = e.cfg.protection;
        p.rawSer = serProxy(r.avf, bits, /*residual=*/false);
        p.residualSer = serProxy(r.avf, bits, /*residual=*/true);
        auto cost = protectionCost(e.cfg);
        p.areaOverhead = cost.areaOverhead;
        p.energyOverhead = cost.energyOverhead;
        p.ipc = r.ipc;
        maybeWarnL2(result, base_, e.cfg.protection);
        return p;
    };

    result.points.push_back(to_point("none", baseline, base_run));
    for (std::size_t i = 0; i < runs.size(); ++i) {
        // Strip the mix prefix: the point label is the assignment.
        auto slash = exps[i].label.find('/');
        result.points.push_back(to_point(exps[i].label.substr(slash + 1),
                                         exps[i], runs[i]));
    }
    result.frontier = paretoFrontier(result.points);
    return result;
}

ExplorationResult
ProtectionExplorer::exploreBeam(CampaignRunner &pool,
                                const BeamOptions &opt) const
{
    if (opt.beamWidth == 0)
        SMTAVF_FATAL("beam search needs --beam-width >= 1");
    if (opt.maxStructures == 0)
        SMTAVF_FATAL("beam search needs at least one searchable structure");
    std::vector<Cycle> ladder =
        !opt.scrubLadder.empty()
            ? opt.scrubLadder
            : defaultScrubLadder(base_.protection.scrubInterval);
    for (auto rung : ladder)
        if (rung == 0 || rung > (Cycle{1} << 30))
            SMTAVF_FATAL("scrub ladder rung out of range: ", rung);

    const auto bits = structureBitCapacities(base_);

    CampaignOptions copt;
    copt.journalPath = opt.journalPath;
    copt.resume = opt.resume;
    copt.runFn = opt.runFn;

    // Worker reuse (copt.reuseWorkers, on by default) is at its best
    // here: protection assignments are excluded from the reset
    // compatibility shape, so every candidate in a generation reset()s
    // onto the same worker-local simulator instead of constructing a
    // fresh one — the search's Simulator setup cost collapses to one
    // construction per pool worker.

    // Shared warmup: simulate the warmup prefix exactly once, up front,
    // and let every runTolerant() batch (baseline, each generation)
    // restore the capture. The checkpoint fingerprint excludes the
    // protection assignment, so one capture serves the whole search —
    // except under PRAT, whose throttle makes protection timing-
    // affecting: a capture would fit only its own candidate, so fall
    // back to per-run warmup (correct, just slower) and say so once.
    Checkpoint warm_ck;
    const bool prat = base_.fetchPolicy == FetchPolicyKind::PRat;
    if (opt.warmup > 0 && opt.sharedWarmup && !opt.runFn && !prat) {
        Simulator warm(base_, mix_);
        warm_ck = warm.captureWarmupCheckpoint(opt.warmup);
        copt.sharedWarmup = true;
        copt.warmupCheckpoint = &warm_ck;
    }

    auto runBatch = [&](const std::vector<Experiment> &exps) {
        auto report = runTolerant(pool, exps, copt);
        if (!report.allOk())
            SMTAVF_FATAL("beam search candidate failed:\n",
                         report.failureReport());
        return report;
    };

    // Baseline: hotspot ranking, raw-SER anchor, and the first point.
    Experiment baseline;
    baseline.label = mix_.name + "/none";
    baseline.cfg = base_;
    baseline.mix = mix_;
    baseline.budget = budget_;
    baseline.warmup = opt.warmup;
    auto base_report = runBatch({baseline});
    const RunOutcome &base_out = base_report.outcomes.front();
    const SimResult &base_run = base_out.result;

    ExplorationResult result;
    result.mode = ExploreMode::Beam;
    result.mixName = base_run.mixName;
    result.policyName = base_run.policyName;
    result.priority = rankedHotspots(base_, base_run.avf);
    if (prat && opt.warmup > 0 && opt.sharedWarmup)
        result.warnings.push_back(
            "PRAT throttling is protection-sensitive: warmup checkpoints "
            "cannot be shared across candidates; each evaluation warms up "
            "individually");

    std::vector<HwStruct> search(
        result.priority.begin(),
        result.priority.begin() +
            std::min<std::size_t>(opt.maxStructures,
                                  result.priority.size()));
    if (search.empty())
        SMTAVF_FATAL("beam search found no vulnerable structure to protect");

    auto to_point = [&](const ProtectionConfig &prot, const SimResult &r,
                        unsigned generation, bool from_journal) {
        ProtectionPoint p;
        p.label = prot.str();
        p.protection = prot;
        p.rawSer = serProxy(r.avf, bits, /*residual=*/false);
        p.residualSer = serProxy(r.avf, bits, /*residual=*/true);
        MachineConfig cfg = base_;
        cfg.protection = prot;
        auto cost = protectionCost(cfg);
        p.areaOverhead = cost.areaOverhead;
        p.energyOverhead = cost.energyOverhead;
        p.ipc = r.ipc;
        p.generation = generation;
        p.fromJournal = from_journal;
        maybeWarnL2(result, base_, prot);
        return p;
    };

    result.points.push_back(
        to_point(ProtectionConfig{}, base_run, 0, base_out.fromJournal));
    const double base_raw = result.points.front().rawSer;

    // Scalar ranking for beam selection only (the reported frontier is
    // the full Pareto set, not this projection): normalized residual SER
    // plus the mean of the two overheads, ties broken by the canonical
    // assignment string.
    auto score = [&](double residual, double area, double energy) {
        double rel = base_raw > 0.0 ? residual / base_raw : 0.0;
        return rel + 0.5 * (area + energy);
    };

    /** Expansion-pool node: evaluated or pruned-but-reachable. */
    struct Node
    {
        std::string key; ///< canonical assignment string
        ProtectionConfig cfg;
        double score;
    };
    std::vector<Node> nodes;
    nodes.push_back({"none", ProtectionConfig{},
                     score(result.points[0].residualSer, 0.0, 0.0)});

    auto fingerprintOf = [&](const ProtectionConfig &prot) {
        Experiment e = baseline;
        e.cfg.protection = prot;
        return experimentFingerprint(e);
    };
    std::unordered_set<std::uint64_t> seen = {fingerprintOf({})};

    /** Candidates of one generation, deduped and canonically ordered. */
    auto canonicalize = [&](std::vector<ProtectionConfig> &configs) {
        std::vector<std::pair<std::string, ProtectionConfig>> keyed;
        std::unordered_set<std::uint64_t> batch_seen;
        for (auto &c : configs) {
            auto fp = fingerprintOf(c);
            if (seen.count(fp) || !batch_seen.insert(fp).second)
                continue;
            keyed.emplace_back(c.str(), std::move(c));
        }
        std::sort(keyed.begin(), keyed.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        return keyed;
    };

    // Process one generation's candidates: prune, budget-check, evaluate
    // the survivors as one campaign batch, grow points and the pool.
    auto runGeneration = [&](unsigned gen,
                             std::vector<ProtectionConfig> configs) {
        auto keyed = canonicalize(configs);
        std::vector<Experiment> batch;
        std::vector<std::size_t> batch_gen; // index into keyed
        for (std::size_t i = 0; i < keyed.size(); ++i) {
            const auto &[key, prot] = keyed[i];
            seen.insert(fingerprintOf(prot));

            MachineConfig cfg = base_;
            cfg.protection = prot;
            auto cost = protectionCost(cfg);
            ProtectionPoint optimistic;
            optimistic.residualSer =
                optimisticResidualSer(base_run.avf, bits, prot) *
                (1.0 - 1e-9); // margin for double rounding in the bound
            optimistic.areaOverhead = cost.areaOverhead;
            optimistic.energyOverhead = cost.energyOverhead;
            optimistic.ipc = result.points[0].ipc;

            // The optimistic bound derives every candidate's best-case
            // residual SER from the *baseline* run's raw AVF — sound only
            // while protection cannot change what a run executes. Under
            // PRAT it can (the throttle reads the assignment), so the
            // bound proves nothing and pruning is disabled: every
            // candidate is evaluated for real.
            bool pruned = false;
            if (!prat)
                for (const auto &p : result.points)
                    if (dominates(p, optimistic)) {
                        pruned = true;
                        break;
                    }
            if (pruned) {
                ++result.prunedCount;
                result.trace.push_back(
                    {gen, key, BeamTraceEvent::Action::Pruned});
                // Pruned nodes stay expandable (scored optimistically) so
                // the search can reach frontier corners through them.
                nodes.push_back(
                    {key, prot,
                     score(optimistic.residualSer, cost.areaOverhead,
                           cost.energyOverhead)});
                continue;
            }
            if (opt.evalBudget && result.evaluations >= opt.evalBudget) {
                result.trace.push_back(
                    {gen, key, BeamTraceEvent::Action::BudgetSkipped});
                continue;
            }
            ++result.evaluations;
            result.trace.push_back(
                {gen, key, BeamTraceEvent::Action::Evaluated});
            Experiment e = baseline;
            e.cfg.protection = prot;
            e.label = mix_.name + "/" + key;
            batch.push_back(std::move(e));
            batch_gen.push_back(i);
        }
        if (batch.empty())
            return;
        auto report = runBatch(batch);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const RunOutcome &out = report.outcomes[i];
            if (out.fromJournal)
                ++result.journalHits;
            auto p = to_point(keyed[batch_gen[i]].second, out.result, gen,
                              out.fromJournal);
            nodes.push_back({p.label, p.protection,
                             score(p.residualSer, p.areaOverhead,
                                   p.energyOverhead)});
            result.points.push_back(std::move(p));
        }
    };

    // Generation 0: seed from the hotspot ranking — the prefix-sweep
    // candidates, with scrubbing pinned to the ladder's middle rung
    // (other rungs are one neighbor move away).
    Cycle mid = ladder[ladder.size() / 2];
    std::vector<ProtectionConfig> seeds;
    for (auto scheme : {ProtScheme::Parity, ProtScheme::Secded,
                        ProtScheme::SecdedScrub}) {
        for (std::size_t k = 1; k <= search.size(); ++k) {
            ProtectionConfig p;
            for (std::size_t i = 0; i < k; ++i)
                applyVariant(p, search[i],
                             scheme == ProtScheme::SecdedScrub
                                 ? SchemeVariant{scheme, mid}
                                 : SchemeVariant{scheme, 0});
            seeds.push_back(std::move(p));
        }
    }
    runGeneration(0, std::move(seeds));

    // Generations 1..N: expand the beam by single-structure moves.
    for (unsigned gen = 1; gen <= opt.generations; ++gen) {
        if (opt.evalBudget && result.evaluations >= opt.evalBudget)
            break;
        std::vector<Node> beam = nodes;
        std::sort(beam.begin(), beam.end(), [](const Node &a, const Node &b) {
            return a.score != b.score ? a.score < b.score : a.key < b.key;
        });
        if (beam.size() > opt.beamWidth)
            beam.resize(opt.beamWidth);

        std::vector<ProtectionConfig> configs;
        for (const auto &n : beam)
            for (auto &c : neighbors(n.cfg, search, ladder))
                configs.push_back(std::move(c));
        std::size_t before = result.trace.size();
        runGeneration(gen, std::move(configs));
        if (result.trace.size() == before)
            break; // every neighbor already seen: the space is exhausted
    }

    result.frontier = paretoFrontier(result.points);

    if (!opt.journalPath.empty()) {
        RunJournal journal(opt.journalPath);
        std::ostringstream head;
        head << "beam-trace v1 mix=" << mix_.name
             << " policy=" << result.policyName
             << " width=" << opt.beamWidth
             << " generations=" << opt.generations
             << " budget=" << opt.evalBudget
             << " structures=" << search.size();
        journal.comment(head.str());
        for (const auto &t : result.trace) {
            std::ostringstream line;
            line << "beam g=" << t.generation << ' '
                 << beamActionName(t.action) << ' ' << t.assignment;
            journal.comment(line.str());
        }
        std::ostringstream tail;
        tail << "beam-result evaluations=" << result.evaluations
             << " journal_hits=" << result.journalHits
             << " pruned=" << result.prunedCount
             << " frontier=" << result.frontier.size();
        journal.comment(tail.str());
    }
    return result;
}

} // namespace smtavf
