/**
 * @file
 * Flag parsing for the `smtavf_cli protect` subcommand, factored out of
 * the CLI so the fuzz harness (tests/test_explorer_fuzz.cc) can drive the
 * exact production parser with adversarial flag vectors. The parser is a
 * pure function: it never prints, never exits, and never starts a
 * simulation — malformed input returns false with a diagnostic, which the
 * CLI maps to exit code 2.
 */

#ifndef SMTAVF_PROTECT_OPTIONS_HH
#define SMTAVF_PROTECT_OPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "protect/explorer.hh"

namespace smtavf
{

/** Validated `protect` subcommand flags (defaults = no flags given). */
struct ProtectCliOptions
{
    std::string mixName = "4ctx-mix-A";
    std::string policyName = "ICOUNT";
    std::uint64_t instructions = 0;
    std::uint64_t seed = 1;

    std::string schemeName;  ///< --scheme (uniform), "" = none given
    std::string assignSpec;  ///< --assign specs, comma-joined
    std::uint64_t scrubInterval = 10000;

    std::uint64_t pratEpoch = 4096; ///< --prat-epoch (PRAT only)
    std::uint64_t pratCap = 0;      ///< --prat-cap, 0 = RAT default

    bool explore = false;
    ExploreMode exploreMode = ExploreMode::Prefix;
    unsigned depth = 4;          ///< prefix depth / beam structure cap
    bool depthSet = false;
    unsigned beamWidth = 8;      ///< --beam-width
    unsigned generations = 3;    ///< --generations
    std::uint64_t evalBudget = 0; ///< --budget, 0 = unlimited
    std::string journalPath;     ///< --journal
    bool resume = false;         ///< --resume

    std::uint64_t warmup = 0;  ///< --warmup instructions (0 = off)
    bool sharedWarmup = false; ///< --shared-warmup (explore only)

    unsigned jobs = 0;
    bool csv = false;
    bool json = false;
    bool help = false; ///< --help seen; caller prints usage and exits 0
};

/**
 * Parse the argument vector of `smtavf_cli protect` (everything after the
 * subcommand word). Numeric flags use strictParseU64: "12x", "", "-3" and
 * anything that overflows are errors, never truncated. Cross-flag
 * constraints (--resume needs --journal, --beam-width needs
 * --explore=beam, --explore excludes --scheme/--assign, scrub-interval
 * range) are enforced here too, so a true return means the options are
 * internally consistent. On failure returns false and leaves a
 * description in @p err; @p out may be partially written.
 */
bool parseProtectCli(const std::vector<std::string> &args,
                     ProtectCliOptions &out, std::string &err);

} // namespace smtavf

#endif // SMTAVF_PROTECT_OPTIONS_HH
