#include "protect/options.hh"

#include <limits>

#include "base/env.hh"

namespace smtavf
{

namespace
{

bool
parseNum(const std::string &flag, const char *value, std::uint64_t &out,
         std::string &err)
{
    if (!value) {
        err = flag + " needs a value";
        return false;
    }
    if (!strictParseU64(value, out)) {
        err = "bad number for " + flag + ": '" + value +
              "' (need a non-negative integer)";
        return false;
    }
    return true;
}

bool
parseCount(const std::string &flag, const char *value, unsigned &out,
           bool positive, std::string &err)
{
    std::uint64_t v = 0;
    if (!parseNum(flag, value, v, err))
        return false;
    if (positive && v == 0) {
        err = flag + " must be positive";
        return false;
    }
    if (v > std::numeric_limits<unsigned>::max()) {
        err = flag + " is out of range: " + value;
        return false;
    }
    out = static_cast<unsigned>(v);
    return true;
}

} // namespace

bool
parseProtectCli(const std::vector<std::string> &args, ProtectCliOptions &out,
                std::string &err)
{
    bool beam_width_set = false, generations_set = false, budget_set = false;
    bool prat_epoch_set = false, prat_cap_set = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> const char * {
            return i + 1 < args.size() ? args[++i].c_str() : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            out.help = true;
            return true;
        } else if (arg == "--mix") {
            const char *v = next();
            if (!v) {
                err = "--mix needs a value";
                return false;
            }
            out.mixName = v;
        } else if (arg == "--policy") {
            const char *v = next();
            if (!v) {
                err = "--policy needs a value";
                return false;
            }
            out.policyName = v;
        } else if (arg == "--instructions") {
            if (!parseNum(arg, next(), out.instructions, err))
                return false;
        } else if (arg == "--seed") {
            if (!parseNum(arg, next(), out.seed, err))
                return false;
        } else if (arg == "--scheme") {
            const char *v = next();
            if (!v) {
                err = "--scheme needs a value";
                return false;
            }
            out.schemeName = v;
        } else if (arg == "--assign") {
            const char *v = next();
            if (!v) {
                err = "--assign needs a value";
                return false;
            }
            if (!out.assignSpec.empty())
                out.assignSpec += ',';
            out.assignSpec += v;
        } else if (arg == "--scrub-interval") {
            if (!parseNum(arg, next(), out.scrubInterval, err))
                return false;
            if (out.scrubInterval == 0 ||
                out.scrubInterval > (std::uint64_t{1} << 30)) {
                err = "--scrub-interval must be in [1, 2^30] cycles";
                return false;
            }
        } else if (arg == "--prat-epoch") {
            if (!parseNum(arg, next(), out.pratEpoch, err))
                return false;
            if (out.pratEpoch == 0 ||
                out.pratEpoch > (std::uint64_t{1} << 30)) {
                err = "--prat-epoch must be in [1, 2^30] cycles";
                return false;
            }
            prat_epoch_set = true;
        } else if (arg == "--prat-cap") {
            if (!parseNum(arg, next(), out.pratCap, err))
                return false;
            if (out.pratCap > (std::uint64_t{1} << 20)) {
                err = "--prat-cap must be at most 2^20 instructions";
                return false;
            }
            prat_cap_set = true;
        } else if (arg == "--explore") {
            out.explore = true;
            out.exploreMode = ExploreMode::Prefix;
        } else if (arg.rfind("--explore=", 0) == 0) {
            out.explore = true;
            std::string mode = arg.substr(10);
            if (!parseExploreMode(mode, out.exploreMode)) {
                err = "unknown explore mode: '" + mode +
                      "' (prefix or beam)";
                return false;
            }
        } else if (arg == "--depth") {
            if (!parseCount(arg, next(), out.depth, /*positive=*/true, err))
                return false;
            out.depthSet = true;
        } else if (arg == "--beam-width") {
            if (!parseCount(arg, next(), out.beamWidth, /*positive=*/true,
                            err))
                return false;
            beam_width_set = true;
        } else if (arg == "--generations") {
            if (!parseCount(arg, next(), out.generations,
                            /*positive=*/false, err))
                return false;
            generations_set = true;
        } else if (arg == "--budget") {
            if (!parseNum(arg, next(), out.evalBudget, err))
                return false;
            budget_set = true;
        } else if (arg == "--journal") {
            const char *v = next();
            if (!v) {
                err = "--journal needs a file name";
                return false;
            }
            out.journalPath = v;
        } else if (arg == "--resume") {
            out.resume = true;
        } else if (arg == "--warmup") {
            if (!parseNum(arg, next(), out.warmup, err))
                return false;
        } else if (arg == "--shared-warmup") {
            out.sharedWarmup = true;
        } else if (arg == "--jobs") {
            if (!parseCount(arg, next(), out.jobs, /*positive=*/true, err))
                return false;
        } else if (arg == "--csv") {
            out.csv = true;
        } else if (arg == "--json") {
            out.json = true;
        } else {
            err = "unknown protect option: " + arg;
            return false;
        }
    }

    bool beam = out.explore && out.exploreMode == ExploreMode::Beam;
    if (out.explore && (!out.schemeName.empty() || !out.assignSpec.empty())) {
        err = "--explore sweeps assignments itself; drop --scheme/--assign";
        return false;
    }
    if (!beam && beam_width_set) {
        err = "--beam-width needs --explore=beam";
        return false;
    }
    if (!beam && generations_set) {
        err = "--generations needs --explore=beam";
        return false;
    }
    if (!beam && budget_set) {
        err = "--budget needs --explore=beam";
        return false;
    }
    if (!beam && !out.journalPath.empty()) {
        err = "protect --journal needs --explore=beam";
        return false;
    }
    if (out.resume && out.journalPath.empty()) {
        err = "--resume needs --journal FILE to resume from";
        return false;
    }
    if (out.sharedWarmup && !beam) {
        err = "--shared-warmup shares one warmup across a beam search; "
              "it needs --explore=beam";
        return false;
    }
    if (out.sharedWarmup && out.warmup == 0) {
        err = "--shared-warmup needs --warmup N to share";
        return false;
    }
    if (prat_epoch_set || prat_cap_set) {
        FetchPolicyKind kind;
        if (!parseFetchPolicy(out.policyName, kind) ||
            kind != FetchPolicyKind::PRat) {
            err = "--prat-epoch/--prat-cap tune the PRAT throttle; they "
                  "need --policy PRAT";
            return false;
        }
    }
    return true;
}

} // namespace smtavf
