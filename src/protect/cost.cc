#include "protect/cost.hh"

#include <bit>

namespace smtavf
{

double
areaOverheadFactor(ProtScheme s)
{
    switch (s) {
      case ProtScheme::None: return 0.0;
      case ProtScheme::Parity: return 0.035;
      case ProtScheme::Secded: return 0.125;
      case ProtScheme::SecdedScrub: return 0.13;
      default: return 0.0;
    }
}

double
energyOverheadFactor(ProtScheme s, Cycle scrub_interval)
{
    switch (s) {
      case ProtScheme::None:
        return 0.0;
      case ProtScheme::Parity:
        return 0.02;
      case ProtScheme::Secded:
        return 0.10;
      case ProtScheme::SecdedScrub:
        // Sweep energy amortizes over the interval: scrubbing every 10k
        // cycles adds 1%, every 1k cycles 10%.
        return 0.10 + (scrub_interval > 0
                           ? 100.0 / static_cast<double>(scrub_interval)
                           : 0.0);
      default:
        return 0.0;
    }
}

namespace
{

std::uint64_t
cacheTagBits(const CacheConfig &c)
{
    // Mirror of CacheVulnTracker: 48-bit physical tag minus index/offset
    // bits, plus valid/dirty/LRU state.
    std::uint32_t lines = c.sizeBytes / c.lineBytes;
    std::uint32_t sets = lines / c.ways;
    std::uint32_t offset_bits = std::countr_zero(c.lineBytes);
    std::uint32_t index_bits = std::countr_zero(sets);
    std::uint32_t tag_bits = 48 - offset_bits - index_bits + 4;
    return static_cast<std::uint64_t>(lines) * tag_bits;
}

} // namespace

std::array<std::uint64_t, numHwStructs>
structureBitCapacities(const MachineConfig &cfg)
{
    std::array<std::uint64_t, numHwStructs> bits_of{};
    auto set = [&](HwStruct s, std::uint64_t b) {
        bits_of[static_cast<std::size_t>(s)] = b;
    };

    set(HwStruct::IQ, std::uint64_t{cfg.iqSize} * bits::iqEntry);
    set(HwStruct::RegFile,
        (std::uint64_t{cfg.intPhysRegs} + cfg.fpPhysRegs) * bits::physReg);
    set(HwStruct::FU, std::uint64_t{cfg.fu.total()} * bits::fuLatch);
    set(HwStruct::ROB,
        std::uint64_t{cfg.contexts} * cfg.robSize * bits::robEntry);
    set(HwStruct::LsqData,
        std::uint64_t{cfg.contexts} * cfg.lsqSize * bits::lsqData);
    set(HwStruct::LsqTag,
        std::uint64_t{cfg.contexts} * cfg.lsqSize * bits::lsqTag);
    set(HwStruct::Dl1Data,
        std::uint64_t{cfg.mem.dl1.sizeBytes} * bits::cacheByte);
    set(HwStruct::Dl1Tag, cacheTagBits(cfg.mem.dl1));
    set(HwStruct::Dtlb,
        std::uint64_t{cfg.mem.dtlb.entries} * bits::tlbEntry);
    set(HwStruct::Itlb,
        std::uint64_t{cfg.mem.itlb.entries} * bits::tlbEntry);
    if (cfg.avf.trackL2Avf) {
        set(HwStruct::L2Data,
            std::uint64_t{cfg.mem.l2.sizeBytes} * bits::cacheByte);
        set(HwStruct::L2Tag, cacheTagBits(cfg.mem.l2));
    }
    return bits_of;
}

ProtectionCost
protectionCost(const MachineConfig &cfg)
{
    auto bits_of = structureBitCapacities(cfg);
    ProtectionCost cost;
    double area = 0.0, energy = 0.0;
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        cost.totalBits += bits_of[i];
        auto scheme = cfg.protection.schemeFor(s);
        if (scheme == ProtScheme::None || bits_of[i] == 0)
            continue;
        cost.protectedBits += bits_of[i];
        double weight = static_cast<double>(bits_of[i]);
        area += weight * areaOverheadFactor(scheme);
        energy += weight * energyOverheadFactor(
                               scheme, cfg.protection.scrubIntervalFor(s));
    }
    if (cost.totalBits > 0) {
        cost.areaOverhead = area / static_cast<double>(cost.totalBits);
        cost.energyOverhead = energy / static_cast<double>(cost.totalBits);
    }
    return cost;
}

double
serProxy(const AvfReport &report,
         const std::array<std::uint64_t, numHwStructs> &bits, bool residual)
{
    double weighted = 0.0;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        total += bits[i];
        double avf = residual ? report.residualAvf(s) : report.avf(s);
        weighted += avf * static_cast<double>(bits[i]);
    }
    return total ? weighted / static_cast<double>(total) : 0.0;
}

} // namespace smtavf
