#include "protect/scheme.hh"

#include <cctype>
#include <sstream>

#include "base/env.hh"

namespace smtavf
{

namespace
{

std::string
lower(const std::string &text)
{
    std::string out = text;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::uint64_t
coverageOf(std::uint64_t bit_cycles, std::uint64_t coverage256)
{
    // Floor division keeps covered <= bit_cycles and is monotone in the
    // coverage numerator, which is what the residual ordering proofs in
    // tests/test_protect.cc rely on.
    return (bit_cycles * coverage256) >> 8;
}

} // namespace

const char *
protSchemeName(ProtScheme s)
{
    switch (s) {
      case ProtScheme::None: return "none";
      case ProtScheme::Parity: return "parity";
      case ProtScheme::Secded: return "secded";
      case ProtScheme::SecdedScrub: return "secded+scrub";
      default: return "?";
    }
}

bool
parseProtScheme(const std::string &name, ProtScheme &out)
{
    std::string n = lower(name);
    if (n == "none") {
        out = ProtScheme::None;
    } else if (n == "parity") {
        out = ProtScheme::Parity;
    } else if (n == "secded" || n == "ecc") {
        out = ProtScheme::Secded;
    } else if (n == "secded+scrub" || n == "scrub" || n == "ecc+scrub") {
        out = ProtScheme::SecdedScrub;
    } else {
        return false;
    }
    return true;
}

std::uint64_t
coveredAceBitCycles(ProtScheme scheme, Cycle scrub_interval,
                    std::uint32_t bits, Cycle start, Cycle end)
{
    if (end <= start || bits == 0 || scheme == ProtScheme::None)
        return 0;
    const Cycle length = end - start;
    const std::uint64_t total = static_cast<std::uint64_t>(bits) * length;

    switch (scheme) {
      case ProtScheme::Parity:
        return coverageOf(total, parityCoverage256);
      case ProtScheme::Secded:
        return coverageOf(total, secdedCoverage256);
      case ProtScheme::SecdedScrub: {
        // A flip is exposed only if it lands within scrub_interval cycles
        // of the consuming read at the interval's end; everything earlier
        // is corrected by a sweep first. The exposed tail is then covered
        // at the SECDED rate. With no scrubbing (interval 0) this
        // degenerates to plain SECDED.
        Cycle exposed = (scrub_interval == 0 || length <= scrub_interval)
                            ? length
                            : scrub_interval;
        std::uint64_t scrubbed =
            static_cast<std::uint64_t>(bits) * (length - exposed);
        std::uint64_t tail = static_cast<std::uint64_t>(bits) * exposed;
        return scrubbed + coverageOf(tail, secdedCoverage256);
      }
      default:
        return 0;
    }
}

const char *
hwStructKey(HwStruct s)
{
    switch (s) {
      case HwStruct::IQ: return "iq";
      case HwStruct::RegFile: return "regfile";
      case HwStruct::FU: return "fu";
      case HwStruct::ROB: return "rob";
      case HwStruct::LsqData: return "lsqdata";
      case HwStruct::LsqTag: return "lsqtag";
      case HwStruct::Dl1Data: return "dl1data";
      case HwStruct::Dl1Tag: return "dl1tag";
      case HwStruct::Dtlb: return "dtlb";
      case HwStruct::Itlb: return "itlb";
      case HwStruct::L2Data: return "l2data";
      case HwStruct::L2Tag: return "l2tag";
      default: return "?";
    }
}

bool
parseHwStructKey(const std::string &key, HwStruct &out)
{
    std::string k = lower(key);
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        if (k == hwStructKey(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

bool
ProtectionConfig::any() const
{
    for (auto s : scheme)
        if (s != ProtScheme::None)
            return true;
    return false;
}

bool
ProtectionConfig::anyScrubbed() const
{
    for (auto s : scheme)
        if (s == ProtScheme::SecdedScrub)
            return true;
    return false;
}

std::string
ProtectionConfig::str() const
{
    if (!any())
        return "none";
    std::ostringstream os;
    bool first = true;
    bool global_scrub = false;
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        if (schemeFor(s) == ProtScheme::None)
            continue;
        if (!first)
            os << ',';
        os << hwStructKey(s) << '=' << protSchemeName(schemeFor(s));
        if (schemeFor(s) == ProtScheme::SecdedScrub) {
            if (Cycle o = scrubOverride[i])
                os << '@' << o;
            else
                global_scrub = true;
        }
        first = false;
    }
    if (global_scrub)
        os << ",scrub=" << scrubInterval;
    return os.str();
}

std::string
ProtectionConfig::validateMsg() const
{
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        if (schemeFor(s) != ProtScheme::SecdedScrub)
            continue;
        Cycle interval = scrubIntervalFor(s);
        if (interval == 0)
            return "scrubInterval must be positive when a structure uses "
                   "secded+scrub";
        if (interval > (Cycle{1} << 30))
            return std::string("absurd scrub interval for ") +
                   hwStructKey(s) + ": " + std::to_string(interval) +
                   " cycles (limit 2^30)";
    }
    if (scrubInterval > (Cycle{1} << 30))
        return "absurd scrubInterval: " + std::to_string(scrubInterval) +
               " cycles (limit 2^30)";
    return "";
}

ProtectionConfig
uniformProtection(ProtScheme s, Cycle scrub_interval)
{
    ProtectionConfig p;
    p.scheme.fill(s);
    p.scrubInterval = scrub_interval;
    return p;
}

bool
parseAssignment(const std::string &spec, ProtectionConfig &out,
                std::string &err)
{
    std::istringstream in(spec);
    std::string pair;
    bool saw_any = false;
    while (std::getline(in, pair, ',')) {
        if (pair.empty())
            continue;
        auto eq = pair.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size()) {
            err = "malformed assignment '" + pair +
                  "' (want structure=scheme)";
            return false;
        }
        std::string key = pair.substr(0, eq);
        std::string value = pair.substr(eq + 1);
        HwStruct s;
        if (!parseHwStructKey(key, s)) {
            err = "unknown structure '" + key + "' (try iq, regfile, fu, "
                  "rob, lsqdata, lsqtag, dl1data, dl1tag, dtlb, itlb, "
                  "l2data, l2tag)";
            return false;
        }
        // "scrub@N" / "secded+scrub@N": per-structure scrub interval.
        Cycle interval = 0;
        auto at = value.find('@');
        if (at != std::string::npos) {
            std::uint64_t n = 0;
            if (!strictParseU64(value.substr(at + 1).c_str(), n) || n == 0) {
                err = "bad scrub interval in '" + pair +
                      "' (want scheme@cycles with cycles > 0)";
                return false;
            }
            interval = n;
            value = value.substr(0, at);
        }
        ProtScheme p;
        if (!parseProtScheme(value, p)) {
            err = "unknown scheme '" + value +
                  "' (try none, parity, secded/ecc, secded+scrub)";
            return false;
        }
        if (interval != 0 && p != ProtScheme::SecdedScrub) {
            err = "scrub interval '" + pair +
                  "' only applies to secded+scrub";
            return false;
        }
        out.assign(s, p);
        out.scrubOverride[static_cast<std::size_t>(s)] = interval;
        saw_any = true;
    }
    if (!saw_any) {
        err = "empty assignment list";
        return false;
    }
    return true;
}

} // namespace smtavf
