/**
 * @file
 * Reliability-cost exploration: sweep heterogeneous protection
 * assignments over the parallel campaign runner and report the Pareto
 * frontier of residual soft-error rate vs. area/energy overhead vs. IPC.
 *
 * The explorer first runs the unprotected baseline to obtain the paper's
 * Section-4.1 hotspot ranking (structures ordered by raw AVF), then
 * builds candidate assignments by protecting the top-k hotspots with each
 * scheme — the actionable form of an AVF study: "protect these, in this
 * order, at this cost". Every candidate is an independent Experiment, so
 * the sweep inherits the campaign runner's determinism: points and
 * frontier are bit-identical for any worker count.
 */

#ifndef SMTAVF_PROTECT_EXPLORER_HH
#define SMTAVF_PROTECT_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "protect/cost.hh"
#include "protect/scheme.hh"
#include "sim/campaign.hh"

namespace smtavf
{

/** One evaluated protection assignment. */
struct ProtectionPoint
{
    std::string label;           ///< e.g. "secded:top3" or "none"
    ProtectionConfig protection;
    double rawSer = 0.0;         ///< bit-weighted raw AVF (FIT proxy)
    double residualSer = 0.0;    ///< bit-weighted residual AVF
    double areaOverhead = 0.0;
    double energyOverhead = 0.0;
    double ipc = 0.0;
};

/** Everything one exploration reports. */
struct ExplorationResult
{
    /** Hotspot ranking: figure structures by raw AVF, descending. */
    std::vector<HwStruct> priority;
    /** All candidates in submission order (index 0 = unprotected). */
    std::vector<ProtectionPoint> points;
    /** Indices of non-dominated points, in submission order. */
    std::vector<std::size_t> frontier;

    /** Machine-readable dump (one row per point, frontier flagged). */
    std::string csv() const;

    /** Human-readable frontier table. */
    std::string table() const;
};

/** Sweep of heterogeneous protection assignments for one workload. */
class ProtectionExplorer
{
  public:
    /**
     * @param base   configuration the sweep perturbs (its own protection
     *               assignment is ignored; candidates replace it)
     * @param mix    workload to evaluate under
     * @param budget per-run instruction budget (0 = default)
     * @param max_depth protect at most this many hotspots per candidate
     */
    ProtectionExplorer(MachineConfig base, WorkloadMix mix,
                       std::uint64_t budget = 0, unsigned max_depth = 4);

    /** Run baseline + all candidates over @p pool; deterministic. */
    ExplorationResult explore(CampaignRunner &pool) const;

    /**
     * Candidate assignments for a hotspot ranking: for each scheme and
     * each depth k, protect the top-k structures of @p priority. Exposed
     * for tests and for callers that want the sweep without the runs.
     */
    static std::vector<ProtectionConfig>
    candidates(const std::vector<HwStruct> &priority, Cycle scrub_interval,
               unsigned max_depth);

    /**
     * Indices of the non-dominated points: no other point is at least as
     * good on residual SER, area, energy and IPC and strictly better on
     * one of them.
     */
    static std::vector<std::size_t>
    paretoFrontier(const std::vector<ProtectionPoint> &points);

  private:
    MachineConfig base_;
    WorkloadMix mix_;
    std::uint64_t budget_;
    unsigned maxDepth_;
};

} // namespace smtavf

#endif // SMTAVF_PROTECT_EXPLORER_HH
