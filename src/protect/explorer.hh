/**
 * @file
 * Reliability-cost exploration: search heterogeneous protection
 * assignments over the parallel campaign runner and report the Pareto
 * frontier of residual soft-error rate vs. area/energy overhead vs. IPC.
 *
 * Two search modes share one evaluation pipeline:
 *
 *  - **Prefix sweep** (legacy, `--depth`): every scheme applied to the
 *    top-k hotspots of the paper's Section-4.1 raw-AVF ranking,
 *    k = 1..depth. Cheap, but structurally unable to discover mixed
 *    assignments like "SECDED on the IQ, parity on the ROB".
 *
 *  - **Beam search** (`--explore=beam`): a deterministic beam over
 *    per-structure scheme vectors. The beam is seeded from the hotspot
 *    ranking (the prefix candidates), then each generation expands every
 *    beam member by single-structure upgrades/downgrades — including a
 *    small per-structure scrub-interval ladder — prunes provably
 *    dominated candidates with the cost model *before* simulating, and
 *    evaluates the survivors as one campaign batch.
 *
 * Determinism argument (tests/test_explorer_properties.cc): every
 * candidate is an independent Experiment keyed by its journal fingerprint
 * (sim/journal.hh); expansion output is deduplicated by fingerprint and
 * canonically ordered by assignment string before evaluation, so the
 * search trajectory is a pure function of (config, mix, options) — never
 * of worker count, evaluation order, or how much of a previous run's
 * journal survives. The memoized candidate cache means a restarted or
 * resumed search replays journaled results instead of re-simulating a
 * seen assignment, and the evaluation *budget* counts submissions (journal
 * hits included) so a resume explores exactly the original trajectory.
 *
 * Pruning is safe by construction: a candidate is discarded only when an
 * already-evaluated point weakly dominates its *optimistic* point — exact
 * area/energy from the cost model plus a residual-SER lower bound from
 * the baseline's raw AVF and each scheme's coverage ceiling. Since the
 * true residual can only be higher, a pruned candidate can never have
 * been on the frontier (property (d) in the test suite).
 */

#ifndef SMTAVF_PROTECT_EXPLORER_HH
#define SMTAVF_PROTECT_EXPLORER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "protect/cost.hh"
#include "protect/scheme.hh"
#include "sim/campaign.hh"

namespace smtavf
{

/** Which candidate generator produced an ExplorationResult. */
enum class ExploreMode : std::uint8_t { Prefix, Beam };

/** Canonical lower-case mode name ("prefix", "beam"). */
const char *exploreModeName(ExploreMode m);

/** Parse an explore mode name; accepts "prefix" and "beam". */
bool parseExploreMode(const std::string &name, ExploreMode &out);

/** One evaluated protection assignment. */
struct ProtectionPoint
{
    std::string label;           ///< prefix: "secded:top3"; beam: assignment
    ProtectionConfig protection;
    double rawSer = 0.0;         ///< bit-weighted raw AVF (FIT proxy)
    double residualSer = 0.0;    ///< bit-weighted residual AVF
    double areaOverhead = 0.0;
    double energyOverhead = 0.0;
    double ipc = 0.0;
    unsigned generation = 0;     ///< beam generation that evaluated it
    bool fromJournal = false;    ///< satisfied from the resume journal
};

/** One decision the beam search made about a generated candidate. */
struct BeamTraceEvent
{
    enum class Action : std::uint8_t
    {
        Evaluated,    ///< simulated (or replayed from the journal)
        Pruned,       ///< cost-model dominance proof, never simulated
        BudgetSkipped ///< evaluation budget exhausted, never simulated
    };
    unsigned generation = 0;
    std::string assignment; ///< canonical ProtectionConfig::str()
    Action action = Action::Evaluated;
};

/** Short lower-case action name ("evaluated", "pruned", "budget"). */
const char *beamActionName(BeamTraceEvent::Action a);

/**
 * The L2 pricing caveat (ROADMAP): `avf.trackL2Avf` measures L2 AVF at
 * per-line granularity only, while the cost model prices L2 protection
 * from the full configured capacity — so L2 overheads are unvalidated
 * upper bounds. Emitted once per exploration, exactly when L2 tracking
 * is on and a candidate assigns protection to L2Data or L2Tag.
 */
extern const char *const l2PricingWarning;

/** Everything one exploration reports. */
struct ExplorationResult
{
    ExploreMode mode = ExploreMode::Prefix;
    std::string mixName;
    std::string policyName;

    /** Hotspot ranking: figure structures by raw AVF, descending. */
    std::vector<HwStruct> priority;
    /** All evaluated points in submission order (index 0 = unprotected). */
    std::vector<ProtectionPoint> points;
    /** Indices of non-dominated points, in submission order. */
    std::vector<std::size_t> frontier;

    /** One-time caveats (e.g. the L2 capacity-pricing tripwire). */
    std::vector<std::string> warnings;
    /** Beam search decision log, in decision order (empty for prefix). */
    std::vector<BeamTraceEvent> trace;

    std::uint64_t evaluations = 0;  ///< candidates submitted (journal incl.)
    std::uint64_t journalHits = 0;  ///< of those, replayed without simulating
    std::uint64_t prunedCount = 0;  ///< discarded by the cost-model proof

    /**
     * Machine-readable dump: `# key=value` metadata and `# warning:`
     * lines, then one row per point (frontier flagged). Comment lines
     * keep the data rows parseable by any CSV reader that skips '#'.
     */
    std::string csv() const;

    /** Full result as JSON (points, frontier, warnings, beam trace). */
    std::string json() const;

    /** Human-readable frontier table. */
    std::string table() const;
};

/** Knobs of a beam-search exploration (defaults are sensible). */
struct BeamOptions
{
    /** Candidates kept for expansion each generation. */
    unsigned beamWidth = 8;
    /** Expansion rounds after the seeded generation 0. */
    unsigned generations = 3;
    /**
     * Max candidate evaluations, baseline excluded; journal replays count
     * so a resumed search walks the original trajectory. 0 = unlimited.
     */
    std::uint64_t evalBudget = 0;
    /** Search only the top-N hotspots of the ranking. */
    unsigned maxStructures = 6;
    /**
     * Per-structure scrub-interval ladder for SecdedScrub candidates;
     * empty = defaultScrubLadder() of the base config's interval.
     */
    std::vector<Cycle> scrubLadder;
    /** Persist evaluated runs + search trace here ("" = no journal). */
    std::string journalPath;
    /** Replay journaled candidates instead of re-simulating them. */
    bool resume = false;
    /**
     * Warm up every evaluation (baseline included) by this many
     * instructions before measuring; see Experiment::warmup. 0 = off.
     */
    std::uint64_t warmup = 0;
    /**
     * Simulate the warmup once, capture it as a checkpoint, and restore
     * it for the baseline and every candidate instead of re-warming per
     * run — valid because a warmup checkpoint's fingerprint excludes the
     * protection assignment (it is an accounting overlay that never
     * perturbs timing). The frontier is bit-identical to the unshared
     * path; only the simulated-instruction count drops (asserted by
     * bench_ckpt_warmup). Ignored when warmup == 0 or runFn is set.
     */
    bool sharedWarmup = false;
    /** Test seam: replaces runExperiment() (see CampaignOptions::runFn). */
    std::function<SimResult(const Experiment &, std::size_t)> runFn;
};

/** Search of heterogeneous protection assignments for one workload. */
class ProtectionExplorer
{
  public:
    /**
     * @param base   configuration the search perturbs (its own protection
     *               assignment is ignored; candidates replace it)
     * @param mix    workload to evaluate under
     * @param budget per-run instruction budget (0 = default)
     * @param max_depth prefix mode: protect at most this many hotspots
     */
    ProtectionExplorer(MachineConfig base, WorkloadMix mix,
                       std::uint64_t budget = 0, unsigned max_depth = 4);

    /**
     * Legacy prefix sweep over @p pool; deterministic. A nonzero
     * @p warmup warms every run up independently (no checkpoint
     * sharing — that is a beam-search feature, BeamOptions::sharedWarmup).
     */
    ExplorationResult explore(CampaignRunner &pool,
                              std::uint64_t warmup = 0) const;

    /** Beam search over per-structure scheme vectors; deterministic. */
    ExplorationResult exploreBeam(CampaignRunner &pool,
                                  const BeamOptions &opt = {}) const;

    /**
     * Candidate assignments for a hotspot ranking: for each scheme and
     * each depth k, protect the top-k structures of @p priority. Exposed
     * for tests and for callers that want the sweep without the runs.
     */
    static std::vector<ProtectionConfig>
    candidates(const std::vector<HwStruct> &priority, Cycle scrub_interval,
               unsigned max_depth);

    /**
     * Every assignment of {none, parity, secded, secded+scrub@ladder...}
     * to @p structs — the exhaustive space the property tests compare
     * beam search against. Size (3 + |ladder|)^|structs|; fatal when that
     * exceeds 1M candidates.
     */
    static std::vector<ProtectionConfig>
    allAssignments(const std::vector<HwStruct> &structs,
                   const std::vector<Cycle> &ladder);

    /**
     * Single-structure neighbours of @p base: every upgrade/downgrade of
     * one structure in @p structs to another scheme (scrub variants per
     * ladder rung). Excludes @p base itself.
     */
    static std::vector<ProtectionConfig>
    neighbors(const ProtectionConfig &base,
              const std::vector<HwStruct> &structs,
              const std::vector<Cycle> &ladder);

    /** {interval/10, interval, interval*10} clamped to [16, 2^30]. */
    static std::vector<Cycle> defaultScrubLadder(Cycle interval);

    /**
     * Provable lower bound on a candidate's residual SER, from the
     * baseline report's raw AVF and each scheme's coverage ceiling
     * (parity can cover at most 224/256 of exposure, SECDED 255/256,
     * scrubbing everything). The true residual of the candidate is never
     * below this, which is what makes cost-model pruning safe — given
     * the premise that raw AVF is candidate-invariant. PRAT breaks that
     * premise (its throttle reads the assignment), so exploreBeam
     * disables pruning entirely under PRAT.
     */
    static double
    optimisticResidualSer(const AvfReport &baseline,
                          const std::array<std::uint64_t, numHwStructs> &bits,
                          const ProtectionConfig &p);

    /**
     * Indices of the non-dominated points: no other point is at least as
     * good on residual SER, area, energy and IPC and strictly better on
     * one of them.
     */
    static std::vector<std::size_t>
    paretoFrontier(const std::vector<ProtectionPoint> &points);

    /** Weak Pareto dominance of a over b (exposed for the test harness). */
    static bool dominates(const ProtectionPoint &a, const ProtectionPoint &b);

  private:
    MachineConfig base_;
    WorkloadMix mix_;
    std::uint64_t budget_;
    unsigned maxDepth_;
};

} // namespace smtavf

#endif // SMTAVF_PROTECT_EXPLORER_HH
