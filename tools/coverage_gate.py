#!/usr/bin/env python3
"""Line-coverage gate on gcov's JSON output, no gcovr required.

Usage: coverage_gate.py BUILD_DIR SOURCE_PREFIX MIN_PERCENT \
                        [SOURCE_PREFIX MIN_PERCENT ...]

Walks BUILD_DIR for .gcda files left behind by a --coverage test run
(CMake option SMTAVF_COVERAGE, driven by `tools/check.sh coverage`),
asks gcov for JSON intermediate output, and aggregates executable-line
coverage over every source file whose repo-relative path starts with a
SOURCE_PREFIX. A line is covered when any translation unit executed it,
so headers shared across TUs are priced once, at their best count.

Each (SOURCE_PREFIX, MIN_PERCENT) pair gates independently; the .gcda
walk runs once for all of them. Exits 1 with a per-file table when any
prefix's aggregate coverage is below its MIN_PERCENT, 2 on
usage/tooling errors.
"""

import gzip
import json
import os
import subprocess
import sys
import tempfile


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def gcov_json(gcda, scratch):
    """Run gcov on one .gcda and yield the parsed per-TU JSON blobs."""
    subprocess.run(
        ["gcov", "--json-format", "--branch-probabilities", gcda],
        cwd=scratch,
        check=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    for name in os.listdir(scratch):
        if not name.endswith(".gcov.json.gz"):
            continue
        path = os.path.join(scratch, name)
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            yield json.load(fh)
        os.remove(path)


def gate(prefix, min_percent, line_hits):
    """Apply one (prefix, floor) pair; return True when it holds."""
    per_file = {}
    for (rel, _line), count in line_hits.items():
        if not rel.startswith(prefix):
            continue
        covered, total = per_file.get(rel, (0, 0))
        per_file[rel] = (covered + (1 if count > 0 else 0), total + 1)
    if not per_file:
        print(f"coverage_gate: no executable lines under {prefix}",
              file=sys.stderr)
        return False

    covered = sum(c for c, _t in per_file.values())
    total = sum(t for _c, t in per_file.values())
    percent = 100.0 * covered / total

    width = max(len(rel) for rel in per_file)
    for rel in sorted(per_file):
        c, t = per_file[rel]
        print(f"  {rel:<{width}}  {100.0 * c / t:6.2f}%  ({c}/{t})")
    print(f"{prefix} line coverage: {percent:.2f}% "
          f"({covered}/{total}), gate {min_percent:.2f}%")

    if percent < min_percent:
        print(f"coverage_gate: {percent:.2f}% < {min_percent:.2f}% — "
              "new code under "
              f"{prefix} needs tests (or an agreed gate change)",
              file=sys.stderr)
        return False
    return True


def main(argv):
    if len(argv) < 4 or len(argv) % 2 != 0:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    build_dir = argv[1]
    try:
        gates = [(argv[i], float(argv[i + 1]))
                 for i in range(2, len(argv), 2)]
    except ValueError:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    repo = os.path.dirname(os.path.dirname(os.path.abspath(argv[0])))
    prefixes = tuple(p for p, _m in gates)

    # line_hits[(file, line)] = max execution count over all TUs.
    line_hits = {}
    gcda_count = 0
    with tempfile.TemporaryDirectory() as scratch:
        for gcda in find_gcda(build_dir):
            gcda_count += 1
            for blob in gcov_json(gcda, scratch):
                for f in blob.get("files", []):
                    path = f["file"]
                    if not os.path.isabs(path):
                        path = os.path.join(build_dir, path)
                    rel = os.path.relpath(os.path.realpath(path), repo)
                    if not rel.startswith(prefixes):
                        continue
                    for line in f.get("lines", []):
                        key = (rel, line["line_number"])
                        count = line["count"]
                        line_hits[key] = max(
                            line_hits.get(key, 0), count)
    if gcda_count == 0:
        print(f"coverage_gate: no .gcda under {build_dir} — "
              "was the build configured with -DSMTAVF_COVERAGE=ON "
              "and the tests run?", file=sys.stderr)
        return 2

    ok = True
    for prefix, min_percent in gates:
        ok = gate(prefix, min_percent, line_hits) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
