#!/bin/sh
# Build and test every supported configuration: plain release, ASan, and
# the tsan-labelled concurrency tests under ThreadSanitizer. This is the
# pre-merge gate; CMakePresets.json defines the same three configurations
# for interactive use (cmake --preset release, etc.).
#
# Usage: tools/check.sh [release|asan|tsan ...]   (default: all three)

set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=${SMTAVF_CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}
presets=${*:-"release asan tsan"}

for preset in $presets; do
    build="$repo/build-$preset"
    echo "==> [$preset] configure"
    case $preset in
      release) cmake -S "$repo" -B "$build" \
                     -DCMAKE_BUILD_TYPE=RelWithDebInfo ;;
      asan)    cmake -S "$repo" -B "$build" \
                     -DCMAKE_BUILD_TYPE=RelWithDebInfo \
                     -DSMTAVF_SANITIZE=address ;;
      tsan)    cmake -S "$repo" -B "$build" \
                     -DCMAKE_BUILD_TYPE=RelWithDebInfo \
                     -DSMTAVF_SANITIZE=thread ;;
      *) echo "unknown preset: $preset (want release, asan or tsan)" >&2
         exit 2 ;;
    esac

    echo "==> [$preset] build"
    cmake --build "$build" -j "$jobs"

    echo "==> [$preset] test"
    if [ "$preset" = tsan ]; then
        # Only the concurrency surface needs the (slow) TSan pass.
        (cd "$build" && ctest -L tsan --output-on-failure -j "$jobs")
    else
        (cd "$build" && ctest --output-on-failure -j "$jobs")
    fi

    if [ "$preset" = release ]; then
        # Smoke-run the throughput benchmark so a perf-harness regression
        # (link error, crashed fixture) is caught pre-merge. Full timed
        # runs live in tools/bench.sh / the nightly CI job.
        echo "==> [$preset] bench smoke"
        "$build/bench/bench_micro_sim" --benchmark_min_time=0.05 \
            --benchmark_filter='BM_SimulatedInstructions' >/dev/null
    fi
done

echo "==> all checks passed"
