#!/bin/sh
# Build and test every supported configuration: plain release, ASan, the
# tsan-labelled concurrency tests under ThreadSanitizer, a gcov
# line-coverage gate on the protection subsystem, and the chaos leg
# (process-isolation crash taxonomy plus a scripted supervisor-kill /
# --resume recovery smoke). This is the pre-merge gate; CMakePresets.json
# defines the same configurations for interactive use
# (cmake --preset release, etc.).
#
# Usage: tools/check.sh [release|asan|tsan|coverage|chaos|ckpt ...]
#        (default: all six)

set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=${SMTAVF_CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}
presets=${*:-"release asan tsan coverage chaos ckpt"}

# The protection subsystem (search, pruning proof, cost model, CLI
# parsing) carries correctness arguments that only hold if its branches
# stay exercised; the gate fails the build when src/protect/ line
# coverage drops below this floor (measured 95.6% at gate introduction).
coverage_gate=94
# The fetch-policy layer gets its own (slightly lower) floor: the PRAT
# differential/property suite plus the policy unit tests must keep the
# throttling arithmetic exercised end to end.
policy_coverage_gate=90

for preset in $presets; do
    build="$repo/build-$preset"
    echo "==> [$preset] configure"
    case $preset in
      release) cmake -S "$repo" -B "$build" \
                     -DCMAKE_BUILD_TYPE=RelWithDebInfo ;;
      asan)    cmake -S "$repo" -B "$build" \
                     -DCMAKE_BUILD_TYPE=RelWithDebInfo \
                     -DSMTAVF_SANITIZE=address ;;
      tsan)    cmake -S "$repo" -B "$build" \
                     -DCMAKE_BUILD_TYPE=RelWithDebInfo \
                     -DSMTAVF_SANITIZE=thread ;;
      coverage) cmake -S "$repo" -B "$build" \
                      -DCMAKE_BUILD_TYPE=Debug \
                      -DSMTAVF_COVERAGE=ON ;;
      chaos)   cmake -S "$repo" -B "$build" \
                     -DCMAKE_BUILD_TYPE=RelWithDebInfo ;;
      ckpt)    cmake -S "$repo" -B "$build" \
                     -DCMAKE_BUILD_TYPE=RelWithDebInfo ;;
      *) echo "unknown preset: $preset (want release, asan, tsan," \
              "coverage, chaos or ckpt)" >&2
         exit 2 ;;
    esac

    echo "==> [$preset] build"
    cmake --build "$build" -j "$jobs"

    echo "==> [$preset] test"
    if [ "$preset" = tsan ]; then
        # Only the concurrency surface needs the (slow) TSan pass.
        (cd "$build" && ctest -L tsan --output-on-failure -j "$jobs")
    elif [ "$preset" = chaos ]; then
        # The fork/signal/rlimit surface: directed child-death
        # classification, crash-safe journal fsck, and the differential
        # thread-vs-process suites (tests/test_isolate.cc). The ASan leg
        # re-runs these under instrumentation via the full suite.
        (cd "$build" && ctest -L chaos --output-on-failure -j "$jobs")

        # Supervisor-crash recovery smoke: kill -9 the campaign
        # supervisor mid-flight, then prove `--resume` completes the
        # campaign and that the recovered journal carries exactly the
        # bytes of an uninterrupted run. Journals are canonicalized
        # (fingerprint-sorted, deduplicated) through merge-journals so
        # record completion order cannot mask or fake a difference.
        echo "==> [$preset] supervisor kill -9 / --resume smoke"
        cli="$build/tools/smtavf_cli"
        tmp=$(mktemp -d)
        trap 'rm -rf "$tmp"' EXIT
        args="--contexts 2 --instructions 400000 --isolate process \
              --jobs 2 --master-seed 99"
        # shellcheck disable=SC2086  # word splitting is the point
        "$cli" campaign $args --journal "$tmp/ref.journal" >/dev/null
        # shellcheck disable=SC2086
        "$cli" campaign $args --journal "$tmp/crash.journal" \
            >/dev/null 2>&1 &
        victim=$!
        sleep 0.4
        kill -9 "$victim" 2>/dev/null || true
        wait "$victim" 2>/dev/null || true
        # (If the kill won the race with the journal open, resume from
        # an empty journal -- the recovery path must handle that too.)
        [ -f "$tmp/crash.journal" ] || : > "$tmp/crash.journal"
        # Appends are atomic single write()s, so even a SIGKILL'd
        # supervisor must leave a journal fsck calls clean.
        "$cli" journal fsck "$tmp/crash.journal" >/dev/null
        # shellcheck disable=SC2086
        "$cli" campaign $args --journal "$tmp/crash.journal" --resume \
            >/dev/null
        "$cli" merge-journals --out "$tmp/ref.canon" \
            "$tmp/ref.journal" >/dev/null
        "$cli" merge-journals --out "$tmp/crash.canon" \
            "$tmp/crash.journal" >/dev/null
        cmp "$tmp/ref.canon" "$tmp/crash.canon"
        rm -rf "$tmp"
        trap - EXIT
    elif [ "$preset" = ckpt ]; then
        # Checkpoint/restore surface: the serializer/envelope/differential
        # unit suites, then an end-to-end smoke against the installed
        # binary — capture mid-run, SIGKILL a second in-flight copy after
        # its capture lands, restore from the orphaned file, and require
        # the restored run's report to carry exactly the bytes of the run
        # that checkpointed and continued (docs/CHECKPOINT.md: restore is
        # bit-identical to the *checkpointing* run, which drains at the
        # boundary, not to an uninterrupted run). Damage rejection must
        # exit with the dedicated checkpoint code 4.
        (cd "$build" && ctest --output-on-failure -j "$jobs" -R \
            'Serializer|CheckpointEnvelope|CheckpointRestore|CkptDifferential|ReportRestore|AvfIntervalSeries|SharedWarmupCampaign')

        echo "==> [$preset] checkpoint kill/restore smoke"
        cli="$build/tools/smtavf_cli"
        tmp=$(mktemp -d)
        trap 'rm -rf "$tmp"' EXIT
        args="--mix 2ctx-mix-A --instructions 300000 --seed 5"
        # Reference: capture at 150k, keep going to 300k.
        # shellcheck disable=SC2086  # word splitting is the point
        "$cli" run $args --checkpoint-at 150000 \
            --checkpoint-out "$tmp/ref.ckpt" --csv > "$tmp/ref.txt"
        # Victim: same run, killed once its checkpoint hits the disk.
        # shellcheck disable=SC2086
        "$cli" run $args --checkpoint-at 150000 \
            --checkpoint-out "$tmp/victim.ckpt" --csv \
            > "$tmp/victim.txt" 2>/dev/null &
        victim=$!
        # Wait for the capture to land fully: a nonzero size that is
        # stable across two polls (killing mid-write would make the
        # restore below reject a torn file and fail the leg).
        prev=-1
        while kill -0 "$victim" 2>/dev/null; do
            size=$(wc -c 2>/dev/null < "$tmp/victim.ckpt" || echo 0)
            [ "$size" -gt 0 ] && [ "$size" = "$prev" ] && break
            prev=$size
            sleep 0.05
        done
        kill -9 "$victim" 2>/dev/null || true
        wait "$victim" 2>/dev/null || true
        [ -s "$tmp/victim.ckpt" ] # the capture must have survived
        # Restore from the orphan and finish the victim's run; the
        # report must be byte-identical to the reference run's.
        # shellcheck disable=SC2086
        "$cli" run $args --restore "$tmp/victim.ckpt" --csv \
            > "$tmp/restored.txt"
        cmp "$tmp/ref.txt" "$tmp/restored.txt"

        # Damage rejection: exit code 4, distinct from sim failure (1)
        # and usage (2).
        cp "$tmp/ref.ckpt" "$tmp/flip.ckpt"
        printf 'X' | dd of="$tmp/flip.ckpt" bs=1 seek=200 conv=notrunc \
            2>/dev/null
        head -c 100 "$tmp/ref.ckpt" > "$tmp/trunc.ckpt"
        for case in "--restore $tmp/flip.ckpt" \
                    "--restore $tmp/trunc.ckpt" \
                    "--restore $tmp/ref.ckpt --seed 6"; do
            set +e
            # shellcheck disable=SC2086
            "$cli" run --mix 2ctx-mix-A --instructions 300000 --seed 5 \
                $case >/dev/null 2>&1
            st=$?
            set -e
            if [ "$st" -ne 4 ]; then
                echo "run $case: expected exit 4, got $st" >&2
                exit 1
            fi
        done
        rm -rf "$tmp"
        trap - EXIT
    elif [ "$preset" = coverage ]; then
        # An unoptimized instrumented full suite would be slow for no
        # extra signal: the gates price src/protect/ and src/policy/
        # only, so run the tests that exercise those surfaces.
        (cd "$build" && ctest --output-on-failure -j "$jobs" -R \
            'ProtScheme|ProtectionConfig|ProtectedRun|CostModel|Coverage|Explorer|BeamProperties|ProtectCliFuzz|CampaignCsv|PolicyProperties|PolicyTest|FactoryTest')
        echo "==> [$preset] gate"
        python3 "$repo/tools/coverage_gate.py" "$build" \
            src/protect/ "$coverage_gate" \
            src/policy/ "$policy_coverage_gate"
    else
        (cd "$build" && ctest --output-on-failure -j "$jobs")
    fi

    if [ "$preset" = release ]; then
        # Smoke-run the throughput benchmark so a perf-harness regression
        # (link error, crashed fixture) is caught pre-merge. Full timed
        # runs live in tools/bench.sh / the nightly CI job.
        echo "==> [$preset] bench smoke"
        "$build/bench/bench_micro_sim" --benchmark_min_time=0.05 \
            --benchmark_filter='BM_SimulatedInstructions' >/dev/null

        # End-to-end flag validation: malformed protect invocations must
        # exit 2 (usage error) without starting a campaign. The unit-level
        # equivalent is tests/test_explorer_fuzz.cc; this leg pins the
        # parser-to-exit-code wiring in the installed binary.
        echo "==> [$preset] cli flag smoke"
        for bad in '--explore=bogus' '--beam-width 4' '--resume' \
                   '--explore=beam --beam-width 0' '--scrub-interval 0' \
                   '--explore --scheme parity' \
                   '--policy PRAT --prat-epoch 0' \
                   '--prat-cap 12'; do
            set +e
            # shellcheck disable=SC2086  # word splitting is the point
            "$build/tools/smtavf_cli" protect $bad >/dev/null 2>&1
            st=$?
            set -e
            if [ "$st" -ne 2 ]; then
                echo "protect $bad: expected exit 2, got $st" >&2
                exit 1
            fi
        done

        # Batched-child smoke: a --runs-per-child campaign must complete
        # and journal the same canonical records as a one-child-per-run
        # campaign (the byte-level differential lives in
        # tests/test_reuse.cc; this pins the CLI wiring), and the flag
        # must be rejected outside process isolation.
        echo "==> [$preset] --runs-per-child smoke"
        cli="$build/tools/smtavf_cli"
        tmp=$(mktemp -d)
        trap 'rm -rf "$tmp"' EXIT
        args="--contexts 2 --instructions 200000 --isolate process \
              --jobs 2 --master-seed 7"
        # shellcheck disable=SC2086  # word splitting is the point
        "$cli" campaign $args --journal "$tmp/single.journal" >/dev/null
        # shellcheck disable=SC2086
        "$cli" campaign $args --runs-per-child 4 \
            --journal "$tmp/batched.journal" >/dev/null
        "$cli" merge-journals --out "$tmp/single.canon" \
            "$tmp/single.journal" >/dev/null
        "$cli" merge-journals --out "$tmp/batched.canon" \
            "$tmp/batched.journal" >/dev/null
        cmp "$tmp/single.canon" "$tmp/batched.canon"
        set +e
        "$cli" campaign --contexts 2 --instructions 200000 \
            --runs-per-child 4 >/dev/null 2>&1
        st=$?
        set -e
        if [ "$st" -ne 2 ]; then
            echo "--runs-per-child without --isolate process:" \
                 "expected exit 2, got $st" >&2
            exit 1
        fi
        rm -rf "$tmp"
        trap - EXIT
    fi
done

echo "==> all checks passed"
