#!/bin/sh
# Build and test every supported configuration: plain release, ASan, the
# tsan-labelled concurrency tests under ThreadSanitizer, and a gcov
# line-coverage gate on the protection subsystem. This is the pre-merge
# gate; CMakePresets.json defines the same configurations for interactive
# use (cmake --preset release, etc.).
#
# Usage: tools/check.sh [release|asan|tsan|coverage ...]
#        (default: all four)

set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=${SMTAVF_CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}
presets=${*:-"release asan tsan coverage"}

# The protection subsystem (search, pruning proof, cost model, CLI
# parsing) carries correctness arguments that only hold if its branches
# stay exercised; the gate fails the build when src/protect/ line
# coverage drops below this floor (measured 95.6% at gate introduction).
coverage_gate=94

for preset in $presets; do
    build="$repo/build-$preset"
    echo "==> [$preset] configure"
    case $preset in
      release) cmake -S "$repo" -B "$build" \
                     -DCMAKE_BUILD_TYPE=RelWithDebInfo ;;
      asan)    cmake -S "$repo" -B "$build" \
                     -DCMAKE_BUILD_TYPE=RelWithDebInfo \
                     -DSMTAVF_SANITIZE=address ;;
      tsan)    cmake -S "$repo" -B "$build" \
                     -DCMAKE_BUILD_TYPE=RelWithDebInfo \
                     -DSMTAVF_SANITIZE=thread ;;
      coverage) cmake -S "$repo" -B "$build" \
                      -DCMAKE_BUILD_TYPE=Debug \
                      -DSMTAVF_COVERAGE=ON ;;
      *) echo "unknown preset: $preset (want release, asan, tsan or" \
              "coverage)" >&2
         exit 2 ;;
    esac

    echo "==> [$preset] build"
    cmake --build "$build" -j "$jobs"

    echo "==> [$preset] test"
    if [ "$preset" = tsan ]; then
        # Only the concurrency surface needs the (slow) TSan pass.
        (cd "$build" && ctest -L tsan --output-on-failure -j "$jobs")
    elif [ "$preset" = coverage ]; then
        # An unoptimized instrumented full suite would be slow for no
        # extra signal: the gate prices src/protect/ only, so run the
        # tests that exercise that surface.
        (cd "$build" && ctest --output-on-failure -j "$jobs" -R \
            'ProtScheme|ProtectionConfig|ProtectedRun|CostModel|Coverage|Explorer|BeamProperties|ProtectCliFuzz|CampaignCsv')
        echo "==> [$preset] gate"
        python3 "$repo/tools/coverage_gate.py" "$build" src/protect/ \
            "$coverage_gate"
    else
        (cd "$build" && ctest --output-on-failure -j "$jobs")
    fi

    if [ "$preset" = release ]; then
        # Smoke-run the throughput benchmark so a perf-harness regression
        # (link error, crashed fixture) is caught pre-merge. Full timed
        # runs live in tools/bench.sh / the nightly CI job.
        echo "==> [$preset] bench smoke"
        "$build/bench/bench_micro_sim" --benchmark_min_time=0.05 \
            --benchmark_filter='BM_SimulatedInstructions' >/dev/null

        # End-to-end flag validation: malformed protect invocations must
        # exit 2 (usage error) without starting a campaign. The unit-level
        # equivalent is tests/test_explorer_fuzz.cc; this leg pins the
        # parser-to-exit-code wiring in the installed binary.
        echo "==> [$preset] cli flag smoke"
        for bad in '--explore=bogus' '--beam-width 4' '--resume' \
                   '--explore=beam --beam-width 0' '--scrub-interval 0' \
                   '--explore --scheme parity'; do
            set +e
            # shellcheck disable=SC2086  # word splitting is the point
            "$build/tools/smtavf_cli" protect $bad >/dev/null 2>&1
            st=$?
            set -e
            if [ "$st" -ne 2 ]; then
                echo "protect $bad: expected exit 2, got $st" >&2
                exit 1
            fi
        done
    fi
done

echo "==> all checks passed"
