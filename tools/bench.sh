#!/bin/sh
# Run the end-to-end microbenchmark suite (bench_micro_sim plus the
# shared-warmup gate bench_ckpt_warmup and the worker-reuse gate
# bench_campaign_setup) and write the merged
# machine-readable results to BENCH_micro.json at the repo root. This is
# the number the performance work is held to: simulated instructions per
# second at 1/2/4/8 contexts (see docs/PERFORMANCE.md for how to read it),
# and the explorer's simulated-instruction saving from warmup sharing.
# bench_ckpt_warmup exits nonzero — failing the whole script — if the
# shared-warmup frontier is not bit-identical to the per-run-warmup one.
#
# Usage: tools/bench.sh [build-dir]      (default: <repo>/build-release,
#                                         falling back to <repo>/build)
#
# Environment:
#   SMTAVF_BENCH_MIN_TIME     seconds per measurement   (default 4)
#   SMTAVF_BENCH_REPETITIONS  repetitions per benchmark (default 3)

set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=${SMTAVF_CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}
min_time=${SMTAVF_BENCH_MIN_TIME:-4}
reps=${SMTAVF_BENCH_REPETITIONS:-3}

if [ $# -ge 1 ]; then
    build=$1
elif [ -x "$repo/build-release/bench/bench_micro_sim" ]; then
    build=$repo/build-release
else
    build=$repo/build
fi

if [ ! -x "$build/bench/bench_micro_sim" ] ||
   [ ! -x "$build/bench/bench_ckpt_warmup" ] ||
   [ ! -x "$build/bench/bench_campaign_setup" ]; then
    echo "==> benchmarks not built; configuring $build (Release)"
    cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$build" -j "$jobs" --target bench_micro_sim \
          bench_ckpt_warmup bench_campaign_setup
fi

echo "==> running bench_micro_sim (min_time=${min_time}s x${reps})"
"$build/bench/bench_micro_sim" \
    --benchmark_min_time="$min_time" \
    --benchmark_repetitions="$reps" \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json \
    --benchmark_out="$repo/BENCH_micro.json.micro" \
    --benchmark_out_format=json

# The explorer runs are seconds each; one repetition is already stable
# on simulated-instruction counts (exact) and indicative on wall-clock.
echo "==> running bench_ckpt_warmup (shared-warmup gate + timings)"
"$build/bench/bench_ckpt_warmup" \
    --benchmark_format=json \
    --benchmark_out="$repo/BENCH_micro.json.ckpt" \
    --benchmark_out_format=json

# Campaign setup throughput: runs/s for a 1000-short-run campaign,
# fresh vs reused workers in both isolation modes. The binary gates on
# byte-identical journals before it times anything.
echo "==> running bench_campaign_setup (worker-reuse gate + runs/s)"
"$build/bench/bench_campaign_setup" \
    --benchmark_format=json \
    --benchmark_out="$repo/BENCH_micro.json.setup" \
    --benchmark_out_format=json

# Merge the reports: keep bench_micro_sim's context block, append the
# other binaries' benchmark rows.
python3 - "$repo/BENCH_micro.json.micro" "$repo/BENCH_micro.json.ckpt" \
        "$repo/BENCH_micro.json.setup" "$repo/BENCH_micro.json" <<'EOF'
import json, sys
micro = json.load(open(sys.argv[1]))
for extra in sys.argv[2:-1]:
    micro["benchmarks"].extend(json.load(open(extra))["benchmarks"])
json.dump(micro, open(sys.argv[-1], "w"), indent=2)
EOF
rm -f "$repo/BENCH_micro.json.micro" "$repo/BENCH_micro.json.ckpt" \
      "$repo/BENCH_micro.json.setup"

echo "==> wrote $repo/BENCH_micro.json"
