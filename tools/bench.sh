#!/bin/sh
# Run the end-to-end microbenchmark suite (bench_micro_sim) and write the
# machine-readable results to BENCH_micro.json at the repo root. This is
# the number the performance work is held to: simulated instructions per
# second at 1/2/4/8 contexts (see docs/PERFORMANCE.md for how to read it).
#
# Usage: tools/bench.sh [build-dir]      (default: <repo>/build-release,
#                                         falling back to <repo>/build)
#
# Environment:
#   SMTAVF_BENCH_MIN_TIME     seconds per measurement   (default 4)
#   SMTAVF_BENCH_REPETITIONS  repetitions per benchmark (default 3)

set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=${SMTAVF_CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}
min_time=${SMTAVF_BENCH_MIN_TIME:-4}
reps=${SMTAVF_BENCH_REPETITIONS:-3}

if [ $# -ge 1 ]; then
    build=$1
elif [ -x "$repo/build-release/bench/bench_micro_sim" ]; then
    build=$repo/build-release
else
    build=$repo/build
fi

if [ ! -x "$build/bench/bench_micro_sim" ]; then
    echo "==> bench_micro_sim not built; configuring $build (Release)"
    cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$build" -j "$jobs" --target bench_micro_sim
fi

echo "==> running bench_micro_sim (min_time=${min_time}s x${reps})"
"$build/bench/bench_micro_sim" \
    --benchmark_min_time="$min_time" \
    --benchmark_repetitions="$reps" \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json \
    --benchmark_out="$repo/BENCH_micro.json" \
    --benchmark_out_format=json

echo "==> wrote $repo/BENCH_micro.json"
