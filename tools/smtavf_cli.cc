/**
 * @file
 * smtavf command-line driver: run any workload mix under any fetch policy
 * and configuration, print the performance/AVF summary, and optionally
 * dump the per-structure results or the AVF timeline as CSV for plotting.
 *
 * Examples:
 *   smtavf_cli --list
 *   smtavf_cli --mix 4ctx-mem-A --policy FLUSH --instructions 400000
 *   smtavf_cli --mix 8ctx-mix-B --iq-partition --csv
 *   smtavf_cli --mix 4ctx-cpu-A --sample 5000 --timeline-csv
 *
 * The `campaign` subcommand fans a whole experiment list over a worker
 * pool with per-run progress/timing lines; results are bit-identical for
 * any --jobs value (see sim/campaign.hh):
 *   smtavf_cli campaign --jobs 4
 *   smtavf_cli campaign --contexts 4 --policy all
 *   smtavf_cli campaign --mix 4ctx-mem-A --mix 4ctx-cpu-A --master-seed 7
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/table.hh"
#include "metrics/metrics.hh"
#include "sim/campaign.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"

namespace
{

using namespace smtavf;

void
usage()
{
    std::puts(
        "usage: smtavf_cli [options]\n"
        "       smtavf_cli campaign [campaign options]\n"
        "  --mix NAME            workload mix (default 4ctx-mix-A)\n"
        "  --policy NAME         fetch policy: RR ICOUNT FLUSH STALL DG\n"
        "                        PDG DWarn PSTALL RAT (default ICOUNT)\n"
        "  --instructions N      total committed-instruction budget\n"
        "  --seed N              simulation seed (default 1)\n"
        "  --replicas N          run N seeds and report mean +/- std\n"
        "  --sample N            AVF timeline window in cycles (0 = off)\n"
        "  --iq-partition        static per-thread IQ partitioning\n"
        "  --no-dead-code        disable dynamic dead-code analysis\n"
        "  --no-wrong-path       disable wrong-path fetch/execution\n"
        "  --per-line-cache      per-line (not per-byte) DL1 tracking\n"
        "  --no-prewarm          skip cache/TLB pre-warming\n"
        "  --csv                 machine-readable per-structure output\n"
        "  --timeline-csv        dump the AVF timeline as CSV\n"
        "  --table1              print the machine configuration and exit\n"
        "  --list                list mixes and policies and exit\n"
        "\n"
        "campaign options:\n"
        "  --jobs N              worker threads (default: SMTAVF_JOBS or\n"
        "                        hardware concurrency)\n"
        "  --mix NAME            add one mix (repeatable; default: all)\n"
        "  --contexts N          restrict to N-context mixes\n"
        "  --policy NAME|all     fetch policy per run (default ICOUNT;\n"
        "                        'all' crosses mixes with every policy)\n"
        "  --instructions N      per-run committed-instruction budget\n"
        "  --master-seed N       derive run i's seed as splitSeed(N, i)\n"
        "  --csv                 per-run CSV summary instead of a table\n");
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "smtavf_cli: %s\n", msg.c_str());
    std::exit(1);
}

std::uint64_t
parseNum(const char *flag, const char *value)
{
    if (!value)
        die(std::string(flag) + " needs a value");
    char *end = nullptr;
    auto v = std::strtoull(value, &end, 10);
    if (!end || *end != '\0')
        die(std::string("bad number for ") + flag + ": " + value);
    return v;
}

int
campaignMain(int argc, char **argv)
{
    unsigned jobs = 0;
    std::vector<std::string> mix_names;
    unsigned contexts = 0;
    std::string policy_name = "ICOUNT";
    std::uint64_t instructions = 0;
    std::uint64_t master_seed = 0;
    bool use_master_seed = false;
    bool csv = false;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(parseNum("--jobs", next()));
            if (jobs == 0)
                die("--jobs must be positive");
        } else if (arg == "--mix") {
            const char *v = next();
            if (!v)
                die("--mix needs a value");
            mix_names.push_back(v);
        } else if (arg == "--contexts") {
            contexts =
                static_cast<unsigned>(parseNum("--contexts", next()));
        } else if (arg == "--policy") {
            const char *v = next();
            if (!v)
                die("--policy needs a value");
            policy_name = v;
        } else if (arg == "--instructions") {
            instructions = parseNum("--instructions", next());
        } else if (arg == "--master-seed") {
            master_seed = parseNum("--master-seed", next());
            use_master_seed = true;
        } else if (arg == "--csv") {
            csv = true;
        } else {
            usage();
            die("unknown campaign option: " + arg);
        }
    }

    std::vector<FetchPolicyKind> policies;
    if (policy_name == "all" || policy_name == "ALL") {
        policies = allFetchPolicies();
    } else {
        FetchPolicyKind policy;
        if (!parseFetchPolicy(policy_name, policy))
            die("unknown policy: " + policy_name + " (try --list)");
        policies.push_back(policy);
    }

    std::vector<WorkloadMix> mixes;
    if (!mix_names.empty()) {
        for (const auto &name : mix_names)
            mixes.push_back(findMix(name));
    } else {
        for (const auto &m : allMixes())
            if (contexts == 0 || m.contexts == contexts)
                mixes.push_back(m);
    }
    if (mixes.empty())
        die("no mixes selected");

    std::vector<Experiment> exps;
    for (const auto &mix : mixes)
        for (auto policy : policies)
            exps.push_back(makeExperiment(mix, policy, instructions));
    if (use_master_seed)
        deriveSeeds(exps, master_seed);

    CampaignRunner pool(jobs);
    std::printf("campaign: %zu runs on %u workers\n", exps.size(),
                pool.jobs());

    auto t0 = std::chrono::steady_clock::now();
    auto results = pool.run(exps, [](const CampaignProgress &p) {
        std::printf("[%3zu/%zu] %-22s IPC %.3f  %6.2fs\n", p.completed,
                    p.total, p.experiment->label.c_str(), p.result->ipc,
                    p.seconds);
        std::fflush(stdout);
    });
    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    std::printf("campaign finished in %.2fs\n\n", dt.count());

    if (csv) {
        std::fputs("label,seed,ipc,cycles,instructions", stdout);
        for (auto s : AvfReport::figureStructs())
            std::printf(",%s", hwStructName(s));
        std::puts("");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &r = results[i];
            std::printf("%s,%llu,%.6f,%llu,%llu",
                        exps[i].label.c_str(),
                        static_cast<unsigned long long>(exps[i].cfg.seed),
                        r.ipc,
                        static_cast<unsigned long long>(r.cycles),
                        static_cast<unsigned long long>(r.totalCommitted));
            for (auto s : AvfReport::figureStructs())
                std::printf(",%.6f", r.avf.avf(s));
            std::puts("");
        }
        return 0;
    }

    std::vector<std::string> header = {"experiment", "IPC"};
    for (auto s : AvfReport::figureStructs())
        header.push_back(hwStructName(s));
    TextTable t(std::move(header));
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        std::vector<std::string> row = {exps[i].label,
                                        TextTable::num(r.ipc, 3)};
        for (auto s : AvfReport::figureStructs())
            row.push_back(TextTable::pct(r.avf.avf(s), 1));
        t.addRow(std::move(row));
    }
    std::fputs(t.str().c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "campaign") == 0)
        return campaignMain(argc, argv);

    std::string mix_name = "4ctx-mix-A";
    std::string policy_name = "ICOUNT";
    std::uint64_t instructions = 0;
    std::uint64_t seed = 1;
    std::uint64_t replicas = 1;
    std::uint64_t sample = 0;
    bool iq_partition = false;
    bool csv = false;
    bool timeline_csv = false;
    AvfOptions avf;
    bool prewarm = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            std::puts("mixes:");
            for (const auto &m : allMixes())
                std::printf("  %-12s (%u contexts, %s)\n", m.name.c_str(),
                            m.contexts, mixTypeName(m.type));
            std::puts("policies:");
            for (auto kind : allFetchPolicies())
                std::printf("  %s\n", fetchPolicyName(kind));
            return 0;
        } else if (arg == "--table1") {
            std::fputs(table1String(table1Config(4)).c_str(), stdout);
            return 0;
        } else if (arg == "--mix") {
            const char *v = next();
            if (!v)
                die("--mix needs a value");
            mix_name = v;
        } else if (arg == "--policy") {
            const char *v = next();
            if (!v)
                die("--policy needs a value");
            policy_name = v;
        } else if (arg == "--instructions") {
            instructions = parseNum("--instructions", next());
        } else if (arg == "--seed") {
            seed = parseNum("--seed", next());
        } else if (arg == "--replicas") {
            replicas = parseNum("--replicas", next());
            if (replicas == 0)
                die("--replicas must be positive");
        } else if (arg == "--sample") {
            sample = parseNum("--sample", next());
        } else if (arg == "--iq-partition") {
            iq_partition = true;
        } else if (arg == "--no-dead-code") {
            avf.deadCodeAnalysis = false;
        } else if (arg == "--no-wrong-path") {
            avf.wrongPathModel = false;
        } else if (arg == "--per-line-cache") {
            avf.perByteCacheAvf = false;
        } else if (arg == "--no-prewarm") {
            prewarm = false;
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--timeline-csv") {
            timeline_csv = true;
        } else {
            usage();
            die("unknown option: " + arg);
        }
    }

    FetchPolicyKind policy;
    if (!parseFetchPolicy(policy_name, policy))
        die("unknown policy: " + policy_name + " (try --list)");

    const auto &mix = findMix(mix_name);
    auto cfg = table1Config(mix.contexts);
    cfg.fetchPolicy = policy;
    cfg.seed = seed;
    cfg.iqPartitioned = iq_partition;
    cfg.avf = avf;
    cfg.prewarmCaches = prewarm;
    if (timeline_csv && sample == 0)
        sample = 5000;
    cfg.avfSampleCycles = sample;

    if (replicas > 1) {
        auto runs = runMixReplicated(cfg, mix,
                                     static_cast<unsigned>(replicas),
                                     instructions);
        auto perf = ipcStats(runs);
        std::printf("%s under %s, %llu seeds: IPC %.3f +/- %.3f\n",
                    mix.name.c_str(), fetchPolicyName(policy),
                    static_cast<unsigned long long>(replicas), perf.mean,
                    perf.std);
        std::puts("structure  mean AVF  +/-");
        for (auto s : AvfReport::figureStructs()) {
            auto st = avfStats(runs, s);
            std::printf("%-9s  %6.2f%%  %5.2f%%\n", hwStructName(s),
                        100 * st.mean, 100 * st.std);
        }
        return 0;
    }

    auto r = runMix(cfg, mix, instructions);

    if (csv) {
        std::puts("structure,avf,occupancy,mitf");
        for (std::size_t i = 0; i < numHwStructs; ++i) {
            auto s = static_cast<HwStruct>(i);
            if (r.avf.occupancy(s) == 0.0 && r.avf.avf(s) == 0.0)
                continue;
            std::printf("%s,%.6f,%.6f,%.4f\n", hwStructName(s),
                        r.avf.avf(s), r.avf.occupancy(s), r.mitf(s));
        }
    } else {
        std::printf("%s under %s: IPC %.3f over %llu cycles "
                    "(%llu instructions)\n",
                    r.mixName.c_str(), r.policyName.c_str(), r.ipc,
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.totalCommitted));
        for (const auto &t : r.threads)
            std::printf("  %-10s IPC %.3f\n", t.benchmark.c_str(), t.ipc);
        std::puts("");
        std::fputs(r.avf.str().c_str(), stdout);
        std::puts("");
        for (const auto &[name, value] : r.stats.all())
            std::printf("  %-24s %.4f\n", name.c_str(), value);
    }

    if (timeline_csv && r.timeline) {
        std::puts("\nwindow,IQ,Reg,FU,ROB,DL1_data,DL1_tag");
        for (std::size_t w = 0; w < r.timeline->windows(); ++w) {
            std::printf(
                "%zu,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n", w,
                r.timeline->windowAvf(HwStruct::IQ, w),
                r.timeline->windowAvf(HwStruct::RegFile, w),
                r.timeline->windowAvf(HwStruct::FU, w),
                r.timeline->windowAvf(HwStruct::ROB, w),
                r.timeline->windowAvf(HwStruct::Dl1Data, w),
                r.timeline->windowAvf(HwStruct::Dl1Tag, w));
        }
    }
    return 0;
}
