/**
 * @file
 * smtavf command-line driver: run any workload mix under any fetch policy
 * and configuration, print the performance/AVF summary, and optionally
 * dump the per-structure results or the AVF timeline as CSV for plotting.
 *
 * Examples:
 *   smtavf_cli --list
 *   smtavf_cli --mix 4ctx-mem-A --policy FLUSH --instructions 400000
 *   smtavf_cli --mix 8ctx-mix-B --iq-partition --csv
 *   smtavf_cli --mix 4ctx-cpu-A --sample 5000 --timeline-csv
 *
 * The `campaign` subcommand fans a whole experiment list over a worker
 * pool with per-run progress/timing lines; results are bit-identical for
 * any --jobs value (see sim/campaign.hh). Campaigns are fault tolerant:
 * failing runs are retried, deterministic failures quarantined, and with
 * --journal every finished run is persisted so an interrupted campaign
 * resumes where it left off (docs/ROBUSTNESS.md):
 *   smtavf_cli campaign --jobs 4
 *   smtavf_cli campaign --contexts 4 --policy all
 *   smtavf_cli campaign --mix 4ctx-mem-A --mix 4ctx-cpu-A --master-seed 7
 *   smtavf_cli campaign --journal runs.journal --retries 2
 *   smtavf_cli campaign --journal runs.journal --resume
 *
 * The `protect` subcommand attaches a protection assignment (parity,
 * SECDED ECC, scrubbing; per structure) and reports residual AVF and
 * the area/energy cost, or sweeps assignments for the Pareto frontier
 * (docs/PROTECTION.md):
 *   smtavf_cli protect --mix 4ctx-mix-A --scheme secded
 *   smtavf_cli protect --assign iq=ecc,regfile=parity --csv
 *   smtavf_cli protect --mix 4ctx-mem-A --explore --jobs 4
 *
 * Exit codes: 0 success; 1 the simulation itself failed (livelock,
 * invariant violation); 2 bad usage or configuration; 3 a campaign
 * completed but some runs did not produce results. 130 on forced SIGINT.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "base/env.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "ckpt/checkpoint.hh"
#include "metrics/metrics.hh"
#include "protect/cost.hh"
#include "protect/explorer.hh"
#include "protect/options.hh"
#include "protect/scheme.hh"
#include "sim/campaign.hh"
#include "sim/config.hh"
#include "sim/errors.hh"
#include "sim/experiment.hh"
#include "sim/journal.hh"
#include "sim/simulator.hh"

namespace
{

using namespace smtavf;

void
usage()
{
    std::puts(
        "usage: smtavf_cli [run] [options]\n"
        "       smtavf_cli campaign [campaign options]\n"
        "       smtavf_cli protect [protect options]\n"
        "       smtavf_cli merge-journals --out FILE IN1 [IN2 ...]\n"
        "       smtavf_cli journal fsck [--repair] FILE\n"
        "  --mix NAME            workload mix (default 4ctx-mix-A)\n"
        "  --policy NAME         fetch policy: RR ICOUNT FLUSH STALL DG\n"
        "                        PDG DWarn PSTALL RAT PRAT (default ICOUNT)\n"
        "  --prat-epoch N        PRAT: cycles between ledger residual\n"
        "                        refreshes (default 4096)\n"
        "  --prat-cap N          PRAT: throttle cap in correct-path\n"
        "                        instructions (default: the RAT cap)\n"
        "  --instructions N      total committed-instruction budget\n"
        "  --seed N              simulation seed (default 1)\n"
        "  --replicas N          run N seeds and report mean +/- std\n"
        "  --sample N            AVF timeline window in cycles (0 = off)\n"
        "  --warmup N            commit N instructions, drain, and reset\n"
        "                        stats/AVF tallies before measuring\n"
        "  --checkpoint-at N     capture a checkpoint once N instructions\n"
        "                        committed in total (needs --checkpoint-out)\n"
        "  --checkpoint-out F    write the --checkpoint-at capture to F\n"
        "  --restore F           adopt checkpoint F and continue; the run\n"
        "                        is bit-identical to the uninterrupted one.\n"
        "                        --instructions stays the *total* commit\n"
        "                        target and must exceed the checkpoint's\n"
        "  --avf-interval N      close an AVF sample row every N committed\n"
        "                        instructions and print the series as CSV\n"
        "  --avf-interval-csv F  write that series to F instead of stdout\n"
        "  --iq-partition        static per-thread IQ partitioning\n"
        "  --no-dead-code        disable dynamic dead-code analysis\n"
        "  --no-wrong-path       disable wrong-path fetch/execution\n"
        "  --per-line-cache      per-line (not per-byte) DL1 tracking\n"
        "  --no-prewarm          skip cache/TLB pre-warming\n"
        "  --csv                 machine-readable per-structure output\n"
        "  --json                full result as JSON on stdout\n"
        "  --timeline-csv        dump the AVF timeline as CSV\n"
        "  --table1              print the machine configuration and exit\n"
        "  --list                list mixes and policies and exit\n"
        "\n"
        "campaign options:\n"
        "  --jobs N              worker threads (default: SMTAVF_JOBS or\n"
        "                        hardware concurrency)\n"
        "  --mix NAME            add one mix (repeatable; default: all)\n"
        "  --contexts N          restrict to N-context mixes\n"
        "  --policy NAME|all     fetch policy per run (default ICOUNT;\n"
        "                        'all' crosses mixes with every policy)\n"
        "  --prat-epoch N        PRAT refresh period (see run options)\n"
        "  --prat-cap N          PRAT throttle cap (see run options)\n"
        "  --instructions N      per-run committed-instruction budget\n"
        "  --master-seed N       derive run i's seed as splitSeed(N, i)\n"
        "  --retries N           extra attempts per failing run (default 1)\n"
        "  --journal FILE        append finished runs to FILE as they land\n"
        "  --resume              replay journaled runs instead of re-running\n"
        "  --timeout SECONDS     stop dispatching new runs after this long\n"
        "  --shard I/N           run only every N-th experiment starting\n"
        "                        at I (0-based); seeds match the unsharded\n"
        "                        campaign, so shard journals merge losslessly\n"
        "                        with merge-journals\n"
        "  --isolate MODE        'thread' (default) or 'process': fork a\n"
        "                        sandboxed child per run so crashes and\n"
        "                        runaway runs are classified, not fatal;\n"
        "                        results are bit-identical across modes\n"
        "  --runs-per-child N    process: batch N consecutive runs into one\n"
        "                        sandboxed child over a reused simulator;\n"
        "                        a crash loses only the in-flight run and\n"
        "                        the remainder is re-dispatched (default 1)\n"
        "  --no-reuse            construct a fresh simulator per run instead\n"
        "                        of reset()ing a worker-local one (slower;\n"
        "                        results are bit-identical either way)\n"
        "  --hard-timeout SECS   process: SIGKILL a child past this wall\n"
        "                        clock (per run; scaled by --runs-per-child;\n"
        "                        works on wedged runs; 0 = off)\n"
        "  --child-cpu SECS      process: per-child RLIMIT_CPU (per run;\n"
        "                        scaled by the batch size)\n"
        "  --child-mem MB        process: per-child RLIMIT_AS in MiB\n"
        "  --backoff SECS        exponential retry backoff base with\n"
        "                        seed-deterministic jitter (default 0)\n"
        "  --cancel-check N      thread: poll the Ctrl-C flag inside each\n"
        "                        simulation every N cycles (default off)\n"
        "  --warmup N            per-run warmup instructions (see above)\n"
        "  --shared-warmup       simulate each distinct warmup prefix once,\n"
        "                        checkpoint it, and restore it per run;\n"
        "                        results are bit-identical to per-run warmup\n"
        "  --checkpoint-dir DIR  process mode: directory for the shared\n"
        "                        warmup checkpoint files (default: TMPDIR)\n"
        "  --csv                 per-run CSV summary instead of a table\n"
        "\n"
        "merge-journals: combine shard journals into one deduplicated,\n"
        "fingerprint-sorted journal usable with campaign --resume.\n"
        "Inputs are CRC-verified first; any corruption is reported with\n"
        "file/line/byte offsets and the merge refuses (exit 3).\n"
        "\n"
        "journal fsck: verify a campaign journal record by record (CRC32C\n"
        "on v3 records, structure on legacy v2). Reports every torn or\n"
        "corrupt line with its byte offset; --repair truncates a damaged\n"
        "tail (the crash-in-mid-append case) in place. Exit 0 when clean\n"
        "or repaired, 3 when damage remains.\n"
        "\n"
        "protect options (docs/PROTECTION.md):\n"
        "  --mix NAME            workload mix (default 4ctx-mix-A)\n"
        "  --policy NAME         fetch policy (default ICOUNT)\n"
        "  --prat-epoch N        PRAT refresh period (needs --policy PRAT)\n"
        "  --prat-cap N          PRAT throttle cap (needs --policy PRAT)\n"
        "  --instructions N      committed-instruction budget per run\n"
        "  --seed N              simulation seed (default 1)\n"
        "  --scheme NAME         uniform scheme for every structure:\n"
        "                        none parity secded secded+scrub\n"
        "  --assign LIST         per-structure schemes, e.g.\n"
        "                        iq=secded,regfile=parity,rob=scrub\n"
        "  --scrub-interval N    scrubbing period in cycles (default 10000)\n"
        "  --explore[=MODE]      sweep assignments and print the Pareto\n"
        "                        frontier; MODE is 'prefix' (scheme x top-k\n"
        "                        hotspots, the default) or 'beam' (beam\n"
        "                        search over mixed per-structure schemes\n"
        "                        with per-structure scrub intervals)\n"
        "  --depth N             prefix: top-N hotspots (default 4);\n"
        "                        beam: search the top-N hotspots (default 6)\n"
        "  --beam-width N        beam candidates kept per generation "
        "(default 8)\n"
        "  --generations N       beam expansion rounds (default 3)\n"
        "  --budget N            beam: at most N candidate evaluations,\n"
        "                        journal replays included (0 = unlimited)\n"
        "  --journal FILE        beam: journal evaluated runs + search trace\n"
        "  --resume              beam: replay journaled candidates\n"
        "  --warmup N            warm every evaluation up by N instructions\n"
        "  --shared-warmup       beam: simulate the warmup once and restore\n"
        "                        its checkpoint for every candidate\n"
        "  --jobs N              worker threads for --explore\n"
        "  --csv                 machine-readable output\n"
        "  --json                full result as JSON\n"
        "\n"
        "exit codes: 0 ok, 1 simulation failure, 2 bad usage/config,\n"
        "            3 campaign completed with failed runs, or journal\n"
        "              corruption found by fsck/merge-journals\n"
        "            4 checkpoint rejected (corrupt, truncated, or from an\n"
        "              incompatible configuration)\n");
}

/** Usage and configuration mistakes exit 2, distinct from sim failures. */
[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "smtavf_cli: %s\n", msg.c_str());
    std::exit(2);
}

/**
 * Strict numeric flag parsing: "abc", "", "12x" and negative values like
 * "--seed -3" are usage errors, never silently wrapped or truncated.
 */
std::uint64_t
parseNum(const char *flag, const char *value)
{
    if (!value)
        die(std::string(flag) + " needs a value");
    std::uint64_t v = 0;
    if (!strictParseU64(value, v))
        die(std::string("bad number for ") + flag + ": '" + value +
            "' (need a non-negative integer)");
    return v;
}

/** Strict non-negative seconds (plain decimal, fractions allowed). */
double
parseSeconds(const char *flag, const char *value)
{
    if (!value)
        die(std::string(flag) + " needs a value");
    char *end = nullptr;
    double v = std::strtod(value, &end);
    if (!end || end == value || *end != '\0' || !(v >= 0.0))
        die(std::string("bad duration for ") + flag + ": '" + value + "'");
    return v;
}

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

/**
 * Full single-run result as JSON: run summary, per-thread IPC, every
 * tracked structure's raw/residual AVF with its protection scheme, and
 * the auxiliary statistics. Structures that never held state are
 * skipped, matching the CSV and table output.
 */
void
printResultJson(const SimResult &r, const ProtectionConfig &prot)
{
    std::printf("{\n");
    std::printf("  \"mix\": %s,\n", jsonStr(r.mixName).c_str());
    std::printf("  \"policy\": %s,\n", jsonStr(r.policyName).c_str());
    std::printf("  \"ipc\": %.6f,\n", r.ipc);
    std::printf("  \"cycles\": %llu,\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("  \"instructions\": %llu,\n",
                static_cast<unsigned long long>(r.totalCommitted));
    std::printf("  \"protection\": %s,\n", jsonStr(prot.str()).c_str());

    std::printf("  \"threads\": [");
    for (std::size_t i = 0; i < r.threads.size(); ++i) {
        const auto &t = r.threads[i];
        std::printf("%s\n    {\"benchmark\": %s, \"ipc\": %.6f, "
                    "\"committed\": %llu}",
                    i ? "," : "", jsonStr(t.benchmark).c_str(), t.ipc,
                    static_cast<unsigned long long>(t.committed));
    }
    std::printf("\n  ],\n");

    std::printf("  \"structures\": [");
    bool first = true;
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        if (r.avf.occupancy(s) == 0.0 && r.avf.avf(s) == 0.0)
            continue;
        std::printf("%s\n    {\"name\": %s, \"scheme\": %s, "
                    "\"avf\": %.6f, \"residual_avf\": %.6f, "
                    "\"occupancy\": %.6f, \"mitf\": %.4f, \"thread_avf\": [",
                    first ? "" : ",", jsonStr(hwStructName(s)).c_str(),
                    jsonStr(protSchemeName(prot.schemeFor(s))).c_str(),
                    r.avf.avf(s), r.avf.residualAvf(s), r.avf.occupancy(s),
                    r.mitf(s));
        for (unsigned tid = 0; tid < r.avf.numThreads(); ++tid)
            std::printf("%s%.6f", tid ? ", " : "",
                        r.avf.threadAvf(s, static_cast<ThreadId>(tid)));
        std::printf("]}");
        first = false;
    }
    std::printf("\n  ],\n");

    std::printf("  \"stats\": {");
    first = true;
    for (const auto &[name, value] : r.stats.all()) {
        std::printf("%s\n    %s: %.6f", first ? "" : ",",
                    jsonStr(name).c_str(), value);
        first = false;
    }
    std::printf("\n  }\n}\n");
}

/**
 * First Ctrl-C asks the campaign to stop dispatching and drain (the
 * journal keeps everything already finished); the second aborts hard.
 * Only async-signal-safe calls here.
 */
std::atomic<bool> interrupted{false};

extern "C" void
onSigint(int)
{
    if (interrupted.exchange(true)) {
        const char hard[] = "\nsmtavf_cli: hard exit\n";
        [[maybe_unused]] auto n = write(STDERR_FILENO, hard, sizeof(hard) - 1);
        killLiveChildren(); // no orphaned --isolate=process simulations
        _exit(130);
    }
    const char soft[] =
        "\nsmtavf_cli: stopping dispatch, draining in-flight runs "
        "(Ctrl-C again to abort)\n";
    [[maybe_unused]] auto n = write(STDERR_FILENO, soft, sizeof(soft) - 1);
}

int
campaignMain(int argc, char **argv)
{
    unsigned jobs = 0;
    std::vector<std::string> mix_names;
    unsigned contexts = 0;
    std::string policy_name = "ICOUNT";
    std::uint64_t instructions = 0;
    std::uint64_t master_seed = 0;
    bool use_master_seed = false;
    bool csv = false;
    unsigned shard = 0;
    unsigned nshards = 0; // 0 = no sharding requested
    std::uint64_t warmup = 0;
    std::uint64_t prat_epoch = 4096;
    std::uint64_t prat_cap = 0;
    bool prat_epoch_set = false, prat_cap_set = false;
    CampaignOptions opt;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(parseNum("--jobs", next()));
            if (jobs == 0)
                die("--jobs must be positive");
        } else if (arg == "--mix") {
            const char *v = next();
            if (!v)
                die("--mix needs a value");
            mix_names.push_back(v);
        } else if (arg == "--contexts") {
            contexts =
                static_cast<unsigned>(parseNum("--contexts", next()));
        } else if (arg == "--policy") {
            const char *v = next();
            if (!v)
                die("--policy needs a value");
            policy_name = v;
        } else if (arg == "--prat-epoch") {
            prat_epoch = parseNum("--prat-epoch", next());
            if (prat_epoch == 0 || prat_epoch > (std::uint64_t{1} << 30))
                die("--prat-epoch must be in [1, 2^30] cycles");
            prat_epoch_set = true;
        } else if (arg == "--prat-cap") {
            prat_cap = parseNum("--prat-cap", next());
            if (prat_cap > (std::uint64_t{1} << 20))
                die("--prat-cap must be at most 2^20 instructions");
            prat_cap_set = true;
        } else if (arg == "--instructions") {
            instructions = parseNum("--instructions", next());
        } else if (arg == "--master-seed") {
            master_seed = parseNum("--master-seed", next());
            use_master_seed = true;
        } else if (arg == "--retries") {
            opt.retries =
                static_cast<unsigned>(parseNum("--retries", next()));
        } else if (arg == "--journal") {
            const char *v = next();
            if (!v)
                die("--journal needs a file name");
            opt.journalPath = v;
        } else if (arg == "--resume") {
            opt.resume = true;
        } else if (arg == "--timeout") {
            opt.softTimeoutSeconds = parseSeconds("--timeout", next());
        } else if (arg == "--isolate") {
            const char *v = next();
            if (!v || !parseIsolateMode(v, opt.isolate))
                die("--isolate wants 'thread' or 'process'");
        } else if (arg == "--runs-per-child") {
            opt.runsPerChild =
                static_cast<unsigned>(parseNum("--runs-per-child", next()));
            if (opt.runsPerChild == 0)
                die("--runs-per-child wants a positive batch size");
        } else if (arg == "--no-reuse") {
            opt.reuseWorkers = false;
        } else if (arg == "--hard-timeout") {
            opt.hardTimeoutSeconds = parseSeconds("--hard-timeout", next());
        } else if (arg == "--child-cpu") {
            opt.childCpuSeconds = parseNum("--child-cpu", next());
        } else if (arg == "--child-mem") {
            opt.childMemoryBytes =
                parseNum("--child-mem", next()) * 1024 * 1024;
        } else if (arg == "--backoff") {
            opt.backoffSeconds = parseSeconds("--backoff", next());
        } else if (arg == "--cancel-check") {
            opt.cancelCheckCycles = parseNum("--cancel-check", next());
        } else if (arg == "--warmup") {
            warmup = parseNum("--warmup", next());
        } else if (arg == "--shared-warmup") {
            opt.sharedWarmup = true;
        } else if (arg == "--checkpoint-dir") {
            const char *v = next();
            if (!v)
                die("--checkpoint-dir needs a directory");
            opt.checkpointDir = v;
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--shard") {
            const char *v = next();
            unsigned s = 0, n = 0;
            if (!v || std::sscanf(v, "%u/%u", &s, &n) != 2 || n == 0 ||
                s >= n)
                die("--shard wants I/N with 0 <= I < N, e.g. --shard 0/4");
            shard = s;
            nshards = n;
        } else {
            usage();
            die("unknown campaign option: " + arg);
        }
    }
    if (opt.resume && opt.journalPath.empty())
        die("--resume needs --journal FILE to resume from");
    if (opt.isolate != IsolateMode::Process &&
        (opt.hardTimeoutSeconds > 0.0 || opt.childCpuSeconds > 0 ||
         opt.childMemoryBytes > 0))
        die("--hard-timeout/--child-cpu/--child-mem need --isolate process");
    if (opt.runsPerChild > 1 && opt.isolate != IsolateMode::Process)
        die("--runs-per-child needs --isolate process (thread mode already "
            "reuses workers in-process)");
    if (opt.isolate == IsolateMode::Process && opt.cancelCheckCycles > 0)
        die("--cancel-check is a thread-mode knob; process children are "
            "interrupted by the supervisor");
    if (opt.sharedWarmup && warmup == 0)
        die("--shared-warmup needs --warmup N to share");
    if (!opt.checkpointDir.empty() &&
        !(opt.sharedWarmup && opt.isolate == IsolateMode::Process))
        die("--checkpoint-dir needs --shared-warmup with --isolate process");

    std::vector<FetchPolicyKind> policies;
    if (policy_name == "all" || policy_name == "ALL") {
        policies = allFetchPolicies();
    } else {
        FetchPolicyKind policy;
        if (!parseFetchPolicy(policy_name, policy))
            die("unknown policy: " + policy_name + " (try --list)");
        policies.push_back(policy);
    }

    std::vector<WorkloadMix> mixes;
    if (!mix_names.empty()) {
        for (const auto &name : mix_names)
            mixes.push_back(findMix(name));
    } else {
        for (const auto &m : allMixes())
            if (contexts == 0 || m.contexts == contexts)
                mixes.push_back(m);
    }
    if (mixes.empty())
        die("no mixes selected");

    if ((prat_epoch_set || prat_cap_set) &&
        std::find(policies.begin(), policies.end(),
                  FetchPolicyKind::PRat) == policies.end())
        die("--prat-epoch/--prat-cap tune the PRAT throttle; they need "
            "--policy PRAT (or --policy all)");

    std::vector<Experiment> exps;
    for (const auto &mix : mixes)
        for (auto policy : policies)
            exps.push_back(makeExperiment(mix, policy, instructions));
    for (auto &e : exps) {
        e.warmup = warmup;
        // Inert (and fingerprint-excluded) unless the run's policy is PRAT.
        e.cfg.pratEpoch = prat_epoch;
        e.cfg.pratCap = static_cast<std::uint32_t>(prat_cap);
    }
    if (use_master_seed)
        deriveSeeds(exps, master_seed);
    // Shard after seed derivation: a run's seed depends on its index in
    // the full campaign, so every shard executes exactly the runs an
    // unsharded campaign would — which is what makes the shard journals
    // mergeable (see merge-journals).
    if (nshards > 0) {
        exps = shardExperiments(exps, shard, nshards);
        if (exps.empty())
            die("shard " + std::to_string(shard) + "/" +
                std::to_string(nshards) + " selects no runs");
    }

    // Reject a bad configuration before spinning up the pool: every
    // experiment must pass the same validation a Simulator would apply.
    for (const auto &e : exps)
        if (auto msg = e.cfg.validateMsg(); !msg.empty())
            die("invalid configuration for " + e.label + ": " + msg);

    opt.cancel = &interrupted;
    std::signal(SIGINT, onSigint);

    CampaignRunner pool(jobs);
    std::printf("campaign: %zu runs on %u workers\n", exps.size(),
                pool.jobs());

    auto t0 = std::chrono::steady_clock::now();
    auto report = runTolerant(pool, exps, opt,
                              [](const CampaignProgress &p) {
        if (p.result) {
            std::printf("[%3zu/%zu] %-22s IPC %.3f  %6.2fs%s\n", p.completed,
                        p.total, p.experiment->label.c_str(), p.result->ipc,
                        p.seconds,
                        p.outcome && p.outcome->fromJournal ? "  (journal)"
                                                            : "");
        } else {
            std::printf("[%3zu/%zu] %-22s %s\n", p.completed, p.total,
                        p.experiment->label.c_str(),
                        p.outcome ? runStatusName(p.outcome->status)
                                  : "failed");
        }
        std::fflush(stdout);
    });
    std::signal(SIGINT, SIG_DFL);
    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    std::printf("campaign finished in %.2fs\n\n", dt.count());

    if (csv) {
        // campaignCsv keeps every row at full arity: failed/timed-out/
        // quarantined runs get empty metric cells plus the error column
        // instead of a short (ragged) row.
        std::fputs(campaignCsv(exps, report).c_str(), stdout);
    } else {
        std::vector<std::string> header = {"experiment", "IPC"};
        for (auto s : AvfReport::figureStructs())
            header.push_back(hwStructName(s));
        TextTable t(std::move(header));
        for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
            const RunOutcome &o = report.outcomes[i];
            std::vector<std::string> row = {exps[i].label};
            if (o.status == RunStatus::Ok) {
                row.push_back(TextTable::num(o.result.ipc, 3));
                for (auto s : AvfReport::figureStructs())
                    row.push_back(TextTable::pct(o.result.avf.avf(s), 1));
            } else {
                row.push_back(runStatusName(o.status));
                for (std::size_t c = 0; c < AvfReport::figureStructs().size();
                     ++c)
                    row.push_back("-");
            }
            t.addRow(std::move(row));
        }
        std::fputs(t.str().c_str(), stdout);
    }

    if (!report.allOk()) {
        std::fputs("\n", stderr);
        std::fputs(report.failureReport().c_str(), stderr);
        if (!opt.journalPath.empty())
            std::fprintf(stderr,
                         "finished runs are journaled; resume with:\n"
                         "  smtavf_cli campaign ... --journal %s --resume\n",
                         opt.journalPath.c_str());
        return 3;
    }
    return 0;
}

int
protectMain(int argc, char **argv)
{
    ProtectCliOptions po;
    std::string err;
    if (!parseProtectCli(std::vector<std::string>(argv + 2, argv + argc),
                         po, err)) {
        usage();
        die(err);
    }
    if (po.help) {
        usage();
        return 0;
    }

    FetchPolicyKind policy;
    if (!parseFetchPolicy(po.policyName, policy))
        die("unknown policy: " + po.policyName + " (try --list)");

    const auto &mix = findMix(po.mixName);
    auto cfg = table1Config(mix.contexts);
    cfg.fetchPolicy = policy;
    cfg.seed = po.seed;
    cfg.pratEpoch = po.pratEpoch;
    cfg.pratCap = static_cast<std::uint32_t>(po.pratCap);

    ProtectionConfig prot;
    prot.scrubInterval = po.scrubInterval;
    if (!po.schemeName.empty()) {
        ProtScheme s;
        if (!parseProtScheme(po.schemeName, s))
            die("unknown scheme: " + po.schemeName +
                " (none parity secded secded+scrub)");
        prot = uniformProtection(s, po.scrubInterval);
    }
    if (!po.assignSpec.empty()) {
        std::string aerr;
        if (!parseAssignment(po.assignSpec, prot, aerr))
            die("bad --assign: " + aerr);
    }
    cfg.protection = prot;
    if (auto msg = cfg.validateMsg(); !msg.empty())
        die("invalid configuration: " + msg);

    if (po.explore) {
        ProtectionExplorer explorer(cfg, mix, po.instructions, po.depth);
        CampaignRunner pool(po.jobs);
        ExplorationResult result;
        if (po.exploreMode == ExploreMode::Beam) {
            BeamOptions bo;
            bo.beamWidth = po.beamWidth;
            bo.generations = po.generations;
            bo.evalBudget = po.evalBudget;
            if (po.depthSet)
                bo.maxStructures = po.depth;
            bo.scrubLadder =
                ProtectionExplorer::defaultScrubLadder(po.scrubInterval);
            bo.journalPath = po.journalPath;
            bo.resume = po.resume;
            bo.warmup = po.warmup;
            bo.sharedWarmup = po.sharedWarmup;
            result = explorer.exploreBeam(pool, bo);
        } else {
            result = explorer.explore(pool, po.warmup);
        }
        if (po.json) {
            std::fputs(result.json().c_str(), stdout);
        } else if (po.csv) {
            std::fputs(result.csv().c_str(), stdout);
        } else {
            std::fputs("hotspot priority (raw AVF, descending):", stdout);
            for (auto s : result.priority)
                std::printf(" %s", hwStructName(s));
            std::printf("\n\n%llu assignments evaluated (%llu from the "
                        "journal, %llu pruned unsimulated), %zu on the "
                        "Pareto frontier:\n",
                        static_cast<unsigned long long>(result.evaluations),
                        static_cast<unsigned long long>(result.journalHits),
                        static_cast<unsigned long long>(result.prunedCount),
                        result.frontier.size());
            std::fputs(result.table().c_str(), stdout);
            for (const auto &w : result.warnings)
                std::fprintf(stderr, "warning: %s\n", w.c_str());
        }
        return 0;
    }

    SimResult r;
    if (po.warmup > 0) {
        Simulator sim(cfg, mix);
        RunControls rc;
        rc.warmup = po.warmup;
        r = sim.run(po.instructions ? po.instructions
                                    : defaultBudget(mix.contexts),
                    rc);
    } else {
        r = runMix(cfg, mix, po.instructions);
    }
    bool csv = po.csv, json = po.json;
    const auto bits = structureBitCapacities(cfg);
    auto cost = protectionCost(cfg);

    if (json) {
        printResultJson(r, prot);
        return 0;
    }
    if (csv) {
        std::puts("structure,scheme,avf,residual_avf,occupancy,mitf");
        for (std::size_t i = 0; i < numHwStructs; ++i) {
            auto s = static_cast<HwStruct>(i);
            if (r.avf.occupancy(s) == 0.0 && r.avf.avf(s) == 0.0)
                continue;
            std::printf("%s,%s,%.6f,%.6f,%.6f,%.4f\n", hwStructName(s),
                        protSchemeName(prot.schemeFor(s)), r.avf.avf(s),
                        r.avf.residualAvf(s), r.avf.occupancy(s), r.mitf(s));
        }
        return 0;
    }

    std::printf("%s under %s with %s: IPC %.3f over %llu cycles\n",
                r.mixName.c_str(), r.policyName.c_str(), prot.str().c_str(),
                r.ipc, static_cast<unsigned long long>(r.cycles));
    TextTable t({"structure", "scheme", "AVF", "residual", "occupancy"});
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        if (r.avf.occupancy(s) == 0.0 && r.avf.avf(s) == 0.0)
            continue;
        t.addRow({hwStructName(s), protSchemeName(prot.schemeFor(s)),
                  TextTable::pct(r.avf.avf(s), 2),
                  TextTable::pct(r.avf.residualAvf(s), 2),
                  TextTable::pct(r.avf.occupancy(s), 2)});
    }
    std::fputs(t.str().c_str(), stdout);
    std::printf("\nprotected %llu of %llu tracked bits\n"
                "area overhead   %5.2f%%\n"
                "energy overhead %5.2f%%\n"
                "SER proxy       %.4f raw -> %.4f residual\n",
                static_cast<unsigned long long>(cost.protectedBits),
                static_cast<unsigned long long>(cost.totalBits),
                100 * cost.areaOverhead, 100 * cost.energyOverhead,
                serProxy(r.avf, bits, false), serProxy(r.avf, bits, true));
    return 0;
}

int
singleMain(int argc, char **argv)
{
    std::string mix_name = "4ctx-mix-A";
    std::string policy_name = "ICOUNT";
    std::uint64_t instructions = 0;
    std::uint64_t seed = 1;
    std::uint64_t replicas = 1;
    std::uint64_t sample = 0;
    std::uint64_t warmup = 0;
    std::uint64_t checkpoint_at = 0;
    std::string checkpoint_out;
    std::string restore_path;
    std::uint64_t avf_interval = 0;
    std::string avf_interval_csv;
    bool iq_partition = false;
    bool csv = false;
    bool json = false;
    bool timeline_csv = false;
    AvfOptions avf;
    bool prewarm = true;
    std::uint64_t prat_epoch = 4096;
    std::uint64_t prat_cap = 0;
    bool prat_epoch_set = false, prat_cap_set = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            std::puts("mixes:");
            for (const auto &m : allMixes())
                std::printf("  %-12s (%u contexts, %s)\n", m.name.c_str(),
                            m.contexts, mixTypeName(m.type));
            std::puts("policies:");
            for (auto kind : allFetchPolicies())
                std::printf("  %s\n", fetchPolicyName(kind));
            return 0;
        } else if (arg == "--table1") {
            std::fputs(table1String(table1Config(4)).c_str(), stdout);
            return 0;
        } else if (arg == "--mix") {
            const char *v = next();
            if (!v)
                die("--mix needs a value");
            mix_name = v;
        } else if (arg == "--policy") {
            const char *v = next();
            if (!v)
                die("--policy needs a value");
            policy_name = v;
        } else if (arg == "--prat-epoch") {
            prat_epoch = parseNum("--prat-epoch", next());
            if (prat_epoch == 0 || prat_epoch > (std::uint64_t{1} << 30))
                die("--prat-epoch must be in [1, 2^30] cycles");
            prat_epoch_set = true;
        } else if (arg == "--prat-cap") {
            prat_cap = parseNum("--prat-cap", next());
            if (prat_cap > (std::uint64_t{1} << 20))
                die("--prat-cap must be at most 2^20 instructions");
            prat_cap_set = true;
        } else if (arg == "--instructions") {
            instructions = parseNum("--instructions", next());
        } else if (arg == "--seed") {
            seed = parseNum("--seed", next());
        } else if (arg == "--replicas") {
            replicas = parseNum("--replicas", next());
            if (replicas == 0)
                die("--replicas must be positive");
        } else if (arg == "--sample") {
            sample = parseNum("--sample", next());
        } else if (arg == "--warmup") {
            warmup = parseNum("--warmup", next());
        } else if (arg == "--checkpoint-at") {
            checkpoint_at = parseNum("--checkpoint-at", next());
            if (checkpoint_at == 0)
                die("--checkpoint-at must be positive");
        } else if (arg == "--checkpoint-out") {
            const char *v = next();
            if (!v)
                die("--checkpoint-out needs a file name");
            checkpoint_out = v;
        } else if (arg == "--restore") {
            const char *v = next();
            if (!v)
                die("--restore needs a file name");
            restore_path = v;
        } else if (arg == "--avf-interval") {
            avf_interval = parseNum("--avf-interval", next());
            if (avf_interval == 0)
                die("--avf-interval must be positive");
        } else if (arg == "--avf-interval-csv") {
            const char *v = next();
            if (!v)
                die("--avf-interval-csv needs a file name");
            avf_interval_csv = v;
        } else if (arg == "--iq-partition") {
            iq_partition = true;
        } else if (arg == "--no-dead-code") {
            avf.deadCodeAnalysis = false;
        } else if (arg == "--no-wrong-path") {
            avf.wrongPathModel = false;
        } else if (arg == "--per-line-cache") {
            avf.perByteCacheAvf = false;
        } else if (arg == "--no-prewarm") {
            prewarm = false;
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--timeline-csv") {
            timeline_csv = true;
        } else {
            usage();
            die("unknown option: " + arg);
        }
    }

    FetchPolicyKind policy;
    if (!parseFetchPolicy(policy_name, policy))
        die("unknown policy: " + policy_name + " (try --list)");

    if ((prat_epoch_set || prat_cap_set) &&
        policy != FetchPolicyKind::PRat)
        die("--prat-epoch/--prat-cap tune the PRAT throttle; they need "
            "--policy PRAT");

    const auto &mix = findMix(mix_name);
    auto cfg = table1Config(mix.contexts);
    cfg.fetchPolicy = policy;
    cfg.seed = seed;
    cfg.pratEpoch = prat_epoch;
    cfg.pratCap = static_cast<std::uint32_t>(prat_cap);
    cfg.iqPartitioned = iq_partition;
    cfg.avf = avf;
    cfg.prewarmCaches = prewarm;
    if (timeline_csv && sample == 0)
        sample = 5000;
    cfg.avfSampleCycles = sample;
    if (auto msg = cfg.validateMsg(); !msg.empty())
        die("invalid configuration: " + msg);

    const bool controls = warmup > 0 || checkpoint_at > 0 ||
                          !restore_path.empty() || avf_interval > 0;
    if (!checkpoint_out.empty() && checkpoint_at == 0)
        die("--checkpoint-out needs --checkpoint-at N");
    if (checkpoint_at > 0 && checkpoint_out.empty())
        die("--checkpoint-at needs --checkpoint-out FILE");
    if (!restore_path.empty() && warmup > 0)
        die("--warmup cannot follow --restore: the restored state already "
            "fixes the measurement boundary");
    if (controls && replicas > 1)
        die("--replicas cannot combine with "
            "--warmup/--checkpoint-at/--restore/--avf-interval");
    if (!avf_interval_csv.empty() && avf_interval == 0)
        die("--avf-interval-csv needs --avf-interval N");

    if (replicas > 1) {
        auto runs = runMixReplicated(cfg, mix,
                                     static_cast<unsigned>(replicas),
                                     instructions);
        auto perf = ipcStats(runs);
        std::printf("%s under %s, %llu seeds: IPC %.3f +/- %.3f\n",
                    mix.name.c_str(), fetchPolicyName(policy),
                    static_cast<unsigned long long>(replicas), perf.mean,
                    perf.std);
        std::puts("structure  mean AVF  +/-");
        for (auto s : AvfReport::figureStructs()) {
            auto st = avfStats(runs, s);
            std::printf("%-9s  %6.2f%%  %5.2f%%\n", hwStructName(s),
                        100 * st.mean, 100 * st.std);
        }
        return 0;
    }

    SimResult r;
    if (controls) {
        std::uint64_t budget =
            instructions ? instructions : defaultBudget(mix.contexts);
        Simulator sim(cfg, mix);
        RunControls rc;
        rc.warmup = warmup;
        rc.checkpointAt = checkpoint_at;
        rc.checkpointOut = checkpoint_out;
        rc.avfInterval = avf_interval;
        if (!restore_path.empty()) {
            sim.restore(loadCheckpointFile(restore_path));
            // --instructions stays the run's *total* commit target, so a
            // restored run reports exactly what the uninterrupted run
            // would; only the remainder is simulated.
            if (budget <= sim.restoredCommitted())
                die("--instructions " + std::to_string(budget) +
                    " does not exceed the checkpoint's committed count (" +
                    std::to_string(sim.restoredCommitted()) + ")");
            budget -= sim.restoredCommitted();
        }
        r = sim.run(budget, rc);
    } else {
        r = runMix(cfg, mix, instructions);
    }

    if (json) {
        printResultJson(r, cfg.protection);
    } else if (csv) {
        std::puts("structure,avf,occupancy,mitf");
        for (std::size_t i = 0; i < numHwStructs; ++i) {
            auto s = static_cast<HwStruct>(i);
            if (r.avf.occupancy(s) == 0.0 && r.avf.avf(s) == 0.0)
                continue;
            std::printf("%s,%.6f,%.6f,%.4f\n", hwStructName(s),
                        r.avf.avf(s), r.avf.occupancy(s), r.mitf(s));
        }
    } else {
        std::printf("%s under %s: IPC %.3f over %llu cycles "
                    "(%llu instructions)\n",
                    r.mixName.c_str(), r.policyName.c_str(), r.ipc,
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.totalCommitted));
        for (const auto &t : r.threads)
            std::printf("  %-10s IPC %.3f\n", t.benchmark.c_str(), t.ipc);
        std::puts("");
        std::fputs(r.avf.str().c_str(), stdout);
        std::puts("");
        for (const auto &[name, value] : r.stats.all())
            std::printf("  %-24s %.4f\n", name.c_str(), value);
    }

    if (avf_interval > 0 && r.avfIntervals) {
        if (!avf_interval_csv.empty() && avf_interval_csv != "-") {
            std::FILE *f = std::fopen(avf_interval_csv.c_str(), "w");
            if (!f)
                die("cannot write " + avf_interval_csv);
            std::fputs(r.avfIntervals->csv().c_str(), f);
            std::fclose(f);
        } else {
            std::puts("");
            std::fputs(r.avfIntervals->csv().c_str(), stdout);
        }
    }

    if (timeline_csv && r.timeline) {
        std::puts("\nwindow,IQ,Reg,FU,ROB,DL1_data,DL1_tag");
        for (std::size_t w = 0; w < r.timeline->windows(); ++w) {
            std::printf(
                "%zu,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n", w,
                r.timeline->windowAvf(HwStruct::IQ, w),
                r.timeline->windowAvf(HwStruct::RegFile, w),
                r.timeline->windowAvf(HwStruct::FU, w),
                r.timeline->windowAvf(HwStruct::ROB, w),
                r.timeline->windowAvf(HwStruct::Dl1Data, w),
                r.timeline->windowAvf(HwStruct::Dl1Tag, w));
        }
    }
    return 0;
}

int
mergeJournalsMain(int argc, char **argv)
{
    std::string out_path;
    std::vector<std::string> inputs;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--out") {
            if (i + 1 >= argc)
                die("--out needs a file name");
            out_path = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            die("unknown merge-journals option: " + arg);
        } else {
            inputs.push_back(arg);
        }
    }
    if (out_path.empty())
        die("merge-journals needs --out FILE");
    if (inputs.empty())
        die("merge-journals needs at least one input journal");

    // CRC-verify every input before merging: silently folding a corrupt
    // shard into a resume journal would launder bad bytes into results.
    std::vector<std::string> corruption;
    std::size_t n = mergeJournals(inputs, out_path, &corruption);
    if (!corruption.empty()) {
        std::fprintf(stderr,
                     "smtavf_cli: refusing to merge: %zu corrupt "
                     "record%s\n",
                     corruption.size(), corruption.size() == 1 ? "" : "s");
        for (const auto &c : corruption)
            std::fprintf(stderr, "  %s\n", c.c_str());
        std::fprintf(stderr,
                     "repair damaged tails with: smtavf_cli journal fsck "
                     "--repair FILE\n");
        return 3;
    }
    std::printf("merged %zu journal%s into %s: %zu unique run%s\n",
                inputs.size(), inputs.size() == 1 ? "" : "s",
                out_path.c_str(), n, n == 1 ? "" : "s");
    return 0;
}

int
journalFsckMain(int argc, char **argv)
{
    bool repair = false;
    std::string path;
    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--repair") {
            repair = true;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            die("unknown journal fsck option: " + arg);
        } else if (path.empty()) {
            path = arg;
        } else {
            die("journal fsck checks exactly one journal");
        }
    }
    if (path.empty())
        die("journal fsck needs a journal file");

    JournalFsck fsck = fsckJournal(path);
    std::printf("%s: %zu run record%s, %zu comment line%s\n", path.c_str(),
                fsck.records, fsck.records == 1 ? "" : "s", fsck.comments,
                fsck.comments == 1 ? "" : "s");
    if (fsck.clean()) {
        std::printf("journal is clean\n");
        return 0;
    }
    for (const auto &iss : fsck.issues)
        std::printf("  line %zu @ byte %llu: %s\n", iss.line,
                    static_cast<unsigned long long>(iss.offset),
                    iss.reason.c_str());
    if (!fsck.tailOnly) {
        std::printf("damage is not confined to the tail; --repair cannot "
                    "fix this journal\n");
        return 3;
    }
    if (!repair) {
        std::printf("damaged tail (crash mid-append); rerun with --repair "
                    "to truncate at byte %llu\n",
                    static_cast<unsigned long long>(fsck.truncateOffset));
        return 3;
    }
    if (!repairJournalTail(path, fsck))
        die("failed to truncate " + path);
    std::printf("truncated damaged tail at byte %llu; %zu intact "
                "record%s kept\n",
                static_cast<unsigned long long>(fsck.truncateOffset),
                fsck.records, fsck.records == 1 ? "" : "s");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Redirect fatal/panic into exceptions so a config mistake deep in
    // construction surfaces as a clean message + exit code instead of
    // std::exit mid-library. runTolerant() installs its own redirect for
    // campaign workers; this one covers single-run mode.
    setLoggingThrows(true);
    try {
        if (argc > 1 && std::strcmp(argv[1], "campaign") == 0)
            return campaignMain(argc, argv);
        if (argc > 1 && std::strcmp(argv[1], "protect") == 0)
            return protectMain(argc, argv);
        if (argc > 1 && std::strcmp(argv[1], "merge-journals") == 0)
            return mergeJournalsMain(argc, argv);
        if (argc > 1 && std::strcmp(argv[1], "journal") == 0) {
            if (argc > 2 && std::strcmp(argv[2], "fsck") == 0)
                return journalFsckMain(argc, argv);
            usage();
            die("unknown journal subcommand (try: journal fsck FILE)");
        }
        // `run` is an explicit alias of the default single-run mode, so
        // checkpoint examples read naturally: smtavf_cli run --restore F.
        if (argc > 1 && std::strcmp(argv[1], "run") == 0)
            return singleMain(argc - 1, argv + 1);
        return singleMain(argc, argv);
    } catch (const LivelockError &e) {
        std::fprintf(stderr, "smtavf_cli: %s\n", e.what());
        return 1;
    } catch (const SimulationError &e) {
        std::fprintf(stderr, "smtavf_cli: %s\n", e.what());
        return 1;
    } catch (const CheckpointError &e) {
        // Corrupt, truncated, or configuration-incompatible checkpoint:
        // a distinct exit code so scripted restore flows can tell "bad
        // checkpoint" from "bad flags" or "sim blew up".
        std::fprintf(stderr, "smtavf_cli: %s\n", e.what());
        return 4;
    } catch (const SimError &e) {
        // SMTAVF_FATAL/PANIC: configuration or usage problem.
        std::fprintf(stderr, "smtavf_cli: %s\n", e.message.c_str());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "smtavf_cli: unexpected error: %s\n", e.what());
        return 1;
    }
}
