/**
 * @file
 * Validation: statistical fault injection vs. ACE analysis (the
 * complementary methodology of the paper's Sections 2 and 6).
 *
 * For each 4-context workload type: the first-level dynamic dead fraction
 * the AVF model uses, and the masked/corruption rates an architectural
 * taint-propagation injection campaign measures over the same run's
 * commit trace. Injection masking must upper-bound FDD deadness (it also
 * catches transitively dead chains); the gap quantifies the conservatism
 * of first-level-only analysis.
 *
 * Doubly parallel: the trace-producing simulations run as one campaign,
 * and each injection campaign fans its (embarrassingly parallel) trials
 * over the same pool with per-trial split seeds, so the verdict counts
 * are identical for every SMTAVF_JOBS setting.
 */

#include <chrono>
#include <cstdio>

#include "avf/injection.hh"
#include "bench_util.hh"

int
main()
{
    using namespace smtavf;
    using namespace smtavf::bench;

    banner("Validation: fault injection vs. ACE/dead-code analysis "
           "(4 contexts)");

    const std::uint64_t trials = 4000 * benchScale();

    CampaignRunner pool;
    auto t0 = std::chrono::steady_clock::now();

    // Stage 1: every traced mix of every type, one campaign.
    std::vector<Experiment> exps;
    std::vector<std::size_t> type_begin;
    for (auto type : mixTypes()) {
        type_begin.push_back(exps.size());
        for (const auto &mix : mixesOf(4, type)) {
            Experiment e = makeExperiment(mix, FetchPolicyKind::Icount);
            e.cfg.recordCommitTrace = true;
            exps.push_back(std::move(e));
        }
    }
    type_begin.push_back(exps.size());
    auto runs = pool.run(exps);

    // Stage 2: per-run injection campaigns, trials fanned over the pool.
    TextTable t({"workload", "FDD dead", "injection masked",
                 "injection corrupted", "transitive gap"});
    for (std::size_t ti = 0; ti < mixTypes().size(); ++ti) {
        auto type = mixTypes()[ti];
        std::size_t begin = type_begin[ti], end = type_begin[ti + 1];
        double n = static_cast<double>(end - begin);
        double fdd = 0, masked = 0, corrupted = 0;
        for (std::size_t i = begin; i < end; ++i) {
            const auto &r = runs[i];
            InjectionCampaign campaign(*r.commitTrace);
            auto res = runInjection(pool, campaign, trials,
                                    exps[i].cfg.seed);
            fdd += r.stats.get("deadCode.fraction") / n;
            masked += res.maskedRate() / n;
            corrupted += res.corruptionRate() / n;
        }
        t.addRow({mixTypeName(type), TextTable::pct(fdd, 1),
                  TextTable::pct(masked, 1), TextTable::pct(corrupted, 1),
                  TextTable::pct(masked - fdd, 1)});
    }
    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    campaignNote(pool, exps.size(), dt.count());

    std::fputs(t.str().c_str(), stdout);
    std::puts("\n(masked >= FDD dead by construction; the gap is the "
              "transitively-dead work first-level analysis cannot see)");
    return 0;
}
