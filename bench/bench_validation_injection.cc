/**
 * @file
 * Validation: statistical fault injection vs. ACE analysis (the
 * complementary methodology of the paper's Sections 2 and 6).
 *
 * For each 4-context workload type: the first-level dynamic dead fraction
 * the AVF model uses, and the masked/corruption rates an architectural
 * taint-propagation injection campaign measures over the same run's
 * commit trace. Injection masking must upper-bound FDD deadness (it also
 * catches transitively dead chains); the gap quantifies the conservatism
 * of first-level-only analysis.
 */

#include <cstdio>

#include "avf/injection.hh"
#include "bench_util.hh"

int
main()
{
    using namespace smtavf;
    using namespace smtavf::bench;

    banner("Validation: fault injection vs. ACE/dead-code analysis "
           "(4 contexts)");

    const std::uint64_t trials = 4000 * benchScale();

    TextTable t({"workload", "FDD dead", "injection masked",
                 "injection corrupted", "transitive gap"});
    for (auto type : mixTypes()) {
        auto mixes = mixesOf(4, type);
        double fdd = 0, masked = 0, corrupted = 0;
        for (const auto &mix : mixes) {
            auto cfg = table1Config(4);
            cfg.recordCommitTrace = true;
            auto r = runMix(cfg, mix, 0);
            InjectionCampaign campaign(*r.commitTrace);
            auto res = campaign.run(trials, cfg.seed);
            fdd += r.stats.get("deadCode.fraction") / mixes.size();
            masked += res.maskedRate() / mixes.size();
            corrupted += res.corruptionRate() / mixes.size();
        }
        t.addRow({mixTypeName(type), TextTable::pct(fdd, 1),
                  TextTable::pct(masked, 1), TextTable::pct(corrupted, 1),
                  TextTable::pct(masked - fdd, 1)});
    }
    std::fputs(t.str().c_str(), stdout);
    std::puts("\n(masked >= FDD dead by construction; the gap is the "
              "transitively-dead work first-level analysis cannot see)");
    return 0;
}
