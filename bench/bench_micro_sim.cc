/**
 * @file
 * Google-benchmark microbenchmarks of the simulator substrate itself:
 * stream generation, cache access, predictor throughput, and end-to-end
 * simulated instructions per second at each context count.
 */

#include <benchmark/benchmark.h>

#include "branch/predictor.hh"
#include "mem/cache.hh"
#include "sim/simulator.hh"

namespace
{

using namespace smtavf;

void
BM_StreamGeneration(benchmark::State &state)
{
    StreamGenerator gen(findProfile("gcc"), 1, 0);
    std::uint64_t idx = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.at(idx));
        gen.retireBelow(idx);
        ++idx;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(idx));
}
BENCHMARK(BM_StreamGeneration);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache({"dl1", 64 * 1024, 4, 64, 1, 2});
    Addr addr = 0;
    Cycle now = 0;
    for (auto _ : state) {
        ++now;
        addr = (addr + 64) % (128 * 1024);
        if (!cache.access(addr, 4, false, 0, now))
            cache.fill(addr, 0, now);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(now));
}
BENCHMARK(BM_CacheAccess);

void
BM_BranchPrediction(benchmark::State &state)
{
    ThreadPredictor pred(BranchConfig{});
    StreamGenerator gen(findProfile("gcc"), 1, 0);
    std::uint64_t idx = 0;
    std::int64_t branches = 0;
    for (auto _ : state) {
        DynInstr in = gen.at(idx);
        gen.retireBelow(idx);
        ++idx;
        if (in.isBranch()) {
            pred.predict(in);
            pred.train(in);
            ++branches;
        }
    }
    state.SetItemsProcessed(branches);
}
BENCHMARK(BM_BranchPrediction);

void
BM_SimulatedInstructions(benchmark::State &state)
{
    auto contexts = static_cast<unsigned>(state.range(0));
    std::int64_t total = 0;
    for (auto _ : state) {
        WorkloadMix mix;
        mix.name = "bench";
        mix.contexts = contexts;
        mix.type = MixType::Mix;
        mix.group = 'A';
        const char *names[] = {"eon", "twolf", "mesa", "vpr",
                               "gcc", "swim", "bzip2", "mcf"};
        for (unsigned i = 0; i < contexts; ++i)
            mix.benchmarks.push_back(names[i]);
        MachineConfig cfg;
        cfg.contexts = contexts;
        Simulator sim(cfg, mix);
        auto r = sim.run(5000 * contexts);
        total += static_cast<std::int64_t>(r.totalCommitted);
    }
    state.SetItemsProcessed(total);
    state.SetLabel("committed instructions");
}
BENCHMARK(BM_SimulatedInstructions)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
