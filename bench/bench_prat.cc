/**
 * @file
 * PRAT acceptance gate: protection-aware throttling must turn deployed
 * protection into throughput without giving the reliability back.
 *
 * On the 4-context memory-bound mix with the IQ and ROB under SECDED,
 * RAT keeps throttling threads for ACE bits the ECC already covers.
 * PRAT re-prices the same gate by residual exposure: with an aggressive
 * exposure cap (12 correct-path instruction-equivalents) it gates
 * LSQ/regfile-heavy threads *earlier* than RAT's population cap of 48
 * while letting SECDED-covered occupancy run — and lands strictly better
 * on both axes. The gate (exit 1 on regression):
 *
 *   1. PRAT total IPC >= RAT total IPC            (throughput)
 *   2. PRAT bit-weighted residual SER <= RAT's    (reliability)
 *   3. with nothing protected, PRAT's journal record is byte-identical
 *      to RAT's (policy name masked): the whole mechanism provably
 *      vanishes when there is no protection to price.
 *
 * Everything is deterministic — fixed mix, seed, budget and caps — so
 * the comparisons are exact, not statistical. Wall-clock goes to stderr.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.hh"
#include "protect/cost.hh"
#include "protect/scheme.hh"
#include "sim/journal.hh"

int
main()
{
    using namespace smtavf;
    using namespace smtavf::bench;

    banner("PRAT vs RAT: protection-aware throttling gate "
           "(4ctx-mem-A, IQ+ROB SECDED)");

    // The tuned gate point. Pinned rather than SMTAVF_SCALE-scaled: the
    // PASS thresholds below are exact deterministic measurements at this
    // budget, and a scaled budget would move them.
    constexpr std::uint64_t kBudget = 400000;
    constexpr std::uint32_t kPratCap = 12;

    const auto &mix = findMix("4ctx-mem-A");
    auto base = table1Config(mix.contexts);
    base.seed = 1;

    ProtectionConfig prot;
    std::string perr;
    if (!parseAssignment("iq=secded,rob=secded", prot, perr)) {
        std::fprintf(stderr, "bad assignment: %s\n", perr.c_str());
        return 1;
    }

    auto experiment = [&](FetchPolicyKind policy, std::uint32_t cap,
                          bool protect, const char *label) {
        Experiment e;
        e.label = label;
        e.cfg = base;
        e.cfg.fetchPolicy = policy;
        e.cfg.pratCap = cap;
        if (protect)
            e.cfg.protection = prot;
        e.mix = mix;
        e.budget = kBudget;
        return e;
    };

    // The bare pair shares the derived default cap (0 = 2 x a fair IQ
    // share = 48 at 4 contexts): byte-identity is a statement about the
    // weighting vanishing, so the caps must agree.
    std::vector<Experiment> exps = {
        experiment(FetchPolicyKind::Rat, 0, true, "rat/protected"),
        experiment(FetchPolicyKind::PRat, kPratCap, true, "prat/protected"),
        experiment(FetchPolicyKind::Rat, 0, false, "rat/bare"),
        experiment(FetchPolicyKind::PRat, 0, false, "prat/bare"),
    };

    CampaignRunner pool;
    auto t0 = std::chrono::steady_clock::now();
    auto results = pool.run(exps);
    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    std::fprintf(stderr,
                 "(campaign: %zu runs on %u workers in %.2fs; set "
                 "SMTAVF_JOBS to change the pool)\n",
                 results.size(), pool.jobs(), dt.count());

    const SimResult &rat = results[0];
    const SimResult &prat = results[1];

    const auto bits = structureBitCapacities(base);
    double rat_ser = serProxy(rat.avf, bits, /*residual=*/true);
    double prat_ser = serProxy(prat.avf, bits, /*residual=*/true);

    TextTable t({"policy", "cap", "ipc", "residual SER"});
    t.addRow({"RAT", "48", TextTable::num(rat.ipc, 6),
              TextTable::num(rat_ser, 6)});
    t.addRow({"PRAT", std::to_string(kPratCap),
              TextTable::num(prat.ipc, 6), TextTable::num(prat_ser, 6)});
    std::fputs(t.str().c_str(), stdout);

    bool ok = true;
    if (prat.ipc >= rat.ipc) {
        std::printf("\nPASS: PRAT ipc %.6f >= RAT ipc %.6f (+%.2f%%)\n",
                    prat.ipc, rat.ipc, 100.0 * (prat.ipc / rat.ipc - 1.0));
    } else {
        std::printf("\nFAIL: PRAT ipc %.6f < RAT ipc %.6f\n", prat.ipc,
                    rat.ipc);
        ok = false;
    }
    if (prat_ser <= rat_ser) {
        std::printf("PASS: PRAT residual SER %.6f <= RAT %.6f (%.2f%%)\n",
                    prat_ser, rat_ser, 100.0 * (prat_ser / rat_ser - 1.0));
    } else {
        std::printf("FAIL: PRAT residual SER %.6f > RAT %.6f\n", prat_ser,
                    rat_ser);
        ok = false;
    }

    // With nothing protected every PRAT weight is exactly 256/256, so the
    // run must be bit-identical to RAT's — compared at the journal wire
    // level (CRC'd `run v3` records) with the policy-name token masked,
    // since that is the one field that legitimately differs.
    SimResult bare_rat = results[2];
    SimResult bare_prat = results[3];
    bare_prat.policyName = bare_rat.policyName;
    std::string rec_rat = serializeRun(0, bare_rat);
    std::string rec_prat = serializeRun(0, bare_prat);
    if (rec_rat == rec_prat) {
        std::printf("PASS: all-none journal records byte-identical "
                    "(%zu bytes)\n",
                    rec_rat.size());
    } else {
        std::printf("FAIL: all-none journal records differ (%zu vs %zu "
                    "bytes)\n",
                    rec_rat.size(), rec_prat.size());
        ok = false;
    }

    std::printf("\ntakeaway: once the IQ and ROB are under SECDED, RAT's "
                "population cap\nthrottles covered bits; PRAT prices the "
                "gate in residual exposure and\nconverts the same "
                "protection into throughput at lower residual SER.\n");
    return ok ? 0 : 1;
}
