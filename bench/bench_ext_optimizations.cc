/**
 * @file
 * Extension study: the paper's Section-5 thread-aware reliability
 * optimization proposals, implemented and evaluated against the studied
 * policies on the 4-context workloads:
 *
 *  - PSTALL: STALL driven by an L2-miss predictor at fetch;
 *  - RAT: reliability-aware fetch throttling on the in-flight
 *    correct-path (ACE) population;
 *  - static IQ partitioning (ICOUNT + a per-thread IQ cap).
 *
 * Reported per policy: IQ/ROB AVF, throughput, harmonic weighted IPC
 * (fairness) and the IQ reliability-efficiency ratio vs ICOUNT.
 */

#include <cstdio>

#include "bench_util.hh"
#include "metrics/metrics.hh"

namespace
{

using namespace smtavf;
using namespace smtavf::bench;

struct Variant
{
    const char *name;
    FetchPolicyKind policy;
    bool iqPartitioned;
};

const Variant variants[] = {
    {"ICOUNT", FetchPolicyKind::Icount, false},
    {"STALL", FetchPolicyKind::Stall, false},
    {"FLUSH", FetchPolicyKind::Flush, false},
    {"PSTALL (S5)", FetchPolicyKind::PStall, false},
    {"RAT (S5)", FetchPolicyKind::Rat, false},
    {"ICOUNT+IQpart (S5)", FetchPolicyKind::Icount, true},
};

} // namespace

int
main()
{
    banner("Section-5 extensions: thread-aware reliability optimizations "
           "(4 contexts)");

    for (auto type : mixTypes()) {
        std::printf("-- %s workloads --\n", mixTypeName(type));
        TextTable t({"policy", "IQ AVF", "ROB AVF", "IPC", "harmonicWIPC",
                     "IQ (IPC/AVF) vs ICOUNT"});

        double base_eff = 0.0;
        for (const auto &v : variants) {
            auto mixes = mixesOf(4, type);
            double iq = 0, rob = 0, ipc = 0, hw = 0;
            for (const auto &mix : mixes) {
                auto cfg = table1Config(4);
                cfg.fetchPolicy = v.policy;
                cfg.iqPartitioned = v.iqPartitioned;
                auto r = runMix(cfg, mix, 0);
                iq += r.avf.avf(HwStruct::IQ) / mixes.size();
                rob += r.avf.avf(HwStruct::ROB) / mixes.size();
                ipc += r.ipc / mixes.size();
                hw += harmonicWeightedIpc(r, singleThreadBaselines(r)) /
                      mixes.size();
            }
            double eff = iq > 0 ? ipc / iq : 0;
            if (base_eff == 0.0)
                base_eff = eff;
            t.addRow({v.name, TextTable::pct(iq, 1),
                      TextTable::pct(rob, 1), TextTable::num(ipc, 2),
                      TextTable::num(hw, 3),
                      TextTable::num(base_eff > 0 ? eff / base_eff : 0,
                                     2)});
        }
        std::fputs(t.str().c_str(), stdout);
        std::puts("");
    }
    return 0;
}
