/**
 * @file
 * Figure 6: microarchitecture AVF under the six fetch policies —
 * (a) 4 contexts, (b) 8 contexts — per workload type.
 *
 * Expected shape: FLUSH slashes IQ/ROB/LSQ AVF (to ~50% of the others on
 * missing workloads) while *raising* FU and DL1 AVF; STALL ~ ICOUNT at 4
 * contexts but effective at 8; FLUSH responds to L2 misses and so beats
 * DG/PDG, which only watch L1 misses.
 */

#include <cstdio>

#include "bench_util.hh"

namespace
{

const smtavf::FetchPolicyKind policies[] = {
    smtavf::FetchPolicyKind::Icount, smtavf::FetchPolicyKind::Flush,
    smtavf::FetchPolicyKind::Stall,  smtavf::FetchPolicyKind::Dg,
    smtavf::FetchPolicyKind::Pdg,    smtavf::FetchPolicyKind::DWarn,
};

void
panel(unsigned contexts)
{
    using namespace smtavf;
    using namespace smtavf::bench;

    std::printf("-- panel: %u contexts --\n", contexts);
    TextTable t(structHeader("workload/policy"));
    for (auto type : mixTypes()) {
        for (auto policy : policies) {
            auto res = runType(contexts, type, policy);
            std::vector<std::string> row = {
                std::string(mixTypeName(type)) + "/" +
                fetchPolicyName(policy)};
            for (auto s : AvfReport::figureStructs())
                row.push_back(TextTable::pct(res.avf[s], 1));
            t.addRow(std::move(row));
        }
    }
    std::fputs(t.str().c_str(), stdout);
    std::puts("");
}

} // namespace

int
main()
{
    smtavf::bench::banner(
        "Figure 6: Microarchitecture AVF under Different Fetch Policies");
    panel(4);
    panel(8);
    return 0;
}
