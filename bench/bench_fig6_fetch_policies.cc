/**
 * @file
 * Figure 6: microarchitecture AVF under the six fetch policies —
 * (a) 4 contexts, (b) 8 contexts — per workload type.
 *
 * Expected shape: FLUSH slashes IQ/ROB/LSQ AVF (to ~50% of the others on
 * missing workloads) while *raising* FU and DL1 AVF; STALL ~ ICOUNT at 4
 * contexts but effective at 8; FLUSH responds to L2 misses and so beats
 * DG/PDG, which only watch L1 misses.
 *
 * Each panel's 18 (type, policy) cells run as one parallel campaign —
 * bit-identical to the former serial loop for any SMTAVF_JOBS setting.
 */

#include <chrono>
#include <cstdio>
#include <tuple>
#include <vector>

#include "bench_util.hh"

namespace
{

const smtavf::FetchPolicyKind policies[] = {
    smtavf::FetchPolicyKind::Icount, smtavf::FetchPolicyKind::Flush,
    smtavf::FetchPolicyKind::Stall,  smtavf::FetchPolicyKind::Dg,
    smtavf::FetchPolicyKind::Pdg,    smtavf::FetchPolicyKind::DWarn,
};

void
panel(smtavf::CampaignRunner &pool, unsigned contexts)
{
    using namespace smtavf;
    using namespace smtavf::bench;

    FigureCampaign fig;
    std::vector<std::tuple<MixType, FetchPolicyKind, std::size_t>> cells;
    for (auto type : mixTypes())
        for (auto policy : policies)
            cells.emplace_back(type, policy,
                               fig.addCell(contexts, type, policy));

    auto t0 = std::chrono::steady_clock::now();
    fig.runAll(pool);
    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;

    std::printf("-- panel: %u contexts --\n", contexts);
    campaignNote(pool, fig.experiments(), dt.count());
    TextTable t(structHeader("workload/policy"));
    for (const auto &[type, policy, cell] : cells) {
        auto res = fig.cell(cell);
        std::vector<std::string> row = {std::string(mixTypeName(type)) +
                                        "/" + fetchPolicyName(policy)};
        for (auto s : AvfReport::figureStructs())
            row.push_back(TextTable::pct(res.avf[s], 1));
        t.addRow(std::move(row));
    }
    std::fputs(t.str().c_str(), stdout);
    std::puts("");
}

} // namespace

int
main()
{
    smtavf::bench::banner(
        "Figure 6: Microarchitecture AVF under Different Fetch Policies");
    smtavf::CampaignRunner pool;
    panel(pool, 4);
    panel(pool, 8);
    return 0;
}
