/**
 * @file
 * Shared-warmup benchmark *and* correctness gate: runs the beam-search
 * protection explorer with per-run warmup vs. one shared warmup
 * checkpoint and reports both wall-clock and the simulated-instruction
 * counts (the honest metric — wall-clock also moves with host load).
 *
 * Before any timing, main() asserts the two contracts the optimization
 * rests on, and exits nonzero if either fails:
 *
 *  1. the explored frontier is *bit-identical* (ExplorationResult::csv()
 *     compares every hexfloat) between the shared and unshared paths;
 *  2. the shared path simulates measurably fewer instructions — at
 *     least (evaluations - 1) x warmup fewer, since every run after the
 *     first skips its warmup prefix.
 *
 * tools/bench.sh runs this binary alongside bench_micro_sim and merges
 * both reports into BENCH_micro.json.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "protect/explorer.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "workload/mixes.hh"

namespace
{

using namespace smtavf;

constexpr std::uint64_t kBudget = 30'000;
constexpr std::uint64_t kWarmup = 20'000;

struct ExploreOutcome
{
    std::string csv;             ///< full result dump, frontier included
    std::uint64_t instrs = 0;    ///< simulated instructions, warmups incl.
    std::uint64_t evaluations = 0;
};

ExploreOutcome
runExplorer(bool shared)
{
    ProtectionExplorer ex(table1Config(2), findMix("2ctx-mix-A"), kBudget,
                          /*max_depth=*/3);
    CampaignRunner pool(4);
    BeamOptions bo;
    bo.beamWidth = 4;
    bo.generations = 2;
    bo.maxStructures = 4;
    bo.warmup = kWarmup;
    bo.sharedWarmup = shared;

    auto &counter = simulatedInstructionCounter();
    counter.store(0);
    ExplorationResult res = ex.exploreBeam(pool, bo);
    ExploreOutcome out;
    out.instrs = counter.load();
    out.csv = res.csv();
    out.evaluations = res.evaluations;
    return out;
}

void
BM_ExplorerWarmup(benchmark::State &state)
{
    const bool shared = state.range(0) != 0;
    std::uint64_t instrs = 0;
    for (auto _ : state)
        instrs = runExplorer(shared).instrs;
    state.counters["simulated_instructions"] =
        benchmark::Counter(static_cast<double>(instrs));
    state.SetLabel(shared ? "shared-warmup" : "per-run-warmup");
}
BENCHMARK(BM_ExplorerWarmup)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/** The gate: bit-identical frontier, provably fewer instructions. */
int
verifySharedWarmup()
{
    ExploreOutcome plain = runExplorer(false);
    ExploreOutcome shared = runExplorer(true);

    if (plain.csv != shared.csv) {
        std::fprintf(stderr,
                     "FAIL: shared-warmup frontier differs from the "
                     "per-run-warmup frontier\n");
        return 1;
    }
    // Unshared: every evaluation (baseline + candidates) warms up.
    // Shared: exactly one warmup is simulated. Require the full saving;
    // the shared path's one warmup plus its drain overshoot is covered
    // by the strict-inequality margin of the unshared total.
    std::uint64_t expected_saving = (plain.evaluations) * kWarmup;
    if (shared.instrs + expected_saving > plain.instrs + kWarmup * 2) {
        std::fprintf(stderr,
                     "FAIL: shared warmup saved too little: unshared=%llu "
                     "shared=%llu evaluations=%llu warmup=%llu\n",
                     static_cast<unsigned long long>(plain.instrs),
                     static_cast<unsigned long long>(shared.instrs),
                     static_cast<unsigned long long>(plain.evaluations),
                     static_cast<unsigned long long>(kWarmup));
        return 1;
    }
    std::fprintf(stderr,
                 "shared-warmup gate: ok (frontier identical; "
                 "instructions %llu -> %llu over %llu evaluations)\n",
                 static_cast<unsigned long long>(plain.instrs),
                 static_cast<unsigned long long>(shared.instrs),
                 static_cast<unsigned long long>(plain.evaluations));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (int rc = verifySharedWarmup())
        return rc;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
