/**
 * @file
 * Figure 8: reliability efficiency under fairness-aware performance
 * metrics — (a) weighted-speedup / AVF and (b) harmonic-mean-of-weighted-
 * IPC / AVF — normalized to ICOUNT, averaged over the 4-context mixes.
 *
 * Expected shape: with weighted speedup, FLUSH's edge over the others
 * shrinks; with harmonic IPC, DWarn becomes the best choice for FU, DL1
 * and the register file, while FLUSH remains best for IQ/ROB/LSQ because
 * its ~50% AVF reduction outweighs its ~16% harmonic-IPC loss.
 */

#include <cstdio>

#include "bench_util.hh"
#include "metrics/metrics.hh"

namespace
{

using namespace smtavf;
using namespace smtavf::bench;

/** Fairness metric of a type's runs, averaged over groups. */
double
meanMetric(const TypeResult &res, bool harmonic)
{
    double sum = 0;
    for (const auto &r : res.runs) {
        auto st = singleThreadBaselines(r);
        sum += harmonic ? harmonicWeightedIpc(r, st)
                        : weightedSpeedup(r, st);
    }
    return sum / static_cast<double>(res.runs.size());
}

void
panel(const char *title, bool harmonic)
{
    const FetchPolicyKind advanced[] = {
        FetchPolicyKind::Flush, FetchPolicyKind::Stall,
        FetchPolicyKind::Dg, FetchPolicyKind::Pdg, FetchPolicyKind::DWarn};

    std::printf("-- panel: %s / AVF, normalized to ICOUNT (4 contexts) "
                "--\n",
                title);
    TextTable t(structHeader("workload/policy"));
    for (auto type : mixTypes()) {
        auto base = runType(4, type, FetchPolicyKind::Icount);
        double base_metric = meanMetric(base, harmonic);
        for (auto policy : advanced) {
            auto res = runType(4, type, policy);
            double metric = meanMetric(res, harmonic);
            std::vector<std::string> row = {
                std::string(mixTypeName(type)) + "/" +
                fetchPolicyName(policy)};
            for (auto s : AvfReport::figureStructs()) {
                double base_eff = base.avf.at(s) > 0
                                      ? base_metric / base.avf.at(s)
                                      : 0;
                double eff =
                    res.avf.at(s) > 0 ? metric / res.avf.at(s) : 0;
                row.push_back(base_eff > 0
                                  ? TextTable::num(eff / base_eff, 2)
                                  : "-");
            }
            t.addRow(std::move(row));
        }
    }
    std::fputs(t.str().c_str(), stdout);
    std::puts("");
}

} // namespace

int
main()
{
    banner("Figure 8: Reliability Efficiency with Fairness-Aware Metrics");
    panel("weighted speedup", false);
    panel("harmonic mean of weighted IPC", true);
    return 0;
}
