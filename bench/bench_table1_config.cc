/**
 * @file
 * Table 1: the simulated machine configuration.
 */

#include <cstdio>

#include "sim/config.hh"
#include "sim/experiment.hh"

int
main()
{
    using namespace smtavf;
    std::puts("== Table 1: Simulated Machine Configuration ==");
    std::fputs(table1String(table1Config(4)).c_str(), stdout);
    return 0;
}
