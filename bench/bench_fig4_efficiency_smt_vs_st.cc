/**
 * @file
 * Figure 4: per-thread reliability efficiency (IPC/AVF), SMT vs
 * single-thread execution.
 *
 * Expected shape (paper Section 4.1): FU efficiency is essentially equal
 * between modes (the metric cancels execution time); the IQ favours ST on
 * CPU mixes and SMT on MEM mixes; overall SMT wins everywhere except the
 * IQ on CPU workloads.
 *
 * The three SMT runs execute as one campaign, then each mix's four
 * single-thread baseline replays fan out over the same worker pool.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace smtavf;
    using namespace smtavf::bench;

    banner("Figure 4: Reliability Efficiency IPC/AVF, SMT vs "
           "Single-Thread");

    const std::uint64_t budget = defaultBudget(4);
    auto cfg = table1Config(4);

    auto ratio = [](double ipc, double avf) {
        return avf > 0 ? TextTable::num(ipc / avf, 1) : std::string("-");
    };

    CampaignRunner pool;
    std::vector<Experiment> smt_exps;
    for (auto type : mixTypes()) {
        Experiment e = makeExperiment(fig3Mix(type), cfg.fetchPolicy,
                                      budget);
        e.cfg = cfg;
        smt_exps.push_back(std::move(e));
    }
    auto smt_runs = pool.run(smt_exps);

    for (std::size_t ti = 0; ti < mixTypes().size(); ++ti) {
        auto type = mixTypes()[ti];
        const auto &mix = fig3Mix(type);
        const auto &smt = smt_runs[ti];
        auto baselines = runSingleThreadBaselines(pool, cfg, mix, smt);

        std::printf("-- %s workload (%s) --\n", mixTypeName(type),
                    mix.name.c_str());
        TextTable t({"thread", "IQ_ST", "FU_ST", "ROB_ST", "IQ_SMT",
                     "FU_SMT", "ROB_SMT"});
        double st_ipc_w = 0, st_iq_w = 0, st_fu_w = 0, st_rob_w = 0;
        for (ThreadId tid = 0; tid < 4; ++tid) {
            const auto &st = baselines[tid];
            double share =
                static_cast<double>(smt.threads[tid].committed) /
                smt.totalCommitted;
            st_ipc_w += st.ipc * share;
            st_iq_w += st.avf.avf(HwStruct::IQ) * share;
            st_fu_w += st.avf.avf(HwStruct::FU) * share;
            st_rob_w += st.avf.avf(HwStruct::ROB) * share;
            t.addRow({mix.benchmarks[tid],
                      ratio(st.ipc, st.avf.avf(HwStruct::IQ)),
                      ratio(st.ipc, st.avf.avf(HwStruct::FU)),
                      ratio(st.ipc, st.avf.avf(HwStruct::ROB)),
                      ratio(smt.threads[tid].ipc,
                            smt.avf.threadAvf(HwStruct::IQ, tid)),
                      ratio(smt.threads[tid].ipc,
                            smt.avf.threadAvf(HwStruct::FU, tid)),
                      ratio(smt.threads[tid].ipc,
                            smt.avf.threadAvf(HwStruct::ROB, tid))});
        }
        t.addRow({"all(weighted ST / SMT)", ratio(st_ipc_w, st_iq_w),
                  ratio(st_ipc_w, st_fu_w), ratio(st_ipc_w, st_rob_w),
                  ratio(smt.ipc, smt.avf.avf(HwStruct::IQ)),
                  ratio(smt.ipc, smt.avf.avf(HwStruct::FU)),
                  ratio(smt.ipc, smt.avf.avf(HwStruct::ROB))});
        std::fputs(t.str().c_str(), stdout);
        std::puts("");
    }
    return 0;
}
