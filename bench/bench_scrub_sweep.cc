/**
 * @file
 * Scrub-interval sensitivity study (ROADMAP open item): sweep the
 * SECDED+scrub interval across decades and emit residual SER vs. sweep
 * energy as CSV. Shorter intervals truncate each bit's vulnerability
 * window sooner (lower residual SER) but sweep — and burn — more often
 * (the 100/interval term in energyOverheadFactor), so the two columns
 * move in opposite directions and the CSV is the trade-off curve.
 *
 * Every interval re-runs the same mix with the same seed, so the raw
 * (unprotected) SER column is constant across rows — a built-in sanity
 * check that protection bookkeeping never perturbs the simulation.
 * Runs go through the campaign pool and the CSV is bit-identical for
 * any SMTAVF_JOBS value; wall-clock timing goes to stderr.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "protect/cost.hh"

int
main()
{
    using namespace smtavf;
    using namespace smtavf::bench;

    banner("Scrub-Interval Sensitivity: residual SER vs. sweep energy "
           "(4ctx-mix-A, ICOUNT, uniform SECDED+scrub)");

    const std::vector<Cycle> intervals = {100, 1000, 10000, 100000,
                                          1000000};

    const auto &mix = findMix("4ctx-mix-A");
    std::vector<Experiment> exps;
    for (Cycle interval : intervals) {
        Experiment e = makeExperiment(mix, FetchPolicyKind::Icount);
        e.cfg.protection =
            uniformProtection(ProtScheme::SecdedScrub, interval);
        e.label = "scrub-" + std::to_string(interval);
        exps.push_back(std::move(e));
    }

    CampaignRunner pool;
    auto t0 = std::chrono::steady_clock::now();
    auto results = pool.run(exps);
    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    std::fprintf(stderr,
                 "(campaign: %zu runs on %u workers in %.2fs; set "
                 "SMTAVF_JOBS to change the pool)\n",
                 results.size(), pool.jobs(), dt.count());

    // One bit-capacity table serves every row: the sweep only varies the
    // scrub interval, never the machine geometry.
    const auto bits = structureBitCapacities(exps.front().cfg);

    std::puts("scrub_interval,raw_ser,residual_ser,avoided_frac,"
              "sweep_energy_factor,energy_overhead,area_overhead");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const auto &cfg = exps[i].cfg;
        double raw = serProxy(r.avf, bits, /*residual=*/false);
        double residual = serProxy(r.avf, bits, /*residual=*/true);
        double avoided = raw > 0.0 ? 1.0 - residual / raw : 0.0;
        // The interval-dependent slice of the energy factor: what the
        // scrub FSM's sweeps cost on top of static SECDED logic.
        double sweep = energyOverheadFactor(ProtScheme::SecdedScrub,
                                            intervals[i]) -
                       energyOverheadFactor(ProtScheme::Secded,
                                            intervals[i]);
        ProtectionCost cost = protectionCost(cfg);
        std::printf("%llu,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
                    static_cast<unsigned long long>(intervals[i]), raw,
                    residual, avoided, sweep, cost.energyOverhead,
                    cost.areaOverhead);
    }

    // Monotonicity of the trade-off: longer intervals may only raise
    // residual SER and may only lower the energy bill.
    bool monotone = true;
    for (std::size_t i = 1; i < results.size(); ++i) {
        double prev = serProxy(results[i - 1].avf, bits, true);
        double cur = serProxy(results[i].avf, bits, true);
        double eprev = protectionCost(exps[i - 1].cfg).energyOverhead;
        double ecur = protectionCost(exps[i].cfg).energyOverhead;
        if (cur < prev || ecur > eprev)
            monotone = false;
    }
    std::printf("\ntrade-off monotone across decades: %s\n",
                monotone ? "yes" : "NO");

    std::puts("\ntakeaway: scrubbing buys residual-SER reduction with "
              "energy, not area --\nthe knee of the curve is where another "
              "decade of sweep frequency stops\npaying for itself.");
    return monotone ? 0 : 1;
}
