/**
 * @file
 * The paper's Section-3 workload-construction step: characterize each
 * benchmark alone (IPC, cache miss rates, branch prediction) and derive
 * its CPU-intensive / memory-intensive classification — the basis of the
 * Table-2 mixes. Each row also shows the class the profile database
 * declares, so drift between calibration and classification is visible.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace smtavf;
    using namespace smtavf::bench;

    banner("Benchmark characterization (single-thread, Table-1 machine)");

    TextTable t({"benchmark", "class", "IPC", "DL1 miss", "L2 miss",
                 "DTLB miss", "bpred miss", "dead"});
    for (const auto &p : allProfiles()) {
        WorkloadMix solo{"char-" + p.name, 1,
                         p.category == BenchClass::Cpu ? MixType::Cpu
                                                       : MixType::Mem,
                         'A',
                         {p.name}};
        auto r = runMix(solo, FetchPolicyKind::Icount, defaultBudget(1));
        t.addRow({p.name, p.category == BenchClass::Cpu ? "CPU" : "MEM",
                  TextTable::num(r.ipc, 2),
                  TextTable::pct(r.stats.get("dl1.missRate"), 1),
                  TextTable::pct(r.stats.get("l2.missRate"), 1),
                  TextTable::pct(r.stats.get("dtlb.missRate"), 1),
                  TextTable::pct(r.stats.get("branch.mispredictRate"), 1),
                  TextTable::pct(r.stats.get("deadCode.fraction"), 1)});
    }
    std::fputs(t.str().c_str(), stdout);
    return 0;
}
