/**
 * @file
 * Ablation study of the AVF-model refinements DESIGN.md calls out:
 *
 *  1. deferred dynamic dead-code analysis (off => dead results ACE)
 *  2. wrong-path modelling (off => no junk occupancy past mispredicts)
 *  3. per-byte DL1 data liveness (off => whole-line granularity)
 *  4. register allocate-to-writeback un-ACE window (off => ACE)
 *
 * Each row shows the AVF change when one refinement is removed from the
 * full model, on the 4-context MIX workload.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace smtavf;
    using namespace smtavf::bench;

    banner("Ablation: AVF-model refinements (4-context MIX workload)");

    const auto &mix = findMix("4ctx-mix-A");
    const std::uint64_t budget = defaultBudget(4);

    struct Variant
    {
        const char *name;
        void (*tweak)(AvfOptions &);
    };
    const Variant variants[] = {
        {"full model", [](AvfOptions &) {}},
        {"no dead-code analysis",
         [](AvfOptions &o) { o.deadCodeAnalysis = false; }},
        {"no wrong-path model",
         [](AvfOptions &o) { o.wrongPathModel = false; }},
        {"per-line DL1 tracking",
         [](AvfOptions &o) { o.perByteCacheAvf = false; }},
        {"alloc window counts ACE",
         [](AvfOptions &o) { o.regAllocWindowUnace = false; }},
    };

    TextTable t(structHeader("variant"));
    for (const auto &v : variants) {
        auto cfg = table1Config(4);
        v.tweak(cfg.avf);
        auto r = runMix(cfg, mix, budget);
        std::vector<std::string> row = {v.name};
        for (auto s : AvfReport::figureStructs())
            row.push_back(TextTable::pct(r.avf.avf(s), 1));
        t.addRow(std::move(row));
    }
    std::fputs(t.str().c_str(), stdout);
    return 0;
}
