/**
 * @file
 * Figure 5: microarchitecture vulnerability vs the number of hardware
 * contexts (2, 4, 8), per workload type, two panels: shared pipeline
 * structures (IQ, FU, ROB, Reg) and memory structures (LSQ/DL1 tag+data).
 *
 * Expected shape: IQ AVF rises steadily with contexts; RegFile AVF rises
 * 2->4 and flattens; DL1-data AVF falls with contexts on MEM workloads;
 * FU AVF is non-monotonic on CPU (up 2->4, down at 8 as contention
 * stretches execution).
 *
 * All (type, contexts) cells run as one parallel campaign (bit-identical
 * to the former serial loop; SMTAVF_JOBS sets the worker count).
 */

#include <chrono>
#include <cstdio>
#include <tuple>
#include <vector>

#include "bench_util.hh"

int
main()
{
    using namespace smtavf;
    using namespace smtavf::bench;

    banner("Figure 5: Microarchitecture Vulnerability vs Number of "
           "Contexts");

    const unsigned context_counts[] = {2, 4, 8};

    FigureCampaign fig;
    std::vector<std::tuple<MixType, unsigned, std::size_t>> cells;
    for (auto type : mixTypes())
        for (unsigned ctx : context_counts)
            cells.emplace_back(type, ctx,
                               fig.addCell(ctx, type,
                                           FetchPolicyKind::Icount));

    CampaignRunner pool;
    auto t0 = std::chrono::steady_clock::now();
    fig.runAll(pool);
    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    campaignNote(pool, fig.experiments(), dt.count());

    std::puts("-- panel (a): pipeline structures --");
    TextTable a({"workload", "ctx", "IQ", "FU", "ROB", "Reg"});
    std::puts("-- panel (b): memory structures -- (printed after panel a)");
    TextTable b({"workload", "ctx", "LSQ_tag", "DL1_tag", "LSQ_data",
                 "DL1_data"});

    for (const auto &[type, ctx, cell] : cells) {
        auto res = fig.cell(cell);
        a.addRow({mixTypeName(type), std::to_string(ctx),
                  TextTable::pct(res.avf[HwStruct::IQ], 1),
                  TextTable::pct(res.avf[HwStruct::FU], 1),
                  TextTable::pct(res.avf[HwStruct::ROB], 1),
                  TextTable::pct(res.avf[HwStruct::RegFile], 1)});
        b.addRow({mixTypeName(type), std::to_string(ctx),
                  TextTable::pct(res.avf[HwStruct::LsqTag], 1),
                  TextTable::pct(res.avf[HwStruct::Dl1Tag], 1),
                  TextTable::pct(res.avf[HwStruct::LsqData], 1),
                  TextTable::pct(res.avf[HwStruct::Dl1Data], 1)});
    }
    std::fputs(a.str().c_str(), stdout);
    std::puts("");
    std::fputs(b.str().c_str(), stdout);
    return 0;
}
