/**
 * @file
 * Figure 2: microarchitecture reliability efficiency, measured as IPC/AVF
 * (proportional to MITF), per structure, 4 contexts.
 *
 * Expected shape: CPU-bound workloads achieve the highest reliability
 * efficiency everywhere — more work completes between failures.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace smtavf;
    using namespace smtavf::bench;

    banner("Figure 2: Reliability Efficiency IPC/AVF (4 contexts)");

    TextTable t(structHeader("workload"));
    for (auto type : mixTypes()) {
        auto res = runType(4, type, FetchPolicyKind::Icount);
        std::vector<std::string> row = {mixTypeName(type)};
        for (auto s : AvfReport::figureStructs()) {
            double avf = res.avf[s];
            row.push_back(avf > 0 ? TextTable::num(res.ipc / avf, 1)
                                  : "-");
        }
        t.addRow(std::move(row));
    }
    std::fputs(t.str().c_str(), stdout);
    return 0;
}
