/**
 * @file
 * Figure 3: per-thread microarchitecture vulnerability, SMT execution vs
 * single-thread (superscalar) execution of the same work.
 *
 * Methodology (paper Section 4.1): run the 4-context mix, record each
 * thread's committed instruction count, then replay exactly that stream
 * for exactly that many instructions on a 1-context machine. Expected
 * shape: each thread's stand-alone IQ/FU/ROB AVF exceeds its contribution
 * inside SMT, while the aggregate SMT AVF exceeds the work-weighted
 * sequential AVF.
 *
 * The three SMT runs execute as one campaign, then each mix's four
 * single-thread baseline replays fan out over the same worker pool.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace smtavf;
    using namespace smtavf::bench;

    banner("Figure 3: Per-Thread AVF, SMT vs Single-Thread Execution");

    const std::uint64_t budget = defaultBudget(4);
    auto cfg = table1Config(4);

    CampaignRunner pool;
    std::vector<Experiment> smt_exps;
    for (auto type : mixTypes()) {
        Experiment e = makeExperiment(fig3Mix(type), cfg.fetchPolicy,
                                      budget);
        e.cfg = cfg;
        smt_exps.push_back(std::move(e));
    }
    auto smt_runs = pool.run(smt_exps);

    for (std::size_t ti = 0; ti < mixTypes().size(); ++ti) {
        auto type = mixTypes()[ti];
        const auto &mix = fig3Mix(type);
        const auto &smt = smt_runs[ti];
        auto baselines = runSingleThreadBaselines(pool, cfg, mix, smt);

        std::printf("-- %s workload (%s) --\n", mixTypeName(type),
                    mix.name.c_str());
        TextTable t({"thread", "IQ_ST", "FU_ST", "ROB_ST", "IQ_SMT",
                     "FU_SMT", "ROB_SMT"});
        double weighted_iq = 0, weighted_fu = 0, weighted_rob = 0;
        for (ThreadId tid = 0; tid < 4; ++tid) {
            const auto &st = baselines[tid];
            double share =
                static_cast<double>(smt.threads[tid].committed) /
                smt.totalCommitted;
            weighted_iq += st.avf.avf(HwStruct::IQ) * share;
            weighted_fu += st.avf.avf(HwStruct::FU) * share;
            weighted_rob += st.avf.avf(HwStruct::ROB) * share;
            t.addRow({mix.benchmarks[tid],
                      TextTable::pct(st.avf.avf(HwStruct::IQ), 1),
                      TextTable::pct(st.avf.avf(HwStruct::FU), 1),
                      TextTable::pct(st.avf.avf(HwStruct::ROB), 1),
                      TextTable::pct(smt.avf.threadAvf(HwStruct::IQ, tid),
                                     1),
                      TextTable::pct(smt.avf.threadAvf(HwStruct::FU, tid),
                                     1),
                      TextTable::pct(smt.avf.threadAvf(HwStruct::ROB, tid),
                                     1)});
        }
        t.addRow({"all(weighted ST / SMT)", TextTable::pct(weighted_iq, 1),
                  TextTable::pct(weighted_fu, 1),
                  TextTable::pct(weighted_rob, 1),
                  TextTable::pct(smt.avf.avf(HwStruct::IQ), 1),
                  TextTable::pct(smt.avf.avf(HwStruct::FU), 1),
                  TextTable::pct(smt.avf.avf(HwStruct::ROB), 1)});
        std::fputs(t.str().c_str(), stdout);
        std::puts("");
    }
    return 0;
}
