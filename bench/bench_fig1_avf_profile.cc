/**
 * @file
 * Figure 1: microarchitecture vulnerability profile of the studied SMT
 * processor (4 contexts, ICOUNT), per structure, for CPU / MIX / MEM
 * workloads (each averaged over its two Table-2 groups).
 *
 * Expected shape (paper Section 4.1): shared structures (IQ, RegFile)
 * above non-shared; DL1 tag above DL1 data; MEM raises IQ/Reg/ROB/LSQ AVF
 * but lowers FU and DL1-data AVF relative to CPU.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace smtavf;
    using namespace smtavf::bench;

    banner("Figure 1: SMT Microarchitecture Vulnerability Profile "
           "(4 contexts)");

    TextTable t(structHeader("workload"));
    std::map<MixType, TypeResult> results;
    for (auto type : mixTypes()) {
        auto res = runType(4, type, FetchPolicyKind::Icount);
        std::vector<std::string> row = {mixTypeName(type)};
        for (auto s : AvfReport::figureStructs())
            row.push_back(TextTable::pct(res.avf[s], 1));
        t.addRow(std::move(row));
        results.emplace(type, std::move(res));
    }
    std::fputs(t.str().c_str(), stdout);

    // The paper's headline deltas: MEM vs CPU on the ILP structures.
    std::puts("\n-- MEM-vs-CPU AVF ratio (paper: IQ +58%, Reg +61%, "
              "ROB +82%, LSQ +94%; FU and DL1_data decrease) --");
    TextTable d({"structure", "CPU", "MEM", "MEM/CPU"});
    for (auto s : {HwStruct::IQ, HwStruct::RegFile, HwStruct::ROB,
                   HwStruct::LsqTag, HwStruct::FU, HwStruct::Dl1Data}) {
        double cpu = results.at(MixType::Cpu).avf[s];
        double mem = results.at(MixType::Mem).avf[s];
        d.addRow({hwStructName(s), TextTable::pct(cpu, 1),
                  TextTable::pct(mem, 1),
                  cpu > 0 ? TextTable::num(mem / cpu, 2) : "-"});
    }
    std::fputs(d.str().c_str(), stdout);
    return 0;
}
