/**
 * @file
 * Figure 9 (extension): the paper's Section-4.1 vulnerability ranking
 * turned actionable. The structures with the highest raw AVF are the
 * protection priorities; sweeping parity / SECDED / SECDED+scrubbing
 * over the top-k hotspots yields the machine's reliability-cost Pareto
 * frontier (residual SER vs. area/energy overhead vs. IPC).
 *
 * Everything runs over the campaign pool, so the table is bit-identical
 * for any SMTAVF_JOBS value. Wall-clock timing goes to stderr to keep
 * stdout deterministic.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.hh"
#include "protect/explorer.hh"

int
main()
{
    using namespace smtavf;
    using namespace smtavf::bench;

    banner("Figure 9: Protection Priority and Reliability-Cost Frontier "
           "(4 contexts, ICOUNT)");

    const auto &mix = findMix("4ctx-mix-A");
    auto cfg = table1Config(mix.contexts);
    const auto bits = structureBitCapacities(cfg);

    CampaignRunner pool;
    auto t0 = std::chrono::steady_clock::now();

    ProtectionExplorer explorer(cfg, mix);
    auto result = explorer.explore(pool);

    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    std::fprintf(stderr,
                 "(campaign: %zu runs on %u workers in %.2fs; set "
                 "SMTAVF_JOBS to change the pool)\n",
                 result.points.size(), pool.jobs(), dt.count());

    // Section 4.1 as a priority list: protect in this order. The bit
    // capacity next to each hotspot is what that protection costs.
    std::puts("-- protection priority (raw AVF, descending) --");
    TextTable p({"rank", "structure", "bits"});
    for (std::size_t i = 0; i < result.priority.size(); ++i) {
        auto s = result.priority[i];
        p.addRow({std::to_string(i + 1), hwStructName(s),
                  std::to_string(bits[static_cast<std::size_t>(s)])});
    }
    std::fputs(p.str().c_str(), stdout);

    std::printf("\n-- Pareto frontier (%zu of %zu assignments "
                "non-dominated) --\n",
                result.frontier.size(), result.points.size());
    std::fputs(result.table().c_str(), stdout);

    std::size_t protected_on_frontier = 0;
    for (auto i : result.frontier)
        if (result.points[i].protection.any())
            ++protected_on_frontier;
    std::printf("\nnon-dominated protected assignments: %zu\n",
                protected_on_frontier);

    // -- beam search over mixed per-structure schemes ---------------------
    // The prefix sweep can only buy protection in ranking order with one
    // scheme; the beam search mixes schemes and per-structure scrub
    // intervals, and should find at least one assignment that strictly
    // dominates the sweep's best point.
    t0 = std::chrono::steady_clock::now();
    BeamOptions bo;
    bo.beamWidth = 4;
    bo.generations = 1;
    bo.maxStructures = 4; // match the prefix sweep's default depth
    auto beam = explorer.exploreBeam(pool, bo);
    dt = std::chrono::steady_clock::now() - t0;
    std::fprintf(stderr,
                 "(beam: %llu evaluations, %llu pruned unsimulated, "
                 "%.2fs)\n",
                 static_cast<unsigned long long>(beam.evaluations),
                 static_cast<unsigned long long>(beam.prunedCount),
                 dt.count());

    std::printf("\n-- beam search (width %u, %u generation%s): %zu of %zu "
                "non-dominated --\n",
                bo.beamWidth, bo.generations,
                bo.generations == 1 ? "" : "s", beam.frontier.size(),
                beam.points.size());
    std::fputs(beam.table().c_str(), stdout);

    // Best prefix point: lowest residual SER, cheapest energy tie-break.
    std::size_t best = 0;
    for (std::size_t i = 1; i < result.points.size(); ++i) {
        const auto &p = result.points[i];
        const auto &b = result.points[best];
        if (p.residualSer < b.residualSer ||
            (p.residualSer == b.residualSer &&
             p.energyOverhead < b.energyOverhead))
            best = i;
    }
    const ProtectionPoint &bp = result.points[best];
    // Lexicographically-smallest beam assignment dominating it, so the
    // line below is deterministic.
    const ProtectionPoint *dom = nullptr;
    for (const auto &p : beam.points)
        if (ProtectionExplorer::dominates(p, bp) &&
            (!dom || p.label < dom->label))
            dom = &p;
    if (dom) {
        std::printf("\nbeam strictly dominates the best prefix point "
                    "(%s):\n  %s\n  residual %.4f <= %.4f, area %.4f%% <= "
                    "%.4f%%, energy %.4f%% < %.4f%%\n",
                    bp.label.c_str(), dom->label.c_str(), dom->residualSer,
                    bp.residualSer, 100 * dom->areaOverhead,
                    100 * bp.areaOverhead, 100 * dom->energyOverhead,
                    100 * bp.energyOverhead);
    } else {
        std::puts("\nbeam found no assignment dominating the best prefix "
                  "point");
    }

    std::puts("\ntakeaway: the AVF ranking is the protection shopping list "
              "-- a few\nhot structures buy most of the residual-SER "
              "reduction at a fraction\nof whole-machine ECC cost; mixing "
              "schemes and scrub intervals per\nstructure buys the same "
              "residual SER strictly cheaper than any\nsingle-scheme "
              "prefix.");
    return 0;
}
