/**
 * @file
 * Figure 7: reliability efficiency (throughput-IPC / AVF) of the five
 * advanced fetch policies, normalized to the ICOUNT baseline, averaged
 * over the 4- and 8-context workloads.
 *
 * Expected shape: FLUSH best overall, DWarn second; the advantage shrinks
 * on CPU-bound mixes where cache misses are rare.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace smtavf;
    using namespace smtavf::bench;

    banner("Figure 7: IPC/AVF of Advanced Fetch Policies (normalized to "
           "ICOUNT)");

    const FetchPolicyKind advanced[] = {
        FetchPolicyKind::Flush, FetchPolicyKind::Stall,
        FetchPolicyKind::Dg, FetchPolicyKind::Pdg, FetchPolicyKind::DWarn};
    const unsigned context_counts[] = {4, 8};

    for (unsigned ctx : context_counts) {
        std::printf("-- %u contexts --\n", ctx);
        TextTable t(structHeader("workload/policy"));
        for (auto type : mixTypes()) {
            auto base = runType(ctx, type, FetchPolicyKind::Icount);
            for (auto policy : advanced) {
                auto res = runType(ctx, type, policy);
                std::vector<std::string> row = {
                    std::string(mixTypeName(type)) + "/" +
                    fetchPolicyName(policy)};
                for (auto s : AvfReport::figureStructs()) {
                    double base_eff =
                        base.avf[s] > 0 ? base.ipc / base.avf[s] : 0;
                    double eff =
                        res.avf[s] > 0 ? res.ipc / res.avf[s] : 0;
                    row.push_back(base_eff > 0
                                      ? TextTable::num(eff / base_eff, 2)
                                      : "-");
                }
                t.addRow(std::move(row));
            }
        }
        std::fputs(t.str().c_str(), stdout);
        std::puts("");
    }
    return 0;
}
