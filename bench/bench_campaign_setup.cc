/**
 * @file
 * Campaign setup-throughput benchmark *and* worker-reuse gate: a
 * high-throughput AVF campaign is thousands of short runs, so the
 * per-run fixed cost — Simulator construction, teardown, and (in
 * process mode) a fork per run — bounds runs/second long before the
 * simulated work does. This benchmark times a 1000-short-run campaign
 * in the four configurations that matter:
 *
 *   thread + fresh construction   (the pre-reuse baseline)
 *   thread + reused workers       (reset() instead of reconstruction)
 *   process + one child per run   (the pre-batching baseline)
 *   process + batched children    (--runs-per-child over one reused sim)
 *
 * and reports whole-campaign runs/second (items/s, real time — the pool
 * does the work off the main thread).
 *
 * Before any timing, main() asserts the contract the optimization rests
 * on and exits nonzero if it fails: a reused-worker campaign and a
 * batched-child campaign must journal byte-identical records to a
 * construct-per-run campaign (the same bar tests/test_reuse.cc holds in
 * CI; re-checked here so a benchmark number can never be quoted from a
 * binary that broke the equivalence). tools/bench.sh runs this binary
 * alongside bench_micro_sim and merges the reports into BENCH_micro.json.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/campaign.hh"
#include "sim/experiment.hh"
#include "sim/isolate.hh"
#include "sim/journal.hh"
#include "workload/mixes.hh"

namespace
{

using namespace smtavf;

/** Short enough that setup cost dominates; long enough to be a run. */
constexpr std::uint64_t kBudget = 500;
constexpr std::size_t kRuns = 1000;
constexpr unsigned kJobs = 4;
constexpr unsigned kRunsPerChild = 32;

std::vector<Experiment>
shortCampaign(std::size_t n)
{
    const auto &mix = findMix("2ctx-mix-A");
    std::vector<Experiment> exps;
    exps.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Experiment e =
            makeExperiment(mix, FetchPolicyKind::Icount, kBudget);
        e.cfg.seed = 1000 + i;
        exps.push_back(std::move(e));
    }
    return exps;
}

void
BM_CampaignRuns(benchmark::State &state)
{
    const bool process = state.range(0) != 0;
    const bool reuse = state.range(1) != 0;
    const auto rpc = static_cast<unsigned>(state.range(2));

    auto exps = shortCampaign(kRuns);
    CampaignOptions opt;
    opt.isolate = process ? IsolateMode::Process : IsolateMode::Thread;
    opt.reuseWorkers = reuse;
    opt.runsPerChild = rpc;
    CampaignRunner pool(kJobs);

    std::size_t total = 0;
    for (auto _ : state) {
        auto report = runTolerant(pool, exps, opt);
        if (!report.allOk()) {
            state.SkipWithError("campaign run failed");
            return;
        }
        total += exps.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
    state.SetLabel(std::string(process ? "process" : "thread") +
                   (reuse ? "/reused" : "/fresh") +
                   (rpc > 1 ? "/batch" + std::to_string(rpc) : ""));
}
// items/s == campaign runs per second (real time: pool workers run it).
BENCHMARK(BM_CampaignRuns)
    ->Args({0, 0, 1}) // thread, fresh construction per run
    ->Args({0, 1, 1}) // thread, reused workers
    ->Args({1, 0, 1}) // process, one child per run
    ->Args({1, 1, kRunsPerChild}) // process, batched reused children
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

std::vector<std::string>
journalRecords(const std::string &path)
{
    std::vector<std::string> recs;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        if (line.rfind("run ", 0) == 0)
            recs.push_back(std::move(line));
    std::sort(recs.begin(), recs.end());
    return recs;
}

/** The gate: reuse and batching must journal byte-identical records. */
int
verifyReuseEquivalence()
{
    auto exps = shortCampaign(96);
    struct Case
    {
        const char *name;
        const char *path;
        IsolateMode mode;
        bool reuse;
        unsigned rpc;
    };
    const Case cases[] = {
        {"fresh", "bench_campaign_fresh.journal", IsolateMode::Thread,
         false, 1},
        {"reused", "bench_campaign_reused.journal", IsolateMode::Thread,
         true, 1},
        {"batched", "bench_campaign_batched.journal", IsolateMode::Process,
         true, kRunsPerChild},
    };

    std::vector<std::vector<std::string>> records;
    for (const Case &c : cases) {
        std::remove(c.path);
        CampaignOptions opt;
        opt.isolate = c.mode;
        opt.reuseWorkers = c.reuse;
        opt.runsPerChild = c.rpc;
        opt.journalPath = c.path;
        CampaignRunner pool(kJobs);
        auto report = runTolerant(pool, exps, opt);
        if (!report.allOk()) {
            std::fprintf(stderr, "FAIL: %s campaign did not complete\n",
                         c.name);
            return 1;
        }
        records.push_back(journalRecords(c.path));
        std::remove(c.path);
    }

    if (records[1] != records[0] || records[2] != records[0]) {
        std::fprintf(stderr,
                     "FAIL: reused/batched campaign journals are not "
                     "byte-identical to fresh construction\n");
        return 1;
    }
    std::fprintf(stderr,
                 "worker-reuse gate: ok (%zu records identical across "
                 "fresh, reused, and batched campaigns)\n",
                 records[0].size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (int rc = verifyReuseEquivalence())
        return rc;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
