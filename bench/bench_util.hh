/**
 * @file
 * Shared helpers for the figure/table bench harnesses: run a workload
 * type averaged over its Table-2 groups, the structure ordering of the
 * paper's figures, and single-thread IPC baselines for the fairness
 * metrics.
 */

#ifndef SMTAVF_BENCH_BENCH_UTIL_HH
#define SMTAVF_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "base/env.hh"
#include "base/table.hh"
#include "sim/campaign.hh"
#include "sim/experiment.hh"

namespace smtavf::bench
{

/** The three workload types in figure order. */
inline const std::vector<MixType> &
mixTypes()
{
    static const std::vector<MixType> types = {MixType::Cpu, MixType::Mix,
                                               MixType::Mem};
    return types;
}

/** Per-structure AVF and performance averaged over a type's groups. */
struct TypeResult
{
    std::map<HwStruct, double> avf;
    double ipc = 0.0;
    std::vector<SimResult> runs;
};

/** Average a slice of finished runs into a TypeResult. */
inline TypeResult
averageRuns(std::vector<SimResult> runs)
{
    TypeResult out;
    out.runs = std::move(runs);
    for (auto s : AvfReport::figureStructs())
        out.avf[s] = meanAvf(out.runs, s);
    out.ipc = meanIpc(out.runs);
    return out;
}

/**
 * Run every Table-2 mix of (contexts, type) under @p policy and average.
 */
inline TypeResult
runType(unsigned contexts, MixType type, FetchPolicyKind policy,
        std::uint64_t budget = 0)
{
    std::vector<SimResult> runs;
    for (const auto &mix : mixesOf(contexts, type))
        runs.push_back(runMix(mix, policy, budget));
    return averageRuns(std::move(runs));
}

/**
 * Campaign variant of runType(): the same mixes fanned out over @p pool.
 * Bit-identical to the serial helper for any worker count.
 */
inline TypeResult
runType(CampaignRunner &pool, unsigned contexts, MixType type,
        FetchPolicyKind policy, std::uint64_t budget = 0)
{
    std::vector<Experiment> exps;
    for (const auto &mix : mixesOf(contexts, type))
        exps.push_back(makeExperiment(mix, policy, budget));
    return averageRuns(pool.run(exps));
}

/**
 * A figure's worth of (contexts, type, policy) cells flattened into one
 * campaign so the pool sees every run at once. Each addCell() returns
 * the cell's index; after runAll(), cell(i) yields that cell's averaged
 * TypeResult in submission order.
 */
class FigureCampaign
{
  public:
    /** Queue every Table-2 mix of (contexts, type) under policy. */
    std::size_t
    addCell(unsigned contexts, MixType type, FetchPolicyKind policy,
            std::uint64_t budget = 0)
    {
        Slice s{exps_.size(), 0};
        for (const auto &mix : mixesOf(contexts, type)) {
            exps_.push_back(makeExperiment(mix, policy, budget));
            ++s.count;
        }
        slices_.push_back(s);
        return slices_.size() - 1;
    }

    /** Execute all queued cells on @p pool. */
    void
    runAll(CampaignRunner &pool)
    {
        results_ = pool.run(exps_);
    }

    /** Averaged result of cell @p i (after runAll()). */
    TypeResult
    cell(std::size_t i) const
    {
        const Slice &s = slices_.at(i);
        std::vector<SimResult> runs(results_.begin() + s.begin,
                                    results_.begin() + s.begin + s.count);
        return averageRuns(std::move(runs));
    }

    std::size_t experiments() const { return exps_.size(); }

  private:
    struct Slice
    {
        std::size_t begin;
        std::size_t count;
    };
    std::vector<Experiment> exps_;
    std::vector<Slice> slices_;
    std::vector<SimResult> results_;
};

/** Column header row for the paper's eight figure structures. */
inline std::vector<std::string>
structHeader(const std::string &first)
{
    std::vector<std::string> header = {first};
    for (auto s : AvfReport::figureStructs())
        header.push_back(hwStructName(s));
    return header;
}

/**
 * Stand-alone IPC of each benchmark at the default single-thread budget,
 * memoized (the fairness metrics normalize against these).
 */
inline double
singleThreadIpc(const std::string &benchmark)
{
    // Mutex: harnesses may ask for baselines from campaign workers.
    static std::mutex mutex;
    static std::map<std::string, double> cache;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(benchmark);
        if (it != cache.end())
            return it->second;
    }
    WorkloadMix solo{"st-" + benchmark, 1, MixType::Cpu, 'A', {benchmark}};
    auto r = runMix(solo, FetchPolicyKind::Icount, defaultBudget(1));
    std::lock_guard<std::mutex> lock(mutex);
    cache[benchmark] = r.ipc;
    return r.ipc;
}

/** Stand-alone IPCs for every thread of a finished run. */
inline std::vector<double>
singleThreadBaselines(const SimResult &r)
{
    std::vector<double> out;
    for (const auto &t : r.threads)
        out.push_back(singleThreadIpc(t.benchmark));
    return out;
}

/** Print the SMTAVF_SCALE banner every harness emits. */
inline void
banner(const char *what)
{
    std::printf("== %s ==\n", what);
    std::printf("(scale %llu; set SMTAVF_SCALE to grow the simulated "
                "instruction budgets)\n\n",
                static_cast<unsigned long long>(benchScale()));
}

/** Note how a campaign was parallelized (workers, runs, wall-clock). */
inline void
campaignNote(const CampaignRunner &pool, std::size_t runs, double seconds)
{
    std::printf("(campaign: %zu runs on %u workers in %.2fs; set "
                "SMTAVF_JOBS to change the pool)\n\n",
                runs, pool.jobs(), seconds);
}

} // namespace smtavf::bench

#endif // SMTAVF_BENCH_BENCH_UTIL_HH
