/**
 * @file
 * Shared helpers for the figure/table bench harnesses: run a workload
 * type averaged over its Table-2 groups, the structure ordering of the
 * paper's figures, and single-thread IPC baselines for the fairness
 * metrics.
 */

#ifndef SMTAVF_BENCH_BENCH_UTIL_HH
#define SMTAVF_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "base/env.hh"
#include "base/table.hh"
#include "sim/experiment.hh"

namespace smtavf::bench
{

/** The three workload types in figure order. */
inline const std::vector<MixType> &
mixTypes()
{
    static const std::vector<MixType> types = {MixType::Cpu, MixType::Mix,
                                               MixType::Mem};
    return types;
}

/** Per-structure AVF and performance averaged over a type's groups. */
struct TypeResult
{
    std::map<HwStruct, double> avf;
    double ipc = 0.0;
    std::vector<SimResult> runs;
};

/**
 * Run every Table-2 mix of (contexts, type) under @p policy and average.
 */
inline TypeResult
runType(unsigned contexts, MixType type, FetchPolicyKind policy,
        std::uint64_t budget = 0)
{
    TypeResult out;
    auto mixes = mixesOf(contexts, type);
    for (const auto &mix : mixes)
        out.runs.push_back(runMix(mix, policy, budget));
    for (auto s : AvfReport::figureStructs())
        out.avf[s] = meanAvf(out.runs, s);
    out.ipc = meanIpc(out.runs);
    return out;
}

/** Column header row for the paper's eight figure structures. */
inline std::vector<std::string>
structHeader(const std::string &first)
{
    std::vector<std::string> header = {first};
    for (auto s : AvfReport::figureStructs())
        header.push_back(hwStructName(s));
    return header;
}

/**
 * Stand-alone IPC of each benchmark at the default single-thread budget,
 * memoized (the fairness metrics normalize against these).
 */
inline double
singleThreadIpc(const std::string &benchmark)
{
    static std::map<std::string, double> cache;
    auto it = cache.find(benchmark);
    if (it != cache.end())
        return it->second;
    WorkloadMix solo{"st-" + benchmark, 1, MixType::Cpu, 'A', {benchmark}};
    auto r = runMix(solo, FetchPolicyKind::Icount, defaultBudget(1));
    cache[benchmark] = r.ipc;
    return r.ipc;
}

/** Stand-alone IPCs for every thread of a finished run. */
inline std::vector<double>
singleThreadBaselines(const SimResult &r)
{
    std::vector<double> out;
    for (const auto &t : r.threads)
        out.push_back(singleThreadIpc(t.benchmark));
    return out;
}

/** Print the SMTAVF_SCALE banner every harness emits. */
inline void
banner(const char *what)
{
    std::printf("== %s ==\n", what);
    std::printf("(scale %llu; set SMTAVF_SCALE to grow the simulated "
                "instruction budgets)\n\n",
                static_cast<unsigned long long>(benchScale()));
}

} // namespace smtavf::bench

#endif // SMTAVF_BENCH_BENCH_UTIL_HH
