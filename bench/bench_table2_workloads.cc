/**
 * @file
 * Table 2: the studied SMT workloads, with the behavioural profile each
 * synthetic benchmark substitutes for the proprietary SPEC CPU 2000 runs.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_util.hh"
#include "sim/config.hh"

int
main()
{
    using namespace smtavf;
    std::puts("== Table 2: The Studied SMT Workloads ==");
    std::fputs(table2String().c_str(), stdout);

    std::puts("\n-- synthetic benchmark profiles (SPEC CPU 2000 "
              "substitutes) --");
    TextTable t({"benchmark", "suite", "class", "load%", "store%",
                 "branch%", "fp%", "hot", "hot+warm", "chains"});
    for (const auto &p : allProfiles()) {
        t.addRow({p.name, p.suite == BenchSuite::Int ? "INT" : "FP",
                  p.category == BenchClass::Cpu ? "CPU" : "MEM",
                  TextTable::pct(p.loadFrac, 0),
                  TextTable::pct(p.storeFrac, 0),
                  TextTable::pct(p.branchFrac, 0),
                  TextTable::pct(p.fpAluFrac + p.fpMulFrac + p.fpDivFrac,
                                 0),
                  TextTable::pct(p.hotAccessFrac, 0),
                  TextTable::pct(p.hotAccessFrac + p.warmAccessFrac, 0),
                  std::to_string(p.parallelChains)});
    }
    std::fputs(t.str().c_str(), stdout);
    return 0;
}
