/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"

namespace smtavf
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    auto first = a.next();
    a.next();
    a.seed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformStaysBelowBound)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.uniform(17), 17u);
}

TEST(Rng, UniformBoundOneIsZero)
{
    Rng r(3);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(r.uniform(1), 0u);
}

TEST(Rng, UniformZeroBoundIsZero)
{
    Rng r(3);
    EXPECT_EQ(r.uniform(0), 0u);
}

TEST(Rng, UniformCoversRange)
{
    Rng r(5);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[r.uniform(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, UniformRangeInclusive)
{
    Rng r(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = r.uniformRange(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        lo |= v == 3;
        hi |= v == 6;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniformReal();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRealMeanNearHalf)
{
    Rng r(13);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniformReal();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
        EXPECT_FALSE(r.bernoulli(-0.5));
        EXPECT_TRUE(r.bernoulli(1.5));
    }
}

TEST(Rng, BernoulliRateMatchesP)
{
    Rng r(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricRespectsCap)
{
    Rng r(23);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LE(r.geometric(0.1, 5), 5u);
}

TEST(Rng, GeometricDegenerateP)
{
    Rng r(29);
    EXPECT_EQ(r.geometric(1.0, 10), 0u);
    EXPECT_EQ(r.geometric(0.0, 10), 10u);
}

TEST(Rng, GeometricMeanRoughlyMatches)
{
    Rng r(31);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.geometric(0.5, 100);
    EXPECT_NEAR(sum / n, 1.0, 0.05); // mean failures = (1-p)/p = 1
}

TEST(Rng, ZipfStaysInRange)
{
    Rng r(37);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.zipf(50, 0.8), 50u);
}

TEST(Rng, ZipfDegenerateN)
{
    Rng r(41);
    EXPECT_EQ(r.zipf(0, 0.8), 0u);
    EXPECT_EQ(r.zipf(1, 0.8), 0u);
}

TEST(Rng, ZipfSkewsLow)
{
    Rng r(43);
    int low = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        low += r.zipf(100, 0.8) < 10;
    // With skew 0.8, far more than the uniform 10% lands in the lowest
    // tenth.
    EXPECT_GT(low, n / 3);
}

TEST(Rng, HigherSkewConcentratesMore)
{
    Rng r1(47), r2(47);
    int low_s = 0, high_s = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        low_s += r1.zipf(100, 0.3) < 10;
        high_s += r2.zipf(100, 0.95) < 10;
    }
    EXPECT_GT(high_s, low_s);
}

} // namespace
} // namespace smtavf
