/**
 * @file
 * Differential and determinism tests for the parallel campaign runner:
 * a campaign must produce bit-identical SimResults whether it runs as a
 * plain serial runMix() loop, on a 1-worker pool, or on an N-worker
 * pool, and a seeded injection campaign must yield identical verdict
 * counts for every worker count (the seed-splitting contract).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/rng.hh"
#include "sim/campaign.hh"

namespace smtavf
{
namespace
{

/** Small budget: enough cycles to exercise every structure, fast. */
constexpr std::uint64_t kBudget = 4000;

unsigned
hardwareJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::vector<Experiment>
fourMixCampaign()
{
    const char *names[] = {"2ctx-cpu-A", "2ctx-mix-A", "2ctx-mem-A",
                           "2ctx-cpu-B"};
    std::vector<Experiment> exps;
    for (std::size_t i = 0; i < 4; ++i) {
        Experiment e = makeExperiment(findMix(names[i]),
                                      FetchPolicyKind::Icount, kBudget);
        e.cfg.seed = 11 + i; // distinct seeds, as a sweep would use
        exps.push_back(std::move(e));
    }
    return exps;
}

/** Bit-identical comparison of everything a SimResult reports. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.mixName, b.mixName);
    EXPECT_EQ(a.policyName, b.policyName);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.totalCommitted, b.totalCommitted);
    EXPECT_EQ(a.ipc, b.ipc); // exact: same arithmetic, same order

    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (std::size_t t = 0; t < a.threads.size(); ++t) {
        EXPECT_EQ(a.threads[t].benchmark, b.threads[t].benchmark);
        EXPECT_EQ(a.threads[t].committed, b.threads[t].committed);
        EXPECT_EQ(a.threads[t].ipc, b.threads[t].ipc);
    }

    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        EXPECT_EQ(a.avf.avf(s), b.avf.avf(s)) << hwStructName(s);
        EXPECT_EQ(a.avf.residualAvf(s), b.avf.residualAvf(s))
            << hwStructName(s);
        EXPECT_EQ(a.avf.occupancy(s), b.avf.occupancy(s))
            << hwStructName(s);
        for (std::size_t t = 0; t < a.threads.size(); ++t) {
            auto tid = static_cast<ThreadId>(t);
            EXPECT_EQ(a.avf.threadAvf(s, tid), b.avf.threadAvf(s, tid))
                << hwStructName(s);
        }
    }

    ASSERT_EQ(a.stats.all().size(), b.stats.all().size());
    for (const auto &[name, value] : a.stats.all())
        EXPECT_EQ(value, b.stats.get(name)) << name;
}

TEST(SplitSeed, StableDistinctAndIndexSensitive)
{
    EXPECT_EQ(splitSeed(1, 0), splitSeed(1, 0));
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seen.insert(splitSeed(42, i));
    EXPECT_EQ(seen.size(), 1000u); // no collisions among siblings
    EXPECT_NE(splitSeed(1, 0), splitSeed(2, 0));
    EXPECT_NE(splitSeed(1, 0), splitSeed(1, 1));
}

TEST(CampaignDifferential, SerialVsOneVsManyWorkersBitIdentical)
{
    auto exps = fourMixCampaign();

    // Plain serial loop: the pre-campaign baseline.
    std::vector<SimResult> serial;
    for (const auto &e : exps)
        serial.push_back(runMix(e.cfg, e.mix, e.budget));

    for (unsigned jobs : {1u, 2u, hardwareJobs()}) {
        CampaignRunner pool(jobs);
        auto parallel = pool.run(exps);
        ASSERT_EQ(parallel.size(), serial.size()) << jobs << " workers";
        for (std::size_t i = 0; i < serial.size(); ++i) {
            SCOPED_TRACE(std::to_string(jobs) + " workers, run " +
                         std::to_string(i));
            expectIdentical(serial[i], parallel[i]);
        }
    }
}

TEST(CampaignDifferential, ResultsArriveInSubmissionOrder)
{
    auto exps = fourMixCampaign();
    CampaignRunner pool(2);
    auto results = pool.run(exps);
    ASSERT_EQ(results.size(), exps.size());
    for (std::size_t i = 0; i < exps.size(); ++i)
        EXPECT_EQ(results[i].mixName, exps[i].mix.name);
}

TEST(CampaignDifferential, ReplicatedHelperMatchesSerialHelper)
{
    auto cfg = table1Config(2);
    cfg.seed = 5;
    const auto &mix = findMix("2ctx-mix-A");

    auto serial = runMixReplicated(cfg, mix, 3, kBudget);
    CampaignRunner pool(2);
    auto parallel = runMixReplicated(pool, cfg, mix, 3, kBudget);

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("replica " + std::to_string(i));
        expectIdentical(serial[i], parallel[i]);
    }
}

TEST(CampaignDifferential, SingleThreadBaselinesMatchSerialLoop)
{
    auto cfg = table1Config(2);
    const auto &mix = findMix("2ctx-mem-A");
    auto smt = runMix(cfg, mix, kBudget);

    std::vector<SimResult> serial;
    for (unsigned tid = 0; tid < mix.contexts; ++tid)
        serial.push_back(
            runSingleThreadBaseline(cfg, mix, static_cast<ThreadId>(tid),
                                    smt.threads[tid].committed));

    CampaignRunner pool(2);
    auto parallel = runSingleThreadBaselines(pool, cfg, mix, smt);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("baseline " + std::to_string(i));
        expectIdentical(serial[i], parallel[i]);
    }
}

TEST(CampaignDifferential, MasterSeedDerivationIsScheduleIndependent)
{
    auto exps = fourMixCampaign();
    deriveSeeds(exps, 99);
    for (std::size_t i = 0; i < exps.size(); ++i)
        EXPECT_EQ(exps[i].cfg.seed, splitSeed(99, i));

    CampaignRunner one(1), many(3);
    auto a = one.run(exps);
    auto b = many.run(exps);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("run " + std::to_string(i));
        expectIdentical(a[i], b[i]);
    }
}

TEST(CampaignRunner, ForEachVisitsEveryIndexExactlyOnce)
{
    CampaignRunner pool(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.forEach(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(CampaignRunner, ForEachPropagatesExceptions)
{
    CampaignRunner pool(2);
    EXPECT_THROW(pool.forEach(8,
                              [](std::size_t i) {
                                  if (i == 3)
                                      throw std::runtime_error("boom");
                              }),
                 std::runtime_error);
    // The pool survives a failed batch.
    std::atomic<int> ran{0};
    pool.forEach(4, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 4);
}

TEST(CampaignRunner, ProgressReportsEveryRunWithTiming)
{
    auto exps = fourMixCampaign();
    CampaignRunner pool(2);
    std::vector<CampaignProgress> seen;
    auto results = pool.run(exps, [&](const CampaignProgress &p) {
        seen.push_back(p); // serialized by the pool's progress lock
    });
    ASSERT_EQ(seen.size(), exps.size());
    std::set<std::size_t> indices;
    for (const auto &p : seen) {
        EXPECT_EQ(p.total, exps.size());
        EXPECT_GE(p.seconds, 0.0);
        indices.insert(p.index);
    }
    EXPECT_EQ(indices.size(), exps.size());
    // `completed` counts monotonically 1..N in delivery order.
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i].completed, i + 1);
}

class InjectionDeterminism : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto cfg = table1Config(2);
        cfg.recordCommitTrace = true;
        trace_ = runMix(cfg, findMix("2ctx-mix-A"), kBudget).commitTrace;
        ASSERT_TRUE(trace_);
        ASSERT_FALSE(trace_->empty());
    }

    std::shared_ptr<const CommitTrace> trace_;
};

TEST_F(InjectionDeterminism, RepeatedSeededCampaignsAreIdentical)
{
    InjectionCampaign campaign(*trace_);
    constexpr std::uint64_t trials = 2000;

    CampaignRunner pool(2);
    auto first = runInjection(pool, campaign, trials, 77);
    auto second = runInjection(pool, campaign, trials, 77);

    EXPECT_EQ(first.trials, trials);
    EXPECT_EQ(first.masked, second.masked);
    EXPECT_EQ(first.corrupted, second.corrupted);
    EXPECT_EQ(first.skipped, second.skipped);
    EXPECT_EQ(first.masked + first.corrupted + first.skipped, trials);
}

TEST_F(InjectionDeterminism, VerdictCountsIndependentOfWorkerCount)
{
    InjectionCampaign campaign(*trace_);
    constexpr std::uint64_t trials = 2000;

    CampaignRunner one(1);
    auto baseline = runInjection(one, campaign, trials, 123);
    for (unsigned jobs : {2u, hardwareJobs()}) {
        CampaignRunner pool(jobs);
        auto res = runInjection(pool, campaign, trials, 123);
        EXPECT_EQ(res.masked, baseline.masked) << jobs << " workers";
        EXPECT_EQ(res.corrupted, baseline.corrupted) << jobs;
        EXPECT_EQ(res.skipped, baseline.skipped) << jobs;
    }
}

TEST_F(InjectionDeterminism, DifferentSeedsSampleDifferentOrigins)
{
    InjectionCampaign campaign(*trace_);
    CampaignRunner pool(2);
    auto a = runInjection(pool, campaign, 2000, 1);
    auto b = runInjection(pool, campaign, 2000, 2);
    // Same trace, same trial count; the verdict split should move at
    // least a little when the whole origin sample changes.
    EXPECT_EQ(a.trials, b.trials);
    bool any_difference = a.masked != b.masked ||
                          a.corrupted != b.corrupted ||
                          a.skipped != b.skipped;
    EXPECT_TRUE(any_difference);
}

} // namespace
} // namespace smtavf
