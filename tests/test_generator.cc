/**
 * @file
 * Unit and property tests for the synthetic instruction-stream generator.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "test_util.hh"
#include "workload/generator.hh"

namespace smtavf
{
namespace
{

TEST(Generator, DeterministicForSameSeed)
{
    StreamGenerator a(findProfile("gcc"), 99, 0);
    StreamGenerator b(findProfile("gcc"), 99, 0);
    for (std::uint64_t i = 0; i < 5000; ++i) {
        const auto &x = a.at(i);
        const auto &y = b.at(i);
        ASSERT_EQ(x.op, y.op);
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.destReg, y.destReg);
        ASSERT_EQ(x.srcReg1, y.srcReg1);
        ASSERT_EQ(x.memAddr, y.memAddr);
        ASSERT_EQ(x.branchTaken, y.branchTaken);
    }
}

TEST(Generator, DifferentSeedsDiffer)
{
    StreamGenerator a(findProfile("gcc"), 1, 0);
    StreamGenerator b(findProfile("gcc"), 2, 0);
    int same = 0;
    for (std::uint64_t i = 0; i < 200; ++i)
        same += a.at(i).op == b.at(i).op;
    EXPECT_LT(same, 150);
}

TEST(Generator, StreamIdReplaysAnotherContext)
{
    // A tid-0 generator seeded with stream id 3 replays tid 3's ops.
    StreamGenerator orig(findProfile("mcf"), 7, 3);
    StreamGenerator replay(findProfile("mcf"), 7, 0, 3);
    for (std::uint64_t i = 0; i < 2000; ++i) {
        ASSERT_EQ(orig.at(i).op, replay.at(i).op);
        ASSERT_EQ(orig.at(i).destReg, replay.at(i).destReg);
        ASSERT_EQ(orig.at(i).branchTaken, replay.at(i).branchTaken);
    }
}

TEST(Generator, TemplatesAreStableAcrossRefetch)
{
    StreamGenerator g(findProfile("bzip2"), 5, 0);
    DynInstr first = g.at(123);
    g.at(500); // generate further
    const DynInstr &again = g.at(123);
    EXPECT_EQ(first.op, again.op);
    EXPECT_EQ(first.memAddr, again.memAddr);
    EXPECT_EQ(first.streamIdx, again.streamIdx);
}

TEST(Generator, RetireBelowDropsAndRejectsOldIndices)
{
    ThrowGuard guard;
    StreamGenerator g(findProfile("bzip2"), 5, 0);
    g.at(100);
    g.retireBelow(50);
    EXPECT_NO_THROW(g.at(50));
    EXPECT_THROW(g.at(49), SimError);
}

TEST(Generator, BufferShrinksOnRetire)
{
    StreamGenerator g(findProfile("bzip2"), 5, 0);
    g.at(99);
    EXPECT_EQ(g.bufferedCount(), 100u);
    g.retireBelow(90);
    EXPECT_EQ(g.bufferedCount(), 10u);
}

TEST(Generator, StreamIdxMatchesPosition)
{
    StreamGenerator g(findProfile("eon"), 5, 0);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(g.at(i).streamIdx, i);
}

TEST(Generator, WrongPathDoesNotPerturbMainStream)
{
    StreamGenerator a(findProfile("gcc"), 42, 0);
    StreamGenerator b(findProfile("gcc"), 42, 0);
    a.at(100);
    for (int i = 0; i < 500; ++i)
        a.makeWrongPath(0x400000 + 4 * i);
    for (std::uint64_t i = 100; i < 1000; ++i)
        ASSERT_EQ(a.at(i).memAddr, b.at(i).memAddr) << i;
}

TEST(Generator, WrongPathInstructionsAreMarked)
{
    StreamGenerator g(findProfile("gcc"), 42, 0);
    for (int i = 0; i < 200; ++i) {
        DynInstr in = g.makeWrongPath(0x400100);
        EXPECT_TRUE(in.wrongPath);
        EXPECT_TRUE(in.neverAce());
        EXPECT_FALSE(in.isBranch()); // wrong path never redirects again
    }
}

TEST(Generator, ClampToCodeStaysInFootprint)
{
    StreamGenerator g(findProfile("gcc"), 42, 2);
    auto hints = g.prewarmHints();
    for (Addr pc = hints.code.base;
         pc < hints.code.base + 4 * hints.code.size; pc += 4) {
        Addr c = g.clampToCode(pc);
        EXPECT_GE(c, hints.code.base);
        EXPECT_LT(c, hints.code.base + hints.code.size);
        EXPECT_EQ(c % 4, 0u);
    }
}

TEST(Generator, ThreadsHaveDisjointAddressSpaces)
{
    StreamGenerator a(findProfile("swim"), 9, 0);
    StreamGenerator b(findProfile("swim"), 9, 1);
    auto ha = a.prewarmHints();
    auto hb = b.prewarmHints();
    EXPECT_LT(ha.hot.base + ha.hot.size, hb.hot.base);
    EXPECT_LT(ha.code.base + ha.code.size, hb.code.base);
}

TEST(Generator, CallsAndReturnsBalance)
{
    StreamGenerator g(findProfile("perlbmk"), 11, 0);
    long depth = 0;
    for (std::uint64_t i = 0; i < 50000; ++i) {
        const auto &in = g.at(i);
        if (in.op == OpClass::Call)
            ++depth;
        if (in.op == OpClass::Return)
            --depth;
        ASSERT_GE(depth, 0) << "return without call at " << i;
        ASSERT_LE(depth, 24);
    }
}

TEST(Generator, BranchSitesHaveStablePcsAndTargets)
{
    StreamGenerator g(findProfile("gcc"), 13, 0);
    std::map<Addr, Addr> targets;
    for (std::uint64_t i = 0; i < 50000; ++i) {
        const auto &in = g.at(i);
        if (in.op != OpClass::BranchCond)
            continue;
        auto it = targets.find(in.pc);
        if (it == targets.end())
            targets[in.pc] = in.branchTarget;
        else
            ASSERT_EQ(it->second, in.branchTarget)
                << "site " << std::hex << in.pc << " changed target";
    }
    EXPECT_GT(targets.size(), 10u);
    EXPECT_LE(targets.size(), findProfile("gcc").staticBranches);
}

TEST(Generator, JumpTargetsAreStablePerSite)
{
    StreamGenerator g(findProfile("gcc"), 13, 0);
    std::map<Addr, Addr> targets;
    for (std::uint64_t i = 0; i < 50000; ++i) {
        const auto &in = g.at(i);
        if (in.op != OpClass::BranchUncond && in.op != OpClass::Call)
            continue;
        auto [it, inserted] = targets.emplace(in.pc, in.branchTarget);
        if (!inserted) {
            ASSERT_EQ(it->second, in.branchTarget);
        }
    }
}

// ---- property sweeps over the whole profile database ---------------------

class GeneratorProperties : public ::testing::TestWithParam<const char *>
{
};

TEST_P(GeneratorProperties, MixFractionsApproximateProfile)
{
    const auto &p = findProfile(GetParam());
    StreamGenerator g(p, 17, 0);
    const std::uint64_t n = 60000;
    std::uint64_t loads = 0, stores = 0, branches = 0, fp = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto &in = g.at(i);
        loads += in.op == OpClass::Load;
        stores += in.op == OpClass::Store;
        branches += in.op == OpClass::BranchCond;
        fp += isFloat(in.op);
    }
    EXPECT_NEAR(double(loads) / n, p.loadFrac, 0.02);
    EXPECT_NEAR(double(stores) / n, p.storeFrac, 0.02);
    EXPECT_NEAR(double(branches) / n, p.branchFrac, 0.02);
    EXPECT_NEAR(double(fp) / n, p.fpAluFrac + p.fpMulFrac + p.fpDivFrac,
                0.02);
}

TEST_P(GeneratorProperties, AddressesFallInDeclaredRegions)
{
    const auto &p = findProfile(GetParam());
    StreamGenerator g(p, 19, 1);
    auto h = g.prewarmHints();
    for (std::uint64_t i = 0; i < 30000; ++i) {
        const auto &in = g.at(i);
        if (!in.isMem())
            continue;
        bool in_hot = in.memAddr >= h.hot.base &&
                      in.memAddr < h.hot.base + h.hot.size;
        bool in_warm = in.memAddr >= h.warm.base &&
                       in.memAddr < h.warm.base + h.warm.size;
        bool in_cold = in.memAddr >= h.warm.base + h.warm.size ||
                       (!in_hot && !in_warm);
        ASSERT_TRUE(in_hot || in_warm || in_cold);
        ASSERT_EQ(in.memAddr % in.memSize, 0u) << "unaligned access";
    }
}

TEST_P(GeneratorProperties, TakenRateIsPlausible)
{
    const auto &p = findProfile(GetParam());
    StreamGenerator g(p, 23, 0);
    std::uint64_t branches = 0, taken = 0;
    for (std::uint64_t i = 0; i < 80000; ++i) {
        const auto &in = g.at(i);
        if (in.op != OpClass::BranchCond)
            continue;
        ++branches;
        taken += in.branchTaken;
    }
    ASSERT_GT(branches, 100u);
    double rate = double(taken) / branches;
    // Loop-dominated streams are mostly taken; entropy pulls toward the
    // profile's taken rate. Accept a generous plausibility band.
    EXPECT_GT(rate, 0.5);
    EXPECT_LT(rate, 0.99);
}

TEST_P(GeneratorProperties, SourcesRespectRegisterClasses)
{
    const auto &p = findProfile(GetParam());
    StreamGenerator g(p, 29, 0);
    for (std::uint64_t i = 0; i < 20000; ++i) {
        const auto &in = g.at(i);
        switch (in.op) {
          case OpClass::FpAlu:
          case OpClass::FpMult:
          case OpClass::FpDiv:
            ASSERT_TRUE(isFpReg(in.srcReg1));
            ASSERT_TRUE(isFpReg(in.srcReg2));
            ASSERT_TRUE(isFpReg(in.destReg));
            break;
          case OpClass::IntAlu:
          case OpClass::IntMult:
          case OpClass::IntDiv:
            ASSERT_FALSE(isFpReg(in.srcReg1));
            ASSERT_FALSE(isFpReg(in.srcReg2));
            ASSERT_FALSE(isFpReg(in.destReg));
            break;
          case OpClass::Load:
            ASSERT_FALSE(isFpReg(in.srcReg1)); // address base is integer
            ASSERT_NE(in.destReg, invalidReg);
            ASSERT_GT(in.memSize, 0);
            break;
          case OpClass::Store:
            ASSERT_FALSE(isFpReg(in.srcReg1));
            ASSERT_EQ(in.destReg, invalidReg);
            break;
          default:
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, GeneratorProperties,
    ::testing::Values("bzip2", "crafty", "eon", "gap", "gcc", "parser",
                      "perlbmk", "mcf", "twolf", "vpr", "facerec", "fma3d",
                      "galgel", "mesa", "wupwise", "applu", "equake",
                      "lucas", "mgrid", "swim"));

} // namespace
} // namespace smtavf
