/**
 * @file
 * Late-added edge coverage: pre-warming behaviour, report rendering with
 * optional structures, and odd-but-legal configurations.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/simulator.hh"

namespace smtavf
{
namespace
{

TEST(Prewarm, DisablingItCostsColdMisses)
{
    auto warm_cfg = table1Config(2);
    auto cold_cfg = warm_cfg;
    cold_cfg.prewarmCaches = false;

    auto warm = runMix(warm_cfg, findMix("2ctx-cpu-A"), 10000);
    auto cold = runMix(cold_cfg, findMix("2ctx-cpu-A"), 10000);

    EXPECT_GT(cold.stats.get("il1.missRate"),
              warm.stats.get("il1.missRate"));
    EXPECT_GE(cold.cycles, warm.cycles)
        << "cold caches cannot make the run faster";
}

TEST(Prewarm, DoesNotChangeCommittedWork)
{
    // Pre-warming affects timing only; the architectural stream is the
    // same, so the same budget commits the same instructions.
    auto cfg = table1Config(2);
    auto warm = runMix(cfg, findMix("2ctx-mix-A"), 9000);
    cfg.prewarmCaches = false;
    auto cold = runMix(cfg, findMix("2ctx-mix-A"), 9000);
    EXPECT_EQ(warm.threads[0].benchmark, cold.threads[0].benchmark);
    EXPECT_GE(warm.totalCommitted, 9000u);
    EXPECT_GE(cold.totalCommitted, 9000u);
}

TEST(ReportRendering, IncludesL2RowsOnlyWhenTracked)
{
    auto cfg = table1Config(2);
    auto off = runMix(cfg, findMix("2ctx-mix-A"), 5000);
    EXPECT_EQ(off.avf.str().find("L2_data"), std::string::npos);

    cfg.avf.trackL2Avf = true;
    auto on = runMix(cfg, findMix("2ctx-mix-A"), 5000);
    EXPECT_NE(on.avf.str().find("L2_data"), std::string::npos);
    EXPECT_NE(on.avf.str().find("L2_tag"), std::string::npos);
}

TEST(ReportRendering, ShowsEveryActiveThreadColumn)
{
    auto r = runMix(findMix("8ctx-mem-A"), FetchPolicyKind::Icount, 16000);
    auto s = r.avf.str();
    for (int t = 0; t < 8; ++t)
        EXPECT_NE(s.find("T" + std::to_string(t)), std::string::npos);
}

TEST(OddConfigs, SingleFetchThreadPerCycleWorksAtFourContexts)
{
    auto cfg = table1Config(4);
    cfg.fetchThreadsPerCycle = 1;
    auto r = runMix(cfg, findMix("4ctx-cpu-A"), 20000);
    EXPECT_GE(r.totalCommitted, 20000u);
    for (const auto &t : r.threads)
        EXPECT_GT(t.committed, 0u);
}

TEST(OddConfigs, HugeFetchQueueDoesNotBreakIcount)
{
    auto cfg = table1Config(2);
    cfg.fetchQueueSize = 128;
    auto r = runMix(cfg, findMix("2ctx-mix-A"), 10000);
    EXPECT_GE(r.totalCommitted, 10000u);
}

TEST(OddConfigs, SamplingEveryCycleWorks)
{
    auto cfg = table1Config(2);
    cfg.avfSampleCycles = 1;
    auto r = runMix(cfg, findMix("2ctx-cpu-A"), 2000);
    ASSERT_NE(r.timeline, nullptr);
    EXPECT_EQ(r.timeline->windows(),
              static_cast<std::size_t>(r.cycles));
}

TEST(OddConfigs, EverythingOnAtOnce)
{
    // All optional machinery simultaneously: timeline + trace + L2 AVF +
    // partitioning + a non-default policy.
    auto cfg = table1Config(4);
    cfg.fetchPolicy = FetchPolicyKind::PStall;
    cfg.iqPartitioned = true;
    cfg.avfSampleCycles = 2000;
    cfg.recordCommitTrace = true;
    cfg.avf.trackL2Avf = true;
    auto r = runMix(cfg, findMix("4ctx-mix-B"), 20000);
    EXPECT_GE(r.totalCommitted, 20000u);
    EXPECT_NE(r.timeline, nullptr);
    EXPECT_NE(r.commitTrace, nullptr);
    EXPECT_GT(r.avf.occupancy(HwStruct::L2Data), 0.0);
}

} // namespace
} // namespace smtavf
