/**
 * @file
 * Unit tests for the address-based AVF trackers (DL1 per-byte data, DL1
 * tag, TLB), checking each classification rule of the Biswas model.
 */

#include <gtest/gtest.h>

#include "avf/mem_trackers.hh"

namespace smtavf
{
namespace
{

class CacheTrackerTest : public ::testing::Test
{
  protected:
    CacheTrackerTest()
        : ledger(1), cache({"dl1", 1024, 2, 64, 1, 2}),
          tracker(cache, ledger, HwStruct::Dl1Data, HwStruct::Dl1Tag, true)
    {
    }

    AvfLedger ledger;
    Cache cache;
    CacheVulnTracker tracker;
};

TEST_F(CacheTrackerTest, RegistersStructureBits)
{
    EXPECT_EQ(ledger.structureBits(HwStruct::Dl1Data), 1024u * 8);
    EXPECT_EQ(ledger.structureBits(HwStruct::Dl1Tag),
              16u * tracker.tagBitsPerLine());
}

TEST_F(CacheTrackerTest, FillToReadIsAce)
{
    cache.fill(0x1000, 0, 10);
    cache.access(0x1000, 4, false, 0, 50); // read 4 bytes at +40 cycles
    // Interval [10,50] on 4 bytes ended in a read: 4*8*40 ACE bit-cycles.
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::Dl1Data), 4u * 8 * 40);
}

TEST_F(CacheTrackerTest, FillToEvictionWithoutReadIsUnAce)
{
    cache.fill(0x1000, 0, 10);
    cache.flushAll(110);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::Dl1Data), 0u);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::Dl1Data), 64u * 8 * 100);
}

TEST_F(CacheTrackerTest, ReadToCleanEvictionTailIsUnAce)
{
    cache.fill(0x1000, 0, 0);
    cache.access(0x1000, 4, false, 0, 40);
    cache.flushAll(100);
    // ACE: the 4 read bytes for [0,40]. Un-ACE: their tail [40,100] plus
    // the other 60 bytes for [0,100].
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::Dl1Data), 4u * 8 * 40);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::Dl1Data),
              4u * 8 * 60 + 60u * 8 * 100);
}

TEST_F(CacheTrackerTest, OverwriteMakesPriorIntervalUnAce)
{
    cache.fill(0x1000, 0, 0);
    cache.access(0x1000, 4, true, 0, 30); // store over bytes 0-3
    // [0,30] ended in an overwrite: un-ACE.
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::Dl1Data), 0u);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::Dl1Data), 4u * 8 * 30);
}

TEST_F(CacheTrackerTest, DirtyBytesAreAceUntilEviction)
{
    cache.fill(0x1000, 0, 0);
    cache.access(0x1000, 4, true, 0, 30);
    cache.flushAll(100);
    // The written bytes must survive to writeback: [30,100] ACE.
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::Dl1Data), 4u * 8 * 70);
}

TEST_F(CacheTrackerTest, DirtyLineTagIsAceForWholeResidency)
{
    cache.fill(0x1000, 0, 10);
    cache.access(0x1000, 4, true, 0, 30);
    cache.flushAll(110);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::Dl1Tag),
              tracker.tagBitsPerLine() * 100u);
}

TEST_F(CacheTrackerTest, CleanLineTagAceOnlyUntilLastAccess)
{
    cache.fill(0x1000, 0, 10);
    cache.access(0x1000, 8, false, 0, 60);
    cache.flushAll(110);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::Dl1Tag),
              tracker.tagBitsPerLine() * 50u);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::Dl1Tag),
              tracker.tagBitsPerLine() * 50u);
}

TEST_F(CacheTrackerTest, UntouchedCleanLineTagIsFullyUnAce)
{
    cache.fill(0x1000, 0, 10);
    cache.flushAll(110);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::Dl1Tag), 0u);
}

TEST_F(CacheTrackerTest, RereadExtendsAceCoverage)
{
    cache.fill(0x1000, 0, 0);
    cache.access(0x1000, 4, false, 0, 20);
    cache.access(0x1000, 4, false, 0, 80);
    // Both [0,20] and [20,80] end in reads.
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::Dl1Data), 4u * 8 * 80);
}

TEST_F(CacheTrackerTest, EvictionViaCapacityClosesIntervals)
{
    // 2-way set: the third fill in one set evicts the LRU victim.
    cache.fill(0x0000, 0, 0);
    cache.fill(0x2000, 0, 1);
    cache.access(0x0000, 4, false, 0, 10); // refresh 0x0000
    cache.fill(0x4000, 0, 50);             // evicts untouched 0x2000
    EXPECT_FALSE(cache.probe(0x2000));
    EXPECT_TRUE(cache.probe(0x0000));
    // 0x2000's 64 untouched bytes resolved un-ACE over [1,50].
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::Dl1Data), 64u * 8 * 49);
}

TEST(CacheTrackerPerLine, PerLineModeTouchesWholeLine)
{
    AvfLedger ledger(1);
    Cache cache({"dl1", 1024, 2, 64, 1, 2});
    CacheVulnTracker tracker(cache, ledger, HwStruct::Dl1Data,
                             HwStruct::Dl1Tag, /*per_byte=*/false);
    cache.fill(0x1000, 0, 0);
    cache.access(0x1000, 4, false, 0, 40);
    // The whole 64-byte line counts as read.
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::Dl1Data), 64u * 8 * 40);
}

TEST(TlbTrackerTest, EntryAceBetweenUsesUnAceTail)
{
    AvfLedger ledger(1);
    Tlb tlb({"dtlb", 8, 2, 8192, 200});
    TlbVulnTracker tracker(tlb, ledger, HwStruct::Dtlb);

    tlb.access(0x10000, 0, 10);  // miss + fill
    tlb.access(0x10000, 0, 60);  // hit: [10,60] ACE
    tlb.flushAll(110);           // tail [60,110] un-ACE
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::Dtlb), bits::tlbEntry * 50u);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::Dtlb), bits::tlbEntry * 50u);
}

TEST(TlbTrackerTest, NeverReusedEntryIsFullyUnAce)
{
    AvfLedger ledger(1);
    Tlb tlb({"dtlb", 8, 2, 8192, 200});
    TlbVulnTracker tracker(tlb, ledger, HwStruct::Dtlb);
    tlb.access(0x10000, 0, 10);
    tlb.flushAll(110);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::Dtlb), 0u);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::Dtlb),
              bits::tlbEntry * 100u);
}

TEST(TlbTrackerTest, RegistersStructureBits)
{
    AvfLedger ledger(1);
    Tlb tlb({"dtlb", 8, 2, 8192, 200});
    TlbVulnTracker tracker(tlb, ledger, HwStruct::Dtlb);
    EXPECT_EQ(ledger.structureBits(HwStruct::Dtlb), 8u * bits::tlbEntry);
}

} // namespace
} // namespace smtavf
