/**
 * @file
 * Unit tests for the logging/error machinery.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

TEST(Logging, PanicThrowsInTestMode)
{
    ThrowGuard guard;
    EXPECT_THROW(SMTAVF_PANIC("boom"), SimError);
}

TEST(Logging, FatalThrowsInTestMode)
{
    ThrowGuard guard;
    EXPECT_THROW(SMTAVF_FATAL("bad config"), SimError);
}

TEST(Logging, MessageConcatenatesArgs)
{
    ThrowGuard guard;
    try {
        SMTAVF_FATAL("value ", 42, " out of ", "range");
        FAIL() << "should have thrown";
    } catch (const SimError &e) {
        EXPECT_EQ(e.message, "value 42 out of range");
    }
}

TEST(Logging, WarnDoesNotThrow)
{
    ThrowGuard guard;
    EXPECT_NO_THROW(SMTAVF_WARN("just a warning"));
    EXPECT_NO_THROW(SMTAVF_INFORM("status"));
}

} // namespace
} // namespace smtavf
