/**
 * @file
 * Process-isolation and crash-safe-journal suite (the `chaos` CTest
 * label; see docs/ROBUSTNESS.md).
 *
 * The chaos tests use CampaignOptions::runFn as the injection seam: in
 * --isolate=process campaigns runFn executes inside the forked child, so
 * a runFn that segfaults, aborts, spins past its CPU rlimit or leaks
 * until the RSS cap exercises the *real* fork/rlimit/kill/reap/classify
 * path, not a mock. Each directed test pins the exact RunOutcome a death
 * must produce, and the differential tests prove process-mode campaigns
 * bit-identical to thread-mode ones.
 *
 * This binary intentionally carries no `tsan` label: the tests fork from
 * a threaded pool and kill children with real signals, which the
 * ThreadSanitizer runtime cannot follow. The journal CRC/fsck tests ride
 * along here because the committed corruption fixtures pair with the
 * chaos-injection story.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "sim/campaign.hh"
#include "sim/errors.hh"
#include "sim/experiment.hh"
#include "sim/isolate.hh"
#include "sim/journal.hh"
#include "workload/mixes.hh"

#if defined(__SANITIZE_ADDRESS__)
#define SMTAVF_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SMTAVF_ASAN 1
#endif
#endif

namespace smtavf
{
namespace
{

constexpr std::uint64_t kBudget = 3000;

std::string
dataPath(const char *name)
{
    return std::string(SMTAVF_TEST_DATA_DIR "/") + name;
}

std::vector<Experiment>
fourMixCampaign()
{
    const char *names[] = {"2ctx-cpu-A", "2ctx-mix-A", "2ctx-mem-A",
                           "2ctx-cpu-B"};
    std::vector<Experiment> exps;
    for (std::size_t i = 0; i < 4; ++i) {
        Experiment e = makeExperiment(findMix(names[i]),
                                      FetchPolicyKind::Icount, kBudget);
        e.cfg.seed = 21 + i;
        exps.push_back(std::move(e));
    }
    return exps;
}

/** Bit-identical comparison of everything a SimResult reports. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.mixName, b.mixName);
    EXPECT_EQ(a.policyName, b.policyName);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.totalCommitted, b.totalCommitted);
    EXPECT_EQ(a.ipc, b.ipc); // exact, not approximate

    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (std::size_t t = 0; t < a.threads.size(); ++t) {
        EXPECT_EQ(a.threads[t].benchmark, b.threads[t].benchmark);
        EXPECT_EQ(a.threads[t].committed, b.threads[t].committed);
        EXPECT_EQ(a.threads[t].ipc, b.threads[t].ipc);
    }

    EXPECT_EQ(a.avf.numThreads(), b.avf.numThreads());
    EXPECT_EQ(a.avf.cycles(), b.avf.cycles());
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        EXPECT_EQ(a.avf.avf(s), b.avf.avf(s)) << hwStructName(s);
        EXPECT_EQ(a.avf.residualAvf(s), b.avf.residualAvf(s))
            << hwStructName(s);
        EXPECT_EQ(a.avf.occupancy(s), b.avf.occupancy(s)) << hwStructName(s);
    }

    ASSERT_EQ(a.stats.all().size(), b.stats.all().size());
    for (const auto &[name, value] : a.stats.all()) {
        ASSERT_TRUE(b.stats.has(name)) << name;
        EXPECT_EQ(value, b.stats.get(name)) << name;
    }
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

void
writeLines(const std::string &path, const std::vector<std::string> &lines)
{
    std::ofstream out(path, std::ios::trunc);
    for (const auto &l : lines)
        out << l << '\n';
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** The run records of a journal, in file order (comments dropped). */
std::vector<std::string>
runRecords(const std::string &path)
{
    std::vector<std::string> recs;
    for (auto &l : readLines(path))
        if (l.rfind("run ", 0) == 0)
            recs.push_back(std::move(l));
    return recs;
}

CampaignOptions
processOpt()
{
    CampaignOptions opt;
    opt.isolate = IsolateMode::Process;
    return opt;
}

/**
 * Die by a real signal inside the forked child. The default disposition
 * is restored first so sanitizer/gtest handlers cannot turn the death
 * into a report + clean exit — the supervisor must see the raw signal.
 */
[[noreturn]] void
dieBySignal(int sig)
{
    std::signal(sig, SIG_DFL);
    ::raise(sig);
    ::_exit(99); // not reached
}

// Linux wait-status encodings, for directed classifier tests.
int
makeExited(int code)
{
    return (code & 0xff) << 8;
}

int
makeSignaled(int sig)
{
    return sig & 0x7f;
}

// --- CRC32C and the v3 wire format --------------------------------------

TEST(Crc32c, StandardCheckValue)
{
    EXPECT_EQ(crc32c("123456789"), 0xe3069283u);
    EXPECT_EQ(crc32c(""), 0x00000000u);
    EXPECT_NE(crc32c("a"), crc32c("b"));
}

TEST(JournalV3, RoundTripsAndCrcRejectsBitFlips)
{
    SimResult r = runExperiment(fourMixCampaign()[0]);
    std::string line = serializeRun(0x1234, r);
    EXPECT_EQ(line.rfind("run v3 crc=", 0), 0u);

    std::uint64_t fp = 0;
    SimResult back;
    ASSERT_TRUE(parseRun(line, fp, back));
    EXPECT_EQ(fp, 0x1234u);
    expectIdentical(back, r);

    // A single flipped payload character still parses structurally but
    // must fail the CRC.
    std::string flipped = line;
    auto at = flipped.find("cycles=");
    ASSERT_NE(at, std::string::npos);
    flipped[at + 7] = flipped[at + 7] == '1' ? '2' : '1';
    EXPECT_FALSE(parseRun(flipped, fp, back));

    // A corrupted CRC field rejects too.
    std::string badcrc = line;
    at = badcrc.find("crc=");
    badcrc[at + 4] = badcrc[at + 4] == '0' ? '1' : '0';
    EXPECT_FALSE(parseRun(badcrc, fp, back));
}

TEST(JournalV3, LegacyV2FixtureStillLoads)
{
    // Committed pre-CRC journal (the format every journal on disk had
    // before v3): must keep loading without a single skipped record.
    std::size_t skipped = 0;
    auto map = loadJournal(dataPath("journal_v2_legacy.journal"), &skipped);
    EXPECT_EQ(map.size(), 51u);
    EXPECT_EQ(skipped, 0u);

    JournalFsck fsck = fsckJournal(dataPath("journal_v2_legacy.journal"));
    EXPECT_TRUE(fsck.clean());
    EXPECT_EQ(fsck.records, 51u);
    EXPECT_EQ(fsck.comments, 53u);
}

// --- fsck ---------------------------------------------------------------

TEST(JournalFsck, CleanFixturePasses)
{
    JournalFsck fsck = fsckJournal(dataPath("journal_v3_clean.journal"));
    EXPECT_TRUE(fsck.clean());
    EXPECT_EQ(fsck.records, 2u);
    EXPECT_EQ(fsck.comments, 1u);

    std::size_t skipped = 0;
    auto map = loadJournal(dataPath("journal_v3_clean.journal"), &skipped);
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(skipped, 0u);
}

TEST(JournalFsck, DetectsBitFlippedRecordInCommittedFixture)
{
    JournalFsck fsck = fsckJournal(dataPath("journal_v3_bitflip.journal"));
    EXPECT_FALSE(fsck.clean());
    ASSERT_EQ(fsck.issues.size(), 1u);
    EXPECT_EQ(fsck.issues[0].line, 2u);
    EXPECT_NE(fsck.issues[0].reason.find("bad CRC"), std::string::npos);
    EXPECT_GT(fsck.issues[0].offset, 0u);
    EXPECT_EQ(fsck.records, 1u); // the undamaged record still counts

    // The loader skips exactly the damaged record.
    std::size_t skipped = 0;
    auto map = loadJournal(dataPath("journal_v3_bitflip.journal"), &skipped);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(skipped, 1u);
}

TEST(JournalFsck, DetectsTornTailInCommittedFixtureAndRepairs)
{
    JournalFsck fsck = fsckJournal(dataPath("journal_v3_torn.journal"));
    EXPECT_FALSE(fsck.clean());
    ASSERT_EQ(fsck.issues.size(), 1u);
    EXPECT_NE(fsck.issues[0].reason.find("torn record"), std::string::npos);
    EXPECT_TRUE(fsck.tailOnly);
    EXPECT_EQ(fsck.issues[0].offset, fsck.truncateOffset);

    // Repair a copy in place: afterwards the journal is clean and keeps
    // exactly the records before the tear.
    const std::string copy = "isolate_torn_repair.journal";
    writeLines(copy, readLines(dataPath("journal_v3_torn.journal")));
    {
        // readLines/writeLines normalize the missing trailing newline;
        // rewrite the torn bytes exactly.
        std::ifstream in(dataPath("journal_v3_torn.journal"),
                         std::ios::binary);
        std::string raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
        std::ofstream out(copy, std::ios::binary | std::ios::trunc);
        out << raw;
    }
    JournalFsck before = fsckJournal(copy);
    ASSERT_TRUE(before.tailOnly);
    ASSERT_TRUE(repairJournalTail(copy, before));
    JournalFsck after = fsckJournal(copy);
    EXPECT_TRUE(after.clean());
    EXPECT_EQ(after.records, before.records);
    std::size_t skipped = 0;
    EXPECT_EQ(loadJournal(copy, &skipped).size(), before.records);
    EXPECT_EQ(skipped, 0u);
    std::remove(copy.c_str());
}

TEST(JournalFsck, MidFileCorruptionIsNotTailRepairable)
{
    auto lines = readLines(dataPath("journal_v3_clean.journal"));
    ASSERT_EQ(lines.size(), 3u); // header comment + 2 records
    auto at = lines[1].find("ipc=");
    ASSERT_NE(at, std::string::npos);
    lines[1][at + 6] ^= 0x4; // flip a bit in the FIRST record
    const std::string path = "isolate_midfile.journal";
    writeLines(path, lines);

    JournalFsck fsck = fsckJournal(path);
    ASSERT_EQ(fsck.issues.size(), 1u);
    EXPECT_EQ(fsck.issues[0].line, 2u);
    EXPECT_FALSE(fsck.tailOnly); // a valid record follows the damage
    EXPECT_FALSE(repairJournalTail(path, fsck));
    EXPECT_EQ(fsckJournal(path).records, 1u); // file untouched
    std::remove(path.c_str());
}

// --- merge-journals CRC verification ------------------------------------

TEST(MergeJournals, RefusesCorruptInputAndReportsOffsets)
{
    const std::string out = "isolate_merge_refused.journal";
    std::remove(out.c_str());
    std::vector<std::string> corruption;
    std::size_t n = mergeJournals({dataPath("journal_v3_clean.journal"),
                                   dataPath("journal_v3_bitflip.journal")},
                                  out, &corruption);
    EXPECT_EQ(n, 0u);
    ASSERT_EQ(corruption.size(), 1u);
    EXPECT_NE(corruption[0].find("journal_v3_bitflip.journal"),
              std::string::npos);
    EXPECT_NE(corruption[0].find("line 2"), std::string::npos);
    EXPECT_NE(corruption[0].find("@ byte"), std::string::npos);
    EXPECT_FALSE(fileExists(out)); // nothing written on refusal
}

TEST(MergeJournals, CleanInputsMergeAcrossFormatVersions)
{
    const std::string out = "isolate_merge_ok.journal";
    std::vector<std::string> corruption;
    std::size_t n = mergeJournals({dataPath("journal_v3_clean.journal"),
                                   dataPath("journal_v2_legacy.journal")},
                                  out, &corruption);
    EXPECT_TRUE(corruption.empty());
    EXPECT_GE(n, 51u); // dedup may fold overlapping fingerprints
    std::size_t skipped = 0;
    EXPECT_EQ(loadJournal(out, &skipped).size(), n);
    EXPECT_EQ(skipped, 0u);
    std::remove(out.c_str());
}

// --- deterministic retry backoff ----------------------------------------

TEST(Backoff, DeterministicExponentialWithSeedJitter)
{
    EXPECT_EQ(retryBackoffSeconds(0, 42, 1.0), 0.0);
    EXPECT_EQ(retryBackoffSeconds(3, 42, 0.0), 0.0);

    for (unsigned k = 1; k <= 6; ++k) {
        double lo = 0.5 * static_cast<double>(1u << (k - 1));
        double v = retryBackoffSeconds(k, 42, 0.5);
        EXPECT_GE(v, lo) << k;
        EXPECT_LT(v, 2.0 * lo) << k;
        // Replay-deterministic: the same (attempt, seed, base) always
        // backs off identically.
        EXPECT_EQ(v, retryBackoffSeconds(k, 42, 0.5)) << k;
    }
    // Different runs decorrelate.
    EXPECT_NE(retryBackoffSeconds(1, 42, 0.5),
              retryBackoffSeconds(1, 43, 0.5));
}

// --- mode parsing and the crash taxonomy --------------------------------

TEST(IsolateMode, ParseAndName)
{
    IsolateMode m = IsolateMode::Thread;
    EXPECT_TRUE(parseIsolateMode("process", m));
    EXPECT_EQ(m, IsolateMode::Process);
    EXPECT_TRUE(parseIsolateMode("THREAD", m));
    EXPECT_EQ(m, IsolateMode::Thread);
    EXPECT_FALSE(parseIsolateMode("container", m));
    EXPECT_STREQ(isolateModeName(IsolateMode::Process), "process");
    EXPECT_STREQ(isolateModeName(IsolateMode::Thread), "thread");
}

TEST(CrashTaxonomy, ClassifiesWaitStatuses)
{
    EXPECT_EQ(classifyWaitStatus(makeExited(7), false), CrashKind::ExitCode);
    EXPECT_EQ(classifyWaitStatus(makeSignaled(SIGSEGV), false),
              CrashKind::Segv);
    EXPECT_EQ(classifyWaitStatus(makeSignaled(SIGABRT), false),
              CrashKind::Abort);
    EXPECT_EQ(classifyWaitStatus(makeSignaled(SIGBUS), false),
              CrashKind::Bus);
    EXPECT_EQ(classifyWaitStatus(makeSignaled(SIGXCPU), false),
              CrashKind::CpuLimit);
    // The supervisor's own SIGKILL is a hard timeout; anyone else's is
    // the OOM killer's.
    EXPECT_EQ(classifyWaitStatus(makeSignaled(SIGKILL), true),
              CrashKind::HardTimeout);
    EXPECT_EQ(classifyWaitStatus(makeSignaled(SIGKILL), false),
              CrashKind::Oom);
    EXPECT_EQ(classifyWaitStatus(makeSignaled(SIGTERM), false),
              CrashKind::Signal);

    EXPECT_STREQ(crashKindName(CrashKind::Segv), "segv");
    EXPECT_STREQ(crashKindName(CrashKind::HardTimeout), "hard-timeout");
    EXPECT_NE(describeChildDeath(makeSignaled(SIGSEGV), false)
                  .find("SIGSEGV"),
              std::string::npos);
}

// --- runInChild ---------------------------------------------------------

TEST(RunInChild, HealthyRunIsBitIdenticalToInProcess)
{
    Experiment e = fourMixCampaign()[0];
    ChildOutcome co = runInChild([&] { return runExperiment(e); }, {});
    ASSERT_EQ(co.kind, ChildOutcome::Kind::Result);
    EXPECT_EQ(co.crash, CrashKind::None);
    expectIdentical(co.result, runExperiment(e));
}

TEST(RunInChild, ExceptionsCrossAsErrorMessages)
{
    ChildOutcome co = runInChild(
        []() -> SimResult { throw std::runtime_error("boom in child"); },
        {});
    ASSERT_EQ(co.kind, ChildOutcome::Kind::Error);
    EXPECT_EQ(co.message, "boom in child");
}

TEST(RunInChild, LivelockCrossesAsLivelock)
{
    Experiment e = fourMixCampaign()[0];
    e.cfg.prewarmCaches = false; // cold caches: nothing commits in 50cy
    e.cfg.livelockCycles = 50;
    ChildOutcome co = runInChild([&] { return runExperiment(e); }, {});
    ASSERT_EQ(co.kind, ChildOutcome::Kind::Livelock);
    EXPECT_NE(co.message.find("livelock"), std::string::npos);
}

// --- directed chaos: every injected death, classified and pinned --------

TEST(Chaos, SegfaultingChildIsClassifiedRetriedAndQuarantined)
{
    auto exps = fourMixCampaign();
    CampaignOptions opt = processOpt();
    opt.retries = 3;
    opt.runFn = [](const Experiment &e, std::size_t i) {
        if (i == 2)
            dieBySignal(SIGSEGV);
        return runExperiment(e);
    };
    CampaignRunner pool(2);
    auto report = runTolerant(pool, exps, opt);

    const RunOutcome &o = report.outcomes[2];
    EXPECT_EQ(o.status, RunStatus::Quarantined); // same death twice
    EXPECT_EQ(o.attempts, 2u);
    EXPECT_EQ(o.crash, CrashKind::Segv);
    EXPECT_NE(o.error.find("SIGSEGV"), std::string::npos);

    // The crash was contained: every other run completed, bit-identical
    // to an in-process execution.
    for (std::size_t i : {0u, 1u, 3u}) {
        ASSERT_EQ(report.outcomes[i].status, RunStatus::Ok) << i;
        expectIdentical(report.outcomes[i].result, runExperiment(exps[i]));
    }

    // CSV pins the status column and stays parseable.
    std::string csv = campaignCsv(exps, report);
    EXPECT_NE(csv.find(exps[2].label + "," +
                       std::to_string(exps[2].cfg.seed) + ",quarantined,2"),
              std::string::npos);
    EXPECT_NE(report.failureReport().find("[segv]"), std::string::npos);
}

TEST(Chaos, AbortingChildIsClassified)
{
    auto exps = fourMixCampaign();
    exps.resize(2);
    CampaignOptions opt = processOpt();
    opt.runFn = [](const Experiment &e, std::size_t i) {
        if (i == 1)
            dieBySignal(SIGABRT);
        return runExperiment(e);
    };
    CampaignRunner pool(1);
    auto report = runTolerant(pool, exps, opt);
    EXPECT_EQ(report.outcomes[0].status, RunStatus::Ok);
    EXPECT_EQ(report.outcomes[1].status, RunStatus::Quarantined);
    EXPECT_EQ(report.outcomes[1].crash, CrashKind::Abort);
    EXPECT_NE(report.outcomes[1].error.find("SIGABRT"), std::string::npos);
}

TEST(Chaos, NonzeroExitCodeIsClassified)
{
    auto exps = fourMixCampaign();
    exps.resize(1);
    CampaignOptions opt = processOpt();
    opt.runFn = [](const Experiment &, std::size_t) -> SimResult {
        ::_exit(7); // bypasses the child protocol entirely
    };
    CampaignRunner pool(1);
    auto report = runTolerant(pool, exps, opt);
    EXPECT_EQ(report.outcomes[0].status, RunStatus::Quarantined);
    EXPECT_EQ(report.outcomes[0].crash, CrashKind::ExitCode);
    EXPECT_NE(report.outcomes[0].error.find("exited with code 7"),
              std::string::npos);
}

TEST(Chaos, CpuRlimitSpinIsTimedOutWithoutRetry)
{
    auto exps = fourMixCampaign();
    exps.resize(1);
    CampaignOptions opt = processOpt();
    opt.retries = 5;
    opt.childCpuSeconds = 1;
    opt.runFn = [](const Experiment &, std::size_t) -> SimResult {
        volatile std::uint64_t sink = 0;
        for (;;) // never polls anything; only the rlimit can stop this
            ++sink;
    };
    CampaignRunner pool(1);
    auto report = runTolerant(pool, exps, opt);
    EXPECT_EQ(report.outcomes[0].status, RunStatus::TimedOut);
    EXPECT_EQ(report.outcomes[0].attempts, 1u); // burning CPU twice is futile
    EXPECT_EQ(report.outcomes[0].crash, CrashKind::CpuLimit);
    EXPECT_NE(report.outcomes[0].error.find("SIGXCPU"), std::string::npos);
}

TEST(Chaos, HardTimeoutKillsAWedgedChild)
{
    auto exps = fourMixCampaign();
    exps.resize(1);
    CampaignOptions opt = processOpt();
    opt.retries = 5;
    opt.hardTimeoutSeconds = 0.25;
    opt.runFn = [](const Experiment &, std::size_t) -> SimResult {
        // Sleeps, so no CPU-based limit could ever fire: only the
        // supervisor's kill-based wall-clock timeout works here.
        std::this_thread::sleep_for(std::chrono::seconds(300));
        return {};
    };
    CampaignRunner pool(1);
    auto t0 = std::chrono::steady_clock::now();
    auto report = runTolerant(pool, exps, opt);
    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(dt.count(), 30.0); // killed, not waited out
    EXPECT_EQ(report.outcomes[0].status, RunStatus::TimedOut);
    EXPECT_EQ(report.outcomes[0].attempts, 1u);
    EXPECT_EQ(report.outcomes[0].crash, CrashKind::HardTimeout);
    EXPECT_NE(report.outcomes[0].error.find("hard timeout"),
              std::string::npos);
}

TEST(Chaos, LeakUntilMemoryCapIsClassifiedOom)
{
#ifdef SMTAVF_ASAN
    GTEST_SKIP() << "RLIMIT_AS is incompatible with ASan shadow memory";
#else
    auto exps = fourMixCampaign();
    exps.resize(1);
    CampaignOptions opt = processOpt();
    opt.childMemoryBytes = 512ull * 1024 * 1024;
    opt.runFn = [](const Experiment &, std::size_t) -> SimResult {
        std::vector<std::unique_ptr<char[]>> hoard;
        for (;;) { // leak until the address-space cap stops us
            hoard.push_back(std::make_unique<char[]>(8 << 20));
            for (std::size_t i = 0; i < (8u << 20); i += 4096)
                hoard.back()[i] = 1; // touch, so pages really materialize
        }
    };
    CampaignRunner pool(1);
    auto report = runTolerant(pool, exps, opt);
    EXPECT_EQ(report.outcomes[0].status, RunStatus::Quarantined);
    EXPECT_EQ(report.outcomes[0].crash, CrashKind::Oom);
    EXPECT_NE(report.outcomes[0].error.find("memory cap"),
              std::string::npos);
#endif
}

TEST(Chaos, UnsolicitedSigkillIsClassifiedOom)
{
    // The kernel OOM killer's signature, simulated from inside: a
    // SIGKILL the supervisor did not send.
    auto exps = fourMixCampaign();
    exps.resize(1);
    CampaignOptions opt = processOpt();
    opt.runFn = [](const Experiment &, std::size_t) -> SimResult {
        ::raise(SIGKILL);
        ::_exit(99); // not reached
    };
    CampaignRunner pool(1);
    auto report = runTolerant(pool, exps, opt);
    EXPECT_EQ(report.outcomes[0].status, RunStatus::Quarantined);
    EXPECT_EQ(report.outcomes[0].crash, CrashKind::Oom);
    EXPECT_NE(report.outcomes[0].error.find("unsolicited SIGKILL"),
              std::string::npos);
}

TEST(Chaos, TransientCrashRecoversViaRetry)
{
    const std::string marker = "isolate_transient.marker";
    std::remove(marker.c_str());

    auto exps = fourMixCampaign();
    exps.resize(2);
    CampaignOptions opt = processOpt();
    opt.retries = 2;
    // Cross-process transient-failure state: the child leaves a marker
    // before dying, so only its first incarnation crashes.
    opt.runFn = [&](const Experiment &e, std::size_t i) {
        if (i == 1 && !fileExists(marker)) {
            {
                std::ofstream m(marker);
                m << "x";
            }
            dieBySignal(SIGSEGV);
        }
        return runExperiment(e);
    };
    CampaignRunner pool(1);
    auto report = runTolerant(pool, exps, opt);
    EXPECT_EQ(report.outcomes[1].status, RunStatus::Ok);
    EXPECT_EQ(report.outcomes[1].attempts, 2u);
    EXPECT_EQ(report.outcomes[1].crash, CrashKind::None); // last attempt clean
    expectIdentical(report.outcomes[1].result, runExperiment(exps[1]));
    std::remove(marker.c_str());
}

TEST(Chaos, BackoffDelaysTheRetry)
{
    const std::string marker = "isolate_backoff.marker";
    std::remove(marker.c_str());
    auto exps = fourMixCampaign();
    exps.resize(1);
    CampaignOptions opt = processOpt();
    opt.retries = 1;
    opt.backoffSeconds = 0.3;
    opt.runFn = [&](const Experiment &e, std::size_t i) {
        if (!fileExists(marker)) {
            {
                std::ofstream m(marker);
                m << "x";
            }
            dieBySignal(SIGSEGV);
        }
        return runExperiment(e);
    };
    CampaignRunner pool(1);
    auto t0 = std::chrono::steady_clock::now();
    auto report = runTolerant(pool, exps, opt);
    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    EXPECT_EQ(report.outcomes[0].status, RunStatus::Ok);
    EXPECT_EQ(report.outcomes[0].attempts, 2u);
    // attempt 2 waited at least the base backoff (jitter only adds).
    EXPECT_GE(dt.count(), 0.3);
    std::remove(marker.c_str());
}

// --- the differential guarantees ----------------------------------------

TEST(ProcessDifferential, OneWorkerJournalIsByteIdenticalToThreadMode)
{
    const std::string tj = "isolate_diff_thread.journal";
    const std::string pj = "isolate_diff_process.journal";
    std::remove(tj.c_str());
    std::remove(pj.c_str());

    auto exps = fourMixCampaign();
    CampaignOptions topt;
    topt.journalPath = tj;
    CampaignOptions popt = processOpt();
    popt.journalPath = pj;

    CampaignRunner pool(1);
    auto treport = runTolerant(pool, exps, topt);
    auto preport = runTolerant(pool, exps, popt);
    ASSERT_TRUE(treport.allOk());
    ASSERT_TRUE(preport.allOk());

    for (std::size_t i = 0; i < exps.size(); ++i)
        expectIdentical(preport.outcomes[i].result,
                        treport.outcomes[i].result);
    // With one worker even the append order matches: the files must be
    // byte-for-byte identical.
    EXPECT_EQ(readLines(pj), readLines(tj));
    EXPECT_EQ(campaignCsv(exps, preport), campaignCsv(exps, treport));

    std::remove(tj.c_str());
    std::remove(pj.c_str());
}

TEST(ProcessDifferential, FourWorkerRecordsMatchThreadModeAsSets)
{
    const std::string tj = "isolate_diff4_thread.journal";
    const std::string pj = "isolate_diff4_process.journal";
    std::remove(tj.c_str());
    std::remove(pj.c_str());

    auto exps = fourMixCampaign();
    CampaignOptions topt;
    topt.journalPath = tj;
    CampaignOptions popt = processOpt();
    popt.journalPath = pj;

    CampaignRunner pool(4);
    auto treport = runTolerant(pool, exps, topt);
    auto preport = runTolerant(pool, exps, popt);
    ASSERT_TRUE(treport.allOk());
    ASSERT_TRUE(preport.allOk());

    for (std::size_t i = 0; i < exps.size(); ++i)
        expectIdentical(preport.outcomes[i].result,
                        treport.outcomes[i].result);
    // Append order is scheduling-dependent at 4 workers; the record
    // *sets* must still match exactly.
    auto trecs = runRecords(tj);
    auto precs = runRecords(pj);
    std::sort(trecs.begin(), trecs.end());
    std::sort(precs.begin(), precs.end());
    EXPECT_EQ(precs, trecs);
    EXPECT_EQ(campaignCsv(exps, preport), campaignCsv(exps, treport));

    std::remove(tj.c_str());
    std::remove(pj.c_str());
}

TEST(ProcessDifferential, ThreadModeResumesFromProcessJournal)
{
    const std::string pj = "isolate_resume.journal";
    std::remove(pj.c_str());

    auto exps = fourMixCampaign();
    CampaignOptions popt = processOpt();
    popt.journalPath = pj;
    CampaignRunner pool(2);
    auto preport = runTolerant(pool, exps, popt);
    ASSERT_TRUE(preport.allOk());

    CampaignOptions ropt;
    ropt.journalPath = pj;
    ropt.resume = true;
    ropt.runFn = [](const Experiment &, std::size_t) -> SimResult {
        SMTAVF_FATAL("resume must not re-simulate journaled runs");
    };
    auto rreport = runTolerant(pool, exps, ropt);
    ASSERT_TRUE(rreport.allOk());
    for (std::size_t i = 0; i < exps.size(); ++i) {
        EXPECT_TRUE(rreport.outcomes[i].fromJournal) << i;
        expectIdentical(rreport.outcomes[i].result,
                        preport.outcomes[i].result);
    }
    std::remove(pj.c_str());
}

// --- the in-simulator cancel poll (thread-mode satellite) ---------------

TEST(CancelPoll, SimulatorUnwindsAtTheConfiguredInterval)
{
    std::atomic<bool> flag{true};
    Experiment e = fourMixCampaign()[0];
    e.cfg.cancel = &flag;
    e.cfg.cancelCheckCycles = 64;
    e.budget = 1000000; // the poll, not the budget, must end this run
    try {
        runExperiment(e);
        FAIL() << "expected CancelledError";
    } catch (const CancelledError &err) {
        EXPECT_EQ(err.cycle, 64u); // first poll, deterministically
        EXPECT_NE(std::string(err.what()).find("cancelled mid-run"),
                  std::string::npos);
    }
}

TEST(CancelPoll, DisarmedPollPerturbsNothing)
{
    std::atomic<bool> flag{false};
    Experiment plain = fourMixCampaign()[0];
    Experiment polled = plain;
    polled.cfg.cancel = &flag;
    polled.cfg.cancelCheckCycles = 64;
    // The poll knobs must not change a single bit of the result...
    expectIdentical(runExperiment(polled), runExperiment(plain));
    // ...nor the journal key (they are fingerprint-excluded).
    EXPECT_EQ(experimentFingerprint(polled), experimentFingerprint(plain));
}

TEST(CancelPoll, CampaignClassifiesMidRunCancellationAsTimedOut)
{
    std::atomic<bool> flag{false};
    auto exps = fourMixCampaign();
    exps.resize(2);
    for (auto &e : exps)
        e.budget = 500000; // long enough that the poll ends them
    CampaignOptions opt;
    opt.cancel = &flag;
    opt.cancelCheckCycles = 64;
    opt.runFn = [&](const Experiment &e, std::size_t i) {
        // The campaign must have wired the flag into the config copy.
        EXPECT_EQ(e.cfg.cancel, &flag) << i;
        EXPECT_EQ(e.cfg.cancelCheckCycles, 64u) << i;
        if (i == 1)
            flag.store(true); // cancel while run 1 is in flight
        return runExperiment(e);
    };
    CampaignRunner pool(1);
    auto report = runTolerant(pool, exps, opt);
    EXPECT_EQ(report.outcomes[1].status, RunStatus::TimedOut);
    EXPECT_EQ(report.outcomes[1].attempts, 1u); // cancel is never retried
    EXPECT_NE(report.outcomes[1].error.find("cancelled mid-run"),
              std::string::npos);
}

TEST(CancelPoll, SupervisorKillsChildOnCancellation)
{
    // Process-mode cancellation: the child never polls anything; the
    // supervisor's SIGKILL must end it promptly anyway.
    std::atomic<bool> flag{false};
    auto exps = fourMixCampaign();
    exps.resize(1);
    CampaignOptions opt = processOpt();
    opt.cancel = &flag;
    opt.runFn = [](const Experiment &, std::size_t) -> SimResult {
        std::this_thread::sleep_for(std::chrono::seconds(300));
        return {};
    };
    std::thread trigger([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        flag.store(true);
    });
    CampaignRunner pool(1);
    auto t0 = std::chrono::steady_clock::now();
    auto report = runTolerant(pool, exps, opt);
    std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    trigger.join();
    EXPECT_LT(dt.count(), 30.0);
    EXPECT_EQ(report.outcomes[0].status, RunStatus::TimedOut);
    EXPECT_NE(report.outcomes[0].error.find("campaign cancelled"),
              std::string::npos);
}

} // namespace
} // namespace smtavf
