/**
 * @file
 * Unit tests for the allocation-free hot-path containers: SmallVec
 * (inline small-buffer vector) and RingBuffer (flat circular deque).
 * Both replace node-allocating standard containers on the simulator's
 * per-cycle path, so their contracts — iteration order above all, since
 * issue arbitration and AVF residency intervals depend on it — are
 * pinned here independent of any simulation.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "base/ring_buffer.hh"
#include "base/small_vec.hh"

namespace smtavf
{
namespace
{

// ---- SmallVec ----------------------------------------------------------

TEST(SmallVec, StaysInlineUpToCapacity)
{
    SmallVec<int, 4> v;
    EXPECT_TRUE(v.empty());
    for (int i = 0; i < 4; ++i)
        v.push_back(i);
    EXPECT_TRUE(v.inlined());
    EXPECT_EQ(v.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(v[i], i);
}

TEST(SmallVec, SpillsToHeapPreservingContents)
{
    SmallVec<int, 2> v;
    for (int i = 0; i < 9; ++i)
        v.push_back(i * 10);
    EXPECT_FALSE(v.inlined());
    EXPECT_EQ(v.size(), 9u);
    int expect = 0;
    for (int x : v) {
        EXPECT_EQ(x, expect);
        expect += 10;
    }
    EXPECT_EQ(v.back(), 80);
}

TEST(SmallVec, ClearKeepsCapacity)
{
    SmallVec<int, 2> v;
    for (int i = 0; i < 8; ++i)
        v.push_back(i);
    auto cap = v.capacity();
    v.clear();
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.capacity(), cap);
    v.push_back(42);
    EXPECT_EQ(v[0], 42);
}

TEST(SmallVec, CopyAndMoveRoundTrip)
{
    SmallVec<int, 2> small;
    small.push_back(1);
    SmallVec<int, 2> big;
    for (int i = 0; i < 6; ++i)
        big.push_back(i);

    SmallVec<int, 2> small_copy(small);
    EXPECT_EQ(small_copy.size(), 1u);
    EXPECT_EQ(small_copy[0], 1);

    SmallVec<int, 2> big_copy;
    big_copy = big;
    EXPECT_EQ(big_copy.size(), 6u);
    EXPECT_EQ(big_copy[5], 5);

    SmallVec<int, 2> moved(std::move(big));
    EXPECT_EQ(moved.size(), 6u);
    EXPECT_EQ(moved[3], 3);
    EXPECT_TRUE(big.empty()); // NOLINT: moved-from contract is "empty"

    SmallVec<int, 2> move_assigned;
    move_assigned.push_back(9);
    move_assigned = std::move(small_copy);
    EXPECT_EQ(move_assigned.size(), 1u);
    EXPECT_EQ(move_assigned[0], 1);
}

TEST(SmallVec, SelfAssignmentIsANoOp)
{
    SmallVec<int, 2> v;
    v.push_back(7);
    v.push_back(8);
    auto &alias = v;
    v = alias;
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], 7);
    EXPECT_EQ(v[1], 8);
}

// ---- RingBuffer --------------------------------------------------------

TEST(RingBuffer, FifoOrderSurvivesWrapAround)
{
    RingBuffer<int> rb(4);
    // Slide a window of 3 through 50 pushes: head wraps many times.
    int next_pop = 0;
    for (int i = 0; i < 50; ++i) {
        rb.push_back(i);
        if (rb.size() > 3) {
            EXPECT_EQ(rb.front(), next_pop);
            rb.pop_front();
            ++next_pop;
        }
    }
    // Remaining elements iterate oldest to youngest.
    std::vector<int> seen(rb.begin(), rb.end());
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], 47);
    EXPECT_EQ(seen[2], 49);
}

TEST(RingBuffer, GrowsByDoublingAndPreservesOrder)
{
    RingBuffer<int> rb(2);
    // Force a wrapped layout before growth.
    rb.push_back(0);
    rb.push_back(1);
    rb.pop_front();
    rb.push_back(2); // physically wraps
    for (int i = 3; i < 20; ++i)
        rb.push_back(i); // several growth steps from a wrapped state
    ASSERT_EQ(rb.size(), 19u);
    for (std::size_t i = 0; i < rb.size(); ++i)
        EXPECT_EQ(rb[i], static_cast<int>(i) + 1);
    EXPECT_GE(rb.capacity(), rb.size());
}

TEST(RingBuffer, PopBackWalksTheTail)
{
    RingBuffer<int> rb(8);
    for (int i = 0; i < 5; ++i)
        rb.push_back(i);
    rb.pop_back();
    rb.pop_back();
    ASSERT_EQ(rb.size(), 3u);
    EXPECT_EQ(rb.back(), 2);
    rb.push_back(77);
    EXPECT_EQ(rb.back(), 77);
    EXPECT_EQ(rb.front(), 0);
}

TEST(RingBuffer, ClearRetainsCapacityAndResetsSlots)
{
    RingBuffer<std::vector<int>> rb(2);
    rb.push_back(std::vector<int>(100, 1));
    rb.push_back(std::vector<int>(100, 2));
    rb.push_back(std::vector<int>(100, 3)); // grows
    auto cap = rb.capacity();
    rb.clear();
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.capacity(), cap);
    rb.push_back(std::vector<int>{5});
    ASSERT_EQ(rb.size(), 1u);
    EXPECT_EQ(rb.front().at(0), 5);
}

TEST(RingBuffer, PopFrontReleasesOwnedResources)
{
    auto counter = std::make_shared<int>(0);
    RingBuffer<std::shared_ptr<int>> rb(4);
    rb.push_back(counter);
    EXPECT_EQ(counter.use_count(), 2);
    rb.pop_front();
    // The vacated slot must not keep the payload alive.
    EXPECT_EQ(counter.use_count(), 1);
}

TEST(RingBuffer, IteratorMatchesIndexing)
{
    RingBuffer<int> rb(3);
    for (int i = 0; i < 7; ++i) {
        rb.push_back(i);
        if (rb.size() > 2)
            rb.pop_front();
    }
    std::size_t i = 0;
    for (auto it = rb.begin(); it != rb.end(); ++it, ++i)
        EXPECT_EQ(*it, rb[i]);
    EXPECT_EQ(i, rb.size());
}

} // namespace
} // namespace smtavf
