/**
 * @file
 * Unit tests for text-table formatting.
 */

#include <gtest/gtest.h>

#include "base/table.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

TEST(TextTableTest, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    auto s = t.str();
    EXPECT_NE(s.find("name    value"), std::string::npos);
    EXPECT_NE(s.find("longer  22"), std::string::npos);
}

TEST(TextTableTest, RowCountTracksAdds)
{
    TextTable t({"a"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableTest, RejectsMismatchedRow)
{
    ThrowGuard guard;
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), SimError);
}

TEST(TextTableTest, RejectsEmptyHeader)
{
    ThrowGuard guard;
    EXPECT_THROW(TextTable({}), SimError);
}

TEST(TextTableTest, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(1.0, 0), "1");
}

TEST(TextTableTest, PctFormatsFraction)
{
    EXPECT_EQ(TextTable::pct(0.1234, 1), "12.3%");
    EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(TextTableTest, SeparatorLinePresent)
{
    TextTable t({"abc"});
    t.addRow({"x"});
    EXPECT_NE(t.str().find("---"), std::string::npos);
}

} // namespace
} // namespace smtavf
