/**
 * @file
 * Seed-replication tests: the paper's qualitative findings must be
 * robust to the synthetic-workload seed, not artifacts of one draw.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

TEST(Replication, DistinctSeedsDistinctRunsStableStatistics)
{
    auto cfg = table1Config(2);
    auto runs = runMixReplicated(cfg, findMix("2ctx-mix-A"), 4, 12000);
    ASSERT_EQ(runs.size(), 4u);

    // Different seeds must actually change the run...
    EXPECT_NE(runs[0].cycles, runs[1].cycles);

    // ...but the statistics stay in a tight band (stationary workloads).
    auto iq = avfStats(runs, HwStruct::IQ);
    EXPECT_GT(iq.mean, 0.0);
    EXPECT_LT(iq.std, 0.5 * iq.mean)
        << "IQ AVF should not swing wildly across seeds";
    auto perf = ipcStats(runs);
    EXPECT_LT(perf.std, 0.3 * perf.mean);
}

TEST(Replication, ZeroReplicasIsFatal)
{
    ThrowGuard guard;
    auto cfg = table1Config(2);
    EXPECT_THROW(runMixReplicated(cfg, findMix("2ctx-mix-A"), 0, 1000),
                 SimError);
}

TEST(Replication, MemVsCpuIqOrderingIsSeedRobust)
{
    // The paper's headline MEM > CPU IQ-AVF ordering must hold for every
    // seed, not on average.
    auto cfg = table1Config(4);
    auto cpu = runMixReplicated(cfg, findMix("4ctx-cpu-A"), 3, 30000);
    auto mem = runMixReplicated(cfg, findMix("4ctx-mem-A"), 3, 30000);
    for (int i = 0; i < 3; ++i)
        EXPECT_GT(mem[i].avf.avf(HwStruct::IQ),
                  cpu[i].avf.avf(HwStruct::IQ))
            << "seed offset " << i;
}

TEST(Replication, FlushWinIsSeedRobust)
{
    auto cfg = table1Config(4);
    cfg.fetchPolicy = FetchPolicyKind::Flush;
    auto flush = runMixReplicated(cfg, findMix("4ctx-mem-A"), 3, 30000);
    cfg.fetchPolicy = FetchPolicyKind::Icount;
    auto base = runMixReplicated(cfg, findMix("4ctx-mem-A"), 3, 30000);
    for (int i = 0; i < 3; ++i)
        EXPECT_LT(flush[i].avf.avf(HwStruct::IQ),
                  0.5 * base[i].avf.avf(HwStruct::IQ))
            << "seed offset " << i;
}

TEST(Replication, Dl1TagOverDataIsSeedRobust)
{
    auto cfg = table1Config(2);
    auto runs = runMixReplicated(cfg, findMix("2ctx-mix-B"), 4, 12000);
    for (const auto &r : runs)
        EXPECT_GT(r.avf.avf(HwStruct::Dl1Tag),
                  r.avf.avf(HwStruct::Dl1Data));
}

} // namespace
} // namespace smtavf
