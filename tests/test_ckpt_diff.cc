/**
 * @file
 * Checkpoint differential matrix (the acceptance bar of the checkpoint
 * subsystem): restore-then-run must be bit-identical — on serializeRun()
 * wire bytes, which compare every double to the last mantissa bit — to
 * the run that captured the checkpoint and continued, at 2/4/8 contexts
 * across two fetch policies; and shared-warmup campaigns must reproduce
 * per-run-warmup results exactly in BOTH isolation modes, including
 * `--isolate process` where the warmup checkpoint crosses a fork via a
 * temp file. Lives in the isolate-test binary (chaos label): the process
 * legs fork children out of a threaded pool, which TSan cannot follow.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "protect/scheme.hh"
#include "sim/campaign.hh"
#include "sim/journal.hh"
#include "sim/simulator.hh"
#include "workload/mixes.hh"

namespace smtavf
{
namespace
{

struct MatrixCase
{
    const char *mix;
    FetchPolicyKind policy;
    /** Protection assignment spec (nullptr = unprotected). */
    const char *assign = nullptr;
    /** PRAT exposure cap (0 = derived default); only read under PRat. */
    std::uint32_t pratCap = 0;
};

// 2/4/8 contexts under ICOUNT, the same spread under FLUSH: the two
// policies differ in squash behaviour, which is exactly the state a
// buggy serialize() hook would lose. The PRAT rows run *protected*:
// PRAT's measured corrections and refresh schedule are checkpoint state
// (policy/prat.hh saveState), and protection is what arms them.
const MatrixCase kMatrix[] = {
    {"2ctx-mix-A", FetchPolicyKind::Icount},
    {"4ctx-mix-A", FetchPolicyKind::Icount},
    {"8ctx-mix-A", FetchPolicyKind::Icount},
    {"2ctx-mem-A", FetchPolicyKind::Flush},
    {"4ctx-cpu-A", FetchPolicyKind::Flush},
    {"8ctx-mix-B", FetchPolicyKind::Flush},
    {"2ctx-mix-A", FetchPolicyKind::PRat, "iq=secded,rob=secded", 12},
    {"4ctx-mem-A", FetchPolicyKind::PRat, "iq=parity,rob=secded", 24},
};

constexpr std::uint64_t kBudget = 40'000;
constexpr std::uint64_t kCapture = 20'000;

/** Matrix row -> runnable Experiment (protection and caps applied). */
Experiment
matrixExperiment(const MatrixCase &c)
{
    Experiment e = makeExperiment(findMix(c.mix), c.policy, kBudget);
    e.cfg.pratCap = c.pratCap;
    if (c.assign) {
        std::string err;
        EXPECT_TRUE(parseAssignment(c.assign, e.cfg.protection, err))
            << err;
        e.label += std::string("/") + c.assign;
    }
    return e;
}

TEST(CkptDifferential, RestoreMatchesContinuedRunAcrossMatrix)
{
    for (const auto &c : kMatrix) {
        Experiment e = matrixExperiment(c);
        SCOPED_TRACE(e.label);

        Checkpoint ck;
        RunControls rc;
        rc.checkpointAt = kCapture;
        rc.checkpointCapture = &ck;
        Simulator a(e.cfg, e.mix);
        SimResult ra = a.run(kBudget, rc);
        ASSERT_FALSE(ck.empty());

        Simulator b(e.cfg, e.mix);
        b.restore(ck);
        ASSERT_LT(b.restoredCommitted(), kBudget);
        SimResult rb = b.run(kBudget - b.restoredCommitted());

        std::uint64_t fp = experimentFingerprint(e);
        EXPECT_EQ(serializeRun(fp, ra), serializeRun(fp, rb));
    }
}

/** The matrix as a warmup campaign: every run warms up kCapture instrs. */
std::vector<Experiment>
warmupMatrix()
{
    std::vector<Experiment> exps;
    for (const auto &c : kMatrix) {
        Experiment e = matrixExperiment(c);
        e.warmup = kCapture;
        exps.push_back(e);
    }
    return exps;
}

void
expectSharedWarmupMatchesUnshared(IsolateMode mode)
{
    std::vector<Experiment> exps = warmupMatrix();
    CampaignRunner pool(3);

    CampaignOptions plain;
    plain.isolate = mode;
    auto ref = runTolerant(pool, exps, plain);
    ASSERT_TRUE(ref.allOk()) << ref.failureReport();

    CampaignOptions shared;
    shared.isolate = mode;
    shared.sharedWarmup = true;
    auto got = runTolerant(pool, exps, shared);
    ASSERT_TRUE(got.allOk()) << got.failureReport();

    for (std::size_t i = 0; i < exps.size(); ++i) {
        std::uint64_t fp = experimentFingerprint(exps[i]);
        EXPECT_EQ(serializeRun(fp, ref.outcomes[i].result),
                  serializeRun(fp, got.outcomes[i].result))
            << exps[i].label;
    }
}

TEST(CkptDifferential, SharedWarmupThreadMode)
{
    expectSharedWarmupMatchesUnshared(IsolateMode::Thread);
}

TEST(CkptDifferential, SharedWarmupProcessMode)
{
    // Process mode writes each group's warmup checkpoint to a temp file
    // that forked children restore from — the file format itself is in
    // the differential path here.
    expectSharedWarmupMatchesUnshared(IsolateMode::Process);
}

TEST(CkptDifferential, ProcessModeCleansUpWarmupFiles)
{
    std::string dir = testing::TempDir() + "smtavf_ckpt_diff_warmups";
    std::string cmd = "mkdir -p " + dir;
    ASSERT_EQ(std::system(cmd.c_str()), 0);

    std::vector<Experiment> exps = warmupMatrix();
    CampaignRunner pool(3);
    CampaignOptions opt;
    opt.isolate = IsolateMode::Process;
    opt.sharedWarmup = true;
    opt.checkpointDir = dir;
    auto rep = runTolerant(pool, exps, opt);
    ASSERT_TRUE(rep.allOk()) << rep.failureReport();

    // The campaign must remove every warmup file it parked in the dir.
    std::string probe =
        "ls " + dir + "/smtavf-warmup-*.ckpt 2>/dev/null | grep -q .";
    EXPECT_NE(std::system(probe.c_str()), 0) << "leftover warmup files";
}

} // namespace
} // namespace smtavf
