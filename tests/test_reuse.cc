/**
 * @file
 * Worker-reuse differential suite: reset()-based simulator reuse and
 * batched process children must be invisible in the results.
 *
 * The correctness bar is byte-identical `run v3` journals: a campaign
 * that reuses worker-local simulators (thread mode) or batches runs per
 * sandboxed child (--runs-per-child) must journal exactly the bytes a
 * construct-per-run campaign writes, across context counts and fetch
 * policies. The batch-chaos tests then prove the crash story: a child
 * dying mid-batch loses only the in-flight run — completed frames
 * survive, the remainder is re-dispatched without being charged an
 * attempt, and retry/quarantine accounting stays per-run.
 *
 * Rides in the `chaos` binary (not `tsan`): the batch tests fork
 * children out of a threaded pool and kill them with real signals.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "sim/campaign.hh"
#include "sim/errors.hh"
#include "sim/experiment.hh"
#include "sim/isolate.hh"
#include "sim/journal.hh"
#include "sim/simulator.hh"
#include "workload/mixes.hh"

namespace smtavf
{
namespace
{

constexpr std::uint64_t kBudget = 3000;

std::vector<std::string>
readLines(const std::string &path)
{
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** Die by a real signal inside the forked child (see test_isolate.cc). */
[[noreturn]] void
dieBySignal(int sig)
{
    std::signal(sig, SIG_DFL);
    ::raise(sig);
    ::_exit(99); // not reached
}

/** Bit-exact result comparison via the journal wire format. */
std::string
wire(const SimResult &r)
{
    return serializeRun(0, r);
}

/**
 * The acceptance matrix: {2, 4, 8} contexts x {ICOUNT, FLUSH}, three
 * seeds per cell so reuse actually resets (same shape, new seed) instead
 * of constructing every time.
 */
std::vector<Experiment>
reuseMatrix()
{
    std::vector<Experiment> exps;
    for (unsigned ctx : {2u, 4u, 8u}) {
        const auto &mix =
            findMix(std::to_string(ctx) + "ctx-mix-A");
        for (auto policy : {FetchPolicyKind::Icount, FetchPolicyKind::Flush})
            for (std::uint64_t seed : {31u, 32u, 33u}) {
                Experiment e = makeExperiment(mix, policy, kBudget);
                e.cfg.seed = seed;
                exps.push_back(std::move(e));
            }
    }
    return exps;
}

// --- reset() itself ------------------------------------------------------

TEST(SimulatorReset, ResetMatchesFreshConstructionBitExactly)
{
    auto cfg = table1Config(4);
    cfg.seed = 7;
    const auto &mix = findMix("4ctx-mix-A");

    Simulator sim(cfg, mix);
    SimResult first = sim.run(kBudget);
    EXPECT_EQ(wire(first), wire(Simulator(cfg, mix).run(kBudget)));

    // Re-seed in place: the reused instance must compute exactly what a
    // fresh construction computes, including the repeat of its own seed.
    auto cfg2 = cfg;
    cfg2.seed = 99;
    ASSERT_TRUE(sim.canResetTo(cfg2, mix));
    sim.reset(cfg2, mix);
    EXPECT_EQ(wire(sim.run(kBudget)), wire(Simulator(cfg2, mix).run(kBudget)));

    sim.reset(cfg, mix);
    EXPECT_EQ(wire(sim.run(kBudget)), wire(first));
}

TEST(SimulatorReset, ProtectionChangesStayReusable)
{
    // Protection is an accounting overlay, not timing shape: the beam
    // explorer leans on resetting one worker across candidate schemes.
    auto cfg = table1Config(2);
    cfg.seed = 5;
    const auto &mix = findMix("2ctx-mix-A");
    Simulator sim(cfg, mix);
    sim.run(kBudget);

    auto protected_cfg = cfg;
    for (auto &s : protected_cfg.protection.scheme)
        s = ProtScheme::Secded;
    ASSERT_TRUE(sim.canResetTo(protected_cfg, mix));
    sim.reset(protected_cfg, mix);
    EXPECT_EQ(wire(sim.run(kBudget)),
              wire(Simulator(protected_cfg, mix).run(kBudget)));
}

TEST(SimulatorReset, TimingShapeMismatchesAreRejected)
{
    auto cfg = table1Config(2);
    const auto &mix = findMix("2ctx-mix-A");
    Simulator sim(cfg, mix);

    EXPECT_TRUE(sim.canResetTo(cfg, mix));
    auto reseed = cfg;
    reseed.seed = 1234;
    EXPECT_TRUE(sim.canResetTo(reseed, mix)); // seed is not shape

    EXPECT_FALSE(sim.canResetTo(cfg, findMix("2ctx-mem-A"))); // workload
    EXPECT_FALSE(sim.canResetTo(table1Config(4), findMix("4ctx-mix-A")));

    auto wider = cfg;
    wider.iqSize += 8;
    EXPECT_FALSE(sim.canResetTo(wider, mix)); // structure geometry

    auto other_policy = cfg;
    other_policy.fetchPolicy = FetchPolicyKind::Flush;
    EXPECT_FALSE(sim.canResetTo(other_policy, mix)); // policy state
}

// --- the differential guarantees -----------------------------------------

TEST(ReuseDifferential, ThreadReuseIsByteIdenticalToFreshConstruction)
{
    const std::string rj = "reuse_diff_reused.journal";
    const std::string fj = "reuse_diff_fresh.journal";
    std::remove(rj.c_str());
    std::remove(fj.c_str());

    auto exps = reuseMatrix();
    CampaignOptions reused;
    reused.journalPath = rj; // reuseWorkers defaults on
    CampaignOptions fresh;
    fresh.journalPath = fj;
    fresh.reuseWorkers = false;

    CampaignRunner pool(1); // one worker: even append order must match
    auto rrep = runTolerant(pool, exps, reused);
    auto frep = runTolerant(pool, exps, fresh);
    ASSERT_TRUE(rrep.allOk());
    ASSERT_TRUE(frep.allOk());
    for (std::size_t i = 0; i < exps.size(); ++i)
        EXPECT_EQ(wire(rrep.outcomes[i].result),
                  wire(frep.outcomes[i].result))
            << exps[i].label;
    EXPECT_EQ(readLines(rj), readLines(fj));

    std::remove(rj.c_str());
    std::remove(fj.c_str());
}

TEST(ReuseDifferential, BatchedChildrenAreByteIdenticalToFreshChildren)
{
    const std::string bj = "reuse_diff_batched.journal";
    const std::string fj = "reuse_diff_perrun.journal";
    std::remove(bj.c_str());
    std::remove(fj.c_str());

    auto exps = reuseMatrix();
    CampaignOptions batched;
    batched.isolate = IsolateMode::Process;
    batched.runsPerChild = 5; // straddles the 6-run same-shape cells
    batched.journalPath = bj;
    CampaignOptions fresh;
    fresh.isolate = IsolateMode::Process;
    fresh.reuseWorkers = false;
    fresh.journalPath = fj;

    CampaignRunner pool(1);
    auto brep = runTolerant(pool, exps, batched);
    auto frep = runTolerant(pool, exps, fresh);
    ASSERT_TRUE(brep.allOk());
    ASSERT_TRUE(frep.allOk());
    for (std::size_t i = 0; i < exps.size(); ++i)
        EXPECT_EQ(wire(brep.outcomes[i].result),
                  wire(frep.outcomes[i].result))
            << exps[i].label;
    EXPECT_EQ(readLines(bj), readLines(fj));

    std::remove(bj.c_str());
    std::remove(fj.c_str());
}

TEST(ReuseDifferential, MultiWorkerModesAgreeAsRecordSets)
{
    const std::string tj = "reuse_diff_threads4.journal";
    const std::string pj = "reuse_diff_batched4.journal";
    std::remove(tj.c_str());
    std::remove(pj.c_str());

    auto exps = reuseMatrix();
    CampaignOptions threads;
    threads.journalPath = tj;
    CampaignOptions batched;
    batched.isolate = IsolateMode::Process;
    batched.runsPerChild = 4;
    batched.journalPath = pj;

    CampaignRunner pool(4); // append order may differ; content must not
    ASSERT_TRUE(runTolerant(pool, exps, threads).allOk());
    ASSERT_TRUE(runTolerant(pool, exps, batched).allOk());

    auto tl = readLines(tj);
    auto pl = readLines(pj);
    std::sort(tl.begin(), tl.end());
    std::sort(pl.begin(), pl.end());
    EXPECT_EQ(tl, pl);

    std::remove(tj.c_str());
    std::remove(pj.c_str());
}

// --- batch crash attribution ---------------------------------------------

std::vector<Experiment>
fourRunBatch()
{
    const char *names[] = {"2ctx-cpu-A", "2ctx-mix-A", "2ctx-mem-A",
                           "2ctx-cpu-B"};
    std::vector<Experiment> exps;
    for (std::size_t i = 0; i < 4; ++i) {
        Experiment e = makeExperiment(findMix(names[i]),
                                      FetchPolicyKind::Icount, kBudget);
        e.cfg.seed = 21 + i;
        exps.push_back(std::move(e));
    }
    return exps;
}

TEST(BatchChaos, MidBatchCrashRetriesOnlyTheRemainder)
{
    const std::string marker = "reuse_batch_transient.marker";
    std::remove(marker.c_str());

    auto exps = fourRunBatch();
    CampaignOptions opt;
    opt.isolate = IsolateMode::Process;
    opt.runsPerChild = 4;
    opt.retries = 2;
    // First incarnation of the child crashes while run 2 is in flight;
    // the marker makes the re-dispatched remainder succeed.
    opt.runFn = [&](const Experiment &e, std::size_t i) {
        if (i == 2 && !fileExists(marker)) {
            {
                std::ofstream m(marker);
                m << "x";
            }
            dieBySignal(SIGSEGV);
        }
        return runExperiment(e);
    };
    CampaignRunner pool(1);
    auto report = runTolerant(pool, exps, opt);

    // Runs 0 and 1 completed before the crash: their frames survived and
    // they were never re-attempted. Run 2 was attributed the death and
    // retried; run 3 rode the remainder batch without an attempt charged
    // for the crash it did not cause.
    EXPECT_EQ(report.outcomes[0].attempts, 1u);
    EXPECT_EQ(report.outcomes[1].attempts, 1u);
    EXPECT_EQ(report.outcomes[2].attempts, 2u);
    EXPECT_EQ(report.outcomes[3].attempts, 1u);
    for (std::size_t i = 0; i < exps.size(); ++i) {
        ASSERT_EQ(report.outcomes[i].status, RunStatus::Ok) << i;
        EXPECT_EQ(wire(report.outcomes[i].result),
                  wire(runExperiment(exps[i])))
            << i;
    }
    EXPECT_EQ(report.outcomes[2].crash, CrashKind::None); // last attempt ok
    std::remove(marker.c_str());
}

TEST(BatchChaos, PersistentCrashQuarantinesOnlyTheCrashingRun)
{
    const std::string journal = "reuse_batch_quarantine.journal";
    std::remove(journal.c_str());

    auto exps = fourRunBatch();
    CampaignOptions opt;
    opt.isolate = IsolateMode::Process;
    opt.runsPerChild = 4;
    opt.retries = 3;
    opt.journalPath = journal;
    opt.runFn = [](const Experiment &e, std::size_t i) {
        if (i == 2)
            dieBySignal(SIGSEGV);
        return runExperiment(e);
    };
    CampaignRunner pool(1);
    auto report = runTolerant(pool, exps, opt);

    const RunOutcome &o = report.outcomes[2];
    EXPECT_EQ(o.status, RunStatus::Quarantined); // same death twice
    EXPECT_EQ(o.attempts, 2u);
    EXPECT_EQ(o.crash, CrashKind::Segv);
    EXPECT_NE(o.error.find("SIGSEGV"), std::string::npos);

    for (std::size_t i : {0u, 1u, 3u}) {
        ASSERT_EQ(report.outcomes[i].status, RunStatus::Ok) << i;
        EXPECT_EQ(report.outcomes[i].attempts, 1u) << i;
    }
    // The journal holds exactly the completed runs: the two framed
    // before the first crash and the remainder run — never the
    // quarantined one.
    EXPECT_EQ(loadJournal(journal).size(), 3u);
    std::remove(journal.c_str());
}

// --- journal scale -------------------------------------------------------

TEST(JournalScale, MultiMegabyteShardsFsckAndMergeStreaming)
{
    const std::string shard_a = "reuse_scale_a.journal";
    const std::string shard_b = "reuse_scale_b.journal";
    const std::string merged = "reuse_scale_merged.journal";
    std::remove(shard_a.c_str());
    std::remove(shard_b.c_str());
    std::remove(merged.c_str());

    // One real record template, re-fingerprinted: the merge path cares
    // about framing and offsets, not simulated variety.
    SimResult r = runExperiment(fourRunBatch()[0]);
    const std::string probe = serializeRun(1, r);
    // Size the synthetic journals in the multi-MB range the streaming
    // fsck/merge rewrite exists for (> 4 MB combined).
    const std::size_t n =
        (2u * 1024 * 1024) / (probe.size() + 1) + 1;

    {
        std::ofstream a(shard_a), b(shard_b);
        a << "# shard a\n";
        b << "# shard b\n";
        for (std::size_t i = 1; i <= n; ++i) {
            const std::string line = serializeRun(i, r);
            (i % 2 ? a : b) << line << '\n';
            if (i % 101 == 0)
                b << line << '\n'; // cross-shard duplicates must dedup
        }
    }

    auto fa = fsckJournal(shard_a);
    auto fb = fsckJournal(shard_b);
    EXPECT_TRUE(fa.clean());
    EXPECT_TRUE(fb.clean());
    EXPECT_EQ(fa.records + fb.records, n + n / 101);

    EXPECT_EQ(mergeJournals({shard_a, shard_b}, merged), n);
    auto fm = fsckJournal(merged);
    EXPECT_TRUE(fm.clean());
    EXPECT_EQ(fm.records, n);

    // Fingerprint-sorted, first-wins, bytes preserved: parsing the
    // merged file back recovers fingerprints 1..n in order.
    auto lines = readLines(merged);
    ASSERT_EQ(lines.size(), n);
    std::uint64_t fp = 0;
    SimResult back;
    ASSERT_TRUE(parseRun(lines.front(), fp, back));
    EXPECT_EQ(fp, 1u);
    ASSERT_TRUE(parseRun(lines.back(), fp, back));
    EXPECT_EQ(fp, n);
    EXPECT_EQ(lines.back(), serializeRun(n, r));

    std::remove(shard_a.c_str());
    std::remove(shard_b.c_str());
    std::remove(merged.c_str());
}

TEST(JournalScale, ReusedAppendBufferKeepsRecordsIntact)
{
    const std::string path = "reuse_journal_buffer.journal";
    std::remove(path.c_str());

    SimResult r = runExperiment(fourRunBatch()[0]);
    {
        RunJournal j(path);
        for (std::uint64_t fp = 1; fp <= 64; ++fp)
            j.append(fp, r); // one scratch buffer, 64 single write(2)s
        j.comment("buffer reuse check");
    }
    std::size_t skipped = 0;
    auto map = loadJournal(path, &skipped);
    EXPECT_EQ(map.size(), 64u);
    EXPECT_EQ(skipped, 0u);
    EXPECT_EQ(wire(map.at(17)), wire(r));
    std::remove(path.c_str());
}

} // namespace
} // namespace smtavf
