/**
 * @file
 * Reproduction-property tests: the paper's headline qualitative findings,
 * checked at reduced simulation scale. These are the invariants the bench
 * harnesses reproduce at full scale.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace smtavf
{
namespace
{

SimResult
run4(const char *mix, FetchPolicyKind policy = FetchPolicyKind::Icount)
{
    return runMix(findMix(mix), policy, 40000);
}

TEST(PaperProperties, Dl1TagAvfExceedsDataAvf)
{
    // Section 4.1: "the DL1 tag exhibits a higher vulnerability than the
    // DL1 data array" — only referenced bytes are ACE, all tag bits are.
    for (const char *mix : {"4ctx-cpu-A", "4ctx-mix-A", "4ctx-mem-A"}) {
        auto r = run4(mix);
        EXPECT_GT(r.avf.avf(HwStruct::Dl1Tag), r.avf.avf(HwStruct::Dl1Data))
            << mix;
    }
}

TEST(PaperProperties, MemWorkloadsRaiseIqAvf)
{
    // Section 4.1: memory-bound workloads stretch ACE residency in the IQ.
    auto cpu = run4("4ctx-cpu-A");
    auto mem = run4("4ctx-mem-A");
    EXPECT_GT(mem.avf.avf(HwStruct::IQ), cpu.avf.avf(HwStruct::IQ));
}

TEST(PaperProperties, MemWorkloadsReduceFuAvf)
{
    // Section 4.1: diminished ILP idles the function units.
    auto cpu = run4("4ctx-cpu-A");
    auto mem = run4("4ctx-mem-A");
    EXPECT_LT(mem.avf.avf(HwStruct::FU), cpu.avf.avf(HwStruct::FU));
}

TEST(PaperProperties, CpuWorkloadsHaveBestReliabilityEfficiency)
{
    // Figure 2: IPC/AVF is highest on CPU-bound workloads.
    auto cpu = run4("4ctx-cpu-A");
    auto mem = run4("4ctx-mem-A");
    for (auto s : {HwStruct::IQ, HwStruct::ROB, HwStruct::RegFile})
        EXPECT_GT(cpu.mitf(s), mem.mitf(s)) << hwStructName(s);
}

TEST(PaperProperties, SmtReducesPerThreadAvfVsSingleThread)
{
    // Figure 3 / Section 4.1: "the IQ and ROB AVF contributed by gcc
    // drops ... when it is paired with mcf, vpr, and perlbmk in SMT
    // execution" — the paper's worked example, thread 0 of the MIX mix.
    const auto &mix = fig3Mix(MixType::Mix);
    auto cfg = table1Config(4);
    auto smt = runMix(cfg, mix, 60000);

    auto st = runSingleThreadBaseline(cfg, mix, 0,
                                      smt.threads[0].committed);
    EXPECT_GT(st.avf.avf(HwStruct::IQ),
              smt.avf.threadAvf(HwStruct::IQ, 0));
    EXPECT_GT(st.avf.avf(HwStruct::ROB),
              smt.avf.threadAvf(HwStruct::ROB, 0));
}

TEST(PaperProperties, SmtReducesMeanPerThreadAvfOnCpuMix)
{
    // Figure 3, CPU panel: averaged over the threads of the CPU mix, the
    // stand-alone IQ AVF exceeds the SMT per-thread contribution.
    const auto &mix = fig3Mix(MixType::Cpu);
    auto cfg = table1Config(4);
    auto smt = runMix(cfg, mix, 60000);

    double st_mean = 0.0, smt_mean = 0.0;
    for (ThreadId t = 0; t < 4; ++t) {
        auto st = runSingleThreadBaseline(cfg, mix, t,
                                          smt.threads[t].committed);
        st_mean += st.avf.avf(HwStruct::IQ) / 4.0;
        smt_mean += smt.avf.threadAvf(HwStruct::IQ, t) / 4.0;
    }
    EXPECT_GT(st_mean, smt_mean);
}

TEST(PaperProperties, SmtRaisesAggregateIqAvf)
{
    // Section 4.1: the aggregated SMT AVF exceeds the weighted AVF of
    // sequential execution (~2x on the IQ for 4-context CPU mixes).
    const auto &mix = fig3Mix(MixType::Cpu);
    auto cfg = table1Config(4);
    auto smt = runMix(cfg, mix, 40000);

    double weighted_st = 0.0;
    for (ThreadId t = 0; t < 4; ++t) {
        auto st = runSingleThreadBaseline(cfg, mix, t,
                                          smt.threads[t].committed);
        double share = static_cast<double>(smt.threads[t].committed) /
                       smt.totalCommitted;
        weighted_st += st.avf.avf(HwStruct::IQ) * share;
    }
    EXPECT_GT(smt.avf.avf(HwStruct::IQ), weighted_st);
}

TEST(PaperProperties, FlushSlashesIqRobLsqAvfOnMemWorkloads)
{
    // Section 4.3: FLUSH drains long-latency ACE bits out of the IQ, ROB
    // and LSQ (down to ~50% of other policies on missing workloads).
    auto base = run4("4ctx-mem-A", FetchPolicyKind::Icount);
    auto flush = run4("4ctx-mem-A", FetchPolicyKind::Flush);
    EXPECT_LT(flush.avf.avf(HwStruct::IQ),
              0.8 * base.avf.avf(HwStruct::IQ));
    EXPECT_LT(flush.avf.avf(HwStruct::ROB), base.avf.avf(HwStruct::ROB));
    EXPECT_LT(flush.avf.avf(HwStruct::LsqTag),
              base.avf.avf(HwStruct::LsqTag));
}

TEST(PaperProperties, StallReducesIqAvfOnMemWorkloads)
{
    auto base = run4("4ctx-mem-A", FetchPolicyKind::Icount);
    auto stall = run4("4ctx-mem-A", FetchPolicyKind::Stall);
    EXPECT_LT(stall.avf.avf(HwStruct::IQ), base.avf.avf(HwStruct::IQ));
}

TEST(PaperProperties, FlushBeatsDgOnL2Misses)
{
    // Section 4.3: DG/PDG only watch L1 misses, so FLUSH responds better
    // to the L2 misses that dominate AVF.
    auto flush = run4("4ctx-mem-A", FetchPolicyKind::Flush);
    auto dg = run4("4ctx-mem-A", FetchPolicyKind::Dg);
    EXPECT_LT(flush.avf.avf(HwStruct::IQ), dg.avf.avf(HwStruct::IQ));
}

TEST(PaperProperties, DeadCodeAnalysisLowersAvf)
{
    // DESIGN.md ablation 1: without FDD analysis, dead results count ACE.
    auto mix = findMix("4ctx-mix-A");
    auto cfg = table1Config(4);
    auto with = runMix(cfg, mix, 30000);
    cfg.avf.deadCodeAnalysis = false;
    auto without = runMix(cfg, mix, 30000);
    EXPECT_GT(without.avf.avf(HwStruct::ROB), with.avf.avf(HwStruct::ROB));
    EXPECT_GT(without.avf.avf(HwStruct::RegFile),
              with.avf.avf(HwStruct::RegFile));
}

TEST(PaperProperties, PerLineCacheTrackingInflatesDataAvf)
{
    // DESIGN.md ablation 3: per-byte liveness is what keeps DL1-data AVF
    // below DL1-tag AVF.
    auto mix = findMix("4ctx-mix-A");
    auto cfg = table1Config(4);
    auto per_byte = runMix(cfg, mix, 30000);
    cfg.avf.perByteCacheAvf = false;
    auto per_line = runMix(cfg, mix, 30000);
    EXPECT_GT(per_line.avf.avf(HwStruct::Dl1Data),
              per_byte.avf.avf(HwStruct::Dl1Data));
}

TEST(PaperProperties, RegAllocWindowAblationRaisesRegAvf)
{
    // DESIGN.md ablation 4: counting allocated-but-unwritten registers as
    // ACE inflates register-file AVF (Section 4.2's refinement).
    auto mix = findMix("4ctx-mem-A");
    auto cfg = table1Config(4);
    auto refined = runMix(cfg, mix, 30000);
    cfg.avf.regAllocWindowUnace = false;
    auto naive = runMix(cfg, mix, 30000);
    EXPECT_GT(naive.avf.avf(HwStruct::RegFile),
              refined.avf.avf(HwStruct::RegFile));
}

TEST(PaperProperties, IqAvfGrowsWithContexts)
{
    // Figure 5: shared-structure AVF increases with thread count.
    auto r2 = runMix(findMix("2ctx-mix-A"), FetchPolicyKind::Icount, 20000);
    auto r4 = runMix(findMix("4ctx-mix-A"), FetchPolicyKind::Icount, 40000);
    EXPECT_GT(r4.avf.avf(HwStruct::IQ), r2.avf.avf(HwStruct::IQ));
}

TEST(PaperProperties, IqAvfKeepsRisingAtEightContexts)
{
    // Figure 5: the shared IQ's AVF keeps growing 4 -> 8 contexts on
    // CPU-bound workloads (more threads, more resident ACE bits).
    auto r4 = runMix(findMix("4ctx-cpu-A"), FetchPolicyKind::Icount, 40000);
    auto r8 = runMix(findMix("8ctx-cpu-A"), FetchPolicyKind::Icount, 60000);
    EXPECT_GT(r8.avf.avf(HwStruct::IQ), r4.avf.avf(HwStruct::IQ));
}

TEST(PaperProperties, RegFileAvfGrowsWithContexts)
{
    // Figure 5: register-file AVF increases with thread count as the
    // shared pool's utilization climbs.
    auto r2 = runMix(findMix("2ctx-mix-A"), FetchPolicyKind::Icount, 20000);
    auto r8 = runMix(findMix("8ctx-mix-A"), FetchPolicyKind::Icount, 60000);
    EXPECT_GT(r8.avf.avf(HwStruct::RegFile),
              r2.avf.avf(HwStruct::RegFile));
}

TEST(PaperProperties, FuAvfDropsAtEightContextsOnCpuMixes)
{
    // Figure 5: at 8 contexts, aggressive contention stretches execution
    // and the FU's AVF falls back below its 4-context peak (CPU mixes).
    auto r4 = runMix(findMix("4ctx-cpu-A"), FetchPolicyKind::Icount, 40000);
    auto r8 = runMix(findMix("8ctx-cpu-A"), FetchPolicyKind::Icount, 60000);
    EXPECT_LT(r8.avf.avf(HwStruct::FU), r4.avf.avf(HwStruct::FU));
}

TEST(PaperProperties, SmtThroughputScalesOnCpuMixes)
{
    auto r2 = runMix(findMix("2ctx-cpu-A"), FetchPolicyKind::Icount, 20000);
    auto r4 = runMix(findMix("4ctx-cpu-A"), FetchPolicyKind::Icount, 40000);
    EXPECT_GT(r4.ipc, r2.ipc);
}

} // namespace
} // namespace smtavf
