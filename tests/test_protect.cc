/**
 * @file
 * Unit and property tests for the protection-modeling subsystem
 * (src/protect/): the per-interval coverage model, assignment parsing,
 * the cost model and its capacity mirror, residual-AVF identities on
 * real simulations, and the journal/fingerprint integration.
 */

#include <gtest/gtest.h>

#include "protect/cost.hh"
#include "protect/scheme.hh"
#include "sim/experiment.hh"
#include "sim/journal.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

TEST(ProtSchemeTest, NamesRoundTrip)
{
    for (std::size_t i = 0; i < numProtSchemes; ++i) {
        auto s = static_cast<ProtScheme>(i);
        ProtScheme parsed;
        ASSERT_TRUE(parseProtScheme(protSchemeName(s), parsed))
            << protSchemeName(s);
        EXPECT_EQ(parsed, s);
    }
}

TEST(ProtSchemeTest, ParseAliasesAndCase)
{
    ProtScheme s;
    EXPECT_TRUE(parseProtScheme("ecc", s));
    EXPECT_EQ(s, ProtScheme::Secded);
    EXPECT_TRUE(parseProtScheme("scrub", s));
    EXPECT_EQ(s, ProtScheme::SecdedScrub);
    EXPECT_TRUE(parseProtScheme("ecc+scrub", s));
    EXPECT_EQ(s, ProtScheme::SecdedScrub);
    EXPECT_TRUE(parseProtScheme("PARITY", s));
    EXPECT_EQ(s, ProtScheme::Parity);
    EXPECT_FALSE(parseProtScheme("chipkill", s));
    EXPECT_FALSE(parseProtScheme("", s));
}

TEST(ProtSchemeTest, StructKeysRoundTrip)
{
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        HwStruct parsed;
        ASSERT_TRUE(parseHwStructKey(hwStructKey(s), parsed))
            << hwStructKey(s);
        EXPECT_EQ(parsed, s);
    }
}

TEST(CoverageTest, NeverExceedsIntervalAndNoneIsZero)
{
    for (std::uint32_t bits : {1u, 7u, 64u, 4096u}) {
        for (Cycle len : {Cycle{1}, Cycle{13}, Cycle{100000}}) {
            std::uint64_t bc = std::uint64_t{bits} * len;
            for (std::size_t i = 0; i < numProtSchemes; ++i) {
                auto s = static_cast<ProtScheme>(i);
                auto covered = coveredAceBitCycles(s, 500, bits, 10,
                                                   10 + len);
                EXPECT_LE(covered, bc) << protSchemeName(s);
            }
            EXPECT_EQ(coveredAceBitCycles(ProtScheme::None, 500, bits, 10,
                                          10 + len),
                      0u);
        }
    }
}

TEST(CoverageTest, EmptyIntervalOrZeroBitsCoverNothing)
{
    EXPECT_EQ(coveredAceBitCycles(ProtScheme::Secded, 0, 64, 10, 10), 0u);
    EXPECT_EQ(coveredAceBitCycles(ProtScheme::Secded, 0, 0, 10, 20), 0u);
}

TEST(CoverageTest, SchemeStrengthOrdering)
{
    // For every interval shape: parity <= secded <= secded+scrub.
    for (std::uint32_t bits : {3u, 64u, 1024u}) {
        for (Cycle len : {Cycle{5}, Cycle{256}, Cycle{20000}}) {
            auto parity = coveredAceBitCycles(ProtScheme::Parity, 1000,
                                              bits, 0, len);
            auto secded = coveredAceBitCycles(ProtScheme::Secded, 1000,
                                              bits, 0, len);
            auto scrub = coveredAceBitCycles(ProtScheme::SecdedScrub, 1000,
                                             bits, 0, len);
            EXPECT_LE(parity, secded);
            EXPECT_LE(secded, scrub);
        }
    }
}

TEST(CoverageTest, ScrubDegeneratesToSecdedForShortResidencies)
{
    // Residency shorter than (or equal to) the scrub interval: no sweep
    // lands inside it, so coverage is exactly SECDED's. Interval 0 means
    // no scrubbing at all.
    for (Cycle len : {Cycle{1}, Cycle{999}, Cycle{1000}}) {
        EXPECT_EQ(coveredAceBitCycles(ProtScheme::SecdedScrub, 1000, 64, 0,
                                      len),
                  coveredAceBitCycles(ProtScheme::Secded, 1000, 64, 0,
                                      len));
    }
    EXPECT_EQ(
        coveredAceBitCycles(ProtScheme::SecdedScrub, 0, 64, 0, 5000),
        coveredAceBitCycles(ProtScheme::Secded, 0, 64, 0, 5000));
}

TEST(CoverageTest, ShorterScrubIntervalCoversMore)
{
    auto cover = [](Cycle interval) {
        return coveredAceBitCycles(ProtScheme::SecdedScrub, interval, 128,
                                   0, 100000);
    };
    EXPECT_GT(cover(100), cover(1000));
    EXPECT_GT(cover(1000), cover(100000));
}

TEST(ProtectionConfigTest, StrIsCanonical)
{
    ProtectionConfig p;
    EXPECT_EQ(p.str(), "none");
    EXPECT_FALSE(p.any());
    p.assign(HwStruct::RegFile, ProtScheme::Parity);
    p.assign(HwStruct::IQ, ProtScheme::Secded);
    EXPECT_TRUE(p.any());
    EXPECT_FALSE(p.anyScrubbed());
    // HwStruct order, not assignment order; no scrub suffix unscrubbed.
    EXPECT_EQ(p.str(), "iq=secded,regfile=parity");
    p.assign(HwStruct::ROB, ProtScheme::SecdedScrub);
    p.scrubInterval = 777;
    EXPECT_TRUE(p.anyScrubbed());
    EXPECT_EQ(p.str(), "iq=secded,regfile=parity,rob=secded+scrub,"
                       "scrub=777");
}

TEST(ProtectionConfigTest, Validation)
{
    ProtectionConfig p;
    EXPECT_EQ(p.validateMsg(), "");
    p.assign(HwStruct::IQ, ProtScheme::SecdedScrub);
    p.scrubInterval = 0;
    EXPECT_NE(p.validateMsg(), "");
    p.scrubInterval = 100;
    EXPECT_EQ(p.validateMsg(), "");
    p.scrubInterval = Cycle{1} << 31;
    EXPECT_NE(p.validateMsg(), "");
}

TEST(ProtectionConfigTest, ParseAssignment)
{
    ProtectionConfig p;
    std::string err;
    ASSERT_TRUE(parseAssignment("iq=ecc,regfile=parity,rob=scrub", p, err))
        << err;
    EXPECT_EQ(p.schemeFor(HwStruct::IQ), ProtScheme::Secded);
    EXPECT_EQ(p.schemeFor(HwStruct::RegFile), ProtScheme::Parity);
    EXPECT_EQ(p.schemeFor(HwStruct::ROB), ProtScheme::SecdedScrub);
    EXPECT_EQ(p.schemeFor(HwStruct::FU), ProtScheme::None);

    // Applies on top: later specs override, untouched structures stay.
    ASSERT_TRUE(parseAssignment("iq=none", p, err)) << err;
    EXPECT_EQ(p.schemeFor(HwStruct::IQ), ProtScheme::None);
    EXPECT_EQ(p.schemeFor(HwStruct::RegFile), ProtScheme::Parity);
}

TEST(ProtectionConfigTest, ParseAssignmentErrors)
{
    ProtectionConfig p;
    std::string err;
    EXPECT_FALSE(parseAssignment("", p, err));
    EXPECT_FALSE(parseAssignment("iq", p, err));
    EXPECT_FALSE(parseAssignment("=parity", p, err));
    EXPECT_FALSE(parseAssignment("iq=", p, err));
    EXPECT_FALSE(parseAssignment("l1=parity", p, err));
    EXPECT_NE(err.find("unknown structure"), std::string::npos);
    EXPECT_FALSE(parseAssignment("iq=tmr", p, err));
    EXPECT_NE(err.find("unknown scheme"), std::string::npos);
}

TEST(CostModelTest, FactorOrdering)
{
    EXPECT_EQ(areaOverheadFactor(ProtScheme::None), 0.0);
    EXPECT_LT(areaOverheadFactor(ProtScheme::Parity),
              areaOverheadFactor(ProtScheme::Secded));
    EXPECT_LT(areaOverheadFactor(ProtScheme::Secded),
              areaOverheadFactor(ProtScheme::SecdedScrub));
    EXPECT_EQ(energyOverheadFactor(ProtScheme::None, 100), 0.0);
    EXPECT_LT(energyOverheadFactor(ProtScheme::Parity, 100),
              energyOverheadFactor(ProtScheme::Secded, 100));
    // Scrubbing energy grows as the interval shrinks.
    EXPECT_GT(energyOverheadFactor(ProtScheme::SecdedScrub, 100),
              energyOverheadFactor(ProtScheme::SecdedScrub, 10000));
}

TEST(CostModelTest, UniformCostEqualsFactor)
{
    auto cfg = table1Config(2);
    cfg.protection = uniformProtection(ProtScheme::Secded);
    auto cost = protectionCost(cfg);
    EXPECT_EQ(cost.protectedBits, cost.totalBits);
    EXPECT_GT(cost.totalBits, 0u);
    // Every bit weighted by the same factor: the weighted mean is exact.
    EXPECT_DOUBLE_EQ(cost.areaOverhead,
                     areaOverheadFactor(ProtScheme::Secded));

    cfg.protection = ProtectionConfig{};
    cost = protectionCost(cfg);
    EXPECT_EQ(cost.protectedBits, 0u);
    EXPECT_DOUBLE_EQ(cost.areaOverhead, 0.0);
    EXPECT_DOUBLE_EQ(cost.energyOverhead, 0.0);
}

TEST(CostModelTest, PartialCostIsCapacityWeighted)
{
    auto cfg = table1Config(2);
    const auto bits = structureBitCapacities(cfg);
    cfg.protection.assign(HwStruct::IQ, ProtScheme::Secded);
    auto cost = protectionCost(cfg);
    EXPECT_EQ(cost.protectedBits,
              bits[static_cast<std::size_t>(HwStruct::IQ)]);
    double share = static_cast<double>(cost.protectedBits) /
                   static_cast<double>(cost.totalBits);
    EXPECT_DOUBLE_EQ(cost.areaOverhead,
                     share * areaOverheadFactor(ProtScheme::Secded));
}

TEST(CostModelTest, CapacitiesMirrorTheRealLedger)
{
    // The cost model recomputes each structure's bit capacity from the
    // MachineConfig; prove the mirror against what a real simulation
    // actually wires into its ledger.
    auto cfg = table1Config(2);
    const auto bits = structureBitCapacities(cfg);
    Simulator sim(cfg, findMix("2ctx-mix-A"));
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        EXPECT_EQ(bits[i], sim.ledger().structureBits(s))
            << hwStructName(s);
    }
}

/** One small protected run; shared by the identity tests below. */
SimResult
protectedRun(const ProtectionConfig &p)
{
    auto cfg = table1Config(2);
    cfg.protection = p;
    return runMix(cfg, findMix("2ctx-mix-A"), 5000);
}

TEST(ProtectedRunTest, OverlayNeverPerturbsTiming)
{
    // Protection is analytical: raw AVF, IPC and cycle count must be
    // bit-identical whatever the assignment.
    auto none = protectedRun(ProtectionConfig{});
    auto ecc = protectedRun(uniformProtection(ProtScheme::Secded));
    EXPECT_EQ(none.ipc, ecc.ipc);
    EXPECT_EQ(none.cycles, ecc.cycles);
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        EXPECT_EQ(none.avf.avf(s), ecc.avf.avf(s)) << hwStructName(s);
        EXPECT_EQ(none.avf.occupancy(s), ecc.avf.occupancy(s))
            << hwStructName(s);
    }
}

TEST(ProtectedRunTest, ResidualIdentitiesOnARealRun)
{
    auto none = protectedRun(ProtectionConfig{});
    auto parity = protectedRun(uniformProtection(ProtScheme::Parity));
    auto ecc = protectedRun(uniformProtection(ProtScheme::Secded));
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        // Unprotected: residual == raw, bit-exactly.
        EXPECT_EQ(none.avf.residualAvf(s), none.avf.avf(s))
            << hwStructName(s);
        // Stronger schemes never leave more behind.
        EXPECT_LE(ecc.avf.residualAvf(s), parity.avf.residualAvf(s))
            << hwStructName(s);
        EXPECT_LE(parity.avf.residualAvf(s), none.avf.avf(s))
            << hwStructName(s);
    }
}

TEST(ProtectedRunTest, JournalRoundTripsResidualAvf)
{
    auto r = protectedRun(uniformProtection(ProtScheme::Parity));
    auto line = serializeRun(0x1234abcd, r);
    std::uint64_t fp = 0;
    SimResult back;
    ASSERT_TRUE(parseRun(line, fp, back));
    EXPECT_EQ(fp, 0x1234abcdu);
    EXPECT_EQ(back.ipc, r.ipc);
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        EXPECT_EQ(back.avf.avf(s), r.avf.avf(s)) << hwStructName(s);
        EXPECT_EQ(back.avf.residualAvf(s), r.avf.residualAvf(s))
            << hwStructName(s);
    }
}

TEST(ProtectedRunTest, FingerprintSeesProtection)
{
    auto exp = makeExperiment(findMix("2ctx-mix-A"),
                              FetchPolicyKind::Icount, 5000);
    auto base_fp = experimentFingerprint(exp);

    // Any scheme change re-keys the experiment.
    auto protected_exp = exp;
    protected_exp.cfg.protection.assign(HwStruct::IQ, ProtScheme::Parity);
    EXPECT_NE(experimentFingerprint(protected_exp), base_fp);
    auto ecc_exp = exp;
    ecc_exp.cfg.protection.assign(HwStruct::IQ, ProtScheme::Secded);
    EXPECT_NE(experimentFingerprint(ecc_exp),
              experimentFingerprint(protected_exp));

    // The scrub interval only matters when something actually scrubs.
    auto idle_scrub = exp;
    idle_scrub.cfg.protection.scrubInterval = 123;
    EXPECT_EQ(experimentFingerprint(idle_scrub), base_fp);
    auto scrubbed = exp;
    scrubbed.cfg.protection.assign(HwStruct::ROB, ProtScheme::SecdedScrub);
    auto scrubbed_fp = experimentFingerprint(scrubbed);
    scrubbed.cfg.protection.scrubInterval = 123;
    EXPECT_NE(experimentFingerprint(scrubbed), scrubbed_fp);
}

} // namespace
} // namespace smtavf
