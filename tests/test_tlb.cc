/**
 * @file
 * Unit tests for the TLB model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/tlb.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

class RecordingTlbObserver : public TlbObserver
{
  public:
    struct Event
    {
        char kind; // 'F', 'H', 'E'
        std::uint32_t slot;
        Cycle cycle;
    };

    void
    onFill(std::uint32_t slot, ThreadId, Cycle now) override
    {
        events.push_back({'F', slot, now});
    }

    void
    onHit(std::uint32_t slot, ThreadId, Cycle now) override
    {
        events.push_back({'H', slot, now});
    }

    void
    onEvict(std::uint32_t slot, Cycle now) override
    {
        events.push_back({'E', slot, now});
    }

    std::vector<Event> events;
};

TlbConfig
smallTlb()
{
    return {"test", 8, 2, 8192, 200}; // 4 sets x 2 ways
}

TEST(TlbTest, RejectsBadGeometry)
{
    ThrowGuard guard;
    EXPECT_THROW(Tlb({"x", 0, 2, 8192, 200}), SimError);
    EXPECT_THROW(Tlb({"x", 9, 2, 8192, 200}), SimError);
    EXPECT_THROW(Tlb({"x", 8, 2, 1000, 200}), SimError); // page !pow2
}

TEST(TlbTest, MissFillsAndPaysPenalty)
{
    Tlb tlb(smallTlb());
    EXPECT_EQ(tlb.access(0x10000, 0, 1), 200u);
    EXPECT_EQ(tlb.access(0x10004, 0, 2), 0u); // same page now hits
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_EQ(tlb.hits(), 1u);
}

TEST(TlbTest, DifferentPagesMissSeparately)
{
    Tlb tlb(smallTlb());
    tlb.access(0x10000, 0, 1);
    EXPECT_EQ(tlb.access(0x10000 + 8192, 0, 2), 200u);
}

TEST(TlbTest, EntriesAreTaggedByThread)
{
    Tlb tlb(smallTlb());
    tlb.access(0x10000, 0, 1);
    // Same virtual page, different thread: separate address space.
    EXPECT_EQ(tlb.access(0x10000, 1, 2), 200u);
}

TEST(TlbTest, LruEvictsWithinSet)
{
    Tlb tlb(smallTlb()); // 4 sets, 2 ways; set = vpn % 4
    Addr page = 8192;
    tlb.access(0 * 4 * page, 0, 1);  // vpn 0 -> set 0
    tlb.access(1 * 4 * page, 0, 2);  // vpn 4 -> set 0
    tlb.access(0 * 4 * page, 0, 3);  // refresh first
    tlb.access(2 * 4 * page, 0, 4);  // vpn 8 -> set 0, evicts vpn 4
    EXPECT_EQ(tlb.access(0, 0, 5), 0u);
    EXPECT_EQ(tlb.access(4 * page, 0, 6), 200u);
}

TEST(TlbTest, PrefillAvoidsFirstMissWithoutStats)
{
    Tlb tlb(smallTlb());
    tlb.prefill(0x10000, 0);
    EXPECT_EQ(tlb.misses(), 0u);
    EXPECT_EQ(tlb.access(0x10000, 0, 1), 0u);
    EXPECT_EQ(tlb.hits(), 1u);
}

TEST(TlbTest, PrefillIsIdempotent)
{
    Tlb tlb(smallTlb());
    RecordingTlbObserver obs;
    tlb.setObserver(&obs);
    tlb.prefill(0x10000, 0);
    tlb.prefill(0x10000, 0);
    EXPECT_EQ(obs.events.size(), 1u);
}

TEST(TlbTest, ObserverLifecycle)
{
    Tlb tlb(smallTlb());
    RecordingTlbObserver obs;
    tlb.setObserver(&obs);
    tlb.access(0x10000, 0, 1);
    tlb.access(0x10000, 0, 5);
    tlb.flushAll(9);
    ASSERT_EQ(obs.events.size(), 3u);
    EXPECT_EQ(obs.events[0].kind, 'F');
    EXPECT_EQ(obs.events[1].kind, 'H');
    EXPECT_EQ(obs.events[1].cycle, 5u);
    EXPECT_EQ(obs.events[2].kind, 'E');
}

TEST(TlbTest, EvictionNotifiesObserver)
{
    Tlb tlb(smallTlb());
    RecordingTlbObserver obs;
    tlb.setObserver(&obs);
    Addr page = 8192;
    tlb.access(0 * 4 * page, 0, 1);
    tlb.access(1 * 4 * page, 0, 2);
    tlb.access(2 * 4 * page, 0, 3); // evicts
    int evicts = 0;
    for (const auto &e : obs.events)
        evicts += e.kind == 'E';
    EXPECT_EQ(evicts, 1);
}

} // namespace
} // namespace smtavf
