/**
 * @file
 * Unit tests for the AVF ledger arithmetic.
 */

#include <gtest/gtest.h>

#include "avf/ledger.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

TEST(LedgerTest, RejectsBadThreadCount)
{
    ThrowGuard guard;
    EXPECT_THROW(AvfLedger(0), SimError);
    EXPECT_THROW(AvfLedger(9), SimError);
}

TEST(LedgerTest, BasicAvfArithmetic)
{
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 1000);
    // 100 bits ACE for 40 of 100 cycles = 4000 of 100000 bit-cycles.
    l.addInterval(HwStruct::IQ, 0, 100, 10, 50, true);
    l.finalize(100);
    EXPECT_DOUBLE_EQ(l.avf(HwStruct::IQ), 0.04);
}

TEST(LedgerTest, UnAceCountsTowardOccupancyOnly)
{
    AvfLedger l(1);
    l.setStructureBits(HwStruct::ROB, 1000);
    l.addInterval(HwStruct::ROB, 0, 100, 0, 50, true);
    l.addInterval(HwStruct::ROB, 0, 100, 50, 100, false);
    l.finalize(100);
    EXPECT_DOUBLE_EQ(l.avf(HwStruct::ROB), 0.05);
    EXPECT_DOUBLE_EQ(l.occupancy(HwStruct::ROB), 0.10);
    EXPECT_DOUBLE_EQ(l.aceShare(HwStruct::ROB), 0.5);
}

TEST(LedgerTest, PerThreadAttribution)
{
    AvfLedger l(2);
    l.setStructureBits(HwStruct::IQ, 1000);
    l.addInterval(HwStruct::IQ, 0, 100, 0, 10, true);
    l.addInterval(HwStruct::IQ, 1, 100, 0, 30, true);
    l.finalize(100);
    EXPECT_DOUBLE_EQ(l.threadAvf(HwStruct::IQ, 0), 0.01);
    EXPECT_DOUBLE_EQ(l.threadAvf(HwStruct::IQ, 1), 0.03);
    EXPECT_DOUBLE_EQ(l.avf(HwStruct::IQ), 0.04);
}

TEST(LedgerTest, PrivateStructuresUsePerThreadDenominator)
{
    AvfLedger l(2);
    // Two 500-bit private ROBs: total 1000, per-thread 500.
    l.setStructureBits(HwStruct::ROB, 1000, 500);
    l.addInterval(HwStruct::ROB, 0, 500, 0, 50, true);
    l.finalize(100);
    // Thread 0 kept its whole private ROB ACE for half the run.
    EXPECT_DOUBLE_EQ(l.threadAvf(HwStruct::ROB, 0), 0.5);
    // But the aggregate (both ROBs) is half of that.
    EXPECT_DOUBLE_EQ(l.avf(HwStruct::ROB), 0.25);
}

TEST(LedgerTest, ZeroLengthIntervalIsNoop)
{
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 100);
    l.addInterval(HwStruct::IQ, 0, 50, 10, 10, true);
    l.finalize(10);
    EXPECT_DOUBLE_EQ(l.avf(HwStruct::IQ), 0.0);
}

TEST(LedgerTest, BackwardsIntervalPanics)
{
    ThrowGuard guard;
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 100);
    EXPECT_THROW(l.addInterval(HwStruct::IQ, 0, 50, 20, 10, true),
                 SimError);
}

TEST(LedgerTest, UnknownThreadPanics)
{
    ThrowGuard guard;
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 100);
    EXPECT_THROW(l.addInterval(HwStruct::IQ, 3, 50, 0, 10, true), SimError);
}

TEST(LedgerTest, AvfBeforeFinalizePanics)
{
    ThrowGuard guard;
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 100);
    EXPECT_THROW(l.avf(HwStruct::IQ), SimError);
}

TEST(LedgerTest, FinalizeWithZeroCyclesIsFatal)
{
    ThrowGuard guard;
    AvfLedger l(1);
    EXPECT_THROW(l.finalize(0), SimError);
}

TEST(LedgerTest, UntrackedStructureReportsZero)
{
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 100);
    l.finalize(10);
    EXPECT_DOUBLE_EQ(l.avf(HwStruct::Dtlb), 0.0);
    EXPECT_DOUBLE_EQ(l.occupancy(HwStruct::Dtlb), 0.0);
}

TEST(LedgerTest, AvfNeverExceedsOccupancy)
{
    AvfLedger l(2);
    l.setStructureBits(HwStruct::LsqData, 4096);
    l.addInterval(HwStruct::LsqData, 0, 64, 0, 37, true);
    l.addInterval(HwStruct::LsqData, 1, 64, 5, 90, false);
    l.addInterval(HwStruct::LsqData, 1, 64, 10, 20, true);
    l.finalize(100);
    EXPECT_LE(l.avf(HwStruct::LsqData), l.occupancy(HwStruct::LsqData));
}

TEST(LedgerTest, RawBitCycleAccessors)
{
    AvfLedger l(2);
    l.setStructureBits(HwStruct::FU, 128);
    l.addInterval(HwStruct::FU, 0, 128, 0, 3, true);
    l.addInterval(HwStruct::FU, 1, 128, 0, 2, true);
    l.addInterval(HwStruct::FU, 1, 128, 2, 4, false);
    EXPECT_EQ(l.aceBitCycles(HwStruct::FU), 128u * 5);
    EXPECT_EQ(l.aceBitCycles(HwStruct::FU, 1), 128u * 2);
    EXPECT_EQ(l.unAceBitCycles(HwStruct::FU), 128u * 2);
}

} // namespace
} // namespace smtavf
