/**
 * @file
 * Unit tests for the AVF ledger arithmetic.
 */

#include <gtest/gtest.h>

#include "avf/ledger.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

TEST(LedgerTest, RejectsBadThreadCount)
{
    ThrowGuard guard;
    EXPECT_THROW(AvfLedger(0), SimError);
    EXPECT_THROW(AvfLedger(9), SimError);
}

TEST(LedgerTest, BasicAvfArithmetic)
{
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 1000);
    // 100 bits ACE for 40 of 100 cycles = 4000 of 100000 bit-cycles.
    l.addInterval(HwStruct::IQ, 0, 100, 10, 50, true);
    l.finalize(100);
    EXPECT_DOUBLE_EQ(l.avf(HwStruct::IQ), 0.04);
}

TEST(LedgerTest, UnAceCountsTowardOccupancyOnly)
{
    AvfLedger l(1);
    l.setStructureBits(HwStruct::ROB, 1000);
    l.addInterval(HwStruct::ROB, 0, 100, 0, 50, true);
    l.addInterval(HwStruct::ROB, 0, 100, 50, 100, false);
    l.finalize(100);
    EXPECT_DOUBLE_EQ(l.avf(HwStruct::ROB), 0.05);
    EXPECT_DOUBLE_EQ(l.occupancy(HwStruct::ROB), 0.10);
    EXPECT_DOUBLE_EQ(l.aceShare(HwStruct::ROB), 0.5);
}

TEST(LedgerTest, PerThreadAttribution)
{
    AvfLedger l(2);
    l.setStructureBits(HwStruct::IQ, 1000);
    l.addInterval(HwStruct::IQ, 0, 100, 0, 10, true);
    l.addInterval(HwStruct::IQ, 1, 100, 0, 30, true);
    l.finalize(100);
    EXPECT_DOUBLE_EQ(l.threadAvf(HwStruct::IQ, 0), 0.01);
    EXPECT_DOUBLE_EQ(l.threadAvf(HwStruct::IQ, 1), 0.03);
    EXPECT_DOUBLE_EQ(l.avf(HwStruct::IQ), 0.04);
}

TEST(LedgerTest, PrivateStructuresUsePerThreadDenominator)
{
    AvfLedger l(2);
    // Two 500-bit private ROBs: total 1000, per-thread 500.
    l.setStructureBits(HwStruct::ROB, 1000, 500);
    l.addInterval(HwStruct::ROB, 0, 500, 0, 50, true);
    l.finalize(100);
    // Thread 0 kept its whole private ROB ACE for half the run.
    EXPECT_DOUBLE_EQ(l.threadAvf(HwStruct::ROB, 0), 0.5);
    // But the aggregate (both ROBs) is half of that.
    EXPECT_DOUBLE_EQ(l.avf(HwStruct::ROB), 0.25);
}

TEST(LedgerTest, ZeroLengthIntervalIsNoop)
{
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 100);
    l.addInterval(HwStruct::IQ, 0, 50, 10, 10, true);
    l.finalize(10);
    EXPECT_DOUBLE_EQ(l.avf(HwStruct::IQ), 0.0);
}

TEST(LedgerTest, BackwardsIntervalPanics)
{
    ThrowGuard guard;
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 100);
    EXPECT_THROW(l.addInterval(HwStruct::IQ, 0, 50, 20, 10, true),
                 SimError);
}

TEST(LedgerTest, UnknownThreadPanics)
{
    ThrowGuard guard;
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 100);
    EXPECT_THROW(l.addInterval(HwStruct::IQ, 3, 50, 0, 10, true), SimError);
}

TEST(LedgerTest, AvfBeforeFinalizePanics)
{
    ThrowGuard guard;
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 100);
    EXPECT_THROW(l.avf(HwStruct::IQ), SimError);
}

TEST(LedgerTest, FinalizeWithZeroCyclesIsFatal)
{
    ThrowGuard guard;
    AvfLedger l(1);
    EXPECT_THROW(l.finalize(0), SimError);
}

TEST(LedgerTest, UntrackedStructureReportsZero)
{
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 100);
    l.finalize(10);
    EXPECT_DOUBLE_EQ(l.avf(HwStruct::Dtlb), 0.0);
    EXPECT_DOUBLE_EQ(l.occupancy(HwStruct::Dtlb), 0.0);
}

TEST(LedgerTest, AvfNeverExceedsOccupancy)
{
    AvfLedger l(2);
    l.setStructureBits(HwStruct::LsqData, 4096);
    l.addInterval(HwStruct::LsqData, 0, 64, 0, 37, true);
    l.addInterval(HwStruct::LsqData, 1, 64, 5, 90, false);
    l.addInterval(HwStruct::LsqData, 1, 64, 10, 20, true);
    l.finalize(100);
    EXPECT_LE(l.avf(HwStruct::LsqData), l.occupancy(HwStruct::LsqData));
}

TEST(LedgerTest, RawBitCycleAccessors)
{
    AvfLedger l(2);
    l.setStructureBits(HwStruct::FU, 128);
    l.addInterval(HwStruct::FU, 0, 128, 0, 3, true);
    l.addInterval(HwStruct::FU, 1, 128, 0, 2, true);
    l.addInterval(HwStruct::FU, 1, 128, 2, 4, false);
    EXPECT_EQ(l.aceBitCycles(HwStruct::FU), 128u * 5);
    EXPECT_EQ(l.aceBitCycles(HwStruct::FU, 1), 128u * 2);
    EXPECT_EQ(l.unAceBitCycles(HwStruct::FU), 128u * 2);
}

TEST(LedgerTest, ResidualEqualsRawWhenUnprotected)
{
    AvfLedger l(2);
    l.setStructureBits(HwStruct::IQ, 1000);
    l.addInterval(HwStruct::IQ, 0, 100, 10, 47, true);
    l.addInterval(HwStruct::IQ, 1, 33, 5, 91, true);
    l.finalize(100);
    // Bit-exact, not approximate: same integer tallies, same division.
    EXPECT_EQ(l.residualAvf(HwStruct::IQ), l.avf(HwStruct::IQ));
    EXPECT_EQ(l.coveredAceBitCycles(HwStruct::IQ), 0u);
    EXPECT_EQ(l.residualAceBitCycles(HwStruct::IQ),
              l.aceBitCycles(HwStruct::IQ));
}

TEST(LedgerTest, SchemeOrderingOnIdenticalIntervals)
{
    // residual(SECDED) <= residual(parity) <= raw, bit-exactly, on the
    // exact same residency pattern.
    auto run = [](ProtScheme scheme) {
        AvfLedger l(1);
        l.setStructureBits(HwStruct::ROB, 2048);
        l.setProtection(uniformProtection(scheme));
        l.addInterval(HwStruct::ROB, 0, 76, 3, 1009, true);
        l.addInterval(HwStruct::ROB, 0, 76, 1009, 1010, false);
        l.addInterval(HwStruct::ROB, 0, 152, 500, 777, true);
        l.finalize(2000);
        return l.residualAvf(HwStruct::ROB);
    };
    double raw = run(ProtScheme::None);
    double parity = run(ProtScheme::Parity);
    double secded = run(ProtScheme::Secded);
    EXPECT_LT(secded, parity);
    EXPECT_LT(parity, raw);
    EXPECT_GT(secded, 0.0); // 1/256 of exposure always leaks through
}

TEST(LedgerTest, CoveredPlusResidualConservesAce)
{
    AvfLedger l(2);
    l.setStructureBits(HwStruct::LsqData, 4096);
    ProtectionConfig p;
    p.assign(HwStruct::LsqData, ProtScheme::Parity);
    l.setProtection(p);
    l.addInterval(HwStruct::LsqData, 0, 64, 0, 37, true);
    l.addInterval(HwStruct::LsqData, 1, 64, 5, 90, true);
    l.addInterval(HwStruct::LsqData, 1, 64, 90, 95, false);
    for (ThreadId tid = 0; tid < 2; ++tid)
        EXPECT_EQ(l.coveredAceBitCycles(HwStruct::LsqData, tid) +
                      l.residualAceBitCycles(HwStruct::LsqData, tid),
                  l.aceBitCycles(HwStruct::LsqData, tid));
    EXPECT_EQ(l.coveredAceBitCycles(HwStruct::LsqData) +
                  l.residualAceBitCycles(HwStruct::LsqData),
              l.aceBitCycles(HwStruct::LsqData));
}

TEST(LedgerTest, ZeroOccupancyResidualIsZero)
{
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 100);
    l.setProtection(uniformProtection(ProtScheme::Secded));
    l.finalize(50);
    EXPECT_DOUBLE_EQ(l.avf(HwStruct::IQ), 0.0);
    EXPECT_DOUBLE_EQ(l.residualAvf(HwStruct::IQ), 0.0);
    EXPECT_DOUBLE_EQ(l.occupancy(HwStruct::IQ), 0.0);
}

TEST(LedgerTest, FullOccupancySaturation)
{
    // Every bit ACE for the whole run: AVF saturates at exactly 1.0 and
    // the SECDED residual is exactly the 1/256 leak-through, no rounding
    // drift past either bound.
    AvfLedger l(1);
    l.setStructureBits(HwStruct::Dtlb, 256);
    l.setProtection(uniformProtection(ProtScheme::Secded));
    l.addInterval(HwStruct::Dtlb, 0, 256, 0, 1000, true);
    l.finalize(1000);
    EXPECT_DOUBLE_EQ(l.avf(HwStruct::Dtlb), 1.0);
    EXPECT_DOUBLE_EQ(l.occupancy(HwStruct::Dtlb), 1.0);
    std::uint64_t bc = 256u * 1000;
    EXPECT_EQ(l.coveredAceBitCycles(HwStruct::Dtlb), bc * 255 / 256);
    EXPECT_DOUBLE_EQ(l.residualAvf(HwStruct::Dtlb),
                     static_cast<double>(bc - bc * 255 / 256) / bc);
}

TEST(LedgerTest, ScrubbingClipsLongResidencies)
{
    // A residency much longer than the scrub interval: scrubbing covers
    // everything but the exposed tail, beating plain SECDED.
    auto residual = [](ProtScheme scheme) {
        AvfLedger l(1);
        l.setStructureBits(HwStruct::Dl1Data, 8192);
        l.setProtection(uniformProtection(scheme, /*scrub_interval=*/100));
        l.addInterval(HwStruct::Dl1Data, 0, 512, 0, 10000, true);
        l.finalize(10000);
        return l.residualAceBitCycles(HwStruct::Dl1Data);
    };
    EXPECT_LT(residual(ProtScheme::SecdedScrub),
              residual(ProtScheme::Secded));
    // Exposed tail = 100 of 10000 cycles, SECDED-covered at 255/256.
    std::uint64_t exposed = 512u * 100;
    EXPECT_EQ(residual(ProtScheme::SecdedScrub),
              exposed - exposed * 255 / 256);
}

TEST(LedgerTest, SetProtectionAfterIntervalIsFatal)
{
    ThrowGuard guard;
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 100);
    l.addInterval(HwStruct::IQ, 0, 10, 0, 5, true);
    EXPECT_THROW(l.setProtection(uniformProtection(ProtScheme::Parity)),
                 SimError);
}

TEST(LedgerTest, InvalidProtectionConfigIsFatal)
{
    ThrowGuard guard;
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 100);
    ProtectionConfig p = uniformProtection(ProtScheme::SecdedScrub);
    p.scrubInterval = 0;
    EXPECT_THROW(l.setProtection(p), SimError);
}

} // namespace
} // namespace smtavf
